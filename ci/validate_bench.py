#!/usr/bin/env python3
"""CI-side validation of the benches' machine-readable output.

One subcommand per gate, so every workflow job shares this file instead of
carrying its own inline python:

  validate_bench.py bench-json NAME.json [NAME.json ...]
      each file is a bench run whose "bench" key matches its stem

  validate_bench.py traces GLOB [GLOB ...] --query-log=FILE
      Chrome trace-event JSON (Perfetto-loadable) + JSONL query log

  validate_bench.py metrics FILE
      Prometheus text-format exposition scraped from the shell

  validate_bench.py cache-ablation --off=F --on=F --olap=F --pred=F --glob=F
      hit-rate and byte-identity assertions for the cache ablation job

  validate_bench.py storage-gates FILE [--min-speedup=10] [--max-ratio=0.6]
      the RDFA3 storage gates: mmap cold start must beat the heap decode by
      min-speedup x, the compressed snapshot must be at most max-ratio of
      the uncompressed RDFA2 bytes, and every suite answer must be
      byte-identical across the heap and mapped backends

  validate_bench.py planner-gates --heap=F --mmap=F --sip-off=F
                                  [--min-ratio=1.3]
      the planner-v2 gates: the DP+merge configuration must scan at least
      min-ratio x fewer rows than the adaptive one over the suite, every
      (query, config) result-set hash must agree between the heap and mmap
      runs, and the SIP runs must decode fewer merge rows than the ablated
      (--ablate-sip) ones

  validate_bench.py server-gates FILE [FILE ...] [--require-shed]
      the HTTP endpoint gates: every leg must have served requests with
      nonzero throughput and a p99, zero transport/4xx/5xx errors, and no
      sheds or timeouts outside the injected-shed leg (which in turn must
      draw real 503s); --require-shed additionally demands that leg exists

  validate_bench.py obs-gates --bench=F --explain=F --slow-dir=DIR
                              [--max-overhead-pct=5] [--epsilon-ms=2]
                              [--min-stages=6]
      the observability gates: the bench's profiling-on/off leg must be
      byte-identical with bounded overhead, the shell's EXPLAIN output must
      match the plan-JSON schema, and every slow-query capture must parse
      and carry an operator profile naming at least min-stages distinct
      stages across the directory

Exits non-zero (via assert) on any violated gate.
"""

import argparse
import glob
import json
import os
import re
import sys


def cmd_bench_json(args):
    for path in args.files:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path) as f:
            doc = json.load(f)
        assert doc["bench"] == name, (name, doc.get("bench"))
        print(name, "ok:", len(doc["runs"]), "runs")


def cmd_traces(args):
    files = []
    for pattern in args.globs:
        files.extend(glob.glob(pattern))
    assert files, "no trace files matched %s" % (args.globs,)
    stages = set()
    for path in files:
        with open(path) as f:
            doc = json.load(f)
        # Chrome trace-event JSON of completed ("X") events, loadable in
        # Perfetto; instant ("i") events are allowed for markers.
        assert doc["displayTimeUnit"] == "ms", path
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i"), (path, ev)
            if ev["ph"] == "X":
                assert "ts" in ev and "dur" in ev, (path, ev)
            stages.add(ev["name"])
    required = {"parse", "plan", "bgp-join", "group-aggregate",
                "admission-queue", "execute"}
    missing = required - stages
    assert not missing, "stages missing from traces: %s" % missing
    lines = []
    if args.query_log:
        # The structured query log is one JSON object per line.
        lines = [json.loads(l) for l in open(args.query_log)]
        assert lines and all("outcome" in l for l in lines)
    print("%d trace files, %d distinct stages, %d query-log lines: ok"
          % (len(files), len(stages), len(lines)))


def cmd_metrics(args):
    # Prometheus text format: '# HELP'/'# TYPE' comments and
    # 'name[{labels}] value' samples.
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.+eE-]+(Inf)?$")
    names = set()
    for line in open(args.file):
        line = line.rstrip("\n")
        if not line.startswith(("rdfa_", "# ")):
            continue  # shell prompt / table output around the block
        if line.startswith("# "):
            continue
        assert sample.match(line), line
        names.add(line.split("{")[0].split(" ")[0])
    for required in ("rdfa_queries_total", "rdfa_query_latency_ms_count"):
        assert any(n.startswith(required) for n in names), required
    print("%d metric series: ok" % len(names))


def cmd_cache_ablation(args):
    off = json.load(open(args.off))
    on = json.load(open(args.on))
    olap = json.load(open(args.olap))
    # Cache off: nothing may hit, nothing may diverge.
    assert off["cache_mb"] == 0, off["cache_mb"]
    assert off["answer_cache"]["hits"] == 0, off["answer_cache"]
    assert off["cache_mismatches"] == 0, off["cache_mismatches"]
    # Cache on: the second iteration must hit, and every cached table must
    # be byte-identical to the uncached first pass.
    assert on["cache_mb"] == 64, on["cache_mb"]
    assert on["answer_cache"]["hits"] > 0, on["answer_cache"]
    assert on["answer_cache"]["hit_rate"] > 0, on["answer_cache"]
    assert on["cache_mismatches"] == 0, on["cache_mismatches"]
    assert on["failures"] == 0, on["failures"]
    assert olap["rollup_cache"]["hits"] > 0, olap["rollup_cache"]
    assert olap["cache_mismatches"] == 0, olap["cache_mismatches"]
    # Rollup cache must stay warm across commits that only touch predicates
    # outside the cube's footprint.
    assert olap["update_rounds"] > 0, olap
    assert olap["update_hits"] == olap["update_rounds"], olap
    # Mixed read/write: predicate-granular invalidation keeps a nonzero hit
    # rate under a writer; the global ablation drops to zero. Both stay
    # byte-identical to the uncached reference.
    pred = json.load(open(args.pred))["mixed_rw"]
    glob_ = json.load(open(args.glob))["mixed_rw"]
    assert pred["invalidation"] == "predicate", pred
    assert glob_["invalidation"] == "global", glob_
    assert pred["mismatches"] == 0, pred
    assert glob_["mismatches"] == 0, glob_
    assert pred["answer_cache"]["hit_rate"] > 0, pred["answer_cache"]
    assert glob_["answer_cache"]["hits"] == 0, glob_["answer_cache"]
    print("cache off: 0 hits; cache on:", on["answer_cache"]["hits"],
          "answer hits at rate", on["answer_cache"]["hit_rate"],
          "; rollup hits:", olap["rollup_cache"]["hits"],
          "- all byte-identical; mixed-rw hit rate",
          pred["answer_cache"]["hit_rate"], "(predicate) vs",
          glob_["answer_cache"]["hit_rate"], "(global)")


def cmd_storage_gates(args):
    doc = json.load(open(args.file))
    s = doc["storage"]
    assert doc["failures"] == 0, "bench reported %s failures" % doc["failures"]
    # Every query in the suite must produce byte-identical answers on the
    # heap and mapped backends; RunStorageLeg also counts a failure per
    # divergence, so this is belt and braces.
    assert s["byte_identical"] == s["suite_queries"], (
        "only %s/%s suite answers byte-identical across backends"
        % (s["byte_identical"], s["suite_queries"]))
    speedup = s["cold_start_speedup"]
    assert speedup >= args.min_speedup, (
        "mmap cold start only %.1fx faster than heap decode "
        "(gate: >= %.1fx; heap %.2f ms vs mmap %.2f ms)"
        % (speedup, args.min_speedup, s["heap_load_ms"], s["mmap_open_ms"]))
    ratio = s["disk_ratio"]
    assert ratio <= args.max_ratio, (
        "RDFA3 snapshot is %.2fx of the RDFA2 bytes (gate: <= %.2fx; "
        "%s vs %s bytes)"
        % (ratio, args.max_ratio, s["v3_bytes"], s["v2_bytes"]))
    print("storage gates ok: cold start %.1fx (>= %.1fx), disk %.2fx "
          "(<= %.2fx), %d/%d answers byte-identical at %d triples"
          % (speedup, args.min_speedup, ratio, args.max_ratio,
             s["byte_identical"], s["suite_queries"], s["triples"]))


def cmd_planner_gates(args):
    heap = json.load(open(args.heap))
    mmap_ = json.load(open(args.mmap))
    sip_off = json.load(open(args.sip_off))
    assert heap["storage"] == "heap", heap["storage"]
    assert mmap_["storage"] == "mmap", mmap_["storage"]
    assert sip_off["ablate_sip"], "sip-off file was not run with --ablate-sip"
    for doc, name in ((heap, "heap"), (mmap_, "mmap"), (sip_off, "sip-off")):
        assert doc["byte_identical"], "%s run diverged across configs" % name

    # Gate 1: the DP+merge planner must beat the adaptive configuration on
    # total rows scanned by min-ratio x (the heap run is authoritative).
    ratio = heap["planner_ratio"]
    assert ratio >= args.min_ratio, (
        "planner v2 scans only %.2fx fewer rows than adaptive "
        "(gate: >= %.2fx; adaptive %s vs dp %s)"
        % (ratio, args.min_ratio, heap["adaptive_rows_scanned"],
           heap["dp_rows_scanned"]))

    # Gate 2: every (query, config) result-set hash must agree between the
    # heap and mmap runs — same answers whichever backend served them.
    def hashes(doc):
        return {(r["query"], r["config"]): r["tsv_hash"]
                for r in doc["runs"]}
    h_heap, h_mmap = hashes(heap), hashes(mmap_)
    assert h_heap.keys() == h_mmap.keys(), (
        "run sets differ between heap and mmap")
    diverged = [k for k in h_heap if h_heap[k] != h_mmap[k]]
    assert not diverged, "heap/mmap result hashes diverge: %s" % diverged

    # Gate 3: SIP must pay for itself — the dp-merge runs with seeking must
    # decode fewer merge rows than the linearly advancing ablated runs
    # (summed over the suite; per-query ties are fine where the sieve is
    # dense). The result sets must still agree.
    def merge_decoded(doc):
        return sum(r["exec_stats"]["merge_rows_decoded"]
                   for r in doc["runs"] if r["config"].startswith("dp-merge"))
    with_sip, without_sip = merge_decoded(heap), merge_decoded(sip_off)
    assert with_sip < without_sip, (
        "SIP decoded %s merge rows vs %s without it" % (with_sip,
                                                        without_sip))
    h_sip_off = hashes(sip_off)
    diverged = [k for k in h_heap if h_heap[k] != h_sip_off[k]]
    assert not diverged, "sip ablation changed result sets: %s" % diverged

    print("planner gates ok: dp+merge %.2fx fewer rows than adaptive "
          "(>= %.2fx), %d (query, config) hashes identical across backends, "
          "sip decoded %d vs %d merge rows ablated"
          % (ratio, args.min_ratio, len(h_heap), with_sip, without_sip))


def cmd_server_gates(args):
    for path in args.files:
        doc = json.load(open(path))
        assert doc["bench"] == "bench_server", path
        runs = doc["runs"]
        assert runs, "no runs in %s" % path
        for r in runs:
            leg = "%s:%s" % (os.path.basename(path), r["name"])
            assert r["requests"] > 0, leg + " served no requests"
            assert r["throughput_rps"] > 0, leg + " has zero throughput"
            assert "p99_ms" in r and r["p99_ms"] >= 0, leg + " lacks p99"
            assert r["transport_errors"] == 0, (leg, r["transport_errors"])
            assert r["errors_4xx"] == 0, (leg, r["errors_4xx"])
            # 503/504 are tracked separately, so errors_5xx is strictly
            # "unexpected 5xx" (500s etc.) — zero everywhere.
            assert r["errors_5xx"] == 0, (leg, r["errors_5xx"])
            if r["name"] == "closed-shed":
                # The injected-shed leg must prove the 503 path reaches the
                # wire — and still serve some queries between sheds.
                assert r["shed_503"] > 0, leg + " drew no 503s"
                assert r["ok_200"] > 0, leg + " served nothing"
            else:
                assert r["shed_503"] == 0, (leg, r["shed_503"])
                assert r["timeout_504"] == 0, (leg, r["timeout_504"])
                assert r["ok_200"] == r["requests"], (leg, r)
        if args.require_shed:
            assert any(r["name"] == "closed-shed" for r in runs), (
                "%s has no injected-shed leg" % path)
        print("%s: %d legs ok (%s)"
              % (os.path.basename(path), len(runs),
                 ", ".join("%s %.0f req/s p99 %.1f ms"
                           % (r["name"], r["throughput_rps"], r["p99_ms"])
                           for r in runs)))


def _check_plan_json(plan):
    """Asserts `plan` matches the EXPLAIN plan-JSON schema."""
    assert plan["form"] in ("select", "ask", "construct", "describe"), plan
    assert plan["strategy"] in ("adaptive", "nested-loop", "hash", "merge"), (
        plan["strategy"])
    assert isinstance(plan["use_dp"], bool), plan
    assert isinstance(plan["threads"], int) and plan["threads"] >= 1, plan
    assert plan["backend"] in ("heap", "mmap"), plan["backend"]
    assert isinstance(plan["bgps"], list), plan
    for bgp in plan["bgps"]:
        assert isinstance(bgp["dp"], bool), bgp
        assert isinstance(bgp["steps"], list) and bgp["steps"], bgp
        for step in bgp["steps"]:
            assert isinstance(step["pattern"], int), step
            assert step["strategy"] in ("S", "M", "A"), step
            assert re.fullmatch(r"[SPO]{3}", step["perm"]), step
            assert step["est_rows"] >= 0, step
            assert step["est_cost"] >= 0, step


def _profile_ops(nodes, out):
    """Collects every "op" name from a nested profile tree into `out`."""
    for node in nodes:
        assert "op" in node and "ms" in node, node
        out.add(node["op"])
        _profile_ops(node.get("children", []), out)


def cmd_obs_gates(args):
    # Gate 1: the profiled leg of the bench must return byte-identical
    # answers with bounded overhead. The epsilon absorbs timer noise on the
    # one-core CI runners; the percentage is the real budget.
    doc = json.load(open(args.bench))
    obs = doc["observability"]
    assert doc["failures"] == 0, "bench reported %s failures" % doc["failures"]
    assert obs["byte_identical"] == obs["pairs"], (
        "only %s/%s profiled answers byte-identical"
        % (obs["byte_identical"], obs["pairs"]))
    budget = obs["off_p50_ms"] * (1 + args.max_overhead_pct / 100.0) \
        + args.epsilon_ms
    assert obs["on_p50_ms"] <= budget, (
        "profiling overhead %.2f ms p50 vs %.2f ms off (budget %.2f ms)"
        % (obs["on_p50_ms"], obs["off_p50_ms"], budget))
    assert obs["distinct_stages"] >= args.min_stages, (
        "profiled runs named only %s distinct stages (gate: >= %s)"
        % (obs["distinct_stages"], args.min_stages))

    # Gate 2: every EXPLAIN / EXPLAIN ANALYZE line the shell printed must
    # match the plan-JSON schema (analyze lines nest the plan under "plan"
    # and add a "profile" tree).
    plans = analyzed = 0
    for line in open(args.explain):
        line = line.strip()
        while line.startswith("rdfa>"):  # interactive prompt prefix
            line = line[len("rdfa>"):].lstrip()
        if not line.startswith("{"):
            continue  # banner / table noise around the JSON
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if "plan" in obj:
            _check_plan_json(obj["plan"])
            assert obj["ok"] in (True, False), obj
            ops = set()
            _profile_ops(obj["profile"], ops)
            assert "execute" in ops, ops
            analyzed += 1
        elif "form" in obj:
            _check_plan_json(obj)
            plans += 1
    assert plans > 0, "no EXPLAIN output found in %s" % args.explain
    assert analyzed > 0, "no EXPLAIN ANALYZE output in %s" % args.explain

    # Gate 3: every slow-query capture parses, and across the ring the
    # embedded operator profiles name enough distinct stages to triage with.
    files = sorted(glob.glob(os.path.join(args.slow_dir, "slow-*.json")))
    assert files, "no slow-query captures under %s" % args.slow_dir
    stages = set()
    for path in files:
        with open(path) as f:
            rec = json.load(f)
        assert "outcome" in rec and "query_hash" in rec, path
        _profile_ops(rec.get("profile", []), stages)
    assert len(stages) >= args.min_stages, (
        "slow captures name only %d distinct stages %s (gate: >= %d)"
        % (len(stages), sorted(stages), args.min_stages))

    print("obs gates ok: overhead %.2f -> %.2f ms p50 (budget %.2f), "
          "%d/%d byte-identical, %d explain + %d analyze lines, "
          "%d captures naming %d stages"
          % (obs["off_p50_ms"], obs["on_p50_ms"], budget,
             obs["byte_identical"], obs["pairs"], plans, analyzed,
             len(files), len(stages)))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("bench-json")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=cmd_bench_json)

    p = sub.add_parser("traces")
    p.add_argument("globs", nargs="+")
    p.add_argument("--query-log", default="")
    p.set_defaults(func=cmd_traces)

    p = sub.add_parser("metrics")
    p.add_argument("file")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("cache-ablation")
    p.add_argument("--off", required=True)
    p.add_argument("--on", required=True)
    p.add_argument("--olap", required=True)
    p.add_argument("--pred", required=True)
    p.add_argument("--glob", required=True)
    p.set_defaults(func=cmd_cache_ablation)

    p = sub.add_parser("storage-gates")
    p.add_argument("file")
    p.add_argument("--min-speedup", type=float, default=10.0)
    p.add_argument("--max-ratio", type=float, default=0.6)
    p.set_defaults(func=cmd_storage_gates)

    p = sub.add_parser("planner-gates")
    p.add_argument("--heap", required=True)
    p.add_argument("--mmap", required=True)
    p.add_argument("--sip-off", required=True)
    p.add_argument("--min-ratio", type=float, default=1.3)
    p.set_defaults(func=cmd_planner_gates)

    p = sub.add_parser("server-gates")
    p.add_argument("files", nargs="+")
    p.add_argument("--require-shed", action="store_true")
    p.set_defaults(func=cmd_server_gates)

    p = sub.add_parser("obs-gates")
    p.add_argument("--bench", required=True)
    p.add_argument("--explain", required=True)
    p.add_argument("--slow-dir", required=True)
    p.add_argument("--max-overhead-pct", type=float, default=5.0)
    p.add_argument("--epsilon-ms", type=float, default=2.0)
    p.add_argument("--min-stages", type=int, default=6)
    p.set_defaults(func=cmd_obs_gates)

    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
