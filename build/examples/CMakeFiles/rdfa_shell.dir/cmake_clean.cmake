file(REMOVE_RECURSE
  "CMakeFiles/rdfa_shell.dir/rdfa_shell.cpp.o"
  "CMakeFiles/rdfa_shell.dir/rdfa_shell.cpp.o.d"
  "rdfa_shell"
  "rdfa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
