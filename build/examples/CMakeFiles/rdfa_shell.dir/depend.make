# Empty dependencies file for rdfa_shell.
# This may be replaced when dependencies are built.
