# Empty compiler generated dependencies file for covid_cubes.
# This may be replaced when dependencies are built.
