file(REMOVE_RECURSE
  "CMakeFiles/covid_cubes.dir/covid_cubes.cpp.o"
  "CMakeFiles/covid_cubes.dir/covid_cubes.cpp.o.d"
  "covid_cubes"
  "covid_cubes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_cubes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
