# Empty compiler generated dependencies file for invoices_olap.
# This may be replaced when dependencies are built.
