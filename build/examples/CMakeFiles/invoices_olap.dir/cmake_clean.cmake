file(REMOVE_RECURSE
  "CMakeFiles/invoices_olap.dir/invoices_olap.cpp.o"
  "CMakeFiles/invoices_olap.dir/invoices_olap.cpp.o.d"
  "invoices_olap"
  "invoices_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invoices_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
