# Empty dependencies file for faceted_exploration.
# This may be replaced when dependencies are built.
