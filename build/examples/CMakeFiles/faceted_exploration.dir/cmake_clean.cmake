file(REMOVE_RECURSE
  "CMakeFiles/faceted_exploration.dir/faceted_exploration.cpp.o"
  "CMakeFiles/faceted_exploration.dir/faceted_exploration.cpp.o.d"
  "faceted_exploration"
  "faceted_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faceted_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
