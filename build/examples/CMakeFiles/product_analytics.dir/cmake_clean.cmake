file(REMOVE_RECURSE
  "CMakeFiles/product_analytics.dir/product_analytics.cpp.o"
  "CMakeFiles/product_analytics.dir/product_analytics.cpp.o.d"
  "product_analytics"
  "product_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
