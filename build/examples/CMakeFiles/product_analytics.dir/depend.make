# Empty dependencies file for product_analytics.
# This may be replaced when dependencies are built.
