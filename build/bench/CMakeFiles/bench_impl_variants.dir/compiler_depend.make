# Empty compiler generated dependencies file for bench_impl_variants.
# This may be replaced when dependencies are built.
