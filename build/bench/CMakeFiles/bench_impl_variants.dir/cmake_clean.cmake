file(REMOVE_RECURSE
  "CMakeFiles/bench_impl_variants.dir/bench_impl_variants.cc.o"
  "CMakeFiles/bench_impl_variants.dir/bench_impl_variants.cc.o.d"
  "bench_impl_variants"
  "bench_impl_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impl_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
