# Empty dependencies file for bench_olap.
# This may be replaced when dependencies are built.
