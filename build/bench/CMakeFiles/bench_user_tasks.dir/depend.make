# Empty dependencies file for bench_user_tasks.
# This may be replaced when dependencies are built.
