file(REMOVE_RECURSE
  "CMakeFiles/bench_user_tasks.dir/bench_user_tasks.cc.o"
  "CMakeFiles/bench_user_tasks.dir/bench_user_tasks.cc.o.d"
  "bench_user_tasks"
  "bench_user_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
