# Empty compiler generated dependencies file for rdfa.
# This may be replaced when dependencies are built.
