file(REMOVE_RECURSE
  "librdfa.a"
)
