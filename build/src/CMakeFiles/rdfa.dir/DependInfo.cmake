
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/answer_frame.cc" "src/CMakeFiles/rdfa.dir/analytics/answer_frame.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/answer_frame.cc.o.d"
  "/root/repo/src/analytics/expressiveness.cc" "src/CMakeFiles/rdfa.dir/analytics/expressiveness.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/expressiveness.cc.o.d"
  "/root/repo/src/analytics/fco.cc" "src/CMakeFiles/rdfa.dir/analytics/fco.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/fco.cc.o.d"
  "/root/repo/src/analytics/olap.cc" "src/CMakeFiles/rdfa.dir/analytics/olap.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/olap.cc.o.d"
  "/root/repo/src/analytics/rollup_cache.cc" "src/CMakeFiles/rdfa.dir/analytics/rollup_cache.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/rollup_cache.cc.o.d"
  "/root/repo/src/analytics/session.cc" "src/CMakeFiles/rdfa.dir/analytics/session.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/analytics/session.cc.o.d"
  "/root/repo/src/baseline/simple_builder.cc" "src/CMakeFiles/rdfa.dir/baseline/simple_builder.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/baseline/simple_builder.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rdfa.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/rdfa.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/rdfa.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/endpoint/endpoint.cc" "src/CMakeFiles/rdfa.dir/endpoint/endpoint.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/endpoint/endpoint.cc.o.d"
  "/root/repo/src/fs/facets.cc" "src/CMakeFiles/rdfa.dir/fs/facets.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/facets.cc.o.d"
  "/root/repo/src/fs/hierarchy.cc" "src/CMakeFiles/rdfa.dir/fs/hierarchy.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/hierarchy.cc.o.d"
  "/root/repo/src/fs/notations.cc" "src/CMakeFiles/rdfa.dir/fs/notations.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/notations.cc.o.d"
  "/root/repo/src/fs/replay.cc" "src/CMakeFiles/rdfa.dir/fs/replay.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/replay.cc.o.d"
  "/root/repo/src/fs/session.cc" "src/CMakeFiles/rdfa.dir/fs/session.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/session.cc.o.d"
  "/root/repo/src/fs/state.cc" "src/CMakeFiles/rdfa.dir/fs/state.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/fs/state.cc.o.d"
  "/root/repo/src/hifun/attr_expr.cc" "src/CMakeFiles/rdfa.dir/hifun/attr_expr.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/hifun/attr_expr.cc.o.d"
  "/root/repo/src/hifun/context.cc" "src/CMakeFiles/rdfa.dir/hifun/context.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/hifun/context.cc.o.d"
  "/root/repo/src/hifun/evaluator.cc" "src/CMakeFiles/rdfa.dir/hifun/evaluator.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/hifun/evaluator.cc.o.d"
  "/root/repo/src/hifun/hifun_parser.cc" "src/CMakeFiles/rdfa.dir/hifun/hifun_parser.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/hifun/hifun_parser.cc.o.d"
  "/root/repo/src/hifun/query.cc" "src/CMakeFiles/rdfa.dir/hifun/query.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/hifun/query.cc.o.d"
  "/root/repo/src/rdf/binary_io.cc" "src/CMakeFiles/rdfa.dir/rdf/binary_io.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/binary_io.cc.o.d"
  "/root/repo/src/rdf/browse.cc" "src/CMakeFiles/rdfa.dir/rdf/browse.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/browse.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/CMakeFiles/rdfa.dir/rdf/graph.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/graph.cc.o.d"
  "/root/repo/src/rdf/namespaces.cc" "src/CMakeFiles/rdfa.dir/rdf/namespaces.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/namespaces.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/rdfa.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/rdfs.cc" "src/CMakeFiles/rdfa.dir/rdf/rdfs.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/rdfs.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/rdfa.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/term_table.cc" "src/CMakeFiles/rdfa.dir/rdf/term_table.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/term_table.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/CMakeFiles/rdfa.dir/rdf/turtle.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/rdf/turtle.cc.o.d"
  "/root/repo/src/search/keyword.cc" "src/CMakeFiles/rdfa.dir/search/keyword.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/search/keyword.cc.o.d"
  "/root/repo/src/sparql/ast.cc" "src/CMakeFiles/rdfa.dir/sparql/ast.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/ast.cc.o.d"
  "/root/repo/src/sparql/bgp.cc" "src/CMakeFiles/rdfa.dir/sparql/bgp.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/bgp.cc.o.d"
  "/root/repo/src/sparql/executor.cc" "src/CMakeFiles/rdfa.dir/sparql/executor.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/executor.cc.o.d"
  "/root/repo/src/sparql/expr_eval.cc" "src/CMakeFiles/rdfa.dir/sparql/expr_eval.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/expr_eval.cc.o.d"
  "/root/repo/src/sparql/lexer.cc" "src/CMakeFiles/rdfa.dir/sparql/lexer.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/lexer.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/rdfa.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/parser.cc.o.d"
  "/root/repo/src/sparql/result_table.cc" "src/CMakeFiles/rdfa.dir/sparql/result_table.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/result_table.cc.o.d"
  "/root/repo/src/sparql/results_io.cc" "src/CMakeFiles/rdfa.dir/sparql/results_io.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/results_io.cc.o.d"
  "/root/repo/src/sparql/value.cc" "src/CMakeFiles/rdfa.dir/sparql/value.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/sparql/value.cc.o.d"
  "/root/repo/src/translator/translator.cc" "src/CMakeFiles/rdfa.dir/translator/translator.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/translator/translator.cc.o.d"
  "/root/repo/src/viz/chart.cc" "src/CMakeFiles/rdfa.dir/viz/chart.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/viz/chart.cc.o.d"
  "/root/repo/src/viz/cubes.cc" "src/CMakeFiles/rdfa.dir/viz/cubes.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/viz/cubes.cc.o.d"
  "/root/repo/src/viz/spiral.cc" "src/CMakeFiles/rdfa.dir/viz/spiral.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/viz/spiral.cc.o.d"
  "/root/repo/src/viz/table_render.cc" "src/CMakeFiles/rdfa.dir/viz/table_render.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/viz/table_render.cc.o.d"
  "/root/repo/src/workload/csv_import.cc" "src/CMakeFiles/rdfa.dir/workload/csv_import.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/workload/csv_import.cc.o.d"
  "/root/repo/src/workload/invoices.cc" "src/CMakeFiles/rdfa.dir/workload/invoices.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/workload/invoices.cc.o.d"
  "/root/repo/src/workload/products.cc" "src/CMakeFiles/rdfa.dir/workload/products.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/workload/products.cc.o.d"
  "/root/repo/src/workload/sports.cc" "src/CMakeFiles/rdfa.dir/workload/sports.cc.o" "gcc" "src/CMakeFiles/rdfa.dir/workload/sports.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
