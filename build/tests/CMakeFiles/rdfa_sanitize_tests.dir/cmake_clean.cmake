file(REMOVE_RECURSE
  "CMakeFiles/rdfa_sanitize_tests.dir/graph_stress_test.cc.o"
  "CMakeFiles/rdfa_sanitize_tests.dir/graph_stress_test.cc.o.d"
  "CMakeFiles/rdfa_sanitize_tests.dir/parallel_equivalence_test.cc.o"
  "CMakeFiles/rdfa_sanitize_tests.dir/parallel_equivalence_test.cc.o.d"
  "rdfa_sanitize_tests"
  "rdfa_sanitize_tests.pdb"
  "rdfa_sanitize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfa_sanitize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
