# Empty dependencies file for rdfa_sanitize_tests.
# This may be replaced when dependencies are built.
