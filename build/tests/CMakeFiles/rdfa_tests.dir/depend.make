# Empty dependencies file for rdfa_tests.
# This may be replaced when dependencies are built.
