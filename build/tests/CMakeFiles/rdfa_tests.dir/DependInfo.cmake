
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics_test.cc" "tests/CMakeFiles/rdfa_tests.dir/analytics_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/analytics_test.cc.o.d"
  "/root/repo/tests/baseline_fuzz_test.cc" "tests/CMakeFiles/rdfa_tests.dir/baseline_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/baseline_fuzz_test.cc.o.d"
  "/root/repo/tests/browse_persist_test.cc" "tests/CMakeFiles/rdfa_tests.dir/browse_persist_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/browse_persist_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/rdfa_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/endpoint_test.cc" "tests/CMakeFiles/rdfa_tests.dir/endpoint_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/endpoint_test.cc.o.d"
  "/root/repo/tests/equivalence_test.cc" "tests/CMakeFiles/rdfa_tests.dir/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/equivalence_test.cc.o.d"
  "/root/repo/tests/extensions_model_test.cc" "tests/CMakeFiles/rdfa_tests.dir/extensions_model_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/extensions_model_test.cc.o.d"
  "/root/repo/tests/fco_test.cc" "tests/CMakeFiles/rdfa_tests.dir/fco_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/fco_test.cc.o.d"
  "/root/repo/tests/fs_model_test.cc" "tests/CMakeFiles/rdfa_tests.dir/fs_model_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/fs_model_test.cc.o.d"
  "/root/repo/tests/hifun_test.cc" "tests/CMakeFiles/rdfa_tests.dir/hifun_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/hifun_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rdfa_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/notations_multiroot_test.cc" "tests/CMakeFiles/rdfa_tests.dir/notations_multiroot_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/notations_multiroot_test.cc.o.d"
  "/root/repo/tests/olap_test.cc" "tests/CMakeFiles/rdfa_tests.dir/olap_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/olap_test.cc.o.d"
  "/root/repo/tests/property_sweeps_test.cc" "tests/CMakeFiles/rdfa_tests.dir/property_sweeps_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/property_sweeps_test.cc.o.d"
  "/root/repo/tests/rdf_graph_test.cc" "tests/CMakeFiles/rdfa_tests.dir/rdf_graph_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/rdf_graph_test.cc.o.d"
  "/root/repo/tests/rdf_parsers_test.cc" "tests/CMakeFiles/rdfa_tests.dir/rdf_parsers_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/rdf_parsers_test.cc.o.d"
  "/root/repo/tests/rdf_rdfs_test.cc" "tests/CMakeFiles/rdfa_tests.dir/rdf_rdfs_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/rdf_rdfs_test.cc.o.d"
  "/root/repo/tests/rdf_term_test.cc" "tests/CMakeFiles/rdfa_tests.dir/rdf_term_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/rdf_term_test.cc.o.d"
  "/root/repo/tests/results_io_test.cc" "tests/CMakeFiles/rdfa_tests.dir/results_io_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/results_io_test.cc.o.d"
  "/root/repo/tests/rollup_cache_test.cc" "tests/CMakeFiles/rdfa_tests.dir/rollup_cache_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/rollup_cache_test.cc.o.d"
  "/root/repo/tests/sparql_aggregates_test.cc" "tests/CMakeFiles/rdfa_tests.dir/sparql_aggregates_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/sparql_aggregates_test.cc.o.d"
  "/root/repo/tests/sparql_executor_test.cc" "tests/CMakeFiles/rdfa_tests.dir/sparql_executor_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/sparql_executor_test.cc.o.d"
  "/root/repo/tests/sparql_extensions_test.cc" "tests/CMakeFiles/rdfa_tests.dir/sparql_extensions_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/sparql_extensions_test.cc.o.d"
  "/root/repo/tests/sparql_lexer_parser_test.cc" "tests/CMakeFiles/rdfa_tests.dir/sparql_lexer_parser_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/sparql_lexer_parser_test.cc.o.d"
  "/root/repo/tests/sparql_update_test.cc" "tests/CMakeFiles/rdfa_tests.dir/sparql_update_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/sparql_update_test.cc.o.d"
  "/root/repo/tests/translator_test.cc" "tests/CMakeFiles/rdfa_tests.dir/translator_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/translator_test.cc.o.d"
  "/root/repo/tests/viz_test.cc" "tests/CMakeFiles/rdfa_tests.dir/viz_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/viz_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/rdfa_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/rdfa_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
