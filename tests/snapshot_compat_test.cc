// Format compatibility: the checked-in golden fixtures (tests/data/) for
// every snapshot generation — RDFA1, RDFA2, RDFA3 — must keep loading, and
// all three must describe the same graph. Regenerate fixtures only on a
// deliberate format revision, with tests/make_golden_fixtures.cc.

#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"
#include "workload/products.h"

#ifndef RDFA_TEST_DATA_DIR
#error "RDFA_TEST_DATA_DIR must point at the checked-in fixture directory"
#endif

namespace rdfa {
namespace {

using rdf::Graph;

std::string FixturePath(const std::string& name) {
  return std::string(RDFA_TEST_DATA_DIR) + "/" + name;
}

std::string RunProbe(Graph* g) {
  // Join + aggregate probe over the running example, serialized so any
  // semantic drift between format generations shows up as a byte diff.
  constexpr char kQuery[] =
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (COUNT(?l) AS ?n) (SUM(?p) AS ?total) WHERE { "
      "?l ex:manufacturer ?m . ?l ex:price ?p } GROUP BY ?m";
  sparql::Executor exec(g);
  auto parsed = sparql::ParseQuery(kQuery);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  if (!parsed.ok()) return "<parse error>";
  auto table = exec.Execute(parsed.value());
  EXPECT_TRUE(table.ok()) << table.status().message();
  if (!table.ok()) return "<exec error>";
  return sparql::WriteResultsJson(table.value());
}

class SnapshotCompatTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotCompatTest, GoldenFixtureLoadsAndMatchesLiveGraph) {
  Graph golden;
  Status st = rdf::LoadBinaryFile(FixturePath(GetParam()), &golden);
  ASSERT_TRUE(st.ok()) << GetParam() << ": " << st.message();

  Graph live;
  workload::BuildRunningExample(&live);
  EXPECT_EQ(golden.size(), live.size());
  EXPECT_EQ(golden.terms().size(), live.terms().size());
  // Term ids are preserved by every format generation.
  for (size_t i = 0; i < live.terms().size(); ++i) {
    EXPECT_EQ(golden.terms().Get(static_cast<rdf::TermId>(i)),
              live.terms().Get(static_cast<rdf::TermId>(i)))
        << GetParam() << " term " << i;
  }
  EXPECT_EQ(RunProbe(&golden), RunProbe(&live)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFormatGenerations, SnapshotCompatTest,
                         ::testing::Values("golden_v1.rdfa", "golden_v2.rdfa",
                                           "golden_v3.rdfa"));

TEST(SnapshotCompatTest, GoldenV3OpensMapped) {
  auto mapped = rdf::OpenMappedSnapshot(FixturePath("golden_v3.rdfa"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  ASSERT_NE(mapped.value()->mapped(), nullptr);

  Graph live;
  workload::BuildRunningExample(&live);
  EXPECT_EQ(mapped.value()->size(), live.size());
  EXPECT_EQ(RunProbe(mapped.value().get()), RunProbe(&live));
}

TEST(SnapshotCompatTest, ResaveOfGoldenV3RoundTripsByteIdentically) {
  // Loading a canonical (SPO-ordered) v3 snapshot and saving it again must
  // reproduce the bytes exactly: load → save is idempotent on v3.
  std::ifstream f(FixturePath("golden_v3.rdfa"), std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  Graph g;
  ASSERT_TRUE(rdf::LoadBinary(bytes, &g).ok());
  EXPECT_EQ(rdf::SaveBinary(g), bytes);
}

TEST(SnapshotCompatTest, TruncatedV3IsRejectedNotMisread) {
  std::ifstream f(FixturePath("golden_v3.rdfa"), std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  // Clipping anywhere inside the section table or a section must produce a
  // typed ParseError, not a partial graph.
  for (size_t cut : {size_t{3}, size_t{8}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 1}) {
    Graph g;
    Status st = rdf::LoadBinary(std::string_view(bytes).substr(0, cut), &g);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    EXPECT_EQ(st.code(), StatusCode::kParseError) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace rdfa
