// Tests for Table 5.1 SPARQL notations, graph removal, multi-root analysis
// contexts (§4.1.2), the endpoint query log, and the sports workload.

#include <gtest/gtest.h>

#include "endpoint/endpoint.h"
#include "rdf/namespaces.h"
#include "sparql/executor.h"
#include "fs/notations.h"
#include "hifun/context.h"
#include "hifun/evaluator.h"
#include "rdf/rdfs.h"
#include "sparql/value.h"
#include "translator/translator.h"
#include "viz/table_render.h"
#include "workload/products.h"
#include "workload/sports.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;
const std::string kSp = workload::kSportsNs;

// ---------------- graph removal ----------------

TEST(GraphRemoveTest, RemoveMatchingPatterns) {
  rdf::Graph g;
  g.Add(rdf::Term::Iri("urn:a"), rdf::Term::Iri("urn:p"),
        rdf::Term::Iri("urn:x"));
  g.Add(rdf::Term::Iri("urn:a"), rdf::Term::Iri("urn:p"),
        rdf::Term::Iri("urn:y"));
  g.Add(rdf::Term::Iri("urn:b"), rdf::Term::Iri("urn:q"),
        rdf::Term::Iri("urn:x"));
  rdf::TermId a = g.terms().FindIri("urn:a");
  rdf::TermId p = g.terms().FindIri("urn:p");
  // Force indexes, then remove and re-query.
  EXPECT_EQ(g.Match(a, p, rdf::kNoTermId).size(), 2u);
  EXPECT_EQ(g.RemoveMatching(a, p, rdf::kNoTermId), 2u);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.Match(a, p, rdf::kNoTermId).empty());
  // Removed triples can be re-added.
  EXPECT_TRUE(g.Add(rdf::Term::Iri("urn:a"), rdf::Term::Iri("urn:p"),
                    rdf::Term::Iri("urn:x")));
  EXPECT_EQ(g.size(), 2u);
  // Removing with an interned-but-unused property: nothing matches. (A
  // never-interned term has no id — kNoTermId is the wildcard, by
  // contract.)
  rdf::TermId unused = g.terms().InternIri("urn:nope");
  EXPECT_EQ(g.RemoveMatching(rdf::kNoTermId, unused, rdf::kNoTermId), 0u);
}

// ---------------- Table 5.1 notations ----------------

class NotationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    rdf::MaterializeRdfsClosure(&g_);
    for (const char* l : {"laptop1", "laptop2", "laptop3"}) {
      laptops_.insert(g_.terms().FindIri(kEx + l));
    }
  }
  rdf::Graph g_;
  fs::Extension laptops_;
};

TEST_F(NotationsTest, InstMatchesNativeInstances) {
  auto via_sparql = fs::EvalNotation(&g_, fs::InstSparql(kEx + "Laptop"));
  ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();
  EXPECT_EQ(via_sparql.value(), laptops_);
}

TEST_F(NotationsTest, JoinsNotationMatchesNativeJoins) {
  fs::MaterializeExtension(&g_, laptops_);
  fs::PropRef man{kEx + "manufacturer", false};
  auto via_sparql = fs::EvalNotation(&g_, fs::JoinsSparql(man));
  ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();
  EXPECT_EQ(via_sparql.value(), fs::Joins(g_, laptops_, man));
  // Cleanup removes exactly the materialized triples.
  EXPECT_EQ(fs::ClearExtension(&g_), laptops_.size());
  EXPECT_EQ(fs::ClearExtension(&g_), 0u);
}

TEST_F(NotationsTest, RestrictValueNotationMatchesNative) {
  fs::MaterializeExtension(&g_, laptops_);
  fs::PropRef man{kEx + "manufacturer", false};
  rdf::Term dell = rdf::Term::Iri(kEx + "DELL");
  auto via_sparql = fs::EvalNotation(&g_, fs::RestrictValueSparql(man, dell));
  ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();
  EXPECT_EQ(via_sparql.value(),
            fs::Restrict(g_, laptops_, man, g_.terms().Find(dell)));
  fs::ClearExtension(&g_);
}

TEST_F(NotationsTest, RestrictClassNotationMatchesNative) {
  fs::Extension everything;
  for (const rdf::TripleId& t : g_.triples()) everything.insert(t.s);
  fs::MaterializeExtension(&g_, everything);
  auto via_sparql =
      fs::EvalNotation(&g_, fs::RestrictClassSparql(kEx + "Product"));
  ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();
  // The materialization itself only added type triples, so native Restrict
  // over the original extension agrees.
  EXPECT_EQ(via_sparql.value(),
            fs::RestrictClass(g_, everything,
                              g_.terms().FindIri(kEx + "Product")));
  fs::ClearExtension(&g_);
}

TEST_F(NotationsTest, CountNotationMatchesFacetCount) {
  fs::MaterializeExtension(&g_, laptops_);
  fs::PropRef man{kEx + "manufacturer", false};
  rdf::Term dell = rdf::Term::Iri(kEx + "DELL");
  auto res = sparql::ExecuteQueryString(&g_,
                                        fs::RestrictCountSparql(man, dell));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "2");
  fs::ClearExtension(&g_);
}

TEST_F(NotationsTest, InverseJoinsNotation) {
  fs::Extension usa = {g_.terms().FindIri(kEx + "USA")};
  fs::MaterializeExtension(&g_, usa);
  fs::PropRef inv_origin{kEx + "origin", true};
  auto via_sparql = fs::EvalNotation(&g_, fs::JoinsSparql(inv_origin));
  ASSERT_TRUE(via_sparql.ok());
  EXPECT_EQ(via_sparql.value(), fs::Joins(g_, usa, inv_origin));
  EXPECT_EQ(via_sparql.value().size(), 2u);  // DELL, AVDElectronics
  fs::ClearExtension(&g_);
}

// ---------------- multi-root contexts (§4.1.2) ----------------

TEST(MultiRootTest, ContextUnionsInstances) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  hifun::AnalysisContext both(
      g, std::vector<std::string>{kEx + "Laptop", kEx + "Company"});
  EXPECT_EQ(both.items().size(), 7u);  // 3 laptops + 4 companies
  hifun::AnalysisContext one(g, kEx + "Laptop");
  EXPECT_EQ(one.items().size(), 3u);
}

TEST(MultiRootTest, QueryOverTwoRootsAgreesAcrossStrategies) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  // Count items per class-agnostic manufacturer property across laptops
  // AND hard drives (both have `manufacturer`).
  hifun::Query q;
  q.root_class = kEx + "Laptop";
  q.extra_root_classes = {kEx + "SSD", kEx + "NVMe"};
  q.grouping = hifun::AttrExpr::Property(kEx + "manufacturer");
  q.measuring = hifun::AttrExpr::Identity();
  q.ops = {hifun::AggOp::kCount};

  hifun::Evaluator eval(g);
  auto direct = eval.Evaluate(q);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto sparql_text = translator::TranslateToSparql(q);
  ASSERT_TRUE(sparql_text.ok());
  EXPECT_NE(sparql_text.value().find("UNION"), std::string::npos);
  auto via_sparql = sparql::ExecuteQueryString(&g, sparql_text.value());
  ASSERT_TRUE(via_sparql.ok())
      << via_sparql.status().ToString() << "\n" << sparql_text.value();

  auto canon = [](const sparql::ResultTable& t) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::DisplayTerm(t.at(r, 0))] =
          sparql::Value::FromTerm(t.at(r, 1)).AsNumeric().value_or(-1);
    }
    return out;
  };
  auto a = canon(direct.value());
  auto b = canon(via_sparql.value());
  EXPECT_EQ(a, b);
  // DELL: 2 laptops; Maxtor: SSD1 + NVMe1; Lenovo: 1; AVDElectronics: SSD2.
  EXPECT_EQ(a.at("DELL"), 2);
  EXPECT_EQ(a.at("Maxtor"), 2);
}

// ---------------- endpoint log ----------------

TEST(EndpointLogTest, LogAndStats) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  const std::string q =
      "SELECT ?x WHERE { ?x <" + kEx + "price> ?p . }";
  ASSERT_TRUE(ep.Query(q).ok());
  ASSERT_TRUE(ep.Query(q).ok());  // cache hit
  ASSERT_EQ(ep.log().size(), 2u);
  EXPECT_FALSE(ep.log()[0].cache_hit);
  EXPECT_TRUE(ep.log()[1].cache_hit);
  EXPECT_EQ(ep.log()[0].rows, 3u);
  EXPECT_EQ(ep.log()[0].query_head.substr(0, 6), "SELECT");
  endpoint::EndpointStats stats = ep.Stats();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_GE(stats.max_exec_ms, stats.mean_exec_ms);
  EXPECT_GE(stats.p95_exec_ms, 0);
}

TEST(EndpointLogTest, EmptyStats) {
  rdf::Graph g;
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  EXPECT_EQ(ep.Stats().count, 0u);
}

// ---------------- sports workload ----------------

TEST(SportsTest, GeneratorShapesAndDeterminism) {
  rdf::Graph a, b;
  workload::SportsOptions opt;
  opt.players = 300;
  workload::GenerateSportsKg(&a, opt);
  workload::GenerateSportsKg(&b, opt);
  EXPECT_EQ(a.size(), b.size());

  rdf::TermId type = a.terms().FindIri(rdf::rdfns::kType);
  EXPECT_EQ(a.CountMatch(rdf::kNoTermId, type,
                         a.terms().FindIri(kSp + "Player")),
            300u);
  // Every player-season has functional goals/cleanSheets.
  hifun::AnalysisContext ctx(a, kSp + "Player");
  EXPECT_TRUE(ctx.Check(a, kSp + "goals").hifun_ready());
  EXPECT_TRUE(ctx.Check(a, kSp + "cleanSheets").hifun_ready());
}

TEST(SportsTest, IntroQueryAnswerable) {
  rdf::Graph g;
  workload::SportsOptions opt;
  opt.players = 600;
  workload::GenerateSportsKg(&g, opt);
  // Total goals of players in the Spanish league, season 2021.
  auto res = sparql::ExecuteQueryString(
      &g, "PREFIX sp: <" + kSp +
              ">\n"
              "SELECT (SUM(?g) AS ?goals) WHERE {\n"
              "  ?p a sp:Player ; sp:goals ?g ; sp:season sp:season2021 ;\n"
              "     sp:playsFor/sp:inLeague/sp:leagueCountry sp:Spain .\n"
              "}");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto v = sparql::Value::FromTerm(res.value().at(0, 0)).AsNumeric();
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(*v, 0);
}

}  // namespace
}  // namespace rdfa
