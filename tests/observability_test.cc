// Observability layer coverage: the per-query span Tracer (Chrome
// trace-event export, RAII closure on abort, tracing-on/off byte-identity),
// the process-wide MetricsRegistry (sharded counters/histograms, Prometheus
// exposition, exactly-once per-query ticks), the structured query log, and
// the bench_util helpers that ride along (Percentile edge cases, JSON
// escaping). Runs in both the plain and the TSan-labelled suite — the
// concurrent tests are the reason.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.h"
#include "analytics/rollup_cache.h"
#include "common/metrics.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/query_registry.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "endpoint/endpoint.h"
#include "rdf/binary_io.h"
#include "rdf/mapped_graph.h"
#include "rdf/mvcc.h"
#include "sparql/bgp.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa {
namespace {

using rdf::Term;

constexpr char kInvQuery[] =
    "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
    "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
    "inv:inQuantity ?q . } GROUP BY ?b";

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker, so the tests can
// assert "this parses" without external dependencies.
class JsonChecker {
 public:
  static bool Valid(const std::string& s) {
    JsonChecker c(s);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.i_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (s_.compare(i_, n, word) != 0) return false;
    i_ += n;
    return true;
  }
  bool String() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (static_cast<unsigned char>(s_[i_]) < 0x20) return false;
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(s_[i_])) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    size_t digits = 0;
    while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
    if (digits == 0) return false;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      digits = 0;
      while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
      if (digits == 0) return false;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      digits = 0;
      while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
      if (digits == 0) return false;
    }
    return i_ > start;
  }
  bool Object() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }
  bool Array() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }
  bool Value() {
    SkipWs();
    if (i_ >= s_.size()) return false;
    char c = s_[i_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(JsonCheckerTest, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(JsonChecker::Valid("{\"a\":[1,2.5,-3e2,\"x\\n\",true,null]}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonChecker::Valid("\"unterminated"));
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, NullTracerSpansAreNoOps) {
  TraceSpan span(nullptr, "anything");
  span.Arg("k", int64_t{1});
  span.Arg("s", "v");
  EXPECT_FALSE(span.enabled());
  // Nothing to assert beyond "does not crash": the disabled path must be
  // safe from any thread with zero side effects.
}

TEST(TracerTest, SpansRecordNamesArgsAndNesting) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer");
    outer.Arg("rows", uint64_t{42});
    {
      TraceSpan inner(&tracer, "inner");
      inner.Arg("strategy", "hash");
      inner.Arg("hit", true);
    }
  }
  tracer.Instant("marker");
  ASSERT_EQ(tracer.span_count(), 3u);
  EXPECT_TRUE(tracer.HasSpan("outer"));
  EXPECT_TRUE(tracer.HasSpan("inner"));
  EXPECT_FALSE(tracer.HasSpan("absent"));

  auto spans = tracer.FinishedSpans();
  // Completion order: inner closes before outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  // Containment: inner starts no earlier and ends no later than outer.
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[0].start_us + spans[0].dur_us,
            spans[1].start_us + spans[1].dur_us + 1e-3);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "strategy");
  EXPECT_EQ(spans[0].args[0].second, "\"hash\"");
  EXPECT_EQ(spans[0].args[1].second, "true");

  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TracerTest, ConcurrentSpansFromManyThreads) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "work");
        span.Arg("i", static_cast<int64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.span_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Thread ordinals are small and dense, not raw thread ids.
  for (const auto& s : tracer.FinishedSpans()) {
    EXPECT_GE(s.tid, 0);
    EXPECT_LT(s.tid, kThreads);
  }
  EXPECT_TRUE(JsonChecker::Valid(tracer.ToChromeJson()));
}

// ---------------------------------------------------------------------------
// Pipeline stage coverage + tracing-on/off equivalence

TEST(TraceCoverageTest, TracedQueryCoversThePipelineStages) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  auto resp = ep.Query(kInvQuery, ctx);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp.value().status.ok());

  // Roll up a materialized frame through the same tracer: the cache path
  // is a separate entry point a plain SPARQL query never takes.
  sparql::ResultTable table({"brand", "sales"});
  for (int i = 0; i < 9; ++i) {
    table.AddRow({Term::Iri("urn:b" + std::to_string(i % 3)),
                  Term::Integer(i)});
  }
  analytics::AnswerFrame frame(std::move(table));
  auto rolled = analytics::RollUpAnswer(frame, {"brand"}, "sales",
                                        hifun::AggOp::kSum, 1, ctx);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  const char* kExpectedStages[] = {"admission-queue", "parse",   "plan",
                                   "bgp-join",        "execute", "index-build",
                                   "group-aggregate", "rollup-cache"};
  size_t covered = 0;
  for (const char* stage : kExpectedStages) {
    EXPECT_TRUE(tracer->HasSpan(stage)) << "missing span: " << stage;
    if (tracer->HasSpan(stage)) ++covered;
  }
  EXPECT_GE(covered, 6u);
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

TEST(TraceCoverageTest, ResultsByteIdenticalWithTracingOnAndOff) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 500;
  workload::GenerateProductKg(&g, opt);
  const std::string query =
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (AVG(?p) AS ?avg) WHERE { ?l ex:manufacturer ?m . "
      "?l ex:price ?p . } GROUP BY ?m ORDER BY ?m";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());

  auto run = [&](bool traced, int threads) {
    sparql::Executor exec(&g);
    exec.set_thread_count(threads);
    if (traced) {
      QueryContext ctx;
      ctx.set_tracer(std::make_shared<Tracer>());
      exec.set_query_context(ctx);
    }
    auto r = exec.Execute(parsed.value());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value().ToTsv() : std::string();
  };

  const std::string baseline = run(false, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(true, 1), baseline);
  EXPECT_EQ(run(false, 4), baseline);
  EXPECT_EQ(run(true, 4), baseline);
}

// ---------------------------------------------------------------------------
// Abort path: a cancellation tripping mid-join must still yield a
// well-formed trace whose aborted span is closed and named like the
// abort stage.

TEST(AbortTraceTest, MidJoinCancellationClosesTheAbortedSpan) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 1000;  // price build range comfortably > one 512-row check
  workload::GenerateProductKg(&g, opt);
  g.Freeze();
  const std::string kEx = workload::kExampleNs;

  sparql::VarTable vars;
  sparql::TriplePattern tp1{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "manufacturer")),
      sparql::NodePattern::Var("m")};
  sparql::TriplePattern tp2{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "price")),
      sparql::NodePattern::Var("p")};
  std::vector<sparql::CompiledPattern> patterns = {
      sparql::CompileTriple(tp1, &vars, g),
      sparql::CompileTriple(tp2, &vars, g)};

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  ctx.CancelAfterChecks(4);  // deterministically inside the hash build
  sparql::ExecStats stats;
  sparql::JoinOptions jopts;
  jopts.stats = &stats;
  jopts.ctx = &ctx;
  jopts.strategy = sparql::JoinStrategy::kHash;
  std::vector<sparql::Binding> rows = {
      sparql::Binding(vars.size(), rdf::kNoTermId)};
  Status st = sparql::JoinBgp(g, patterns, vars.size(), /*reorder=*/false,
                              jopts, &rows);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  ASSERT_STREQ(ctx.trip_stage(), "hash-build");

  // The span carrying the abort stage's name was closed by RAII unwind.
  EXPECT_TRUE(tracer->HasSpan(ctx.trip_stage()));
  EXPECT_TRUE(tracer->HasSpan("bgp-join"));
  // Every recorded span is complete (an "X" event with a duration), so the
  // whole trace still renders.
  for (const auto& s : tracer->FinishedSpans()) {
    EXPECT_GE(s.dur_us, 0.0) << s.name;
  }
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

TEST(AbortTraceTest, ExecutorAbortStageMatchesATracedSpan) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 500;
  workload::GenerateProductKg(&g, opt);
  const std::string query =
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . } "
      "GROUP BY ?m";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());

  // Probe: count the deterministic checks of a clean run, then replay and
  // trip on the final check — the group-aggregate stage for this query.
  QueryContext probe;
  {
    sparql::Executor exec(&g);
    exec.set_thread_count(4);
    exec.set_query_context(probe);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  ASSERT_GT(probe.checks_performed(), 1);

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  ctx.CancelAfterChecks(probe.checks_performed());
  sparql::Executor exec(&g);
  exec.set_thread_count(4);
  exec.set_query_context(ctx);
  auto r = exec.Execute(parsed.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(exec.stats().aborted);
  ASSERT_FALSE(exec.stats().abort_stage.empty());
  EXPECT_TRUE(tracer->HasSpan(exec.stats().abort_stage))
      << "no span named " << exec.stats().abort_stage;
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterShardsSumAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("rdfa_test_shard_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, HistogramBucketsObserveAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);   // bucket le=1
  h.Observe(1.0);   // le=1 (inclusive upper bound)
  h.Observe(5.0);   // le=10
  h.Observe(500.0); // +Inf overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 506.5);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, PrometheusTextExposesAllMetricKinds) {
  MetricsRegistry reg;
  reg.GetCounter("rdfa_test_queries_total", "Total queries").Increment(3);
  reg.GetGauge("rdfa_test_queue_depth", "Waiters").Set(2);
  Histogram& h =
      reg.GetHistogram("rdfa_test_latency_ms", {1.0, 10.0}, "Latency");
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  std::string text = reg.PrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("# HELP rdfa_test_queries_total Total queries"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_queries_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_latency_ms histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="10" holds 2, +Inf holds all 3.
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_count 3"), std::string::npos);

  // Every non-comment line is "name value" or "name{labels} value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0]))) << line;
  }
  EXPECT_TRUE(JsonChecker::Valid(reg.ToJson()));
}

TEST(MetricsTest, GlobalRegistryExpositionStaysWellFormed) {
  // Feed the global registry through the engine path, then check that the
  // exposition formats hold over its real state.
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?l ?m WHERE { ?l ex:manufacturer ?m . }");
  ASSERT_TRUE(parsed.ok());
  sparql::Executor exec(&g);
  ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  std::string text = MetricsRegistry::Global().PrometheusText();
  EXPECT_TRUE(JsonChecker::Valid(MetricsRegistry::Global().ToJson()));
  for (const char* needle :
       {"rdfa_queries_total", "rdfa_query_latency_ms"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsTickTest, LatencyHistogramCountEqualsQueriesExecuted) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?l ?m WHERE { ?l ex:manufacturer ?m . }");
  ASSERT_TRUE(parsed.ok());
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    sparql::Executor exec(&g);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  const Counter* total =
      MetricsRegistry::Global().FindCounter("rdfa_queries_total");
  const Histogram* latency =
      MetricsRegistry::Global().FindHistogram("rdfa_query_latency_ms");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(total->Value(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(latency->Count(), static_cast<uint64_t>(kQueries));
}

TEST(MetricsTickTest, CancelledAndTimedOutTickExactlyOncePerQuery) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 300;
  workload::GenerateProductKg(&g, opt);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . } "
      "GROUP BY ?m");
  ASSERT_TRUE(parsed.ok());

  // Query 1: clean. Query 2: cancelled mid-run (check-count replay).
  // Query 3: timed out at admission (zero budget fast-fail).
  QueryContext probe;
  {
    sparql::Executor exec(&g);
    exec.set_query_context(probe);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  {
    QueryContext ctx;
    ctx.CancelAfterChecks(probe.checks_performed());
    sparql::Executor exec(&g);
    exec.set_query_context(ctx);
    auto r = exec.Execute(parsed.value());
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  {
    sparql::Executor exec(&g);
    exec.set_query_context(QueryContext::WithDeadlineMs(0));
    auto r = exec.Execute(parsed.value());
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }

  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.FindCounter("rdfa_queries_total")->Value(), 3u);
  EXPECT_EQ(reg.FindCounter("rdfa_queries_cancelled_total")->Value(), 1u);
  EXPECT_EQ(reg.FindCounter("rdfa_queries_timed_out_total")->Value(), 1u);
  EXPECT_EQ(reg.FindHistogram("rdfa_query_latency_ms")->Count(), 3u);
}

TEST(MetricsTickTest, CacheCountersTickExactlyOncePerEvent) {
  // Every cache event — answer hit/miss, plan hit/miss, generation
  // invalidation, capacity eviction — ticks its exported counter exactly
  // once, and all the series appear in the Prometheus exposition.
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  CacheOptions opts;
  opts.max_entries = 1;
  opts.shards = 1;
  ep.set_cache_options(opts);

  const std::string other =
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "SELECT ?i ?q WHERE { ?i inv:inQuantity ?q . FILTER(?q > 5) }";
  // miss, hit, then a second key evicts the first (capacity 1).
  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  ASSERT_TRUE(ep.Query(other).ok());
  // Mutation, then re-query of the resident key: one invalidation.
  ASSERT_TRUE(sparql::ExecuteUpdateString(
                  &g,
                  "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
                  "INSERT DATA { inv:i97 inv:inQuantity 50 . }")
                  .ok());
  ASSERT_TRUE(ep.Query(other).ok());

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* hits = reg.FindCounter("rdfa_endpoint_cache_hits_total");
  const Counter* misses = reg.FindCounter("rdfa_endpoint_cache_misses_total");
  const Counter* evictions =
      reg.FindCounter("rdfa_endpoint_cache_evictions_total");
  const Counter* invalidations =
      reg.FindCounter("rdfa_endpoint_cache_invalidations_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(evictions, nullptr);
  ASSERT_NE(invalidations, nullptr);
  EXPECT_EQ(hits->Value(), 1u);
  EXPECT_EQ(misses->Value(), 3u);  // first kInvQuery, first `other`, stale re-query
  EXPECT_EQ(evictions->Value(), 1u);
  EXPECT_EQ(invalidations->Value(), 1u);

  // The registry counters agree with the endpoint's own stats view.
  CacheStats stats = ep.answer_cache_stats();
  EXPECT_EQ(stats.hits, hits->Value());
  EXPECT_EQ(stats.misses, misses->Value());
  EXPECT_EQ(stats.evictions, evictions->Value());
  EXPECT_EQ(stats.invalidations, invalidations->Value());

  std::string text = reg.PrometheusText();
  for (const char* needle :
       {"rdfa_endpoint_cache_hits_total", "rdfa_endpoint_cache_misses_total",
        "rdfa_endpoint_cache_evictions_total",
        "rdfa_endpoint_cache_invalidations_total",
        "rdfa_plan_cache_hits_total", "rdfa_plan_cache_misses_total"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsTickTest, PlanCacheCountersTickExactlyOncePerEvent) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  // A 1-byte answer budget forces every repeat onto the plan-cache path
  // (answers are never resident, plans are).
  CacheOptions opts;
  opts.max_bytes = 1;
  opts.shards = 1;
  ep.set_cache_options(opts);

  auto first = ep.Query(kInvQuery);   // plan miss
  auto second = ep.Query(kInvQuery);  // plan hit
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(second.value().plan_cache_hit);

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* hits = reg.FindCounter("rdfa_plan_cache_hits_total");
  const Counter* misses = reg.FindCounter("rdfa_plan_cache_misses_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(hits->Value(), 1u);
  EXPECT_EQ(misses->Value(), 1u);
  EXPECT_EQ(ep.plan_cache_stats().hits, 1u);
  EXPECT_EQ(ep.plan_cache_stats().misses, 1u);
}

TEST(MetricsTickTest, RollupCacheCountersShareTheProtocol) {
  MetricsRegistry::Global().ResetForTest();
  analytics::RollupCache cache;
  sparql::ResultTable table({"brand", "sales"});
  for (int i = 0; i < 6; ++i) {
    table.AddRow({Term::Iri("urn:b" + std::to_string(i % 2)),
                  Term::Integer(i)});
  }
  analytics::AnswerFrame frame(std::move(table));
  auto miss = cache.RollUp("src", 1, frame, {"brand"}, "sales",
                           hifun::AggOp::kSum);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  auto hit = cache.RollUp("src", 1, frame, {"brand"}, "sales",
                          hifun::AggOp::kSum);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().table().ToTsv(), miss.value().table().ToTsv());
  // A newer generation invalidates the memo.
  auto inval = cache.RollUp("src", 2, frame, {"brand"}, "sales",
                            hifun::AggOp::kSum);
  ASSERT_TRUE(inval.ok());
  EXPECT_EQ(inval.value().table().ToTsv(), miss.value().table().ToTsv());

  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.FindCounter("rdfa_rollup_cache_hits_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("rdfa_rollup_cache_hits_total")->Value(), 1u);
  EXPECT_EQ(reg.FindCounter("rdfa_rollup_cache_misses_total")->Value(), 2u);
  EXPECT_EQ(
      reg.FindCounter("rdfa_rollup_cache_invalidations_total")->Value(), 1u);
}

// ---------------------------------------------------------------------------
// Structured query log

TEST(QueryLogTest, HashIsStableAndContentSensitive) {
  EXPECT_EQ(HashQueryText("SELECT ?x"), HashQueryText("SELECT ?x"));
  EXPECT_NE(HashQueryText("SELECT ?x"), HashQueryText("SELECT ?y"));
  EXPECT_NE(HashQueryText(""), HashQueryText(" "));
}

TEST(QueryLogTest, FormatProducesOneWellFormedJsonLine) {
  QueryLogRecord rec;
  rec.query_hash = HashQueryText(kInvQuery);
  rec.query_head = "SELECT \"quoted\"\nnext line";  // must be escaped
  rec.outcome = "ok";
  rec.total_ms = 1.5;
  rec.queued_ms = 0.25;
  rec.rows = 3;
  rec.cache_hit = false;
  rec.exec_stats_json = "{\"threads\":1}";
  rec.trace_file = "/tmp/q-0.json";
  std::string line = FormatQueryLogLine(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one line per record";
  EXPECT_TRUE(JsonChecker::Valid(line)) << line;
  EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"exec_stats\":{\"threads\":1}"), std::string::npos);
}

TEST(QueryLogTest, EndpointWritesTraceFilesAndStructuredLog) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "rdfa_obs_trace";
  const std::string log_path =
      ::testing::TempDir() + "rdfa_obs_queries.jsonl";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::remove(log_path, ec);

  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  ep.set_trace_dir(dir);
  ep.set_query_log_path(log_path);

  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  // A parse failure must still produce a log line (outcome "error").
  EXPECT_FALSE(ep.Query("SELECT FROM NOWHERE").ok());

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonChecker::Valid(l)) << l;
  }
  EXPECT_NE(lines[0].find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"outcome\":\"error\""), std::string::npos);

  // The served query produced a trace file; its content is a valid Chrome
  // trace covering the endpoint's own admission span.
  size_t trace_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++trace_files;
    std::ifstream tf(entry.path());
    std::string content((std::istreambuf_iterator<char>(tf)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonChecker::Valid(content)) << entry.path();
    EXPECT_NE(content.find("admission-queue"), std::string::npos);
  }
  EXPECT_GE(trace_files, 1u);

  // Endpoint-side queue stats surfaced in Stats() for the bench summaries.
  endpoint::EndpointStats stats = ep.Stats();
  EXPECT_GE(stats.p50_queued_ms, 0.0);
  EXPECT_GE(stats.p99_queued_ms, stats.p50_queued_ms);

  fs::remove_all(dir, ec);
  fs::remove(log_path, ec);
}

TEST(QueryLogTest, EndpointMetricsUseDistinctNamesFromEngineMetrics) {
  // A query shed at admission never reaches the Executor: it must tick the
  // endpoint counter exactly once and the engine counters not at all.
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  endpoint::AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 0;
  ep.set_admission(opts);
  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());
  auto resp = ep.Query(kInvQuery);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.value().status.code(), StatusCode::kResourceExhausted);

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* shed = reg.FindCounter("rdfa_endpoint_shed_total");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->Value(), 1u);
  const Counter* engine_total = reg.FindCounter("rdfa_queries_total");
  if (engine_total != nullptr) {
    EXPECT_EQ(engine_total->Value(), 0u);
  }
}

// ---------------------------------------------------------------------------
// bench_util satellites

TEST(PercentileTest, EmptySampleReturnsZero) {
  EXPECT_EQ(bench::Percentile({}, 0.5), 0.0);
  EXPECT_EQ(bench::Percentile({}, 0.99), 0.0);
}

TEST(PercentileTest, SingleElementReturnsItForEveryQuantile) {
  EXPECT_EQ(bench::Percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(bench::Percentile({7.5}, 0.5), 7.5);
  EXPECT_EQ(bench::Percentile({7.5}, 0.99), 7.5);
}

TEST(PercentileTest, OddAndEvenSizesUseNearestRank) {
  // Odd: 5 sorted elements, p50 is the middle one.
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 0.5), 3.0);
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 0.0), 1.0);
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 1.0), 5.0);
  // Even: 4 elements, nearest-rank p50 = element at floor(3 * 0.5) = idx 1.
  EXPECT_EQ(bench::Percentile({4, 1, 3, 2}, 0.5), 2.0);
  EXPECT_EQ(bench::Percentile({4, 1, 3, 2}, 1.0), 4.0);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscapeTest, ExecStatsToJsonSurvivesHostileStrings) {
  sparql::ExecStats stats;
  stats.aborted = true;
  stats.abort_stage = "stage\"with\\quotes\nand newline";
  stats.join_strategy = {'H', '"'};
  stats.rows_scanned = {1, 2};
  std::string json = stats.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(JsonEscapeTest, BenchJsonObjectEscapesStringValues) {
  bench::JsonObject obj;
  obj.AddString("q", "SELECT \"x\"\nFROM");
  obj.AddNumber("ms", 1.5);
  obj.AddBool("ok", true);
  std::string json = obj.Render();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(TraceSinkTest, DisabledSinkIsInertEnabledSinkWritesFiles) {
  bench::TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(sink.StartRun(), nullptr);
  EXPECT_EQ(sink.FinishRun(nullptr, "x"), "");

  const std::string dir = ::testing::TempDir() + "rdfa_obs_sink";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  sink.set_dir(dir);
  auto tracer = sink.StartRun();
  ASSERT_NE(tracer, nullptr);
  { TraceSpan span(tracer.get(), "step"); }
  std::string path = sink.FinishRun(tracer.get(), "run");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_TRUE(JsonChecker::Valid(content));
  EXPECT_NE(content.find("\"step\""), std::string::npos);
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Labeled metric families: Prometheus escaping and HELP/TYPE exposition.

size_t CountOccurrences(const std::string& haystack, const std::string& pin) {
  size_t n = 0;
  for (size_t pos = haystack.find(pin); pos != std::string::npos;
       pos = haystack.find(pin, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(MetricsLabelTest, EscapeLabelValueHandlesAllSpecials) {
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(MetricsRegistry::LabeledName("fam", "stage", "bgp-join"),
            "fam{stage=\"bgp-join\"}");
}

TEST(MetricsLabelTest, LabeledFamiliesEmitHelpAndTypeOnce) {
  MetricsRegistry reg;
  reg.GetGaugeLabeled("test_stage_gauge", "stage", "parse",
                      "queries per stage")
      .Set(2);
  reg.GetGaugeLabeled("test_stage_gauge", "stage", "bgp-join",
                      "queries per stage")
      .Set(3);
  reg.GetCounterLabeled("test_kill_total", "stage", "he said \"now\"\n")
      .Increment(7);

  const std::string text = reg.PrometheusText();
  // One HELP and one TYPE line per *family*, not per series.
  EXPECT_EQ(CountOccurrences(text, "# HELP test_stage_gauge "), 1u) << text;
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_stage_gauge gauge"), 1u)
      << text;
  EXPECT_EQ(CountOccurrences(text, "# TYPE test_kill_total counter"), 1u)
      << text;
  EXPECT_NE(text.find("queries per stage"), std::string::npos);
  // Both series render with their label, values intact.
  EXPECT_NE(text.find("test_stage_gauge{stage=\"parse\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_stage_gauge{stage=\"bgp-join\"} 3"),
            std::string::npos)
      << text;
  // The hostile label value is escaped, keeping the exposition line-oriented.
  EXPECT_NE(text.find("test_kill_total{stage=\"he said \\\"now\\\"\\n\"} 7"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find('\n', text.find("test_kill_total{")),
            text.find(" 7", text.find("test_kill_total{")) + 2);
}

// ---------------------------------------------------------------------------
// ProfileJson: the flat span list rebuilds into the operator tree.

TEST(TracerTest, ProfileJsonNestsSpansByContainment) {
  Tracer tracer;
  {
    TraceSpan execute(&tracer, "execute");
    {
      TraceSpan plan(&tracer, "plan");
      plan.Arg("patterns", static_cast<int64_t>(3));
    }
    {
      TraceSpan join(&tracer, "bgp-join");
      { TraceSpan seek(&tracer, "sieve-seek"); }
    }
  }
  { TraceSpan tail(&tracer, "rollup-cache"); }

  const std::string profile = tracer.ProfileJson();
  ASSERT_TRUE(JsonChecker::Valid(profile)) << profile;
  // Two roots, creation order: execute first, rollup-cache second.
  const size_t exec_pos = profile.find("\"op\":\"execute\"");
  const size_t tail_pos = profile.find("\"op\":\"rollup-cache\"");
  ASSERT_NE(exec_pos, std::string::npos) << profile;
  ASSERT_NE(tail_pos, std::string::npos) << profile;
  EXPECT_LT(exec_pos, tail_pos);
  // plan and bgp-join sit inside execute's children array, siblings in
  // creation order; sieve-seek nests one level further down.
  const size_t children_pos = profile.find("\"children\":", exec_pos);
  ASSERT_NE(children_pos, std::string::npos) << profile;
  const size_t plan_pos = profile.find("\"op\":\"plan\"");
  const size_t join_pos = profile.find("\"op\":\"bgp-join\"");
  const size_t seek_pos = profile.find("\"op\":\"sieve-seek\"");
  ASSERT_NE(plan_pos, std::string::npos);
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(seek_pos, std::string::npos);
  EXPECT_LT(children_pos, plan_pos);
  EXPECT_LT(plan_pos, join_pos);
  EXPECT_LT(join_pos, seek_pos);
  EXPECT_LT(seek_pos, tail_pos);
  // Span args ride along on the profile node.
  EXPECT_NE(profile.find("\"patterns\":3"), std::string::npos) << profile;
  // Every node carries a duration.
  EXPECT_GE(CountOccurrences(profile, "\"ms\":"), 5u);
}

// ---------------------------------------------------------------------------
// The live query registry: registration, sampling, kill, concurrency.

TEST(QueryRegistryTest, RegisterSnapshotProgressAndRelease) {
  QueryRegistry& reg = QueryRegistry::Global();
  QueryContext ctx = QueryContext::WithDeadlineMs(3600 * 1000.0);
  const std::string text = "SELECT ?s WHERE { ?s ?p ?o }";
  int64_t id = -1;
  {
    QueryRegistry::Handle h =
        reg.Register(&ctx, text, HashQueryText(text), /*snapshot_epoch=*/42);
    id = h.id();
    ASSERT_GE(id, 0);

    // The context copy now publishes stage + rows into the slot.
    QueryContext copy = ctx;
    ASSERT_TRUE(copy.Check("bgp-join").ok());
    copy.AddProgressRows(123);

    bool found = false;
    for (const InflightQuery& q : reg.Snapshot()) {
      if (q.id != id) continue;
      found = true;
      EXPECT_EQ(q.query_hash, HashQueryText(text));
      EXPECT_EQ(q.snapshot_epoch, 42u);
      EXPECT_EQ(q.head.substr(0, 6), "SELECT");
      ASSERT_NE(q.stage, nullptr);
      EXPECT_STREQ(q.stage, "bgp-join");
      EXPECT_EQ(q.rows, 123u);
      EXPECT_GE(q.elapsed_ms, 0.0);
      // An armed deadline samples as a finite remaining budget.
      EXPECT_TRUE(std::isfinite(q.deadline_remaining_ms));
      EXPECT_GT(q.deadline_remaining_ms, 0.0);
    }
    EXPECT_TRUE(found);

    // A second, deadline-less query samples as infinite remaining budget.
    QueryContext free_ctx;
    QueryRegistry::Handle h2 = reg.Register(&free_ctx, "ASK { ?s ?p ?o }",
                                            /*query_hash=*/1, 0);
    for (const InflightQuery& q : reg.Snapshot()) {
      if (q.id == h2.id()) {
        EXPECT_FALSE(std::isfinite(q.deadline_remaining_ms));
      }
    }
  }
  // Both handles released: the ids are gone from the sample.
  for (const InflightQuery& q : reg.Snapshot()) {
    EXPECT_NE(q.id, id);
  }
}

TEST(QueryRegistryTest, KillCancelsTheRegisteredContext) {
  QueryRegistry& reg = QueryRegistry::Global();
  QueryContext ctx;
  QueryRegistry::Handle h =
      reg.Register(&ctx, "SELECT * WHERE { ?s ?p ?o }", 7, 0);
  ASSERT_GE(h.id(), 0);
  ASSERT_TRUE(ctx.Check("execute").ok());

  EXPECT_FALSE(reg.Kill(h.id() + 100000));  // unknown id
  EXPECT_TRUE(reg.Kill(h.id()));
  // The query's own context copies observe the cancellation.
  Status s = ctx.Check("execute");
  EXPECT_FALSE(s.ok());
}

TEST(QueryRegistryTest, StageGaugesTrackAndDrainToZero) {
  MetricsRegistry::Global().ResetForTest();
  QueryRegistry& reg = QueryRegistry::Global();
  QueryContext ctx;
  {
    QueryRegistry::Handle h = reg.Register(&ctx, "SELECT 1", 9, 0);
    ASSERT_TRUE(ctx.Check("hash-build").ok());
    reg.UpdateStageGauges();
    const std::string text = MetricsRegistry::Global().PrometheusText();
    EXPECT_NE(
        text.find("rdfa_inflight_queries_by_stage{stage=\"hash-build\"} 1"),
        std::string::npos)
        << text;
  }
  reg.UpdateStageGauges();
  const std::string text = MetricsRegistry::Global().PrometheusText();
  // The emptied stage keeps its series at 0 rather than disappearing.
  EXPECT_NE(
      text.find("rdfa_inflight_queries_by_stage{stage=\"hash-build\"} 0"),
      std::string::npos)
      << text;
}

// TSan target: writers registering/unregistering, a query thread hammering
// stage/rows, a sampler reading lock-free, and kills landing mid-flight.
TEST(QueryRegistryTest, ConcurrentRegisterSampleKill) {
  QueryRegistry& reg = QueryRegistry::Global();
  constexpr int kWriters = 4;
  constexpr int kQueriesPerWriter = 50;
  std::atomic<bool> stop{false};

  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const InflightQuery& q : reg.Snapshot()) {
        // Dereference everything a `ps` implementation would.
        ASSERT_GE(q.id, 0);
        if (q.stage != nullptr) {
          ASSERT_GT(std::string(q.stage).size(), 0u);
        }
      }
      reg.UpdateStageGauges();
    }
  });
  std::thread killer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto snap = reg.Snapshot();
      if (!snap.empty()) reg.Kill(snap[snap.size() / 2].id);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, w] {
      for (int i = 0; i < kQueriesPerWriter; ++i) {
        QueryContext ctx;
        QueryRegistry::Handle h = reg.Register(
            &ctx, "SELECT ?x WHERE { ?x ?y ?z }",
            static_cast<uint64_t>(w * 1000 + i), static_cast<uint64_t>(i));
        QueryContext copy = ctx;
        for (int step = 0; step < 20; ++step) {
          // Killed queries unwind exactly like production joins do.
          if (!copy.Check(step % 2 == 0 ? "bgp-join" : "group-aggregate")
                   .ok()) {
            break;
          }
          copy.AddProgressRows(17);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  sampler.join();
  killer.join();

  // Every handle released: the registry drains empty.
  EXPECT_TRUE(reg.Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Slow-query capture ring.

TEST(SlowQueryCaptureTest, RingNeverGrowsPastMaxFiles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "rdfa_obs_slow_ring";
  std::error_code ec;
  fs::remove_all(dir, ec);

  SlowQueryCapturer cap(dir, /*threshold_ms=*/1.0, /*max_files=*/3);
  ASSERT_TRUE(cap.enabled());
  EXPECT_EQ(cap.MaybeCapture(0.5, "{\"fast\":true}"), "");  // below threshold
  for (int i = 0; i < 8; ++i) {
    const std::string path =
        cap.MaybeCapture(5.0, "{\"seq\":" + std::to_string(i) + "}");
    ASSERT_FALSE(path.empty());
  }
  EXPECT_EQ(cap.captures(), 8);

  size_t files = 0;
  bool saw_latest = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    std::ifstream in(entry.path());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonChecker::Valid(content)) << entry.path();
    if (content == "{\"seq\":7}") saw_latest = true;
  }
  EXPECT_EQ(files, 3u);  // seq 5,6,7 survive in slots 2,0,1
  EXPECT_TRUE(saw_latest);

  SlowQueryCapturer off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.MaybeCapture(1e9, "{}"), "");
  fs::remove_all(dir, ec);
}

TEST(SlowQueryCaptureTest, EndpointCapturesForensicRecordWithProfile) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "rdfa_obs_slow_ep";
  std::error_code ec;
  fs::remove_all(dir, ec);

  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  // Threshold 0: every query is "slow", so one query suffices.
  ep.set_slow_query_capture(dir, /*threshold_ms=*/0.0, /*max_files=*/4);
  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  ASSERT_NE(ep.slow_query_capturer(), nullptr);
  EXPECT_GE(ep.slow_query_capturer()->captures(), 1);

  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    std::ifstream in(entry.path());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    ASSERT_TRUE(JsonChecker::Valid(content)) << entry.path();
    // The capture is a full query-log record: outcome, stats, the new
    // planner/storage markers, and the embedded operator profile.
    EXPECT_NE(content.find("\"outcome\":\"ok\""), std::string::npos);
    EXPECT_NE(content.find("\"storage_backend\":\"heap\""),
              std::string::npos);
    EXPECT_NE(content.find("\"join_strategies\":"), std::string::npos);
    EXPECT_NE(content.find("\"profile\":"), std::string::npos);
    EXPECT_NE(content.find("\"op\":\"execute\""), std::string::npos);
    EXPECT_NE(content.find("\"op\":\"bgp-join\""), std::string::npos);
  }
  EXPECT_GE(files, 1u);
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE across join strategies and storage backends.

struct ExplainFixture {
  std::unique_ptr<rdf::Graph> heap;
  std::unique_ptr<rdf::Graph> mapped;
  std::string snapshot_path;

  ExplainFixture() {
    heap = std::make_unique<rdf::Graph>();
    workload::ProductKgOptions opt;
    opt.laptops = 120;
    opt.seed = 7;
    workload::GenerateProductKg(heap.get(), opt);
    snapshot_path = ::testing::TempDir() + "rdfa_obs_explain.rdfa";
    EXPECT_TRUE(rdf::SaveBinaryFile(*heap, snapshot_path).ok());
    auto opened = rdf::OpenMappedSnapshot(snapshot_path);
    EXPECT_TRUE(opened.ok());
    mapped = std::move(opened.value());
  }
  ~ExplainFixture() { std::remove(snapshot_path.c_str()); }
};

constexpr char kProductPfx[] =
    "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
constexpr char kJoinQuery[] =
    "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
    "?l ex:price ?p }";

TEST(ExplainTest, SchemaHoldsAcrossStrategiesAndBackends) {
  ExplainFixture fx;
  auto parsed = sparql::ParseQuery(kProductPfx + std::string(kJoinQuery));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  const sparql::JoinStrategy strategies[] = {
      sparql::JoinStrategy::kAdaptive, sparql::JoinStrategy::kNestedLoop,
      sparql::JoinStrategy::kHash, sparql::JoinStrategy::kMerge};
  const char* strategy_names[] = {"adaptive", "nested-loop", "hash", "merge"};

  struct Backend {
    rdf::Graph* g;
    const char* name;
  } backends[] = {{fx.heap.get(), "heap"}, {fx.mapped.get(), "mmap"}};

  for (const Backend& b : backends) {
    for (size_t i = 0; i < 4; ++i) {
      sparql::Executor exec(b.g);
      exec.set_join_strategy(strategies[i]);
      const std::string plan = exec.ExplainJson(parsed.value());
      ASSERT_TRUE(JsonChecker::Valid(plan)) << plan;
      EXPECT_NE(plan.find("\"form\":\"select\""), std::string::npos) << plan;
      EXPECT_NE(plan.find(std::string("\"strategy\":\"") +
                          strategy_names[i] + "\""),
                std::string::npos)
          << plan;
      EXPECT_NE(plan.find(std::string("\"backend\":\"") + b.name + "\""),
                std::string::npos)
          << plan;
      EXPECT_NE(plan.find("\"use_dp\":"), std::string::npos) << plan;
      EXPECT_NE(plan.find("\"threads\":"), std::string::npos) << plan;
      EXPECT_NE(plan.find("\"bgps\":["), std::string::npos) << plan;
      // Three patterns → three plan steps, each annotated.
      EXPECT_EQ(CountOccurrences(plan, "\"pattern\":"), 3u) << plan;
      EXPECT_EQ(CountOccurrences(plan, "\"perm\":"), 3u) << plan;
      EXPECT_EQ(CountOccurrences(plan, "\"est_rows\":"), 3u) << plan;
    }
  }

  // EXPLAIN plans without executing: a fresh executor's stats stay empty.
  sparql::Executor exec(fx.heap.get());
  exec.ExplainJson(parsed.value());
  EXPECT_EQ(exec.stats().total_ms, 0.0);
}

TEST(ExplainTest, AnalyzeProfileReconcilesWithExecStats) {
  ExplainFixture fx;
  auto parsed = sparql::ParseQuery(kProductPfx + std::string(kJoinQuery));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  const sparql::JoinStrategy strategies[] = {
      sparql::JoinStrategy::kAdaptive, sparql::JoinStrategy::kNestedLoop,
      sparql::JoinStrategy::kHash, sparql::JoinStrategy::kMerge};

  struct Backend {
    rdf::Graph* g;
    const char* name;
  } backends[] = {{fx.heap.get(), "heap"}, {fx.mapped.get(), "mmap"}};

  // Join strategies may legitimately emit rows in different orders; the
  // row *set* must agree across every (strategy, backend) configuration,
  // and within one configuration profiling must not change a byte.
  auto sorted_lines = [](const std::string& tsv) {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < tsv.size()) {
      size_t end = tsv.find('\n', start);
      if (end == std::string::npos) end = tsv.size();
      lines.push_back(tsv.substr(start, end - start));
      start = end + 1;
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  std::vector<std::string> reference_rows;
  for (const Backend& b : backends) {
    for (const sparql::JoinStrategy strategy : strategies) {
      // Untraced run = the answer bytes the profiled run must reproduce.
      sparql::Executor plain(b.g);
      plain.set_join_strategy(strategy);
      auto baseline = plain.Execute(parsed.value());
      ASSERT_TRUE(baseline.ok());
      const std::string baseline_tsv = baseline.value().ToTsv();
      if (reference_rows.empty()) {
        reference_rows = sorted_lines(baseline_tsv);
      } else {
        EXPECT_EQ(sorted_lines(baseline_tsv), reference_rows)
            << "result set diverged on " << b.name;
      }

      auto tracer = std::make_shared<Tracer>();
      sparql::Executor exec(b.g);
      exec.set_join_strategy(strategy);
      QueryContext ctx;
      ctx.set_tracer(tracer);
      exec.set_query_context(ctx);
      auto table = exec.Execute(parsed.value());
      ASSERT_TRUE(table.ok()) << table.status().message();
      EXPECT_EQ(table.value().ToTsv(), baseline_tsv)
          << "profiling changed the answer bytes on " << b.name;

      // The measured profile and the post-run stats must describe the same
      // execution: a bgp-join step per pattern, consistent strategy letters,
      // and a well-formed nested profile rooted at "execute".
      const sparql::ExecStats& stats = exec.stats();
      EXPECT_EQ(stats.join_strategy.size(), 3u);
      const std::string profile = tracer->ProfileJson();
      ASSERT_TRUE(JsonChecker::Valid(profile)) << profile;
      EXPECT_NE(profile.find("\"op\":\"execute\""), std::string::npos);
      EXPECT_TRUE(tracer->HasSpan("plan"));
      EXPECT_TRUE(tracer->HasSpan("bgp-join"));
      const std::string stats_json = stats.ToJson();
      ASSERT_TRUE(JsonChecker::Valid(stats_json)) << stats_json;
      if (std::string(b.name) == "mmap") {
        EXPECT_TRUE(tracer->HasSpan("mmap-decode"))
            << "mapped execution must account for block decodes";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Storage-layer instrumentation: MVCC commit, WAL replay, mmap decode.

TEST(StorageSpanTest, MvccCommitAndWalReplayEmitSpans) {
  MetricsRegistry::Global().ResetForTest();
  const std::string wal_path = ::testing::TempDir() + "rdfa_obs_wal.log";
  std::remove(wal_path.c_str());

  auto commit_tracer = std::make_shared<Tracer>();
  {
    rdf::MvccGraph::Options opts;
    opts.wal_path = wal_path;
    opts.tracer = commit_tracer;
    auto opened = rdf::MvccGraph::Open(opts);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    rdf::MvccGraph& mvcc = *opened.value();
    mvcc.Insert(Term::Iri("urn:s"), Term::Iri("urn:p"), Term::Iri("urn:o"));
    mvcc.Insert(Term::Iri("urn:s2"), Term::Iri("urn:p"), Term::Iri("urn:o2"));
    ASSERT_TRUE(mvcc.Commit().ok());
  }
  EXPECT_TRUE(commit_tracer->HasSpan("mvcc-commit"));
  EXPECT_TRUE(commit_tracer->HasSpan("wal-append"));
  EXPECT_TRUE(commit_tracer->HasSpan("commit-apply"));
  EXPECT_TRUE(commit_tracer->HasSpan("commit-publish"));

  // Commit latency decomposition landed in the histograms...
  const Histogram* append = MetricsRegistry::Global().FindHistogram(
      "rdfa_wal_append_ms");
  ASSERT_NE(append, nullptr);
  EXPECT_GE(append->Count(), 1u);
  const Histogram* apply = MetricsRegistry::Global().FindHistogram(
      "rdfa_mvcc_commit_apply_ms");
  ASSERT_NE(apply, nullptr);
  EXPECT_GE(apply->Count(), 1u);
  // ...and the commit counter ticked.
  const Counter* commits =
      MetricsRegistry::Global().FindCounter("rdfa_mvcc_commits_total");
  ASSERT_NE(commits, nullptr);
  EXPECT_GE(commits->Value(), 1u);

  // Reopening replays the WAL under a "wal-replay" span that reports how
  // many records came back.
  auto replay_tracer = std::make_shared<Tracer>();
  {
    rdf::MvccGraph::Options opts;
    opts.wal_path = wal_path;
    opts.tracer = replay_tracer;
    auto reopened = rdf::MvccGraph::Open(opts);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    EXPECT_GE(reopened.value()->open_info().replayed_records, 1u);
    EXPECT_EQ(reopened.value()->Snapshot().graph->size(), 2u);
  }
  EXPECT_TRUE(replay_tracer->HasSpan("wal-replay"));
  bool saw_records_arg = false;
  for (const Tracer::SpanRecord& s : replay_tracer->FinishedSpans()) {
    if (s.name != "wal-replay") continue;
    for (const auto& kv : s.args) {
      if (kv.first == "records") saw_records_arg = true;
    }
  }
  EXPECT_TRUE(saw_records_arg);
  std::remove(wal_path.c_str());
}

TEST(StorageSpanTest, PinGaugesTrackSnapshotEpochLag) {
  MetricsRegistry::Global().ResetForTest();
  rdf::MvccGraph mvcc;
  mvcc.Insert(Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b"));
  ASSERT_TRUE(mvcc.Commit().ok());
  rdf::MvccGraph::Pin old_pin = mvcc.Snapshot();
  mvcc.Insert(Term::Iri("urn:c"), Term::Iri("urn:p"), Term::Iri("urn:d"));
  ASSERT_TRUE(mvcc.Commit().ok());

  // With an old pin outstanding after a newer commit, the lag gauges show a
  // reader holding back GC by one epoch.
  std::string text = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(text.find("rdfa_mvcc_snapshot_pins 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rdfa_mvcc_epoch_lag 1"), std::string::npos) << text;

  { rdf::MvccGraph::Pin drop = std::move(old_pin); }
  rdf::MvccGraph::Pin fresh = mvcc.Snapshot();
  text = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(text.find("rdfa_mvcc_epoch_lag 0"), std::string::npos) << text;
}

TEST(StorageSpanTest, MappedExecutionEmitsDecodeSpanAndCounters) {
  MetricsRegistry::Global().ResetForTest();
  ExplainFixture fx;
  // The FILTER forces per-binding literal decodes, so the dictionary-lookup
  // counter must move alongside the posting-list key-block decodes.
  auto parsed = sparql::ParseQuery(
      kProductPfx +
      std::string("SELECT ?l ?p WHERE { ?l ex:manufacturer ?m . "
                  "?l ex:price ?p . FILTER(?p > 1200) }"));
  ASSERT_TRUE(parsed.ok());

  auto tracer = std::make_shared<Tracer>();
  sparql::Executor exec(fx.mapped.get());
  QueryContext ctx;
  ctx.set_tracer(tracer);
  exec.set_query_context(ctx);
  ASSERT_TRUE(exec.Execute(parsed.value()).ok());

  ASSERT_TRUE(tracer->HasSpan("mmap-decode"));
  bool saw_args = false;
  for (const Tracer::SpanRecord& s : tracer->FinishedSpans()) {
    if (s.name != "mmap-decode") continue;
    std::vector<std::string> keys;
    for (const auto& kv : s.args) keys.push_back(kv.first);
    EXPECT_NE(std::find(keys.begin(), keys.end(), "key_blocks"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "term_blocks"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "dict_lookups"),
              keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "blocks_skipped"),
              keys.end());
    saw_args = true;
  }
  EXPECT_TRUE(saw_args);

  // A lazily-decoded join must have decoded key blocks and looked terms up.
  const Counter* key_blocks = MetricsRegistry::Global().FindCounter(
      "rdfa_mmap_key_blocks_decoded_total");
  ASSERT_NE(key_blocks, nullptr);
  EXPECT_GT(key_blocks->Value(), 0u);
  const Counter* lookups =
      MetricsRegistry::Global().FindCounter("rdfa_mmap_dict_lookups_total");
  ASSERT_NE(lookups, nullptr);
  EXPECT_GT(lookups->Value(), 0u);
}

TEST(StorageSpanTest, DpPlannerEmitsTimingSpan) {
  ExplainFixture fx;
  auto parsed = sparql::ParseQuery(kProductPfx + std::string(kJoinQuery));
  ASSERT_TRUE(parsed.ok());

  auto tracer = std::make_shared<Tracer>();
  sparql::Executor exec(fx.heap.get());
  exec.set_use_dp(true);
  QueryContext ctx;
  ctx.set_tracer(tracer);
  exec.set_query_context(ctx);
  ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  EXPECT_GE(exec.stats().dp_plans, 1u);

  ASSERT_TRUE(tracer->HasSpan("dp-plan"));
  bool saw_states = false;
  for (const Tracer::SpanRecord& s : tracer->FinishedSpans()) {
    if (s.name != "dp-plan") continue;
    for (const auto& kv : s.args) {
      if (kv.first == "states_considered") {
        saw_states = true;
        EXPECT_NE(kv.second, "0");
      }
    }
  }
  EXPECT_TRUE(saw_states);
  const Histogram* dp_ms =
      MetricsRegistry::Global().FindHistogram("rdfa_dp_plan_ms");
  ASSERT_NE(dp_ms, nullptr);
  EXPECT_GE(dp_ms->Count(), 1u);
}

}  // namespace
}  // namespace rdfa
