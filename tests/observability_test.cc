// Observability layer coverage: the per-query span Tracer (Chrome
// trace-event export, RAII closure on abort, tracing-on/off byte-identity),
// the process-wide MetricsRegistry (sharded counters/histograms, Prometheus
// exposition, exactly-once per-query ticks), the structured query log, and
// the bench_util helpers that ride along (Percentile edge cases, JSON
// escaping). Runs in both the plain and the TSan-labelled suite — the
// concurrent tests are the reason.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.h"
#include "analytics/rollup_cache.h"
#include "common/metrics.h"
#include "common/query_context.h"
#include "common/query_log.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "endpoint/endpoint.h"
#include "sparql/bgp.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa {
namespace {

using rdf::Term;

constexpr char kInvQuery[] =
    "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
    "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
    "inv:inQuantity ?q . } GROUP BY ?b";

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker, so the tests can
// assert "this parses" without external dependencies.
class JsonChecker {
 public:
  static bool Valid(const std::string& s) {
    JsonChecker c(s);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.i_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (s_.compare(i_, n, word) != 0) return false;
    i_ += n;
    return true;
  }
  bool String() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (static_cast<unsigned char>(s_[i_]) < 0x20) return false;
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(s_[i_])) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    size_t digits = 0;
    while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
    if (digits == 0) return false;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      digits = 0;
      while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
      if (digits == 0) return false;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      digits = 0;
      while (i_ < s_.size() && std::isdigit(s_[i_])) ++i_, ++digits;
      if (digits == 0) return false;
    }
    return i_ > start;
  }
  bool Object() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }
  bool Array() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }
  bool Value() {
    SkipWs();
    if (i_ >= s_.size()) return false;
    char c = s_[i_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(JsonCheckerTest, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(JsonChecker::Valid("{\"a\":[1,2.5,-3e2,\"x\\n\",true,null]}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonChecker::Valid("\"unterminated"));
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, NullTracerSpansAreNoOps) {
  TraceSpan span(nullptr, "anything");
  span.Arg("k", int64_t{1});
  span.Arg("s", "v");
  EXPECT_FALSE(span.enabled());
  // Nothing to assert beyond "does not crash": the disabled path must be
  // safe from any thread with zero side effects.
}

TEST(TracerTest, SpansRecordNamesArgsAndNesting) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer");
    outer.Arg("rows", uint64_t{42});
    {
      TraceSpan inner(&tracer, "inner");
      inner.Arg("strategy", "hash");
      inner.Arg("hit", true);
    }
  }
  tracer.Instant("marker");
  ASSERT_EQ(tracer.span_count(), 3u);
  EXPECT_TRUE(tracer.HasSpan("outer"));
  EXPECT_TRUE(tracer.HasSpan("inner"));
  EXPECT_FALSE(tracer.HasSpan("absent"));

  auto spans = tracer.FinishedSpans();
  // Completion order: inner closes before outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  // Containment: inner starts no earlier and ends no later than outer.
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[0].start_us + spans[0].dur_us,
            spans[1].start_us + spans[1].dur_us + 1e-3);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "strategy");
  EXPECT_EQ(spans[0].args[0].second, "\"hash\"");
  EXPECT_EQ(spans[0].args[1].second, "true");

  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TracerTest, ConcurrentSpansFromManyThreads) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "work");
        span.Arg("i", static_cast<int64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.span_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Thread ordinals are small and dense, not raw thread ids.
  for (const auto& s : tracer.FinishedSpans()) {
    EXPECT_GE(s.tid, 0);
    EXPECT_LT(s.tid, kThreads);
  }
  EXPECT_TRUE(JsonChecker::Valid(tracer.ToChromeJson()));
}

// ---------------------------------------------------------------------------
// Pipeline stage coverage + tracing-on/off equivalence

TEST(TraceCoverageTest, TracedQueryCoversThePipelineStages) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  auto resp = ep.Query(kInvQuery, ctx);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp.value().status.ok());

  // Roll up a materialized frame through the same tracer: the cache path
  // is a separate entry point a plain SPARQL query never takes.
  sparql::ResultTable table({"brand", "sales"});
  for (int i = 0; i < 9; ++i) {
    table.AddRow({Term::Iri("urn:b" + std::to_string(i % 3)),
                  Term::Integer(i)});
  }
  analytics::AnswerFrame frame(std::move(table));
  auto rolled = analytics::RollUpAnswer(frame, {"brand"}, "sales",
                                        hifun::AggOp::kSum, 1, ctx);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  const char* kExpectedStages[] = {"admission-queue", "parse",   "plan",
                                   "bgp-join",        "execute", "index-build",
                                   "group-aggregate", "rollup-cache"};
  size_t covered = 0;
  for (const char* stage : kExpectedStages) {
    EXPECT_TRUE(tracer->HasSpan(stage)) << "missing span: " << stage;
    if (tracer->HasSpan(stage)) ++covered;
  }
  EXPECT_GE(covered, 6u);
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

TEST(TraceCoverageTest, ResultsByteIdenticalWithTracingOnAndOff) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 500;
  workload::GenerateProductKg(&g, opt);
  const std::string query =
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (AVG(?p) AS ?avg) WHERE { ?l ex:manufacturer ?m . "
      "?l ex:price ?p . } GROUP BY ?m ORDER BY ?m";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());

  auto run = [&](bool traced, int threads) {
    sparql::Executor exec(&g);
    exec.set_thread_count(threads);
    if (traced) {
      QueryContext ctx;
      ctx.set_tracer(std::make_shared<Tracer>());
      exec.set_query_context(ctx);
    }
    auto r = exec.Execute(parsed.value());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value().ToTsv() : std::string();
  };

  const std::string baseline = run(false, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(true, 1), baseline);
  EXPECT_EQ(run(false, 4), baseline);
  EXPECT_EQ(run(true, 4), baseline);
}

// ---------------------------------------------------------------------------
// Abort path: a cancellation tripping mid-join must still yield a
// well-formed trace whose aborted span is closed and named like the
// abort stage.

TEST(AbortTraceTest, MidJoinCancellationClosesTheAbortedSpan) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 1000;  // price build range comfortably > one 512-row check
  workload::GenerateProductKg(&g, opt);
  g.Freeze();
  const std::string kEx = workload::kExampleNs;

  sparql::VarTable vars;
  sparql::TriplePattern tp1{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "manufacturer")),
      sparql::NodePattern::Var("m")};
  sparql::TriplePattern tp2{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "price")),
      sparql::NodePattern::Var("p")};
  std::vector<sparql::CompiledPattern> patterns = {
      sparql::CompileTriple(tp1, &vars, g),
      sparql::CompileTriple(tp2, &vars, g)};

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  ctx.CancelAfterChecks(4);  // deterministically inside the hash build
  sparql::ExecStats stats;
  sparql::JoinOptions jopts;
  jopts.stats = &stats;
  jopts.ctx = &ctx;
  jopts.strategy = sparql::JoinStrategy::kHash;
  std::vector<sparql::Binding> rows = {
      sparql::Binding(vars.size(), rdf::kNoTermId)};
  Status st = sparql::JoinBgp(g, patterns, vars.size(), /*reorder=*/false,
                              jopts, &rows);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  ASSERT_STREQ(ctx.trip_stage(), "hash-build");

  // The span carrying the abort stage's name was closed by RAII unwind.
  EXPECT_TRUE(tracer->HasSpan(ctx.trip_stage()));
  EXPECT_TRUE(tracer->HasSpan("bgp-join"));
  // Every recorded span is complete (an "X" event with a duration), so the
  // whole trace still renders.
  for (const auto& s : tracer->FinishedSpans()) {
    EXPECT_GE(s.dur_us, 0.0) << s.name;
  }
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

TEST(AbortTraceTest, ExecutorAbortStageMatchesATracedSpan) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 500;
  workload::GenerateProductKg(&g, opt);
  const std::string query =
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . } "
      "GROUP BY ?m";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());

  // Probe: count the deterministic checks of a clean run, then replay and
  // trip on the final check — the group-aggregate stage for this query.
  QueryContext probe;
  {
    sparql::Executor exec(&g);
    exec.set_thread_count(4);
    exec.set_query_context(probe);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  ASSERT_GT(probe.checks_performed(), 1);

  auto tracer = std::make_shared<Tracer>();
  QueryContext ctx;
  ctx.set_tracer(tracer);
  ctx.CancelAfterChecks(probe.checks_performed());
  sparql::Executor exec(&g);
  exec.set_thread_count(4);
  exec.set_query_context(ctx);
  auto r = exec.Execute(parsed.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(exec.stats().aborted);
  ASSERT_FALSE(exec.stats().abort_stage.empty());
  EXPECT_TRUE(tracer->HasSpan(exec.stats().abort_stage))
      << "no span named " << exec.stats().abort_stage;
  EXPECT_TRUE(JsonChecker::Valid(tracer->ToChromeJson()));
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterShardsSumAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("rdfa_test_shard_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, HistogramBucketsObserveAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);   // bucket le=1
  h.Observe(1.0);   // le=1 (inclusive upper bound)
  h.Observe(5.0);   // le=10
  h.Observe(500.0); // +Inf overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 506.5);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, PrometheusTextExposesAllMetricKinds) {
  MetricsRegistry reg;
  reg.GetCounter("rdfa_test_queries_total", "Total queries").Increment(3);
  reg.GetGauge("rdfa_test_queue_depth", "Waiters").Set(2);
  Histogram& h =
      reg.GetHistogram("rdfa_test_latency_ms", {1.0, 10.0}, "Latency");
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  std::string text = reg.PrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("# HELP rdfa_test_queries_total Total queries"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_queries_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfa_test_latency_ms histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="10" holds 2, +Inf holds all 3.
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rdfa_test_latency_ms_count 3"), std::string::npos);

  // Every non-comment line is "name value" or "name{labels} value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0]))) << line;
  }
  EXPECT_TRUE(JsonChecker::Valid(reg.ToJson()));
}

TEST(MetricsTest, GlobalRegistryExpositionStaysWellFormed) {
  // Feed the global registry through the engine path, then check that the
  // exposition formats hold over its real state.
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?l ?m WHERE { ?l ex:manufacturer ?m . }");
  ASSERT_TRUE(parsed.ok());
  sparql::Executor exec(&g);
  ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  std::string text = MetricsRegistry::Global().PrometheusText();
  EXPECT_TRUE(JsonChecker::Valid(MetricsRegistry::Global().ToJson()));
  for (const char* needle :
       {"rdfa_queries_total", "rdfa_query_latency_ms"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsTickTest, LatencyHistogramCountEqualsQueriesExecuted) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?l ?m WHERE { ?l ex:manufacturer ?m . }");
  ASSERT_TRUE(parsed.ok());
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    sparql::Executor exec(&g);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  const Counter* total =
      MetricsRegistry::Global().FindCounter("rdfa_queries_total");
  const Histogram* latency =
      MetricsRegistry::Global().FindHistogram("rdfa_query_latency_ms");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(total->Value(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(latency->Count(), static_cast<uint64_t>(kQueries));
}

TEST(MetricsTickTest, CancelledAndTimedOutTickExactlyOncePerQuery) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 300;
  workload::GenerateProductKg(&g, opt);
  auto parsed = sparql::ParseQuery(
      "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
      "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . } "
      "GROUP BY ?m");
  ASSERT_TRUE(parsed.ok());

  // Query 1: clean. Query 2: cancelled mid-run (check-count replay).
  // Query 3: timed out at admission (zero budget fast-fail).
  QueryContext probe;
  {
    sparql::Executor exec(&g);
    exec.set_query_context(probe);
    ASSERT_TRUE(exec.Execute(parsed.value()).ok());
  }
  {
    QueryContext ctx;
    ctx.CancelAfterChecks(probe.checks_performed());
    sparql::Executor exec(&g);
    exec.set_query_context(ctx);
    auto r = exec.Execute(parsed.value());
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  {
    sparql::Executor exec(&g);
    exec.set_query_context(QueryContext::WithDeadlineMs(0));
    auto r = exec.Execute(parsed.value());
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }

  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.FindCounter("rdfa_queries_total")->Value(), 3u);
  EXPECT_EQ(reg.FindCounter("rdfa_queries_cancelled_total")->Value(), 1u);
  EXPECT_EQ(reg.FindCounter("rdfa_queries_timed_out_total")->Value(), 1u);
  EXPECT_EQ(reg.FindHistogram("rdfa_query_latency_ms")->Count(), 3u);
}

TEST(MetricsTickTest, CacheCountersTickExactlyOncePerEvent) {
  // Every cache event — answer hit/miss, plan hit/miss, generation
  // invalidation, capacity eviction — ticks its exported counter exactly
  // once, and all the series appear in the Prometheus exposition.
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  CacheOptions opts;
  opts.max_entries = 1;
  opts.shards = 1;
  ep.set_cache_options(opts);

  const std::string other =
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "SELECT ?i ?q WHERE { ?i inv:inQuantity ?q . FILTER(?q > 5) }";
  // miss, hit, then a second key evicts the first (capacity 1).
  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  ASSERT_TRUE(ep.Query(other).ok());
  // Mutation, then re-query of the resident key: one invalidation.
  ASSERT_TRUE(sparql::ExecuteUpdateString(
                  &g,
                  "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
                  "INSERT DATA { inv:i97 inv:inQuantity 50 . }")
                  .ok());
  ASSERT_TRUE(ep.Query(other).ok());

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* hits = reg.FindCounter("rdfa_endpoint_cache_hits_total");
  const Counter* misses = reg.FindCounter("rdfa_endpoint_cache_misses_total");
  const Counter* evictions =
      reg.FindCounter("rdfa_endpoint_cache_evictions_total");
  const Counter* invalidations =
      reg.FindCounter("rdfa_endpoint_cache_invalidations_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(evictions, nullptr);
  ASSERT_NE(invalidations, nullptr);
  EXPECT_EQ(hits->Value(), 1u);
  EXPECT_EQ(misses->Value(), 3u);  // first kInvQuery, first `other`, stale re-query
  EXPECT_EQ(evictions->Value(), 1u);
  EXPECT_EQ(invalidations->Value(), 1u);

  // The registry counters agree with the endpoint's own stats view.
  CacheStats stats = ep.answer_cache_stats();
  EXPECT_EQ(stats.hits, hits->Value());
  EXPECT_EQ(stats.misses, misses->Value());
  EXPECT_EQ(stats.evictions, evictions->Value());
  EXPECT_EQ(stats.invalidations, invalidations->Value());

  std::string text = reg.PrometheusText();
  for (const char* needle :
       {"rdfa_endpoint_cache_hits_total", "rdfa_endpoint_cache_misses_total",
        "rdfa_endpoint_cache_evictions_total",
        "rdfa_endpoint_cache_invalidations_total",
        "rdfa_plan_cache_hits_total", "rdfa_plan_cache_misses_total"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsTickTest, PlanCacheCountersTickExactlyOncePerEvent) {
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  // A 1-byte answer budget forces every repeat onto the plan-cache path
  // (answers are never resident, plans are).
  CacheOptions opts;
  opts.max_bytes = 1;
  opts.shards = 1;
  ep.set_cache_options(opts);

  auto first = ep.Query(kInvQuery);   // plan miss
  auto second = ep.Query(kInvQuery);  // plan hit
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(second.value().plan_cache_hit);

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* hits = reg.FindCounter("rdfa_plan_cache_hits_total");
  const Counter* misses = reg.FindCounter("rdfa_plan_cache_misses_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(hits->Value(), 1u);
  EXPECT_EQ(misses->Value(), 1u);
  EXPECT_EQ(ep.plan_cache_stats().hits, 1u);
  EXPECT_EQ(ep.plan_cache_stats().misses, 1u);
}

TEST(MetricsTickTest, RollupCacheCountersShareTheProtocol) {
  MetricsRegistry::Global().ResetForTest();
  analytics::RollupCache cache;
  sparql::ResultTable table({"brand", "sales"});
  for (int i = 0; i < 6; ++i) {
    table.AddRow({Term::Iri("urn:b" + std::to_string(i % 2)),
                  Term::Integer(i)});
  }
  analytics::AnswerFrame frame(std::move(table));
  auto miss = cache.RollUp("src", 1, frame, {"brand"}, "sales",
                           hifun::AggOp::kSum);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  auto hit = cache.RollUp("src", 1, frame, {"brand"}, "sales",
                          hifun::AggOp::kSum);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().table().ToTsv(), miss.value().table().ToTsv());
  // A newer generation invalidates the memo.
  auto inval = cache.RollUp("src", 2, frame, {"brand"}, "sales",
                            hifun::AggOp::kSum);
  ASSERT_TRUE(inval.ok());
  EXPECT_EQ(inval.value().table().ToTsv(), miss.value().table().ToTsv());

  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.FindCounter("rdfa_rollup_cache_hits_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("rdfa_rollup_cache_hits_total")->Value(), 1u);
  EXPECT_EQ(reg.FindCounter("rdfa_rollup_cache_misses_total")->Value(), 2u);
  EXPECT_EQ(
      reg.FindCounter("rdfa_rollup_cache_invalidations_total")->Value(), 1u);
}

// ---------------------------------------------------------------------------
// Structured query log

TEST(QueryLogTest, HashIsStableAndContentSensitive) {
  EXPECT_EQ(HashQueryText("SELECT ?x"), HashQueryText("SELECT ?x"));
  EXPECT_NE(HashQueryText("SELECT ?x"), HashQueryText("SELECT ?y"));
  EXPECT_NE(HashQueryText(""), HashQueryText(" "));
}

TEST(QueryLogTest, FormatProducesOneWellFormedJsonLine) {
  QueryLogRecord rec;
  rec.query_hash = HashQueryText(kInvQuery);
  rec.query_head = "SELECT \"quoted\"\nnext line";  // must be escaped
  rec.outcome = "ok";
  rec.total_ms = 1.5;
  rec.queued_ms = 0.25;
  rec.rows = 3;
  rec.cache_hit = false;
  rec.exec_stats_json = "{\"threads\":1}";
  rec.trace_file = "/tmp/q-0.json";
  std::string line = FormatQueryLogLine(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one line per record";
  EXPECT_TRUE(JsonChecker::Valid(line)) << line;
  EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"exec_stats\":{\"threads\":1}"), std::string::npos);
}

TEST(QueryLogTest, EndpointWritesTraceFilesAndStructuredLog) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "rdfa_obs_trace";
  const std::string log_path =
      ::testing::TempDir() + "rdfa_obs_queries.jsonl";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::remove(log_path, ec);

  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  ep.set_trace_dir(dir);
  ep.set_query_log_path(log_path);

  ASSERT_TRUE(ep.Query(kInvQuery).ok());
  // A parse failure must still produce a log line (outcome "error").
  EXPECT_FALSE(ep.Query("SELECT FROM NOWHERE").ok());

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(JsonChecker::Valid(l)) << l;
  }
  EXPECT_NE(lines[0].find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"outcome\":\"error\""), std::string::npos);

  // The served query produced a trace file; its content is a valid Chrome
  // trace covering the endpoint's own admission span.
  size_t trace_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++trace_files;
    std::ifstream tf(entry.path());
    std::string content((std::istreambuf_iterator<char>(tf)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonChecker::Valid(content)) << entry.path();
    EXPECT_NE(content.find("admission-queue"), std::string::npos);
  }
  EXPECT_GE(trace_files, 1u);

  // Endpoint-side queue stats surfaced in Stats() for the bench summaries.
  endpoint::EndpointStats stats = ep.Stats();
  EXPECT_GE(stats.p50_queued_ms, 0.0);
  EXPECT_GE(stats.p99_queued_ms, stats.p50_queued_ms);

  fs::remove_all(dir, ec);
  fs::remove(log_path, ec);
}

TEST(QueryLogTest, EndpointMetricsUseDistinctNamesFromEngineMetrics) {
  // A query shed at admission never reaches the Executor: it must tick the
  // endpoint counter exactly once and the engine counters not at all.
  MetricsRegistry::Global().ResetForTest();
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local());
  endpoint::AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 0;
  ep.set_admission(opts);
  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());
  auto resp = ep.Query(kInvQuery);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.value().status.code(), StatusCode::kResourceExhausted);

  MetricsRegistry& reg = MetricsRegistry::Global();
  const Counter* shed = reg.FindCounter("rdfa_endpoint_shed_total");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->Value(), 1u);
  const Counter* engine_total = reg.FindCounter("rdfa_queries_total");
  if (engine_total != nullptr) {
    EXPECT_EQ(engine_total->Value(), 0u);
  }
}

// ---------------------------------------------------------------------------
// bench_util satellites

TEST(PercentileTest, EmptySampleReturnsZero) {
  EXPECT_EQ(bench::Percentile({}, 0.5), 0.0);
  EXPECT_EQ(bench::Percentile({}, 0.99), 0.0);
}

TEST(PercentileTest, SingleElementReturnsItForEveryQuantile) {
  EXPECT_EQ(bench::Percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(bench::Percentile({7.5}, 0.5), 7.5);
  EXPECT_EQ(bench::Percentile({7.5}, 0.99), 7.5);
}

TEST(PercentileTest, OddAndEvenSizesUseNearestRank) {
  // Odd: 5 sorted elements, p50 is the middle one.
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 0.5), 3.0);
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 0.0), 1.0);
  EXPECT_EQ(bench::Percentile({5, 1, 3, 2, 4}, 1.0), 5.0);
  // Even: 4 elements, nearest-rank p50 = element at floor(3 * 0.5) = idx 1.
  EXPECT_EQ(bench::Percentile({4, 1, 3, 2}, 0.5), 2.0);
  EXPECT_EQ(bench::Percentile({4, 1, 3, 2}, 1.0), 4.0);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscapeTest, ExecStatsToJsonSurvivesHostileStrings) {
  sparql::ExecStats stats;
  stats.aborted = true;
  stats.abort_stage = "stage\"with\\quotes\nand newline";
  stats.join_strategy = {'H', '"'};
  stats.rows_scanned = {1, 2};
  std::string json = stats.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(JsonEscapeTest, BenchJsonObjectEscapesStringValues) {
  bench::JsonObject obj;
  obj.AddString("q", "SELECT \"x\"\nFROM");
  obj.AddNumber("ms", 1.5);
  obj.AddBool("ok", true);
  std::string json = obj.Render();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(TraceSinkTest, DisabledSinkIsInertEnabledSinkWritesFiles) {
  bench::TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(sink.StartRun(), nullptr);
  EXPECT_EQ(sink.FinishRun(nullptr, "x"), "");

  const std::string dir = ::testing::TempDir() + "rdfa_obs_sink";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  sink.set_dir(dir);
  auto tracer = sink.StartRun();
  ASSERT_NE(tracer, nullptr);
  { TraceSpan span(tracer.get(), "step"); }
  std::string path = sink.FinishRun(tracer.get(), "run");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_TRUE(JsonChecker::Valid(content));
  EXPECT_NE(content.find("\"step\""), std::string::npos);
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace rdfa
