#include <gtest/gtest.h>

#include <cmath>

#include "sparql/executor.h"
#include "viz/chart.h"
#include "viz/cubes.h"
#include "viz/spiral.h"
#include "viz/table_render.h"
#include "workload/invoices.h"

namespace rdfa::viz {
namespace {

sparql::ResultTable SampleTable() {
  sparql::ResultTable t({"b", "tot"});
  t.AddRow({rdf::Term::Iri("urn:x#b1"), rdf::Term::Integer(300)});
  t.AddRow({rdf::Term::Iri("urn:x#b2"), rdf::Term::Integer(600)});
  t.AddRow({rdf::Term::Iri("urn:x#b3"), rdf::Term::Integer(600)});
  return t;
}

TEST(TableRenderTest, AlignedColumnsAndLocalNames) {
  std::string out = RenderTable(SampleTable());
  EXPECT_NE(out.find("| b "), std::string::npos);
  EXPECT_NE(out.find("b1"), std::string::npos);
  EXPECT_EQ(out.find("urn:x"), std::string::npos);  // IRIs shortened
}

TEST(TableRenderTest, TruncatesLongTables) {
  sparql::ResultTable t({"n"});
  for (int i = 0; i < 100; ++i) t.AddRow({rdf::Term::Integer(i)});
  std::string out = RenderTable(t, 10);
  EXPECT_NE(out.find("90 more rows"), std::string::npos);
}

TEST(ChartTest, SeriesFromTable) {
  auto series = SeriesFromTable(SampleTable(), "b", "tot");
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series.value().size(), 3u);
  EXPECT_EQ(series.value()[0].label, "b1");
  EXPECT_EQ(series.value()[0].value, 300);
}

TEST(ChartTest, SeriesErrorsOnMissingColumn) {
  EXPECT_EQ(SeriesFromTable(SampleTable(), "nope", "tot").status().code(),
            StatusCode::kNotFound);
}

TEST(ChartTest, BarChartScalesToMax) {
  auto series = SeriesFromTable(SampleTable(), "b", "tot");
  ASSERT_TRUE(series.ok());
  std::string chart = RenderBarChart(series.value(), 20);
  // The 600 bars are 20 chars, the 300 bar 10.
  EXPECT_NE(chart.find("b1 | ##########"), std::string::npos) << chart;
  EXPECT_NE(chart.find("b2 | ####################"), std::string::npos);
}

TEST(ChartTest, PieLegendPercentagesSumTo100) {
  auto series = SeriesFromTable(SampleTable(), "b", "tot");
  ASSERT_TRUE(series.ok());
  std::string legend = RenderPieLegend(series.value());
  EXPECT_NE(legend.find("b1: 300 (20%)"), std::string::npos) << legend;
  EXPECT_NE(legend.find("b2: 600 (40%)"), std::string::npos);
}

TEST(SpiralTest, BiggestAtCenter) {
  auto layout = SpiralLayout({{"a", 100}, {"b", 10}, {"c", 50}, {"d", 1}});
  ASSERT_EQ(layout.size(), 4u);
  EXPECT_EQ(layout[0].label, "a");
  EXPECT_EQ(layout[0].x, 0);
  EXPECT_EQ(layout[0].y, 0);
}

TEST(SpiralTest, NoOverlaps) {
  std::vector<std::pair<std::string, double>> values;
  for (int i = 0; i < 60; ++i) {
    values.push_back({"v" + std::to_string(i), 1.0 + (i * 37) % 100});
  }
  auto layout = SpiralLayout(values);
  for (size_t i = 0; i < layout.size(); ++i) {
    for (size_t j = i + 1; j < layout.size(); ++j) {
      double dx = layout[i].x - layout[j].x;
      double dy = layout[i].y - layout[j].y;
      double d = std::sqrt(dx * dx + dy * dy);
      EXPECT_GE(d + 1e-6, (layout[i].radius + layout[j].radius) * 0.99)
          << i << " overlaps " << j;
    }
  }
}

TEST(SpiralTest, AreasProportionalToValues) {
  auto layout = SpiralLayout({{"a", 400}, {"b", 100}});
  // Radius ratio = sqrt(value ratio) = 2.
  EXPECT_NEAR(layout[0].radius / layout[1].radius, 2.0, 1e-9);
}

TEST(SpiralTest, DistanceNonDecreasingInOrder) {
  std::vector<std::pair<std::string, double>> values;
  for (int i = 0; i < 40; ++i) values.push_back({"v" + std::to_string(i), 100.0 - i});
  auto layout = SpiralLayout(values);
  double prev = 0;
  for (const auto& p : layout) {
    double d = std::sqrt(p.x * p.x + p.y * p.y);
    // Allow slack: the walk is monotone in angle, distance grows with it.
    EXPECT_GE(d + p.radius * 2 + 1e-6, prev) << p.label;
    prev = std::max(prev, d);
  }
}

TEST(SpiralTest, BoundedLayout) {
  std::vector<std::pair<std::string, double>> values;
  double total_area = 0;
  for (int i = 0; i < 100; ++i) {
    double v = 1.0 + (i * 13) % 50;
    values.push_back({"v" + std::to_string(i), v});
    total_area += v;
  }
  auto layout = SpiralLayout(values);
  double bound = 8.0 * std::sqrt(total_area);
  for (const auto& p : layout) {
    EXPECT_LE(std::sqrt(p.x * p.x + p.y * p.y), bound);
  }
}

TEST(SpiralTest, RenderProducesGrid) {
  auto layout = SpiralLayout({{"a", 10}, {"b", 5}});
  std::string out = RenderSpiral(layout, 20, 10);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(CubesTest, BuildsGridWithNormalizedHeights) {
  sparql::ResultTable t({"country", "cases", "deaths"});
  t.AddRow({rdf::Term::Iri("urn:c#GR"), rdf::Term::Integer(100),
            rdf::Term::Integer(10)});
  t.AddRow({rdf::Term::Iri("urn:c#IT"), rdf::Term::Integer(200),
            rdf::Term::Integer(40)});
  t.AddRow({rdf::Term::Iri("urn:c#FR"), rdf::Term::Integer(50),
            rdf::Term::Integer(5)});
  auto city = BuildCubeCity(t, "country");
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  ASSERT_EQ(city.value().size(), 3u);
  // Tallest first: IT.
  EXPECT_EQ(city.value()[0].label, "IT");
  ASSERT_EQ(city.value()[0].segments.size(), 2u);
  EXPECT_NEAR(city.value()[0].segments[0].height, 200.0 / 240.0, 1e-9);
  // Grid positions distinct.
  EXPECT_FALSE(city.value()[0].grid_x == city.value()[1].grid_x &&
               city.value()[0].grid_z == city.value()[1].grid_z);
}

TEST(CubesTest, JsonSerialization) {
  sparql::ResultTable t({"c", "v"});
  t.AddRow({rdf::Term::Iri("urn:c#GR"), rdf::Term::Integer(7)});
  auto city = BuildCubeCity(t, "c");
  ASSERT_TRUE(city.ok());
  std::string json = CubeCityToJson(city.value());
  EXPECT_NE(json.find("\"label\":\"GR\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
}

TEST(CubesTest, NoNumericColumnsError) {
  sparql::ResultTable t({"a", "b"});
  t.AddRow({rdf::Term::Iri("urn:x"), rdf::Term::Iri("urn:y")});
  EXPECT_EQ(BuildCubeCity(t, "a").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdfa::viz
