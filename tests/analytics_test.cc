#include "analytics/session.h"

#include <gtest/gtest.h>

#include <map>

#include "analytics/answer_frame.h"
#include "rdf/rdfs.h"
#include "sparql/value.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa::analytics {
namespace {

const std::string kEx = workload::kExampleNs;

class AnalyticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    rdf::MaterializeRdfsClosure(&g_);
  }

  std::map<std::string, double> Rows(const sparql::ResultTable& t,
                                     size_t label_col, size_t value_col) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::DisplayTerm(t.at(r, label_col))] =
          *sparql::Value::FromTerm(t.at(r, value_col)).AsNumeric();
    }
    return out;
  }

  rdf::Graph g_;
};

TEST_F(AnalyticsTest, Example1AvgWithoutGroupBy) {
  // §5.1 Example 1: average price of laptops with 2 USB ports made by US
  // companies (no grouping).
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(s.fs()
                  .ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                              rdf::Term::Iri(kEx + "USA"))
                  .ok());
  ASSERT_TRUE(s.fs().ClickRange({{kEx + "USBPorts"}}, 2, 2).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  const auto& t = af.value().table();
  ASSERT_EQ(t.num_rows(), 1u);
  // laptop1 (900) + laptop2 (1000): avg 950.
  EXPECT_NEAR(*sparql::Value::FromTerm(t.at(0, 0)).AsNumeric(), 950, 1e-9);
}

TEST_F(AnalyticsTest, Example2CountWithGroupByPath) {
  // §5.1 Example 2: count of laptops grouped by manufacturer's country.
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec grp;
  grp.path = {kEx + "manufacturer", kEx + "origin"};
  ASSERT_TRUE(s.ClickGroupBy(grp).ok());
  MeasureSpec m;
  m.ops = {hifun::AggOp::kCount};  // empty path: COUNT of items
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  auto rows = Rows(af.value().table(), 0, 1);
  EXPECT_EQ(rows["USA"], 2);
  EXPECT_EQ(rows["China"], 1);
}

TEST_F(AnalyticsTest, Fig62MultipleAggregates) {
  // Fig 6.2: average, sum and max price of laptops with 2-4 USB ports,
  // grouped by manufacturer and origin of manufacturer.
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(s.fs().ClickRange({{kEx + "USBPorts"}}, 2, 4).ok());
  GroupingSpec by_man;
  by_man.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(by_man).ok());
  GroupingSpec by_origin;
  by_origin.path = {kEx + "manufacturer", kEx + "origin"};
  ASSERT_TRUE(s.ClickGroupBy(by_origin).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg, hifun::AggOp::kSum, hifun::AggOp::kMax};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  const auto& t = af.value().table();
  EXPECT_EQ(t.num_columns(), 5u);  // 2 groupings + 3 aggregates
  EXPECT_EQ(t.num_rows(), 2u);     // (DELL, USA), (Lenovo, China)
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (viz::DisplayTerm(t.at(r, 0)) == "DELL") {
      EXPECT_NEAR(*sparql::Value::FromTerm(t.at(r, 2)).AsNumeric(), 950, 1e-9);
      EXPECT_EQ(*sparql::Value::FromTerm(t.at(r, 3)).AsNumeric(), 1900);
      EXPECT_EQ(*sparql::Value::FromTerm(t.at(r, 4)).AsNumeric(), 1000);
    }
  }
}

TEST_F(AnalyticsTest, DerivedYearGrouping) {
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "releaseDate"};
  g.derived_function = "YEAR";
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kSum};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  auto rows = Rows(af.value().table(), 0, 1);
  EXPECT_EQ(rows["2021"], 2720);
}

TEST_F(AnalyticsTest, ExecuteAndExecuteDirectAgree) {
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto via_sparql = s.Execute();
  auto direct = s.ExecuteDirect();
  ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto a = Rows(via_sparql.value().table(), 0, 1);
  auto b = Rows(direct.value().table(), 0, 1);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [k, v] : a) EXPECT_NEAR(v, b.at(k), 1e-9);
}

TEST_F(AnalyticsTest, BuildHifunQueryRendering) {
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto q = s.BuildHifunQuery();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string text = q.value().ToString();
  EXPECT_NE(text.find("manufacturer"), std::string::npos);
  EXPECT_NE(text.find("AVG"), std::string::npos);
  EXPECT_NE(text.find("over Laptop"), std::string::npos);
}

TEST_F(AnalyticsTest, NoMeasureIsPreconditionError) {
  AnalyticsSession s(&g_);
  EXPECT_EQ(s.Execute().status().code(), StatusCode::kPrecondition);
}

TEST_F(AnalyticsTest, RemoveGroupBy) {
  AnalyticsSession s(&g_);
  GroupingSpec g1, g2;
  g1.path = {kEx + "manufacturer"};
  g2.path = {kEx + "USBPorts"};
  ASSERT_TRUE(s.ClickGroupBy(g1).ok());
  ASSERT_TRUE(s.ClickGroupBy(g2).ok());
  ASSERT_TRUE(s.RemoveGroupBy(0).ok());
  ASSERT_EQ(s.groupings().size(), 1u);
  EXPECT_EQ(s.groupings()[0].path[0], kEx + "USBPorts");
  EXPECT_FALSE(s.RemoveGroupBy(5).ok());
}

TEST_F(AnalyticsTest, AnswerFrameLoadAsDataset) {
  // §5.3.3: reload the answer as a new RDF dataset.
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  ASSERT_TRUE(s.Execute().ok());

  rdf::Graph af_graph;
  auto added = s.answer().LoadAsDataset(&af_graph);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // 2 rows x (1 type + 2 attributes) = 6 triples.
  EXPECT_EQ(added.value(), 6u);
  rdf::TermId row_class = af_graph.terms().FindIri(AnswerFrame::RowClassIri());
  ASSERT_NE(row_class, rdf::kNoTermId);
}

TEST_F(AnalyticsTest, NestedQueryViaExploreAnswer) {
  // Example 4 of §5.1: restrict the average price over a threshold by
  // exploring the AF as a dataset.
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  ASSERT_TRUE(s.Execute().ok());

  rdf::Graph af_graph;
  auto nested = s.ExploreAnswer(&af_graph);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  AnalyticsSession& ns = *nested.value();
  // Both manufacturers present as rows.
  EXPECT_EQ(ns.fs().current().ext.size(), 2u);
  // HAVING avg >= 900: only DELL (950) survives; Lenovo avg is 820.
  Status st = ns.fs().ClickRange({{AnswerFrame::ColumnIri("agg1")}}, 900,
                                 std::nullopt);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(ns.fs().current().ext.size(), 1u);
}

TEST_F(AnalyticsTest, ResultRestrictionHaving) {
  AnalyticsSession s(&g_);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  s.SetResultRestriction(">=", 900);
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  EXPECT_EQ(af.value().table().num_rows(), 1u);
}

TEST_F(AnalyticsTest, MeasureWithNonCountNeedsPath) {
  AnalyticsSession s(&g_);
  MeasureSpec m;
  m.ops = {hifun::AggOp::kSum};
  EXPECT_EQ(s.ClickAggregate(m).code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyticsTest, ClearAnalyticsResets) {
  AnalyticsSession s(&g_);
  GroupingSpec g;
  g.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(g).ok());
  s.ClearAnalytics();
  EXPECT_TRUE(s.groupings().empty());
  EXPECT_FALSE(s.measure().has_value());
}

}  // namespace
}  // namespace rdfa::analytics
