#include "rdf/mvcc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/footprint.h"
#include "rdf/graph.h"

namespace rdfa::rdf {
namespace {

Term Iri(const std::string& s) { return Term::Iri("urn:" + s); }

// Renders every triple of `g` as a sorted list of N-Triples-ish lines, the
// canonical form the differential tests compare byte-for-byte. Term ids are
// not comparable across graphs (interning order differs), the rendered
// terms are.
std::vector<std::string> CanonicalTriples(const Graph& g) {
  std::vector<std::string> out;
  out.reserve(g.size());
  for (const TripleId& t : g.triples()) {
    out.push_back(g.terms().Get(t.s).ToNTriples() + " " +
                  g.terms().Get(t.p).ToNTriples() + " " +
                  g.terms().Get(t.o).ToNTriples());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MvccTest, SnapshotStaysImmutableAcrossCommits) {
  MvccGraph mvcc;
  mvcc.Insert(Iri("s1"), Iri("p"), Iri("o1"));
  ASSERT_TRUE(mvcc.Commit().ok());
  MvccGraph::Pin pin = mvcc.Snapshot();
  ASSERT_EQ(pin.graph->size(), 1u);
  const uint64_t epoch_before = pin.epoch;

  mvcc.Insert(Iri("s2"), Iri("p"), Iri("o2"));
  auto epoch = mvcc.Commit();
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(epoch.value(), epoch_before);

  // The old pin still sees exactly the old world...
  EXPECT_EQ(pin.graph->size(), 1u);
  EXPECT_EQ(pin.epoch, epoch_before);
  // ...while a fresh pin sees the new one.
  MvccGraph::Pin head = mvcc.Snapshot();
  EXPECT_EQ(head.graph->size(), 2u);
  EXPECT_EQ(head.epoch, epoch.value());
  // Distinct versions are distinct objects; the pin keeps its alive.
  EXPECT_NE(pin.graph.get(), head.graph.get());
}

TEST(MvccTest, CommitWithNothingPendingDoesNotPublishANewVersion) {
  MvccGraph mvcc;
  mvcc.Insert(Iri("s"), Iri("p"), Iri("o"));
  ASSERT_TRUE(mvcc.Commit().ok());
  const uint64_t epoch = mvcc.Epoch();
  const Graph* version = mvcc.Snapshot().graph.get();
  auto again = mvcc.Commit();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), epoch);
  EXPECT_EQ(mvcc.Snapshot().graph.get(), version);
}

TEST(MvccTest, RemoveWildcardsAndInsertsMergeInOrder) {
  auto base = std::make_unique<Graph>();
  base->Add(Iri("a"), Iri("p"), Iri("x"));
  base->Add(Iri("a"), Iri("q"), Iri("y"));
  base->Add(Iri("b"), Iri("p"), Iri("x"));
  MvccGraph mvcc(std::move(base));

  const Term subj = Iri("a");
  mvcc.Remove(&subj, nullptr, nullptr);  // drop both urn:a triples
  mvcc.Insert(Iri("a"), Iri("p"), Iri("z"));
  ASSERT_TRUE(mvcc.Commit().ok());

  MvccGraph::Pin pin = mvcc.Snapshot();
  std::vector<std::string> got = CanonicalTriples(*pin.graph);
  Graph want;
  want.Add(Iri("b"), Iri("p"), Iri("x"));
  want.Add(Iri("a"), Iri("p"), Iri("z"));
  EXPECT_EQ(got, CanonicalTriples(want));
}

TEST(MvccTest, BufferUpdateWithoutEngineIsUnsupported) {
  MvccGraph mvcc;
  Status s = mvcc.BufferUpdate("INSERT DATA { <urn:a> <urn:p> <urn:b> }");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

TEST(MvccTest, PerPredicateStampsSurviveCommitsOfOtherPredicates) {
  MvccGraph mvcc;
  mvcc.Insert(Iri("s"), Iri("p1"), Iri("o"));
  mvcc.Insert(Iri("s"), Iri("p2"), Iri("o"));
  ASSERT_TRUE(mvcc.Commit().ok());
  CacheFootprint fp1 = CacheFootprint::Of({"urn:p1"});
  MvccGraph::Pin pin = mvcc.Snapshot();
  const uint64_t stamp1 = pin.graph->FootprintStamp(fp1);

  mvcc.Insert(Iri("s2"), Iri("p2"), Iri("o2"));
  ASSERT_TRUE(mvcc.Commit().ok());
  MvccGraph::Pin head = mvcc.Snapshot();
  // The p1 epoch is identical across versions — a cache entry filled against
  // the old snapshot revalidates against the new head without a refill.
  EXPECT_EQ(head.graph->FootprintStamp(fp1), stamp1);
  // But the global generation (wildcard footprint) moved.
  EXPECT_GT(head.graph->FootprintStamp(CacheFootprint::Wildcard()),
            pin.graph->FootprintStamp(CacheFootprint::Wildcard()));
}

// One deterministic pseudo-random op script, two executions: threaded
// through the MVCC layer with concurrent readers hammering snapshots, and
// serially against a plain Graph. The final worlds must render
// byte-identically, and no reader may ever observe a half-applied commit.
struct ScriptOp {
  bool insert = true;
  std::string s, p, o;  // for removes, empty = wildcard lane
};

std::vector<ScriptOp> MakeScript(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<ScriptOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ScriptOp op;
    op.insert = rng() % 4 != 0;  // 3:1 insert:remove
    op.s = "s" + std::to_string(rng() % 23);
    op.p = "p" + std::to_string(rng() % 5);
    op.o = "o" + std::to_string(rng() % 17);
    if (!op.insert) {
      // Randomly blank out lanes to exercise wildcard removes.
      if (rng() % 3 == 0) op.s.clear();
      if (rng() % 3 == 0) op.p.clear();
      if (rng() % 2 == 0) op.o.clear();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void RunDifferential(uint64_t seed, int reader_threads) {
  const std::vector<ScriptOp> script = MakeScript(seed, 400);
  MvccGraph mvcc;
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);

  // Sizes committed so far, indexed by epoch: readers must only ever see
  // one of these worlds, never a partial merge.
  std::vector<uint64_t> committed_sizes(1, 0);
  std::mutex sizes_mu;

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(reader_threads));
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&mvcc, &committed_sizes, &sizes_mu, &done,
                          &violations] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        MvccGraph::Pin pin = mvcc.Snapshot();
        // Epochs are monotone per reader.
        if (pin.epoch < last_epoch) violations.fetch_add(1);
        last_epoch = pin.epoch;
        const uint64_t size = pin.graph->size();
        // Walking the snapshot must agree with its own size — the version
        // is frozen, no writer can be mutating it underneath us.
        uint64_t counted = 0;
        pin.graph->ForEachMatch(kNoTermId, kNoTermId, kNoTermId,
                                [&counted](const TripleId&) { ++counted; });
        if (counted != size) violations.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(sizes_mu);
          if (pin.epoch >= committed_sizes.size() ||
              committed_sizes[pin.epoch] != size) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }

  for (size_t i = 0; i < script.size(); ++i) {
    const ScriptOp& op = script[i];
    if (op.insert) {
      mvcc.Insert(Iri(op.s), Iri(op.p), Iri(op.o));
    } else {
      Term s = Iri(op.s), p = Iri(op.p), o = Iri(op.o);
      mvcc.Remove(op.s.empty() ? nullptr : &s, op.p.empty() ? nullptr : &p,
                  op.o.empty() ? nullptr : &o);
    }
    if (rng() % 7 == 0 || i + 1 == script.size()) {
      // Commit and record the new epoch's size under the same lock readers
      // validate with, so a reader that pins the new version blocks on
      // sizes_mu until its expected size is recorded.
      std::lock_guard<std::mutex> lock(sizes_mu);
      auto epoch = mvcc.Commit();
      ASSERT_TRUE(epoch.ok());
      MvccGraph::Pin head = mvcc.Snapshot();
      committed_sizes.resize(
          std::max<size_t>(committed_sizes.size(), epoch.value() + 1), 0);
      committed_sizes[epoch.value()] = head.graph->size();
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0)
      << "seed " << seed << ", " << reader_threads << " readers";

  // Serial replay of the identical script. A bound remove lane that names a
  // never-interned term is a no-op, mirroring MvccGraph::ApplyRecord — a
  // Find miss must not silently widen into a wildcard.
  Graph serial;
  for (const ScriptOp& op : script) {
    if (op.insert) {
      serial.Add(Iri(op.s), Iri(op.p), Iri(op.o));
      continue;
    }
    TermId s = kNoTermId, p = kNoTermId, o = kNoTermId;
    bool resolvable = true;
    if (!op.s.empty()) {
      s = serial.terms().Find(Iri(op.s));
      resolvable &= s != kNoTermId;
    }
    if (!op.p.empty()) {
      p = serial.terms().Find(Iri(op.p));
      resolvable &= p != kNoTermId;
    }
    if (!op.o.empty()) {
      o = serial.terms().Find(Iri(op.o));
      resolvable &= o != kNoTermId;
    }
    if (resolvable) serial.RemoveMatching(s, p, o);
  }
  MvccGraph::Pin head = mvcc.Snapshot();
  EXPECT_EQ(CanonicalTriples(*head.graph), CanonicalTriples(serial))
      << "seed " << seed << ": concurrent world diverged from serial replay";
}

TEST(MvccDifferentialTest, ConcurrentInterleavingsMatchSerialReplay) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    for (int threads : {1, 4}) {
      RunDifferential(seed, threads);
    }
  }
}

}  // namespace
}  // namespace rdfa::rdf
