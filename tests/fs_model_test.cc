#include <gtest/gtest.h>

#include "fs/facets.h"
#include "fs/hierarchy.h"
#include "fs/session.h"
#include "fs/state.h"
#include "sparql/executor.h"
#include "rdf/rdfs.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa::fs {
namespace {

const std::string kEx = workload::kExampleNs;

class FsModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    rdf::MaterializeRdfsClosure(&g_);
  }
  rdf::TermId Id(const std::string& local) {
    return g_.terms().FindIri(kEx + local);
  }
  PropRef P(const std::string& local, bool inverse = false) {
    return PropRef{kEx + local, inverse};
  }
  rdf::Graph g_;
};

TEST_F(FsModelTest, RestrictByPropertyValue) {
  Extension laptops = {Id("laptop1"), Id("laptop2"), Id("laptop3")};
  Extension dell = Restrict(g_, laptops, P("manufacturer"), Id("DELL"));
  EXPECT_EQ(dell.size(), 2u);
  EXPECT_TRUE(dell.count(Id("laptop1")));
  EXPECT_TRUE(dell.count(Id("laptop2")));
}

TEST_F(FsModelTest, RestrictInverse) {
  Extension companies = {Id("DELL"), Id("Lenovo"), Id("Maxtor")};
  // Companies that manufacture laptop1: inverse of manufacturer.
  Extension made = Restrict(g_, companies, P("manufacturer", true),
                            Id("laptop1"));
  EXPECT_EQ(made.size(), 1u);
  EXPECT_TRUE(made.count(Id("DELL")));
}

TEST_F(FsModelTest, RestrictSetUnions) {
  Extension laptops = {Id("laptop1"), Id("laptop2"), Id("laptop3")};
  Extension vset = {Id("DELL"), Id("Lenovo")};
  Extension all = RestrictSet(g_, laptops, P("manufacturer"), vset);
  EXPECT_EQ(all.size(), 3u);
}

TEST_F(FsModelTest, RestrictClassUsesClosure) {
  Extension everything;
  for (const rdf::TripleId& t : g_.triples()) everything.insert(t.s);
  Extension products = RestrictClass(g_, everything, Id("Product"));
  // With the RDFS closure, laptops AND drives are Products: 3 + 3.
  EXPECT_EQ(products.size(), 6u);
}

TEST_F(FsModelTest, JoinsCollectsValues) {
  Extension laptops = {Id("laptop1"), Id("laptop2"), Id("laptop3")};
  Extension manufacturers = Joins(g_, laptops, P("manufacturer"));
  EXPECT_EQ(manufacturers.size(), 2u);
  EXPECT_TRUE(manufacturers.count(Id("DELL")));
  EXPECT_TRUE(manufacturers.count(Id("Lenovo")));
}

TEST_F(FsModelTest, JoinsInverse) {
  Extension usa = {Id("USA")};
  Extension located = Joins(g_, usa, P("origin", true));
  EXPECT_EQ(located.size(), 2u);  // DELL and AVDElectronics
}

TEST_F(FsModelTest, SessionStartsWithAllIndividuals) {
  Session s(&g_);
  EXPECT_GT(s.current().ext.size(), 10u);
  EXPECT_TRUE(s.current().ext.count(Id("laptop1")));
  EXPECT_TRUE(s.current().ext.count(Id("DELL")));
}

TEST_F(FsModelTest, ClassFacetCountsMatchFig54a) {
  // Fig 5.4 (a): Company (4), Location (5), Person (3), Product (6).
  Session s(&g_);
  auto facets = s.ClassFacets();
  std::map<std::string, size_t> counts;
  std::map<std::string, const ClassFacet*> by_name;
  for (const auto& f : facets) {
    counts[viz::LocalName(g_.terms().Get(f.cls).lexical())] = f.count;
    by_name[viz::LocalName(g_.terms().Get(f.cls).lexical())] = &f;
  }
  EXPECT_EQ(counts["Company"], 4u);
  EXPECT_EQ(counts["Location"], 5u);
  EXPECT_EQ(counts["Person"], 3u);
  EXPECT_EQ(counts["Product"], 6u);
  // Fig 5.4 (b): Product expands to HDType (3) [SSD (2), NVMe (1)] and
  // Laptop (3).
  ASSERT_TRUE(by_name.count("Product"));
  std::map<std::string, size_t> product_children;
  for (const auto& c : by_name["Product"]->children) {
    product_children[viz::LocalName(g_.terms().Get(c.cls).lexical())] =
        c.count;
  }
  EXPECT_EQ(product_children["HDType"], 3u);
  EXPECT_EQ(product_children["Laptop"], 3u);
}

TEST_F(FsModelTest, ClickClassNarrowsExtension) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  EXPECT_EQ(s.current().ext.size(), 3u);
  EXPECT_EQ(s.current().intent.root_class, kEx + "Laptop");
}

TEST_F(FsModelTest, PropertyFacetsMatchFig54c) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  auto facets = s.PropertyFacets();
  std::map<std::string, const PropertyFacet*> by_name;
  for (const auto& f : facets) by_name[viz::LocalName(f.prop.iri)] = &f;
  // Fig 5.4 (c): by manufacturer (2): DELL (2), Lenovo (1).
  ASSERT_TRUE(by_name.count("manufacturer"));
  const PropertyFacet* man = by_name["manufacturer"];
  ASSERT_EQ(man->values.size(), 2u);
  std::map<std::string, size_t> vals;
  for (const auto& vc : man->values) {
    vals[viz::LocalName(g_.terms().Get(vc.value).lexical())] = vc.count;
  }
  EXPECT_EQ(vals["DELL"], 2u);
  EXPECT_EQ(vals["Lenovo"], 1u);
  // by USBports (3): 2 (2), 4 (1).
  ASSERT_TRUE(by_name.count("USBPorts"));
  std::map<std::string, size_t> usb;
  for (const auto& vc : by_name["USBPorts"]->values) {
    usb[g_.terms().Get(vc.value).lexical()] = vc.count;
  }
  EXPECT_EQ(usb["2"], 2u);
  EXPECT_EQ(usb["4"], 1u);
}

TEST_F(FsModelTest, ClickValueTransition) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  Status st = s.ClickValue({P("manufacturer")},
                           rdf::Term::Iri(kEx + "DELL"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(s.current().ext.size(), 2u);
}

TEST_F(FsModelTest, PathExpansionMarkersMatchFig55b) {
  // Fig 5.5 (b): laptops > by manufacturer > by origin: US (1), China (1).
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  PropertyFacet f = s.ExpandPath({P("manufacturer"), P("origin")});
  std::map<std::string, size_t> vals;
  for (const auto& vc : f.values) {
    vals[viz::LocalName(g_.terms().Get(vc.value).lexical())] = vc.count;
  }
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals["USA"], 2u);    // two DELL laptops reach USA
  EXPECT_EQ(vals["China"], 1u);
}

TEST_F(FsModelTest, PathValueClickBackPropagates) {
  // Eq. 5.1: selecting USA at the end of manufacturer/origin keeps only the
  // DELL laptops.
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  Status st = s.ClickValue({P("manufacturer"), P("origin")},
                           rdf::Term::Iri(kEx + "USA"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(s.current().ext.size(), 2u);
  EXPECT_TRUE(s.current().ext.count(Id("laptop1")));
  EXPECT_TRUE(s.current().ext.count(Id("laptop2")));
}

TEST_F(FsModelTest, LongerPathExpansion) {
  // laptops -> hardDrive -> manufacturer -> origin (Fig 5.5 b bottom).
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  PropertyFacet f =
      s.ExpandPath({P("hardDrive"), P("manufacturer"), P("origin")});
  std::map<std::string, size_t> vals;
  for (const auto& vc : f.values) {
    vals[viz::LocalName(g_.terms().Get(vc.value).lexical())] = vc.count;
  }
  EXPECT_EQ(vals["Singapore"], 2u);  // SSD1 + NVMe1 by Maxtor
  EXPECT_EQ(vals["USA"], 1u);        // SSD2 by AVDElectronics
}

TEST_F(FsModelTest, RangeFilterOnNumericProperty) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  Status st = s.ClickRange({P("USBPorts")}, 2, 3);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(s.current().ext.size(), 2u);
}

TEST_F(FsModelTest, RangeOnPath) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  // GDP per capita of manufacturer origin >= 70000: USA only.
  Status st = s.ClickRange({P("manufacturer"), P("origin"), P("GDPPerCapita")},
                           70000, std::nullopt);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(s.current().ext.size(), 2u);
}

TEST_F(FsModelTest, EmptyTransitionRefused) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  // No laptop has 9 USB ports: value absent from graph -> NotFound.
  Status st = s.ClickValue({P("USBPorts")}, rdf::Term::Integer(9));
  EXPECT_FALSE(st.ok());
  // 5 exists nowhere either.
  st = s.ClickRange({P("USBPorts")}, 7, 9);
  EXPECT_FALSE(st.ok());
  // State unchanged.
  EXPECT_EQ(s.current().ext.size(), 3u);
}

TEST_F(FsModelTest, BackPopsState) {
  Session s(&g_);
  size_t initial = s.current().ext.size();
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(s.Back().ok());
  EXPECT_EQ(s.current().ext.size(), initial);
  // Back at the initial state fails.
  EXPECT_FALSE(s.Back().ok());
}

TEST_F(FsModelTest, IntentionSparqlComputesExtension) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(
      s.ClickValue({P("manufacturer"), P("origin")}, rdf::Term::Iri(kEx + "USA"))
          .ok());
  std::string q = s.current().intent.ToSparql();
  auto res = sparql::ExecuteQueryString(&g_, q);
  ASSERT_TRUE(res.ok()) << res.status().ToString() << "\n" << q;
  EXPECT_EQ(res.value().num_rows(), s.current().ext.size());
}

TEST_F(FsModelTest, SparqlOnlyModeAgreesWithNative) {
  Session native(&g_, EvalMode::kNative);
  Session sparql_only(&g_, EvalMode::kSparqlOnly);
  for (Session* s : {&native, &sparql_only}) {
    ASSERT_TRUE(s->ClickClass(kEx + "Laptop").ok());
    ASSERT_TRUE(s->ClickRange({P("USBPorts")}, 2, 2).ok());
  }
  EXPECT_EQ(native.current().ext, sparql_only.current().ext);
}

TEST_F(FsModelTest, StartFromResultsSeedsExtension) {
  Session s(&g_);
  s.StartFromResults({Id("laptop1"), Id("laptop3")});
  EXPECT_EQ(s.current().ext.size(), 2u);
  auto facets = s.PropertyFacets();
  EXPECT_FALSE(facets.empty());
}

TEST_F(FsModelTest, RenderTextShowsCounts) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  std::string text = s.RenderText();
  EXPECT_NE(text.find("manufacturer"), std::string::npos);
  EXPECT_NE(text.find("(2)"), std::string::npos);
}

TEST_F(FsModelTest, FacetMemoizationInvalidatedByTransitions) {
  Session s(&g_);
  ASSERT_TRUE(s.ClickClass(kEx + "Laptop").ok());
  auto first = s.PropertyFacets();
  auto again = s.PropertyFacets();  // memoized path
  ASSERT_EQ(first.size(), again.size());
  // A transition must invalidate the memo: facets change.
  ASSERT_TRUE(
      s.ClickValue({P("manufacturer")}, rdf::Term::Iri(kEx + "Lenovo")).ok());
  auto after = s.PropertyFacets();
  bool changed = after.size() != first.size();
  if (!changed) {
    for (size_t i = 0; i < after.size(); ++i) {
      if (after[i].values.size() != first[i].values.size()) changed = true;
    }
  }
  EXPECT_TRUE(changed);
  // Back() restores the previous facet view.
  ASSERT_TRUE(s.Back().ok());
  auto restored = s.PropertyFacets();
  ASSERT_EQ(restored.size(), first.size());
  for (size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].values.size(), first[i].values.size());
  }
}

TEST(HierarchyTest, TransitiveReduction) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::Vocab v(&g);
  rdf::SchemaView schema(g, v);
  auto forest = BuildClassForest(schema, schema.classes());
  // Find Product root; SSD must hang under HDType, not directly under
  // Product.
  const HierarchyNode* product = nullptr;
  for (const auto& root : forest) {
    if (viz::LocalName(g.terms().Get(root.term).lexical()) == "Product") {
      product = &root;
    }
  }
  ASSERT_NE(product, nullptr);
  bool ssd_under_product = false;
  bool ssd_under_hdtype = false;
  for (const auto& child : product->children) {
    std::string name = viz::LocalName(g.terms().Get(child.term).lexical());
    if (name == "SSD") ssd_under_product = true;
    if (name == "HDType") {
      for (const auto& gc : child.children) {
        if (viz::LocalName(g.terms().Get(gc.term).lexical()) == "SSD") {
          ssd_under_hdtype = true;
        }
      }
    }
  }
  EXPECT_FALSE(ssd_under_product);
  EXPECT_TRUE(ssd_under_hdtype);
}

TEST(HierarchyTest, RestrictedApplicableSetSkipsLevels) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::Vocab v(&g);
  rdf::SchemaView schema(g, v);
  // Without HDType in the applicable set, SSD's nearest applicable ancestor
  // is Product.
  std::set<rdf::TermId> applicable = {
      g.terms().FindIri(kEx + "Product"),
      g.terms().FindIri(kEx + "SSD"),
  };
  auto forest = BuildClassForest(schema, applicable);
  ASSERT_EQ(forest.size(), 1u);
  ASSERT_EQ(forest[0].children.size(), 1u);
  EXPECT_EQ(g.terms().Get(forest[0].children[0].term).lexical(), kEx + "SSD");
}

}  // namespace
}  // namespace rdfa::fs
