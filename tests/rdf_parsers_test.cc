#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "rdf/namespaces.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace rdfa::rdf {
namespace {

TEST(NTriplesTest, ParsesBasicTriples) {
  Graph g;
  Status st = ParseNTriples(
      "<urn:s> <urn:p> <urn:o> .\n"
      "<urn:s> <urn:p> \"lit\" .\n"
      "<urn:s> <urn:p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<urn:s> <urn:p> \"hi\"@en .\n"
      "_:b1 <urn:p> <urn:o> .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.size(), 5u);
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  Graph g;
  ASSERT_TRUE(ParseNTriples("# comment\n\n<urn:s> <urn:p> <urn:o> .\n", &g).ok());
  EXPECT_EQ(g.size(), 1u);
}

TEST(NTriplesTest, RejectsMissingDot) {
  Graph g;
  Status st = ParseNTriples("<urn:s> <urn:p> <urn:o>\n", &g);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(NTriplesTest, RejectsUnterminatedLiteral) {
  Graph g;
  Status st = ParseNTriples("<urn:s> <urn:p> \"oops .\n", &g);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
}

TEST(NTriplesTest, EscapedLiteralRoundTrip) {
  Graph g;
  ASSERT_TRUE(
      ParseNTriples("<urn:s> <urn:p> \"a\\\"b\\nc\" .\n", &g).ok());
  const Term& o = g.terms().Get(g.triples()[0].o);
  EXPECT_EQ(o.lexical(), "a\"b\nc");
}

TEST(NTriplesTest, WriteReadRoundTrip) {
  Graph g;
  g.Add(Term::Iri("urn:s"), Term::Iri("urn:p"), Term::Integer(7));
  g.Add(Term::Iri("urn:s"), Term::Iri("urn:q"), Term::LangLiteral("x", "en"));
  g.Add(Term::Blank("b1"), Term::Iri("urn:p"), Term::Literal("plain\n"));
  std::string text = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  EXPECT_EQ(g2.size(), g.size());
  // Same triples by term content.
  for (const TripleId& t : g.triples()) {
    TermId s = g2.terms().Find(g.terms().Get(t.s));
    TermId p = g2.terms().Find(g.terms().Get(t.p));
    TermId o = g2.terms().Find(g.terms().Get(t.o));
    EXPECT_TRUE(g2.Contains(s, p, o));
  }
}

TEST(TurtleTest, PrefixAndLists) {
  Graph g;
  PrefixMap prefixes;
  Status st = ParseTurtle(
      "@prefix ex: <http://e.org/> .\n"
      "ex:s a ex:C ;\n"
      "  ex:p ex:o1 , ex:o2 ;\n"
      "  ex:q \"v\" .\n",
      &g, &prefixes);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.size(), 4u);
  TermId s = g.terms().FindIri("http://e.org/s");
  TermId type = g.terms().FindIri(rdfns::kType);
  TermId c = g.terms().FindIri("http://e.org/C");
  EXPECT_TRUE(g.Contains(s, type, c));
}

TEST(TurtleTest, SparqlStylePrefix) {
  Graph g;
  Status st = ParseTurtle("PREFIX ex: <http://e.org/>\nex:s ex:p ex:o .\n", &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, NumericAndBooleanAbbreviations) {
  Graph g;
  Status st = ParseTurtle(
      "@prefix ex: <http://e.org/> .\n"
      "ex:s ex:i 42 ; ex:d 3.5 ; ex:b true .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  TermId i = g.terms().Find(Term::TypedLiteral("42", xsd::kInteger));
  TermId d = g.terms().Find(Term::TypedLiteral("3.5", xsd::kDecimal));
  TermId b = g.terms().Find(Term::Boolean(true));
  EXPECT_NE(i, kNoTermId);
  EXPECT_NE(d, kNoTermId);
  EXPECT_NE(b, kNoTermId);
}

TEST(TurtleTest, TypedAndLangLiterals) {
  Graph g;
  Status st = ParseTurtle(
      "@prefix ex: <http://e.org/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:s ex:p \"2021-01-01T00:00:00\"^^xsd:dateTime ; ex:q \"hi\"@en .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(g.terms().Find(Term::DateTime("2021-01-01T00:00:00")), kNoTermId);
  EXPECT_NE(g.terms().Find(Term::LangLiteral("hi", "en")), kNoTermId);
}

TEST(TurtleTest, UnknownPrefixErrors) {
  Graph g;
  Status st = ParseTurtle("nope:s nope:p nope:o .\n", &g);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(TurtleTest, UnsupportedConstructsReportError) {
  Graph g;
  EXPECT_EQ(ParseTurtle("@prefix ex: <http://e.org/> .\nex:s ex:p ( 1 2 ) .",
                        &g)
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParseTurtle("@prefix ex: <http://e.org/> .\nex:s ex:p [ ex:q 1 ] .", &g)
          .code(),
      StatusCode::kParseError);
}

TEST(TurtleTest, WriteTurtleRoundTrip) {
  Graph g;
  PrefixMap prefixes;
  prefixes.Register("ex", "http://e.org/");
  ASSERT_TRUE(ParseTurtle("@prefix ex: <http://e.org/> .\n"
                          "ex:s a ex:C ; ex:p ex:o , 42 .\n",
                          &g, &prefixes)
                  .ok());
  std::string text = WriteTurtle(g, prefixes);
  Graph g2;
  ASSERT_TRUE(ParseTurtle(text, &g2).ok()) << text;
  EXPECT_EQ(g2.size(), g.size());
}

TEST(PrefixMapTest, ExpandAndShrink) {
  PrefixMap p;
  p.Register("ex", "http://e.org/");
  EXPECT_EQ(p.Expand("ex:Laptop").value(), "http://e.org/Laptop");
  EXPECT_FALSE(p.Expand("zz:x").has_value());
  EXPECT_FALSE(p.Expand("nocolon").has_value());
  EXPECT_EQ(p.ShrinkOrWrap("http://e.org/Laptop"), "ex:Laptop");
  EXPECT_EQ(p.ShrinkOrWrap("http://other.org/x"), "<http://other.org/x>");
}

TEST(PrefixMapTest, BuiltinPrefixesPresent) {
  PrefixMap p;
  EXPECT_TRUE(p.Expand("rdf:type").has_value());
  EXPECT_TRUE(p.Expand("rdfs:subClassOf").has_value());
  EXPECT_TRUE(p.Expand("xsd:integer").has_value());
}

}  // namespace
}  // namespace rdfa::rdf
