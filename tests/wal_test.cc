#include "rdf/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "rdf/mvcc.h"

namespace rdfa::rdf {
namespace {

Term Iri(const std::string& s) { return Term::Iri("urn:" + s); }

std::string TempWalPath(const std::string& tag) {
  const char* dir = ::testing::TempDir().c_str();
  return std::string(dir) + "wal_test_" + tag + ".wal";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> recs;
  recs.push_back(WalRecord::Insert(Iri("s1"), Iri("p1"), Iri("o1")));
  recs.push_back(WalRecord::Insert(Iri("s2"), Iri("price"), Term::Integer(42)));
  recs.push_back(WalRecord::Insert(Iri("s3"), Iri("label"),
                                   Term::Literal("a \"quoted\" label")));
  recs.push_back(
      WalRecord::Remove(true, Iri("s1"), false, Term(), true, Iri("o1")));
  recs.push_back(WalRecord::Update(
      "INSERT DATA { <urn:u> <urn:p> \"text with\nnewline\" }"));
  return recs;
}

TEST(WalTest, RoundTripPreservesEveryRecordByteExactly) {
  const std::string path = TempWalPath("roundtrip");
  std::remove(path.c_str());
  const std::vector<WalRecord> recs = SampleRecords();
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    for (const WalRecord& r : recs) {
      ASSERT_TRUE(wal.value()->Append(r).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
    EXPECT_EQ(wal.value()->appended(), recs.size());
  }
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status().message();
  EXPECT_EQ(replay.value().truncated_bytes, 0u);
  ASSERT_EQ(replay.value().records.size(), recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_TRUE(replay.value().records[i] == recs[i]) << "record " << i << " differs";
  }
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileReplaysEmpty) {
  const std::string path = TempWalPath("missing");
  std::remove(path.c_str());
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().clean_bytes, 0u);
}

TEST(WalTest, CorruptedPayloadStopsReplayAtLastGoodFrame) {
  const std::string path = TempWalPath("crc");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Insert(Iri("a"), Iri("p"), Iri("b")))
                    .ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Insert(Iri("c"), Iri("p"), Iri("d")))
                    .ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 10u);
  // Flip a byte in the *last* frame's payload: CRC mismatch => torn tail.
  bytes[bytes.size() - 2] ^= 0x5a;
  WriteAll(path, bytes);
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_TRUE(replay.value().records[0] ==
              WalRecord::Insert(Iri("a"), Iri("p"), Iri("b")));
  EXPECT_GT(replay.value().truncated_bytes, 0u);
  EXPECT_EQ(replay.value().clean_bytes + replay.value().truncated_bytes, bytes.size());
  std::remove(path.c_str());
}

TEST(WalTest, EveryTruncationPointReplaysACleanPrefix) {
  // Simulate a crash at every possible byte boundary: replay must never
  // fail, never decode garbage, and always yield a prefix of the records.
  const std::string path = TempWalPath("torn");
  std::remove(path.c_str());
  const std::vector<WalRecord> recs = SampleRecords();
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& r : recs) ASSERT_TRUE(wal.value()->Append(r).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  const std::string full = ReadAll(path);
  size_t prev_count = recs.size();
  for (size_t cut = full.size(); cut-- > 0;) {
    WriteAll(path, full.substr(0, cut));
    auto replay = WriteAheadLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    ASSERT_LE(replay.value().records.size(), recs.size());
    // Record count is monotone in the cut point, and each survivor matches.
    ASSERT_LE(replay.value().records.size(), prev_count) << "cut at " << cut;
    prev_count = replay.value().records.size();
    for (size_t i = 0; i < replay.value().records.size(); ++i) {
      ASSERT_TRUE(replay.value().records[i] == recs[i])
          << "cut at " << cut << ", record " << i;
    }
    ASSERT_EQ(replay.value().clean_bytes + replay.value().truncated_bytes, cut);
  }
  std::remove(path.c_str());
}

TEST(WalTest, OpenTruncatesTornTailSoAppendsNeverInterleave) {
  const std::string path = TempWalPath("reopen");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Insert(Iri("a"), Iri("p"), Iri("b")))
                    .ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  // Leave half a frame of garbage at the tail, as a crash mid-write would.
  std::string bytes = ReadAll(path);
  WriteAll(path, bytes + std::string("\x09\x00\x00\x00garbage", 11));
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(WalRecord::Insert(Iri("c"), Iri("p"), Iri("d")))
                    .ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_TRUE(replay.value().records[1] ==
              WalRecord::Insert(Iri("c"), Iri("p"), Iri("d")));
  EXPECT_EQ(replay.value().truncated_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, CrcIsStableAndSensitive) {
  const char kMsg[] = "123456789";
  // Known-answer test for CRC-32/IEEE ("check" value of the catalogue).
  EXPECT_EQ(WalCrc32(kMsg, 9), 0xCBF43926u);
  EXPECT_EQ(WalCrc32(kMsg, 0), 0u);
  EXPECT_NE(WalCrc32("123456788", 9), WalCrc32(kMsg, 9));
}

TEST(WalTest, ReplayReproducesPreCrashGraphStats) {
  // The CI crash-recovery smoke in miniature: build a graph through the
  // MVCC layer with a WAL attached, remember its Stats(), "crash" (drop
  // the object without any shutdown handshake), then recover from the log
  // alone and compare.
  const std::string path = TempWalPath("stats");
  std::remove(path.c_str());
  GraphStats before;
  uint64_t committed = 0;
  {
    MvccGraph::Options opts;
    opts.wal_path = path;
    opts.wal_sync_every = 4;
    auto mvcc = MvccGraph::Open(opts);
    ASSERT_TRUE(mvcc.ok()) << mvcc.status().message();
    for (int i = 0; i < 37; ++i) {
      mvcc.value()->Insert(Iri("s" + std::to_string(i % 11)),
                      Iri("p" + std::to_string(i % 3)), Term::Integer(i));
      if (mvcc.value()->pending_ops() >= 5) {
        ASSERT_TRUE(mvcc.value()->Commit().ok());
      }
    }
    const Term victim = Iri("s1");
    mvcc.value()->Remove(&victim, nullptr, nullptr);
    auto epoch = mvcc.value()->Commit();
    ASSERT_TRUE(epoch.ok()) << epoch.status().message();
    committed = epoch.value();
    auto pin = mvcc.value()->Snapshot();
    before = pin.graph->Stats();
    ASSERT_GT(before.triples, 0u);
  }
  MvccGraph::Options opts;
  opts.wal_path = path;
  auto recovered = MvccGraph::Open(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value()->open_info().truncated_bytes, 0u);
  auto pin = recovered.value()->Snapshot();
  GraphStats after = pin.graph->Stats();
  EXPECT_EQ(after.triples, before.triples);
  EXPECT_EQ(after.distinct_subjects, before.distinct_subjects);
  EXPECT_EQ(after.distinct_predicates, before.distinct_predicates);
  EXPECT_EQ(after.distinct_objects, before.distinct_objects);
  EXPECT_GT(committed, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdfa::rdf
