// Hammers one Graph from many raw std::threads: concurrent const reads
// racing against the first-touch lazy index build. Before the fix,
// EnsureIndexes() mutated the mutable index vectors behind const read
// paths with no synchronization — a data race TSan flags immediately
// (build with cmake -DRDFA_SANITIZE=thread, run with ctest -L sanitize).
// The tests also assert the rebuild runs exactly once per dirty cycle.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rdf/graph.h"
#include "workload/products.h"

namespace rdfa::rdf {
namespace {

const std::string kEx = workload::kExampleNs;

class GraphStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ProductKgOptions opt;
    opt.laptops = 400;
    workload::GenerateProductKg(&g_, opt);
    type_ = g_.terms().FindIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    laptop_ = g_.terms().FindIri(kEx + "Laptop");
    price_ = g_.terms().FindIri(kEx + "price");
    manufacturer_ = g_.terms().FindIri(kEx + "manufacturer");
    ASSERT_NE(type_, kNoTermId);
    ASSERT_NE(laptop_, kNoTermId);
    ASSERT_NE(price_, kNoTermId);
    ASSERT_NE(manufacturer_, kNoTermId);
  }

  // One reader's worth of mixed const traffic; returns a checksum that must
  // be identical across threads and iterations.
  size_t ReaderPass() const {
    size_t sum = 0;
    g_.ForEachMatch(kNoTermId, type_, laptop_,
                    [&](const TripleId& t) { sum += t.s; });
    sum += g_.Match(kNoTermId, price_, kNoTermId).size();
    sum += g_.CountMatch(kNoTermId, manufacturer_, kNoTermId);
    sum += g_.EstimateMatch(kNoTermId, type_, laptop_);
    return sum;
  }

  rdf::Graph g_;
  TermId type_ = kNoTermId;
  TermId laptop_ = kNoTermId;
  TermId price_ = kNoTermId;
  TermId manufacturer_ = kNoTermId;
};

TEST_F(GraphStressTest, ConcurrentReadersWithFirstTouchIndexBuild) {
  // The graph is dirty here: every thread's first read races into the lazy
  // rebuild. All must see the same fully built indexes.
  constexpr int kThreads = 8;
  constexpr int kPasses = 50;
  std::vector<size_t> checksums(kThreads, 0);
  std::atomic<bool> mismatch{false};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        size_t first = ReaderPass();
        for (int p = 1; p < kPasses; ++p) {
          if (ReaderPass() != first) mismatch.store(true);
        }
        checksums[i] = first;
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_FALSE(mismatch.load());
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(checksums[i], checksums[0]) << "thread " << i;
  }
  // Exactly one rebuild despite eight racing first touches.
  EXPECT_EQ(g_.index_generation(), 1u);
}

TEST_F(GraphStressTest, RebuildRunsOncePerDirtyCycle) {
  constexpr int kCycles = 5;
  constexpr int kThreads = 6;
  size_t baseline = ReaderPass();
  EXPECT_EQ(g_.index_generation(), 1u);
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Exclusive writer phase: add then remove a triple, leaving the data
    // unchanged but the indexes dirty.
    Term s = Term::Iri(kEx + "stress" + std::to_string(cycle));
    ASSERT_TRUE(g_.Add(s, Term::Iri(kEx + "price"), Term::Integer(1)));
    TermId sid = g_.terms().FindIri(kEx + "stress" + std::to_string(cycle));
    ASSERT_EQ(g_.RemoveMatching(sid, kNoTermId, kNoTermId), 1u);
    // Concurrent reader phase: first touch of the dirty indexes.
    std::vector<std::thread> threads;
    std::atomic<bool> mismatch{false};
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        if (ReaderPass() != baseline) mismatch.store(true);
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_FALSE(mismatch.load()) << "cycle " << cycle;
  }
  // One initial build + one per mutation cycle, never more.
  EXPECT_EQ(g_.index_generation(), 1u + kCycles);
}

TEST_F(GraphStressTest, FreezeIsIdempotentAndConcurrent) {
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int p = 0; p < 100; ++p) g_.Freeze();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g_.index_generation(), 1u);
}

}  // namespace
}  // namespace rdfa::rdf
