// Differential cache-equivalence suite: the generation-aware answer/plan
// cache must be *observationally invisible* — a cache-on endpoint and a
// cache-off endpoint over the same mutating graph must return byte-identical
// answers at every step of a randomized query/update interleaving, across
// seeds and thread counts, under eviction pressure, and under concurrent
// hammering (the sanitize suite runs this file under TSan).
//
// Mutations and queries are serialized per the Graph thread contract:
// const reads may run concurrently, updates require exclusive access.

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "endpoint/endpoint.h"
#include "sparql/executor.h"
#include "workload/products.h"

namespace rdfa::endpoint {
namespace {

const std::string kEx = workload::kExampleNs;

std::vector<std::string> QueryPool() {
  const std::string p = "PREFIX ex: <" + kEx + ">\n";
  return {
      p + "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . } "
          "GROUP BY ?m ORDER BY ?m",
      p + "SELECT ?m (AVG(?x) AS ?avg) WHERE { ?l ex:manufacturer ?m . "
          "?l ex:price ?x . } GROUP BY ?m ORDER BY ?m",
      p + "SELECT ?o (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m . "
          "?m ex:origin ?o . } GROUP BY ?o ORDER BY ?o",
      p + "SELECT (SUM(?x) AS ?total) WHERE { ?l ex:price ?x . }",
      p + "SELECT ?l ?x WHERE { ?l ex:price ?x . FILTER(?x > 1500) } "
          "ORDER BY ?l ?x",
      p + "SELECT ?m (MAX(?x) AS ?hi) (MIN(?x) AS ?lo) WHERE { "
          "?l ex:manufacturer ?m . ?l ex:price ?x . } GROUP BY ?m "
          "ORDER BY ?m",
  };
}

/// A deterministic SPARQL UPDATE for `step`: inserts touch the answer of
/// every pool query (new manufacturer edge + price), deletes retract an
/// earlier insert (a no-match delete leaves the generation alone, which is
/// exactly the semantics the cache should mirror).
std::string UpdateFor(int step) {
  const std::string p = "PREFIX ex: <" + kEx + ">\n";
  const std::string iri = "ex:cachepoke" + std::to_string(step);
  if (step % 3 == 2) {
    return p + "DELETE WHERE { ex:cachepoke" + std::to_string(step - 1) +
           " ?p ?o . }";
  }
  return p + "INSERT DATA { " + iri + " ex:manufacturer ex:company0 . " +
         iri + " ex:price " + std::to_string(1000 + step) + " . }";
}

void BuildGraph(rdf::Graph* g, size_t laptops) {
  workload::ProductKgOptions opt;
  opt.laptops = laptops;
  workload::GenerateProductKg(g, opt);
}

/// One differential run: randomized interleaving of queries and updates,
/// asserting byte-identical answers from the cache-on and cache-off
/// endpoints at every step, then a forced query/update/query sequence that
/// demonstrates at least one generation invalidation and one refreshed hit.
void RunDifferential(uint32_t seed, int threads) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threads=" + std::to_string(threads));
  rdf::Graph g;
  BuildGraph(&g, 100);

  SimulatedEndpoint cached(&g, LatencyProfile::Local(), /*enable_cache=*/true);
  SimulatedEndpoint uncached(&g, LatencyProfile::Local(),
                             /*enable_cache=*/false);
  cached.set_thread_count(threads);
  uncached.set_thread_count(threads);

  const std::vector<std::string> pool = QueryPool();
  std::mt19937 rng(seed);
  int updates = 0;
  for (int step = 0; step < 36; ++step) {
    if (rng() % 10 < 3) {
      auto up = sparql::ExecuteUpdateString(&g, UpdateFor(step));
      ASSERT_TRUE(up.ok()) << up.status().ToString();
      ++updates;
      continue;
    }
    const std::string& q = pool[rng() % pool.size()];
    auto a = cached.Query(q);
    auto b = uncached.Query(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(a.value().status.ok()) << a.value().status.ToString();
    ASSERT_TRUE(b.value().status.ok()) << b.value().status.ToString();
    ASSERT_EQ(a.value().table.ToTsv(), b.value().table.ToTsv())
        << "cache-on answer diverged at step " << step;
    EXPECT_FALSE(b.value().cache_hit)
        << "the cache-off baseline must never reuse anything";
  }
  EXPECT_GT(updates, 0) << "the interleaving never mutated the graph";

  // Forced invalidation: fill, mutate, re-query (must miss + re-execute),
  // re-query again (must hit with the refreshed bytes).
  const std::string& q = pool[0];
  ASSERT_TRUE(cached.Query(q).ok());
  ASSERT_TRUE(sparql::ExecuteUpdateString(&g, UpdateFor(900)).ok());
  auto refreshed = cached.Query(q);
  auto baseline = uncached.Query(q);
  ASSERT_TRUE(refreshed.ok() && baseline.ok());
  ASSERT_TRUE(refreshed.value().status.ok());
  ASSERT_TRUE(baseline.value().status.ok());
  EXPECT_FALSE(refreshed.value().cache_hit);
  EXPECT_EQ(refreshed.value().table.ToTsv(), baseline.value().table.ToTsv());
  auto hit = cached.Query(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().table.ToTsv(), baseline.value().table.ToTsv());

  CacheStats stats = cached.answer_cache_stats();
  EXPECT_GE(stats.invalidations, 1u)
      << "no generation-invalidated entry was demonstrated";
  EXPECT_GE(stats.hits, 1u);
}

TEST(CacheEquivalenceTest, DifferentialSeed1Serial) { RunDifferential(1, 1); }
TEST(CacheEquivalenceTest, DifferentialSeed2Serial) { RunDifferential(2, 1); }
TEST(CacheEquivalenceTest, DifferentialSeed3Serial) { RunDifferential(3, 1); }
TEST(CacheEquivalenceTest, DifferentialSeed1Parallel) {
  RunDifferential(1, 4);
}
TEST(CacheEquivalenceTest, DifferentialSeed2Parallel) {
  RunDifferential(2, 4);
}
TEST(CacheEquivalenceTest, DifferentialSeed3Parallel) {
  RunDifferential(3, 4);
}

// Eviction pressure: a cache squeezed to 2 entries churns constantly; the
// churn must never surface a wrong answer, only cost hits.
TEST(CacheEquivalenceTest, EvictionPressureNeverChangesAnswers) {
  rdf::Graph g;
  BuildGraph(&g, 100);
  SimulatedEndpoint cached(&g, LatencyProfile::Local(), /*enable_cache=*/true);
  CacheOptions opts;
  opts.max_entries = 2;
  opts.shards = 1;
  cached.set_cache_options(opts);
  SimulatedEndpoint uncached(&g, LatencyProfile::Local(),
                             /*enable_cache=*/false);

  const std::vector<std::string> pool = QueryPool();
  for (int round = 0; round < 3; ++round) {
    for (const std::string& q : pool) {
      auto a = cached.Query(q);
      auto b = uncached.Query(q);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_TRUE(a.value().status.ok() && b.value().status.ok());
      ASSERT_EQ(a.value().table.ToTsv(), b.value().table.ToTsv());
    }
  }
  CacheStats stats = cached.answer_cache_stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u)
      << "6 distinct queries through a 2-entry cache must evict";
}

// Concurrent hammer, run under TSan in the sanitize suite: phases of
// concurrent cache-on queries (hits and misses racing on the sharded LRU)
// alternate with exclusive-access updates. Within a phase the graph is
// immutable, so every concurrent answer must equal the phase's serial
// reference, hit or miss.
TEST(CacheConcurrencyTest, HammeredCacheStaysByteIdenticalAcrossPhases) {
  rdf::Graph g;
  BuildGraph(&g, 60);
  SimulatedEndpoint cached(&g, LatencyProfile::Local(), /*enable_cache=*/true);
  AdmissionOptions adm;
  adm.max_in_flight = 8;
  adm.max_queue = 32;
  adm.base_timeout_ms = 0;  // no derived deadline under TSan slowdown
  cached.set_admission(adm);
  SimulatedEndpoint reference(&g, LatencyProfile::Local(),
                              /*enable_cache=*/false);
  const std::vector<std::string> pool = QueryPool();

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 10;
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<std::string> ref(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      auto r = reference.Query(pool[i]);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(r.value().status.ok());
      ref[i] = r.value().table.ToTsv();
    }

    std::atomic<int> failures{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t, phase] {
        std::mt19937 rng(static_cast<uint32_t>(phase * 131 + t));
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const size_t qi = rng() % pool.size();
          auto r = cached.Query(pool[qi]);
          if (!r.ok() || !r.value().status.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (r.value().table.ToTsv() != ref[qi]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0) << "phase " << phase;
    EXPECT_EQ(mismatches.load(), 0)
        << "phase " << phase << ": a concurrent answer diverged";

    // Phase boundary: all queries have drained; the graph is mutated with
    // exclusive access, invalidating the whole cached generation.
    auto up = sparql::ExecuteUpdateString(&g, UpdateFor(phase * 3));
    ASSERT_TRUE(up.ok()) << up.status().ToString();
  }

  CacheStats stats = cached.answer_cache_stats();
  EXPECT_GT(stats.hits, 0u) << "the hammer never hit the cache";
  EXPECT_GE(stats.invalidations, 1u);
}

// Concurrent-writer poison suite (the PR 5 cancelled-fill poison test,
// upgraded to a live writer): readers fill the cache from pinned MVCC
// snapshots while a writer commits between / during those fills. A fill
// computed against snapshot N is stamped with N's footprint epochs, so once
// the writer publishes N+1 having touched the footprint, the entry must
// revalidate as stale — a reader on the newer snapshot must never be served
// the older fill. Runs under TSan in the sanitize suite.
void RunConcurrentWriterPoison(uint32_t seed, int reader_threads) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " readers=" + std::to_string(reader_threads));
  auto base = std::make_unique<rdf::Graph>();
  BuildGraph(base.get(), 60);
  rdf::MvccGraph mvcc(std::move(base));
  SimulatedEndpoint cached(&mvcc, LatencyProfile::Local(),
                           /*enable_cache=*/true);
  AdmissionOptions adm;
  adm.max_in_flight = 8;
  adm.max_queue = 64;
  adm.base_timeout_ms = 0;  // no derived deadline under TSan slowdown
  cached.set_admission(adm);

  const std::vector<std::string> pool = QueryPool();
  constexpr int kCommits = 12;
  constexpr int kQueriesPerThread = 16;

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(reader_threads));
  std::atomic<bool> writer_done{false};
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(seed * 977 + static_cast<uint32_t>(t));
      int i = 0;
      // Keep filling until the writer is done so late commits always race
      // at least one in-flight fill.
      while (i < kQueriesPerThread || !writer_done.load()) {
        auto r = cached.Query(pool[rng() % pool.size()]);
        if (!r.ok() || !r.value().status.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
        if (i > kQueriesPerThread * 50) break;  // writer stalled; bail out
      }
    });
  }

  std::thread writer([&] {
    for (int c = 0; c < kCommits; ++c) {
      if (c % 2 == 0) {
        // Touches ex:price — inside every pool footprint, so fills raced
        // by this commit must die.
        mvcc.Insert(rdf::Term::Iri(kEx + "poison" + std::to_string(c)),
                    rdf::Term::Iri(kEx + "price"),
                    rdf::Term::Integer(5000 + c));
      } else {
        // Touches a predicate no pool query reads: entries stay valid,
        // which is what keeps the hit counter nonzero below.
        mvcc.Insert(rdf::Term::Iri(kEx + "poison" + std::to_string(c)),
                    rdf::Term::Iri(kEx + "unrelatedPoke"),
                    rdf::Term::Integer(c));
      }
      auto epoch = mvcc.Commit();
      if (!epoch.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
    writer_done.store(true);
  });
  writer.join();
  for (std::thread& th : readers) th.join();
  ASSERT_EQ(failures.load(), 0);

  // The race is over; the head snapshot is the only truth. Every cached
  // answer — including a forced second read that must be a hit — has to
  // byte-match a fresh uncached execution against head.
  SimulatedEndpoint uncached(&mvcc, LatencyProfile::Local(),
                             /*enable_cache=*/false);
  for (const std::string& q : pool) {
    auto fresh = uncached.Query(q);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(fresh.value().status.ok());
    auto first = cached.Query(q);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value().status.ok());
    EXPECT_EQ(first.value().table.ToTsv(), fresh.value().table.ToTsv())
        << "a stale fill survived the writer's commits";
    auto second = cached.Query(q);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().cache_hit);
    EXPECT_EQ(second.value().table.ToTsv(), fresh.value().table.ToTsv());
  }
  EXPECT_GT(cached.answer_cache_stats().hits, 0u);
}

TEST(CachePoisonTest, ConcurrentWriterSeed1OneReader) {
  RunConcurrentWriterPoison(1, 1);
}
TEST(CachePoisonTest, ConcurrentWriterSeed2OneReader) {
  RunConcurrentWriterPoison(2, 1);
}
TEST(CachePoisonTest, ConcurrentWriterSeed3OneReader) {
  RunConcurrentWriterPoison(3, 1);
}
TEST(CachePoisonTest, ConcurrentWriterSeed1FourReaders) {
  RunConcurrentWriterPoison(1, 4);
}
TEST(CachePoisonTest, ConcurrentWriterSeed2FourReaders) {
  RunConcurrentWriterPoison(2, 4);
}
TEST(CachePoisonTest, ConcurrentWriterSeed3FourReaders) {
  RunConcurrentWriterPoison(3, 4);
}

// ClearCache between drained phases: the reset path (entries dropped, hit
// counters zeroed) followed by a refill, exercised under the TSan build.
TEST(CacheConcurrencyTest, ClearBetweenPhasesRestartsHitRateMath) {
  rdf::Graph g;
  BuildGraph(&g, 60);
  SimulatedEndpoint cached(&g, LatencyProfile::Local(), /*enable_cache=*/true);
  const std::vector<std::string> pool = QueryPool();
  for (int phase = 0; phase < 2; ++phase) {
    for (const std::string& q : pool) {
      auto r1 = cached.Query(q);
      auto r2 = cached.Query(q);
      ASSERT_TRUE(r1.ok() && r2.ok());
      ASSERT_TRUE(r2.value().cache_hit);
    }
    EXPECT_EQ(cached.cache_hits(), pool.size());
    EXPECT_EQ(cached.answer_cache_stats().hits, pool.size());
    cached.ClearCache();
    EXPECT_EQ(cached.cache_hits(), 0u);
    EXPECT_EQ(cached.answer_cache_stats().hits, 0u);
    EXPECT_EQ(cached.answer_cache_stats().entries, 0u);
  }
}

}  // namespace
}  // namespace rdfa::endpoint
