// Tests for graph browsing (the paper's "plain graph browsing" mode),
// binary persistence, session recording/replay, answer-frame column
// projection and the extra chart renderers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "fs/replay.h"
#include "rdf/binary_io.h"
#include "rdf/browse.h"
#include "rdf/ntriples.h"
#include "rdf/rdfs.h"
#include "viz/chart.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;

// ---------------- browsing ----------------

class BrowseTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildRunningExample(&g_); }
  rdf::TermId Id(const std::string& local) {
    return g_.terms().FindIri(kEx + local);
  }
  rdf::Graph g_;
};

TEST_F(BrowseTest, CardCollectsTypesOutgoingIncoming) {
  rdf::ResourceCard card = rdf::DescribeResource(g_, Id("DELL"));
  ASSERT_EQ(card.types.size(), 1u);
  EXPECT_EQ(g_.terms().Get(card.types[0]).lexical(), kEx + "Company");
  // Outgoing: origin, founder.
  EXPECT_EQ(card.outgoing.size(), 2u);
  // Incoming: manufacturer (laptop1, laptop2).
  ASSERT_EQ(card.incoming.size(), 1u);
  EXPECT_EQ(g_.terms().Get(card.incoming[0].property).lexical(),
            kEx + "manufacturer");
  EXPECT_EQ(card.incoming[0].values.size(), 2u);
}

TEST_F(BrowseTest, RenderCardMentionsNeighbors) {
  std::string text =
      rdf::RenderResourceCard(g_, rdf::DescribeResource(g_, Id("DELL")));
  EXPECT_NE(text.find("DELL (Company)"), std::string::npos) << text;
  EXPECT_NE(text.find("-> origin: USA"), std::string::npos);
  EXPECT_NE(text.find("<- manufacturer: laptop1, laptop2"), std::string::npos);
}

TEST_F(BrowseTest, CbdCopiesSubjectTriples) {
  rdf::Graph out;
  size_t n = rdf::ConciseBoundedDescription(g_, Id("laptop1"), &out);
  EXPECT_EQ(n, g_.CountMatch(Id("laptop1"), rdf::kNoTermId, rdf::kNoTermId));
  EXPECT_EQ(out.size(), n);
}

TEST_F(BrowseTest, CbdRecursesThroughBlankNodes) {
  rdf::Graph g;
  g.Add(rdf::Term::Iri("urn:s"), rdf::Term::Iri("urn:p"),
        rdf::Term::Blank("b1"));
  g.Add(rdf::Term::Blank("b1"), rdf::Term::Iri("urn:q"),
        rdf::Term::Literal("deep"));
  g.Add(rdf::Term::Iri("urn:other"), rdf::Term::Iri("urn:p"),
        rdf::Term::Literal("unrelated"));
  rdf::Graph out;
  size_t n = rdf::ConciseBoundedDescription(
      g, g.terms().FindIri("urn:s"), &out);
  EXPECT_EQ(n, 2u);  // the blank node's triple comes along
}

// ---------------- binary persistence ----------------

TEST(BinaryIoTest, RoundTripPreservesTermsAndTriples) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::MaterializeRdfsClosure(&g);
  std::string blob = rdf::SaveBinary(g);

  rdf::Graph loaded;
  Status st = rdf::LoadBinary(blob, &loaded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(loaded.size(), g.size());
  EXPECT_EQ(loaded.terms().size(), g.terms().size());
  // Term ids are preserved exactly.
  for (size_t i = 0; i < g.terms().size(); ++i) {
    EXPECT_EQ(loaded.terms().Get(static_cast<rdf::TermId>(i)),
              g.terms().Get(static_cast<rdf::TermId>(i)));
  }
  // RDFA3 canonicalizes triple order to SPO, so compare as sets of lines
  // rather than raw serializations.
  auto sorted_lines = [](const std::string& nt) {
    std::vector<std::string> lines;
    std::istringstream in(nt);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(rdf::WriteNTriples(loaded)),
            sorted_lines(rdf::WriteNTriples(g)));
}

TEST(BinaryIoTest, RejectsGarbageAndTruncation) {
  rdf::Graph g;
  EXPECT_EQ(rdf::LoadBinary("not a snapshot", &g).code(),
            StatusCode::kParseError);

  rdf::Graph src;
  src.Add(rdf::Term::Iri("urn:a"), rdf::Term::Iri("urn:b"),
          rdf::Term::Integer(1));
  std::string blob = rdf::SaveBinary(src);
  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{7}}) {
    rdf::Graph dst;
    EXPECT_EQ(rdf::LoadBinary(std::string_view(blob).substr(0, cut), &dst)
                  .code(),
              StatusCode::kParseError)
        << "cut at " << cut;
  }
}

TEST(BinaryIoTest, RequiresEmptyGraph) {
  rdf::Graph src;
  src.Add(rdf::Term::Iri("urn:a"), rdf::Term::Iri("urn:b"),
          rdf::Term::Iri("urn:c"));
  std::string blob = rdf::SaveBinary(src);
  rdf::Graph nonempty;
  nonempty.Add(rdf::Term::Iri("urn:x"), rdf::Term::Iri("urn:y"),
               rdf::Term::Iri("urn:z"));
  EXPECT_EQ(rdf::LoadBinary(blob, &nonempty).code(),
            StatusCode::kInvalidArgument);
}

TEST(BinaryIoTest, FileRoundTrip) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  std::string path = ::testing::TempDir() + "/rdfa_snapshot.bin";
  ASSERT_TRUE(rdf::SaveBinaryFile(g, path).ok());
  rdf::Graph loaded;
  ASSERT_TRUE(rdf::LoadBinaryFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), g.size());
  std::remove(path.c_str());
}

// ---------------- session recording / replay ----------------

TEST(ReplayTest, RecordSerializeParseReplay) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::MaterializeRdfsClosure(&g);

  fs::Session original(&g);
  fs::SessionRecorder recorder(&original);
  ASSERT_TRUE(recorder.ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(recorder
                  .ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                              rdf::Term::Iri(kEx + "USA"))
                  .ok());
  ASSERT_TRUE(recorder.ClickRange({{kEx + "USBPorts"}}, 2, std::nullopt).ok());
  ASSERT_TRUE(recorder.Back().ok());

  std::string script_text = recorder.Serialize();
  EXPECT_NE(script_text.find("class " + kEx + "Laptop"), std::string::npos);
  EXPECT_NE(script_text.find("back"), std::string::npos);

  auto parsed = fs::ParseScript(script_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 4u);

  fs::Session replayed(&g);
  ASSERT_TRUE(fs::ReplayScript(parsed.value(), &replayed).ok());
  EXPECT_EQ(replayed.current().ext, original.current().ext);
  EXPECT_EQ(replayed.depth(), original.depth());
}

TEST(ReplayTest, FailedActionIsNotRecorded) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  fs::Session s(&g);
  fs::SessionRecorder recorder(&s);
  EXPECT_FALSE(recorder.ClickClass(kEx + "NoSuchClass").ok());
  EXPECT_TRUE(recorder.script().empty());
}

TEST(ReplayTest, ScriptParseErrors) {
  EXPECT_FALSE(fs::ParseScript("frobnicate x").ok());
  EXPECT_FALSE(fs::ParseScript("value onlypath").ok());
  EXPECT_FALSE(fs::ParseScript("range p 1").ok());
  // Comments and blank lines are fine.
  auto ok = fs::ParseScript("# comment\n\nback\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 1u);
}

TEST(ReplayTest, InversePathRoundTrips) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  fs::Session s(&g);
  fs::SessionRecorder recorder(&s);
  // Companies that manufacture something: inverse property click.
  ASSERT_TRUE(recorder.ClickClass(kEx + "Company").ok());
  ASSERT_TRUE(recorder
                  .ClickValue({{kEx + "manufacturer", true}},
                              rdf::Term::Iri(kEx + "laptop1"))
                  .ok());
  auto parsed = fs::ParseScript(recorder.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_TRUE(parsed.value()[1].path[0].inverse);
}

// ---------------- answer-frame column projection ----------------

TEST(AnswerFrameProjectTest, KeepsRequestedColumnsInOrder) {
  sparql::ResultTable t({"a", "b", "c"});
  t.AddRow({rdf::Term::Integer(1), rdf::Term::Integer(2),
            rdf::Term::Integer(3)});
  analytics::AnswerFrame af(t);
  auto projected = af.ProjectColumns({"c", "a"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().table().columns(),
            (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(projected.value().table().at(0, 0).lexical(), "3");
  EXPECT_EQ(projected.value().table().at(0, 1).lexical(), "1");
  EXPECT_EQ(af.ProjectColumns({"nope"}).status().code(),
            StatusCode::kNotFound);
}

// ---------------- extra chart renderers ----------------

TEST(ColumnChartTest, TallestColumnFull) {
  std::string chart = viz::RenderColumnChart(
      {{"alpha", 10}, {"beta", 5}}, 4);
  // The first text row contains only the tallest column's mark.
  size_t first_newline = chart.find('\n');
  std::string top = chart.substr(0, first_newline);
  EXPECT_NE(top.find('#'), std::string::npos);
  EXPECT_EQ(top.rfind('#'), top.find('#'));  // exactly one column at the top
  EXPECT_NE(chart.find("a: alpha = 10"), std::string::npos);
}

TEST(HistogramTest, BarsScaleWithCounts) {
  std::string h = viz::RenderHistogram(
      {{0, 10, 4}, {10, 20, 8}, {20, 30, 0}}, 8);
  EXPECT_NE(h.find("[0, 10) #### 4"), std::string::npos) << h;
  EXPECT_NE(h.find("[10, 20) ######## 8"), std::string::npos);
  EXPECT_NE(h.find("[20, 30)  0"), std::string::npos);
}

}  // namespace
}  // namespace rdfa
