#include "endpoint/endpoint.h"

#include <gtest/gtest.h>

#include "workload/invoices.h"

namespace rdfa::endpoint {
namespace {

constexpr char kQuery[] =
    "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
    "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
    "inv:inQuantity ?q . } GROUP BY ?b";

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildInvoicesExample(&g_); }
  rdf::Graph g_;
};

TEST_F(EndpointTest, LocalProfileHasNoModeledOverhead) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  auto resp = ep.Query(kQuery);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().network_ms, 0);
  EXPECT_EQ(resp.value().table.num_rows(), 3u);
  EXPECT_NEAR(resp.value().total_ms, resp.value().exec_ms, 1e-9);
}

TEST_F(EndpointTest, PeakSlowerThanOffPeak) {
  SimulatedEndpoint peak(&g_, LatencyProfile::Peak());
  SimulatedEndpoint off(&g_, LatencyProfile::OffPeak());
  auto rp = peak.Query(kQuery);
  auto ro = off.Query(kQuery);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(ro.ok());
  // Same answer either way.
  EXPECT_EQ(rp.value().table.num_rows(), ro.value().table.num_rows());
  // Peak network floor alone exceeds off-peak base + jitter.
  EXPECT_GT(rp.value().network_ms, ro.value().network_ms);
  EXPECT_GT(rp.value().total_ms, ro.value().total_ms);
}

TEST_F(EndpointTest, NetworkJitterIsDeterministic) {
  SimulatedEndpoint a(&g_, LatencyProfile::Peak());
  SimulatedEndpoint b(&g_, LatencyProfile::Peak());
  auto ra1 = a.Query(kQuery);
  auto ra2 = a.Query(kQuery);
  auto rb1 = b.Query(kQuery);
  auto rb2 = b.Query(kQuery);
  ASSERT_TRUE(ra1.ok() && ra2.ok() && rb1.ok() && rb2.ok());
  EXPECT_EQ(ra1.value().network_ms, rb1.value().network_ms);
  EXPECT_EQ(ra2.value().network_ms, rb2.value().network_ms);
}

TEST_F(EndpointTest, CacheHitsSkipExecution) {
  SimulatedEndpoint ep(&g_, LatencyProfile::OffPeak(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().exec_ms, 0);
  EXPECT_EQ(ep.cache_hits(), 1u);
  EXPECT_EQ(ep.queries_served(), 2u);
  ep.ClearCache();
  auto third = ep.Query(kQuery);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().cache_hit);
}

TEST_F(EndpointTest, ParseErrorsPropagate) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  auto resp = ep.Query("SELECT FROM NOWHERE");
  EXPECT_EQ(resp.status().code(), StatusCode::kParseError);
}

TEST_F(EndpointTest, CachedAnswerEqualsFreshAnswer) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().table.ToTsv(), second.value().table.ToTsv());
}

}  // namespace
}  // namespace rdfa::endpoint
