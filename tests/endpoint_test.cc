#include "endpoint/endpoint.h"

#include <thread>

#include <gtest/gtest.h>

#include "sparql/executor.h"
#include "workload/invoices.h"

namespace rdfa::endpoint {
namespace {

constexpr char kQuery[] =
    "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
    "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
    "inv:inQuantity ?q . } GROUP BY ?b";

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildInvoicesExample(&g_); }
  rdf::Graph g_;
};

TEST_F(EndpointTest, LocalProfileHasNoModeledOverhead) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  auto resp = ep.Query(kQuery);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().network_ms, 0);
  EXPECT_EQ(resp.value().table.num_rows(), 3u);
  EXPECT_NEAR(resp.value().total_ms, resp.value().exec_ms, 1e-9);
}

TEST_F(EndpointTest, PeakSlowerThanOffPeak) {
  SimulatedEndpoint peak(&g_, LatencyProfile::Peak());
  SimulatedEndpoint off(&g_, LatencyProfile::OffPeak());
  auto rp = peak.Query(kQuery);
  auto ro = off.Query(kQuery);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(ro.ok());
  // Same answer either way.
  EXPECT_EQ(rp.value().table.num_rows(), ro.value().table.num_rows());
  // Peak network floor alone exceeds off-peak base + jitter.
  EXPECT_GT(rp.value().network_ms, ro.value().network_ms);
  EXPECT_GT(rp.value().total_ms, ro.value().total_ms);
}

TEST_F(EndpointTest, NetworkJitterIsDeterministic) {
  SimulatedEndpoint a(&g_, LatencyProfile::Peak());
  SimulatedEndpoint b(&g_, LatencyProfile::Peak());
  auto ra1 = a.Query(kQuery);
  auto ra2 = a.Query(kQuery);
  auto rb1 = b.Query(kQuery);
  auto rb2 = b.Query(kQuery);
  ASSERT_TRUE(ra1.ok() && ra2.ok() && rb1.ok() && rb2.ok());
  EXPECT_EQ(ra1.value().network_ms, rb1.value().network_ms);
  EXPECT_EQ(ra2.value().network_ms, rb2.value().network_ms);
}

TEST_F(EndpointTest, CacheHitsSkipExecution) {
  SimulatedEndpoint ep(&g_, LatencyProfile::OffPeak(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().exec_ms, 0);
  EXPECT_EQ(ep.cache_hits(), 1u);
  EXPECT_EQ(ep.queries_served(), 2u);
  ep.ClearCache();
  auto third = ep.Query(kQuery);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().cache_hit);
}

TEST_F(EndpointTest, ParseErrorsPropagate) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  auto resp = ep.Query("SELECT FROM NOWHERE");
  EXPECT_EQ(resp.status().code(), StatusCode::kParseError);
}

TEST_F(EndpointTest, CachedAnswerEqualsFreshAnswer) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().table.ToTsv(), second.value().table.ToTsv());
}

TEST_F(EndpointTest, EffectiveTimeoutTightensUnderLoad) {
  SimulatedEndpoint peak(&g_, LatencyProfile::Peak());
  SimulatedEndpoint off(&g_, LatencyProfile::OffPeak());
  AdmissionOptions opts;
  EXPECT_NEAR(off.effective_timeout_ms(), opts.base_timeout_ms, 1e-9);
  EXPECT_NEAR(peak.effective_timeout_ms(),
              opts.base_timeout_ms / LatencyProfile::Peak().load_multiplier,
              1e-9);
}

TEST_F(EndpointTest, ShedsWithResourceExhaustedWhenSaturated) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 0;  // no waiting room
  ep.set_admission(opts);

  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(held.value().held());

  // The endpoint is occupied: the query is shed in-band, not errored.
  auto resp = ep.Query(kQuery);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(resp.value().table.num_rows(), 0u);
  EXPECT_NE(resp.value().status.ToString().find("0 queued"),
            std::string::npos);
  EXPECT_EQ(ep.Stats().shed, 1u);

  // Releasing the held slot restores service.
  held.value().Release();
  auto served = ep.Query(kQuery);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served.value().status.ok());
  EXPECT_EQ(served.value().table.num_rows(), 3u);
}

TEST_F(EndpointTest, QueuedQueryRunsOnceTheSlotFrees) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 1;
  ep.set_admission(opts);

  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());

  Result<QueryResponse> queued = Status::Internal("unset");
  std::thread client([&] { queued = ep.Query(kQuery); });
  // Let the client enter the wait queue, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  held.value().Release();
  client.join();

  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_TRUE(queued.value().status.ok());
  EXPECT_EQ(queued.value().table.num_rows(), 3u);
  EXPECT_GT(queued.value().queued_ms, 0.0);
  EXPECT_EQ(ep.Stats().shed, 0u);
}

TEST_F(EndpointTest, QueuedQueryHonorsItsDeadline) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 4;
  ep.set_admission(opts);

  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());

  // The slot is never released: the queued query must give up on its own
  // deadline with the typed status, not wait forever.
  auto resp = ep.Query(kQuery, QueryContext::WithDeadlineMs(30));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(resp.value().status.ToString().find("admission-queue"),
            std::string::npos);
  EXPECT_EQ(ep.Stats().timed_out, 1u);
}

TEST_F(EndpointTest, CancellingAQueuedQueryUnblocksIt) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  AdmissionOptions opts;
  opts.max_in_flight = 1;
  opts.max_queue = 4;
  ep.set_admission(opts);

  auto held = ep.Admit();
  ASSERT_TRUE(held.ok());

  QueryContext ctx;
  Result<QueryResponse> queued = Status::Internal("unset");
  std::thread client([&] { queued = ep.Query(kQuery, ctx); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ctx.Cancel();
  client.join();

  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(queued.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ep.Stats().cancelled, 1u);
}

TEST_F(EndpointTest, TightBudgetTripsMidExecutionWithPartialStats) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local());
  AdmissionOptions opts;
  opts.base_timeout_ms = 1e-4;  // 100 ns: expires before the first check
  ep.set_admission(opts);

  auto resp = ep.Query(kQuery);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.value().exec_stats.aborted);
  EXPECT_EQ(resp.value().table.num_rows(), 0u);
  EndpointStats stats = ep.Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.count, 1u);  // the trip is still logged
}

TEST_F(EndpointTest, StatsReportPercentiles) {
  SimulatedEndpoint ep(&g_, LatencyProfile::OffPeak());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ep.Query(kQuery).ok());
  EndpointStats stats = ep.Stats();
  EXPECT_EQ(stats.count, 5u);
  EXPECT_GT(stats.p50_total_ms, 0.0);
  EXPECT_GE(stats.p99_total_ms, stats.p50_total_ms);
}

// Regression anchor: the pre-generation cache kept serving the answer
// computed *before* a SPARQL UPDATE. The generation stamp must turn that
// lookup into a miss (counted as an invalidation) and the re-executed
// answer must reflect the mutation.
TEST_F(EndpointTest, UpdateInvalidatesCachedAnswer) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  auto before = ep.Query(kQuery);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before.value().status.ok());
  const std::string stale = before.value().table.ToTsv();

  auto updated = sparql::ExecuteUpdateString(
      &g_,
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "INSERT DATA { inv:i99 inv:takesPlaceAt inv:br1 . "
      "inv:i99 inv:inQuantity 1000 . }");
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  ASSERT_GT(updated.value().inserted, 0u);

  auto after = ep.Query(kQuery);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().status.ok());
  EXPECT_FALSE(after.value().cache_hit) << "served a stale cached answer";
  EXPECT_NE(after.value().table.ToTsv(), stale)
      << "the +1000 quantity is missing from the re-served answer";
  EXPECT_GE(ep.answer_cache_stats().invalidations, 1u);

  // The refreshed entry is served again at the new generation.
  auto again = ep.Query(kQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().cache_hit);
  EXPECT_EQ(again.value().table.ToTsv(), after.value().table.ToTsv());
}

// Regression anchor: the pre-LRU cache was an unbounded map — distinct
// queries grew it forever. Residency must now respect the entry budget.
TEST_F(EndpointTest, CacheResidencyStaysBounded) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  CacheOptions opts;
  opts.max_entries = 4;
  opts.shards = 1;  // one global LRU: exact bound, exact eviction order
  ep.set_cache_options(opts);
  for (int i = 0; i < 32; ++i) {
    std::string q =
        "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
        "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
        "inv:inQuantity ?q . FILTER(?q > " +
        std::to_string(i) + ") } GROUP BY ?b";
    auto resp = ep.Query(q);
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp.value().status.ok());
  }
  CacheStats stats = ep.answer_cache_stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GE(stats.evictions, 28u);
}

TEST_F(EndpointTest, ClearCacheResetsHitCounter) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  ASSERT_TRUE(ep.Query(kQuery).ok());
  ASSERT_TRUE(ep.Query(kQuery).ok());
  EXPECT_EQ(ep.cache_hits(), 1u);
  ep.ClearCache();
  // Hit-rate math restarts from scratch: the counter is zero, the next
  // repeat pair yields exactly one hit again.
  EXPECT_EQ(ep.cache_hits(), 0u);
  EXPECT_EQ(ep.answer_cache_stats().hits, 0u);
  ASSERT_TRUE(ep.Query(kQuery).ok());
  ASSERT_TRUE(ep.Query(kQuery).ok());
  EXPECT_EQ(ep.cache_hits(), 1u);
}

TEST_F(EndpointTest, PlanCacheHitSkipsParsingButNotExecution) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().plan_cache_hit);
  EXPECT_EQ(ep.plan_cache_stats().entries, 1u);

  // An update keeps the answer cache from hitting; the plan is recomputed
  // too (plans validate against the statistics' generation).
  auto updated = sparql::ExecuteUpdateString(
      &g_,
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "INSERT DATA { inv:i98 inv:takesPlaceAt inv:br2 . "
      "inv:i98 inv:inQuantity 7 . }");
  ASSERT_TRUE(updated.ok());
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().cache_hit);
  EXPECT_FALSE(second.value().plan_cache_hit);
  EXPECT_TRUE(second.value().status.ok());
}

TEST_F(EndpointTest, PlanCacheServesWhenAnswerCacheCannotHold) {
  // A 1-byte answer budget keeps every answer out of the cache (oversized
  // entries are skipped), so repeats re-execute — but the plan layer still
  // hits, skipping parse + reorder while producing identical bytes.
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  CacheOptions opts;
  opts.max_bytes = 1;
  opts.shards = 1;
  ep.set_cache_options(opts);
  auto first = ep.Query(kQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().status.ok());
  EXPECT_FALSE(first.value().plan_cache_hit);
  auto second = ep.Query(kQuery);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().status.ok());
  EXPECT_FALSE(second.value().cache_hit);
  EXPECT_TRUE(second.value().plan_cache_hit);
  EXPECT_EQ(second.value().table.ToTsv(), first.value().table.ToTsv());
  EXPECT_EQ(ep.plan_cache_stats().hits, 1u);
  EXPECT_EQ(ep.answer_cache_stats().entries, 0u);
}

TEST_F(EndpointTest, ReformattedQuerySharesTheCacheEntry) {
  SimulatedEndpoint ep(&g_, LatencyProfile::Local(), /*enable_cache=*/true);
  auto first = ep.Query(kQuery);
  ASSERT_TRUE(first.ok());
  // Same query, whitespace mangled: tabs, runs of spaces, trailing newline.
  std::string mangled;
  for (char c : std::string(kQuery)) {
    mangled += c;
    if (c == ' ') mangled += "\t ";
  }
  mangled += "\n\n";
  auto second = ep.Query(mangled);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().table.ToTsv(), first.value().table.ToTsv());
}

}  // namespace
}  // namespace rdfa::endpoint
