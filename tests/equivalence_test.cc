// Soundness of the HIFUN->SPARQL translation (dissertation Proposition 2):
// for a corpus of HIFUN queries, the translated SPARQL query evaluated by
// the engine must return the same answer as the direct HIFUN evaluator.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "hifun/evaluator.h"
#include "hifun/hifun_parser.h"
#include "sparql/executor.h"
#include "sparql/value.h"
#include "translator/translator.h"
#include "viz/table_render.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kInv = workload::kInvoiceNs;
const std::string kEx = workload::kExampleNs;

/// Canonicalizes a result table into group-key -> list of aggregate values,
/// independent of row order and column naming.
std::map<std::string, std::vector<double>> Canonical(
    const sparql::ResultTable& t, size_t n_group_cols) {
  std::map<std::string, std::vector<double>> out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < n_group_cols; ++c) {
      key += viz::DisplayTerm(t.at(r, c)) + "|";
    }
    std::vector<double> aggs;
    for (size_t c = n_group_cols; c < t.num_columns(); ++c) {
      auto v = sparql::Value::FromTerm(t.at(r, c)).AsNumeric();
      aggs.push_back(v.value_or(std::nan("")));
    }
    out[key] = aggs;
  }
  return out;
}

struct EquivalenceCase {
  std::string name;
  std::string hifun;
  std::string ns;
  size_t group_cols;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, TranslatedSparqlMatchesDirectEvaluation) {
  const EquivalenceCase& tc = GetParam();
  rdf::Graph g;
  if (tc.ns == kInv) {
    workload::BuildInvoicesExample(&g);
    workload::InvoicesOptions opt;
    opt.invoices = 300;
    opt.branches = 5;
    opt.products = 20;
    opt.brands = 4;
    workload::GenerateInvoices(&g, opt);
  } else {
    workload::BuildRunningExample(&g);
    workload::ProductKgOptions opt;
    opt.laptops = 200;
    workload::GenerateProductKg(&g, opt);
  }

  rdf::PrefixMap prefixes;
  auto parsed = hifun::ParseHifun(tc.hifun, prefixes, tc.ns);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const hifun::Query& q = parsed.value();

  // Direct evaluation (reference semantics).
  hifun::Evaluator eval(g);
  auto direct = eval.Evaluate(q);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Translated SPARQL evaluation.
  auto sparql_text = translator::TranslateToSparql(q);
  ASSERT_TRUE(sparql_text.ok()) << sparql_text.status().ToString();
  auto via_sparql = sparql::ExecuteQueryString(&g, sparql_text.value());
  ASSERT_TRUE(via_sparql.ok())
      << via_sparql.status().ToString() << "\n" << sparql_text.value();

  auto a = Canonical(direct.value(), tc.group_cols);
  auto b = Canonical(via_sparql.value(), tc.group_cols);
  ASSERT_EQ(a.size(), b.size())
      << "group counts differ\nsparql:\n" << sparql_text.value();
  for (const auto& [key, aggs] : a) {
    ASSERT_TRUE(b.count(key)) << "missing group " << key;
    ASSERT_EQ(aggs.size(), b[key].size());
    for (size_t i = 0; i < aggs.size(); ++i) {
      EXPECT_NEAR(aggs[i], b[key][i], 1e-6)
          << "group " << key << " agg " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EquivalenceTest,
    ::testing::Values(
        EquivalenceCase{"simple_sum",
                        "(takesPlaceAt, inQuantity, SUM) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{"count_identity",
                        "(takesPlaceAt, ID, COUNT) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{"avg_min_max",
                        "(takesPlaceAt, inQuantity, AVG+MIN+MAX) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{"uri_restriction",
                        "(takesPlaceAt / = b1, inQuantity, SUM) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{
            "literal_restriction",
            "(takesPlaceAt, inQuantity / >= 100, SUM) over Invoice",
            workload::kInvoiceNs, 1},
        EquivalenceCase{"having",
                        "(takesPlaceAt, inQuantity, SUM / > 600) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{"composition",
                        "(brand o delivers, inQuantity, SUM) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{"derived_month",
                        "(MONTH(hasDate), inQuantity, SUM) over Invoice",
                        workload::kInvoiceNs, 1},
        EquivalenceCase{
            "pairing",
            "((takesPlaceAt x delivers), inQuantity, SUM) over Invoice",
            workload::kInvoiceNs, 2},
        EquivalenceCase{
            "pairing_over_composition",
            "((takesPlaceAt x brand o delivers), inQuantity, SUM) over Invoice",
            workload::kInvoiceNs, 2},
        EquivalenceCase{
            "restriction_path",
            "(takesPlaceAt, inQuantity / delivers.brand = BrandA, SUM) over "
            "Invoice",
            workload::kInvoiceNs, 1},
        EquivalenceCase{"global_avg", "(eps, inQuantity, AVG) over Invoice",
                        workload::kInvoiceNs, 0},
        EquivalenceCase{
            "paper_425_full",
            "((takesPlaceAt x brand o delivers) / MONTH(hasDate) = 1, "
            "inQuantity / >= 2, SUM / > 150) over Invoice",
            workload::kInvoiceNs, 2},
        EquivalenceCase{
            "derived_restriction_year",
            "(takesPlaceAt, inQuantity / YEAR(hasDate) = 2021, SUM) over "
            "Invoice",
            workload::kInvoiceNs, 1},
        EquivalenceCase{
            "products_avg_price_by_manufacturer",
            "(manufacturer, price, AVG) over Laptop",
            workload::kExampleNs, 1},
        EquivalenceCase{
            "products_origin_path",
            "(origin o manufacturer, price, AVG+COUNT) over Laptop",
            workload::kExampleNs, 1},
        EquivalenceCase{
            "products_usb_restriction",
            "(manufacturer, price / USBPorts >= 2, AVG) over Laptop",
            workload::kExampleNs, 1},
        EquivalenceCase{
            "products_year_group",
            "(YEAR(releaseDate), price, MAX) over Laptop",
            workload::kExampleNs, 1}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rdfa
