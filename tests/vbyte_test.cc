#include "common/vbyte.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace rdfa {
namespace {

TEST(VbyteTest, SingleByteValuesRoundTrip) {
  for (uint64_t v = 0; v < 128; ++v) {
    std::string buf;
    AppendVbyte(&buf, v);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(VbyteLength(v), 1u);
    VbyteDecoder dec(buf);
    uint64_t out = 0;
    ASSERT_TRUE(dec.Next(&out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(VbyteTest, BoundaryValuesRoundTrip) {
  // Every power-of-two boundary and its neighbors, plus the extremes —
  // these exercise every possible encoded length (1..10 bytes).
  std::vector<uint64_t> values = {0, 1, std::numeric_limits<uint64_t>::max()};
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t v = uint64_t{1} << bit;
    values.push_back(v - 1);
    values.push_back(v);
    values.push_back(v + 1);
  }
  for (uint64_t v : values) {
    std::string buf;
    AppendVbyte(&buf, v);
    EXPECT_EQ(buf.size(), VbyteLength(v)) << v;
    VbyteDecoder dec(buf);
    uint64_t out = 0;
    ASSERT_TRUE(dec.Next(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(dec.pos(), buf.size());
  }
}

TEST(VbyteTest, RandomU64SequencesRoundTripProperty) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 50; ++round) {
    // Mix magnitudes: raw 64-bit draws decode long forms, masked draws
    // exercise the short forms that dominate real posting lists.
    std::vector<uint64_t> values;
    std::string buf;
    for (int i = 0; i < 200; ++i) {
      const int shift = static_cast<int>(rng() % 64);
      const uint64_t v = rng() >> shift;
      values.push_back(v);
      AppendVbyte(&buf, v);
    }
    VbyteDecoder dec(buf);
    for (uint64_t expected : values) {
      uint64_t out = 0;
      ASSERT_TRUE(dec.Next(&out).ok());
      EXPECT_EQ(out, expected);
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(VbyteTest, EveryByteBoundaryTruncationIsATypedError) {
  // Mirrors wal_test's corruption pattern: clip the encoded stream at every
  // possible byte boundary and require a typed ParseError each time a group
  // is cut mid-way — never garbage, never a crash.
  std::mt19937_64 rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  std::vector<size_t> ends;  // byte offsets where a complete value ends
  for (int i = 0; i < 64; ++i) {
    const uint64_t v = rng() >> (rng() % 64);
    values.push_back(v);
    AppendVbyte(&buf, v);
    ends.push_back(buf.size());
  }
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    VbyteDecoder dec(buf.data(), cut);
    size_t decoded = 0;
    Status last = Status::OK();
    for (size_t i = 0; i < values.size(); ++i) {
      uint64_t out = 0;
      last = dec.Next(&out);
      if (!last.ok()) break;
      EXPECT_EQ(out, values[decoded]);
      ++decoded;
    }
    // Every fully contained value must decode; the first clipped group must
    // fail with ParseError specifically.
    size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;
    EXPECT_EQ(decoded, complete) << "cut at " << cut;
    if (decoded < values.size()) {
      EXPECT_EQ(last.code(), StatusCode::kParseError) << "cut at " << cut;
    }
  }
}

TEST(VbyteTest, OverlongTenByteEncodingIsRejected) {
  // 10 continuation-free groups can carry 70 bits; anything where the 10th
  // byte holds more than the single remaining bit is an overlong/overflow
  // form that AppendVbyte never emits.
  std::string buf(9, static_cast<char>(0xFF));
  buf.push_back(0x02);  // bit 64 set: out of range
  VbyteDecoder dec(buf);
  uint64_t out = 0;
  Status st = dec.Next(&out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);

  // The maximal legal form (u64 max) still decodes.
  std::string ok(9, static_cast<char>(0xFF));
  ok.push_back(0x01);
  VbyteDecoder dec2(ok);
  ASSERT_TRUE(dec2.Next(&out).ok());
  EXPECT_EQ(out, std::numeric_limits<uint64_t>::max());
}

TEST(VbyteTest, NeverEndingContinuationIsRejected) {
  // An 11th continuation byte exceeds the u64 form length outright.
  std::string buf(11, static_cast<char>(0x80));
  VbyteDecoder dec(buf);
  uint64_t out = 0;
  Status st = dec.Next(&out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(VbyteTest, DeltaCodecRoundTripsSortedSequences) {
  std::mt19937_64 rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint64_t> sorted;
    uint64_t acc = 0;
    for (int i = 0; i < 500; ++i) {
      acc += rng() % 1000;  // non-decreasing, duplicate gaps of 0 included
      sorted.push_back(acc);
    }
    std::string buf;
    AppendDeltaVbyte(&buf, sorted);
    auto decoded = DecodeDeltaVbyte(buf, sorted.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded.value(), sorted);
  }
}

TEST(VbyteTest, DeltaCodecRejectsShortSpans) {
  std::vector<uint64_t> sorted = {5, 10, 1000, 100000};
  std::string buf;
  AppendDeltaVbyte(&buf, sorted);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto decoded = DecodeDeltaVbyte(std::string_view(buf.data(), cut),
                                    sorted.size());
    ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  }
}

}  // namespace
}  // namespace rdfa
