#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sparql/executor.h"
#include "sparql/parser.h"
#include "rdf/turtle.h"
#include "viz/table_render.h"
#include "workload/invoices.h"

namespace rdfa::sparql {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildInvoicesExample(&g_); }

  ResultTable Run(const std::string& q) {
    auto res = ExecuteQueryString(&g_, q);
    EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nquery: " << q;
    return res.ok() ? res.value() : ResultTable();
  }

  // branch local name -> aggregate value (first agg column).
  std::map<std::string, double> ByBranch(const ResultTable& t) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::LocalName(t.at(r, 0).lexical())] =
          *Value::FromTerm(t.at(r, 1)).AsNumeric();
    }
    return out;
  }

  rdf::Graph g_;
};

constexpr char kPfx[] = "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n";

TEST_F(AggregatesTest, SumGroupByMatchesPaperExample) {
  // §2.5: total quantities per branch: b1=300, b2=600, b3=600.
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i "
                      "inv:takesPlaceAt ?b . ?i inv:inQuantity ?q . } GROUP "
                      "BY ?b");
  auto by_branch = ByBranch(t);
  EXPECT_EQ(by_branch["b1"], 300);
  EXPECT_EQ(by_branch["b2"], 600);
  EXPECT_EQ(by_branch["b3"], 600);
}

TEST_F(AggregatesTest, CountPerGroup) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b (COUNT(?i) AS ?n) WHERE { ?i "
                      "inv:takesPlaceAt ?b . } GROUP BY ?b");
  auto by_branch = ByBranch(t);
  EXPECT_EQ(by_branch["b1"], 2);
  EXPECT_EQ(by_branch["b2"], 2);
  EXPECT_EQ(by_branch["b3"], 3);
}

TEST_F(AggregatesTest, CountStar) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT (COUNT(*) AS ?n) WHERE { ?i a inv:Invoice . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0).lexical(), "7");
}

TEST_F(AggregatesTest, AvgMinMax) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT (AVG(?q) AS ?a) (MIN(?q) AS ?mn) (MAX(?q) AS "
                      "?mx) WHERE { ?i inv:inQuantity ?q . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_NEAR(*Value::FromTerm(t.at(0, 0)).AsNumeric(), 1500.0 / 7, 1e-9);
  EXPECT_EQ(t.at(0, 1).lexical(), "100");
  EXPECT_EQ(t.at(0, 2).lexical(), "400");
}

TEST_F(AggregatesTest, CountDistinct) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT (COUNT(DISTINCT ?b) AS ?n) WHERE { ?i "
                      "inv:takesPlaceAt ?b . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0).lexical(), "3");
}

TEST_F(AggregatesTest, HavingFiltersGroups) {
  // Paper §4.2.3 but with threshold 500: only b2 and b3 qualify.
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i "
                      "inv:takesPlaceAt ?b . ?i inv:inQuantity ?q . } GROUP "
                      "BY ?b HAVING (SUM(?q) > 500)");
  EXPECT_EQ(t.num_rows(), 2u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GT(*Value::FromTerm(t.at(r, 1)).AsNumeric(), 500);
  }
}

TEST_F(AggregatesTest, GroupByDerivedMonth) {
  // §4.2.4 derived attribute: totals per month: Jan=500, Feb=900, Mar=100.
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT (MONTH(?d) AS ?m) (SUM(?q) AS ?tot) WHERE { ?i "
                      "inv:hasDate ?d . ?i inv:inQuantity ?q . } GROUP BY "
                      "MONTH(?d) ORDER BY ?m");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.at(0, 1).lexical(), "500");
  EXPECT_EQ(t.at(1, 1).lexical(), "900");
  EXPECT_EQ(t.at(2, 1).lexical(), "100");
}

TEST_F(AggregatesTest, PairingGroupByTwoAttributes) {
  // §4.2.4 pairing: by branch and product.
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b ?p (SUM(?q) AS ?tot) WHERE { ?i "
                      "inv:takesPlaceAt ?b . ?i inv:delivers ?p . ?i "
                      "inv:inQuantity ?q . } GROUP BY ?b ?p");
  // b1 has p1+p2, b2 has p1+p2, b3 has p1+p2 -> 6 groups.
  EXPECT_EQ(t.num_rows(), 6u);
  double total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    total += *Value::FromTerm(t.at(r, 2)).AsNumeric();
  }
  EXPECT_EQ(total, 1500);
}

TEST_F(AggregatesTest, CompositionGroupByBrand) {
  // §4.2.4 composition brand ∘ delivers.
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?br (SUM(?q) AS ?tot) WHERE { ?i inv:delivers "
                      "?p . ?p inv:brand ?br . ?i inv:inQuantity ?q . } GROUP "
                      "BY ?br ORDER BY ?br");
  ASSERT_EQ(t.num_rows(), 2u);
  // BrandA: p1 quantities 200+200+100+100 = 600; BrandB: 100+400+400 = 900.
  EXPECT_EQ(t.at(0, 1).lexical(), "600");
  EXPECT_EQ(t.at(1, 1).lexical(), "900");
}

TEST_F(AggregatesTest, GroupConcatAndSample) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b (GROUP_CONCAT(?q ; SEPARATOR=\"+\") AS ?qs) "
                      "(SAMPLE(?q) AS ?one) WHERE { ?i inv:takesPlaceAt ?b . "
                      "?i inv:inQuantity ?q . } GROUP BY ?b ORDER BY ?b");
  ASSERT_EQ(t.num_rows(), 3u);
  // b1 concat contains both quantities.
  std::string qs = t.at(0, 1).lexical();
  EXPECT_NE(qs.find("200"), std::string::npos);
  EXPECT_NE(qs.find("100"), std::string::npos);
  EXPECT_FALSE(t.at(0, 2).lexical().empty());
}

TEST_F(AggregatesTest, AggregateOverEmptySolution) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT (COUNT(?x) AS ?n) (SUM(?x) AS ?s) WHERE { ?x a "
                      "inv:Nothing . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0).lexical(), "0");
  EXPECT_EQ(t.at(0, 1).lexical(), "0");
}

TEST_F(AggregatesTest, FullPaperExampleWithFilterAndHaving) {
  // §4.2.5: totals by branch and brand for January, quantity >= 2, groups
  // with total > 250 (adjusted threshold for the small dataset).
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?x2 ?x5 (SUM(?x3) AS ?tot) WHERE {\n"
                      "?x1 inv:takesPlaceAt ?x2 .\n"
                      "?x1 inv:inQuantity ?x3 .\n"
                      "?x1 inv:delivers ?x4 .\n"
                      "?x4 inv:brand ?x5 .\n"
                      "?x1 inv:hasDate ?x6 .\n"
                      "FILTER((MONTH(?x6) = 1) && (?x3 >= 2))\n"
                      "} GROUP BY ?x2 ?x5 HAVING (SUM(?x3) > 250)");
  // January: d1 (b1,p1,200), d2 (b1,p2,100), d3 (b2,p1,200).
  // Groups: (b1,BrandA)=200, (b1,BrandB)=100, (b2,BrandA)=200 — none > 250.
  EXPECT_EQ(t.num_rows(), 0u);
  ResultTable t2 = Run(std::string(kPfx) +
                       "SELECT ?x2 ?x5 (SUM(?x3) AS ?tot) WHERE {\n"
                       "?x1 inv:takesPlaceAt ?x2 .\n"
                       "?x1 inv:inQuantity ?x3 .\n"
                       "?x1 inv:delivers ?x4 .\n"
                       "?x4 inv:brand ?x5 .\n"
                       "?x1 inv:hasDate ?x6 .\n"
                       "FILTER((MONTH(?x6) = 1) && (?x3 >= 2))\n"
                       "} GROUP BY ?x2 ?x5 HAVING (SUM(?x3) > 150)");
  EXPECT_EQ(t2.num_rows(), 2u);
}

TEST_F(AggregatesTest, OrderByAggregateAlias) {
  ResultTable t = Run(std::string(kPfx) +
                      "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i "
                      "inv:takesPlaceAt ?b . ?i inv:inQuantity ?q . } GROUP "
                      "BY ?b ORDER BY DESC(?tot) ?b");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(*Value::FromTerm(t.at(0, 1)).AsNumeric(), 600);
  EXPECT_EQ(*Value::FromTerm(t.at(2, 1)).AsNumeric(), 300);
}

}  // namespace
}  // namespace rdfa::sparql
