// Robustness suite for the HTTP server: randomized malformed requests,
// byte-at-a-time split reads, header-size bombs, and abrupt client
// disconnects — the server must never crash, never leak a connection slot
// (connections_open returns to 0), and always either answer valid HTTP or
// close cleanly. The concurrent hammer (many clients racing a WAL-writer
// thread through the MVCC store) also runs in the `sanitize` suite so a
// TSan build blesses the dispatcher/worker handoff.

#include "server/http_server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "endpoint/endpoint.h"
#include "endpoint/request_handler.h"
#include "rdf/mvcc.h"
#include "rdf/term.h"
#include "server/http_util.h"
#include "sparql/executor.h"
#include "workload/products.h"

namespace rdfa::server {
namespace {

constexpr char kQuery[] =
    "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
    "SELECT ?l ?p WHERE { ?l ex:price ?p . }";

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = std::make_unique<rdf::Graph>();
    workload::BuildRunningExample(base.get());
    rdf::MvccGraph::Options mopts;  // no WAL: in-memory MVCC
    mopts.update_fn = [](rdf::Graph* g, const std::string& text) {
      auto applied = sparql::ExecuteUpdateString(g, text);
      return applied.ok() ? Status::OK() : applied.status();
    };
    auto opened = rdf::MvccGraph::Open(std::move(mopts), std::move(base));
    ASSERT_TRUE(opened.ok());
    mvcc_ = std::move(opened).value();
    endpoint_ = std::make_unique<endpoint::SimulatedEndpoint>(
        mvcc_.get(), endpoint::LatencyProfile::Local(), /*enable_cache=*/true);
    endpoint::AdmissionOptions adm;
    adm.base_timeout_ms = 0;
    adm.max_in_flight = 4;
    adm.max_queue = 64;
    endpoint_->set_admission(adm);
    handler_ = std::make_unique<endpoint::RequestHandler>(
        endpoint_.get(), /*max_timeout_ms=*/10'000);
    HttpServerOptions opts;
    opts.port = 0;
    opts.worker_threads = 3;
    opts.max_header_bytes = 2 * 1024;  // small caps: bombs trip fast
    opts.max_body_bytes = 4 * 1024;
    opts.read_timeout_ms = 100;  // garbage prefixes wait this out per iter
    server_ = std::make_unique<HttpServer>(handler_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  /// Waits (bounded) for the dispatcher to notice closed clients and return
  /// every connection slot. A leaked slot fails the expectation.
  void ExpectAllSlotsReturned() {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (server_->counters().connections_open > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server_->counters().connections_open, 0u);
  }

  /// The liveness probe after abuse: the server still answers correctly.
  void ExpectStillServing() {
    ASSERT_TRUE(server_->running());
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
    HttpClient::Response resp;
    ASSERT_TRUE(c.Get("/sparql?query=" + PercentEncode(kQuery), &resp));
    EXPECT_EQ(resp.status, 200);
  }

  std::unique_ptr<rdf::MvccGraph> mvcc_;
  std::unique_ptr<endpoint::SimulatedEndpoint> endpoint_;
  std::unique_ptr<endpoint::RequestHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerFuzzTest, RandomGarbageNeverCrashesOrLeaksSlots) {
  std::mt19937 rng(20240807);  // deterministic fuzz corpus
  const std::string pieces[] = {
      "GET", "BREW", "\x01\x02\xff", " /sparql", " HTTP/1.1", " HTTP/9.9",
      "\r\n", "\n", "Host: x", "Content-Length: 5", "Content-Length: -1",
      "Content-Length: 99999999999999999999", ":nocolon", " Bad Header:x",
      "Transfer-Encoding: chunked", "query=SELECT", "%", "%2", "%zz",
      "\r\n\r\n", std::string(64, 'A'),
  };
  constexpr size_t kPieceCount = sizeof(pieces) / sizeof(pieces[0]);
  for (int iter = 0; iter < 100; ++iter) {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
    std::string request;
    int n = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < n; ++i) request += pieces[rng() % kPieceCount];
    ASSERT_TRUE(c.SendRaw(request));
    if (rng() % 3 == 0) {
      c.Close();  // abrupt disconnect, maybe mid-request
    } else {
      // The server either answers valid HTTP or closes; both are clean.
      HttpClient::Response resp;
      if (c.ReadResponse(&resp)) {
        EXPECT_GE(resp.status, 200);
        EXPECT_LT(resp.status, 600);
      }
    }
  }
  ExpectStillServing();
  ExpectAllSlotsReturned();
}

TEST_F(ServerFuzzTest, RequestSplitAcrossManySyscallsStillParses) {
  HttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
  std::string request = "GET /sparql?query=" + PercentEncode(kQuery) +
                        " HTTP/1.1\r\nHost: t\r\nAccept: json\r\n\r\n";
  // Feed in 7-byte slivers with pauses: every read returns a fragment,
  // including splits inside the request line, a header name, and a
  // percent escape.
  for (size_t i = 0; i < request.size(); i += 7) {
    ASSERT_TRUE(c.SendRaw(request.substr(i, 7)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  HttpClient::Response resp;
  ASSERT_TRUE(c.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 200);
}

TEST_F(ServerFuzzTest, HeaderBombIs431AndClose) {
  HttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
  std::string bomb = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i) {
    bomb += "X-Filler-" + std::to_string(i) + ": " + std::string(64, 'z') +
            "\r\n";
  }
  ASSERT_TRUE(c.SendRaw(bomb));  // never terminated; cap trips first
  HttpClient::Response resp;
  ASSERT_TRUE(c.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 431);
  EXPECT_FALSE(resp.keep_alive);
  ExpectStillServing();
  ExpectAllSlotsReturned();
}

TEST_F(ServerFuzzTest, StalledPartialRequestIs408) {
  HttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
  ASSERT_TRUE(c.SendRaw("GET /healthz HTT"));  // ...and never finish
  HttpClient::Response resp;
  ASSERT_TRUE(c.ReadResponse(&resp));  // fixture read_timeout is 100 ms
  EXPECT_EQ(resp.status, 408);
  ExpectAllSlotsReturned();
}

TEST_F(ServerFuzzTest, DisconnectBeforeReadingResponseLeaksNothing) {
  for (int i = 0; i < 30; ++i) {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()));
    ASSERT_TRUE(c.SendRaw("GET /sparql?query=" + PercentEncode(kQuery) +
                          " HTTP/1.1\r\nHost: t\r\n\r\n"));
    c.Close();  // gone before the response is written
  }
  ExpectStillServing();
  ExpectAllSlotsReturned();
}

// Concurrent hammer: clients racing valid and malformed traffic against a
// WAL-writer thread committing through the MVCC store. Run under TSan via
// the `sanitize` suite; under the plain build it is a correctness check
// that every answer is valid HTTP and nothing leaks.
TEST_F(ServerFuzzTest, ConcurrentClientsRacingWriterStayCoherent) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 40;
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    rdf::Term s = rdf::Term::Iri("http://www.ics.forth.gr/example#writer");
    rdf::Term p = rdf::Term::Iri("http://www.ics.forth.gr/example#tick");
    int tick = 0;
    while (!stop_writer.load(std::memory_order_acquire)) {
      mvcc_->Insert(s, p, rdf::Term::Integer(tick++));
      auto committed = mvcc_->Commit();
      EXPECT_TRUE(committed.ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> bad_responses{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      HttpClient c;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (!c.connected() && !c.Connect("127.0.0.1", server_->port())) {
          ++bad_responses;
          return;
        }
        int kind = static_cast<int>(rng() % 4);
        HttpClient::Response resp;
        bool got = false;
        if (kind == 0) {  // malformed: parser must answer 4xx/5xx and close
          c.SendRaw("BOGUS \r\n\r\n");
          got = c.ReadResponse(&resp);
          c.Close();
          if (got && resp.status < 400) ++bad_responses;
          continue;
        }
        const char* target =
            kind == 1 ? "/healthz"
                      : (kind == 2 ? "/metrics" : nullptr);
        got = target != nullptr
                  ? c.Get(target, &resp)
                  : c.Get("/sparql?query=" + PercentEncode(kQuery), &resp);
        if (!got) {
          c.Close();  // e.g. server closed after an error; reconnect next
          continue;
        }
        // Valid traffic may shed (503) under the tight admission cap, but
        // must never draw a parse-class error.
        if (resp.status != 200 && resp.status != 503) ++bad_responses;
      }
    });
  }
  for (auto& th : clients) th.join();
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(bad_responses.load(), 0);
  ExpectStillServing();
  ExpectAllSlotsReturned();
  EXPECT_GT(mvcc_->Epoch(), 0u);
}

}  // namespace
}  // namespace rdfa::server
