// End-to-end scenarios spanning the whole stack: workload -> RDFS closure ->
// faceted exploration -> analytics buttons -> HIFUN -> SPARQL -> answer
// frame -> nested exploration -> visualization.

#include <gtest/gtest.h>

#include "analytics/fco.h"
#include "analytics/session.h"
#include "endpoint/endpoint.h"
#include "rdf/rdfs.h"
#include "sparql/value.h"
#include "viz/chart.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;

TEST(IntegrationTest, Fig13HeadlineQueryThroughClicks) {
  // The dissertation's motivating query (Fig 1.3): "average price of laptops
  // made in 2021 from US companies that have 2 USB ports and an SSD drive
  // manufactured in Asia, grouped by manufacturer" — formulated through
  // clicks only.
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::MaterializeRdfsClosure(&g);

  analytics::AnalyticsSession s(&g);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  // "from US companies": manufacturer/origin = USA.
  ASSERT_TRUE(s.fs()
                  .ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                              rdf::Term::Iri(kEx + "USA"))
                  .ok());
  // "2 USB ports" (the paper's FILTER(?u >= 2)).
  ASSERT_TRUE(s.fs().ClickRange({{kEx + "USBPorts"}}, 2, std::nullopt).ok());
  // "release date in 2021".
  // (Expressed as a value-range on the derived year via the releaseDate
  // lexical ordering: 2021-01-01 <= d <= 2021-12-31 is the paper's FILTER;
  // here we restrict through the FS range on the dateTime literal's year
  // by clicking the concrete dates' common year via analytics grouping
  // restriction instead — the running example has only 2021 laptops, so the
  // condition is vacuous but exercises the path.)
  // "SSD drive manufactured in Asia": hardDrive/manufacturer/origin/
  // locatedAt = Asia.
  ASSERT_TRUE(s.fs()
                  .ClickValue({{kEx + "hardDrive"},
                               {kEx + "manufacturer"},
                               {kEx + "origin"},
                               {kEx + "locatedAt"}},
                              rdf::Term::Iri(kEx + "Asia"))
                  .ok());

  analytics::GroupingSpec by_man;
  by_man.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(by_man).ok());
  analytics::MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());

  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  const auto& t = af.value().table();
  // laptop1 (SSD1 by Maxtor/Singapore/Asia, DELL/USA, 2 USB) qualifies;
  // laptop2's SSD2 is by AVDElectronics (USA), laptop3 is Lenovo/China.
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(viz::DisplayTerm(t.at(0, 0)), "DELL");
  EXPECT_NEAR(*sparql::Value::FromTerm(t.at(0, 1)).AsNumeric(), 900, 1e-9);
}

TEST(IntegrationTest, ScaledPipelineWithEndpointAndCharts) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 400;
  opt.companies = 8;
  workload::GenerateProductKg(&g, opt);
  rdf::MaterializeRdfsClosure(&g);

  analytics::AnalyticsSession s(&g);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  analytics::GroupingSpec grp;
  grp.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(grp).ok());
  analytics::MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg, hifun::AggOp::kCount};
  ASSERT_TRUE(s.ClickAggregate(m).ok());

  // Execute through the simulated endpoint.
  auto sparql_text = s.BuildSparql();
  ASSERT_TRUE(sparql_text.ok());
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::OffPeak());
  auto resp = ep.Query(sparql_text.value());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().table.num_rows(), opt.companies);

  // Chart the result.
  auto series = viz::SeriesFromTable(resp.value().table,
                                     resp.value().table.columns()[0],
                                     resp.value().table.columns()[1]);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().size(), opt.companies);
  EXPECT_FALSE(viz::RenderBarChart(series.value()).empty());
}

TEST(IntegrationTest, DegenerateDataRepairedThenAnalyzed) {
  // Missing prices + multi-valued founders: FCO repairs, then analytics.
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 100;
  opt.missing_price_rate = 0.3;
  opt.multi_founder_rate = 0.5;
  workload::GenerateProductKg(&g, opt);

  // price.exists feature lets us count laptops with/without price.
  ASSERT_TRUE(analytics::FcoExists(&g, kEx + "Laptop", kEx + "price",
                                   kEx + "hasPrice")
                  .ok());
  analytics::AnalyticsSession s(&g);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  analytics::GroupingSpec grp;
  grp.path = {kEx + "hasPrice"};
  ASSERT_TRUE(s.ClickGroupBy(grp).ok());
  analytics::MeasureSpec m;
  m.ops = {hifun::AggOp::kCount};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  const auto& t = af.value().table();
  ASSERT_EQ(t.num_rows(), 2u);  // 0-group and 1-group
  double total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    total += *sparql::Value::FromTerm(t.at(r, 1)).AsNumeric();
  }
  EXPECT_EQ(total, 100);
}

TEST(IntegrationTest, NestedAnalyticsOverAnswerFrame) {
  // Run an analytic query, reload the AF, run a *second* analytic query over
  // the reloaded answers (nesting depth 2, §5.3.3).
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 200;
  opt.companies = 10;
  workload::GenerateProductKg(&g, opt);
  rdf::MaterializeRdfsClosure(&g);

  analytics::AnalyticsSession s(&g);
  ASSERT_TRUE(s.fs().ClickClass(kEx + "Laptop").ok());
  analytics::GroupingSpec grp;
  grp.path = {kEx + "manufacturer"};
  ASSERT_TRUE(s.ClickGroupBy(grp).ok());
  analytics::MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {hifun::AggOp::kAvg};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  ASSERT_TRUE(s.Execute().ok());
  size_t n_groups = s.answer().table().num_rows();
  ASSERT_GT(n_groups, 1u);

  rdf::Graph af_graph;
  auto nested = s.ExploreAnswer(&af_graph);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  analytics::AnalyticsSession& ns = *nested.value();
  // Over the AF rows: average of the per-manufacturer averages.
  analytics::MeasureSpec m2;
  m2.path = {analytics::AnswerFrame::ColumnIri("agg1")};
  m2.ops = {hifun::AggOp::kAvg, hifun::AggOp::kMin, hifun::AggOp::kMax};
  ASSERT_TRUE(ns.ClickAggregate(m2).ok());
  auto af2 = ns.Execute();
  ASSERT_TRUE(af2.ok()) << af2.status().ToString();
  ASSERT_EQ(af2.value().table().num_rows(), 1u);
  double avg = *sparql::Value::FromTerm(af2.value().table().at(0, 0)).AsNumeric();
  double mn = *sparql::Value::FromTerm(af2.value().table().at(0, 1)).AsNumeric();
  double mx = *sparql::Value::FromTerm(af2.value().table().at(0, 2)).AsNumeric();
  EXPECT_LE(mn, avg);
  EXPECT_LE(avg, mx);
}

TEST(IntegrationTest, SparqlOnlySessionMatchesNativeOnScaledData) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 150;
  workload::GenerateProductKg(&g, opt);
  rdf::MaterializeRdfsClosure(&g);

  fs::Session native(&g, fs::EvalMode::kNative);
  fs::Session sparql_only(&g, fs::EvalMode::kSparqlOnly);
  for (fs::Session* s : {&native, &sparql_only}) {
    ASSERT_TRUE(s->ClickClass(kEx + "Laptop").ok());
    ASSERT_TRUE(s->ClickRange({{kEx + "price"}}, 500, 2000).ok());
    ASSERT_TRUE(s->ClickRange({{kEx + "USBPorts"}}, 2, 4).ok());
  }
  EXPECT_EQ(native.current().ext, sparql_only.current().ext);
  EXPECT_FALSE(native.current().ext.empty());
}

}  // namespace
}  // namespace rdfa
