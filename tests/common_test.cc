// Tests for the common layer (Status/Result/macros, string utilities) and
// small cross-cutting behaviors: facet ordering, the transform button, and
// SELECT expressions over aggregates.

#include <gtest/gtest.h>

#include "analytics/session.h"
#include "common/status.h"
#include "common/string_util.h"
#include "fs/facets.h"
#include "fs/session.h"
#include "rdf/turtle.h"
#include "sparql/executor.h"
#include "sparql/value.h"
#include "workload/products.h"

namespace rdfa {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status err = Status::ParseError("bad input");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kTypeError, StatusCode::kUnsupported,
        StatusCode::kPrecondition, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RDFA_ASSIGN_OR_RETURN(int h, Half(x));
  RDFA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, ValueAndErrorPaths) {
  EXPECT_TRUE(Half(4).ok());
  EXPECT_EQ(Half(4).value(), 2);
  EXPECT_FALSE(Half(3).ok());
  EXPECT_EQ(Half(3).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // second Half fails
  EXPECT_EQ(Half(3).value_or(-1), -1);
  EXPECT_EQ(Half(4).value_or(-1), 2);
}

TEST(ResultTest, StatusOfOkResultIsOk) {
  Result<std::string> r = std::string("x");
  EXPECT_TRUE(r.status().ok());
}

// ---------------- string utilities ----------------

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(JoinStrings({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(TrimWhitespace("  x \t\n"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groups"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("_path3", "_path"));
  EXPECT_FALSE(StartsWith("_p", "_path"));
  EXPECT_TRUE(EndsWith("file.ttl", ".ttl"));
  EXPECT_FALSE(EndsWith("ttl", ".ttl"));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string nasty = "line1\nline2\t\"q\"\\end\r";
  EXPECT_EQ(UnescapeLiteral(EscapeLiteral(nasty)), nasty);
}

TEST(StringUtilTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(3), "3");
  EXPECT_EQ(FormatNumber(-42), "-42");
  EXPECT_EQ(FormatNumber(2.5), "2.5");
  EXPECT_EQ(FormatNumber(0.125), "0.125");
  EXPECT_EQ(FormatNumber(1e6), "1000000");
}

// ---------------- facet ordering ----------------

TEST(FacetOrderTest, SortAndTruncate) {
  rdf::Graph g;
  fs::PropertyFacet facet;
  auto add = [&](int value, size_t count) {
    facet.values.push_back({g.terms().Intern(rdf::Term::Integer(value)),
                            count});
  };
  add(5, 2);
  add(1, 7);
  add(9, 4);

  fs::SortFacetValues(g, fs::FacetOrder::kCountDescending, &facet);
  EXPECT_EQ(facet.values[0].count, 7u);
  EXPECT_EQ(facet.values[2].count, 2u);

  fs::SortFacetValues(g, fs::FacetOrder::kValueAscending, &facet);
  EXPECT_EQ(g.terms().Get(facet.values[0].value).lexical(), "1");
  EXPECT_EQ(g.terms().Get(facet.values[2].value).lexical(), "9");

  size_t cut = fs::TruncateFacetValues(
      g, fs::FacetOrder::kCountDescending, 2, &facet);
  EXPECT_EQ(cut, 1u);
  ASSERT_EQ(facet.values.size(), 2u);
  EXPECT_EQ(facet.values[0].count, 7u);
  EXPECT_EQ(facet.values[1].count, 4u);
}

// ---------------- transform button ----------------

TEST(TransformButtonTest, RepairsMultiValuedAttribute) {
  rdf::Graph g;
  Status st = rdf::ParseTurtle(R"(
    @prefix ex: <http://e.org/> .
    ex:c1 a ex:Company ; ex:founder ex:p1 , ex:p2 , ex:p3 .
    ex:c2 a ex:Company ; ex:founder ex:p3 .
    ex:p1 ex:nationality ex:US .
    ex:p2 ex:nationality ex:FR .
    ex:p3 ex:nationality ex:FR .
  )",
                               &g);
  ASSERT_TRUE(st.ok()) << st.ToString();

  analytics::AnalyticsSession s(&g);
  ASSERT_TRUE(s.fs().ClickClass("http://e.org/Company").ok());
  auto feature = s.ApplyTransform(
      analytics::AnalyticsSession::TransformKind::kPathMaxFreq,
      {"http://e.org/founder", "http://e.org/nationality"}, "mainNat");
  ASSERT_TRUE(feature.ok()) << feature.status().ToString();

  analytics::GroupingSpec grp;
  grp.path = {feature.value()};
  ASSERT_TRUE(s.ClickGroupBy(grp).ok());
  analytics::MeasureSpec m;
  m.ops = {hifun::AggOp::kCount};
  ASSERT_TRUE(s.ClickAggregate(m).ok());
  auto af = s.Execute();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // Both companies map to FR (c1's max-freq nationality is FR 2:1).
  ASSERT_EQ(af.value().table().num_rows(), 1u);
  EXPECT_EQ(*sparql::Value::FromTerm(af.value().table().at(0, 1)).AsNumeric(),
            2);
}

TEST(TransformButtonTest, ArityValidation) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  analytics::AnalyticsSession s(&g);
  EXPECT_EQ(s.ApplyTransform(
                 analytics::AnalyticsSession::TransformKind::kExists,
                 {"a", "b"}, "f")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ApplyTransform(
                 analytics::AnalyticsSession::TransformKind::kPathMaxFreq,
                 {"a"}, "f")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------- SELECT expressions over aggregates ----------------

TEST(AggregateExpressionTest, ArithmeticOverAggregates) {
  rdf::Graph g;
  ASSERT_TRUE(rdf::ParseTurtle(R"(
    @prefix ex: <http://e.org/> .
    ex:i1 ex:b ex:x ; ex:q 10 .
    ex:i2 ex:b ex:x ; ex:q 30 .
    ex:i3 ex:b ex:y ; ex:q 6 .
  )",
                               &g)
                  .ok());
  auto res = sparql::ExecuteQueryString(
      &g,
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?b (SUM(?q) / COUNT(?q) AS ?mean) WHERE { ?i ex:b ?b . ?i ex:q "
      "?q . } GROUP BY ?b ORDER BY ?b");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().num_rows(), 2u);
  EXPECT_EQ(*sparql::Value::FromTerm(res.value().at(0, 1)).AsNumeric(), 20);
  EXPECT_EQ(*sparql::Value::FromTerm(res.value().at(1, 1)).AsNumeric(), 6);
}

}  // namespace
}  // namespace rdfa
