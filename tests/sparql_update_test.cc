// Tests for the SPARQL 1.1 Update subset: INSERT DATA, DELETE DATA,
// DELETE WHERE, DELETE-INSERT-WHERE.

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace rdfa::sparql {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status st = rdf::ParseTurtle(R"(
      @prefix ex: <http://e.org/> .
      ex:l1 a ex:Laptop ; ex:price 900 ; ex:status ex:InStock .
      ex:l2 a ex:Laptop ; ex:price 1000 ; ex:status ex:InStock .
      ex:l3 a ex:Laptop ; ex:price 400 ; ex:status ex:InStock .
    )",
                                 &g_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  size_t Count(const std::string& ask_pattern) {
    auto res = ExecuteQueryString(
        &g_, "PREFIX ex: <http://e.org/>\nSELECT ?x WHERE { " + ask_pattern +
                 " }");
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? res.value().num_rows() : 0;
  }

  rdf::Graph g_;
};

TEST_F(UpdateTest, InsertData) {
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "INSERT DATA { ex:l4 a ex:Laptop ; ex:price 700 . }");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().inserted, 2u);
  EXPECT_EQ(Count("?x a ex:Laptop ."), 4u);
  // Re-inserting is a no-op (set semantics).
  auto again = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\nINSERT DATA { ex:l4 a ex:Laptop . }");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().inserted, 0u);
}

TEST_F(UpdateTest, DeleteData) {
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "DELETE DATA { ex:l1 ex:status ex:InStock . }");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().deleted, 1u);
  EXPECT_EQ(Count("?x ex:status ex:InStock ."), 2u);
  // Deleting an absent triple deletes nothing.
  auto again = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "DELETE DATA { ex:l1 ex:status ex:InStock . }");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().deleted, 0u);
}

TEST_F(UpdateTest, GroundTemplatesRequired) {
  EXPECT_EQ(ExecuteUpdateString(
                &g_, "INSERT DATA { ?x <http://e.org/p> <http://e.org/o> . }")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, DeleteWhere) {
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "DELETE WHERE { ?x ex:status ex:InStock . }");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().deleted, 3u);
  EXPECT_EQ(Count("?x ex:status ex:InStock ."), 0u);
  // The other triples survive.
  EXPECT_EQ(Count("?x a ex:Laptop ."), 3u);
}

TEST_F(UpdateTest, DeleteInsertWhereRewritesValues) {
  // Mark cheap laptops as discounted: delete the old status, insert a new
  // one, driven by a FILTER.
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "DELETE { ?x ex:status ex:InStock . }\n"
      "INSERT { ?x ex:status ex:Discounted . ?x ex:tag \"cheap\" . }\n"
      "WHERE { ?x ex:price ?p . FILTER(?p < 500) }");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().deleted, 1u);   // only l3
  EXPECT_EQ(stats.value().inserted, 2u);  // status + tag
  EXPECT_EQ(Count("?x ex:status ex:Discounted ."), 1u);
  EXPECT_EQ(Count("?x ex:status ex:InStock ."), 2u);
  EXPECT_EQ(Count("?x ex:tag \"cheap\" ."), 1u);
}

TEST_F(UpdateTest, InsertWhereDerivesTriples) {
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "INSERT { ?x ex:priceBand ex:High . }\n"
      "WHERE { ?x ex:price ?p . FILTER(?p >= 900) }");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().inserted, 2u);
  EXPECT_EQ(Count("?x ex:priceBand ex:High ."), 2u);
}

TEST_F(UpdateTest, WhereSeesPreUpdateGraph) {
  // A modify whose insert would match its own where: bindings come from the
  // pre-update graph, so exactly the original 3 get the tag.
  auto stats = ExecuteUpdateString(
      &g_,
      "PREFIX ex: <http://e.org/>\n"
      "INSERT { ?x ex:seen true . }\n"
      "WHERE { ?x a ex:Laptop . }");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().inserted, 3u);
}

TEST_F(UpdateTest, ParseErrors) {
  EXPECT_FALSE(ParseUpdate("FROB { }").ok());
  EXPECT_FALSE(ParseUpdate("DELETE { <urn:a> <urn:b> <urn:c> . }").ok());
  EXPECT_FALSE(
      ParseUpdate("INSERT DATA { <urn:a> <urn:b> <urn:c> . } extra").ok());
  EXPECT_FALSE(
      ParseUpdate("DELETE WHERE { FILTER(?x > 1) }").ok());  // triples only
}

TEST_F(UpdateTest, DescribeNamedResource) {
  auto q = ParseQuery("DESCRIBE <http://e.org/l1>");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().form, ParsedQuery::Form::kDescribe);
  Executor exec(&g_);
  rdf::Graph out;
  auto added = exec.Describe(q.value().describe, &out);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 3u);  // type + price + status
}

TEST_F(UpdateTest, DescribeVariableWithWhere) {
  auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "DESCRIBE ?x WHERE { ?x ex:price ?p . FILTER(?p >= 900) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Executor exec(&g_);
  rdf::Graph out;
  auto added = exec.Describe(q.value().describe, &out);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // l1 and l2, 3 triples each.
  EXPECT_EQ(added.value(), 6u);
}

TEST_F(UpdateTest, DescribeParseErrors) {
  EXPECT_FALSE(ParseQuery("DESCRIBE").ok());
  EXPECT_FALSE(ParseQuery("DESCRIBE ?x").ok());  // var needs WHERE
  EXPECT_FALSE(ParseQuery("DESCRIBE \"literal\"").ok());
}

TEST_F(UpdateTest, SelectParserRejectsUpdates) {
  EXPECT_FALSE(ParseQuery("INSERT DATA { <urn:a> <urn:b> <urn:c> . }").ok());
}

}  // namespace
}  // namespace rdfa::sparql
