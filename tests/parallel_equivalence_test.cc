// Parallel execution is a pure performance knob: for every query the
// morsel-parallel path must produce results byte-identical to the serial
// path (DESIGN.md, threading model). This suite locks that contract in
// across the SPARQL executor, the HIFUN evaluator, OLAP materialization
// and the roll-up cache. The corpora are sized so the parallel paths
// actually trigger (>= 128 seed rows / items).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/olap.h"
#include "analytics/rollup_cache.h"
#include "analytics/session.h"
#include "hifun/evaluator.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;
const std::string kInv = workload::kInvoiceNs;

class SparqlParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ProductKgOptions opt;
    opt.laptops = 600;
    workload::GenerateProductKg(&g_, opt);
  }

  std::string RunTsv(const std::string& q, int threads) {
    auto parsed = sparql::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << q;
    if (!parsed.ok()) return "";
    sparql::Executor exec(&g_);
    exec.set_thread_count(threads);
    auto res = exec.Execute(parsed.value());
    EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nquery: " << q;
    last_stats_ = exec.stats();
    return res.ok() ? res.value().ToTsv() : std::string();
  }

  void ExpectEquivalent(const std::string& q) {
    std::string serial = RunTsv(q, 1);
    std::string parallel = RunTsv(q, 4);
    EXPECT_EQ(serial, parallel) << "parallel result diverges for: " << q;
  }

  rdf::Graph g_;
  sparql::ExecStats last_stats_;
};

constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

TEST_F(SparqlParallelEquivalenceTest, BgpJoinCorpus) {
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?x ?p WHERE { ?x ex:manufacturer ?m . "
                   "?x ex:price ?p . }");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?x ?c WHERE { ?x ex:manufacturer ?m . "
                   "?m ex:origin ?c . }");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p > 900) }");
}

TEST_F(SparqlParallelEquivalenceTest, AggregatesDistinctOrderBy) {
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?m (SUM(?p) AS ?s) (COUNT(?x) AS ?n) "
                   "WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . } "
                   "GROUP BY ?m");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?m (AVG(?p) AS ?a) (MIN(?p) AS ?lo) "
                   "(MAX(?p) AS ?hi) "
                   "WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . } "
                   "GROUP BY ?m");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT DISTINCT ?m WHERE { ?x ex:manufacturer ?m . }");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?x ?p WHERE { ?x ex:price ?p . } ORDER BY ?p ?x");
}

TEST_F(SparqlParallelEquivalenceTest, HavingAndExpressionProjection) {
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?m (COUNT(?x) AS ?n) "
                   "WHERE { ?x ex:manufacturer ?m . } "
                   "GROUP BY ?m HAVING (COUNT(?x) > 10)");
  ExpectEquivalent(std::string(kPfx) +
                   "SELECT ?x (SUBSTR(STR(?x), 30) AS ?tail) "
                   "WHERE { ?x ex:price ?p . FILTER(REGEX(STR(?x), "
                   "\"laptop[0-9]*[02468]$\")) }");
}

TEST_F(SparqlParallelEquivalenceTest, StatsReportParallelExecution) {
  std::string q = std::string(kPfx) +
                  "SELECT ?x ?p WHERE { ?x ex:manufacturer ?m . "
                  "?x ex:price ?p . }";
  (void)RunTsv(q, 4);
  EXPECT_EQ(last_stats_.threads, 4);
  EXPECT_EQ(last_stats_.bgp_patterns, 2u);
  ASSERT_EQ(last_stats_.rows_scanned.size(), 2u);
  EXPECT_GT(last_stats_.rows_scanned[0], 0u);
  EXPECT_GT(last_stats_.morsel_count, 0u);
  EXPECT_EQ(last_stats_.join_order.size(), 2u);
  EXPECT_GE(last_stats_.total_ms, 0.0);
}

TEST_F(SparqlParallelEquivalenceTest, HifunEvaluatorMatchesSerial) {
  hifun::Query q;
  q.root_class = kEx + "Laptop";
  q.grouping = hifun::AttrExpr::Property(kEx + "manufacturer");
  q.measuring = hifun::AttrExpr::Property(kEx + "price");
  q.ops = {hifun::AggOp::kSum, hifun::AggOp::kCount, hifun::AggOp::kAvg};
  auto serial = hifun::Evaluator(g_, 1).Evaluate(q);
  auto parallel = hifun::Evaluator(g_, 4).Evaluate(q);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial.value().ToTsv(), parallel.value().ToTsv());
}

TEST_F(SparqlParallelEquivalenceTest, HifunRestrictionErrorsMatchSerial) {
  // Error propagation must also be deterministic: the parallel evaluator
  // reports the same (earliest) error the serial scan would hit.
  hifun::Query q;
  q.root_class = kEx + "Laptop";
  q.grouping = hifun::AttrExpr::Property(kEx + "manufacturer");
  q.measuring = hifun::AttrExpr::Property(kEx + "noSuchProperty");
  q.ops = {hifun::AggOp::kSum};
  auto serial = hifun::Evaluator(g_, 1).Evaluate(q);
  auto parallel = hifun::Evaluator(g_, 4).Evaluate(q);
  EXPECT_EQ(serial.ok(), parallel.ok());
  if (!serial.ok() && !parallel.ok()) {
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
  }
}

TEST(OlapParallelEquivalenceTest, MaterializedCubeMatchesSerial) {
  rdf::Graph g;
  workload::InvoicesOptions opt;
  opt.invoices = 3000;
  opt.branches = 10;
  opt.products = 50;
  opt.brands = 8;
  workload::GenerateInvoices(&g, opt);

  auto build_cube = [&](analytics::AnalyticsSession* session) {
    analytics::Dimension time;
    time.name = "time";
    time.levels = {
        {"date", {kInv + "hasDate"}, ""},
        {"month", {kInv + "hasDate"}, "MONTH"},
    };
    analytics::Dimension product;
    product.name = "product";
    product.levels = {
        {"product", {kInv + "delivers"}, ""},
        {"brand", {kInv + "delivers", kInv + "brand"}, ""},
    };
    analytics::MeasureSpec measure;
    measure.path = {kInv + "inQuantity"};
    measure.ops = {hifun::AggOp::kSum};
    return analytics::OlapView(session, {time, product}, measure);
  };

  analytics::AnalyticsSession serial_s(&g);
  analytics::AnalyticsSession parallel_s(&g);
  ASSERT_TRUE(serial_s.fs().ClickClass(kInv + "Invoice").ok());
  ASSERT_TRUE(parallel_s.fs().ClickClass(kInv + "Invoice").ok());
  analytics::OlapView serial_cube = build_cube(&serial_s);
  analytics::OlapView parallel_cube = build_cube(&parallel_s);
  parallel_cube.set_thread_count(4);

  for (int step = 0; step < 3; ++step) {
    auto a = serial_cube.Materialize();
    auto b = parallel_cube.Materialize();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().table().ToTsv(), b.value().table().ToTsv())
        << "cube diverges at step " << step;
    (void)serial_cube.RollUp("time");
    (void)parallel_cube.RollUp("time");
  }
  EXPECT_EQ(parallel_cube.last_exec_stats().threads, 4);
}

TEST(RollupParallelEquivalenceTest, PartialTableMergeMatchesSerial) {
  // Integer-valued measures merge exactly, so the parallel roll-up must be
  // byte-identical to the serial left fold.
  sparql::ResultTable table({"brand", "product", "qty"});
  for (int r = 0; r < 500; ++r) {
    table.AddRow({rdf::Term::Iri(kInv + "brand" + std::to_string(r % 7)),
                  rdf::Term::Iri(kInv + "prod" + std::to_string(r % 40)),
                  rdf::Term::Integer((r * 13) % 97)});
  }
  analytics::AnswerFrame answer(std::move(table));
  for (hifun::AggOp op : {hifun::AggOp::kSum, hifun::AggOp::kMin,
                          hifun::AggOp::kMax, hifun::AggOp::kCount}) {
    auto serial = analytics::RollUpAnswer(answer, {"brand"}, "qty", op, 1);
    auto parallel = analytics::RollUpAnswer(answer, {"brand"}, "qty", op, 4);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial.value().table().ToTsv(), parallel.value().table().ToTsv())
        << "op " << static_cast<int>(op);
  }
}

TEST(RollupParallelEquivalenceTest, AverageRollupMatchesSerial) {
  sparql::ResultTable table({"brand", "product", "sum", "count"});
  for (int r = 0; r < 400; ++r) {
    table.AddRow({rdf::Term::Iri(kInv + "brand" + std::to_string(r % 5)),
                  rdf::Term::Iri(kInv + "prod" + std::to_string(r % 20)),
                  rdf::Term::Integer((r * 7) % 53),
                  rdf::Term::Integer(1 + r % 3)});
  }
  analytics::AnswerFrame answer(std::move(table));
  auto serial =
      analytics::RollUpAverage(answer, {"brand"}, "sum", "count", 1);
  auto parallel =
      analytics::RollUpAverage(answer, {"brand"}, "sum", "count", 4);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial.value().table().ToTsv(), parallel.value().table().ToTsv());
}

}  // namespace
}  // namespace rdfa
