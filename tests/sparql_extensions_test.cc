// Tests for the SPARQL 1.1 extensions: EXISTS / NOT EXISTS, MINUS, IN /
// NOT IN, transitive property paths (+ / *), and the extra built-ins.

#include <gtest/gtest.h>

#include <set>

#include "rdf/rdfs.h"
#include "rdf/turtle.h"
#include "sparql/executor.h"
#include "viz/table_render.h"

namespace rdfa::sparql {
namespace {

class SparqlExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status st = rdf::ParseTurtle(R"(
      @prefix ex: <http://e.org/> .
      ex:l1 a ex:Laptop ; ex:man ex:DELL ; ex:price 900 ; ex:ssd true .
      ex:l2 a ex:Laptop ; ex:man ex:DELL ; ex:price 1000 .
      ex:l3 a ex:Laptop ; ex:man ex:Lenovo ; ex:price 820 ; ex:ssd true .
      ex:A rdfs:subClassOf ex:B .
      ex:B rdfs:subClassOf ex:C .
      ex:C rdfs:subClassOf ex:D .
    )",
                                 &g_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::multiset<std::string> Col0(const std::string& q) {
    auto res = ExecuteQueryString(&g_, q);
    EXPECT_TRUE(res.ok()) << res.status().ToString() << "\n" << q;
    std::multiset<std::string> out;
    if (!res.ok()) return out;
    for (size_t r = 0; r < res.value().num_rows(); ++r) {
      out.insert(viz::DisplayTerm(res.value().at(r, 0)));
    }
    return out;
  }

  rdf::Graph g_;
};

TEST_F(SparqlExtensionsTest, FilterExists) {
  auto names = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . FILTER EXISTS { ?x ex:ssd true . } "
      "}");
  EXPECT_EQ(names, (std::multiset<std::string>{"l1", "l3"}));
}

TEST_F(SparqlExtensionsTest, FilterNotExists) {
  auto names = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . FILTER NOT EXISTS { ?x ex:ssd true "
      ". } }");
  EXPECT_EQ(names, (std::multiset<std::string>{"l2"}));
}

TEST_F(SparqlExtensionsTest, ExistsInsideBooleanExpression) {
  auto names = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . FILTER(EXISTS { ?x ex:ssd true . } "
      "&& ?p > 850) }");
  EXPECT_EQ(names, (std::multiset<std::string>{"l1"}));
}

TEST_F(SparqlExtensionsTest, Minus) {
  auto names = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . MINUS { ?x ex:man ex:DELL . } }");
  EXPECT_EQ(names, (std::multiset<std::string>{"l3"}));
}

TEST_F(SparqlExtensionsTest, InAndNotIn) {
  auto in = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p IN (900, 820)) }");
  EXPECT_EQ(in, (std::multiset<std::string>{"l1", "l3"}));
  auto not_in = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p NOT IN (900, 820)) }");
  EXPECT_EQ(not_in, (std::multiset<std::string>{"l2"}));
}

TEST_F(SparqlExtensionsTest, TransitivePathPlus) {
  auto supers = Col0(
      "SELECT ?c WHERE { <http://e.org/A> "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf>+ ?c . }");
  EXPECT_EQ(supers, (std::multiset<std::string>{"B", "C", "D"}));
}

TEST_F(SparqlExtensionsTest, TransitivePathStarIncludesSelf) {
  auto supers = Col0(
      "SELECT ?c WHERE { <http://e.org/A> "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf>* ?c . }");
  EXPECT_EQ(supers, (std::multiset<std::string>{"A", "B", "C", "D"}));
}

TEST_F(SparqlExtensionsTest, TransitivePathBackward) {
  auto subs = Col0(
      "SELECT ?c WHERE { ?c "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf>+ <http://e.org/D> . "
      "}");
  EXPECT_EQ(subs, (std::multiset<std::string>{"A", "B", "C"}));
}

TEST_F(SparqlExtensionsTest, TransitivePathBothBoundChecks) {
  auto res = ExecuteQueryString(
      &g_,
      "ASK { <http://e.org/A> "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf>+ <http://e.org/D> . "
      "}");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().at(0, 0).lexical(), "true");
}

TEST_F(SparqlExtensionsTest, TransitivePathCycleTerminates) {
  g_.Add(rdf::Term::Iri("http://e.org/D"),
         rdf::Term::Iri("http://www.w3.org/2000/01/rdf-schema#subClassOf"),
         rdf::Term::Iri("http://e.org/A"));
  auto supers = Col0(
      "SELECT ?c WHERE { <http://e.org/A> "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf>+ ?c . }");
  // Cycle: A reaches everything including itself.
  EXPECT_EQ(supers, (std::multiset<std::string>{"A", "B", "C", "D"}));
}

TEST_F(SparqlExtensionsTest, SubstrStrBeforeAfter) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (SUBSTR(\"hello world\", 7) AS ?a) "
      "(SUBSTR(\"hello\", 1, 2) AS ?b) "
      "(STRBEFORE(\"a-b\", \"-\") AS ?c) (STRAFTER(\"a-b\", \"-\") AS ?d) "
      "WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "world");
  EXPECT_EQ(res.value().at(0, 1).lexical(), "he");
  EXPECT_EQ(res.value().at(0, 2).lexical(), "a");
  EXPECT_EQ(res.value().at(0, 3).lexical(), "b");
}

TEST_F(SparqlExtensionsTest, ReplaceAndLangMatches) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (REPLACE(\"aaa\", \"a\", \"b\") AS ?r) "
      "(LANGMATCHES(\"en-US\", \"en\") AS ?l) "
      "(LANGMATCHES(\"fr\", \"en\") AS ?n) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "bbb");
  EXPECT_EQ(res.value().at(0, 1).lexical(), "true");
  EXPECT_EQ(res.value().at(0, 2).lexical(), "false");
}

TEST_F(SparqlExtensionsTest, IriConstructor) {
  auto res = ExecuteQueryString(
      &g_, "SELECT (IRI(CONCAT(\"http://e.org/\", \"x\")) AS ?i) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().at(0, 0).is_iri());
  EXPECT_EQ(res.value().at(0, 0).lexical(), "http://e.org/x");
}

TEST_F(SparqlExtensionsTest, MinusVersusNotExistsAgree) {
  // For correlated patterns the two forms coincide in this engine.
  auto a = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . MINUS { ?x ex:ssd true . } }");
  auto b = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . FILTER NOT EXISTS { ?x ex:ssd true "
      ". } }");
  EXPECT_EQ(a, b);
}

TEST_F(SparqlExtensionsTest, SubclassReachabilityQueryUsesStar) {
  // The FS-model use case: all classes an instance belongs to, without
  // materializing the closure.
  g_.Add(rdf::Term::Iri("http://e.org/i1"),
         rdf::Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
         rdf::Term::Iri("http://e.org/A"));
  auto classes = Col0(
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
      "SELECT ?c WHERE { <http://e.org/i1> a ?d . ?d rdfs:subClassOf* ?c . }");
  EXPECT_EQ(classes, (std::multiset<std::string>{"A", "B", "C", "D"}));
}

TEST_F(SparqlExtensionsTest, SubstrHugeStartIsEmptyNotUb) {
  // A double far outside size_t range was previously cast directly (UB);
  // the argument must be clamped before the cast.
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (SUBSTR(\"hello\", 999999999999999999999999999) AS ?a) "
      "WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "");
}

TEST_F(SparqlExtensionsTest, SubstrNegativeStartClampsToWholeString) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (SUBSTR(\"hello\", 0 - 999999999999999999999999999) AS ?a) "
      "(SUBSTR(\"hello\", 0 - 3) AS ?b) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "hello");
  EXPECT_EQ(res.value().at(0, 1).lexical(), "hello");
}

TEST_F(SparqlExtensionsTest, SubstrFractionalStartTruncates) {
  auto res = ExecuteQueryString(
      &g_, "SELECT (SUBSTR(\"hello\", 2.7) AS ?a) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "ello");
}

TEST_F(SparqlExtensionsTest, SubstrHugeAndNegativeLength) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (SUBSTR(\"hello\", 2, 999999999999999999999999999) AS ?a) "
      "(SUBSTR(\"hello\", 2, 0 - 1) AS ?b) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "ello");
  // Negative length is an error, not a crash: unbound cell.
  EXPECT_TRUE(ResultTable::IsUnbound(res.value().at(0, 1)));
}

TEST_F(SparqlExtensionsTest, SubstrStartPastEndIsEmpty) {
  auto res = ExecuteQueryString(
      &g_, "SELECT (SUBSTR(\"hello\", 6) AS ?a) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "");
}

TEST_F(SparqlExtensionsTest, RegexFlagsHonored) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (REGEX(\"Hello\", \"hel\", \"i\") AS ?i) "
      "(REGEX(\"a.c\", \"a.c\", \"q\") AS ?q1) "
      "(REGEX(\"abc\", \"a.c\", \"q\") AS ?q2) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "true");
  EXPECT_EQ(res.value().at(0, 1).lexical(), "true");
  // Under `q` the dot is a literal character, not a wildcard.
  EXPECT_EQ(res.value().at(0, 2).lexical(), "false");
}

TEST_F(SparqlExtensionsTest, RegexUnsupportedFlagIsErrorNotIgnored) {
  // `s` (dot-all) has no std::regex equivalent; silently dropping it would
  // change the match semantics, so the call errors (unbound).
  auto res = ExecuteQueryString(
      &g_, "SELECT (REGEX(\"abc\", \"a.c\", \"s\") AS ?a) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(ResultTable::IsUnbound(res.value().at(0, 0)));
}

TEST_F(SparqlExtensionsTest, ReplaceHonorsFlagsArgument) {
  auto res = ExecuteQueryString(
      &g_,
      "SELECT (REPLACE(\"aAa\", \"a\", \"x\", \"i\") AS ?r) "
      "(REPLACE(\"abc\", \"b\", \"x\", \"s\") AS ?bad) WHERE { }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "xxx");
  EXPECT_TRUE(ResultTable::IsUnbound(res.value().at(0, 1)));
}

TEST_F(SparqlExtensionsTest, RegexCacheSurvivesManyRows) {
  // One pattern evaluated across every row: the per-thread cache must serve
  // repeats (and an invalid pattern must stay an error on every row).
  auto names = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . FILTER(REGEX(STR(?x), \"l[13]$\")) "
      "}");
  EXPECT_EQ(names, (std::multiset<std::string>{"l1", "l3"}));
  auto none = Col0(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . FILTER(REGEX(STR(?x), \"l[\")) }");
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace rdfa::sparql
