// Coverage for the PR-3 query-path additions: per-predicate GraphStats,
// longest-bound-prefix index selection, the adaptive order-preserving hash
// join (byte-identity with serial NLJ across seeds, thread counts, reorder
// settings and forced strategies), a deterministic deadline trip inside the
// hash-build loop, and the versioned binary snapshot stats block.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/query_context.h"
#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "sparql/bgp.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/products.h"

namespace rdfa {
namespace {

using rdf::Graph;
using rdf::GraphStats;
using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

const std::string kEx = workload::kExampleNs;
constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

Term Iri(const std::string& local) { return Term::Iri("urn:" + local); }

TEST(GraphStatsTest, PerPredicateCountsAndFanout) {
  Graph g;
  // p1: s1 -> {o1, o2}, s2 -> {o1}; p2: s1 -> o3.
  g.Add(Iri("s1"), Iri("p1"), Iri("o1"));
  g.Add(Iri("s1"), Iri("p1"), Iri("o2"));
  g.Add(Iri("s2"), Iri("p1"), Iri("o1"));
  g.Add(Iri("s1"), Iri("p2"), Iri("o3"));

  const GraphStats& stats = g.Stats();
  EXPECT_EQ(stats.triples, 4u);
  EXPECT_EQ(stats.distinct_subjects, 2u);
  EXPECT_EQ(stats.distinct_predicates, 2u);
  EXPECT_EQ(stats.distinct_objects, 3u);

  TermId p1 = g.terms().Find(Iri("p1"));
  ASSERT_NE(p1, kNoTermId);
  const rdf::PredicateStats* ps = stats.ForPredicate(p1);
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->triples, 3u);
  EXPECT_EQ(ps->distinct_subjects, 2u);
  EXPECT_EQ(ps->distinct_objects, 2u);
  EXPECT_DOUBLE_EQ(ps->avg_fanout_so(), 1.5);
  EXPECT_DOUBLE_EQ(ps->avg_fanout_os(), 1.5);

  EXPECT_EQ(stats.ForPredicate(kNoTermId), nullptr);
}

TEST(GraphStatsTest, MutationInvalidatesAndRecomputes) {
  Graph g;
  g.Add(Iri("s"), Iri("p"), Iri("o"));
  EXPECT_EQ(g.Stats().triples, 1u);
  g.Add(Iri("s"), Iri("p"), Iri("o2"));
  EXPECT_EQ(g.Stats().triples, 2u);
  g.RemoveMatching(kNoTermId, kNoTermId, g.terms().Find(Iri("o2")));
  EXPECT_EQ(g.Stats().triples, 1u);
}

TEST(GraphStatsTest, RestoreStatsSurvivesIndexRebuildUntilMutation) {
  Graph g;
  g.Add(Iri("s"), Iri("p"), Iri("o"));
  GraphStats fake;
  fake.triples = 999;
  g.RestoreStats(fake);
  // The lazy index rebuild must keep the restored stats...
  g.Freeze();
  EXPECT_EQ(g.Stats().triples, 999u);
  // ...but a mutation invalidates them like any other derived state.
  g.Add(Iri("s2"), Iri("p"), Iri("o"));
  EXPECT_EQ(g.Stats().triples, 2u);
}

TEST(GraphIndexSelectionTest, ChoosePermUsesLongestBoundPrefix) {
  EXPECT_EQ(Graph::ChoosePerm(true, false, false), Graph::kPermSPO);
  EXPECT_EQ(Graph::ChoosePerm(false, true, false), Graph::kPermPOS);
  EXPECT_EQ(Graph::ChoosePerm(false, false, true), Graph::kPermOSP);
  EXPECT_EQ(Graph::ChoosePerm(true, true, false), Graph::kPermSPO);
  EXPECT_EQ(Graph::ChoosePerm(false, true, true), Graph::kPermPOS);
  // The fixed case: s+o bound must take OSP's (o, s) two-lane prefix, not
  // SPO narrowed on s alone.
  EXPECT_EQ(Graph::ChoosePerm(true, false, true), Graph::kPermOSP);
  EXPECT_EQ(Graph::ChoosePerm(true, true, true), Graph::kPermSPO);
}

TEST(GraphIndexSelectionTest, EstimateMatchIsExactForSubjectObjectPatterns) {
  Graph g;
  // s1 has many p-neighbours but only one triple reaching o1.
  for (int i = 0; i < 20; ++i) {
    g.Add(Iri("s1"), Iri("p" + std::to_string(i)), Iri("x" + std::to_string(i)));
  }
  g.Add(Iri("s1"), Iri("link"), Iri("o1"));
  TermId s1 = g.terms().Find(Iri("s1"));
  TermId o1 = g.terms().Find(Iri("o1"));
  ASSERT_NE(s1, kNoTermId);
  ASSERT_NE(o1, kNoTermId);
  // With first-bound-lane selection this was 21 (the whole s1 range); the
  // longest-bound-prefix fix narrows on (o1, s1) and is exact.
  EXPECT_EQ(g.EstimateMatch(s1, kNoTermId, o1), 1u);
  EXPECT_EQ(g.CountMatch(s1, kNoTermId, o1), 1u);
}

// ---- binary snapshot versioning ------------------------------------------

// Byte length of the v2 stats block for `stats`.
size_t StatsBlockSize(const GraphStats& stats) {
  return 5 * 8 + stats.by_predicate.size() * (4 + 3 * 8);
}

TEST(BinaryIoStatsTest, V2RoundTripRestoresStatsWithoutRecompute) {
  Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 50;
  workload::GenerateProductKg(&g, opt);
  const GraphStats original = g.Stats();

  std::string blob = rdf::SaveBinary(g, rdf::kSnapshotVersionV2);
  ASSERT_EQ(blob.compare(0, 6, "RDFA2\n"), 0);

  // Perturb the saved global triple count: if the loader *recomputed* the
  // stats the perturbation would vanish, so observing it proves the
  // restore path.
  const size_t stats_off = blob.size() - StatsBlockSize(original);
  blob[stats_off] = static_cast<char>(0x39);
  blob[stats_off + 1] = static_cast<char>(0x30);  // triples = 0x3039 = 12345
  for (int i = 2; i < 8; ++i) blob[stats_off + i] = 0;

  Graph loaded;
  ASSERT_TRUE(rdf::LoadBinary(blob, &loaded).ok());
  EXPECT_EQ(loaded.size(), g.size());
  EXPECT_EQ(loaded.Stats().triples, 12345u);
  // Everything left untouched round-trips exactly.
  EXPECT_EQ(loaded.Stats().distinct_predicates, original.distinct_predicates);
  EXPECT_EQ(loaded.Stats().by_predicate.size(),
            original.by_predicate.size());
}

TEST(BinaryIoStatsTest, V1SnapshotStillLoadsAndRecomputes) {
  Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 50;
  workload::GenerateProductKg(&g, opt);
  const GraphStats original = g.Stats();

  // A v1 snapshot is the v2 payload minus the stats block, under the old
  // magic — exactly what a pre-stats build wrote.
  std::string blob = rdf::SaveBinary(g, rdf::kSnapshotVersionV2);
  blob.resize(blob.size() - StatsBlockSize(original));
  std::memcpy(blob.data(), "RDFA1\n", 6);

  Graph loaded;
  ASSERT_TRUE(rdf::LoadBinary(blob, &loaded).ok());
  EXPECT_EQ(loaded.size(), g.size());
  // Stats come back via recomputation and must match the originals.
  EXPECT_EQ(loaded.Stats().triples, original.triples);
  EXPECT_EQ(loaded.Stats().distinct_subjects, original.distinct_subjects);
  EXPECT_EQ(loaded.Stats().by_predicate.size(),
            original.by_predicate.size());
}

TEST(BinaryIoStatsTest, TruncatedStatsBlockIsAParseError) {
  Graph g;
  g.Add(Iri("s"), Iri("p"), Iri("o"));
  std::string blob = rdf::SaveBinary(g);
  Graph dst;
  EXPECT_EQ(rdf::LoadBinary(std::string_view(blob).substr(0, blob.size() - 4),
                            &dst)
                .code(),
            StatusCode::kParseError);
}

// ---- join-strategy equivalence -------------------------------------------

class JoinStrategyTest : public ::testing::Test {
 protected:
  static std::string RunTsv(rdf::Graph* g, const std::string& q, int threads,
                            bool reorder, sparql::JoinStrategy strategy,
                            sparql::ExecStats* stats = nullptr) {
    auto parsed = sparql::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << q;
    if (!parsed.ok()) return "";
    sparql::Executor exec(g, reorder);
    exec.set_thread_count(threads);
    exec.set_join_strategy(strategy);
    auto res = exec.Execute(parsed.value());
    EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nquery: " << q;
    if (stats != nullptr) *stats = exec.stats();
    return res.ok() ? res.value().ToTsv() : std::string();
  }
};

TEST_F(JoinStrategyTest, HashIsByteIdenticalAcrossSeedsThreadsAndReorder) {
  const char* kQueries[] = {
      "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }",
      "SELECT ?l ?m ?c ?g WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
      "?c ex:GDPPerCapita ?g . }",
      "SELECT ?l ?p ?c WHERE { ?l ex:manufacturer ?m . ?l ex:price ?p . "
      "?m ex:origin ?c . }",
      "SELECT ?l ?f WHERE { ?l ex:manufacturer ?m . ?m ex:founder ?f . }",
  };
  for (unsigned seed : {7u, 19u, 42u}) {
    rdf::Graph g;
    workload::ProductKgOptions opt;
    opt.laptops = 300;
    opt.seed = seed;
    workload::GenerateProductKg(&g, opt);
    for (const char* body : kQueries) {
      const std::string q = std::string(kPfx) + body;
      for (bool reorder : {false, true}) {
        // Reference: the serial nested-loop join under this pattern order.
        const std::string reference =
            RunTsv(&g, q, 1, reorder, sparql::JoinStrategy::kNestedLoop);
        for (int threads : {1, 4}) {
          for (sparql::JoinStrategy strategy :
               {sparql::JoinStrategy::kNestedLoop,
                sparql::JoinStrategy::kHash,
                sparql::JoinStrategy::kAdaptive}) {
            EXPECT_EQ(RunTsv(&g, q, threads, reorder, strategy), reference)
                << "seed=" << seed << " threads=" << threads
                << " reorder=" << reorder
                << " strategy=" << static_cast<int>(strategy) << "\n"
                << q;
          }
        }
      }
    }
  }
}

TEST_F(JoinStrategyTest, AdaptiveEngagesHashOnProbeManyPattern) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 600;
  workload::GenerateProductKg(&g, opt);
  const std::string q =
      std::string(kPfx) +
      "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }";
  sparql::ExecStats adaptive_stats;
  const std::string adaptive = RunTsv(&g, q, 1, /*reorder=*/false,
                                      sparql::JoinStrategy::kAdaptive,
                                      &adaptive_stats);
  sparql::ExecStats nlj_stats;
  const std::string nlj = RunTsv(&g, q, 1, /*reorder=*/false,
                                 sparql::JoinStrategy::kNestedLoop,
                                 &nlj_stats);
  EXPECT_EQ(adaptive, nlj);
  ASSERT_EQ(adaptive_stats.join_strategy.size(), 2u);
  EXPECT_EQ(adaptive_stats.join_strategy[0], 'N');
  EXPECT_EQ(adaptive_stats.join_strategy[1], 'H');
  EXPECT_EQ(adaptive_stats.hash_builds, 1u);
  EXPECT_GT(adaptive_stats.hash_probe_hits, 0u);
  // The point of the hash path: strictly fewer index rows enumerated.
  EXPECT_LT(adaptive_stats.rows_scanned[1], nlj_stats.rows_scanned[1]);
  // Strategy surfaces in the one-line summary (shell `stats` command).
  EXPECT_NE(adaptive_stats.Summary().find("strategy=[N,H]"),
            std::string::npos);
  EXPECT_NE(adaptive_stats.Summary().find("hash_builds=1"),
            std::string::npos);
  // And in the machine-readable form.
  EXPECT_NE(adaptive_stats.ToJson().find("\"join_strategy\":[\"N\",\"H\"]"),
            std::string::npos);
}

TEST_F(JoinStrategyTest, HeterogeneousRowsFallBackPerRowByteIdentically) {
  // Rows reaching a hash-joined pattern can disagree on which slots are
  // bound (e.g. after OPTIONAL/UNION). Drive JoinBgp directly with such a
  // mixed row set: rows with ?m bound probe the table, rows without fall
  // back to a per-row scan, and the concatenation must equal serial NLJ.
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 100;
  workload::GenerateProductKg(&g, opt);

  sparql::VarTable vars;
  sparql::TriplePattern tp{
      sparql::NodePattern::Var("m"),
      sparql::NodePattern::Const(Term::Iri(kEx + "origin")),
      sparql::NodePattern::Var("c")};
  std::vector<sparql::CompiledPattern> patterns = {
      sparql::CompileTriple(tp, &vars, g)};
  ASSERT_FALSE(patterns[0].impossible);

  std::vector<sparql::Binding> seed_rows;
  int next = 0;
  g.ForEachMatch(kNoTermId, g.terms().Find(Term::Iri(kEx + "manufacturer")),
                 kNoTermId, [&](const rdf::TripleId& t) {
                   sparql::Binding b(vars.size(), kNoTermId);
                   // Every third row arrives with ?m unbound.
                   if (++next % 3 != 0) b[0] = t.o;
                   seed_rows.push_back(std::move(b));
                 });
  ASSERT_GE(seed_rows.size(), 100u);

  auto run = [&](sparql::JoinStrategy strategy) {
    std::vector<sparql::Binding> rows = seed_rows;
    sparql::JoinOptions jopts;
    jopts.strategy = strategy;
    Status st = sparql::JoinBgp(g, patterns, vars.size(), /*reorder=*/false,
                                jopts, &rows);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return rows;
  };
  std::vector<sparql::Binding> nlj = run(sparql::JoinStrategy::kNestedLoop);
  std::vector<sparql::Binding> hash = run(sparql::JoinStrategy::kHash);
  ASSERT_EQ(nlj.size(), hash.size());
  for (size_t i = 0; i < nlj.size(); ++i) {
    EXPECT_EQ(nlj[i], hash[i]) << "row " << i;
  }
}

TEST_F(JoinStrategyTest, DeadlineTripsInsideHashBuildDeterministically) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 1000;  // price build range comfortably > one 512-row check
  workload::GenerateProductKg(&g, opt);
  g.Freeze();

  sparql::VarTable vars;
  sparql::TriplePattern tp1{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "manufacturer")),
      sparql::NodePattern::Var("m")};
  sparql::TriplePattern tp2{
      sparql::NodePattern::Var("l"),
      sparql::NodePattern::Const(Term::Iri(kEx + "price")),
      sparql::NodePattern::Var("p")};
  std::vector<sparql::CompiledPattern> patterns = {
      sparql::CompileTriple(tp1, &vars, g),
      sparql::CompileTriple(tp2, &vars, g)};

  // Counted checks in a forced-hash run: pattern-1 entry + exit, pattern-2
  // entry (all "bgp-join"), then the hash build's 512-row check. Cancelling
  // on the 4th check therefore lands inside the build loop, every time.
  QueryContext ctx;
  ctx.CancelAfterChecks(4);
  sparql::ExecStats stats;
  sparql::JoinOptions jopts;
  jopts.stats = &stats;
  jopts.ctx = &ctx;
  jopts.strategy = sparql::JoinStrategy::kHash;
  std::vector<sparql::Binding> rows = {
      sparql::Binding(vars.size(), kNoTermId)};
  Status st =
      sparql::JoinBgp(g, patterns, vars.size(), /*reorder=*/false, jopts,
                      &rows);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_STREQ(ctx.trip_stage(), "hash-build");
  // The partial pattern's stats were still recorded before unwinding.
  ASSERT_EQ(stats.join_strategy.size(), 2u);
  EXPECT_EQ(stats.join_strategy[1], 'H');
  EXPECT_EQ(stats.rows_scanned[1], 512u);
}

}  // namespace
}  // namespace rdfa
