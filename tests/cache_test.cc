// Unit coverage of the generation-aware cache stack: the byte-accounted
// LRU template (exact accounting, eviction order, zero-capacity and
// oversized-entry edge cases, generation-mismatch lazy invalidation), the
// whitespace-normalizing query fingerprint it is keyed by, the plan cache,
// and the no-poisoned-entry guarantee — a deterministically cancelled
// cache-miss fill must leave nothing behind.

#include "common/lru_cache.h"

#include <memory>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/query_context.h"
#include "common/query_log.h"
#include "endpoint/endpoint.h"
#include "sparql/parser.h"
#include "sparql/plan_cache.h"
#include "workload/invoices.h"

namespace rdfa {
namespace {

CacheOptions SingleShard(size_t max_bytes, size_t max_entries) {
  CacheOptions opts;
  opts.max_bytes = max_bytes;
  opts.max_entries = max_entries;
  opts.shards = 1;  // one global LRU: deterministic accounting + order
  return opts;
}

TEST(LruCacheTest, ByteAccountingIsExact) {
  LruCache<std::string> cache(SingleShard(1000, 100));
  cache.Put("a", 1, std::string("x"), 100);
  cache.Put("b", 1, std::string("y"), 250);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 350u);

  // Replacing a key swaps its accounted size, never double-counts.
  cache.Put("a", 1, std::string("xx"), 175);
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 425u);

  // A generation-invalidated entry releases its bytes.
  EXPECT_EQ(cache.Get("b", 2), nullptr);
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 175u);

  cache.Clear();
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  LruCache<int> cache(SingleShard(1 << 20, 3));
  cache.Put("a", 1, 1, 10);
  cache.Put("b", 1, 2, 10);
  cache.Put("c", 1, 3, 10);
  // Refresh "a": it is now the most recently used; "b" is the LRU tail.
  ASSERT_NE(cache.Get("a", 1), nullptr);
  cache.Put("d", 1, 4, 10);
  EXPECT_EQ(cache.Get("b", 1), nullptr) << "LRU victim should be b";
  EXPECT_NE(cache.Get("a", 1), nullptr);
  EXPECT_NE(cache.Get("c", 1), nullptr);
  EXPECT_NE(cache.Get("d", 1), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(LruCacheTest, ByteBudgetEvictsUntilUnderLimit) {
  LruCache<int> cache(SingleShard(100, 100));
  cache.Put("a", 1, 1, 40);
  cache.Put("b", 1, 2, 40);
  // 40 + 40 + 40 > 100: "a" (the tail) must go.
  cache.Put("c", 1, 3, 40);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.Get("a", 1), nullptr);
}

TEST(LruCacheTest, ZeroCapacityStoresNothing) {
  for (CacheOptions opts :
       {SingleShard(0, 100), SingleShard(1 << 20, 0)}) {
    LruCache<int> cache(opts);
    EXPECT_FALSE(cache.enabled());
    cache.Put("a", 1, 1, 1);
    EXPECT_EQ(cache.Get("a", 1), nullptr);
    CacheStats stats = cache.Stats();
    EXPECT_EQ(stats.entries, 0u);
    // A disabled cache does not even count misses: it is pass-through.
    EXPECT_EQ(stats.misses, 0u);
  }
  CacheOptions disabled = SingleShard(1 << 20, 16);
  disabled.enabled = false;
  LruCache<int> cache(disabled);
  EXPECT_FALSE(cache.enabled());
  cache.Put("a", 1, 1, 1);
  EXPECT_EQ(cache.Get("a", 1), nullptr);
}

TEST(LruCacheTest, OversizedEntryIsNotStored) {
  LruCache<int> cache(SingleShard(100, 100));
  cache.Put("small", 1, 1, 60);
  // Larger than the whole byte budget: evicting everything could not make
  // it fit, so it is skipped — and the resident entry survives.
  cache.Put("huge", 1, 2, 101);
  EXPECT_EQ(cache.Get("huge", 1), nullptr);
  EXPECT_NE(cache.Get("small", 1), nullptr);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(LruCacheTest, GenerationMismatchIsLazyEviction) {
  LruCache<std::string> cache(SingleShard(1 << 20, 16));
  cache.Put("q", 7, std::string("answer@7"), 8);
  // Same generation: hit.
  auto hit = cache.Get("q", 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "answer@7");
  // Newer generation: miss + invalidation, and the entry is gone.
  EXPECT_EQ(cache.Get("q", 8), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // The follow-up miss is a plain miss, not another invalidation.
  EXPECT_EQ(cache.Get("q", 8), nullptr);
  stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(LruCacheTest, HitRateMathMatchesCounters) {
  LruCache<int> cache(SingleShard(1 << 20, 16));
  cache.Put("a", 1, 1, 4);
  ASSERT_NE(cache.Get("a", 1), nullptr);
  ASSERT_EQ(cache.Get("b", 1), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_DOUBLE_EQ(CacheStats{}.HitRate(), 0.0);
}

TEST(LruCacheTest, ValueOutlivesItsEviction) {
  LruCache<std::string> cache(SingleShard(1 << 20, 1));
  cache.Put("a", 1, std::string("still here"), 10);
  std::shared_ptr<const std::string> held = cache.Get("a", 1);
  ASSERT_NE(held, nullptr);
  cache.Put("b", 1, std::string("usurper"), 10);  // evicts "a"
  EXPECT_EQ(cache.Get("a", 1), nullptr);
  EXPECT_EQ(*held, "still here") << "reader's reference must stay alive";
}

// ---------------------------------------------------------------------------
// Replacement accounting: a Put under an occupied key displaces the old
// entry, and that displacement must tick the replacements counter —
// including on the oversized-value reject path, where the old entry is
// dropped but nothing new is stored.

TEST(LruCacheTest, ReplacementTicksExactlyOnce) {
  LruCache<std::string> cache(SingleShard(1000, 16));
  cache.Put("k", 1, std::string("v1"), 100);
  EXPECT_EQ(cache.Stats().replacements, 0u);
  cache.Put("k", 2, std::string("v2"), 120);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.replacements, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 120u);
  auto hit = cache.Get("k", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v2");
  // A Put to a fresh key is not a replacement.
  cache.Put("other", 2, std::string("x"), 10);
  EXPECT_EQ(cache.Stats().replacements, 1u);
}

TEST(LruCacheTest, OversizedRejectStillCountsDisplacedEntry) {
  LruCache<std::string> cache(SingleShard(100, 16));
  cache.Put("k", 1, std::string("resident"), 40);
  ASSERT_EQ(cache.Stats().entries, 1u);
  // The oversized value is rejected, but the pre-existing entry under the
  // key is still dropped — and that removal must be accounted for.
  cache.Put("k", 1, std::string("way too big"), 101);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(cache.Get("k", 1), nullptr);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.replacements, 1u)
      << "displaced entry vanished without ticking any counter";
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(LruCacheTest, EveryRemovalTicksExactlyOneCounter) {
  // Exactly-once accounting: across a mixed workload, the number of entries
  // ever stored equals current residency plus every counted removal.
  LruCache<int> cache(SingleShard(1000, 3));
  uint64_t stored = 0;
  cache.Put("a", 1, 1, 10); ++stored;
  cache.Put("b", 1, 2, 10); ++stored;
  cache.Put("c", 1, 3, 10); ++stored;
  cache.Put("a", 2, 4, 10); ++stored;   // replacement
  cache.Put("d", 1, 5, 10); ++stored;   // capacity eviction of the tail
  EXPECT_EQ(cache.Get("c", 9), nullptr);  // invalidation (if c survived)
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stored, stats.entries + stats.evictions + stats.invalidations +
                        stats.replacements);
}

// ---------------------------------------------------------------------------
// Footprint-validated lookups: the stamp-fn Get recomputes the expected
// stamp from the entry's own footprint, so mutations to predicates outside
// the footprint leave the entry valid.

TEST(LruCacheTest, FootprintStampSurvivesUnrelatedMutations) {
  LruCache<std::string> cache(SingleShard(1 << 20, 16));
  // Modeled per-predicate epochs, as Graph::FootprintStamp would sum them.
  std::unordered_map<std::string, uint64_t> epochs{{"p1", 3}, {"p2", 7}};
  auto stamp = [&epochs](const CacheFootprint& fp) -> uint64_t {
    uint64_t sum = 0;
    for (const std::string& p : fp.predicates) sum += epochs[p];
    return sum;
  };
  CacheFootprint fp = CacheFootprint::Of({"p1"});
  cache.Put("q", stamp(fp), std::string("answer"), 8, fp);

  // Mutating p2 does not touch the entry's footprint: still a hit.
  epochs["p2"] = 8;
  EXPECT_NE(cache.Get("q", stamp), nullptr);
  // Mutating p1 does: miss + lazy invalidation.
  epochs["p1"] = 4;
  EXPECT_EQ(cache.Get("q", stamp), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LruCacheTest, WildcardFootprintMatchesLegacyGenerationProtocol) {
  LruCache<int> cache(SingleShard(1 << 20, 16));
  uint64_t global_gen = 5;
  auto stamp = [&global_gen](const CacheFootprint& fp) -> uint64_t {
    EXPECT_TRUE(fp.wildcard);
    return global_gen;
  };
  cache.Put("q", 5, 42, 4);  // default footprint: wildcard
  EXPECT_NE(cache.Get("q", stamp), nullptr);
  global_gen = 6;  // any mutation moves the global stamp
  EXPECT_EQ(cache.Get("q", stamp), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

// ---------------------------------------------------------------------------
// The fingerprint the caches are keyed by.

TEST(NormalizeQueryTextTest, CollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(NormalizeQueryText("SELECT  ?x\n\tWHERE { ?x ?p ?o }"),
            "SELECT ?x WHERE { ?x ?p ?o }");
  EXPECT_EQ(NormalizeQueryText("  SELECT ?x  "), "SELECT ?x");
  EXPECT_EQ(NormalizeQueryText(""), "");
  EXPECT_EQ(NormalizeQueryText(" \n\t "), "");
}

TEST(NormalizeQueryTextTest, PreservesWhitespaceInsideLiterals) {
  // "a  b" and "a b" are different RDF literals: the fingerprint must not
  // merge queries that differ only inside a quoted string.
  const std::string two = "SELECT ?x WHERE { ?x ?p \"a  b\" }";
  const std::string one = "SELECT ?x WHERE { ?x ?p \"a b\" }";
  EXPECT_NE(NormalizeQueryText(two), NormalizeQueryText(one));
  EXPECT_EQ(NormalizeQueryText(two), two);
  // Single quotes and escaped quotes keep the state machine honest.
  const std::string esc = "SELECT ?x WHERE { ?x ?p 'it\\'s  two' }";
  EXPECT_EQ(NormalizeQueryText(esc), esc);
}

TEST(NormalizeQueryTextTest, ReformattingsShareAFingerprint) {
  const std::string a =
      "PREFIX inv: <urn:i#>\nSELECT ?b WHERE { ?i inv:at ?b . }";
  const std::string b =
      "PREFIX inv: <urn:i#>\n\n  SELECT   ?b\tWHERE {\n  ?i inv:at ?b .\n}";
  EXPECT_EQ(HashQueryText(NormalizeQueryText(a)),
            HashQueryText(NormalizeQueryText(b)));
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCacheTest, RoundTripsParsedQueriesPerGeneration) {
  sparql::PlanCache cache;
  ASSERT_TRUE(cache.enabled());
  const uint64_t h = HashQueryText("SELECT ?x WHERE { ?x ?p ?o }");
  EXPECT_EQ(cache.Get(h, 1), nullptr);

  auto parsed = sparql::ParseQuery("SELECT ?x WHERE { ?x ?p ?o }");
  ASSERT_TRUE(parsed.ok());
  sparql::PlanEntry entry;
  entry.ast = parsed.value();
  entry.bgp_orders = {{1, 0}};
  cache.Put(h, 1, std::move(entry));

  auto hit = cache.Get(h, 1);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->bgp_orders.size(), 1u);
  EXPECT_EQ(hit->bgp_orders[0], (std::vector<int>{1, 0}));

  // A different generation invalidates: plans ride on statistics that the
  // mutation may have shifted.
  EXPECT_EQ(cache.Get(h, 2), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

// ---------------------------------------------------------------------------
// No poisoned entries: a cache-miss fill whose execution trips
// cancellation (deterministically, via the check-count fault injection)
// must leave the cache empty — the next lookup re-executes and succeeds.

TEST(CachePoisonTest, CancelledFillLeavesNoEntryBehind) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  endpoint::SimulatedEndpoint ep(&g, endpoint::LatencyProfile::Local(),
                                 /*enable_cache=*/true);
  const char kQuery[] =
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "SELECT ?b (SUM(?q) AS ?tot) WHERE { ?i inv:takesPlaceAt ?b . ?i "
      "inv:inQuantity ?q . } GROUP BY ?b";

  // Probe a clean run for its deterministic check count, then replay and
  // trip on the last check — deep inside execution, after the cache-miss
  // path has committed to filling.
  QueryContext probe;
  {
    endpoint::SimulatedEndpoint clean(&g, endpoint::LatencyProfile::Local());
    auto r = clean.Query(kQuery, probe);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().status.ok());
  }
  ASSERT_GT(probe.checks_performed(), 1);

  QueryContext ctx;
  ctx.CancelAfterChecks(probe.checks_performed());
  auto tripped = ep.Query(kQuery, ctx);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  ASSERT_EQ(tripped.value().status.code(), StatusCode::kCancelled);

  CacheStats stats = ep.answer_cache_stats();
  EXPECT_EQ(stats.entries, 0u) << "cancelled fill stored a poisoned entry";
  EXPECT_EQ(ep.plan_cache_stats().entries, 0u);

  // The next lookup is a miss that executes cleanly and caches the real
  // answer.
  auto clean = ep.Query(kQuery);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean.value().status.ok());
  EXPECT_FALSE(clean.value().cache_hit);
  EXPECT_EQ(clean.value().table.num_rows(), 3u);
  auto hit = ep.Query(kQuery);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().table.ToTsv(), clean.value().table.ToTsv());
}

}  // namespace
}  // namespace rdfa
