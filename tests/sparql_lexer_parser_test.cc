#include <gtest/gtest.h>

#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace rdfa::sparql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT ?x WHERE { ?x <urn:p> \"v\" . }");
  ASSERT_TRUE(toks.ok());
  const auto& t = toks.value();
  EXPECT_EQ(t[0].kind, TokenKind::kPName);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].kind, TokenKind::kVar);
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[5].kind, TokenKind::kIriRef);
  EXPECT_EQ(t[5].text, "urn:p");
}

TEST(LexerTest, ComparisonDigraphs) {
  auto toks = Tokenize("?a <= ?b >= ?c != ?d && ?e || ?f");
  ASSERT_TRUE(toks.ok());
  std::vector<std::string> puncts;
  for (const Token& t : toks.value()) {
    if (t.kind == TokenKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"<=", ">=", "!=", "&&", "||"}));
}

TEST(LexerTest, IriVsLessThan) {
  auto toks = Tokenize("FILTER(?x < 5) ?s <urn:p> ?o");
  ASSERT_TRUE(toks.ok());
  bool saw_lt = false, saw_iri = false;
  for (const Token& t : toks.value()) {
    if (t.kind == TokenKind::kPunct && t.text == "<") saw_lt = true;
    if (t.kind == TokenKind::kIriRef && t.text == "urn:p") saw_iri = true;
  }
  EXPECT_TRUE(saw_lt);
  EXPECT_TRUE(saw_iri);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Tokenize("\"a\\\"b\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(toks.value()[0].text, "a\"b");
}

TEST(LexerTest, NumbersAndDecimals) {
  auto toks = Tokenize("42 3.25");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kDecimal);
}

TEST(ParserTest, SimpleSelect) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x <urn:p> ?y . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectQuery& s = q.value().select;
  ASSERT_EQ(s.projections.size(), 1u);
  EXPECT_EQ(s.projections[0].var, "x");
  ASSERT_EQ(s.where.elements.size(), 1u);
  EXPECT_EQ(s.where.elements[0].kind, PatternElement::Kind::kTriple);
}

TEST(ParserTest, PrefixResolution) {
  auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x a ex:Laptop . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const TriplePattern& tp = q.value().select.where.elements[0].triple;
  EXPECT_EQ(tp.p.term.lexical(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_EQ(tp.o.term.lexical(), "http://e.org/Laptop");
}

TEST(ParserTest, SemicolonAndCommaLists) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <urn:p> ?a , ?b ; <urn:q> ?c . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().select.where.elements.size(), 3u);
  EXPECT_TRUE(q.value().select.select_all);
}

TEST(ParserTest, FilterExpression) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <urn:p> ?v . FILTER(?v >= 2 && ?v < 10) . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& els = q.value().select.where.elements;
  ASSERT_EQ(els.size(), 2u);
  EXPECT_EQ(els[1].kind, PatternElement::Kind::kFilter);
  EXPECT_EQ(els[1].filter->op, "&&");
}

TEST(ParserTest, GroupByAggregatesHaving) {
  auto q = ParseQuery(
      "SELECT ?m (AVG(?p) AS ?avgp) WHERE { ?x <urn:man> ?m . ?x <urn:price> "
      "?p . } GROUP BY ?m HAVING (AVG(?p) > 500) ORDER BY DESC(?avgp) LIMIT 3 "
      "OFFSET 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectQuery& s = q.value().select;
  ASSERT_EQ(s.projections.size(), 2u);
  EXPECT_EQ(s.projections[1].var, "avgp");
  ASSERT_NE(s.projections[1].expr, nullptr);
  EXPECT_TRUE(s.projections[1].expr->ContainsAggregate());
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.having.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_EQ(s.limit, 3);
  EXPECT_EQ(s.offset, 1);
}

TEST(ParserTest, LimitOverflowIsTypedParseError) {
  // strtoll would saturate at LLONG_MAX on this literal; the parser must
  // surface a typed ParseError instead of silently clamping (the saturated
  // value would otherwise flow into a size_t cast in the executor).
  for (const char* clause :
       {"LIMIT 99999999999999999999999", "OFFSET 99999999999999999999999"}) {
    auto q = ParseQuery(std::string("SELECT ?x WHERE { ?x ?p ?o . } ") +
                        clause);
    ASSERT_FALSE(q.ok()) << clause;
    EXPECT_EQ(q.status().code(), StatusCode::kParseError) << clause;
    EXPECT_NE(q.status().ToString().find("out of range"), std::string::npos)
        << q.status().ToString();
  }
}

TEST(ParserTest, LimitAtInt64MaxStillParses) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x ?p ?o . } LIMIT 9223372036854775807 OFFSET 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().select.limit, 9223372036854775807LL);
  EXPECT_EQ(q.value().select.offset, 0);
}

TEST(ParserTest, BareAggregateInSelect) {
  // The paper writes "SELECT ?x2 SUM(?x3)" without AS.
  auto q = ParseQuery(
      "SELECT ?x2 SUM(?x3) WHERE { ?x1 <urn:b> ?x2 . ?x1 <urn:q> ?x3 . } "
      "GROUP BY ?x2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().select.projections.size(), 2u);
}

TEST(ParserTest, OptionalAndUnion) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <urn:p> ?y . OPTIONAL { ?y <urn:q> ?z . } "
      "{ ?x a <urn:A> . } UNION { ?x a <urn:B> . } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& els = q.value().select.where.elements;
  ASSERT_EQ(els.size(), 3u);
  EXPECT_EQ(els[1].kind, PatternElement::Kind::kOptional);
  EXPECT_EQ(els[2].kind, PatternElement::Kind::kUnion);
}

TEST(ParserTest, BindAndValues) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <urn:p> ?v . BIND(?v * 2 AS ?w) VALUES ?x { "
      "<urn:a> <urn:b> } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& els = q.value().select.where.elements;
  ASSERT_EQ(els.size(), 3u);
  EXPECT_EQ(els[1].kind, PatternElement::Kind::kBind);
  EXPECT_EQ(els[2].kind, PatternElement::Kind::kValues);
  EXPECT_EQ(els[2].values_terms.size(), 2u);
}

TEST(ParserTest, SubSelect) {
  auto q = ParseQuery(
      "SELECT ?m ?avg WHERE { ?m a <urn:C> . { SELECT ?m (AVG(?p) AS ?avg) "
      "WHERE { ?x <urn:man> ?m . ?x <urn:price> ?p . } GROUP BY ?m } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  bool found = false;
  for (const auto& el : q.value().select.where.elements) {
    if (el.kind == PatternElement::Kind::kSubSelect) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, PropertyPathSequenceDesugars) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <urn:manufacturer>/<urn:origin> <urn:USA> . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Two chained patterns with a fresh intermediate variable.
  ASSERT_EQ(q.value().select.where.elements.size(), 2u);
  const auto& t0 = q.value().select.where.elements[0].triple;
  const auto& t1 = q.value().select.where.elements[1].triple;
  EXPECT_TRUE(t0.o.is_var);
  EXPECT_EQ(t0.o.var, t1.s.var);
  EXPECT_FALSE(t1.o.is_var);
}

TEST(ParserTest, InversePathDesugars) {
  auto q = ParseQuery("SELECT ?c WHERE { ?c ^<urn:manufacturer> ?prod . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& tp = q.value().select.where.elements[0].triple;
  // Inverse: the pattern is flipped.
  EXPECT_EQ(tp.s.var, "prod");
  EXPECT_EQ(tp.o.var, "c");
}

TEST(ParserTest, DatatypeLiterals) {
  auto q = ParseQuery(
      "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"
      "SELECT ?x WHERE { ?x <urn:d> \"2021-01-01T00:00:00\"^^xsd:dateTime . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& tp = q.value().select.where.elements[0].triple;
  EXPECT_EQ(tp.o.term.datatype(), "http://www.w3.org/2001/XMLSchema#dateTime");
}

TEST(ParserTest, ConstructQuery) {
  auto q = ParseQuery(
      "CONSTRUCT { ?x <urn:feature> ?v . } WHERE { ?x <urn:p> ?v . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().form, ParsedQuery::Form::kConstruct);
  EXPECT_EQ(q.value().construct.construct_template.size(), 1u);
}

TEST(ParserTest, AskQuery) {
  auto q = ParseQuery("ASK { <urn:a> <urn:p> <urn:b> . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().form, ParsedQuery::Form::kAsk);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_EQ(ParseQuery("SELECT WHERE { }").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("SELECT ?x { ?x <urn:p> ?y .").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("FROB ?x").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("SELECT ?x WHERE { ?x zz:p ?y . }").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, GroupByFunctionExpression) {
  auto q = ParseQuery(
      "SELECT MONTH(?d) SUM(?q) WHERE { ?x <urn:date> ?d . ?x <urn:qty> ?q . "
      "} GROUP BY MONTH(?d)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().select.group_by.size(), 1u);
  EXPECT_EQ(q.value().select.group_by[0]->kind, Expr::Kind::kCall);
  EXPECT_EQ(q.value().select.group_by[0]->call_name, "MONTH");
}

TEST(ParserTest, GroupConcatSeparator) {
  auto q = ParseQuery(
      "SELECT (GROUP_CONCAT(?n ; SEPARATOR=\"|\") AS ?all) WHERE { ?x "
      "<urn:name> ?n . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const ExprPtr& e = q.value().select.projections[0].expr;
  ASSERT_EQ(e->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(e->agg, AggFunc::kGroupConcat);
  EXPECT_EQ(e->agg_separator, "|");
}

}  // namespace
}  // namespace rdfa::sparql
