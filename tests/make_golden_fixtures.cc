// Regenerates the golden snapshot fixtures under tests/data/ from the
// dissertation's fixed running-example graph:
//
//   make_golden_fixtures <output-dir>
//
// The fixtures are checked in; the format-compat test only *loads* them, so
// they must be regenerated exactly once per on-disk format revision (never
// per code change). RDFA2/RDFA3 come from the production writer; RDFA1 is
// written here by hand since the library stopped saving v1 long ago.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "workload/products.h"

namespace {

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

std::string SaveV1(const rdfa::rdf::Graph& graph) {
  std::string out("RDFA1\n", 6);
  const rdfa::rdf::TermTable& terms = graph.terms();
  PutU64(&out, terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    const rdfa::rdf::Term& t = terms.Get(static_cast<rdfa::rdf::TermId>(i));
    out.push_back(static_cast<char>(t.kind()));
    PutString(&out, t.lexical());
    PutString(&out, t.datatype());
    PutString(&out, t.lang());
  }
  PutU64(&out, graph.triples().size());
  for (const rdfa::rdf::TripleId& t : graph.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  rdfa::rdf::Graph g;
  rdfa::workload::BuildRunningExample(&g);
  const bool ok =
      WriteFile(dir + "/golden_v1.rdfa", SaveV1(g)) &&
      WriteFile(dir + "/golden_v2.rdfa",
                rdfa::rdf::SaveBinary(g, rdfa::rdf::kSnapshotVersionV2)) &&
      WriteFile(dir + "/golden_v3.rdfa",
                rdfa::rdf::SaveBinary(g, rdfa::rdf::kSnapshotVersionV3));
  if (!ok) {
    std::cerr << "failed to write fixtures to " << dir << "\n";
    return 1;
  }
  std::cout << "wrote golden_v{1,2,3}.rdfa (" << g.size() << " triples, "
            << g.terms().size() << " terms) to " << dir << "\n";
  return 0;
}
