#include "translator/translator.h"

#include <gtest/gtest.h>

#include "hifun/hifun_parser.h"
#include "sparql/parser.h"
#include "workload/invoices.h"

namespace rdfa::translator {
namespace {

using hifun::AggOp;
using hifun::AttrExpr;
using hifun::Query;

const std::string kInv = workload::kInvoiceNs;

Query ParseQ(const std::string& text) {
  rdf::PrefixMap prefixes;
  auto q = hifun::ParseHifun(text, prefixes, kInv);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value_or(Query{});
}

std::string Translate(const std::string& hifun_text) {
  auto sparql = TranslateToSparql(ParseQ(hifun_text));
  EXPECT_TRUE(sparql.ok()) << sparql.status().ToString();
  return std::move(sparql).value_or("");
}

TEST(TranslatorTest, SimpleQueryShape) {
  // §4.2.1: (takesPlaceAt, inQuantity, SUM).
  std::string s = Translate("(takesPlaceAt, inQuantity, SUM)");
  EXPECT_NE(s.find("SELECT ?x2 (SUM(?x3) AS ?agg1)"), std::string::npos) << s;
  EXPECT_NE(s.find("?x1 <" + kInv + "takesPlaceAt> ?x2 ."), std::string::npos);
  EXPECT_NE(s.find("?x1 <" + kInv + "inQuantity> ?x3 ."), std::string::npos);
  EXPECT_NE(s.find("GROUP BY ?x2"), std::string::npos);
  EXPECT_EQ(s.find("HAVING"), std::string::npos);
}

TEST(TranslatorTest, UriRestrictionBecomesTriplePattern) {
  // §4.2.2 first case: the restriction is a triple pattern, not a FILTER.
  std::string s = Translate("(takesPlaceAt / = b1, inQuantity, SUM)");
  EXPECT_NE(s.find("?x1 <" + kInv + "takesPlaceAt> <" + kInv + "b1> ."),
            std::string::npos)
      << s;
  EXPECT_EQ(s.find("FILTER"), std::string::npos) << s;
}

TEST(TranslatorTest, LiteralRestrictionBecomesFilter) {
  // §4.2.2 second case.
  std::string s = Translate("(takesPlaceAt, inQuantity / >= 1, SUM)");
  EXPECT_NE(s.find("FILTER(?x3 >= "), std::string::npos) << s;
}

TEST(TranslatorTest, ResultRestrictionBecomesHaving) {
  // §4.2.3.
  std::string s = Translate("(takesPlaceAt, inQuantity, SUM / > 1000)");
  EXPECT_NE(s.find("HAVING (SUM(?x3) > 1000)"), std::string::npos) << s;
}

TEST(TranslatorTest, CompositionChainsVariables) {
  // §4.2.4: (brand ∘ delivers, inQuantity, SUM).
  std::string s = Translate("(brand o delivers, inQuantity, SUM)");
  EXPECT_NE(s.find("?x1 <" + kInv + "delivers> ?x2 ."), std::string::npos) << s;
  EXPECT_NE(s.find("?x2 <" + kInv + "brand> ?x3 ."), std::string::npos) << s;
  EXPECT_NE(s.find("GROUP BY ?x3"), std::string::npos) << s;
}

TEST(TranslatorTest, DerivedAttributeUsesBuiltin) {
  // §4.2.4 derived: (month ∘ date, inQuantity, SUM).
  std::string s = Translate("(MONTH(hasDate), inQuantity, SUM)");
  EXPECT_NE(s.find("MONTH(?x2)"), std::string::npos) << s;
  EXPECT_NE(s.find("GROUP BY MONTH(?x2)"), std::string::npos) << s;
}

TEST(TranslatorTest, PairingFansOutFromRoot) {
  // §4.2.4 pairing.
  std::string s = Translate("((takesPlaceAt x delivers), inQuantity, SUM)");
  EXPECT_NE(s.find("?x1 <" + kInv + "takesPlaceAt> ?x2 ."), std::string::npos);
  EXPECT_NE(s.find("?x1 <" + kInv + "delivers> ?x3 ."), std::string::npos);
  EXPECT_NE(s.find("GROUP BY ?x2 ?x3"), std::string::npos) << s;
}

TEST(TranslatorTest, PairingOverComposition) {
  std::string s =
      Translate("((takesPlaceAt x brand o delivers), inQuantity, SUM)");
  EXPECT_NE(s.find("GROUP BY ?x2 ?x4"), std::string::npos) << s;
}

TEST(TranslatorTest, RootClassAddsTypePattern) {
  std::string s = Translate("(takesPlaceAt, inQuantity, SUM) over Invoice");
  EXPECT_NE(s.find("rdf-syntax-ns#type> <" + kInv + "Invoice>"),
            std::string::npos)
      << s;
}

TEST(TranslatorTest, RestrictionPathGeneralCase) {
  // Alg. 4: restriction through a composition path ending at a URI.
  std::string s =
      Translate("(takesPlaceAt, inQuantity / delivers.brand = BrandA, SUM)");
  EXPECT_NE(s.find("?x1 <" + kInv + "delivers> ?x4 ."), std::string::npos) << s;
  EXPECT_NE(s.find("?x4 <" + kInv + "brand> <" + kInv + "BrandA> ."),
            std::string::npos)
      << s;
}

TEST(TranslatorTest, RestrictionPathEndingInLiteral) {
  std::string s =
      Translate("(takesPlaceAt, ID / delivers.brand != BrandA, COUNT)");
  // Non-'=' comparison with a URI goes through a FILTER on the path end.
  EXPECT_NE(s.find("FILTER("), std::string::npos) << s;
}

TEST(TranslatorTest, Paper425FullExample) {
  // §4.2.5: totals by branch and brand, January only, quantity >= 2, groups
  // with total > 1000 — the dissertation's worked translation.
  std::string s = Translate(
      "((takesPlaceAt x brand o delivers) / MONTH(hasDate) = 1, "
      "inQuantity / >= 2, SUM / > 1000)");
  EXPECT_NE(s.find("?x1 <" + kInv + "takesPlaceAt> ?x2 ."), std::string::npos)
      << s;
  EXPECT_NE(s.find("?x1 <" + kInv + "delivers> ?x3 ."), std::string::npos);
  EXPECT_NE(s.find("?x3 <" + kInv + "brand> ?x4 ."), std::string::npos);
  EXPECT_NE(s.find("?x1 <" + kInv + "inQuantity> ?x5 ."), std::string::npos);
  EXPECT_NE(s.find("?x1 <" + kInv + "hasDate> ?x6 ."), std::string::npos);
  EXPECT_NE(s.find("FILTER(MONTH(?x6) = "), std::string::npos) << s;
  EXPECT_NE(s.find("FILTER(?x5 >= "), std::string::npos);
  EXPECT_NE(s.find("GROUP BY ?x2 ?x4"), std::string::npos);
  EXPECT_NE(s.find("HAVING (SUM(?x5) > 1000)"), std::string::npos);
  // And it parses.
  EXPECT_TRUE(sparql::ParseQuery(s).ok()) << s;
}

TEST(TranslatorTest, DerivedRestrictionOnAttributeItself) {
  std::string s =
      Translate("(takesPlaceAt, inQuantity / YEAR(hasDate) = 2021, SUM)");
  EXPECT_NE(s.find("FILTER(YEAR("), std::string::npos) << s;
}

TEST(TranslatorTest, MultipleOpsProduceMultipleAggregates) {
  std::string s = Translate("(takesPlaceAt, inQuantity, SUM+AVG+MAX)");
  EXPECT_NE(s.find("(SUM(?x3) AS ?agg1)"), std::string::npos) << s;
  EXPECT_NE(s.find("(AVG(?x3) AS ?agg2)"), std::string::npos) << s;
  EXPECT_NE(s.find("(MAX(?x3) AS ?agg3)"), std::string::npos) << s;
}

TEST(TranslatorTest, NoGroupingOmitsGroupBy) {
  // Example 1 of §5.1: aggregate without GROUP BY.
  std::string s = Translate("(eps, inQuantity, AVG)");
  EXPECT_EQ(s.find("GROUP BY"), std::string::npos) << s;
  EXPECT_NE(s.find("AVG(?x2)"), std::string::npos) << s;
}

TEST(TranslatorTest, CountWithIdentityCountsRoot) {
  std::string s = Translate("(takesPlaceAt, ID, COUNT)");
  EXPECT_NE(s.find("COUNT(?x1)"), std::string::npos) << s;
}

TEST(TranslatorTest, EmptyOpsRejected) {
  Query q;
  q.measuring = AttrExpr::Identity();
  EXPECT_EQ(TranslateToSparql(q).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TranslatorTest, PairMeasureRejected) {
  Query q;
  q.measuring = AttrExpr::Pair(
      {AttrExpr::Property(kInv + "a"), AttrExpr::Property(kInv + "b")});
  q.ops = {AggOp::kSum};
  EXPECT_EQ(TranslateToSparql(q).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TranslatorTest, TranslationIsParseableSparql) {
  // Every translated query must be accepted by our SPARQL parser.
  const char* queries[] = {
      "(takesPlaceAt, inQuantity, SUM)",
      "(takesPlaceAt / = b1, inQuantity / >= 2, SUM / > 100)",
      "(brand o delivers, inQuantity, SUM+AVG)",
      "((takesPlaceAt x MONTH(hasDate)), inQuantity, MAX) over Invoice",
      "(eps, inQuantity, AVG)",
      "(takesPlaceAt, ID, COUNT)",
  };
  for (const char* q : queries) {
    std::string s = Translate(q);
    auto parsed = sparql::ParseQuery(s);
    EXPECT_TRUE(parsed.ok())
        << "hifun: " << q << "\nsparql:\n" << s << "\n" << parsed.status().ToString();
  }
}

}  // namespace
}  // namespace rdfa::translator
