// Deadline + cooperative-cancellation coverage across the query path:
// QueryContext semantics, deadline trips mid-BGP-join on a large KG,
// deterministic cancellation during the parallel group-aggregate stage
// (CancelAfterChecks fault injection), HIFUN-evaluator and roll-up
// unwinding, and the zero-deadline fast-fail.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "analytics/rollup_cache.h"
#include "common/query_context.h"
#include "hifun/evaluator.h"
#include "hifun/hifun_parser.h"
#include "rdf/rdfs.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "translator/translator.h"
#include "workload/products.h"

namespace rdfa {
namespace {

TEST(QueryContextTest, DefaultContextNeverTrips) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.Check("anywhere").ok());
  EXPECT_EQ(ctx.trip_stage(), nullptr);
}

TEST(QueryContextTest, NonPositiveBudgetIsAlreadyExpired) {
  QueryContext ctx = QueryContext::WithDeadlineMs(0);
  EXPECT_TRUE(ctx.expired());
  Status st = ctx.Check("admission");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(ctx.trip_stage(), "admission");
}

TEST(QueryContextTest, CancelIsSharedAcrossCopies) {
  QueryContext ctx;
  QueryContext copy = ctx;
  ctx.Cancel();
  EXPECT_TRUE(copy.cancelled());
  Status st = copy.Check("bgp-join");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, ChildTakesTheTighterDeadlineAndSharesCancel) {
  QueryContext parent = QueryContext::WithDeadlineMs(1e9);
  QueryContext child = parent.ChildWithDeadlineMs(1e6);
  EXPECT_LT(child.remaining_ms(), 2e6);
  // A looser child budget must not loosen an already-tight parent.
  QueryContext tight = QueryContext::WithDeadlineMs(0);
  QueryContext still_tight = tight.ChildWithDeadlineMs(1e6);
  EXPECT_TRUE(still_tight.expired());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(QueryContextTest, CancelAfterChecksTripsOnTheNthCheck) {
  QueryContext ctx;
  ctx.CancelAfterChecks(3);
  EXPECT_TRUE(ctx.Check("s1").ok());
  EXPECT_TRUE(ctx.Check("s2").ok());
  Status st = ctx.Check("s3");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_STREQ(ctx.trip_stage(), "s3");
  EXPECT_EQ(ctx.checks_performed(), 3);
}

/// Executes `sparql` over `g` with the given context and thread budget.
Result<sparql::ResultTable> RunQuery(rdf::Graph* g, const std::string& sparql,
                                const QueryContext& ctx, int threads,
                                sparql::ExecStats* stats) {
  auto parsed = sparql::ParseQuery(sparql);
  if (!parsed.ok()) return parsed.status();
  sparql::Executor exec(g);
  exec.set_thread_count(threads);
  exec.set_query_context(ctx);
  Result<sparql::ResultTable> table = exec.Execute(parsed.value());
  *stats = exec.stats();
  return table;
}

/// Shares one large product KG (~150k triples after closure) across the
/// deadline tests — it is expensive to generate.
class DeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new rdf::Graph();
    workload::ProductKgOptions opt;
    opt.laptops = 20000;
    opt.companies = 205;
    workload::GenerateProductKg(graph_, opt);
    rdf::MaterializeRdfsClosure(graph_);
    ASSERT_GT(graph_->size(), 100000u);

    rdf::PrefixMap prefixes;
    auto q = hifun::ParseHifun(
        "((manufacturer x YEAR(releaseDate)), price, AVG) over Laptop",
        prefixes, workload::kExampleNs);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    auto sparql = translator::TranslateToSparql(q.value());
    ASSERT_TRUE(sparql.ok()) << sparql.status().ToString();
    *query_ = sparql.value();
  }

  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  static rdf::Graph* graph_;
  static std::string* query_;
};

rdf::Graph* DeadlineTest::graph_ = nullptr;
std::string* DeadlineTest::query_ = new std::string();

TEST_F(DeadlineTest, OneMsDeadlineTripsWithPartialStats) {
  // Baseline: unrestricted run answers in full.
  sparql::ExecStats full_stats;
  auto full = RunQuery(graph_, *query_, QueryContext(), 1, &full_stats);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_GT(full.value().num_rows(), 0u);
  EXPECT_FALSE(full_stats.aborted);

  // A 1 ms budget cannot evaluate a 150k-triple grouping query: it must
  // unwind with the typed status, not return a full (or truncated) table.
  sparql::ExecStats stats;
  QueryContext ctx = QueryContext::WithDeadlineMs(1);
  auto clipped = RunQuery(graph_, *query_, ctx, 1, &stats);
  ASSERT_FALSE(clipped.ok());
  EXPECT_EQ(clipped.status().code(), StatusCode::kDeadlineExceeded)
      << clipped.status().ToString();
  EXPECT_TRUE(stats.aborted);
  EXPECT_FALSE(stats.abort_stage.empty());
  EXPECT_NE(stats.Summary().find("aborted@"), std::string::npos);
}

TEST_F(DeadlineTest, NoDeadlineRunIsByteIdenticalToContextFreeRun) {
  sparql::ExecStats stats;
  auto with_ctx =
      RunQuery(graph_, *query_, QueryContext::WithDeadlineMs(1e9), 4, &stats);
  ASSERT_TRUE(with_ctx.ok()) << with_ctx.status().ToString();

  auto parsed = sparql::ParseQuery(*query_);
  ASSERT_TRUE(parsed.ok());
  sparql::Executor bare(graph_);
  bare.set_thread_count(4);
  auto without_ctx = bare.Execute(parsed.value());
  ASSERT_TRUE(without_ctx.ok());
  EXPECT_EQ(with_ctx.value().ToTsv(), without_ctx.value().ToTsv());
}

TEST_F(DeadlineTest, ZeroDeadlineFastFailsAtAdmission) {
  sparql::ExecStats stats;
  auto r = RunQuery(graph_, *query_, QueryContext::WithDeadlineMs(0), 1, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stats.aborted);
  EXPECT_EQ(stats.abort_stage, "admission");
  // Fast-fail means no join work was done at all.
  EXPECT_EQ(stats.bgp_patterns, 0u);
}

TEST_F(DeadlineTest, PreCancelledContextFailsFast) {
  QueryContext ctx;
  ctx.Cancel();
  sparql::ExecStats stats;
  auto r = RunQuery(graph_, *query_, ctx, 1, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(stats.abort_stage, "admission");
}

TEST_F(DeadlineTest, CancelDuringParallelGroupAggregate) {
  // Phase 1: count the deterministic stage-boundary checks of a clean run.
  QueryContext probe;
  sparql::ExecStats stats;
  auto full = RunQuery(graph_, *query_, probe, 4, &stats);
  ASSERT_TRUE(full.ok());
  int64_t checks = probe.checks_performed();
  ASSERT_GT(checks, 4);

  // Phase 2: rerun, tripping on the final counted check — which lands in
  // the group-aggregate stage for a grouping query.
  QueryContext ctx;
  ctx.CancelAfterChecks(checks);
  auto clipped = RunQuery(graph_, *query_, ctx, 4, &stats);
  ASSERT_FALSE(clipped.ok());
  EXPECT_EQ(clipped.status().code(), StatusCode::kCancelled)
      << clipped.status().ToString();
  EXPECT_TRUE(stats.aborted);
  EXPECT_EQ(stats.abort_stage, "group-aggregate");
}

TEST(HifunDeadlineTest, EvaluatorUnwindsOnExpiredAndCancelled) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  rdf::PrefixMap prefixes;
  auto q = hifun::ParseHifun("(manufacturer, price, AVG) over Laptop",
                             prefixes, workload::kExampleNs);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  hifun::Evaluator eval(g);

  auto ok = eval.Evaluate(q.value());
  ASSERT_TRUE(ok.ok());
  ASSERT_GT(ok.value().num_rows(), 0u);

  auto expired = eval.Evaluate(q.value(), QueryContext::WithDeadlineMs(0));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // Deterministic mid-evaluation cancellation via check-count replay.
  QueryContext probe;
  ASSERT_TRUE(eval.Evaluate(q.value(), probe).ok());
  ASSERT_GT(probe.checks_performed(), 1);
  QueryContext ctx;
  ctx.CancelAfterChecks(probe.checks_performed());
  auto cancelled = eval.Evaluate(q.value(), ctx);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

TEST(RollUpDeadlineTest, RollUpHonorsTheContext) {
  sparql::ResultTable table({"brand", "sales"});
  for (int i = 0; i < 10; ++i) {
    table.AddRow({rdf::Term::Iri("urn:b" + std::to_string(i % 3)),
                  rdf::Term::Integer(i)});
  }
  analytics::AnswerFrame frame(std::move(table));

  auto ok = analytics::RollUpAnswer(frame, {"brand"}, "sales",
                                    hifun::AggOp::kSum);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().table().num_rows(), 3u);

  auto expired =
      analytics::RollUpAnswer(frame, {"brand"}, "sales", hifun::AggOp::kSum,
                              /*threads=*/1, QueryContext::WithDeadlineMs(0));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  QueryContext cancelled;
  cancelled.Cancel();
  auto avg = analytics::RollUpAverage(frame, {"brand"}, "sales", "sales",
                                      /*threads=*/4, cancelled);
  ASSERT_FALSE(avg.ok());
  EXPECT_EQ(avg.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace rdfa
