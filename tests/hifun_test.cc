#include <gtest/gtest.h>

#include "hifun/context.h"
#include "hifun/evaluator.h"
#include "hifun/hifun_parser.h"
#include "hifun/query.h"
#include "sparql/value.h"
#include "viz/table_render.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa::hifun {
namespace {

const std::string kInv = workload::kInvoiceNs;
const std::string kEx = workload::kExampleNs;

class HifunEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildInvoicesExample(&g_); }

  std::map<std::string, double> Rows(const sparql::ResultTable& t) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::DisplayTerm(t.at(r, 0))] =
          *sparql::Value::FromTerm(t.at(r, t.num_columns() - 1)).AsNumeric();
    }
    return out;
  }

  rdf::Graph g_;
};

TEST_F(HifunEvalTest, SimpleQuerySumByBranch) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  Evaluator eval(g_);
  auto res = eval.Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto rows = Rows(res.value());
  EXPECT_EQ(rows["b1"], 300);
  EXPECT_EQ(rows["b2"], 600);
  EXPECT_EQ(rows["b3"], 600);
}

TEST_F(HifunEvalTest, AttributeRestrictedToUri) {
  // (takesPlaceAt/=b1, inQuantity, SUM): only branch b1.
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  Restriction r;
  r.op = "=";
  r.value = rdf::Term::Iri(kInv + "b1");
  q.group_restrictions.push_back(r);
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().num_rows(), 1u);
  EXPECT_EQ(Rows(res.value())["b1"], 300);
}

TEST_F(HifunEvalTest, MeasureRestrictedByLiteral) {
  // quantities >= 200 only: b1=200, b2=600, b3=400.
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  Restriction r;
  r.op = ">=";
  r.value = rdf::Term::Integer(200);
  q.measure_restrictions.push_back(r);
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto rows = Rows(res.value());
  EXPECT_EQ(rows["b1"], 200);
  EXPECT_EQ(rows["b2"], 600);
  EXPECT_EQ(rows["b3"], 400);
}

TEST_F(HifunEvalTest, ResultRestrictionHaving) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  ResultRestriction rr;
  rr.op = ">";
  rr.value = 500;
  q.result_restriction = rr;
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().num_rows(), 2u);  // b2, b3
}

TEST_F(HifunEvalTest, CompositionBrandOfDelivers) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Compose({AttrExpr::Property(kInv + "delivers"),
                                  AttrExpr::Property(kInv + "brand")});
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto rows = Rows(res.value());
  EXPECT_EQ(rows["BrandA"], 600);
  EXPECT_EQ(rows["BrandB"], 900);
}

TEST_F(HifunEvalTest, DerivedMonthGrouping) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping =
      AttrExpr::Derived("MONTH", AttrExpr::Property(kInv + "hasDate"));
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto rows = Rows(res.value());
  EXPECT_EQ(rows["1"], 500);
  EXPECT_EQ(rows["2"], 900);
  EXPECT_EQ(rows["3"], 100);
}

TEST_F(HifunEvalTest, PairingTwoGroupings) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Pair({AttrExpr::Property(kInv + "takesPlaceAt"),
                               AttrExpr::Property(kInv + "delivers")});
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().num_rows(), 6u);
  EXPECT_EQ(res.value().num_columns(), 3u);
}

TEST_F(HifunEvalTest, MultipleOps) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum, AggOp::kAvg, AggOp::kMax, AggOp::kMin, AggOp::kCount};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().num_columns(), 6u);
  // b3: sum 600, avg 200, max 400, min 100, count 3.
  for (size_t r = 0; r < res.value().num_rows(); ++r) {
    if (viz::DisplayTerm(res.value().at(r, 0)) == "b3") {
      EXPECT_EQ(res.value().at(r, 1).lexical(), "600");
      EXPECT_EQ(res.value().at(r, 2).lexical(), "200");
      EXPECT_EQ(res.value().at(r, 3).lexical(), "400");
      EXPECT_EQ(res.value().at(r, 4).lexical(), "100");
      EXPECT_EQ(res.value().at(r, 5).lexical(), "3");
    }
  }
}

TEST_F(HifunEvalTest, CountWithIdentityMeasure) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Identity();
  q.ops = {AggOp::kCount};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok());
  auto rows = Rows(res.value());
  EXPECT_EQ(rows["b3"], 3);
}

TEST_F(HifunEvalTest, NoGroupingGlobalAggregate) {
  Query q;
  q.root_class = kInv + "Invoice";
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g_).Evaluate(q);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().num_rows(), 1u);
  EXPECT_EQ(res.value().at(0, 0).lexical(), "1500");
}

TEST_F(HifunEvalTest, MultiValuedAttributeIsPreconditionError) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  // Make takesPlaceAt multi-valued on d1.
  g.Add(rdf::Term::Iri(kInv + "d1"), rdf::Term::Iri(kInv + "takesPlaceAt"),
        rdf::Term::Iri(kInv + "b2"));
  Query q;
  q.root_class = kInv + "Invoice";
  q.grouping = AttrExpr::Property(kInv + "takesPlaceAt");
  q.measuring = AttrExpr::Property(kInv + "inQuantity");
  q.ops = {AggOp::kSum};
  auto res = Evaluator(g).Evaluate(q);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kPrecondition);
}

TEST_F(HifunEvalTest, EmptyOpsRejected) {
  Query q;
  q.measuring = AttrExpr::Identity();
  auto res = Evaluator(g_).Evaluate(q);
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

// ---------------- context / prerequisites ----------------

TEST(ContextTest, ItemsAndCandidates) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  AnalysisContext ctx(g, kInv + "Invoice");
  EXPECT_EQ(ctx.items().size(), 7u);
  auto& cands = ctx.candidate_attributes();
  EXPECT_NE(std::find(cands.begin(), cands.end(), kInv + "inQuantity"),
            cands.end());
  EXPECT_NE(std::find(cands.begin(), cands.end(), kInv + "takesPlaceAt"),
            cands.end());
}

TEST(ContextTest, FunctionalAndTotalChecks) {
  rdf::Graph g;
  workload::BuildRunningExample(&g);
  AnalysisContext ctx(g, kEx + "Laptop");
  AttributeReport rep = ctx.Check(g, kEx + "price");
  EXPECT_TRUE(rep.hifun_ready());
  EXPECT_EQ(rep.items, 3u);
  EXPECT_EQ(rep.with_value, 3u);
}

TEST(ContextTest, DetectsMissingValues) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 50;
  opt.missing_price_rate = 0.5;
  workload::GenerateProductKg(&g, opt);
  AnalysisContext ctx(g, kEx + "Laptop");
  AttributeReport rep = ctx.Check(g, kEx + "price");
  EXPECT_GT(rep.missing, 0u);
  EXPECT_FALSE(rep.total());
  EXPECT_TRUE(rep.functional());
}

TEST(ContextTest, DetectsMultiValued) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 10;
  opt.companies = 10;
  opt.multi_founder_rate = 1.0;
  workload::GenerateProductKg(&g, opt);
  AnalysisContext ctx(g, kEx + "Company");
  AttributeReport rep = ctx.Check(g, kEx + "founder");
  // Some company got two distinct founders (rate 1.0, random picks could
  // collide but with 40 persons it is overwhelmingly likely at least once).
  EXPECT_GT(rep.multi_valued, 0u);
  EXPECT_FALSE(rep.functional());
}

TEST(ContextTest, EmptyRootSelectsAllSubjects) {
  rdf::Graph g;
  workload::BuildInvoicesExample(&g);
  AnalysisContext ctx(g, "");
  EXPECT_GT(ctx.items().size(), 7u);
}

// ---------------- textual parser ----------------

class HifunParserTest : public ::testing::Test {
 protected:
  rdf::PrefixMap prefixes_;
  Result<Query> Parse(const std::string& text) {
    return ParseHifun(text, prefixes_, kInv);
  }
};

TEST_F(HifunParserTest, SimpleTriple) {
  auto q = Parse("(takesPlaceAt, inQuantity, SUM)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().grouping->kind, AttrExpr::Kind::kProperty);
  EXPECT_EQ(q.value().grouping->property, kInv + "takesPlaceAt");
  EXPECT_EQ(q.value().ops.size(), 1u);
  EXPECT_EQ(q.value().ops[0], AggOp::kSum);
}

TEST_F(HifunParserTest, CompositionOuterFirst) {
  auto q = Parse("(brand o delivers, inQuantity, SUM)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AttrExpr& g = *q.value().grouping;
  ASSERT_EQ(g.kind, AttrExpr::Kind::kCompose);
  // Application order: delivers first.
  EXPECT_EQ(g.args[0]->property, kInv + "delivers");
  EXPECT_EQ(g.args[1]->property, kInv + "brand");
}

TEST_F(HifunParserTest, PairingAndDerived) {
  auto q = Parse("((takesPlaceAt x MONTH(hasDate)), inQuantity, SUM+AVG)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().grouping->kind, AttrExpr::Kind::kPair);
  EXPECT_EQ(q.value().grouping->args[1]->kind, AttrExpr::Kind::kDerived);
  EXPECT_EQ(q.value().ops.size(), 2u);
}

TEST_F(HifunParserTest, RestrictionsAndHaving) {
  auto q = Parse(
      "(takesPlaceAt / = b1, inQuantity / >= 2, SUM / > 1000) over Invoice");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().group_restrictions.size(), 1u);
  EXPECT_EQ(q.value().group_restrictions[0].value.lexical(), kInv + "b1");
  ASSERT_EQ(q.value().measure_restrictions.size(), 1u);
  EXPECT_EQ(q.value().measure_restrictions[0].op, ">=");
  ASSERT_TRUE(q.value().result_restriction.has_value());
  EXPECT_EQ(q.value().result_restriction->value, 1000);
  EXPECT_EQ(q.value().root_class, kInv + "Invoice");
}

TEST_F(HifunParserTest, RestrictionWithPath) {
  auto q = Parse("(takesPlaceAt, inQuantity / delivers.brand = BrandA, SUM)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().measure_restrictions.size(), 1u);
  EXPECT_EQ(q.value().measure_restrictions[0].path.size(), 2u);
}

TEST_F(HifunParserTest, EpsAndIdentity) {
  auto q = Parse("(eps, ID, COUNT)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().grouping, nullptr);
  EXPECT_EQ(q.value().measuring->kind, AttrExpr::Kind::kIdentity);
}

TEST_F(HifunParserTest, ParseErrors) {
  EXPECT_FALSE(Parse("takesPlaceAt, inQuantity, SUM").ok());
  EXPECT_FALSE(Parse("(takesPlaceAt, inQuantity)").ok());
  EXPECT_FALSE(Parse("(takesPlaceAt, inQuantity, FROB)").ok());
  EXPECT_FALSE(Parse("(takesPlaceAt, inQuantity, SUM) trailing").ok());
}

TEST_F(HifunParserTest, ToStringRoundTripsParseably) {
  auto q = Parse("(brand o delivers / = b1, inQuantity / >= 2, SUM+AVG / > 10)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string text = q.value().ToString();
  EXPECT_NE(text.find("brand o delivers"), std::string::npos);
  EXPECT_NE(text.find("SUM+AVG"), std::string::npos);
}

}  // namespace
}  // namespace rdfa::hifun
