// Differential coverage for the RDFA3 storage backends: every query path —
// executor scans/joins/aggregates, OLAP rollups, MVCC commit/read races —
// must produce byte-identical results whether the graph was fully decoded
// onto the heap or is being served lazily off a compressed mapped snapshot.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/olap.h"
#include "analytics/session.h"
#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "rdf/mapped_graph.h"
#include "rdf/mvcc.h"
#include "rdf/rdfs.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa {
namespace {

using rdf::Graph;
using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

constexpr char kPfx[] =
    "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

// No ORDER BY anywhere: determinism must come from the engine and the
// storage backend, not from an output sort.
const char* const kQueries[] = {
    "SELECT ?l ?p WHERE { ?l ex:price ?p }",
    "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c }",
    "SELECT ?m (COUNT(?l) AS ?n) (AVG(?p) AS ?avg) WHERE { "
    "?l ex:manufacturer ?m . ?l ex:price ?p } GROUP BY ?m",
    "SELECT ?l ?h WHERE { ?l rdf:type ex:Laptop . ?l ex:hardDrive ?h }",
    "SELECT ?l ?p WHERE { ?l ex:price ?p . FILTER(?p > 1200) }",
    "SELECT ?l ?f WHERE { ?l ex:manufacturer ?m . "
    "OPTIONAL { ?m ex:founder ?f } }",
};

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "storage_backend_" + tag + ".rdfa";
}

std::unique_ptr<Graph> BuildKg(uint64_t seed) {
  auto g = std::make_unique<Graph>();
  workload::ProductKgOptions opt;
  opt.laptops = 150;
  opt.seed = seed;
  opt.missing_price_rate = 0.05;
  opt.multi_founder_rate = 0.2;
  workload::GenerateProductKg(g.get(), opt);
  rdf::MaterializeRdfsClosure(g.get());
  return g;
}

std::string RunQuery(Graph* g, const std::string& query, int threads) {
  sparql::Executor exec(g, /*reorder_joins=*/true, /*push_filters=*/true,
                        threads);
  auto parsed = sparql::ParseQuery(kPfx + query);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message() << "\n" << query;
  if (!parsed.ok()) return "<parse error>";
  auto table = exec.Execute(parsed.value());
  EXPECT_TRUE(table.ok()) << table.status().message() << "\n" << query;
  if (!table.ok()) return "<exec error>";
  return sparql::WriteResultsJson(table.value());
}

// Saves `g` as RDFA3 and returns (heap reload, mapped open) of the file.
struct BackendPair {
  std::unique_ptr<Graph> heap;
  std::unique_ptr<Graph> mapped;
};

BackendPair SaveAndReopen(const Graph& g, const std::string& tag) {
  const std::string path = TempPath(tag);
  EXPECT_TRUE(rdf::SaveBinaryFile(g, path).ok());
  BackendPair pair;
  pair.heap = std::make_unique<Graph>();
  Status st = rdf::LoadBinaryFile(path, pair.heap.get());
  EXPECT_TRUE(st.ok()) << st.message();
  auto mapped = rdf::OpenMappedSnapshot(path);
  EXPECT_TRUE(mapped.ok()) << mapped.status().message();
  pair.mapped = std::move(mapped).value();
  return pair;
}

TEST(StorageBackendTest, MappedViewStructureMatchesHeap) {
  auto original = BuildKg(42);
  BackendPair pair = SaveAndReopen(*original, "structure");
  Graph& heap = *pair.heap;
  Graph& mapped = *pair.mapped;
  ASSERT_NE(mapped.mapped(), nullptr);
  EXPECT_EQ(mapped.size(), heap.size());
  EXPECT_EQ(mapped.terms().size(), heap.terms().size());
  EXPECT_EQ(mapped.size(), original->size());

  // Stats blocks restored identically on both backends.
  const rdf::GraphStats& hs = heap.Stats();
  const rdf::GraphStats& ms = mapped.Stats();
  EXPECT_EQ(hs.triples, ms.triples);
  EXPECT_EQ(hs.distinct_subjects, ms.distinct_subjects);
  EXPECT_EQ(hs.distinct_predicates, ms.distinct_predicates);
  EXPECT_EQ(hs.distinct_objects, ms.distinct_objects);
  EXPECT_EQ(hs.by_predicate.size(), ms.by_predicate.size());

  // Generation stamps survive the round trip on both backends.
  EXPECT_EQ(heap.Generation(), original->Generation());
  EXPECT_EQ(mapped.Generation(), original->Generation());
  auto hg = heap.PredicateGenerations();
  auto mg = mapped.PredicateGenerations();
  std::sort(hg.begin(), hg.end());
  std::sort(mg.begin(), mg.end());
  EXPECT_EQ(hg, mg);

  // Every term decodes to the exact term the heap table holds.
  for (size_t i = 0; i < heap.terms().size(); ++i) {
    ASSERT_EQ(mapped.terms().Get(static_cast<TermId>(i)),
              heap.terms().Get(static_cast<TermId>(i)))
        << "term " << i;
  }
}

TEST(StorageBackendTest, EstimatesAreExactlyEqualAcrossBackends) {
  // Exact estimate equality is a hard requirement: the BGP reorderer keys
  // join order off these numbers, so any drift would silently change result
  // byte order between backends.
  auto original = BuildKg(7);
  BackendPair pair = SaveAndReopen(*original, "estimates");
  Graph& heap = *pair.heap;
  Graph& mapped = *pair.mapped;
  const size_t n = heap.terms().size();
  std::vector<TermId> sample;
  for (size_t i = 0; i < n; i += 17) sample.push_back(static_cast<TermId>(i));
  sample.push_back(kNoTermId);
  for (TermId s : sample) {
    for (TermId p : sample) {
      EXPECT_EQ(heap.EstimateMatch(s, p, kNoTermId),
                mapped.EstimateMatch(s, p, kNoTermId));
      for (int perm = 0; perm < 3; ++perm) {
        const auto gp = static_cast<Graph::Perm>(perm);
        EXPECT_EQ(heap.EstimateInPerm(gp, s, p, kNoTermId),
                  mapped.EstimateInPerm(gp, s, p, kNoTermId));
        EXPECT_EQ(heap.EstimateInPerm(gp, kNoTermId, p, s),
                  mapped.EstimateInPerm(gp, kNoTermId, p, s));
      }
    }
  }
}

TEST(StorageBackendTest, ScansAndTriplesAgreeAcrossBackends) {
  auto original = BuildKg(99);
  BackendPair pair = SaveAndReopen(*original, "scans");
  Graph& heap = *pair.heap;
  Graph& mapped = *pair.mapped;

  // Full enumeration: the mapped graph's lazy SPO materialization must
  // equal the heap loader's insertion order.
  ASSERT_EQ(mapped.triples().size(), heap.triples().size());
  for (size_t i = 0; i < heap.triples().size(); ++i) {
    const rdf::TripleId& h = heap.triples()[i];
    const rdf::TripleId& m = mapped.triples()[i];
    ASSERT_TRUE(h.s == m.s && h.p == m.p && h.o == m.o) << "triple " << i;
  }

  // Pattern scans in every permutation enumerate identically.
  for (int perm = 0; perm < 3; ++perm) {
    const auto gp = static_cast<Graph::Perm>(perm);
    for (TermId p = 0; p < heap.terms().size(); p += 23) {
      std::vector<rdf::TripleId> hv, mv;
      heap.ForEachInPerm(gp, kNoTermId, p, kNoTermId,
                         [&](const rdf::TripleId& t) { hv.push_back(t); });
      mapped.ForEachInPerm(gp, kNoTermId, p, kNoTermId,
                           [&](const rdf::TripleId& t) { mv.push_back(t); });
      ASSERT_EQ(hv.size(), mv.size()) << "perm " << perm << " p " << p;
      for (size_t i = 0; i < hv.size(); ++i) {
        ASSERT_TRUE(hv[i].s == mv[i].s && hv[i].p == mv[i].p &&
                    hv[i].o == mv[i].o);
      }
    }
  }

  // Contains agrees on hits and misses.
  for (size_t i = 0; i < heap.triples().size(); i += 13) {
    const rdf::TripleId& t = heap.triples()[i];
    EXPECT_TRUE(mapped.Contains(t.s, t.p, t.o));
    EXPECT_EQ(mapped.Contains(t.s, t.o, t.p), heap.Contains(t.s, t.o, t.p));
  }
}

TEST(StorageBackendTest, QueryResultsByteIdenticalAcrossSeedsAndThreads) {
  for (uint64_t seed : {42u, 7u, 99u}) {
    auto original = BuildKg(seed);
    BackendPair pair =
        SaveAndReopen(*original, "query_" + std::to_string(seed));
    for (int threads : {1, 4}) {
      for (const char* q : kQueries) {
        const std::string heap_json = RunQuery(pair.heap.get(), q, threads);
        const std::string mapped_json =
            RunQuery(pair.mapped.get(), q, threads);
        EXPECT_EQ(heap_json, mapped_json)
            << "seed " << seed << " threads " << threads << "\n" << q;
      }
    }
  }
}

TEST(StorageBackendTest, OlapRollupsByteIdenticalAcrossBackends) {
  const std::string kInv = workload::kInvoiceNs;
  Graph source;
  workload::BuildInvoicesExample(&source);
  BackendPair pair = SaveAndReopen(source, "olap");

  const auto run_cube = [&](Graph* g) {
    analytics::AnalyticsSession session(g);
    EXPECT_TRUE(session.fs().ClickClass(kInv + "Invoice").ok());
    analytics::Dimension time;
    time.name = "time";
    time.levels = {
        {"date", {kInv + "hasDate"}, ""},
        {"month", {kInv + "hasDate"}, "MONTH"},
        {"year", {kInv + "hasDate"}, "YEAR"},
    };
    analytics::Dimension product;
    product.name = "product";
    product.levels = {
        {"product", {kInv + "delivers"}, ""},
        {"brand", {kInv + "delivers", kInv + "brand"}, ""},
    };
    analytics::MeasureSpec measure;
    measure.path = {kInv + "inQuantity"};
    measure.ops = {hifun::AggOp::kSum};
    analytics::OlapView view(&session,
                             std::vector<analytics::Dimension>{time, product},
                             measure);
    std::string out;
    auto fine = view.Materialize();
    EXPECT_TRUE(fine.ok()) << fine.status().message();
    if (fine.ok()) out += sparql::WriteResultsCsv(fine.value().table());
    EXPECT_TRUE(view.RollUp("time").ok());
    EXPECT_TRUE(view.RollUp("product").ok());
    auto coarse = view.Materialize();
    EXPECT_TRUE(coarse.ok()) << coarse.status().message();
    if (coarse.ok()) out += sparql::WriteResultsCsv(coarse.value().table());
    return out;
  };

  const std::string heap_cube = run_cube(pair.heap.get());
  const std::string mapped_cube = run_cube(pair.mapped.get());
  EXPECT_FALSE(heap_cube.empty());
  EXPECT_EQ(heap_cube, mapped_cube);
}

TEST(StorageBackendTest, MappedGraphMaterializesOnFirstWrite) {
  auto original = BuildKg(42);
  BackendPair pair = SaveAndReopen(*original, "write");
  Graph& mapped = *pair.mapped;
  ASSERT_NE(mapped.mapped(), nullptr);
  const size_t before = mapped.size();
  EXPECT_TRUE(mapped.Add(Term::Iri("urn:post/s"), Term::Iri("urn:post/p"),
                         Term::Iri("urn:post/o")));
  EXPECT_EQ(mapped.mapped(), nullptr);  // detached to the heap
  EXPECT_EQ(mapped.size(), before + 1);
  // Everything loaded from the snapshot survives the materialization, and
  // queries now see both old and new triples.
  EXPECT_EQ(mapped.size(), pair.heap->size() + 1);
  const TermId p = mapped.terms().FindIri("urn:post/p");
  ASSERT_NE(p, kNoTermId);
  EXPECT_EQ(mapped.CountMatch(kNoTermId, p, kNoTermId), 1u);
  for (const char* q : kQueries) {
    // Heap copy with the same post-load mutation stays byte-identical.
    static bool added = false;
    if (!added) {
      pair.heap->Add(Term::Iri("urn:post/s"), Term::Iri("urn:post/p"),
                     Term::Iri("urn:post/o"));
      added = true;
    }
    EXPECT_EQ(RunQuery(pair.heap.get(), q, 1), RunQuery(&mapped, q, 1));
  }
}

TEST(StorageBackendTest, MvccCommitReadRacesByteIdenticalAcrossBackends) {
  // Same commit schedule against a heap-based and a mapped-based epoch 0;
  // readers race the writer on both. Any epoch observed on either backend
  // must map to exactly one result byte-string, shared by both.
  const char* kRaceQuery =
      "SELECT ?m (COUNT(?l) AS ?n) WHERE { ?l ex:manufacturer ?m } "
      "GROUP BY ?m";
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto original = BuildKg(seed);
    BackendPair pair =
        SaveAndReopen(*original, "mvcc_" + std::to_string(seed));
    for (int reader_threads : {1, 4}) {
      std::map<uint64_t, std::string> by_epoch;
      std::mutex mu;
      bool mismatch = false;
      auto race = [&](std::unique_ptr<Graph> base) {
        rdf::MvccGraph mvcc(std::move(base));
        std::atomic<bool> done{false};
        std::vector<std::thread> readers;
        for (int r = 0; r < reader_threads; ++r) {
          readers.emplace_back([&, r] {
            while (!done.load(std::memory_order_acquire)) {
              rdf::MvccGraph::Pin pin = mvcc.Snapshot();
              const std::string json =
                  RunQuery(pin.graph.get(), kRaceQuery, (r % 2) ? 4 : 1);
              std::lock_guard<std::mutex> lock(mu);
              auto [it, inserted] = by_epoch.emplace(pin.epoch, json);
              if (!inserted && it->second != json) mismatch = true;
            }
          });
        }
        for (int c = 0; c < 12; ++c) {
          const std::string tag = std::to_string(seed) + "_" +
                                  std::to_string(c);
          mvcc.Insert(Term::Iri("urn:race/l" + tag),
                      Term::Iri(std::string(workload::kExampleNs) +
                                "manufacturer"),
                      Term::Iri("urn:race/m" + std::to_string(c % 3)));
          auto epoch = mvcc.Commit();
          ASSERT_TRUE(epoch.ok()) << epoch.status().message();
        }
        done.store(true, std::memory_order_release);
        for (std::thread& t : readers) t.join();
        // Deterministic tail: record every epoch's final answer from the
        // committed version so both backends certainly cover epoch N.
        rdf::MvccGraph::Pin pin = mvcc.Snapshot();
        const std::string json = RunQuery(pin.graph.get(), kRaceQuery, 1);
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = by_epoch.emplace(pin.epoch, json);
        if (!inserted && it->second != json) mismatch = true;
      };
      race(std::move(pair.heap));
      race(std::move(pair.mapped));
      EXPECT_FALSE(mismatch)
          << "seed " << seed << " readers " << reader_threads;
      // Re-open for the next reader_threads round.
      pair = SaveAndReopen(*original, "mvcc_" + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace rdfa
