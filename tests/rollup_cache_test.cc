// Tests for materialized-answer roll-up reuse: re-aggregating a cached
// answer frame must equal re-querying the base KG at the coarser grouping.

#include "analytics/rollup_cache.h"

#include <gtest/gtest.h>

#include <map>

#include "analytics/session.h"
#include "sparql/value.h"
#include "viz/table_render.h"
#include "workload/invoices.h"

namespace rdfa::analytics {
namespace {

const std::string kInv = workload::kInvoiceNs;

class RollupCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::InvoicesOptions opt;
    opt.invoices = 500;
    opt.branches = 6;
    opt.products = 30;
    workload::GenerateInvoices(&g_, opt);
  }

  /// Runs (group by `paths`, op(inQuantity)) against the base KG.
  AnswerFrame Direct(const std::vector<std::vector<std::string>>& paths,
                     std::vector<hifun::AggOp> ops) {
    AnalyticsSession s(&g_);
    EXPECT_TRUE(s.fs().ClickClass(kInv + "Invoice").ok());
    for (const auto& p : paths) {
      GroupingSpec grp;
      grp.path = p;
      EXPECT_TRUE(s.ClickGroupBy(grp).ok());
    }
    MeasureSpec m;
    m.path = {kInv + "inQuantity"};
    m.ops = std::move(ops);
    EXPECT_TRUE(s.ClickAggregate(m).ok());
    auto af = s.Execute();
    EXPECT_TRUE(af.ok()) << af.status().ToString();
    return std::move(af).value_or(AnswerFrame{});
  }

  std::map<std::string, double> Canon(const sparql::ResultTable& t,
                                      const std::string& key_col,
                                      const std::string& val_col) {
    std::map<std::string, double> out;
    int kc = t.ColumnIndex(key_col);
    int vc = t.ColumnIndex(val_col);
    EXPECT_GE(kc, 0);
    EXPECT_GE(vc, 0);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::DisplayTerm(t.at(r, kc))] =
          *sparql::Value::FromTerm(t.at(r, vc)).AsNumeric();
    }
    return out;
  }

  rdf::Graph g_;
};

TEST_F(RollupCacheTest, SumRollUpMatchesDirectQuery) {
  // Fine cube: (branch, product) -> SUM; roll up to (branch).
  AnswerFrame fine = Direct(
      {{kInv + "takesPlaceAt"}, {kInv + "delivers"}}, {hifun::AggOp::kSum});
  // Columns: x2 (branch), x3 (product), agg1.
  auto rolled = RollUpAnswer(fine, {fine.table().columns()[0]}, "agg1",
                             hifun::AggOp::kSum);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  AnswerFrame coarse = Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kSum});
  auto a = Canon(rolled.value().table(), rolled.value().table().columns()[0],
                 "agg1");
  auto b = Canon(coarse.table(), coarse.table().columns()[0], "agg1");
  EXPECT_EQ(a, b);
}

TEST_F(RollupCacheTest, CountRollUpSumsPartialCounts) {
  AnswerFrame fine = Direct(
      {{kInv + "takesPlaceAt"}, {kInv + "delivers"}}, {hifun::AggOp::kCount});
  auto rolled = RollUpAnswer(fine, {fine.table().columns()[0]}, "agg1",
                             hifun::AggOp::kCount);
  ASSERT_TRUE(rolled.ok());
  AnswerFrame coarse =
      Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kCount});
  EXPECT_EQ(Canon(rolled.value().table(),
                  rolled.value().table().columns()[0], "agg1"),
            Canon(coarse.table(), coarse.table().columns()[0], "agg1"));
}

TEST_F(RollupCacheTest, MinMaxRollUp) {
  AnswerFrame fine = Direct({{kInv + "takesPlaceAt"}, {kInv + "delivers"}},
                            {hifun::AggOp::kMax});
  auto rolled = RollUpAnswer(fine, {fine.table().columns()[0]}, "agg1",
                             hifun::AggOp::kMax);
  ASSERT_TRUE(rolled.ok());
  AnswerFrame coarse = Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kMax});
  EXPECT_EQ(Canon(rolled.value().table(),
                  rolled.value().table().columns()[0], "agg1"),
            Canon(coarse.table(), coarse.table().columns()[0], "agg1"));
}

TEST_F(RollupCacheTest, AverageRollsUpFromSumCountPair) {
  AnswerFrame fine = Direct({{kInv + "takesPlaceAt"}, {kInv + "delivers"}},
                            {hifun::AggOp::kSum, hifun::AggOp::kCount});
  // Columns: branch, product, agg1 (sum), agg2 (count).
  auto rolled = RollUpAverage(fine, {fine.table().columns()[0]}, "agg1",
                              "agg2");
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  AnswerFrame coarse = Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kAvg});
  auto a = Canon(rolled.value().table(), rolled.value().table().columns()[0],
                 "avg");
  auto b = Canon(coarse.table(), coarse.table().columns()[0], "agg1");
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [k, v] : a) EXPECT_NEAR(v, b.at(k), 1e-6) << k;
}

TEST_F(RollupCacheTest, AvgOpRejectedAsNonDistributive) {
  AnswerFrame fine = Direct({{kInv + "takesPlaceAt"}, {kInv + "delivers"}},
                            {hifun::AggOp::kAvg});
  EXPECT_EQ(RollUpAnswer(fine, {fine.table().columns()[0]}, "agg1",
                         hifun::AggOp::kAvg)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RollupCacheTest, UnknownColumnsRejected) {
  AnswerFrame fine =
      Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kSum});
  EXPECT_EQ(
      RollUpAnswer(fine, {"nope"}, "agg1", hifun::AggOp::kSum).status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(RollUpAnswer(fine, {fine.table().columns()[0]}, "nope",
                         hifun::AggOp::kSum)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(RollupCacheTest, RollUpToGrandTotal) {
  AnswerFrame fine =
      Direct({{kInv + "takesPlaceAt"}}, {hifun::AggOp::kSum});
  auto rolled = RollUpAnswer(fine, {}, "agg1", hifun::AggOp::kSum);
  ASSERT_TRUE(rolled.ok());
  ASSERT_EQ(rolled.value().table().num_rows(), 1u);
  AnswerFrame total = Direct({}, {hifun::AggOp::kSum});
  EXPECT_NEAR(*sparql::Value::FromTerm(rolled.value().table().at(0, 0))
                   .AsNumeric(),
              *sparql::Value::FromTerm(total.table().at(0, 0)).AsNumeric(),
              1e-9);
}

}  // namespace
}  // namespace rdfa::analytics
