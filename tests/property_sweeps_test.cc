// Property-based sweeps (TEST_P over seeds): randomized checks of the
// engine-level and model-level invariants the dissertation's guarantees
// rest on — never-empty transitions, count correctness, evaluation-strategy
// agreement, and join correctness against a naive reference evaluator.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "fs/session.h"
#include "hifun/evaluator.h"
#include "rdf/rdfs.h"
#include "sparql/bgp.h"
#include "sparql/executor.h"
#include "translator/translator.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;

// ---------- random BGP joins vs a naive reference evaluator ----------

class RandomBgpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBgpTest, IndexJoinMatchesNaiveJoin) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  rdf::Graph g;
  const int kVocab = 8;
  auto t = [&](int i) { return rdf::Term::Iri("urn:v" + std::to_string(i)); };
  for (int i = 0; i < 250; ++i) {
    g.Add(t(static_cast<int>(rng() % kVocab)),
          t(static_cast<int>(rng() % 4)),  // few predicates: denser joins
          t(static_cast<int>(rng() % kVocab)));
  }

  // Random conjunctive pattern of 2-3 triples over variables a,b,c and
  // constants.
  auto random_node = [&](sparql::VarTable* vars) {
    (void)vars;
    int pick = static_cast<int>(rng() % 5);
    if (pick < 3) {
      const char* names[] = {"a", "b", "c"};
      return sparql::NodePattern::Var(names[pick]);
    }
    return sparql::NodePattern::Const(t(static_cast<int>(rng() % kVocab)));
  };

  for (int trial = 0; trial < 20; ++trial) {
    size_t n_patterns = 2 + rng() % 2;
    std::vector<sparql::TriplePattern> patterns;
    for (size_t i = 0; i < n_patterns; ++i) {
      sparql::VarTable dummy;
      patterns.push_back({random_node(&dummy), random_node(&dummy),
                          random_node(&dummy)});
    }

    // Engine evaluation.
    sparql::VarTable vars;
    std::vector<sparql::CompiledPattern> compiled;
    for (const auto& tp : patterns) {
      compiled.push_back(sparql::CompileTriple(tp, &vars, g));
    }
    std::vector<sparql::Binding> rows = {sparql::Binding(vars.size(),
                                                         rdf::kNoTermId)};
    sparql::JoinBgp(g, compiled, vars.size(), /*reorder=*/true, &rows);

    // Naive reference: nested loops over all triples.
    std::multiset<std::string> expected;
    std::function<void(size_t, std::map<std::string, rdf::TermId>)> recurse =
        [&](size_t depth, std::map<std::string, rdf::TermId> env) {
          if (depth == patterns.size()) {
            std::string key;
            for (const char* v : {"a", "b", "c"}) {
              auto it = env.find(v);
              key += (it == env.end() ? "-" : std::to_string(it->second)) +
                     "|";
            }
            expected.insert(key);
            return;
          }
          const sparql::TriplePattern& tp = patterns[depth];
          for (const rdf::TripleId& triple : g.triples()) {
            auto env2 = env;
            bool ok = true;
            auto unify = [&](const sparql::NodePattern& n, rdf::TermId val) {
              if (!n.is_var) {
                rdf::TermId want = g.terms().Find(n.term);
                if (want != val) ok = false;
                return;
              }
              auto it = env2.find(n.var);
              if (it != env2.end()) {
                if (it->second != val) ok = false;
              } else {
                env2[n.var] = val;
              }
            };
            unify(tp.s, triple.s);
            if (ok) unify(tp.p, triple.p);
            if (ok) unify(tp.o, triple.o);
            if (ok) recurse(depth + 1, std::move(env2));
          }
        };
    recurse(0, {});

    std::multiset<std::string> got;
    for (const sparql::Binding& row : rows) {
      std::string key;
      for (const char* v : {"a", "b", "c"}) {
        int slot = vars.Find(v);
        rdf::TermId val =
            (slot >= 0 && static_cast<size_t>(slot) < row.size())
                ? row[slot]
                : rdf::kNoTermId;
        key += (val == rdf::kNoTermId ? "-" : std::to_string(val)) + "|";
      }
      got.insert(key);
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBgpTest, ::testing::Range(1, 6));

// ---------- FS model invariants over random click walks ----------

class FsInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(FsInvariantTest, OfferedTransitionsNeverEmptyAndCountsExact) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 60;
  opt.companies = 6;
  opt.seed = static_cast<uint64_t>(GetParam());
  workload::GenerateProductKg(&g, opt);
  rdf::MaterializeRdfsClosure(&g);

  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 17 + 1);
  fs::Session session(&g);
  ASSERT_TRUE(session.ClickClass(kEx + "Laptop").ok());

  for (int step = 0; step < 6; ++step) {
    auto facets = session.PropertyFacets();
    if (facets.empty()) break;
    const fs::PropertyFacet& facet = facets[rng() % facets.size()];
    if (facet.values.empty()) continue;
    const fs::ValueCount& vc = facet.values[rng() % facet.values.size()];

    size_t before = session.current().ext.size();
    Status st = session.ClickValue({facet.prop},
                                   g.terms().Get(vc.value));
    // Invariant 1: every *offered* value click succeeds (never-empty
    // guarantee of the model).
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Invariant 2: the new extension size equals the displayed count.
    EXPECT_EQ(session.current().ext.size(), vc.count);
    EXPECT_LE(session.current().ext.size(), before);
    // Invariant 3: Back() restores the previous extension exactly.
    fs::Extension now = session.current().ext;
    ASSERT_TRUE(session.Back().ok());
    EXPECT_EQ(session.current().ext.size(), before);
    ASSERT_TRUE(session.ClickValue({facet.prop}, g.terms().Get(vc.value)).ok());
    EXPECT_EQ(session.current().ext, now);
  }
}

TEST_P(FsInvariantTest, SparqlOnlyAgreesWithNativeOnRandomWalk) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 40;
  opt.seed = static_cast<uint64_t>(GetParam()) + 100;
  workload::GenerateProductKg(&g, opt);
  rdf::MaterializeRdfsClosure(&g);

  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  fs::Session native(&g, fs::EvalMode::kNative);
  fs::Session sparql_only(&g, fs::EvalMode::kSparqlOnly);
  ASSERT_TRUE(native.ClickClass(kEx + "Laptop").ok());
  ASSERT_TRUE(sparql_only.ClickClass(kEx + "Laptop").ok());
  EXPECT_EQ(native.current().ext, sparql_only.current().ext);

  for (int step = 0; step < 4; ++step) {
    auto facets = native.PropertyFacets();
    if (facets.empty()) break;
    const fs::PropertyFacet& facet = facets[rng() % facets.size()];
    if (facet.values.empty()) continue;
    const fs::ValueCount& vc = facet.values[rng() % facet.values.size()];
    rdf::Term value = g.terms().Get(vc.value);
    ASSERT_TRUE(native.ClickValue({facet.prop}, value).ok());
    ASSERT_TRUE(sparql_only.ClickValue({facet.prop}, value).ok());
    ASSERT_EQ(native.current().ext, sparql_only.current().ext)
        << "diverged after " << facet.prop.iri;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsInvariantTest, ::testing::Range(1, 6));

// ---------- HIFUN translation equivalence on random data ----------

class RandomEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquivalenceTest, RandomQueriesAgreeAcrossStrategies) {
  rdf::Graph g;
  workload::ProductKgOptions opt;
  opt.laptops = 120;
  opt.companies = 7;
  opt.seed = static_cast<uint64_t>(GetParam()) * 1000 + 3;
  workload::GenerateProductKg(&g, opt);

  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  const std::string groupings[] = {"manufacturer", "USBPorts"};
  const hifun::AggOp ops[] = {hifun::AggOp::kSum, hifun::AggOp::kAvg,
                              hifun::AggOp::kCount, hifun::AggOp::kMin,
                              hifun::AggOp::kMax};
  for (int trial = 0; trial < 8; ++trial) {
    hifun::Query q;
    q.root_class = kEx + "Laptop";
    q.grouping =
        hifun::AttrExpr::Property(kEx + groupings[rng() % 2]);
    q.measuring = hifun::AttrExpr::Property(kEx + "price");
    q.ops = {ops[rng() % 5]};
    if (rng() % 2 == 0) {
      hifun::Restriction r;
      r.path = {kEx + "USBPorts"};
      r.op = ">=";
      r.value = rdf::Term::Integer(static_cast<int64_t>(1 + rng() % 4));
      q.group_restrictions.push_back(std::move(r));
    }

    hifun::Evaluator eval(g);
    auto direct = eval.Evaluate(q);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto sparql_text = translator::TranslateToSparql(q);
    ASSERT_TRUE(sparql_text.ok());
    auto via_sparql = sparql::ExecuteQueryString(&g, sparql_text.value());
    ASSERT_TRUE(via_sparql.ok()) << via_sparql.status().ToString();

    auto canon = [](const sparql::ResultTable& t) {
      std::map<std::string, double> out;
      for (size_t r = 0; r < t.num_rows(); ++r) {
        out[viz::DisplayTerm(t.at(r, 0))] =
            sparql::Value::FromTerm(t.at(r, 1)).AsNumeric().value_or(-1);
      }
      return out;
    };
    auto a = canon(direct.value());
    auto b = canon(via_sparql.value());
    ASSERT_EQ(a.size(), b.size()) << q.ToString();
    for (const auto& [key, value] : a) {
      ASSERT_TRUE(b.count(key)) << q.ToString() << " group " << key;
      EXPECT_NEAR(value, b.at(key), 1e-6) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace rdfa
