// Tests for the reduced query-builder baseline (the Table 3.5 comparator)
// and parser-robustness fuzz sweeps: random bytes into any parser must
// yield a Status, never a crash.

#include <gtest/gtest.h>

#include <random>

#include "baseline/simple_builder.h"
#include "hifun/hifun_parser.h"
#include "rdf/binary_io.h"
#include "rdf/ntriples.h"
#include "rdf/rdfs.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "viz/table_render.h"
#include "workload/csv_import.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;

// ---------------- baseline builder ----------------

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    rdf::MaterializeRdfsClosure(&g_);
  }
  rdf::Graph g_;
};

TEST_F(BaselineTest, ClassAndConstraintSelection) {
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  b.AddConstraint(kEx + "manufacturer", rdf::Term::Iri(kEx + "DELL"));
  auto res = b.Execute();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().num_rows(), 2u);
}

TEST_F(BaselineTest, RangeConstraint) {
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  b.AddRangeConstraint(kEx + "price", 850, std::nullopt);
  auto res = b.Execute();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().num_rows(), 2u);
}

TEST_F(BaselineTest, GroupByAndAggregate) {
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  b.SetGroupBy(kEx + "manufacturer");
  b.SetAggregate(hifun::AggOp::kMax, kEx + "price");
  auto res = b.Execute();
  ASSERT_TRUE(res.ok()) << res.status().ToString() << "\n" << b.BuildSparql();
  EXPECT_EQ(res.value().num_rows(), 2u);
}

TEST_F(BaselineTest, NoNeverEmptyGuarantee) {
  // The baseline happily produces an empty result — the limitation Table
  // 3.5's "never-empty" row captures.
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  b.AddConstraint(kEx + "manufacturer", rdf::Term::Iri(kEx + "Maxtor"));
  auto res = b.Execute();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().num_rows(), 0u);
}

TEST_F(BaselineTest, CandidatePropertiesHaveNoCounts) {
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  auto props = b.CandidateProperties();
  EXPECT_NE(std::find(props.begin(), props.end(), kEx + "price"), props.end());
  EXPECT_NE(std::find(props.begin(), props.end(), kEx + "manufacturer"),
            props.end());
  // Plain strings: by construction the API exposes no count information.
}

TEST_F(BaselineTest, ResetClearsState) {
  baseline::SimpleQueryBuilder b(&g_);
  b.SelectClass(kEx + "Laptop");
  b.AddConstraint(kEx + "manufacturer", rdf::Term::Iri(kEx + "DELL"));
  b.Reset();
  std::string sparql = b.BuildSparql();
  EXPECT_EQ(sparql.find("manufacturer"), std::string::npos);
}

// ---------------- parser fuzz sweeps ----------------

std::string RandomBytes(std::mt19937_64* rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>((*rng)() % 256));
  }
  return out;
}

std::string RandomTokens(std::mt19937_64* rng, size_t words) {
  static const char* kVocab[] = {
      "SELECT", "WHERE",  "{",      "}",     "?x",    "<urn:p>", "FILTER",
      "(",      ")",      "GROUP",  "BY",    "HAVING", "SUM",    "\"lit\"",
      ".",      ";",      ",",      "a",     "PREFIX", "ex:",    "UNION",
      "OPTIONAL", "^^",   "@en",    "42",    "3.5",    "/",      "+",
      "*",      "=",      ">=",     "!",     "||",     "MINUS",  "EXISTS",
  };
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    out += kVocab[(*rng)() % (sizeof(kVocab) / sizeof(kVocab[0]))];
    out += ' ';
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, ParsersNeverCrashOnGarbage) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  rdf::PrefixMap prefixes;
  for (int trial = 0; trial < 60; ++trial) {
    std::string input = (trial % 2 == 0)
                            ? RandomBytes(&rng, 1 + rng() % 120)
                            : RandomTokens(&rng, 1 + rng() % 30);
    // Every parser must return (not crash, not hang); result may be error.
    (void)sparql::ParseQuery(input);
    (void)hifun::ParseHifun(input, prefixes, "urn:x#");
    rdf::Graph g1, g2;
    (void)rdf::ParseNTriples(input, &g1);
    (void)rdf::ParseTurtle(input, &g2);
    (void)rdf::ParseNTriplesTerm(input);
    rdf::Graph g3;
    (void)workload::ParseCsv(input);
    (void)workload::ImportCsv(input, "urn:c#", &g3);
    rdf::Graph g4;
    (void)rdf::LoadBinary(input, &g4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 6));

TEST(FuzzTest, TruncatedValidInputsNeverCrash) {
  std::string sparql =
      "PREFIX ex: <http://e.org/>\nSELECT ?m (AVG(?p) AS ?a) WHERE { ?x "
      "ex:man ?m . ?x ex:price ?p . FILTER(?p > 1 && EXISTS { ?x a ex:L . }) "
      "} GROUP BY ?m HAVING (AVG(?p) > 2) ORDER BY DESC(?a) LIMIT 5";
  for (size_t cut = 0; cut < sparql.size(); ++cut) {
    (void)sparql::ParseQuery(std::string_view(sparql).substr(0, cut));
  }
  std::string turtle =
      "@prefix ex: <http://e.org/> .\nex:s a ex:C ; ex:p \"v\"@en , "
      "\"5\"^^ex:dt ; ex:q 3.5 .";
  for (size_t cut = 0; cut < turtle.size(); ++cut) {
    rdf::Graph g;
    (void)rdf::ParseTurtle(std::string_view(turtle).substr(0, cut), &g);
  }
  std::string hifun =
      "((takesPlaceAt x brand o delivers) / MONTH(hasDate) = 1, inQuantity / "
      ">= 2, SUM+AVG / > 1000) over Invoice";
  rdf::PrefixMap prefixes;
  for (size_t cut = 0; cut < hifun.size(); ++cut) {
    (void)hifun::ParseHifun(std::string_view(hifun).substr(0, cut), prefixes,
                            "urn:x#");
  }
}

}  // namespace
}  // namespace rdfa
