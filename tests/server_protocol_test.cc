// Conformance suite for the HTTP SPARQL endpoint, driven against an
// in-process server on an ephemeral port: GET/POST parity, percent-decoding
// (including '+' vs %20 and truncated escapes), golden JSON/TSV bodies
// byte-checked against direct Executor output, the status-code protocol
// (400/404/405/406/413/415/503/504), keep-alive pipelining, and the
// differential guarantee that the HTTP path and the in-process
// RequestHandler produce byte-identical responses.

#include "server/http_server.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "endpoint/endpoint.h"
#include "endpoint/request_handler.h"
#include "server/http_util.h"
#include "sparql/executor.h"
#include "sparql/results_io.h"
#include "workload/products.h"

namespace rdfa::server {
namespace {

constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

const char kLaptopQuery[] =
    "PREFIX ex: <http://www.ics.forth.gr/example#>\n"
    "SELECT ?l ?p WHERE { ?l ex:price ?p . }";

class ServerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    endpoint_ = std::make_unique<endpoint::SimulatedEndpoint>(
        &g_, endpoint::LatencyProfile::Local(), /*enable_cache=*/true);
    endpoint::AdmissionOptions adm;
    adm.base_timeout_ms = 0;  // the HTTP timeout cap governs
    endpoint_->set_admission(adm);
    handler_ = std::make_unique<endpoint::RequestHandler>(
        endpoint_.get(), /*max_timeout_ms=*/30'000);
    HttpServerOptions opts;
    opts.port = 0;
    opts.worker_threads = 3;
    opts.max_body_bytes = 64 * 1024;
    opts.read_timeout_ms = 500;  // stalled-request tests answer 408 fast
    server_ = std::make_unique<HttpServer>(handler_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  HttpClient Client() {
    HttpClient c;
    EXPECT_TRUE(c.Connect("127.0.0.1", server_->port()));
    return c;
  }

  std::string SparqlTarget(const std::string& query,
                           const std::string& extra = "") {
    return "/sparql?query=" + PercentEncode(query) + extra;
  }

  rdf::Graph g_;
  std::unique_ptr<endpoint::SimulatedEndpoint> endpoint_;
  std::unique_ptr<endpoint::RequestHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerProtocolTest, GetAndPostVariantsAgreeByteForByte) {
  HttpClient c = Client();
  HttpClient::Response get, form, raw;
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &get));
  ASSERT_TRUE(c.Post("/sparql", "application/x-www-form-urlencoded",
                     "query=" + PercentEncode(kLaptopQuery), &form));
  ASSERT_TRUE(c.Post("/sparql", "application/sparql-query", kLaptopQuery,
                     &raw));
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(form.status, 200);
  EXPECT_EQ(raw.status, 200);
  EXPECT_EQ(get.Header("content-type"), "application/sparql-results+json");
  EXPECT_FALSE(get.body.empty());
  EXPECT_EQ(get.body, form.body);
  EXPECT_EQ(get.body, raw.body);
}

TEST_F(ServerProtocolTest, JsonBodyMatchesDirectExecutorOutput) {
  auto direct = sparql::ExecuteQueryString(&g_, kLaptopQuery);
  ASSERT_TRUE(direct.ok());
  HttpClient c = Client();
  HttpClient::Response resp;
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &resp));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, sparql::WriteResultsJson(direct.value()));
}

TEST_F(ServerProtocolTest, TsvBodyMatchesDirectExecutorOutput) {
  auto direct = sparql::ExecuteQueryString(&g_, kLaptopQuery);
  ASSERT_TRUE(direct.ok());
  HttpClient c = Client();
  // Once via Accept, once via the format= override; both must be the
  // executor's own TSV bytes.
  HttpClient::Response via_accept, via_param;
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &via_accept,
                    "text/tab-separated-values"));
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery, "&format=tsv"), &via_param));
  ASSERT_EQ(via_accept.status, 200);
  ASSERT_EQ(via_param.status, 200);
  EXPECT_EQ(via_accept.Header("content-type"), "text/tab-separated-values");
  EXPECT_EQ(via_accept.body, sparql::WriteResultsTsv(direct.value()));
  EXPECT_EQ(via_param.body, via_accept.body);
}

TEST_F(ServerProtocolTest, PlusAndPercent20BothDecodeToSpace) {
  std::string query = std::string(kPfx) +
                      "SELECT ?l WHERE { ?l ex:price ?p . }";
  // Build the same query twice: spaces as '+', then as %20.
  std::string plus, pct;
  for (char ch : query) {
    if (ch == ' ') {
      plus += '+';
      pct += "%20";
    } else if (ch == '\n') {
      plus += "%0A";
      pct += "%0A";
    } else {
      std::string enc = PercentEncode(std::string(1, ch));
      plus += enc;
      pct += enc;
    }
  }
  HttpClient c = Client();
  HttpClient::Response r_plus, r_pct;
  ASSERT_TRUE(c.Get("/sparql?query=" + plus, &r_plus));
  ASSERT_TRUE(c.Get("/sparql?query=" + pct, &r_pct));
  EXPECT_EQ(r_plus.status, 200);
  EXPECT_EQ(r_pct.status, 200);
  EXPECT_EQ(r_plus.body, r_pct.body);
}

TEST_F(ServerProtocolTest, TruncatedPercentEscapeIs400) {
  HttpClient c = Client();
  for (const char* target :
       {"/sparql?query=%x", "/sparql?query=%", "/sparql?query=%2"}) {
    HttpClient::Response resp;
    ASSERT_TRUE(c.Get(target, &resp)) << target;
    EXPECT_EQ(resp.status, 400) << target;
    EXPECT_NE(resp.body.find("percent-encoding"), std::string::npos);
  }
}

TEST_F(ServerProtocolTest, UnparsableQueryIs400WithErrorDocument) {
  HttpClient c = Client();
  HttpClient::Response resp;
  ASSERT_TRUE(c.Get(SparqlTarget("THIS IS NOT SPARQL"), &resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_EQ(resp.Header("content-type"), "application/json");
  EXPECT_NE(resp.body.find("\"code\":\"ParseError\""), std::string::npos);
}

TEST_F(ServerProtocolTest, ShedRequestIs503) {
  endpoint::AdmissionOptions tight;
  tight.max_in_flight = 1;
  tight.max_queue = 0;
  tight.base_timeout_ms = 0;
  endpoint_->set_admission(tight);
  // Hold the only slot so the HTTP request must shed.
  auto slot = endpoint_->Admit();
  ASSERT_TRUE(slot.ok());
  HttpClient c = Client();
  HttpClient::Response resp;
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &resp));
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos);
}

TEST_F(ServerProtocolTest, ExpiredDeadlineIs504) {
  HttpClient c = Client();
  HttpClient::Response resp;
  // A one-microsecond budget has expired before execution reaches its
  // first cooperative check.
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery, "&timeout=0.001"), &resp));
  EXPECT_EQ(resp.status, 504);
  EXPECT_NE(resp.body.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos);
}

TEST_F(ServerProtocolTest, KeepAlivePipelinedRequestsAnswerInOrder) {
  HttpClient c = Client();
  std::string req1 = "GET " + SparqlTarget(kLaptopQuery) +
                     " HTTP/1.1\r\nHost: t\r\n\r\n";
  std::string req2 = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(c.SendRaw(req1 + req2));  // both requests in one write
  HttpClient::Response first, second;
  ASSERT_TRUE(c.ReadResponse(&first));
  ASSERT_TRUE(c.ReadResponse(&second));
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.Header("content-type"), "application/sparql-results+json");
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body, "ok\n");
  // The connection survived both: a third request still works.
  HttpClient::Response third;
  ASSERT_TRUE(c.Get("/healthz", &third));
  EXPECT_EQ(third.status, 200);
}

TEST_F(ServerProtocolTest, OversizedBodyIs413) {
  HttpClient c = Client();
  HttpClient::Response resp;
  std::string huge(65 * 1024, 'x');  // over the fixture's 64 KiB cap
  ASSERT_TRUE(c.Post("/sparql", "application/sparql-query", huge, &resp));
  EXPECT_EQ(resp.status, 413);
  EXPECT_FALSE(resp.keep_alive);
}

TEST_F(ServerProtocolTest, ProtocolErrorsCarryTheRightStatus) {
  struct Case {
    std::string raw;
    int status;
  };
  const Case cases[] = {
      {"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n", 404},
      {"DELETE /sparql HTTP/1.1\r\nHost: t\r\n\r\n", 405},
      {"GET /sparql HTTP/1.1\r\nHost: t\r\n\r\n", 400},  // missing query=
      {"GET /sparql?query=x HTTP/2.0\r\nHost: t\r\n\r\n", 505},
      {"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: text/weird\r\n"
       "Content-Length: 1\r\n\r\nx",
       415},
  };
  for (const Case& tc : cases) {
    HttpClient c = Client();
    ASSERT_TRUE(c.SendRaw(tc.raw));
    HttpClient::Response resp;
    ASSERT_TRUE(c.ReadResponse(&resp)) << tc.raw;
    EXPECT_EQ(resp.status, tc.status) << tc.raw;
  }
}

TEST_F(ServerProtocolTest, UnsupportedAcceptIs406) {
  HttpClient c = Client();
  HttpClient::Response resp;
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &resp, "application/pdf"));
  EXPECT_EQ(resp.status, 406);
}

TEST_F(ServerProtocolTest, HealthMetricsAndExplainServe) {
  HttpClient c = Client();
  HttpClient::Response health, metrics, explain;
  ASSERT_TRUE(c.Get("/healthz", &health));
  EXPECT_EQ(health.status, 200);
  ASSERT_TRUE(c.Get(SparqlTarget(kLaptopQuery), &metrics));  // serve one
  ASSERT_TRUE(c.Get("/metrics", &metrics));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("rdfa_http_requests_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("rdfa_queries_total"), std::string::npos);
  ASSERT_TRUE(c.Get("/explain?query=" + PercentEncode(kLaptopQuery),
                    &explain));
  EXPECT_EQ(explain.status, 200);
  EXPECT_NE(explain.body.find("\"bgps\""), std::string::npos);
}

// The differential guarantee behind the shared RequestHandler: pushing a
// request through the in-process pipeline and over a live socket yields
// byte-identical bodies and the same status, for every outcome class.
TEST_F(ServerProtocolTest, HttpAndInProcessPipelinesAreByteIdentical) {
  struct Case {
    std::string query;
    endpoint::ResultFormat format;
    std::string accept;
  };
  const Case cases[] = {
      {kLaptopQuery, endpoint::ResultFormat::kJson, ""},
      {kLaptopQuery, endpoint::ResultFormat::kTsv,
       "text/tab-separated-values"},
      {std::string(kPfx) +
           "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . "
           "?m ex:origin ?c . }",
       endpoint::ResultFormat::kCsv, "text/csv"},
      {"SELECT nonsense", endpoint::ResultFormat::kJson, ""},
  };
  for (const Case& tc : cases) {
    endpoint::EndpointRequest er;
    er.query = tc.query;
    er.format = tc.format;
    endpoint::EndpointResponse direct = handler_->Handle(er);

    HttpClient c = Client();
    HttpClient::Response over_http;
    ASSERT_TRUE(c.Get(SparqlTarget(tc.query), &over_http, tc.accept));
    EXPECT_EQ(over_http.status, direct.http_status) << tc.query;
    EXPECT_EQ(over_http.body, direct.body) << tc.query;
    EXPECT_EQ(over_http.Header("content-type"), direct.content_type);
  }
  // Outcome counters agree with what was served: every case above entered
  // the endpoint exactly twice — once per path — and none shed or timed
  // out on either path.
  EXPECT_EQ(endpoint_->Stats().shed, 0u);
  EXPECT_EQ(endpoint_->Stats().timed_out, 0u);
  EXPECT_EQ(endpoint_->queries_served(), 2u * 4u);
}

}  // namespace
}  // namespace rdfa::server
