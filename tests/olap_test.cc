#include "analytics/olap.h"

#include <gtest/gtest.h>

#include <map>

#include "sparql/value.h"
#include "viz/table_render.h"
#include "workload/invoices.h"

namespace rdfa::analytics {
namespace {

const std::string kInv = workload::kInvoiceNs;

class OlapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildInvoicesExample(&g_);
    session_ = std::make_unique<AnalyticsSession>(&g_);
    ASSERT_TRUE(session_->fs().ClickClass(kInv + "Invoice").ok());

    // Time dimension: day (hasDate) -> month -> year.
    Dimension time;
    time.name = "time";
    time.levels = {
        {"date", {kInv + "hasDate"}, ""},
        {"month", {kInv + "hasDate"}, "MONTH"},
        {"year", {kInv + "hasDate"}, "YEAR"},
    };
    // Product dimension: product -> brand (path extension).
    Dimension product;
    product.name = "product";
    product.levels = {
        {"product", {kInv + "delivers"}, ""},
        {"brand", {kInv + "delivers", kInv + "brand"}, ""},
    };
    MeasureSpec measure;
    measure.path = {kInv + "inQuantity"};
    measure.ops = {hifun::AggOp::kSum};
    view_ = std::make_unique<OlapView>(
        session_.get(), std::vector<Dimension>{time, product}, measure);
  }

  std::map<std::string, double> Rows(const sparql::ResultTable& t,
                                     size_t label_col, size_t value_col) {
    std::map<std::string, double> out;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      out[viz::DisplayTerm(t.at(r, label_col))] =
          *sparql::Value::FromTerm(t.at(r, value_col)).AsNumeric();
    }
    return out;
  }

  rdf::Graph g_;
  std::unique_ptr<AnalyticsSession> session_;
  std::unique_ptr<OlapView> view_;
};

TEST_F(OlapTest, FinestLevelCube) {
  auto af = view_->Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // 7 invoices with distinct dates x products: 7 cells.
  EXPECT_EQ(af.value().table().num_rows(), 7u);
}

TEST_F(OlapTest, RollUpTimeToMonth) {
  ASSERT_TRUE(view_->RollUp("time").ok());
  EXPECT_EQ(view_->LevelOf("time"), 1);
  auto af = view_->Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // Months 1..3 x products p1/p2, but only combinations with data:
  // Jan: p1 (d1 200 + d3 200), p2 (d2 100); Feb: p2 (d4+d6 800), p1 (d5 100);
  // Mar: p1 (d7 100) -> 5 cells.
  EXPECT_EQ(af.value().table().num_rows(), 5u);
}

TEST_F(OlapTest, RollUpBeyondTopIsError) {
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("time").ok());
  EXPECT_FALSE(view_->RollUp("time").ok());
}

TEST_F(OlapTest, DrillDownReversesRollUp) {
  // Fig 7.2: roll-up then drill-down returns to the finer cube.
  ASSERT_TRUE(view_->RollUp("time").ok());
  auto coarse = view_->Materialize();
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(view_->DrillDown("time").ok());
  auto fine = view_->Materialize();
  ASSERT_TRUE(fine.ok());
  EXPECT_GT(fine.value().table().num_rows(),
            coarse.value().table().num_rows());
  EXPECT_FALSE(view_->DrillDown("time").ok());  // already finest
}

TEST_F(OlapTest, RollUpProductToBrand) {
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("time").ok());  // year
  ASSERT_TRUE(view_->RollUp("product").ok());
  auto af = view_->Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // One year (2021) x two brands.
  ASSERT_EQ(af.value().table().num_rows(), 2u);
  auto rows = Rows(af.value().table(), 1, 2);
  EXPECT_EQ(rows["BrandA"], 600);
  EXPECT_EQ(rows["BrandB"], 900);
}

TEST_F(OlapTest, SliceFixesDimension) {
  ASSERT_TRUE(view_->RollUp("product").ok());  // brand level
  ASSERT_TRUE(view_->Slice("product", rdf::Term::Iri(kInv + "BrandA")).ok());
  EXPECT_EQ(view_->LevelOf("product"), -1);
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("time").ok());  // year
  auto af = view_->Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // BrandA only, grouped by year: one row of 600.
  ASSERT_EQ(af.value().table().num_rows(), 1u);
  EXPECT_EQ(*sparql::Value::FromTerm(af.value().table().at(0, 1)).AsNumeric(),
            600);
}

TEST_F(OlapTest, DiceRestrictsRange) {
  // Dice on the measure path is not a dimension; dice on quantity through a
  // separate numeric dimension instead: add it via the fs range filter.
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("product").ok());
  // Restrict to invoices with quantity in [150, 450].
  ASSERT_TRUE(
      session_->fs().ClickRange({{kInv + "inQuantity"}}, 150, 450).ok());
  auto af = view_->Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  auto rows = Rows(af.value().table(), 1, 2);
  // Remaining: d1 200, d3 200, d4 400, d6 400 -> BrandA 400, BrandB 800.
  EXPECT_EQ(rows["BrandA"], 400);
  EXPECT_EQ(rows["BrandB"], 800);
}

TEST_F(OlapTest, DiceOnDimensionLevel) {
  Dimension qty;
  qty.name = "qty";
  qty.levels = {{"quantity", {kInv + "inQuantity"}, ""}};
  MeasureSpec measure;
  measure.ops = {hifun::AggOp::kCount};
  AnalyticsSession s2(&g_);
  ASSERT_TRUE(s2.fs().ClickClass(kInv + "Invoice").ok());
  OlapView v2(&s2, {qty}, measure);
  ASSERT_TRUE(v2.Dice("qty", 100, 200).ok());
  auto af = v2.Materialize();
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // Quantities 100 (x3) and 200 (x2): two groups.
  EXPECT_EQ(af.value().table().num_rows(), 2u);
}

TEST_F(OlapTest, PivotReordersColumns) {
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("time").ok());
  ASSERT_TRUE(view_->RollUp("product").ok());
  auto before = view_->Materialize();
  ASSERT_TRUE(before.ok());
  view_->Pivot();
  auto after = view_->Materialize();
  ASSERT_TRUE(after.ok());
  // Same cells, transposed key order: first column now holds brands.
  auto rows = Rows(after.value().table(), 0, 2);
  EXPECT_EQ(rows["BrandA"], 600);
  EXPECT_EQ(rows["BrandB"], 900);
}

TEST_F(OlapTest, SliceOnDerivedLevelUnsupported) {
  ASSERT_TRUE(view_->RollUp("time").ok());  // month (derived)
  EXPECT_EQ(view_->Slice("time", rdf::Term::Integer(1)).code(),
            StatusCode::kUnsupported);
}

TEST_F(OlapTest, UnknownDimensionErrors) {
  EXPECT_FALSE(view_->RollUp("nope").ok());
  EXPECT_FALSE(view_->SetLevel("nope", 0).ok());
}

}  // namespace
}  // namespace rdfa::analytics
