#include "analytics/fco.h"

#include <gtest/gtest.h>

#include "hifun/context.h"
#include "hifun/evaluator.h"
#include "rdf/turtle.h"
#include "sparql/value.h"

namespace rdfa::analytics {
namespace {

constexpr char kNs[] = "http://e.org/";

class FcoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small graph with missing values and multi-valued properties:
    //  c1 has 2 founders, c2 has 1, c3 has none.
    Status st = rdf::ParseTurtle(R"(
      @prefix ex: <http://e.org/> .
      ex:c1 a ex:Company ; ex:founder ex:p1 , ex:p2 ; ex:origin ex:US .
      ex:c2 a ex:Company ; ex:founder ex:p3 ; ex:origin ex:FR .
      ex:c3 a ex:Company ; ex:origin ex:US .
      ex:p1 ex:nationality ex:US .
      ex:p2 ex:nationality ex:FR .
      ex:p3 ex:nationality ex:FR .
    )",
                                 &g_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  rdf::Term ValueOf(const std::string& entity, const std::string& feature) {
    auto matches = g_.Match(g_.terms().FindIri(kNs + entity),
                            g_.terms().FindIri(kNs + feature), rdf::kNoTermId);
    EXPECT_EQ(matches.size(), 1u) << entity << " " << feature;
    return matches.empty() ? rdf::Term() : g_.terms().Get(matches[0].o);
  }

  rdf::Graph g_;
};

TEST_F(FcoTest, Fco1ValueCopiesFunctionalOnly) {
  auto added = FcoValue(&g_, std::string(kNs) + "Company",
                        std::string(kNs) + "founder",
                        std::string(kNs) + "theFounder");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // Only c2 gets a copy: c1 is multi-valued, c3 missing.
  EXPECT_EQ(added.value(), 1u);
  EXPECT_EQ(ValueOf("c2", "theFounder").lexical(), std::string(kNs) + "p3");
}

TEST_F(FcoTest, Fco2Exists) {
  auto added =
      FcoExists(&g_, std::string(kNs) + "Company", std::string(kNs) + "founder",
                std::string(kNs) + "hasFounder");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 3u);
  EXPECT_EQ(ValueOf("c1", "hasFounder").lexical(), "1");
  EXPECT_EQ(ValueOf("c3", "hasFounder").lexical(), "0");
}

TEST_F(FcoTest, Fco3Count) {
  auto added =
      FcoCount(&g_, std::string(kNs) + "Company", std::string(kNs) + "founder",
               std::string(kNs) + "founderCount");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(ValueOf("c1", "founderCount").lexical(), "2");
  EXPECT_EQ(ValueOf("c2", "founderCount").lexical(), "1");
  EXPECT_EQ(ValueOf("c3", "founderCount").lexical(), "0");
}

TEST_F(FcoTest, Fco4ValuesAsFeatures) {
  auto added = FcoValuesAsFeatures(&g_, std::string(kNs) + "Company",
                                   std::string(kNs) + "founder",
                                   std::string(kNs) + "founder_");
  ASSERT_TRUE(added.ok());
  // 3 founders x 3 companies = 9 boolean features.
  EXPECT_EQ(added.value(), 9u);
  EXPECT_EQ(ValueOf("c1", "founder_p1").lexical(), "1");
  EXPECT_EQ(ValueOf("c1", "founder_p3").lexical(), "0");
  EXPECT_EQ(ValueOf("c2", "founder_p3").lexical(), "1");
}

TEST_F(FcoTest, Fco5Degree) {
  auto added = FcoDegree(&g_, std::string(kNs) + "Company",
                         std::string(kNs) + "degree");
  ASSERT_TRUE(added.ok());
  // c1: 4 triples as subject (a, founder x2, origin), 0 as object.
  EXPECT_EQ(ValueOf("c1", "degree").lexical(), "4");
  EXPECT_EQ(ValueOf("c3", "degree").lexical(), "2");
}

TEST_F(FcoTest, Fco6AverageDegree) {
  auto added = FcoAverageDegree(&g_, std::string(kNs) + "Company",
                                std::string(kNs) + "avgDeg");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 3u);
  auto v = sparql::Value::FromTerm(ValueOf("c2", "avgDeg")).AsNumeric();
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(*v, 0);
}

TEST_F(FcoTest, Fco7PathExists) {
  auto added = FcoPathExists(&g_, std::string(kNs) + "Company",
                             std::string(kNs) + "founder",
                             std::string(kNs) + "nationality",
                             std::string(kNs) + "founderHasNationality");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(ValueOf("c1", "founderHasNationality").lexical(), "1");
  EXPECT_EQ(ValueOf("c3", "founderHasNationality").lexical(), "0");
}

TEST_F(FcoTest, Fco8PathCount) {
  auto added = FcoPathCount(&g_, std::string(kNs) + "Company",
                            std::string(kNs) + "founder",
                            std::string(kNs) + "nationality",
                            std::string(kNs) + "founderNatCount");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(ValueOf("c1", "founderNatCount").lexical(), "2");  // US and FR
  EXPECT_EQ(ValueOf("c2", "founderNatCount").lexical(), "1");
}

TEST_F(FcoTest, Fco9MaxFreqMakesPathFunctional) {
  // c1's founders have nationalities US and FR (tie: term order breaks it);
  // add a third founder to make FR strictly most frequent.
  g_.Add(rdf::Term::Iri(std::string(kNs) + "c1"),
         rdf::Term::Iri(std::string(kNs) + "founder"),
         rdf::Term::Iri(std::string(kNs) + "p3"));
  auto added = FcoPathValueMaxFreq(&g_, std::string(kNs) + "Company",
                                   std::string(kNs) + "founder",
                                   std::string(kNs) + "nationality",
                                   std::string(kNs) + "mainNationality");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(ValueOf("c1", "mainNationality").lexical(),
            std::string(kNs) + "FR");
}

TEST_F(FcoTest, Fco1ViaConstructMatchesDirect) {
  // §4.1.2: the same transformation expressed as a CONSTRUCT query with a
  // HAVING(COUNT = 1) subquery.
  rdf::Graph via_construct;
  rdf::Graph direct;
  for (rdf::Graph* g : {&via_construct, &direct}) {
    ASSERT_TRUE(rdf::ParseTurtle(R"(
      @prefix ex: <http://e.org/> .
      ex:c1 a ex:Company ; ex:founder ex:p1 , ex:p2 .
      ex:c2 a ex:Company ; ex:founder ex:p3 .
      ex:c3 a ex:Company .
    )",
                                 g)
                    .ok());
  }
  auto a = FcoValueViaConstruct(&via_construct, std::string(kNs) + "Company",
                                std::string(kNs) + "founder",
                                std::string(kNs) + "theFounder");
  auto b = FcoValue(&direct, std::string(kNs) + "Company",
                    std::string(kNs) + "founder",
                    std::string(kNs) + "theFounder");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), 1u);  // only c2 is functional
  rdf::TermId c2 = via_construct.terms().FindIri(std::string(kNs) + "c2");
  rdf::TermId f =
      via_construct.terms().FindIri(std::string(kNs) + "theFounder");
  rdf::TermId p3 = via_construct.terms().FindIri(std::string(kNs) + "p3");
  EXPECT_TRUE(via_construct.Contains(c2, f, p3));
}

TEST_F(FcoTest, Fco8ViaConstructAgreesOnPositiveCounts) {
  auto direct = FcoPathCount(&g_, std::string(kNs) + "Company",
                             std::string(kNs) + "founder",
                             std::string(kNs) + "nationality",
                             std::string(kNs) + "directCount");
  ASSERT_TRUE(direct.ok());
  auto via = FcoPathCountViaConstruct(&g_, std::string(kNs) + "Company",
                                      std::string(kNs) + "founder",
                                      std::string(kNs) + "nationality",
                                      std::string(kNs) + "constructCount");
  ASSERT_TRUE(via.ok()) << via.status().ToString();
  // Entities with at least one path: the two features agree.
  for (const char* entity : {"c1", "c2"}) {
    EXPECT_EQ(ValueOf(entity, "directCount").lexical(),
              ValueOf(entity, "constructCount").lexical())
        << entity;
  }
  // c3 has no founder: direct emits 0, the CONSTRUCT variant emits nothing.
  rdf::TermId c3 = g_.terms().FindIri(std::string(kNs) + "c3");
  rdf::TermId f = g_.terms().FindIri(std::string(kNs) + "constructCount");
  EXPECT_EQ(g_.CountMatch(c3, f, rdf::kNoTermId), 0u);
}

TEST_F(FcoTest, MissingPropertyIsNotFound) {
  auto added = FcoCount(&g_, std::string(kNs) + "Company",
                        std::string(kNs) + "nosuch",
                        std::string(kNs) + "f");
  EXPECT_EQ(added.status().code(), StatusCode::kNotFound);
}

TEST_F(FcoTest, FcoRepairEnablesHifun) {
  // §4.2.6 end-to-end: founder is multi-valued, so grouping by
  // founder.nationality fails; after FCO9 the feature is functional and the
  // query runs.
  hifun::Query q;
  q.root_class = std::string(kNs) + "Company";
  q.grouping =
      hifun::AttrExpr::Compose({hifun::AttrExpr::Property(std::string(kNs) + "founder"),
                                hifun::AttrExpr::Property(std::string(kNs) + "nationality")});
  q.measuring = hifun::AttrExpr::Identity();
  q.ops = {hifun::AggOp::kCount};
  hifun::Evaluator eval(g_);
  EXPECT_EQ(eval.Evaluate(q).status().code(), StatusCode::kPrecondition);

  ASSERT_TRUE(FcoPathValueMaxFreq(&g_, std::string(kNs) + "Company",
                                  std::string(kNs) + "founder",
                                  std::string(kNs) + "nationality",
                                  std::string(kNs) + "mainNat")
                  .ok());
  hifun::Query q2;
  q2.root_class = std::string(kNs) + "Company";
  q2.grouping = hifun::AttrExpr::Property(std::string(kNs) + "mainNat");
  q2.measuring = hifun::AttrExpr::Identity();
  q2.ops = {hifun::AggOp::kCount};
  auto res = eval.Evaluate(q2);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // c3 has no founder and is skipped; c1 and c2 are grouped by their main
  // nationality (1 or 2 groups depending on the tie-break on c1).
  size_t total = 0;
  for (size_t r = 0; r < res.value().num_rows(); ++r) {
    total += static_cast<size_t>(
        *sparql::Value::FromTerm(
             res.value().at(r, res.value().num_columns() - 1))
             .AsNumeric());
  }
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace rdfa::analytics
