#include <gtest/gtest.h>

#include "hifun/context.h"
#include "rdf/ntriples.h"
#include "sparql/executor.h"
#include "workload/csv_import.h"
#include "workload/invoices.h"
#include "workload/products.h"

namespace rdfa::workload {
namespace {

TEST(ProductsTest, RunningExampleCounts) {
  rdf::Graph g;
  BuildRunningExample(&g);
  // Fig 5.4 headline counts (before closure): 3 laptops, 4 companies,
  // 3 persons, 3 drives, 5 locations.
  rdf::TermId type = g.terms().FindIri(rdf::rdfns::kType);
  auto count = [&](const char* cls) {
    return g.CountMatch(rdf::kNoTermId, type,
                        g.terms().FindIri(std::string(kExampleNs) + cls));
  };
  EXPECT_EQ(count("Laptop"), 3u);
  EXPECT_EQ(count("Company"), 4u);
  EXPECT_EQ(count("Person"), 3u);
  EXPECT_EQ(count("Country"), 3u);
  EXPECT_EQ(count("Continent"), 2u);
}

TEST(ProductsTest, GeneratorIsDeterministic) {
  rdf::Graph a, b;
  ProductKgOptions opt;
  opt.laptops = 100;
  GenerateProductKg(&a, opt);
  GenerateProductKg(&b, opt);
  EXPECT_EQ(rdf::WriteNTriples(a), rdf::WriteNTriples(b));
}

TEST(ProductsTest, GeneratorScales) {
  rdf::Graph g;
  ProductKgOptions opt;
  opt.laptops = 500;
  size_t added = GenerateProductKg(&g, opt);
  // At least 5 triples per laptop plus companies/persons/countries.
  EXPECT_GT(added, opt.laptops * 5);
}

TEST(ProductsTest, GeneratedAttributesAreFunctional) {
  rdf::Graph g;
  ProductKgOptions opt;
  opt.laptops = 200;
  GenerateProductKg(&g, opt);
  hifun::AnalysisContext ctx(g, std::string(kExampleNs) + "Laptop");
  for (const char* attr : {"price", "USBPorts", "releaseDate", "manufacturer",
                           "hardDrive"}) {
    auto rep = ctx.Check(g, std::string(kExampleNs) + attr);
    EXPECT_TRUE(rep.functional()) << attr;
  }
}

TEST(InvoicesTest, PaperTotalsHold) {
  rdf::Graph g;
  BuildInvoicesExample(&g);
  auto res = sparql::ExecuteQueryString(
      &g,
      "PREFIX inv: <http://www.ics.forth.gr/invoices#>\n"
      "SELECT (SUM(?q) AS ?tot) WHERE { ?i inv:inQuantity ?q . }");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().at(0, 0).lexical(), "1500");
}

TEST(InvoicesTest, GeneratorRespectsOptions) {
  rdf::Graph g;
  InvoicesOptions opt;
  opt.invoices = 100;
  opt.branches = 4;
  GenerateInvoices(&g, opt);
  rdf::TermId type = g.terms().FindIri(rdf::rdfns::kType);
  EXPECT_EQ(g.CountMatch(rdf::kNoTermId, type,
                         g.terms().FindIri(std::string(kInvoiceNs) + "Invoice")),
            100u);
  EXPECT_EQ(g.CountMatch(rdf::kNoTermId, type,
                         g.terms().FindIri(std::string(kInvoiceNs) + "Branch")),
            4u);
}

TEST(CsvTest, ParseBasic) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n4,\"x,y\",6\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[2][1], "x,y");
}

TEST(CsvTest, QuotedQuotes) {
  auto rows = ParseCsv("h\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[1][0], "say \"hi\"");
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n").ok());
  rdf::Graph g;
  EXPECT_EQ(ImportCsv("onlyheader\n", "urn:x#", &g).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ImportCsv("a,b\n1\n", "urn:x#", &g).status().code(),
            StatusCode::kParseError);
}

TEST(CsvTest, ImportTypesCells) {
  rdf::Graph g;
  auto added = ImportCsv(
      "country,cases,rate,name\nGR,100,1.5,Greece\nIT,200,2.5,Italy\n",
      "urn:covid#", &g);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // 2 rows x (1 type + 4 cells) = 10.
  EXPECT_EQ(added.value(), 10u);
  EXPECT_NE(g.terms().Find(rdf::Term::Integer(100)), rdf::kNoTermId);
  EXPECT_NE(g.terms().Find(rdf::Term::Double(1.5)), rdf::kNoTermId);
  EXPECT_NE(g.terms().Find(rdf::Term::Literal("Greece")), rdf::kNoTermId);
}

TEST(CsvTest, ImportedDataIsQueryable) {
  rdf::Graph g;
  ASSERT_TRUE(
      ImportCsv("country,cases\nGR,100\nIT,200\nFR,150\n", "urn:covid#", &g)
          .ok());
  auto res = sparql::ExecuteQueryString(
      &g,
      "SELECT (SUM(?c) AS ?total) WHERE { ?r <urn:covid#cases> ?c . }");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().at(0, 0).lexical(), "450");
}

}  // namespace
}  // namespace rdfa::workload
