// Coverage for planner v2: the six-permutation index layer (secondary
// in-memory permutations, sort-aware 4-arg ChoosePerm, the streaming
// MergeCursor on both storage backends), the DP join-order search and plan
// annotation, and the merge-join execution path — byte-identity against the
// forced NLJ/hash strategies across seeds, thread counts and backends,
// sideways-information-passing ablation, deterministic cancellation trips
// inside the sieve-build and merge-advance loops, and plan-shape capture /
// replay reproducibility.

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/query_context.h"
#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "sparql/bgp.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/plan_cache.h"
#include "sparql/planner.h"
#include "workload/products.h"

namespace rdfa {
namespace {

using rdf::Graph;
using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

const std::string kEx = workload::kExampleNs;
constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

std::unique_ptr<Graph> BuildKg(uint64_t seed, size_t laptops) {
  auto g = std::make_unique<Graph>();
  workload::ProductKgOptions opt;
  opt.laptops = laptops;
  opt.seed = seed;
  workload::GenerateProductKg(g.get(), opt);
  return g;
}

// Round-trips `g` through an RDFA3 snapshot and opens it as a mapped graph.
std::unique_ptr<Graph> OpenMapped(const Graph& g, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "planner_v2_" + tag +
                           ".rdfa";
  EXPECT_TRUE(rdf::SaveBinaryFile(g, path).ok());
  auto mapped = rdf::OpenMappedSnapshot(path);
  EXPECT_TRUE(mapped.ok()) << mapped.status().message();
  return std::move(mapped).value();
}

struct RunOpts {
  int threads = 1;
  sparql::JoinStrategy strategy = sparql::JoinStrategy::kAdaptive;
  bool use_dp = false;
  bool sip = true;
  bool reorder = true;
};

std::string RunTsv(Graph* g, const std::string& q, const RunOpts& o,
                   sparql::ExecStats* stats = nullptr) {
  auto parsed = sparql::ParseQuery(q);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << q;
  if (!parsed.ok()) return "";
  sparql::Executor exec(g, o.reorder);
  exec.set_thread_count(o.threads);
  exec.set_join_strategy(o.strategy);
  exec.set_use_dp(o.use_dp);
  exec.set_sip(o.sip);
  auto res = exec.Execute(parsed.value());
  EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nquery: " << q;
  if (stats != nullptr) *stats = exec.stats();
  return res.ok() ? res.value().ToTsv() : std::string();
}

std::vector<std::string> SortedLines(const std::string& tsv) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < tsv.size()) {
    size_t nl = tsv.find('\n', start);
    if (nl == std::string::npos) nl = tsv.size();
    lines.push_back(tsv.substr(start, nl - start));
    start = nl + 1;
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

// "?x" compiles to a variable, anything else to an ex: IRI constant.
sparql::CompiledPattern Pat(const Graph& g, sparql::VarTable* vars,
                            const std::string& s, const std::string& p,
                            const std::string& o) {
  auto node = [&](const std::string& n) {
    return n[0] == '?' ? sparql::NodePattern::Var(n.substr(1))
                       : sparql::NodePattern::Const(Term::Iri(kEx + n));
  };
  sparql::TriplePattern tp{node(s), node(p), node(o)};
  sparql::CompiledPattern cp = sparql::CompileTriple(tp, vars, g);
  EXPECT_FALSE(cp.impossible) << s << " " << p << " " << o;
  return cp;
}

// ---- 4-arg ChoosePerm ----------------------------------------------------

TEST(ChoosePermOrderTest, PrefersRequestedSortLaneAmongLongestPrefixes) {
  // No bound lane: the preference picks the permutation sorted on it.
  EXPECT_EQ(Graph::ChoosePerm(false, false, false, 0), Graph::kPermSPO);
  EXPECT_EQ(Graph::ChoosePerm(false, false, false, 1), Graph::kPermPOS);
  EXPECT_EQ(Graph::ChoosePerm(false, false, false, 2), Graph::kPermOSP);
  // p bound: POS and PSO tie on prefix; the next lane decides.
  EXPECT_EQ(Graph::ChoosePerm(false, true, false, 2), Graph::kPermPOS);
  EXPECT_EQ(Graph::ChoosePerm(false, true, false, 0), Graph::kPermPSO);
  // s bound, sort on o: only the secondary SOP provides (s, o, ...).
  EXPECT_EQ(Graph::ChoosePerm(true, false, false, 2), Graph::kPermSOP);
  // p+o bound, sort on s: POS and OPS both satisfy; the primary wins.
  EXPECT_EQ(Graph::ChoosePerm(false, true, true, 0), Graph::kPermPOS);
  // s+o bound, sort on p: OSP's (o, s, p) prefix already delivers it.
  EXPECT_EQ(Graph::ChoosePerm(true, false, true, 1), Graph::kPermOSP);
  // No (or an unsatisfiable) preference degrades to the 3-arg choice.
  EXPECT_EQ(Graph::ChoosePerm(false, false, false, -1), Graph::kPermSPO);
  EXPECT_EQ(Graph::ChoosePerm(true, false, true, -1), Graph::kPermOSP);
  EXPECT_EQ(Graph::ChoosePerm(true, true, true, 2), Graph::kPermSPO);
}

// ---- secondary permutations ----------------------------------------------

TEST(SecondaryPermTest, EnumerateInOwnSortOrderWithExactPrefixEstimates) {
  auto g = BuildKg(11, 60);
  struct Case {
    Graph::Perm perm;
    int lanes[3];  // triple lanes in key order
  };
  const Case cases[] = {{Graph::kPermPSO, {1, 0, 2}},
                        {Graph::kPermSOP, {0, 2, 1}},
                        {Graph::kPermOPS, {2, 1, 0}}};
  for (const Case& c : cases) {
    std::vector<rdf::TripleId> out;
    g->ForEachInPerm(c.perm, kNoTermId, kNoTermId, kNoTermId,
                     [&](const rdf::TripleId& t) { out.push_back(t); });
    ASSERT_EQ(out.size(), g->size()) << "perm " << c.perm;
    auto key = [&](const rdf::TripleId& t) {
      const TermId lanes[3] = {t.s, t.p, t.o};
      return std::array<TermId, 3>{lanes[c.lanes[0]], lanes[c.lanes[1]],
                                   lanes[c.lanes[2]]};
    };
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(key(out[i - 1]), key(out[i])) << "perm " << c.perm;
    }
  }
  // A (p, s) prefix on PSO narrows exactly, like any complete prefix.
  const TermId man = g->terms().Find(Term::Iri(kEx + "manufacturer"));
  ASSERT_NE(man, kNoTermId);
  const size_t width = g->EstimateInPerm(Graph::kPermPSO, kNoTermId, man,
                                         kNoTermId);
  EXPECT_EQ(width, g->CountMatch(kNoTermId, man, kNoTermId));
  std::vector<rdf::TripleId> narrowed;
  g->ForEachInPerm(Graph::kPermPSO, kNoTermId, man, kNoTermId,
                   [&](const rdf::TripleId& t) { narrowed.push_back(t); });
  EXPECT_EQ(narrowed.size(), width);
  for (size_t i = 1; i < narrowed.size(); ++i) {
    EXPECT_LE(narrowed[i - 1].s, narrowed[i].s);
  }
}

// ---- merge cursor --------------------------------------------------------

TEST(MergeCursorTest, StreamsIdenticallyOnHeapAndMappedBackends) {
  auto heap = BuildKg(23, 200);
  auto mapped = OpenMapped(*heap, "cursor");
  const TermId man = heap->terms().Find(Term::Iri(kEx + "manufacturer"));
  ASSERT_NE(man, kNoTermId);
  const size_t width = heap->CountMatch(kNoTermId, man, kNoTermId);
  ASSERT_GT(width, 0u);

  auto drain = [&](const Graph& g) {
    auto cur = g.OpenMergeCursor(Graph::kPermPOS, kNoTermId, man, kNoTermId);
    std::vector<rdf::TripleId> out;
    TermId prev = 0;
    while (!cur.at_end()) {
      EXPECT_GE(cur.key(), prev);  // merge lane (?m = object) ascends
      prev = cur.key();
      EXPECT_EQ(cur.key(), cur.triple().o);
      out.push_back(cur.triple());
      cur.Next();
    }
    // A full linear walk decodes every entry in the range and never seeks.
    EXPECT_EQ(cur.decoded(), width);
    EXPECT_EQ(cur.seeks(), 0u);
    return out;
  };
  const std::vector<rdf::TripleId> h = drain(*heap);
  const std::vector<rdf::TripleId> m = drain(*mapped);
  ASSERT_EQ(h.size(), width);
  ASSERT_EQ(h.size(), m.size());
  for (size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], m[i]) << "entry " << i;

  // SeekGE lands both backends on the same entries while decoding far less
  // than the full range (mapped: whole blocks are skipped undecoded).
  std::vector<TermId> keys;
  for (const rdf::TripleId& t : h) {
    if (keys.empty() || keys.back() != t.o) keys.push_back(t.o);
  }
  ASSERT_GE(keys.size(), 4u);
  const TermId probes[3] = {keys[1], keys[keys.size() / 2], keys.back()};
  auto seek = [&](const Graph& g) {
    auto cur = g.OpenMergeCursor(Graph::kPermPOS, kNoTermId, man, kNoTermId);
    std::vector<rdf::TripleId> hits;
    for (TermId v : probes) {
      cur.SeekGE(v);
      EXPECT_FALSE(cur.at_end());
      if (cur.at_end()) break;
      EXPECT_EQ(cur.key(), v);
      hits.push_back(cur.triple());
    }
    EXPECT_EQ(cur.seeks(), 3u);
    EXPECT_LT(cur.decoded(), width);
    return hits;
  };
  EXPECT_EQ(seek(*heap), seek(*mapped));
}

// ---- DP order search and plan annotation ---------------------------------

TEST(PlannerDpTest, ReturnsDeterministicValidOrderAndIotaAboveCutoff) {
  auto g = BuildKg(7, 300);
  sparql::VarTable vars;
  std::vector<sparql::CompiledPattern> patterns = {
      Pat(*g, &vars, "?l", "manufacturer", "?m"),
      Pat(*g, &vars, "?m", "origin", "?c"),
      Pat(*g, &vars, "?c", "GDPPerCapita", "?gdp"),
      Pat(*g, &vars, "?l", "price", "?p"),
  };
  const std::vector<int> order = sparql::PlanBgpOrderDp(*g, patterns);
  ASSERT_EQ(order.size(), patterns.size());
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int>(i));  // a permutation
  }
  EXPECT_EQ(sparql::PlanBgpOrderDp(*g, patterns), order);  // deterministic

  // Above the subset-DP cutoff the caller's greedy fallback plans instead;
  // the DP itself returns source order untouched.
  sparql::VarTable vars2;
  std::vector<sparql::CompiledPattern> big;
  while (big.size() <= sparql::kMaxDpPatterns) {
    big.push_back(Pat(*g, &vars2, "?l", "manufacturer", "?m"));
  }
  const std::vector<int> fallback = sparql::PlanBgpOrderDp(*g, big);
  for (size_t i = 0; i < fallback.size(); ++i) {
    EXPECT_EQ(fallback[i], static_cast<int>(i));
  }
}

TEST(PlannerDpTest, AnnotatesInterestingOrderAndMergeSteps) {
  auto g = BuildKg(7, 300);
  sparql::VarTable vars;
  // ?l slot 0, ?m slot 1, ?c slot 2, ?gdp slot 3.
  std::vector<sparql::CompiledPattern> ordered = {
      Pat(*g, &vars, "?l", "manufacturer", "?m"),
      Pat(*g, &vars, "?m", "origin", "?c"),
      Pat(*g, &vars, "?c", "GDPPerCapita", "?gdp"),
  };
  const sparql::BgpPlan plan = sparql::AnnotateBgpPlan(*g, ordered);
  ASSERT_EQ(plan.steps.size(), 3u);
  // ?m is the seed's free lane feeding the downstream join: the scan comes
  // out sorted on it (POS) and step 1 streams origin's (p, s) = PSO cursor.
  EXPECT_EQ(plan.head_slot, 1);
  EXPECT_EQ(plan.steps[0].strategy, 'S');
  EXPECT_EQ(plan.steps[0].perm, Graph::kPermPOS);
  EXPECT_EQ(plan.steps[1].strategy, 'M');
  EXPECT_EQ(plan.steps[1].perm, Graph::kPermPSO);
  // Step 2 joins on ?c, not the interesting order: adaptive.
  EXPECT_EQ(plan.steps[2].strategy, 'A');
  EXPECT_GT(plan.est_cost, 0.0);

  const std::string json = plan.ToJson({0, 1, 2});
  EXPECT_NE(json.find("\"dp\":false"), std::string::npos);
  EXPECT_NE(json.find("\"head_slot\":1"), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"perm\":\"PSO\""), std::string::npos);
}

// ---- differential equivalence --------------------------------------------

TEST(PlannerV2Test, MergeIsByteIdenticalAcrossSeedsThreadsAndBackends) {
  const char* const kQueries[] = {
      "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }",
      "SELECT ?l ?m ?c ?g WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
      "?c ex:GDPPerCapita ?g . }",
      "SELECT ?l ?p ?c WHERE { ?l ex:manufacturer ?m . ?l ex:price ?p . "
      "?m ex:origin ?c . }",
      "SELECT ?l ?h ?c WHERE { ?l ex:hardDrive ?h . ?h ex:manufacturer ?hm . "
      "?hm ex:origin ?c . }",
  };
  for (unsigned seed : {7u, 19u, 42u}) {
    auto heap = BuildKg(seed, 400);
    auto mapped = OpenMapped(*heap, "diff_" + std::to_string(seed));
    for (const char* body : kQueries) {
      const std::string q = std::string(kPfx) + body;
      // Reference: serial NLJ under the same (DP) order on the heap.
      RunOpts ref_opts;
      ref_opts.strategy = sparql::JoinStrategy::kNestedLoop;
      ref_opts.use_dp = true;
      const std::string reference = RunTsv(heap.get(), q, ref_opts);
      // Same order, every strategy, both thread counts, both backends:
      // byte-identical (merge demotes to the forced strategy in-place).
      for (Graph* g : {heap.get(), mapped.get()}) {
        for (int threads : {1, 4}) {
          for (sparql::JoinStrategy strategy :
               {sparql::JoinStrategy::kNestedLoop,
                sparql::JoinStrategy::kHash, sparql::JoinStrategy::kMerge,
                sparql::JoinStrategy::kAdaptive}) {
            RunOpts o;
            o.threads = threads;
            o.strategy = strategy;
            o.use_dp = true;
            EXPECT_EQ(RunTsv(g, q, o), reference)
                << "seed=" << seed << " threads=" << threads
                << " strategy=" << static_cast<int>(strategy)
                << " mapped=" << (g == mapped.get()) << "\n"
                << q;
          }
        }
      }
      // The DP order may differ from the v1 greedy one, so against the v1
      // engine only the result *set* is promised.
      RunOpts v1;
      EXPECT_EQ(SortedLines(RunTsv(heap.get(), q, v1)),
                SortedLines(reference))
          << "seed=" << seed << "\n" << q;
    }
  }
}

TEST(PlannerV2Test, MergeStepsEngageAndSurfaceStats) {
  auto g = BuildKg(7, 600);
  const std::string q =
      std::string(kPfx) +
      "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }";
  RunOpts o;
  o.strategy = sparql::JoinStrategy::kMerge;
  o.use_dp = true;
  sparql::ExecStats stats;
  RunTsv(g.get(), q, o, &stats);
  ASSERT_EQ(stats.join_strategy.size(), 2u);
  EXPECT_EQ(stats.join_strategy[0], 'S');
  EXPECT_EQ(stats.join_strategy[1], 'M');
  EXPECT_EQ(stats.merge_joins, 1u);
  EXPECT_GT(stats.sieve_keys, 0u);
  EXPECT_GT(stats.sieve_seeks, 0u);
  EXPECT_EQ(stats.dp_plans, 1u);
  ASSERT_EQ(stats.plan_shapes.size(), 1u);
  EXPECT_NE(stats.plan_shapes[0].find("\"dp\":true"), std::string::npos);
  EXPECT_NE(stats.Summary().find("merge_joins=1"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"merge_joins\":1"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"plans\":["), std::string::npos);
}

// ---- sideways information passing ----------------------------------------

TEST(PlannerV2Test, SipAblationKeepsBytesButDecodesMoreRows) {
  // A sparse sieve over a wide, interleaved cursor range: 1000 `data`
  // subjects, of which every 100th also carries a `link` edge. Seeding on
  // `link` sorts the intermediate on ?s; the merge over `data`'s (p, s)
  // cursor then has 990 non-candidate entries to either seek past (SIP) or
  // decode one by one (ablated).
  Graph g;
  const Term link = Term::Iri("urn:link");
  const Term data = Term::Iri("urn:data");
  for (int i = 0; i < 1000; ++i) {
    const Term s = Term::Iri("urn:s" + std::to_string(i));
    g.Add(s, data, Term::Iri("urn:v" + std::to_string(i)));
    if (i % 100 == 0) g.Add(s, link, Term::Iri("urn:t"));
  }
  auto run = [&](bool sip, sparql::ExecStats* stats) {
    sparql::VarTable vars;
    std::vector<sparql::CompiledPattern> patterns = {
        sparql::CompileTriple({sparql::NodePattern::Var("s"),
                               sparql::NodePattern::Const(link),
                               sparql::NodePattern::Var("t")},
                              &vars, g),
        sparql::CompileTriple({sparql::NodePattern::Var("s"),
                               sparql::NodePattern::Const(data),
                               sparql::NodePattern::Var("v")},
                              &vars, g),
    };
    std::vector<sparql::Binding> rows = {
        sparql::Binding(vars.size(), kNoTermId)};
    sparql::JoinOptions jopts;
    jopts.strategy = sparql::JoinStrategy::kMerge;
    jopts.sip = sip;
    jopts.stats = stats;
    Status st = sparql::JoinBgp(g, patterns, vars.size(), /*reorder=*/false,
                                jopts, &rows);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return rows;
  };
  sparql::ExecStats with_sip, without_sip;
  const std::vector<sparql::Binding> a = run(true, &with_sip);
  const std::vector<sparql::Binding> b = run(false, &without_sip);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
  // The whole point of the sieve: strictly fewer index entries decoded.
  EXPECT_LT(with_sip.merge_rows_decoded, without_sip.merge_rows_decoded);
  EXPECT_GT(with_sip.sieve_seeks, 0u);
  EXPECT_EQ(without_sip.sieve_seeks, 0u);
}

// ---- deterministic cancellation ------------------------------------------

TEST(PlannerV2Test, CancelTripsInsideSieveBuildDeterministically) {
  auto g = BuildKg(7, 1000);  // manufacturer range comfortably > 512 rows
  g->Freeze();
  sparql::VarTable vars;
  std::vector<sparql::CompiledPattern> patterns = {
      Pat(*g, &vars, "?l", "manufacturer", "?m"),
      Pat(*g, &vars, "?m", "origin", "?c"),
  };
  // Counted checks: seed entry + exit ("bgp-join"), then the sieve build's
  // 512-row check over the ~1250-row sorted intermediate. Cancelling on the
  // 3rd check therefore lands inside BuildSieve, every time.
  QueryContext ctx;
  ctx.CancelAfterChecks(3);
  sparql::JoinOptions jopts;
  jopts.strategy = sparql::JoinStrategy::kMerge;
  jopts.ctx = &ctx;
  std::vector<sparql::Binding> rows = {
      sparql::Binding(vars.size(), kNoTermId)};
  Status st = sparql::JoinBgp(*g, patterns, vars.size(), /*reorder=*/false,
                              jopts, &rows);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_STREQ(ctx.trip_stage(), "sieve-build");
}

TEST(PlannerV2Test, CancelTripsInsideMergeAdvanceDeterministically) {
  auto g = BuildKg(7, 1000);
  g->Freeze();
  const TermId man = g->terms().Find(Term::Iri(kEx + "manufacturer"));
  ASSERT_NE(man, kNoTermId);
  const size_t seed_rows = g->CountMatch(kNoTermId, man, kNoTermId);
  ASSERT_GT(seed_rows, 512u);
  sparql::VarTable vars;
  std::vector<sparql::CompiledPattern> patterns = {
      Pat(*g, &vars, "?l", "manufacturer", "?m"),
      Pat(*g, &vars, "?l", "price", "?p"),
  };
  // Without SIP the merge advances its ~1000-entry price cursor linearly,
  // checking every 512 advances. Counted checks before that: seed entry +
  // exit, floor(seed_rows / 512) sieve-build checks, the merge step's
  // "bgp-join" entry — so arming one past those trips the first
  // merge-advance check, deterministically.
  QueryContext ctx;
  ctx.CancelAfterChecks(2 + static_cast<int64_t>(seed_rows / 512) + 2);
  sparql::ExecStats stats;
  sparql::JoinOptions jopts;
  jopts.strategy = sparql::JoinStrategy::kMerge;
  jopts.sip = false;
  jopts.ctx = &ctx;
  jopts.stats = &stats;
  std::vector<sparql::Binding> rows = {
      sparql::Binding(vars.size(), kNoTermId)};
  Status st = sparql::JoinBgp(*g, patterns, vars.size(), /*reorder=*/false,
                              jopts, &rows);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_STREQ(ctx.trip_stage(), "merge-advance");
  // The partial merge step's stats were recorded before unwinding.
  ASSERT_EQ(stats.join_strategy.size(), 2u);
  EXPECT_EQ(stats.join_strategy[0], 'S');
  EXPECT_EQ(stats.join_strategy[1], 'M');
  EXPECT_GT(stats.rows_scanned[1], 0u);
}

// ---- plan capture / replay -----------------------------------------------

TEST(PlannerV2Test, CapturedOrderReplayReproducesPlanBitForBit) {
  auto g = BuildKg(7, 300);
  auto run = [&](const std::vector<int>* replay, std::vector<int>* capture,
                 sparql::ExecStats* stats) {
    sparql::VarTable vars;
    std::vector<sparql::CompiledPattern> patterns = {
        Pat(*g, &vars, "?l", "manufacturer", "?m"),
        Pat(*g, &vars, "?m", "origin", "?c"),
        Pat(*g, &vars, "?c", "GDPPerCapita", "?gdp"),
    };
    std::vector<sparql::Binding> rows = {
        sparql::Binding(vars.size(), kNoTermId)};
    sparql::JoinOptions jopts;
    jopts.use_dp = true;
    jopts.stats = stats;
    jopts.replay_order = replay;
    jopts.capture_order = capture;
    Status st = sparql::JoinBgp(*g, patterns, vars.size(), /*reorder=*/true,
                                jopts, &rows);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return rows;
  };
  std::vector<int> captured;
  sparql::ExecStats first_stats;
  const std::vector<sparql::Binding> first =
      run(nullptr, &captured, &first_stats);
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(first_stats.dp_plans, 1u);
  ASSERT_EQ(first_stats.plan_shapes.size(), 1u);

  sparql::ExecStats replayed_stats;
  const std::vector<sparql::Binding> replayed =
      run(&captured, nullptr, &replayed_stats);
  ASSERT_EQ(replayed.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], replayed[i]) << "row " << i;
  }
  // Annotation is a pure function of the order: the replayed run rebuilds
  // the identical explainable plan, strategies and permutations included.
  ASSERT_EQ(replayed_stats.plan_shapes.size(), 1u);
  EXPECT_EQ(replayed_stats.plan_shapes[0], first_stats.plan_shapes[0]);
  EXPECT_EQ(replayed_stats.join_order, first_stats.join_order);
  EXPECT_EQ(replayed_stats.join_strategy, first_stats.join_strategy);
}

// ---- plan-cache config key -----------------------------------------------

TEST(PlanCacheConfigKeyTest, DistinguishesEveryPlannerKnobCombination) {
  const uint64_t h = 0x1234ABCD5678EF90ull;
  std::vector<uint64_t> keys;
  for (sparql::JoinStrategy strategy :
       {sparql::JoinStrategy::kAdaptive, sparql::JoinStrategy::kNestedLoop,
        sparql::JoinStrategy::kHash, sparql::JoinStrategy::kMerge}) {
    for (bool use_dp : {false, true}) {
      for (bool calibrated : {false, true}) {
        keys.push_back(
            sparql::PlanCache::ConfigKey(h, strategy, use_dp, calibrated));
      }
    }
  }
  std::vector<uint64_t> unique_keys = keys;
  std::sort(unique_keys.begin(), unique_keys.end());
  unique_keys.erase(std::unique(unique_keys.begin(), unique_keys.end()),
                    unique_keys.end());
  EXPECT_EQ(unique_keys.size(), keys.size());
  // Same inputs, same key: the salt is deterministic.
  EXPECT_EQ(sparql::PlanCache::ConfigKey(h, sparql::JoinStrategy::kMerge,
                                         true, true),
            sparql::PlanCache::ConfigKey(h, sparql::JoinStrategy::kMerge,
                                         true, true));
}

}  // namespace
}  // namespace rdfa
