#include "sparql/results_io.h"

#include <gtest/gtest.h>

#include "rdf/namespaces.h"

namespace rdfa::sparql {
namespace {

ResultTable SampleTable() {
  ResultTable t({"s", "label", "n"});
  t.AddRow({rdf::Term::Iri("http://e.org/a"),
            rdf::Term::LangLiteral("alpha", "en"), rdf::Term::Integer(1)});
  std::vector<rdf::Term> row2 = {rdf::Term::Blank("b0"),
                                 rdf::Term::Literal("say \"hi\"\n"),
                                 rdf::Term()};  // unbound third cell
  t.AddRow(row2);
  return t;
}

TEST(ResultsJsonTest, HeadAndBindings) {
  std::string json = WriteResultsJson(SampleTable());
  EXPECT_NE(json.find("\"head\":{\"vars\":[\"s\",\"label\",\"n\"]}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"uri\",\"value\":\"http://e.org/a\""),
            std::string::npos);
  EXPECT_NE(json.find("\"xml:lang\":\"en\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"bnode\",\"value\":\"b0\""),
            std::string::npos);
  EXPECT_NE(json.find("\"datatype\":\"" + std::string(rdf::xsd::kInteger) +
                      "\""),
            std::string::npos);
}

TEST(ResultsJsonTest, UnboundCellsOmitted) {
  std::string json = WriteResultsJson(SampleTable());
  // The second binding object must not contain key "n".
  size_t second = json.find("bnode");
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(json.find("\"n\":", second), std::string::npos);
}

TEST(ResultsJsonTest, StringsEscaped) {
  std::string json = WriteResultsJson(SampleTable());
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos) << json;
}

TEST(ResultsCsvTest, HeaderRowsAndQuoting) {
  std::string csv = WriteResultsCsv(SampleTable());
  EXPECT_NE(csv.find("s,label,n\r\n"), std::string::npos);
  EXPECT_NE(csv.find("http://e.org/a,alpha,1\r\n"), std::string::npos);
  // Quotes doubled, newline kept inside the quoted field.
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\n\""), std::string::npos) << csv;
}

TEST(ResultsCsvTest, UnboundIsEmptyField) {
  std::string csv = WriteResultsCsv(SampleTable());
  // Second data row ends with an empty field before CRLF.
  EXPECT_NE(csv.find(",\r\n"), std::string::npos);
}

TEST(ResultsXmlTest, StructureAndEscaping) {
  std::string xml = WriteResultsXml(SampleTable());
  EXPECT_NE(xml.find("<variable name=\"label\"/>"), std::string::npos);
  EXPECT_NE(xml.find("<uri>http://e.org/a</uri>"), std::string::npos);
  EXPECT_NE(xml.find("<literal xml:lang=\"en\">alpha</literal>"),
            std::string::npos);
  EXPECT_NE(xml.find("<bnode>b0</bnode>"), std::string::npos);
  EXPECT_NE(xml.find("&quot;hi&quot;"), std::string::npos);
  // Unbound binding omitted entirely.
  EXPECT_EQ(xml.find("<binding name=\"n\"></binding>"), std::string::npos);
}

TEST(ResultsIoTest, EmptyTable) {
  ResultTable t({"x"});
  EXPECT_NE(WriteResultsJson(t).find("\"bindings\":[]"), std::string::npos);
  EXPECT_EQ(WriteResultsCsv(t), "x\r\n");
  EXPECT_NE(WriteResultsXml(t).find("<results>"), std::string::npos);
}

}  // namespace
}  // namespace rdfa::sparql
