// Tests for the model-layer extensions: facet value bucketing (Fig 5.4 d),
// the Chapter 7.1 expressiveness checker, and the keyword-search starting
// point (§5.3.2 (ii)).

#include <gtest/gtest.h>

#include "analytics/expressiveness.h"
#include "fs/facets.h"
#include "fs/session.h"
#include "hifun/hifun_parser.h"
#include "rdf/rdfs.h"
#include "search/keyword.h"
#include "viz/table_render.h"
#include "workload/products.h"

namespace rdfa {
namespace {

const std::string kEx = workload::kExampleNs;

// ---------------- bucketing ----------------

class BucketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ProductKgOptions opt;
    opt.laptops = 200;
    workload::GenerateProductKg(&g_, opt);
    session_ = std::make_unique<fs::Session>(&g_);
    ASSERT_TRUE(session_->ClickClass(kEx + "Laptop").ok());
  }
  rdf::Graph g_;
  std::unique_ptr<fs::Session> session_;
};

TEST_F(BucketTest, BucketsPartitionTheRange) {
  fs::PropertyFacet facet = session_->ExpandPath({{kEx + "price"}});
  auto buckets = fs::BucketNumericFacet(g_, facet, 5);
  ASSERT_EQ(buckets.size(), 5u);
  // Contiguous intervals.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(buckets[i].lo, buckets[i - 1].hi);
  }
  // Counts sum to the facet's total count.
  size_t facet_total = 0;
  for (const auto& vc : facet.values) facet_total += vc.count;
  size_t bucket_total = 0;
  for (const auto& b : buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, facet_total);
}

TEST_F(BucketTest, SingleValueDataAllInFirstBucket) {
  fs::PropertyFacet facet;
  facet.values.push_back(
      {g_.terms().Intern(rdf::Term::Integer(7)), 13});
  auto buckets = fs::BucketNumericFacet(g_, facet, 4);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].count, 13u);
  EXPECT_EQ(buckets[1].count + buckets[2].count + buckets[3].count, 0u);
}

TEST_F(BucketTest, NonNumericValuesIgnored) {
  fs::PropertyFacet facet;
  facet.values.push_back(
      {g_.terms().Intern(rdf::Term::Literal("not-a-number")), 3});
  EXPECT_TRUE(fs::BucketNumericFacet(g_, facet, 3).empty());
  EXPECT_TRUE(fs::BucketNumericFacet(g_, facet, 0).empty());
}

TEST_F(BucketTest, DateBucketsByYear) {
  fs::PropertyFacet facet = session_->ExpandPath({{kEx + "releaseDate"}});
  auto years = fs::BucketDateFacetByYear(g_, facet);
  ASSERT_FALSE(years.empty());
  size_t total = 0;
  for (const auto& [year, count] : years) {
    EXPECT_GE(year, 2018);
    EXPECT_LE(year, 2023);
    total += count;
  }
  EXPECT_EQ(total, 200u);
}

// ---------------- expressiveness (§7.1) ----------------

class ExpressivenessTest : public ::testing::Test {
 protected:
  hifun::Query Parse(const std::string& text) {
    rdf::PrefixMap prefixes;
    auto q = hifun::ParseHifun(text, prefixes, kEx);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value_or(hifun::Query{});
  }
};

TEST_F(ExpressivenessTest, SimpleQueriesExpressible) {
  auto rep = analytics::CheckExpressible(
      Parse("(manufacturer, price, AVG) over Laptop"));
  EXPECT_TRUE(rep.expressible);
  EXPECT_TRUE(rep.reasons.empty());
  EXPECT_GE(rep.estimated_actions, 3);
}

TEST_F(ExpressivenessTest, PathsPairingsDerivedExpressible) {
  auto rep = analytics::CheckExpressible(Parse(
      "((origin o manufacturer x YEAR(releaseDate)), price, AVG+MAX) over "
      "Laptop"));
  EXPECT_TRUE(rep.expressible) << (rep.reasons.empty() ? "" : rep.reasons[0]);
}

TEST_F(ExpressivenessTest, HavingExpressibleViaAfReload) {
  auto rep = analytics::CheckExpressible(
      Parse("(manufacturer, price, AVG / > 900) over Laptop"));
  EXPECT_TRUE(rep.expressible);
  // The AF reload costs extra actions.
  auto plain = analytics::CheckExpressible(
      Parse("(manufacturer, price, AVG) over Laptop"));
  EXPECT_GT(rep.estimated_actions, plain.estimated_actions);
}

TEST_F(ExpressivenessTest, DerivedInsideCompositionNotExpressible) {
  // YEAR applied mid-path: the UI only offers a transform on the final
  // facet.
  hifun::Query q;
  q.root_class = kEx + "Laptop";
  q.grouping = hifun::AttrExpr::Compose(
      {hifun::AttrExpr::Derived("YEAR",
                                hifun::AttrExpr::Property(kEx + "releaseDate")),
       hifun::AttrExpr::Property(kEx + "somethingElse")});
  q.measuring = hifun::AttrExpr::Identity();
  q.ops = {hifun::AggOp::kCount};
  auto rep = analytics::CheckExpressible(q);
  EXPECT_FALSE(rep.expressible);
  ASSERT_FALSE(rep.reasons.empty());
}

TEST_F(ExpressivenessTest, PairMeasureNotExpressible) {
  hifun::Query q;
  q.measuring = hifun::AttrExpr::Pair({hifun::AttrExpr::Property(kEx + "a"),
                                       hifun::AttrExpr::Property(kEx + "b")});
  q.ops = {hifun::AggOp::kSum};
  auto rep = analytics::CheckExpressible(q);
  EXPECT_FALSE(rep.expressible);
}

TEST_F(ExpressivenessTest, NestedPairingNotExpressible) {
  hifun::Query q;
  auto inner = hifun::AttrExpr::Pair({hifun::AttrExpr::Property(kEx + "a"),
                                      hifun::AttrExpr::Property(kEx + "b")});
  auto outer = std::make_shared<hifun::AttrExpr>();
  outer->kind = hifun::AttrExpr::Kind::kPair;
  outer->args = {inner, hifun::AttrExpr::Property(kEx + "c")};
  q.grouping = outer;
  q.measuring = hifun::AttrExpr::Identity();
  q.ops = {hifun::AggOp::kCount};
  auto rep = analytics::CheckExpressible(q);
  EXPECT_FALSE(rep.expressible);
}

// ---------------- keyword search ----------------

class KeywordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BuildRunningExample(&g_);
    rdf::MaterializeRdfsClosure(&g_);
    index_ = std::make_unique<search::KeywordIndex>(g_);
  }
  rdf::Graph g_;
  std::unique_ptr<search::KeywordIndex> index_;
};

TEST(TokenizeTest, SplitsPunctuationAndCamelCase) {
  auto toks = search::TokenizeText("releaseDate of laptop-1!");
  EXPECT_EQ(toks, (std::vector<std::string>{"release", "date", "of", "laptop",
                                            "1"}));
}

TEST_F(KeywordTest, FindsByLocalName) {
  auto hits = index_->Search("dell");
  ASSERT_FALSE(hits.empty());
  // laptop1/laptop2 (objects mention DELL) and DELL itself rank.
  bool found_dell_subject = false;
  for (const auto& h : hits) {
    if (g_.terms().Get(h.subject).lexical() == kEx + "DELL") {
      found_dell_subject = true;
    }
  }
  EXPECT_TRUE(found_dell_subject);
}

TEST_F(KeywordTest, MultiTokenRanksIntersectionHigher) {
  auto hits = index_->Search("laptop1 dell");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(viz::LocalName(g_.terms().Get(hits[0].subject).lexical()),
            "laptop1");
}

TEST_F(KeywordTest, NoHitsForUnknownToken) {
  EXPECT_TRUE(index_->Search("zzzzunknown").empty());
}

TEST_F(KeywordTest, LimitRespected) {
  auto hits = index_->Search("laptop", 2);
  EXPECT_LE(hits.size(), 2u);
}

TEST_F(KeywordTest, FeedsFacetedSessionAsStartingPoint) {
  // §5.3.2 starting point (ii): explore the results of a keyword query.
  fs::Extension ext = index_->SearchAsExtension("laptop");
  ASSERT_FALSE(ext.empty());
  fs::Session session(&g_);
  session.StartFromResults(ext);
  EXPECT_EQ(session.current().ext, ext);
  auto facets = session.PropertyFacets();
  EXPECT_FALSE(facets.empty());
}

}  // namespace
}  // namespace rdfa
