#include "rdf/rdfs.h"

#include <gtest/gtest.h>

#include "rdf/namespaces.h"
#include "workload/products.h"

namespace rdfa::rdf {
namespace {

constexpr char kNs[] = "http://www.ics.forth.gr/example#";

class RdfsTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildRunningExample(&g_); }
  TermId Id(const std::string& local) {
    return g_.terms().FindIri(std::string(kNs) + local);
  }
  Graph g_;
};

TEST_F(RdfsTest, SchemaViewFindsClassesAndProperties) {
  Vocab v(&g_);
  SchemaView schema(g_, v);
  EXPECT_TRUE(schema.classes().count(Id("Laptop")));
  EXPECT_TRUE(schema.classes().count(Id("Product")));
  EXPECT_TRUE(schema.properties().count(Id("manufacturer")));
  EXPECT_TRUE(schema.properties().count(Id("price")));
}

TEST_F(RdfsTest, DirectAndTransitiveSubclasses) {
  Vocab v(&g_);
  SchemaView schema(g_, v);
  auto direct = schema.DirectSubclasses(Id("Product"));
  EXPECT_TRUE(direct.count(Id("Laptop")));
  EXPECT_TRUE(direct.count(Id("HDType")));
  EXPECT_FALSE(direct.count(Id("SSD")));  // two levels down
  auto all = schema.Subclasses(Id("Product"));
  EXPECT_TRUE(all.count(Id("SSD")));
  EXPECT_TRUE(all.count(Id("NVMe")));
}

TEST_F(RdfsTest, SuperclassesAreReflexiveTransitive) {
  Vocab v(&g_);
  SchemaView schema(g_, v);
  auto supers = schema.Superclasses(Id("SSD"));
  EXPECT_TRUE(supers.count(Id("SSD")));
  EXPECT_TRUE(supers.count(Id("HDType")));
  EXPECT_TRUE(supers.count(Id("Product")));
}

TEST_F(RdfsTest, MaximalClasses) {
  Vocab v(&g_);
  SchemaView schema(g_, v);
  auto maximal = schema.MaximalClasses();
  std::set<TermId> max_set(maximal.begin(), maximal.end());
  EXPECT_TRUE(max_set.count(Id("Product")));
  EXPECT_TRUE(max_set.count(Id("Company")));
  EXPECT_TRUE(max_set.count(Id("Location")));
  EXPECT_FALSE(max_set.count(Id("Laptop")));
  EXPECT_FALSE(max_set.count(Id("Country")));
}

TEST_F(RdfsTest, DomainsAndRanges) {
  Vocab v(&g_);
  SchemaView schema(g_, v);
  EXPECT_TRUE(schema.Domains(Id("manufacturer")).count(Id("Product")));
  EXPECT_TRUE(schema.Ranges(Id("manufacturer")).count(Id("Company")));
  EXPECT_TRUE(schema.Ranges(Id("origin")).count(Id("Country")));
}

TEST_F(RdfsTest, ClosureAddsTypePropagation) {
  TermId laptop1 = Id("laptop1");
  TermId type = g_.terms().FindIri(rdfns::kType);
  TermId product = Id("Product");
  EXPECT_FALSE(g_.Contains(laptop1, type, product));
  size_t added = MaterializeRdfsClosure(&g_);
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(g_.Contains(laptop1, type, product));
  // Two-level: SSD1 is SSD -> HDType -> Product.
  EXPECT_TRUE(g_.Contains(Id("SSD1"), type, Id("HDType")));
  EXPECT_TRUE(g_.Contains(Id("SSD1"), type, Id("Product")));
}

TEST_F(RdfsTest, ClosureIsIdempotent) {
  MaterializeRdfsClosure(&g_);
  size_t again = MaterializeRdfsClosure(&g_);
  EXPECT_EQ(again, 0u);
}

TEST(RdfsRulesTest, SubPropertyPropagation) {
  Graph g;
  Term type = Term::Iri(rdfns::kType);
  Term subprop = Term::Iri(rdfsns::kSubPropertyOf);
  g.Add(Term::Iri("urn:manufacturer"), subprop, Term::Iri("urn:producer"));
  g.Add(Term::Iri("urn:l1"), Term::Iri("urn:manufacturer"),
        Term::Iri("urn:dell"));
  MaterializeRdfsClosure(&g);
  TermId l1 = g.terms().FindIri("urn:l1");
  TermId producer = g.terms().FindIri("urn:producer");
  TermId dell = g.terms().FindIri("urn:dell");
  EXPECT_TRUE(g.Contains(l1, producer, dell));
  (void)type;
}

TEST(RdfsRulesTest, DomainRangeTyping) {
  Graph g;
  Term type = Term::Iri(rdfns::kType);
  g.Add(Term::Iri("urn:p"), Term::Iri(rdfsns::kDomain), Term::Iri("urn:D"));
  g.Add(Term::Iri("urn:p"), Term::Iri(rdfsns::kRange), Term::Iri("urn:R"));
  g.Add(Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b"));
  g.Add(Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Literal("lit"));
  MaterializeRdfsClosure(&g);
  TermId a = g.terms().FindIri("urn:a");
  TermId b = g.terms().FindIri("urn:b");
  TermId t = g.terms().Find(type);
  EXPECT_TRUE(g.Contains(a, t, g.terms().FindIri("urn:D")));
  EXPECT_TRUE(g.Contains(b, t, g.terms().FindIri("urn:R")));
  // Literals never get typed.
  TermId lit = g.terms().Find(Term::Literal("lit"));
  EXPECT_FALSE(g.Contains(lit, t, g.terms().FindIri("urn:R")));
}

TEST(RdfsRulesTest, ChainedSubPropertyThroughDomain) {
  // p1 subPropertyOf p2, p2 has domain C: users of p1 get typed C
  // (requires subproperty propagation to run before domain typing).
  Graph g;
  g.Add(Term::Iri("urn:p1"), Term::Iri(rdfsns::kSubPropertyOf),
        Term::Iri("urn:p2"));
  g.Add(Term::Iri("urn:p2"), Term::Iri(rdfsns::kDomain), Term::Iri("urn:C"));
  g.Add(Term::Iri("urn:x"), Term::Iri("urn:p1"), Term::Iri("urn:y"));
  MaterializeRdfsClosure(&g);
  TermId x = g.terms().FindIri("urn:x");
  TermId type = g.terms().FindIri(rdfns::kType);
  TermId c = g.terms().FindIri("urn:C");
  EXPECT_TRUE(g.Contains(x, type, c));
}

TEST(RdfsRulesTest, TransitiveSubClassOfMaterialized) {
  Graph g;
  Term sub = Term::Iri(rdfsns::kSubClassOf);
  g.Add(Term::Iri("urn:A"), sub, Term::Iri("urn:B"));
  g.Add(Term::Iri("urn:B"), sub, Term::Iri("urn:C"));
  MaterializeRdfsClosure(&g);
  EXPECT_TRUE(g.Contains(g.terms().FindIri("urn:A"), g.terms().Find(sub),
                         g.terms().FindIri("urn:C")));
}

}  // namespace
}  // namespace rdfa::rdf
