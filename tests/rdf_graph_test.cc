#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "common/footprint.h"

namespace rdfa::rdf {
namespace {

Term Iri(const std::string& s) { return Term::Iri("urn:" + s); }

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_.Add(Iri("s1"), Iri("p1"), Iri("o1"));
    g_.Add(Iri("s1"), Iri("p1"), Iri("o2"));
    g_.Add(Iri("s1"), Iri("p2"), Iri("o1"));
    g_.Add(Iri("s2"), Iri("p1"), Iri("o1"));
    g_.Add(Iri("s2"), Iri("p2"), Term::Integer(5));
  }
  TermId Id(const std::string& s) { return g_.terms().Find(Iri(s)); }
  Graph g_;
};

TEST_F(GraphTest, SizeAndDeduplication) {
  EXPECT_EQ(g_.size(), 5u);
  EXPECT_FALSE(g_.Add(Iri("s1"), Iri("p1"), Iri("o1")));
  EXPECT_EQ(g_.size(), 5u);
}

TEST_F(GraphTest, ContainsExactTriple) {
  EXPECT_TRUE(g_.Contains(Id("s1"), Id("p1"), Id("o1")));
  EXPECT_FALSE(g_.Contains(Id("s1"), Id("p2"), Id("o2")));
}

TEST_F(GraphTest, MatchFullyBound) {
  EXPECT_EQ(g_.Match(Id("s1"), Id("p1"), Id("o1")).size(), 1u);
}

TEST_F(GraphTest, MatchSubjectWildcardRest) {
  auto out = g_.Match(Id("s1"), kNoTermId, kNoTermId);
  EXPECT_EQ(out.size(), 3u);
  for (const TripleId& t : out) EXPECT_EQ(t.s, Id("s1"));
}

TEST_F(GraphTest, MatchPredicateBound) {
  EXPECT_EQ(g_.Match(kNoTermId, Id("p1"), kNoTermId).size(), 3u);
}

TEST_F(GraphTest, MatchObjectBound) {
  EXPECT_EQ(g_.Match(kNoTermId, kNoTermId, Id("o1")).size(), 3u);
}

TEST_F(GraphTest, MatchSubjectObjectBoundPredicateFree) {
  auto out = g_.Match(Id("s1"), kNoTermId, Id("o1"));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(GraphTest, MatchPredicateObjectBound) {
  EXPECT_EQ(g_.Match(kNoTermId, Id("p1"), Id("o1")).size(), 2u);
}

TEST_F(GraphTest, MatchAllWildcards) {
  EXPECT_EQ(g_.Match(kNoTermId, kNoTermId, kNoTermId).size(), 5u);
}

TEST_F(GraphTest, CountMatchAgreesWithMatch) {
  EXPECT_EQ(g_.CountMatch(Id("s1"), kNoTermId, kNoTermId), 3u);
  EXPECT_EQ(g_.CountMatch(kNoTermId, Id("p2"), kNoTermId), 2u);
}

TEST_F(GraphTest, EstimateIsUpperBound) {
  EXPECT_GE(g_.EstimateMatch(Id("s1"), kNoTermId, Id("o1")),
            g_.CountMatch(Id("s1"), kNoTermId, Id("o1")));
}

TEST_F(GraphTest, MatchAbsentTermYieldsNothing) {
  // An interned term that occurs in no triple matches nothing. (A term that
  // was never interned has no id; kNoTermId is the wildcard, by contract.)
  TermId lonely = g_.terms().Intern(Iri("nothere"));
  EXPECT_TRUE(g_.Match(lonely, kNoTermId, kNoTermId).empty());
  EXPECT_EQ(g_.terms().Find(Iri("neverseen")), kNoTermId);
}

TEST_F(GraphTest, IndexesStayCorrectAfterIncrementalAdds) {
  // Force index build, then add more and re-query.
  EXPECT_EQ(g_.Match(Id("s1"), kNoTermId, kNoTermId).size(), 3u);
  g_.Add(Iri("s1"), Iri("p3"), Iri("o3"));
  EXPECT_EQ(g_.Match(Id("s1"), kNoTermId, kNoTermId).size(), 4u);
}

TEST(GraphGenerationTest, PerPredicateEpochsAdvanceOnlyForTouchedPredicates) {
  Graph g;
  g.Add(Iri("s"), Iri("p1"), Iri("o"));
  g.Add(Iri("s"), Iri("p2"), Iri("o"));
  CacheFootprint fp1 = CacheFootprint::Of({"urn:p1"});
  CacheFootprint fp2 = CacheFootprint::Of({"urn:p2"});
  const uint64_t s1 = g.FootprintStamp(fp1);
  const uint64_t s2 = g.FootprintStamp(fp2);
  g.Add(Iri("s2"), Iri("p2"), Iri("o2"));
  EXPECT_EQ(g.FootprintStamp(fp1), s1) << "untouched predicate moved";
  EXPECT_GT(g.FootprintStamp(fp2), s2) << "touched predicate did not move";
  // Wildcard footprints track the global generation: any mutation moves it.
  CacheFootprint wild = CacheFootprint::Wildcard();
  const uint64_t w = g.FootprintStamp(wild);
  g.Add(Iri("s3"), Iri("p1"), Iri("o3"));
  EXPECT_GT(g.FootprintStamp(wild), w);
  // Removals only advance epochs of predicates that actually lost triples.
  const uint64_t s1b = g.FootprintStamp(fp1);
  const uint64_t s2b = g.FootprintStamp(fp2);
  g.RemoveMatching(g.terms().Find(Iri("s2")), kNoTermId, kNoTermId);
  EXPECT_EQ(g.FootprintStamp(fp1), s1b);
  EXPECT_GT(g.FootprintStamp(fp2), s2b);
}

TEST(GraphGenerationTest, MoveAssignNeverAliasesEitherSourceStamp) {
  // A moved-into graph must stamp strictly above anything either graph
  // stamped before, for every footprint size: cached entries keyed to the
  // old graphs can then never validate against the new one by accident.
  Graph a;
  a.Add(Iri("s"), Iri("p1"), Iri("o"));
  a.Add(Iri("s"), Iri("p2"), Iri("o"));
  a.Add(Iri("s"), Iri("p3"), Iri("o"));
  Graph b;
  for (int i = 0; i < 10; ++i) {
    b.Add(Iri("s" + std::to_string(i)), Iri("p1"), Iri("o"));
  }
  CacheFootprint one = CacheFootprint::Of({"urn:p1"});
  CacheFootprint two = CacheFootprint::Of({"urn:p1", "urn:p2"});
  CacheFootprint wild = CacheFootprint::Wildcard();
  std::vector<uint64_t> prior = {
      a.FootprintStamp(one), a.FootprintStamp(two), a.FootprintStamp(wild),
      b.FootprintStamp(one), b.FootprintStamp(wild)};
  a = std::move(b);
  for (uint64_t old_stamp : prior) {
    EXPECT_GT(a.FootprintStamp(one), old_stamp);
    EXPECT_GT(a.FootprintStamp(wild), old_stamp);
  }
  // And the merged counter keeps moving normally afterwards.
  const uint64_t after = a.FootprintStamp(one);
  a.Add(Iri("sx"), Iri("p1"), Iri("ox"));
  EXPECT_GT(a.FootprintStamp(one), after);
}

TEST(GraphGenerationTest, CloneCarriesEpochsAndTriples) {
  Graph g;
  g.Add(Iri("s"), Iri("p1"), Iri("o"));
  g.Add(Iri("s"), Iri("p2"), Term::Integer(7));
  g.Freeze();
  CacheFootprint fp = CacheFootprint::Of({"urn:p1"});
  auto copy = g.Clone();
  EXPECT_EQ(copy->size(), g.size());
  EXPECT_EQ(copy->Generation(), g.Generation());
  EXPECT_EQ(copy->FootprintStamp(fp), g.FootprintStamp(fp));
  EXPECT_TRUE(copy->Contains(copy->terms().Find(Iri("s")),
                             copy->terms().Find(Iri("p2")),
                             copy->terms().Find(Term::Integer(7))));
  // Mutating the clone leaves the original untouched.
  copy->Add(Iri("s2"), Iri("p1"), Iri("o2"));
  EXPECT_EQ(g.size(), 2u);
  EXPECT_GT(copy->FootprintStamp(fp), g.FootprintStamp(fp));
}

// Property-style randomized check: every pattern type returns exactly the
// triples a brute-force filter returns.
TEST(GraphPropertyTest, RandomizedPatternsMatchBruteForce) {
  std::mt19937_64 rng(123);
  Graph g;
  const int kTerms = 12;
  for (int i = 0; i < 300; ++i) {
    Term s = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    Term p = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    Term o = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    g.Add(s, p, o);
  }
  auto brute = [&](TermId s, TermId p, TermId o) {
    std::multiset<std::string> out;
    for (const TripleId& t : g.triples()) {
      if ((s == kNoTermId || t.s == s) && (p == kNoTermId || t.p == p) &&
          (o == kNoTermId || t.o == o)) {
        out.insert(std::to_string(t.s) + "," + std::to_string(t.p) + "," +
                   std::to_string(t.o));
      }
    }
    return out;
  };
  for (int trial = 0; trial < 200; ++trial) {
    auto pick = [&]() -> TermId {
      if (rng() % 3 == 0) return kNoTermId;
      return g.terms().Find(Term::Iri("urn:t" + std::to_string(rng() % kTerms)));
    };
    TermId s = pick(), p = pick(), o = pick();
    std::multiset<std::string> got;
    g.ForEachMatch(s, p, o, [&](const TripleId& t) {
      got.insert(std::to_string(t.s) + "," + std::to_string(t.p) + "," +
                 std::to_string(t.o));
    });
    EXPECT_EQ(got, brute(s, p, o)) << "pattern " << s << " " << p << " " << o;
  }
}

}  // namespace
}  // namespace rdfa::rdf
