#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace rdfa::rdf {
namespace {

Term Iri(const std::string& s) { return Term::Iri("urn:" + s); }

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_.Add(Iri("s1"), Iri("p1"), Iri("o1"));
    g_.Add(Iri("s1"), Iri("p1"), Iri("o2"));
    g_.Add(Iri("s1"), Iri("p2"), Iri("o1"));
    g_.Add(Iri("s2"), Iri("p1"), Iri("o1"));
    g_.Add(Iri("s2"), Iri("p2"), Term::Integer(5));
  }
  TermId Id(const std::string& s) { return g_.terms().Find(Iri(s)); }
  Graph g_;
};

TEST_F(GraphTest, SizeAndDeduplication) {
  EXPECT_EQ(g_.size(), 5u);
  EXPECT_FALSE(g_.Add(Iri("s1"), Iri("p1"), Iri("o1")));
  EXPECT_EQ(g_.size(), 5u);
}

TEST_F(GraphTest, ContainsExactTriple) {
  EXPECT_TRUE(g_.Contains(Id("s1"), Id("p1"), Id("o1")));
  EXPECT_FALSE(g_.Contains(Id("s1"), Id("p2"), Id("o2")));
}

TEST_F(GraphTest, MatchFullyBound) {
  EXPECT_EQ(g_.Match(Id("s1"), Id("p1"), Id("o1")).size(), 1u);
}

TEST_F(GraphTest, MatchSubjectWildcardRest) {
  auto out = g_.Match(Id("s1"), kNoTermId, kNoTermId);
  EXPECT_EQ(out.size(), 3u);
  for (const TripleId& t : out) EXPECT_EQ(t.s, Id("s1"));
}

TEST_F(GraphTest, MatchPredicateBound) {
  EXPECT_EQ(g_.Match(kNoTermId, Id("p1"), kNoTermId).size(), 3u);
}

TEST_F(GraphTest, MatchObjectBound) {
  EXPECT_EQ(g_.Match(kNoTermId, kNoTermId, Id("o1")).size(), 3u);
}

TEST_F(GraphTest, MatchSubjectObjectBoundPredicateFree) {
  auto out = g_.Match(Id("s1"), kNoTermId, Id("o1"));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(GraphTest, MatchPredicateObjectBound) {
  EXPECT_EQ(g_.Match(kNoTermId, Id("p1"), Id("o1")).size(), 2u);
}

TEST_F(GraphTest, MatchAllWildcards) {
  EXPECT_EQ(g_.Match(kNoTermId, kNoTermId, kNoTermId).size(), 5u);
}

TEST_F(GraphTest, CountMatchAgreesWithMatch) {
  EXPECT_EQ(g_.CountMatch(Id("s1"), kNoTermId, kNoTermId), 3u);
  EXPECT_EQ(g_.CountMatch(kNoTermId, Id("p2"), kNoTermId), 2u);
}

TEST_F(GraphTest, EstimateIsUpperBound) {
  EXPECT_GE(g_.EstimateMatch(Id("s1"), kNoTermId, Id("o1")),
            g_.CountMatch(Id("s1"), kNoTermId, Id("o1")));
}

TEST_F(GraphTest, MatchAbsentTermYieldsNothing) {
  // An interned term that occurs in no triple matches nothing. (A term that
  // was never interned has no id; kNoTermId is the wildcard, by contract.)
  TermId lonely = g_.terms().Intern(Iri("nothere"));
  EXPECT_TRUE(g_.Match(lonely, kNoTermId, kNoTermId).empty());
  EXPECT_EQ(g_.terms().Find(Iri("neverseen")), kNoTermId);
}

TEST_F(GraphTest, IndexesStayCorrectAfterIncrementalAdds) {
  // Force index build, then add more and re-query.
  EXPECT_EQ(g_.Match(Id("s1"), kNoTermId, kNoTermId).size(), 3u);
  g_.Add(Iri("s1"), Iri("p3"), Iri("o3"));
  EXPECT_EQ(g_.Match(Id("s1"), kNoTermId, kNoTermId).size(), 4u);
}

// Property-style randomized check: every pattern type returns exactly the
// triples a brute-force filter returns.
TEST(GraphPropertyTest, RandomizedPatternsMatchBruteForce) {
  std::mt19937_64 rng(123);
  Graph g;
  const int kTerms = 12;
  for (int i = 0; i < 300; ++i) {
    Term s = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    Term p = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    Term o = Term::Iri("urn:t" + std::to_string(rng() % kTerms));
    g.Add(s, p, o);
  }
  auto brute = [&](TermId s, TermId p, TermId o) {
    std::multiset<std::string> out;
    for (const TripleId& t : g.triples()) {
      if ((s == kNoTermId || t.s == s) && (p == kNoTermId || t.p == p) &&
          (o == kNoTermId || t.o == o)) {
        out.insert(std::to_string(t.s) + "," + std::to_string(t.p) + "," +
                   std::to_string(t.o));
      }
    }
    return out;
  };
  for (int trial = 0; trial < 200; ++trial) {
    auto pick = [&]() -> TermId {
      if (rng() % 3 == 0) return kNoTermId;
      return g.terms().Find(Term::Iri("urn:t" + std::to_string(rng() % kTerms)));
    };
    TermId s = pick(), p = pick(), o = pick();
    std::multiset<std::string> got;
    g.ForEachMatch(s, p, o, [&](const TripleId& t) {
      got.insert(std::to_string(t.s) + "," + std::to_string(t.p) + "," +
                 std::to_string(t.o));
    });
    EXPECT_EQ(got, brute(s, p, o)) << "pattern " << s << " " << p << " " << o;
  }
}

}  // namespace
}  // namespace rdfa::rdf
