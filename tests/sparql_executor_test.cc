#include "sparql/executor.h"

#include <gtest/gtest.h>

#include <set>

#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "viz/table_render.h"

namespace rdfa::sparql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status st = rdf::ParseTurtle(R"(
      @prefix ex: <http://e.org/> .
      ex:l1 a ex:Laptop ; ex:man ex:DELL ; ex:price 900 ; ex:usb 2 .
      ex:l2 a ex:Laptop ; ex:man ex:DELL ; ex:price 1000 ; ex:usb 2 .
      ex:l3 a ex:Laptop ; ex:man ex:Lenovo ; ex:price 820 ; ex:usb 4 .
      ex:DELL ex:origin ex:USA .
      ex:Lenovo ex:origin ex:China .
      ex:p1 a ex:Phone ; ex:man ex:Lenovo ; ex:price 300 .
    )",
                                 &g_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  ResultTable Run(const std::string& q) {
    auto res = ExecuteQueryString(&g_, q);
    EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nquery: " << q;
    return res.ok() ? res.value() : ResultTable();
  }

  rdf::Graph g_;
};

TEST_F(ExecutorTest, SingleTriplePattern) {
  ResultTable t = Run("SELECT ?x WHERE { ?x a <http://e.org/Laptop> . }");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, JoinTwoPatterns) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:man ex:DELL . ?x ex:usb ?u . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, PathJoinAcrossEntities) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:man ?m . ?m ex:origin ex:USA . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, FilterNumeric) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p >= 900) . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, FilterConjunction) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . ?x ex:usb ?u . FILTER(?p > 800 && "
      "?u = 2) . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, UnboundVariableProjectsEmpty) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x ?nope WHERE { ?x a ex:Phone . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(ResultTable::IsUnbound(t.at(0, 1)));
}

TEST_F(ExecutorTest, OptionalKeepsUnmatchedRows) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x ?u WHERE { ?x ex:price ?p . OPTIONAL { ?x ex:usb ?u . } }");
  EXPECT_EQ(t.num_rows(), 4u);  // 3 laptops + phone (usb unbound)
  size_t unbound = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (ResultTable::IsUnbound(t.at(r, 1))) ++unbound;
  }
  EXPECT_EQ(unbound, 1u);
}

TEST_F(ExecutorTest, UnionCombines) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { { ?x a ex:Laptop . } UNION { ?x a ex:Phone . } }");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, BindComputesValue) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x ?double WHERE { ?x ex:price ?p . BIND(?p * 2 AS ?double) } "
      "ORDER BY ?double");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.at(0, 1).lexical(), "600");
}

TEST_F(ExecutorTest, ValuesRestricts) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . VALUES ?x { ex:l1 ex:l3 } }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, DistinctDeduplicates) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT DISTINCT ?m WHERE { ?x ex:man ?m . }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, OrderByAscendingAndDescending) {
  ResultTable asc = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p");
  ASSERT_EQ(asc.num_rows(), 4u);
  EXPECT_EQ(asc.at(0, 0).lexical(), "300");
  EXPECT_EQ(asc.at(3, 0).lexical(), "1000");
  ResultTable desc = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY DESC(?p)");
  EXPECT_EQ(desc.at(0, 0).lexical(), "1000");
}

TEST_F(ExecutorTest, LimitOffset) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p LIMIT 2 OFFSET 1");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0).lexical(), "820");
  EXPECT_EQ(t.at(1, 0).lexical(), "900");
}

TEST_F(ExecutorTest, LimitOffsetClampToResultSize) {
  // Large-but-valid values clamp to the result window instead of wrapping.
  ResultTable all = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p "
      "LIMIT 9223372036854775807");
  EXPECT_EQ(all.num_rows(), 4u);
  ResultTable none = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p "
      "OFFSET 9223372036854775807");
  EXPECT_EQ(none.num_rows(), 0u);
  ResultTable both = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p "
      "LIMIT 9223372036854775807 OFFSET 3");
  ASSERT_EQ(both.num_rows(), 1u);
  EXPECT_EQ(both.at(0, 0).lexical(), "1000");
}

TEST_F(ExecutorTest, NegativeOffsetInAstClampsToZero) {
  // Unreachable through the parser (it rejects negatives), but a
  // hand-built AST must not wrap through the size_t cast.
  auto parsed = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?p WHERE { ?x ex:price ?p . } ORDER BY ?p");
  ASSERT_TRUE(parsed.ok());
  ParsedQuery q = parsed.value();
  q.select.offset = -5;
  Executor exec(&g_);
  auto res = exec.Execute(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().num_rows(), 4u);
}

TEST_F(ExecutorTest, SelectStarSkipsInternalVars) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT * WHERE { ?x ex:man/ex:origin ex:USA . }");
  ASSERT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.columns()[0], "x");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, AskTrueAndFalse) {
  rdf::Graph& g = g_;
  Executor exec(&g);
  auto yes = ParseQuery("ASK { <http://e.org/l1> <http://e.org/usb> 2 . }");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(exec.Ask(yes.value().ask).value());
  auto no = ParseQuery("ASK { <http://e.org/l1> <http://e.org/usb> 9 . }");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(exec.Ask(no.value().ask).value());
}

TEST_F(ExecutorTest, ConstructMaterializesTriples) {
  Executor exec(&g_);
  auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "CONSTRUCT { ?x ex:cheap true . } WHERE { ?x ex:price ?p . FILTER(?p < "
      "850) . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  rdf::Graph out;
  auto added = exec.Construct(q.value().construct, &out);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value(), 2u);  // l3 and p1
}

TEST_F(ExecutorTest, SubSelectJoinsOnSharedVars) {
  ResultTable t = Run(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x ?mx WHERE { ?x ex:price ?p . "
      "{ SELECT (MAX(?q) AS ?mx) WHERE { ?y ex:price ?q . } } "
      "FILTER(?p = ?mx) . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(viz::LocalName(t.at(0, 0).lexical()), "l2");
}

TEST_F(ExecutorTest, SameVariableTwiceInPattern) {
  g_.Add(rdf::Term::Iri("http://e.org/self"), rdf::Term::Iri("http://e.org/p"),
         rdf::Term::Iri("http://e.org/self"));
  ResultTable t = Run("SELECT ?x WHERE { ?x <http://e.org/p> ?x . }");
  ASSERT_EQ(t.num_rows(), 1u);
}

TEST_F(ExecutorTest, ImpossibleConstantMeansEmpty) {
  ResultTable t = Run("SELECT ?x WHERE { ?x <urn:nothere> <urn:nope> . }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, FilterPushdownDoesNotChangeResults) {
  const char* queries[] = {
      // Filter ready after the first triple run.
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . FILTER(?p > 500) ?x ex:man ?m . }",
      // Filter referencing an OPTIONAL variable: must wait for the end.
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . OPTIONAL { ?x ex:usb ?u . } "
      "FILTER(BOUND(?u)) }",
      // Filter on a BIND result.
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:price ?p . BIND(?p * 2 AS ?d) FILTER(?d > "
      "1700) }",
  };
  for (const char* q : queries) {
    auto parsed = ParseQuery(q);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    Executor pushed(&g_, /*reorder_joins=*/true, /*push_filters=*/true);
    Executor deferred(&g_, /*reorder_joins=*/true, /*push_filters=*/false);
    auto a = pushed.Select(parsed.value().select);
    auto b = deferred.Select(parsed.value().select);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    std::multiset<std::string> sa, sb;
    for (size_t r = 0; r < a.value().num_rows(); ++r) {
      sa.insert(a.value().at(r, 0).lexical());
    }
    for (size_t r = 0; r < b.value().num_rows(); ++r) {
      sb.insert(b.value().at(r, 0).lexical());
    }
    EXPECT_EQ(sa, sb) << q;
  }
}

TEST_F(ExecutorTest, ReorderingDoesNotChangeResults) {
  const char* q =
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { ?x ex:usb 2 . ?x ex:man ?m . ?m ex:origin ex:USA . }";
  auto parsed = ParseQuery(q);
  ASSERT_TRUE(parsed.ok());
  Executor with(&g_, /*reorder_joins=*/true);
  Executor without(&g_, /*reorder_joins=*/false);
  auto a = with.Select(parsed.value().select);
  auto b = without.Select(parsed.value().select);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::multiset<std::string> sa, sb;
  for (size_t r = 0; r < a.value().num_rows(); ++r) {
    sa.insert(a.value().at(r, 0).lexical());
  }
  for (size_t r = 0; r < b.value().num_rows(); ++r) {
    sb.insert(b.value().at(r, 0).lexical());
  }
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 2u);
}

}  // namespace
}  // namespace rdfa::sparql
