#include "rdf/term.h"

#include <gtest/gtest.h>

#include "rdf/namespaces.h"
#include "rdf/term_table.h"

namespace rdfa::rdf {
namespace {

TEST(TermTest, IriConstruction) {
  Term t = Term::Iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_EQ(t.lexical(), "http://example.org/a");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/a>");
}

TEST(TermTest, BlankNode) {
  Term t = Term::Blank("b1");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b1");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.datatype(), "");
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::Integer(42);
  EXPECT_EQ(t.lexical(), "42");
  EXPECT_EQ(t.datatype(), xsd::kInteger);
  EXPECT_TRUE(t.IsNumericLiteral());
}

TEST(TermTest, LangLiteral) {
  Term t = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(t.lang(), "fr");
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("line1\nline2 \"quoted\"");
  EXPECT_EQ(t.ToNTriples(), "\"line1\\nline2 \\\"quoted\\\"\"");
}

TEST(TermTest, DoubleFormatting) {
  EXPECT_EQ(Term::Double(2.5).lexical(), "2.5");
  EXPECT_EQ(Term::Double(3.0).lexical(), "3");
}

TEST(TermTest, BooleanLiteral) {
  EXPECT_EQ(Term::Boolean(true).lexical(), "true");
  EXPECT_EQ(Term::Boolean(false).lexical(), "false");
  EXPECT_EQ(Term::Boolean(true).datatype(), xsd::kBoolean);
}

TEST(TermTest, EqualityDistinguishesKind) {
  EXPECT_NE(Term::Iri("a"), Term::Literal("a"));
  EXPECT_NE(Term::Blank("a"), Term::Literal("a"));
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
}

TEST(TermTest, EqualityDistinguishesDatatypeAndLang) {
  EXPECT_NE(Term::Literal("1"), Term::Integer(1));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "fr"));
}

TEST(TermTest, NumericLiteralDetection) {
  EXPECT_TRUE(Term::TypedLiteral("2.5", xsd::kDouble).IsNumericLiteral());
  EXPECT_TRUE(Term::Literal("123").IsNumericLiteral());
  EXPECT_FALSE(Term::Literal("12a").IsNumericLiteral());
  EXPECT_FALSE(Term::Iri("123").IsNumericLiteral());
}

TEST(TermTableTest, InternIsIdempotent) {
  TermTable table;
  TermId a = table.Intern(Term::Iri("x"));
  TermId b = table.Intern(Term::Iri("x"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(TermTableTest, DistinctTermsGetDistinctIds) {
  TermTable table;
  TermId a = table.Intern(Term::Iri("x"));
  TermId b = table.Intern(Term::Literal("x"));
  TermId c = table.Intern(Term::Integer(1));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(table.size(), 3u);
}

TEST(TermTableTest, FindAbsentReturnsNoTermId) {
  TermTable table;
  EXPECT_EQ(table.Find(Term::Iri("missing")), kNoTermId);
  EXPECT_EQ(table.FindIri("missing"), kNoTermId);
}

TEST(TermTableTest, GetRoundTrips) {
  TermTable table;
  Term original = Term::LangLiteral("hi", "en");
  TermId id = table.Intern(original);
  EXPECT_EQ(table.Get(id), original);
}

TEST(TermTableTest, MintBlankIsFresh) {
  TermTable table;
  table.Intern(Term::Blank("b0"));
  TermId fresh = table.MintBlank();
  EXPECT_NE(table.Get(fresh), Term::Blank("b0"));
  TermId fresh2 = table.MintBlank();
  EXPECT_NE(fresh, fresh2);
}

class TermRoundTripTest : public ::testing::TestWithParam<Term> {};

TEST_P(TermRoundTripTest, InternFindRoundTrip) {
  TermTable table;
  TermId id = table.Intern(GetParam());
  EXPECT_EQ(table.Find(GetParam()), id);
  EXPECT_EQ(table.Get(id), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Terms, TermRoundTripTest,
    ::testing::Values(Term::Iri("http://e.org/x"), Term::Blank("n1"),
                      Term::Literal("plain"), Term::Integer(-5),
                      Term::Double(2.25), Term::Boolean(true),
                      Term::DateTime("2021-06-10T00:00:00"),
                      Term::LangLiteral("x", "el")));

}  // namespace
}  // namespace rdfa::rdf
