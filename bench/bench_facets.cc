// Reproduces the §6.4 efficiency discussion for the *interaction* side: the
// cost of computing transition markers (class facets with counts, property
// facets with value counts, path expansion) as the KG grows. The paper's
// claim: facet computation stays interactive because it touches only the
// current extension's neighborhood.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "fs/facets.h"
#include "fs/session.h"
#include "rdf/rdfs.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

struct Fixture {
  rdfa::rdf::Graph graph;
  std::unique_ptr<rdfa::fs::Session> session;
};

Fixture* SharedFixture(size_t laptops) {
  static std::map<size_t, Fixture>* fixtures = new std::map<size_t, Fixture>();
  auto it = fixtures->find(laptops);
  if (it == fixtures->end()) {
    Fixture f;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = laptops / 50 + 5;
    rdfa::workload::GenerateProductKg(&f.graph, opt);
    rdfa::rdf::MaterializeRdfsClosure(&f.graph);
    it = fixtures->emplace(laptops, std::move(f)).first;
    it->second.session = std::make_unique<rdfa::fs::Session>(&it->second.graph);
    (void)it->second.session->ClickClass(kEx + "Laptop");
  }
  return &it->second;
}

void BM_ClassFacets(benchmark::State& state) {
  Fixture* f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto facets = f->session->ClassFacets();
    benchmark::DoNotOptimize(facets.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassFacets)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_PropertyFacets(benchmark::State& state) {
  Fixture* f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto facets = f->session->PropertyFacets();
    benchmark::DoNotOptimize(facets.size());
  }
}
BENCHMARK(BM_PropertyFacets)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_PathExpansion(benchmark::State& state) {
  Fixture* f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto facet = f->session->ExpandPath(
        {{kEx + "manufacturer"}, {kEx + "origin"}});
    benchmark::DoNotOptimize(facet.values.size());
  }
  state.SetLabel("Joins(Joins(E,manufacturer),origin) with counts");
}
BENCHMARK(BM_PathExpansion)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_ValueClickTransition(benchmark::State& state) {
  Fixture* f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rdfa::fs::Session s(&f->graph);
    (void)s.ClickClass(kEx + "Laptop");
    benchmark::DoNotOptimize(
        s.ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                     rdfa::rdf::Term::Iri(kEx + "country0")));
  }
  state.SetLabel("back-propagating path restriction (Eq. 5.1)");
}
BENCHMARK(BM_ValueClickTransition)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_RdfsClosure(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rdfa::rdf::Graph g;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = static_cast<size_t>(state.range(0));
    rdfa::workload::GenerateProductKg(&g, opt);
    state.ResumeTiming();
    benchmark::DoNotOptimize(rdfa::rdf::MaterializeRdfsClosure(&g));
  }
  state.SetLabel("one-off load-time cost");
}
BENCHMARK(BM_RdfsClosure)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
