// Reproduces the Fig 8.3 discussion ("an alternative implementation of the
// proposed model"): the state space can be evaluated natively on in-memory
// extensions (Table 5.1 notations) or by re-executing each state's
// intention as SPARQL (Table 5.2, the SPARQL-only evaluation approach).
// This benchmark compares the two implementation strategies on the same
// click sequence.
//
// Expected shape: native set evaluation wins (no query re-planning per
// click), SPARQL-only stays usable and scales with |KG| — the feasibility
// claim of §8.2.

#include <benchmark/benchmark.h>

#include <string>

#include "fs/session.h"
#include "rdf/rdfs.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

rdfa::rdf::Graph* SharedGraph(size_t laptops) {
  static std::map<size_t, rdfa::rdf::Graph>* graphs =
      new std::map<size_t, rdfa::rdf::Graph>();
  auto it = graphs->find(laptops);
  if (it == graphs->end()) {
    rdfa::rdf::Graph g;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = laptops / 100 + 5;
    rdfa::workload::GenerateProductKg(&g, opt);
    rdfa::rdf::MaterializeRdfsClosure(&g);
    it = graphs->emplace(laptops, std::move(g)).first;
  }
  return &it->second;
}

void ClickSequence(rdfa::fs::Session* s) {
  // A representative session: class, range filter, path value click.
  benchmark::DoNotOptimize(s->ClickClass(kEx + "Laptop"));
  benchmark::DoNotOptimize(s->ClickRange({{kEx + "price"}}, 500, 2500));
  benchmark::DoNotOptimize(s->ClickRange({{kEx + "USBPorts"}}, 2, 5));
}

void BM_StateSpaceNative(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rdfa::fs::Session s(g, rdfa::fs::EvalMode::kNative);
    ClickSequence(&s);
    benchmark::DoNotOptimize(s.current().ext.size());
  }
  state.SetLabel("Table 5.1 native set evaluation");
}
BENCHMARK(BM_StateSpaceNative)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_StateSpaceSparqlOnly(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rdfa::fs::Session s(g, rdfa::fs::EvalMode::kSparqlOnly);
    ClickSequence(&s);
    benchmark::DoNotOptimize(s.current().ext.size());
  }
  state.SetLabel("Table 5.2 SPARQL-only evaluation");
}
BENCHMARK(BM_StateSpaceSparqlOnly)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_FacetComputationAfterClick(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  rdfa::fs::Session s(g);
  (void)s.ClickClass(kEx + "Laptop");
  for (auto _ : state) {
    auto facets = s.PropertyFacets();
    benchmark::DoNotOptimize(facets.size());
  }
  state.SetLabel("per-click facet recomputation (both variants share this)");
}
BENCHMARK(BM_FacetComputationAfterClick)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
