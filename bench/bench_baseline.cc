// Reproduces Table 3.5 ("Comparing the functionalities of related
// systems") mechanically: the paper's functionality dimensions are checked
// by *attempting* each capability on (a) the full RDF-ANALYTICS interaction
// model and (b) a reduced query-builder baseline standing in for the
// [41]/[100]-style systems (no counts, no paths, no HAVING, no guarantee of
// non-empty results).
//
// Run: ./build/bench/bench_baseline

#include <chrono>
#include <cstdio>
#include <string>

#include "analytics/answer_frame.h"
#include "analytics/session.h"
#include "baseline/simple_builder.h"
#include "rdf/rdfs.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

struct Row {
  const char* functionality;
  bool ours;
  bool baseline;
  const char* note;
};

}  // namespace

int main() {
  std::printf("== Table 3.5 reproduction: functionality matrix, verified by "
              "attempting each capability ==\n\n");
  rdfa::rdf::Graph g;
  rdfa::workload::BuildRunningExample(&g);
  rdfa::rdf::MaterializeRdfsClosure(&g);

  std::vector<Row> rows;

  // --- basic analytic query: avg price by manufacturer -------------------
  bool ours_basic = false, base_basic = false;
  {
    rdfa::analytics::AnalyticsSession s(&g);
    ours_basic = s.fs().ClickClass(kEx + "Laptop").ok();
    rdfa::analytics::GroupingSpec grp;
    grp.path = {kEx + "manufacturer"};
    ours_basic = ours_basic && s.ClickGroupBy(grp).ok();
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    ours_basic = ours_basic && s.ClickAggregate(m).ok() && s.Execute().ok();

    rdfa::baseline::SimpleQueryBuilder b(&g);
    b.SelectClass(kEx + "Laptop");
    b.SetGroupBy(kEx + "manufacturer");
    b.SetAggregate(rdfa::hifun::AggOp::kAvg, kEx + "price");
    auto res = b.Execute();
    base_basic = res.ok() && res.value().num_rows() == 2;
  }
  rows.push_back({"Analytic queries: basic", ours_basic, base_basic, ""});

  // --- HAVING -------------------------------------------------------------
  bool ours_having = false;
  {
    rdfa::analytics::AnalyticsSession s(&g);
    (void)s.fs().ClickClass(kEx + "Laptop");
    rdfa::analytics::GroupingSpec grp;
    grp.path = {kEx + "manufacturer"};
    (void)s.ClickGroupBy(grp);
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    (void)s.ClickAggregate(m);
    s.SetResultRestriction(">=", 900);
    auto af = s.Execute();
    ours_having = af.ok() && af.value().table().num_rows() == 1;
  }
  rows.push_back({"Analytic queries: with HAVING (via AF)", ours_having,
                  false, "baseline API has no result restriction"});

  // --- property paths -----------------------------------------------------
  bool ours_paths = false;
  {
    rdfa::fs::Session s(&g);
    (void)s.ClickClass(kEx + "Laptop");
    ours_paths = s.ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                              rdfa::rdf::Term::Iri(kEx + "USA"))
                     .ok() &&
                 s.current().ext.size() == 2;
  }
  rows.push_back({"Property paths (in FS and analytics)", ours_paths, false,
                  "baseline constraints are single-hop only"});

  // --- count information ---------------------------------------------------
  bool ours_counts = false;
  {
    rdfa::fs::Session s(&g);
    (void)s.ClickClass(kEx + "Laptop");
    for (const auto& f : s.PropertyFacets()) {
      for (const auto& vc : f.values) {
        if (vc.count > 0) ours_counts = true;
      }
    }
  }
  rows.push_back({"Plain Faceted Search with counts", ours_counts, false,
                  "baseline drop-downs list names only"});

  // --- never-empty guarantee ----------------------------------------------
  bool ours_guarantee = false, base_guarantee = true;
  {
    rdfa::fs::Session s(&g);
    (void)s.ClickClass(kEx + "Laptop");
    // The model refuses a transition to an empty extension:
    ours_guarantee =
        !s.ClickRange({{kEx + "USBPorts"}}, 50, 99).ok() &&
        s.current().ext.size() == 3;
    // The baseline happily builds an empty-result query:
    rdfa::baseline::SimpleQueryBuilder b(&g);
    b.SelectClass(kEx + "Laptop");
    b.AddConstraint(kEx + "manufacturer", rdfa::rdf::Term::Iri(kEx + "Maxtor"));
    auto res = b.Execute();
    base_guarantee = !(res.ok() && res.value().num_rows() == 0);
  }
  rows.push_back({"Never-empty result guarantee", ours_guarantee,
                  base_guarantee, ""});

  // --- nested analytic queries ---------------------------------------------
  bool ours_nested = false;
  {
    rdfa::analytics::AnalyticsSession s(&g);
    (void)s.fs().ClickClass(kEx + "Laptop");
    rdfa::analytics::GroupingSpec grp;
    grp.path = {kEx + "manufacturer"};
    (void)s.ClickGroupBy(grp);
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    (void)s.ClickAggregate(m);
    if (s.Execute().ok()) {
      rdfa::rdf::Graph af_graph;
      auto nested = s.ExploreAnswer(&af_graph);
      ours_nested = nested.ok();
    }
  }
  rows.push_back({"Nested analytic queries (AF reload)", ours_nested, false,
                  "baseline has no answer-frame concept"});

  std::printf("%-42s %-14s %-10s %s\n", "functionality", "RDF-ANALYTICS",
              "baseline", "note");
  int ours_total = 0, base_total = 0;
  for (const Row& r : rows) {
    std::printf("%-42s %-14s %-10s %s\n", r.functionality,
                r.ours ? "yes" : "NO", r.baseline ? "yes" : "no", r.note);
    ours_total += r.ours;
    base_total += r.baseline;
  }
  std::printf("\nsupported: RDF-ANALYTICS %d/%zu, baseline %d/%zu "
              "(paper shape: the proposed model uniquely combines HAVING, "
              "paths, counts and nesting)\n",
              ours_total, rows.size(), base_total, rows.size());
  if (ours_total != static_cast<int>(rows.size())) return 1;

  // --- serial vs morsel-parallel execution at scale -----------------------
  std::printf("\n== serial vs parallel analytic query (generated product KG) "
              "==\n\n");
  rdfa::rdf::Graph big;
  rdfa::workload::ProductKgOptions kg_opt;
  kg_opt.laptops = 5000;
  rdfa::workload::GenerateProductKg(&big, kg_opt);
  std::printf("product KG: %zu triples\n\n", big.size());

  auto run = [&](int threads, rdfa::sparql::ExecStats* stats) {
    rdfa::analytics::AnalyticsSession s(&big);
    (void)s.fs().ClickClass(kEx + "Laptop");
    rdfa::analytics::GroupingSpec grp;
    grp.path = {kEx + "manufacturer"};
    (void)s.ClickGroupBy(grp);
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kAvg};
    (void)s.ClickAggregate(m);
    s.set_thread_count(threads);
    auto af = s.Execute();
    *stats = s.last_exec_stats();
    return af;
  };

  bool identical = true;
  std::string serial_tsv;
  for (int threads : {1, 2, 4}) {
    rdfa::sparql::ExecStats stats;
    auto start = std::chrono::steady_clock::now();
    auto af = run(threads, &stats);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!af.ok()) {
      std::printf("execution failed: %s\n", af.status().ToString().c_str());
      return 1;
    }
    std::string tsv = af.value().table().ToTsv();
    if (threads == 1) {
      serial_tsv = tsv;
    } else if (tsv != serial_tsv) {
      identical = false;
    }
    std::printf("threads=%d  wall=%8.2fms  %s\n", threads, ms,
                stats.Summary().c_str());
  }
  std::printf("\nparallel results %s serial results\n",
              identical ? "byte-identical to" : "DIVERGED from");
  return identical ? 0 : 1;
}
