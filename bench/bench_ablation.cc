// Ablation study over the BGP query-path knobs: join reordering (source vs
// greedy order), the reorderer's cost model (legacy range-width heuristic
// vs GraphStats-calibrated estimates), and the join strategy (index
// nested-loop vs adaptive order-preserving hash join). Every configuration
// must return byte-identical results; what changes is the work done,
// reported as total index rows enumerated (rows_scanned) and wall time.
//
// Run: ./build/bench/bench_ablation [--scale=100k] [--iters=N]
//                                   [--json=<path>] [--ablate-hash-join]
//                                   [--trace-out=<dir>]
//   --scale:            laptop count of the generated product KG
//                       (default 20k)
//   --iters:            repetitions per query/config (default 1; all runs
//                       feed the p50/p99 figures)
//   --json=<path>:      write one machine-readable JSON object for the
//                       whole run (scale, iters, p50/p99, per-run
//                       ExecStats)
//   --ablate-hash-join: force nested-loop joins in the adaptive configs,
//                       isolating the hash join's contribution
//   --trace-out=<dir>:  write one Chrome trace-event JSON file per
//                       (query, config) pair — first iteration of each
//
// Exit code is non-zero if any configuration diverges from the baseline
// result bytes, or if (without --ablate-hash-join) the stats+hash
// configuration fails to beat the NLJ baseline on total rows_scanned.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/query_context.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/products.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::MsSince;
using rdfa::bench::ParseScale;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;
using rdfa::sparql::JoinStrategy;

constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

struct QuerySpec {
  const char* id;
  const char* description;
  const char* body;  // appended to kPfx
};

// Multi-pattern joins over the product KG. Source order is written
// big-range-first so the no-reorder runs exercise the probe-many shape the
// hash join targets; the reordered runs show what the cost model picks.
const QuerySpec kSuite[] = {
    {"Q1", "laptop -> company origin",
     "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }"},
    {"Q2", "laptop -> origin -> GDP",
     "SELECT ?l ?m ?c ?g WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
     "?c ex:GDPPerCapita ?g . }"},
    {"Q3", "laptop price + company origin",
     "SELECT ?l ?p ?c WHERE { ?l ex:manufacturer ?m . ?l ex:price ?p . "
     "?m ex:origin ?c . }"},
    {"Q4", "laptop -> company founder",
     "SELECT ?l ?f WHERE { ?l ex:manufacturer ?m . ?m ex:founder ?f . }"},
    {"Q5", "selective: companies from country0",
     "SELECT ?l ?m WHERE { ?l ex:releaseDate ?d . ?l ex:price ?p . "
     "?l ex:manufacturer ?m . ?m ex:origin ex:country0 . }"},
};

struct Config {
  const char* name;
  bool reorder;
  bool calibrated;
  JoinStrategy strategy;
};

struct RunResult {
  std::string tsv;
  rdfa::sparql::ExecStats stats;
  double ms = 0;
  bool ok = false;
};

RunResult RunOnce(rdfa::rdf::Graph* graph, const std::string& query,
                  const Config& cfg,
                  const std::shared_ptr<rdfa::Tracer>& tracer = nullptr) {
  RunResult r;
  auto parsed = rdfa::sparql::ParseQuery(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return r;
  }
  rdfa::sparql::Executor exec(graph, cfg.reorder);
  exec.set_calibrated_estimates(cfg.calibrated);
  exec.set_join_strategy(cfg.strategy);
  if (tracer != nullptr) {
    rdfa::QueryContext ctx;
    ctx.set_tracer(tracer);
    exec.set_query_context(ctx);
  }
  auto start = std::chrono::steady_clock::now();
  auto res = exec.Execute(parsed.value());
  r.ms = MsSince(start);
  if (!res.ok()) {
    std::fprintf(stderr, "exec: %s\n", res.status().ToString().c_str());
    return r;
  }
  r.tsv = res.value().ToTsv();
  r.stats = exec.stats();
  r.ok = true;
  return r;
}

size_t TotalScanned(const rdfa::sparql::ExecStats& stats) {
  return std::accumulate(stats.rows_scanned.begin(), stats.rows_scanned.end(),
                         size_t{0});
}

std::string StrategyString(const rdfa::sparql::ExecStats& stats) {
  return std::string(stats.join_strategy.begin(), stats.join_strategy.end());
}

// Row-order-insensitive view of a TSV result, for comparing runs whose join
// *order* differs (reordering legitimately permutes output rows; only runs
// with the identical plan must match byte-for-byte).
std::string SortedLines(const std::string& tsv) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < tsv.size()) {
    size_t end = tsv.find('\n', start);
    if (end == std::string::npos) end = tsv.size();
    lines.push_back(tsv.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 20000;
  int iters = 1;
  std::string json_path;
  bool ablate_hash = false;
  rdfa::bench::TraceSink trace_sink;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      size_t s = ParseScale(arg.c_str() + 8);
      if (s > 0) scale = s;
    } else if (arg.rfind("--iters=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 8);
      iters = n < 1 ? 1 : n;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--ablate-hash-join") {
      ablate_hash = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_sink.set_dir(arg.substr(12));
    }
  }

  const JoinStrategy adaptive =
      ablate_hash ? JoinStrategy::kNestedLoop : JoinStrategy::kAdaptive;
  const Config kConfigs[] = {
      // The NLJ baseline: the pre-stats cost model, nested loops only.
      {"legacy-nlj/source", false, false, JoinStrategy::kNestedLoop},
      {"legacy-nlj/reorder", true, false, JoinStrategy::kNestedLoop},
      // Calibrated estimates, still nested loops: isolates the cost model.
      {"stats-nlj/reorder", true, true, JoinStrategy::kNestedLoop},
      // Full tentpole: calibrated estimates + adaptive hash join.
      {"stats-adaptive/source", false, true, adaptive},
      {"stats-adaptive/reorder", true, true, adaptive},
  };

  std::printf("== BGP ablation: reorder x cost model x join strategy ==\n\n");
  rdfa::rdf::Graph g;
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = scale;
  opt.companies = scale / 100 + 5;
  rdfa::workload::GenerateProductKg(&g, opt);
  g.Freeze();
  std::printf("product KG: %zu triples (%zu laptops, %zu companies)%s\n\n",
              g.size(), opt.laptops, opt.companies,
              ablate_hash ? "  [hash join ABLATED]" : "");

  bool identical = true;
  bool all_ok = true;
  size_t baseline_scanned = 0;  // legacy-nlj, summed over queries + orders
  size_t adaptive_scanned = 0;  // stats-adaptive, same accounting
  std::vector<double> latencies;
  std::vector<std::string> run_json;

  for (const QuerySpec& spec : kSuite) {
    const std::string query = std::string(kPfx) + spec.body;
    std::printf("%s  %s\n", spec.id, spec.description);
    // Equivalence contract: runs that share a join order (same `reorder`
    // flag and cost model) must match byte-for-byte no matter the strategy;
    // runs under different orders must agree as row sets.
    std::vector<std::string> tsvs;  // parallel to kConfigs
    for (const Config& cfg : kConfigs) {
      RunResult first;
      std::vector<double> cfg_ms;
      for (int it = 0; it < iters; ++it) {
        std::shared_ptr<rdfa::Tracer> tracer =
            it == 0 ? trace_sink.StartRun() : nullptr;
        RunResult r = RunOnce(&g, query, cfg, tracer);
        if (tracer != nullptr) {
          (void)trace_sink.FinishRun(tracer.get(), "ablation");
        }
        if (!r.ok) {
          all_ok = false;
          break;
        }
        cfg_ms.push_back(r.ms);
        latencies.push_back(r.ms);
        if (it == 0) first = std::move(r);
      }
      if (!first.ok) {
        tsvs.emplace_back();
        continue;
      }
      tsvs.push_back(first.tsv);
      const size_t scanned = TotalScanned(first.stats);
      if (std::strncmp(cfg.name, "legacy-nlj", 10) == 0) {
        baseline_scanned += scanned;
      } else if (std::strncmp(cfg.name, "stats-adaptive", 14) == 0) {
        adaptive_scanned += scanned;
      }
      std::printf("  %-24s %9zu scanned  strategy=%-4s %9.2f ms\n", cfg.name,
                  scanned, StrategyString(first.stats).c_str(),
                  Percentile(cfg_ms, 0.50));

      JsonObject run;
      run.AddString("query", spec.id);
      run.AddString("config", cfg.name);
      run.AddBool("reorder", cfg.reorder);
      run.AddBool("calibrated", cfg.calibrated);
      run.AddString("strategy",
                    cfg.strategy == JoinStrategy::kAdaptive ? "adaptive"
                                                            : "nested-loop");
      run.AddInt("rows_scanned_total", scanned);
      run.AddNumber("p50_ms", Percentile(cfg_ms, 0.50));
      run.AddNumber("p99_ms", Percentile(cfg_ms, 0.99));
      run.AddRaw("exec_stats", first.stats.ToJson());
      run_json.push_back(run.Render());
    }
    if (tsvs.size() == 5 && !tsvs[0].empty()) {
      // Indices follow kConfigs: 0/3 share the source-order plan, 2/4 the
      // calibrated reordered plan — those pairs differ only in strategy and
      // must be byte-identical. Any other pair may differ in row order.
      auto check_exact = [&](size_t a, size_t b) {
        if (tsvs[a] != tsvs[b]) {
          identical = false;
          std::printf("  DIVERGED: %s vs %s (same plan)\n", kConfigs[a].name,
                      kConfigs[b].name);
        }
      };
      auto check_set = [&](size_t a, size_t b) {
        if (SortedLines(tsvs[a]) != SortedLines(tsvs[b])) {
          identical = false;
          std::printf("  DIVERGED: %s vs %s (row sets)\n", kConfigs[a].name,
                      kConfigs[b].name);
        }
      };
      check_exact(0, 3);
      check_exact(2, 4);
      check_set(0, 1);
      check_set(0, 2);
    }
  }

  std::printf("\ntotals over the query set (source + reordered runs):\n");
  std::printf("  legacy-nlj baseline : %9zu rows scanned\n", baseline_scanned);
  std::printf("  stats-adaptive      : %9zu rows scanned (%.1fx fewer)\n",
              adaptive_scanned,
              adaptive_scanned > 0
                  ? static_cast<double>(baseline_scanned) /
                        static_cast<double>(adaptive_scanned)
                  : 0.0);
  std::printf("  results across configs: %s\n",
              identical ? "byte-identical" : "DIVERGED");

  bool hash_won = adaptive_scanned < baseline_scanned;
  if (!ablate_hash && !hash_won) {
    std::printf("FAILED: adaptive hash join did not reduce rows scanned\n");
  }

  if (!json_path.empty()) {
    JsonObject top;
    top.AddString("bench", "bench_ablation");
    top.AddInt("scale", scale);
    top.AddInt("iters", static_cast<uint64_t>(iters));
    top.AddInt("triples", g.size());
    top.AddBool("ablate_hash_join", ablate_hash);
    top.AddNumber("p50_ms", Percentile(latencies, 0.50));
    top.AddNumber("p99_ms", Percentile(latencies, 0.99));
    top.AddInt("baseline_rows_scanned", baseline_scanned);
    top.AddInt("adaptive_rows_scanned", adaptive_scanned);
    top.AddBool("byte_identical", identical);
    top.AddRaw("runs", JsonArray(run_json));
    if (!WriteJsonFile(json_path, top.Render())) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_ok || !identical) return 1;
  return (ablate_hash || hash_won) ? 0 : 1;
}
