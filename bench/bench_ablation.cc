// Ablation study over the BGP query-path knobs: join reordering (source vs
// greedy order), the reorderer's cost model (legacy range-width heuristic
// vs GraphStats-calibrated estimates), the join strategy (index nested-loop
// vs adaptive order-preserving hash join), and planner v2 (DP join ordering
// + order-aware merge joins with sideways information passing). Every
// configuration must return the same result set; what changes is the work
// done, reported as total index rows enumerated (rows_scanned) and wall
// time.
//
// Run: ./build/bench/bench_ablation [--scale=100k] [--iters=N]
//                                   [--json=<path>] [--ablate-hash-join]
//                                   [--ablate-sip] [--storage=heap|mmap]
//                                   [--trace-out=<dir>]
//   --scale:            laptop count of the generated product KG
//                       (default 20k)
//   --iters:            repetitions per query/config (default 1; all runs
//                       feed the p50/p99 figures)
//   --json=<path>:      write one machine-readable JSON object for the
//                       whole run (scale, iters, p50/p99, per-run
//                       ExecStats + plan shapes + result hash)
//   --ablate-hash-join: force nested-loop joins in the adaptive configs,
//                       isolating the hash join's contribution
//   --ablate-sip:       disable sideways information passing in the
//                       planner-v2 configs (merge cursors advance linearly,
//                       decoding every entry); the dp-vs-adaptive gate is
//                       skipped, since the ablation exists to measure the
//                       decode delta
//   --storage=heap|mmap: serve the KG from the heap (default) or round-trip
//                       it through an RDFA3 snapshot and run everything off
//                       the mapped view; result hashes must agree between
//                       the two, which ci/validate_bench.py planner-gates
//                       enforces
//   --trace-out=<dir>:  write one Chrome trace-event JSON file per
//                       (query, config) pair — first iteration of each
//
// Exit code is non-zero if any configuration diverges from the baseline
// result set, if (without --ablate-hash-join) the stats+hash configuration
// fails to beat the NLJ baseline on total rows_scanned, or if (without
// either ablation) the planner-v2 DP+merge configuration fails to beat the
// adaptive one.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/query_context.h"
#include "rdf/binary_io.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/products.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::MsSince;
using rdfa::bench::ParseScale;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;
using rdfa::sparql::JoinStrategy;

constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

struct QuerySpec {
  const char* id;
  const char* description;
  const char* body;  // appended to kPfx
};

// Multi-pattern joins over the product KG. Source order is written
// big-range-first so the no-reorder runs exercise the probe-many shape the
// hash join targets; the reordered runs show what the cost model picks; the
// chains give the DP planner orders whose intermediates stay sorted on the
// join variable, which is where the merge join earns its keep.
const QuerySpec kSuite[] = {
    {"Q1", "laptop -> company origin",
     "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }"},
    {"Q2", "laptop -> origin -> GDP",
     "SELECT ?l ?m ?c ?g WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
     "?c ex:GDPPerCapita ?g . }"},
    {"Q3", "laptop price + company origin",
     "SELECT ?l ?p ?c WHERE { ?l ex:manufacturer ?m . ?l ex:price ?p . "
     "?m ex:origin ?c . }"},
    {"Q4", "laptop -> drive -> maker origin",
     "SELECT ?l ?h ?c WHERE { ?l ex:hardDrive ?h . ?h ex:manufacturer ?hm . "
     "?hm ex:origin ?c . }"},
    {"Q5", "selective: companies from country0",
     "SELECT ?l ?m WHERE { ?l ex:releaseDate ?d . ?l ex:price ?p . "
     "?l ex:manufacturer ?m . ?m ex:origin ex:country0 . }"},
};

struct Config {
  std::string name;
  bool reorder = false;
  bool calibrated = false;
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  bool use_dp = false;
  bool sip = true;
};

struct RunResult {
  std::string tsv;
  rdfa::sparql::ExecStats stats;
  double ms = 0;
  bool ok = false;
};

RunResult RunOnce(rdfa::rdf::Graph* graph, const std::string& query,
                  const Config& cfg,
                  const std::shared_ptr<rdfa::Tracer>& tracer = nullptr) {
  RunResult r;
  auto parsed = rdfa::sparql::ParseQuery(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return r;
  }
  rdfa::sparql::Executor exec(graph, cfg.reorder);
  exec.set_calibrated_estimates(cfg.calibrated);
  exec.set_join_strategy(cfg.strategy);
  exec.set_use_dp(cfg.use_dp);
  exec.set_sip(cfg.sip);
  if (tracer != nullptr) {
    rdfa::QueryContext ctx;
    ctx.set_tracer(tracer);
    exec.set_query_context(ctx);
  }
  auto start = std::chrono::steady_clock::now();
  auto res = exec.Execute(parsed.value());
  r.ms = MsSince(start);
  if (!res.ok()) {
    std::fprintf(stderr, "exec: %s\n", res.status().ToString().c_str());
    return r;
  }
  r.tsv = res.value().ToTsv();
  r.stats = exec.stats();
  r.ok = true;
  return r;
}

size_t TotalScanned(const rdfa::sparql::ExecStats& stats) {
  return std::accumulate(stats.rows_scanned.begin(), stats.rows_scanned.end(),
                         size_t{0});
}

std::string StrategyString(const rdfa::sparql::ExecStats& stats) {
  return std::string(stats.join_strategy.begin(), stats.join_strategy.end());
}

const char* StrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kAdaptive: return "adaptive";
    case JoinStrategy::kNestedLoop: return "nested-loop";
    case JoinStrategy::kHash: return "hash";
    case JoinStrategy::kMerge: return "merge";
  }
  return "?";
}

// Row-order-insensitive view of a TSV result, for comparing runs whose join
// *order* differs (reordering legitimately permutes output rows; only runs
// with the identical plan must match byte-for-byte).
std::string SortedLines(const std::string& tsv) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < tsv.size()) {
    size_t end = tsv.find('\n', start);
    if (end == std::string::npos) end = tsv.size();
    lines.push_back(tsv.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// FNV-1a over the *sorted* result lines: a storage-backend- and
// plan-order-insensitive fingerprint of the result set, compared across the
// heap and mmap runs by ci/validate_bench.py planner-gates.
std::string TsvHash(const std::string& tsv) {
  const std::string canon = SortedLines(tsv);
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 20000;
  int iters = 1;
  std::string json_path;
  std::string storage = "heap";
  bool ablate_hash = false;
  bool ablate_sip = false;
  rdfa::bench::TraceSink trace_sink;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      size_t s = ParseScale(arg.c_str() + 8);
      if (s > 0) scale = s;
    } else if (arg.rfind("--iters=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 8);
      iters = n < 1 ? 1 : n;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--ablate-hash-join") {
      ablate_hash = true;
    } else if (arg == "--ablate-sip") {
      ablate_sip = true;
    } else if (arg.rfind("--storage=", 0) == 0) {
      storage = arg.substr(10);
      if (storage != "heap" && storage != "mmap") {
        std::fprintf(stderr, "unknown --storage=%s (heap|mmap)\n",
                     storage.c_str());
        return 1;
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_sink.set_dir(arg.substr(12));
    }
  }

  const JoinStrategy adaptive =
      ablate_hash ? JoinStrategy::kNestedLoop : JoinStrategy::kAdaptive;
  const std::vector<Config> configs = {
      // The NLJ baseline: the pre-stats cost model, nested loops only.
      {"legacy-nlj/source", false, false, JoinStrategy::kNestedLoop},
      {"legacy-nlj/reorder", true, false, JoinStrategy::kNestedLoop},
      // Calibrated estimates, still nested loops: isolates the cost model.
      {"stats-nlj/reorder", true, true, JoinStrategy::kNestedLoop},
      // PR-3 tentpole: calibrated estimates + adaptive hash join.
      {"stats-adaptive/source", false, true, adaptive},
      {"stats-adaptive/reorder", true, true, adaptive},
      // Planner v2: DP join ordering + merge joins (+ SIP unless ablated).
      // DP *is* the reorderer, so the two rows share one plan and exist for
      // accounting symmetry with the per-flag pairs above.
      {"dp-merge/source", false, true, JoinStrategy::kMerge, true,
       !ablate_sip},
      {"dp-merge/reorder", true, true, JoinStrategy::kMerge, true,
       !ablate_sip},
  };

  std::printf(
      "== BGP ablation: reorder x cost model x join strategy x planner ==\n"
      "\n");
  rdfa::rdf::Graph heap_graph;
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = scale;
  opt.companies = scale / 100 + 5;
  rdfa::workload::GenerateProductKg(&heap_graph, opt);
  std::unique_ptr<rdfa::rdf::Graph> mapped_graph;
  rdfa::rdf::Graph* g = &heap_graph;
  if (storage == "mmap") {
    const std::string snap =
        "/tmp/bench_ablation_" + std::to_string(scale) + ".rdfa";
    if (!rdfa::rdf::SaveBinaryFile(heap_graph, snap).ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n", snap.c_str());
      return 1;
    }
    auto mapped = rdfa::rdf::OpenMappedSnapshot(snap);
    if (!mapped.ok()) {
      std::fprintf(stderr, "snapshot open failed: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    mapped_graph = std::move(mapped).value();
    g = mapped_graph.get();
  }
  g->Freeze();
  std::printf(
      "product KG: %zu triples (%zu laptops, %zu companies) storage=%s%s%s\n"
      "\n",
      g->size(), opt.laptops, opt.companies, storage.c_str(),
      ablate_hash ? "  [hash join ABLATED]" : "",
      ablate_sip ? "  [SIP ABLATED]" : "");

  bool identical = true;
  bool all_ok = true;
  size_t baseline_scanned = 0;  // legacy-nlj, summed over queries + orders
  size_t adaptive_scanned = 0;  // stats-adaptive, same accounting
  size_t dp_scanned = 0;        // dp-merge, same accounting
  std::vector<double> latencies;
  std::vector<std::string> run_json;

  for (const QuerySpec& spec : kSuite) {
    const std::string query = std::string(kPfx) + spec.body;
    std::printf("%s  %s\n", spec.id, spec.description);
    // Equivalence contract: runs that share a join order (same `reorder`
    // flag and cost model, or the same DP plan) must match byte-for-byte no
    // matter the strategy; runs under different orders must agree as row
    // sets.
    std::vector<std::string> tsvs;  // parallel to configs
    for (const Config& cfg : configs) {
      RunResult first;
      std::vector<double> cfg_ms;
      for (int it = 0; it < iters; ++it) {
        std::shared_ptr<rdfa::Tracer> tracer =
            it == 0 ? trace_sink.StartRun() : nullptr;
        RunResult r = RunOnce(g, query, cfg, tracer);
        if (tracer != nullptr) {
          (void)trace_sink.FinishRun(tracer.get(), "ablation");
        }
        if (!r.ok) {
          all_ok = false;
          break;
        }
        cfg_ms.push_back(r.ms);
        latencies.push_back(r.ms);
        if (it == 0) first = std::move(r);
      }
      if (!first.ok) {
        tsvs.emplace_back();
        continue;
      }
      tsvs.push_back(first.tsv);
      const size_t scanned = TotalScanned(first.stats);
      if (cfg.name.rfind("legacy-nlj", 0) == 0) {
        baseline_scanned += scanned;
      } else if (cfg.name.rfind("stats-adaptive", 0) == 0) {
        adaptive_scanned += scanned;
      } else if (cfg.name.rfind("dp-merge", 0) == 0) {
        dp_scanned += scanned;
      }
      std::printf("  %-24s %9zu scanned  strategy=%-4s %9.2f ms\n",
                  cfg.name.c_str(), scanned,
                  StrategyString(first.stats).c_str(),
                  Percentile(cfg_ms, 0.50));

      JsonObject run;
      run.AddString("query", spec.id);
      run.AddString("config", cfg.name);
      run.AddBool("reorder", cfg.reorder);
      run.AddBool("calibrated", cfg.calibrated);
      run.AddString("strategy", StrategyName(cfg.strategy));
      run.AddBool("use_dp", cfg.use_dp);
      run.AddBool("sip", cfg.sip);
      run.AddInt("rows_scanned_total", scanned);
      run.AddString("tsv_hash", TsvHash(first.tsv));
      run.AddNumber("p50_ms", Percentile(cfg_ms, 0.50));
      run.AddNumber("p99_ms", Percentile(cfg_ms, 0.99));
      // ExecStats embeds the plan shapes ("plans": the explainable per-step
      // strategy/permutation JSON) for the planner-v2 configs.
      run.AddRaw("exec_stats", first.stats.ToJson());
      run_json.push_back(run.Render());
    }
    if (tsvs.size() == configs.size() && !tsvs[0].empty()) {
      // Indices follow `configs`: 0/3 share the source-order plan, 2/4 the
      // calibrated reordered plan, 5/6 the DP plan — those pairs differ
      // only in strategy and must be byte-identical. Any other pair may
      // differ in row order.
      auto check_exact = [&](size_t a, size_t b) {
        if (tsvs[a] != tsvs[b]) {
          identical = false;
          std::printf("  DIVERGED: %s vs %s (same plan)\n",
                      configs[a].name.c_str(), configs[b].name.c_str());
        }
      };
      auto check_set = [&](size_t a, size_t b) {
        if (SortedLines(tsvs[a]) != SortedLines(tsvs[b])) {
          identical = false;
          std::printf("  DIVERGED: %s vs %s (row sets)\n",
                      configs[a].name.c_str(), configs[b].name.c_str());
        }
      };
      check_exact(0, 3);
      check_exact(2, 4);
      check_exact(5, 6);
      check_set(0, 1);
      check_set(0, 2);
      check_set(0, 5);
    }
  }

  std::printf("\ntotals over the query set (source + reordered runs):\n");
  std::printf("  legacy-nlj baseline : %9zu rows scanned\n", baseline_scanned);
  std::printf("  stats-adaptive      : %9zu rows scanned (%.1fx fewer)\n",
              adaptive_scanned,
              adaptive_scanned > 0
                  ? static_cast<double>(baseline_scanned) /
                        static_cast<double>(adaptive_scanned)
                  : 0.0);
  const double planner_ratio =
      dp_scanned > 0 ? static_cast<double>(adaptive_scanned) /
                           static_cast<double>(dp_scanned)
                     : 0.0;
  std::printf("  dp-merge (planner v2): %8zu rows scanned (%.2fx fewer than "
              "adaptive)\n",
              dp_scanned, planner_ratio);
  std::printf("  results across configs: %s\n",
              identical ? "equivalent" : "DIVERGED");

  const bool hash_won = adaptive_scanned < baseline_scanned;
  if (!ablate_hash && !hash_won) {
    std::printf("FAILED: adaptive hash join did not reduce rows scanned\n");
  }
  const bool dp_won = dp_scanned < adaptive_scanned;
  if (!ablate_sip && !ablate_hash && !dp_won) {
    std::printf(
        "FAILED: planner v2 (DP+merge) did not reduce rows scanned\n");
  }

  if (!json_path.empty()) {
    JsonObject top;
    top.AddString("bench", "bench_ablation");
    top.AddInt("scale", scale);
    top.AddInt("iters", static_cast<uint64_t>(iters));
    top.AddInt("triples", g->size());
    top.AddString("storage", storage);
    top.AddBool("ablate_hash_join", ablate_hash);
    top.AddBool("ablate_sip", ablate_sip);
    top.AddNumber("p50_ms", Percentile(latencies, 0.50));
    top.AddNumber("p99_ms", Percentile(latencies, 0.99));
    top.AddInt("baseline_rows_scanned", baseline_scanned);
    top.AddInt("adaptive_rows_scanned", adaptive_scanned);
    top.AddInt("dp_rows_scanned", dp_scanned);
    top.AddNumber("planner_ratio", planner_ratio);
    top.AddBool("byte_identical", identical);
    top.AddRaw("runs", JsonArray(run_json));
    if (!WriteJsonFile(json_path, top.Render())) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_ok || !identical) return 1;
  if (!ablate_hash && !hash_won) return 1;
  if (!ablate_sip && !ablate_hash && !dp_won) return 1;
  return 0;
}
