// Ablations for the design choices DESIGN.md calls out:
//   * BGP join reordering on/off (selectivity-ordered index joins),
//   * RDFS closure materialized vs raw graph (facet completeness cost),
//   * endpoint answer cache on/off (repeat-query latency).

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "analytics/rollup_cache.h"
#include "analytics/session.h"
#include "endpoint/endpoint.h"
#include "rdf/rdfs.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

// A query whose pattern order is deliberately bad: the selective pattern
// (origin = country0) comes last.
std::string SelectiveQuery() {
  return "PREFIX ex: <" + kEx +
         ">\n"
         "SELECT ?x (AVG(?p) AS ?avg) WHERE {\n"
         "  ?x ex:releaseDate ?d .\n"
         "  ?x ex:price ?p .\n"
         "  ?x ex:manufacturer ?m .\n"
         "  ?m ex:origin ex:country0 .\n"
         "} GROUP BY ?x";
}

rdfa::rdf::Graph* SharedGraph(size_t laptops, bool closure) {
  static std::map<std::pair<size_t, bool>, rdfa::rdf::Graph>* graphs =
      new std::map<std::pair<size_t, bool>, rdfa::rdf::Graph>();
  auto key = std::make_pair(laptops, closure);
  auto it = graphs->find(key);
  if (it == graphs->end()) {
    rdfa::rdf::Graph g;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = 40;
    rdfa::workload::GenerateProductKg(&g, opt);
    if (closure) rdfa::rdf::MaterializeRdfsClosure(&g);
    it = graphs->emplace(key, std::move(g)).first;
  }
  return &it->second;
}

void BM_JoinOrder(benchmark::State& state) {
  bool reorder = state.range(1) != 0;
  rdfa::rdf::Graph* g =
      SharedGraph(static_cast<size_t>(state.range(0)), /*closure=*/false);
  auto parsed = rdfa::sparql::ParseQuery(SelectiveQuery());
  rdfa::sparql::Executor exec(g, reorder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Select(parsed.value().select));
  }
  state.SetLabel(reorder ? "selectivity reordering ON"
                         : "source order (reordering OFF)");
}
BENCHMARK(BM_JoinOrder)
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Args({16000, 0})
    ->Args({16000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FilterPushdown(benchmark::State& state) {
  bool push = state.range(0) != 0;
  rdfa::rdf::Graph* g = SharedGraph(16000, /*closure=*/false);
  // A selective filter early in the pattern: pushing it prunes the rows
  // before the remaining joins.
  std::string q = "PREFIX ex: <" + kEx +
                  ">\n"
                  "SELECT ?x WHERE {\n"
                  "  ?x ex:price ?p . FILTER(?p < 400)\n"
                  "  ?x ex:manufacturer ?m .\n"
                  "  ?m ex:origin ?c .\n"
                  "  ?c ex:GDPPerCapita ?g .\n"
                  "}";
  auto parsed = rdfa::sparql::ParseQuery(q);
  rdfa::sparql::Executor exec(g, /*reorder_joins=*/false, push);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Select(parsed.value().select));
  }
  state.SetLabel(push ? "filter pushdown ON" : "filters deferred to group end");
}
BENCHMARK(BM_FilterPushdown)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TypeQueryWithWithoutClosure(benchmark::State& state) {
  bool closure = state.range(0) != 0;
  rdfa::rdf::Graph* g = SharedGraph(8000, closure);
  // Counting all Products needs the closure (Laptops + drives are Products
  // only via subClassOf inference).
  std::string q = "PREFIX ex: <" + kEx +
                  ">\nSELECT (COUNT(?x) AS ?n) WHERE { ?x a ex:Product . }";
  auto parsed = rdfa::sparql::ParseQuery(q);
  rdfa::sparql::Executor exec(g);
  size_t count = 0;
  for (auto _ : state) {
    auto res = exec.Select(parsed.value().select);
    if (res.ok() && res.value().num_rows() == 1) {
      count = static_cast<size_t>(
          std::strtoull(res.value().at(0, 0).lexical().c_str(), nullptr, 10));
    }
    benchmark::DoNotOptimize(count);
  }
  state.counters["products_found"] = static_cast<double>(count);
  state.SetLabel(closure ? "RDFS closure materialized"
                         : "raw graph (misses inferred types)");
}
BENCHMARK(BM_TypeQueryWithWithoutClosure)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Roll-up answered from the base KG vs from the cached finer answer (the
// materialized-view reuse of §3.3 [16]/[51]).
void BM_RollupReuse(benchmark::State& state) {
  bool reuse = state.range(0) != 0;
  rdfa::rdf::Graph* g = SharedGraph(8000, /*closure=*/false);
  auto run_fine = [&]() {
    rdfa::analytics::AnalyticsSession s(g);
    (void)s.fs().ClickClass(kEx + "Laptop");
    rdfa::analytics::GroupingSpec g1, g2;
    g1.path = {kEx + "manufacturer"};
    g2.path = {kEx + "USBPorts"};
    (void)s.ClickGroupBy(g1);
    (void)s.ClickGroupBy(g2);
    rdfa::analytics::MeasureSpec m;
    m.path = {kEx + "price"};
    m.ops = {rdfa::hifun::AggOp::kSum};
    (void)s.ClickAggregate(m);
    auto af = s.Execute();
    return std::move(af).value_or(rdfa::analytics::AnswerFrame{});
  };
  rdfa::analytics::AnswerFrame fine = run_fine();
  for (auto _ : state) {
    if (reuse) {
      benchmark::DoNotOptimize(rdfa::analytics::RollUpAnswer(
          fine, {fine.table().columns()[0]}, "agg1",
          rdfa::hifun::AggOp::kSum));
    } else {
      rdfa::analytics::AnalyticsSession s(g);
      (void)s.fs().ClickClass(kEx + "Laptop");
      rdfa::analytics::GroupingSpec g1;
      g1.path = {kEx + "manufacturer"};
      (void)s.ClickGroupBy(g1);
      rdfa::analytics::MeasureSpec m;
      m.path = {kEx + "price"};
      m.ops = {rdfa::hifun::AggOp::kSum};
      (void)s.ClickAggregate(m);
      benchmark::DoNotOptimize(s.Execute());
    }
  }
  state.SetLabel(reuse ? "roll-up from cached finer answer"
                       : "roll-up re-queries the base KG");
}
BENCHMARK(BM_RollupReuse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EndpointCache(benchmark::State& state) {
  bool cache = state.range(0) != 0;
  rdfa::rdf::Graph* g = SharedGraph(8000, /*closure=*/false);
  rdfa::endpoint::SimulatedEndpoint ep(
      g, rdfa::endpoint::LatencyProfile::Local(), cache);
  std::string q = SelectiveQuery();
  // Warm the cache once.
  (void)ep.Query(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ep.Query(q));
  }
  state.SetLabel(cache ? "answer cache ON (repeat query)"
                       : "answer cache OFF");
}
BENCHMARK(BM_EndpointCache)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
