// Reproduces §7 (Figs 7.1 / 7.2): the OLAP operators supported by the
// interaction model — roll-up, drill-down, slice, dice, pivot — executed
// over an invoices cube, with timing and cube sizes at each step.
//
// Run: ./build/bench/bench_olap [--scale=1k|20k] [--iters=N] [--json=<path>]
//                               [--trace-out=<dir>] [--cache-mb=N]
//   --scale: invoice count of the generated cube KG (default 20k)
//   --iters: repetitions per OLAP operator (default 1; the first run is
//            printed, all runs feed the p50/p99 figures)
//   --cache-mb: generation-aware roll-up cache budget in MB (0 = off, the
//            default). With the cache on, revisited cube levels (repeat
//            iterations, drill-down back to an already-materialized level)
//            are served from the cache, every cached cube is byte-compared
//            against the first materialization, and hit rates land in the
//            JSON output.
//   --json:  write one machine-readable JSON object for the run (scale,
//            iters, p50/p99, per-step ExecStats)
//   --trace-out: write one Chrome trace-event JSON file per OLAP step
//            (first iteration of each) under <dir>, Perfetto-loadable

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analytics/olap.h"
#include "analytics/rollup_cache.h"
#include "bench_util.h"
#include "common/query_context.h"
#include "workload/invoices.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::MsSince;
using rdfa::bench::ParseScale;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;

const std::string kInv = rdfa::workload::kInvoiceNs;

int g_iters = 1;
std::vector<double> g_latencies_ms;
std::vector<std::string> g_step_json;
rdfa::bench::TraceSink g_trace;
size_t g_cache_mb = 0;
std::unique_ptr<rdfa::analytics::RollupCache> g_cache;
int g_cache_mismatches = 0;

void Step(const char* op, rdfa::analytics::OlapView* cube) {
  // First materialization of this step, for the cache byte-identity check.
  std::string reference_tsv;
  for (int i = 0; i < g_iters; ++i) {
    // Only the first iteration of each step writes a trace file; the span
    // structure is identical across iterations.
    std::shared_ptr<rdfa::Tracer> tracer;
    if (i == 0 && g_trace.enabled()) {
      tracer = g_trace.StartRun();
      rdfa::QueryContext ctx;
      ctx.set_tracer(tracer);
      cube->set_query_context(ctx);
    }
    auto start = std::chrono::steady_clock::now();
    auto af = cube->Materialize();
    double ms = MsSince(start);
    if (tracer != nullptr) {
      cube->set_query_context(rdfa::QueryContext());
      (void)g_trace.FinishRun(tracer.get(), "olap");
    }
    if (!af.ok()) {
      std::printf("%-38s FAILED: %s\n", op, af.status().ToString().c_str());
      return;
    }
    g_latencies_ms.push_back(ms);
    if (g_cache != nullptr) {
      std::string tsv = af.value().table().ToTsv();
      if (i == 0) {
        reference_tsv = std::move(tsv);
      } else if (tsv != reference_tsv) {
        std::printf("%-38s CACHED CUBE DIVERGED\n", op);
        ++g_cache_mismatches;
      }
    }
    if (i == 0) {
      std::printf("%-38s %8zu cells %10.2f ms\n", op,
                  af.value().table().num_rows(), ms);
      JsonObject step;
      step.AddString("op", op);
      step.AddInt("cells", af.value().table().num_rows());
      step.AddNumber("ms", ms);
      step.AddRaw("exec_stats", cube->last_exec_stats().ToJson());
      g_step_json.push_back(step.Render());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 20000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      size_t s = ParseScale(arg.c_str() + 8);
      if (s > 0) scale = s;
    } else if (arg.rfind("--iters=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 8);
      g_iters = n < 1 ? 1 : n;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      long mb = std::atol(arg.c_str() + 11);
      g_cache_mb = mb < 0 ? 0 : static_cast<size_t>(mb);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace.set_dir(arg.substr(12));
    }
  }
  if (g_cache_mb > 0) {
    rdfa::CacheOptions copts = rdfa::analytics::RollupCache::DefaultOptions();
    copts.max_bytes = g_cache_mb << 20;
    g_cache = std::make_unique<rdfa::analytics::RollupCache>(copts);
    if (g_iters < 2) {
      // One iteration per step would only exercise hits on revisited
      // levels; bump so every step gets a cached re-materialization and
      // the byte-identity check has something to compare.
      g_iters = 2;
      std::printf("(--cache-mb set: raising --iters to 2 so cached cubes "
                  "can be exercised)\n");
    }
  }
  std::printf("== Fig 7.1/7.2 reproduction: OLAP operators over the invoices "
              "cube ==\n\n");
  rdfa::rdf::Graph g;
  rdfa::workload::InvoicesOptions opt;
  opt.invoices = scale;
  opt.branches = 25;
  opt.products = 200;
  opt.brands = 15;
  rdfa::workload::GenerateInvoices(&g, opt);
  std::printf("invoices KG: %zu triples\n\n", g.size());

  rdfa::analytics::AnalyticsSession session(&g);
  if (!session.fs().ClickClass(kInv + "Invoice").ok()) return 1;

  rdfa::analytics::Dimension time;
  time.name = "time";
  time.levels = {
      {"date", {kInv + "hasDate"}, ""},
      {"month", {kInv + "hasDate"}, "MONTH"},
      {"year", {kInv + "hasDate"}, "YEAR"},
  };
  rdfa::analytics::Dimension product;
  product.name = "product";
  product.levels = {
      {"product", {kInv + "delivers"}, ""},
      {"brand", {kInv + "delivers", kInv + "brand"}, ""},
  };
  rdfa::analytics::MeasureSpec measure;
  measure.path = {kInv + "inQuantity"};
  measure.ops = {rdfa::hifun::AggOp::kSum};

  rdfa::analytics::OlapView cube(&session, {time, product}, measure);
  if (g_cache != nullptr) cube.set_cache(g_cache.get());

  std::printf("%-38s %14s %13s\n", "operation", "result", "time");
  Step("base cube (date x product)", &cube);
  (void)cube.RollUp("time");
  Step("roll-up time->month", &cube);
  (void)cube.RollUp("time");
  Step("roll-up time->year", &cube);
  (void)cube.RollUp("product");
  Step("roll-up product->brand", &cube);
  (void)cube.DrillDown("time");
  Step("drill-down time->month", &cube);
  cube.Pivot();
  Step("pivot (brand major)", &cube);
  (void)cube.Dice("product", std::nullopt, std::nullopt);  // no-op (error)
  (void)cube.Slice("product",
                   rdfa::rdf::Term::Iri(kInv + "brand0"));
  Step("slice product=brand0", &cube);

  std::printf("\nmaterialization latency over %zu runs: p50 %.2f ms, "
              "p99 %.2f ms\n",
              g_latencies_ms.size(), Percentile(g_latencies_ms, 0.50),
              Percentile(g_latencies_ms, 0.99));

  uint64_t update_hits = 0;
  int update_rounds = 0;
  if (g_cache != nullptr) {
    rdfa::CacheStats s = g_cache->Stats();
    std::printf("\nrollup cache: %llu hits / %llu misses (%.0f%% hit rate), "
                "%zu cubes resident, %zu bytes\n",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses), 100 * s.HitRate(),
                s.entries, s.bytes);
    // Mixed-updates leg: mutations to an *unrelated* predicate must not
    // invalidate materialized cubes. Footprint-stamped entries are only
    // bound to the predicates their SPARQL touches, so these pokes leave
    // every cube valid and re-materializations keep hitting.
    const uint64_t pre_hits = s.hits;
    update_rounds = 3;
    for (int round = 0; round < update_rounds; ++round) {
      g.Add(rdfa::rdf::Term::Iri(kInv + "poke" + std::to_string(round)),
            rdfa::rdf::Term::Iri(kInv + "benchPoke"),
            rdfa::rdf::Term::Integer(round));
      auto af = cube.Materialize();
      if (!af.ok()) {
        std::printf("FAILED: materialization under updates: %s\n",
                    af.status().ToString().c_str());
        return 1;
      }
    }
    update_hits = g_cache->Stats().hits - pre_hits;
    std::printf("rollup cache under updates: %llu hits across %d "
                "unrelated-predicate mutations%s\n",
                static_cast<unsigned long long>(update_hits), update_rounds,
                update_hits > 0 ? "" : "  FAILED (expected hits > 0)");
    if (update_hits == 0) ++g_cache_mismatches;
  }

  // Deadline demonstration: an impossible budget must unwind with a typed
  // DEADLINE_EXCEEDED (partial stats preserved), not hang or return a cube.
  // The cache is detached first — a memoized cube would (correctly) be
  // served without executing anything, so nothing would trip.
  cube.set_cache(nullptr);
  cube.set_query_context(rdfa::QueryContext::WithDeadlineMs(0.0));
  auto tripped = cube.Materialize();
  if (tripped.ok() ||
      tripped.status().code() != rdfa::StatusCode::kDeadlineExceeded) {
    std::printf("FAILED: 0 ms budget did not trip the deadline\n");
    return 1;
  }
  std::printf("0 ms budget: %s (aborted@%s)\n",
              tripped.status().ToString().c_str(),
              cube.last_exec_stats().abort_stage.c_str());
  cube.set_query_context(rdfa::QueryContext());

  std::printf(
      "\nshape check vs paper: roll-up shrinks the cube monotonically, "
      "drill-down restores the finer cube,\nslice removes a dimension; every "
      "operator is a constant number of interaction-model actions.\n");

  // --- serial vs morsel-parallel materialization --------------------------
  // The parallel cube must be byte-identical to the serial one; thread
  // count is purely a performance knob (DESIGN.md threading model).
  std::printf("\n== serial vs parallel cube materialization ==\n\n");
  rdfa::analytics::AnalyticsSession serial_session(&g);
  rdfa::analytics::AnalyticsSession parallel_session(&g);
  if (!serial_session.fs().ClickClass(kInv + "Invoice").ok()) return 1;
  if (!parallel_session.fs().ClickClass(kInv + "Invoice").ok()) return 1;
  rdfa::analytics::OlapView serial_cube(&serial_session, {time, product},
                                        measure);
  rdfa::analytics::OlapView parallel_cube(&parallel_session, {time, product},
                                          measure);
  parallel_cube.set_thread_count(4);

  bool identical = true;
  double serial_total = 0, parallel_total = 0;
  std::printf("%-30s %12s %12s %10s\n", "cube", "serial", "4 threads",
              "identical");
  for (int step = 0; step < 3; ++step) {
    auto s_start = std::chrono::steady_clock::now();
    auto s_af = serial_cube.Materialize();
    double s_ms = MsSince(s_start);
    auto p_start = std::chrono::steady_clock::now();
    auto p_af = parallel_cube.Materialize();
    double p_ms = MsSince(p_start);
    if (!s_af.ok() || !p_af.ok()) {
      std::printf("materialization failed at step %d\n", step);
      return 1;
    }
    bool same =
        s_af.value().table().ToTsv() == p_af.value().table().ToTsv();
    identical = identical && same;
    serial_total += s_ms;
    parallel_total += p_ms;
    std::printf("%-30s %10.2fms %10.2fms %10s\n",
                step == 0 ? "base (date x product)" : "after roll-up",
                s_ms, p_ms, same ? "yes" : "NO");
    std::printf("  stats: %s\n",
                parallel_cube.last_exec_stats().Summary().c_str());
    (void)serial_cube.RollUp("time");
    (void)parallel_cube.RollUp("time");
  }
  std::printf("\ntotals: serial %.2fms, 4 threads %.2fms (speedup %.2fx), "
              "results %s\n",
              serial_total, parallel_total,
              parallel_total > 0 ? serial_total / parallel_total : 0.0,
              identical ? "byte-identical" : "DIVERGED");

  if (!json_path.empty()) {
    JsonObject top;
    top.AddString("bench", "bench_olap");
    top.AddInt("scale", scale);
    top.AddInt("iters", static_cast<uint64_t>(g_iters));
    top.AddInt("triples", g.size());
    top.AddNumber("p50_ms", Percentile(g_latencies_ms, 0.50));
    top.AddNumber("p99_ms", Percentile(g_latencies_ms, 0.99));
    top.AddNumber("serial_total_ms", serial_total);
    top.AddNumber("parallel_total_ms", parallel_total);
    top.AddBool("byte_identical", identical);
    top.AddInt("cache_mb", g_cache_mb);
    {
      rdfa::CacheStats s =
          g_cache != nullptr ? g_cache->Stats() : rdfa::CacheStats{};
      JsonObject cache;
      cache.AddInt("hits", s.hits);
      cache.AddInt("misses", s.misses);
      cache.AddNumber("hit_rate", s.HitRate());
      cache.AddInt("evictions", s.evictions);
      cache.AddInt("invalidations", s.invalidations);
      top.AddRaw("rollup_cache", cache.Render());
    }
    top.AddInt("update_rounds", static_cast<uint64_t>(update_rounds));
    top.AddInt("update_hits", update_hits);
    top.AddInt("cache_mismatches", static_cast<uint64_t>(g_cache_mismatches));
    top.AddRaw("runs", JsonArray(g_step_json));
    if (!WriteJsonFile(json_path, top.Render())) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical && g_cache_mismatches == 0 ? 0 : 1;
}
