// Reproduces Tables 6.1 ("Efficiency - peak hours") and 6.2 ("Efficiency -
// off-peak hours") of the dissertation: the time to evaluate the analytic
// queries the interaction model generates, against an endpoint under peak
// vs. off-peak conditions.
//
// Substitution (see DESIGN.md): the paper measured a live remote endpoint;
// we measure the real local evaluation of the identical generated SPARQL
// and add a deterministic modeled endpoint overhead (load multiplier +
// network round trip). The *shape* to reproduce: every query stays
// interactive off-peak (sub-second for facet-sized work), peak hours
// multiply totals by a few x, and cost grows with query complexity and
// dataset size.
//
// Run: ./build/bench/bench_efficiency [--scale=1k|2k|20k] [--iters=N]
//                                     [--json=<path>] [--trace-out=<dir>]
//                                     [--query-log=<path>] [--cache-mb=N]
//   --scale: laptop count of the product KG (default: both 2k and 20k)
//   --iters: how many times to run the query suite per profile (default 1;
//            more iterations sharpen the p50/p99 figures)
//   --cache-mb: answer/plan cache budget in MB (0 = off, the default).
//            With the cache on, iterations past the first hit the cache and
//            every cached answer is byte-compared against the uncached
//            first-iteration answer (any difference is a bench failure);
//            hit rates land in the JSON output.
//   --mixed-writes=N: run the query suite for N rounds against an
//            MvccGraph-backed endpoint with one unrelated-predicate commit
//            between rounds; reports the answer-cache hit rate under
//            updates plus p50/p99 (JSON key "mixed_rw").
//   --global-invalidation: ablate the mixed leg to wildcard footprints
//            (classic whole-cache invalidation) — hit rate drops to 0.
//   --obs-overhead=N: run the suite N rounds with span profiling off and
//            on (interleaved), byte-compare every answer pair, and report
//            both p50s plus the relative overhead (JSON key
//            "observability" — the CI obs-gates job enforces the budget).
//   --json:  write one machine-readable JSON object for the run (scale,
//            iters, p50/p99, per-query ExecStats)
//   --trace-out:  write one Chrome trace-event JSON file per served query
//            (first iteration of each profile) under <dir>
//   --query-log:  append the endpoint's structured query log (one JSON
//            line per query) to <path>
//   --storage={heap,mmap}: run the storage-backend leg — save the KG as
//            RDFA2 (uncompressed) and RDFA3 (compressed), measure
//            cold-start (RDFA2 heap decode + index freeze vs RDFA3 mmap
//            open), bytes on disk, RSS deltas, and byte-compare the whole
//            query suite between the heap and mapped backends; the chosen
//            mode serves the timed suite. Results land under the JSON key
//            "storage" (consumed by the CI storage-gates job).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/trace.h"

#include "bench_util.h"
#include "endpoint/endpoint.h"
#include "hifun/hifun_parser.h"
#include "rdf/binary_io.h"
#include "rdf/rdfs.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "translator/translator.h"
#include "workload/products.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::MsSince;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;
using rdfa::endpoint::LatencyProfile;
using rdfa::endpoint::SimulatedEndpoint;

std::vector<double> g_latencies_ms;
std::vector<std::string> g_run_json;
rdfa::bench::TraceSink g_trace;
std::string g_query_log_path;
size_t g_cache_mb = 0;
rdfa::CacheStats g_answer_stats;
rdfa::CacheStats g_plan_stats;
uint64_t g_cache_mismatches = 0;

void Accumulate(const rdfa::CacheStats& from, rdfa::CacheStats* into) {
  into->hits += from.hits;
  into->misses += from.misses;
  into->evictions += from.evictions;
  into->invalidations += from.invalidations;
  into->entries += from.entries;
  into->bytes += from.bytes;
}

/// Renders one cache layer's counters as a JSON object for the --json
/// output (consumed by the CI cache-ablation validator).
std::string CacheJson(const rdfa::CacheStats& s) {
  JsonObject obj;
  obj.AddInt("hits", s.hits);
  obj.AddInt("misses", s.misses);
  obj.AddNumber("hit_rate", s.HitRate());
  obj.AddInt("evictions", s.evictions);
  obj.AddInt("invalidations", s.invalidations);
  return obj.Render();
}

struct QuerySpec {
  const char* id;
  const char* description;
  const char* hifun;
};

// The query suite: the §5.1 examples plus increasingly complex analytic
// queries of the kinds Chapter 6 exercises.
const QuerySpec kSuite[] = {
    {"Q1", "count by manufacturer", "(manufacturer, ID, COUNT) over Laptop"},
    {"Q2", "avg price by manufacturer",
     "(manufacturer, price, AVG) over Laptop"},
    {"Q3", "avg price by manufacturer origin (path)",
     "(origin o manufacturer, price, AVG) over Laptop"},
    {"Q4", "avg price, usb-restricted",
     "(manufacturer, price / USBPorts >= 2, AVG) over Laptop"},
    {"Q5", "sum+avg+max by manufacturer",
     "(manufacturer, price, SUM+AVG+MAX) over Laptop"},
    {"Q6", "pairing: by manufacturer and year",
     "((manufacturer x YEAR(releaseDate)), price, AVG) over Laptop"},
    {"Q7", "derived: count by release year",
     "(YEAR(releaseDate), ID, COUNT) over Laptop"},
    {"Q8", "having: manufacturers with avg price > 1500",
     "(manufacturer, price, AVG / > 1500) over Laptop"},
    {"Q9", "long path: avg GDP of origin by continent",
     "(locatedAt o origin o manufacturer, price, AVG) over Laptop"},
    {"Q10", "global aggregate (no grouping)",
     "(eps, price, AVG+MIN+MAX) over Laptop"},
};

int RunProfile(rdfa::rdf::Graph* graph, const LatencyProfile& profile,
               const char* table_name, size_t n_triples, int iters) {
  SimulatedEndpoint endpoint(graph, profile);
  if (g_cache_mb > 0) {
    rdfa::CacheOptions copts;
    copts.max_bytes = g_cache_mb << 20;
    endpoint.set_cache_options(copts);
  }
  if (!g_query_log_path.empty()) {
    endpoint.set_query_log_path(g_query_log_path);
  }
  std::printf("\n%s  (%zu triples, profile=%s, load x%.1f, budget %.0f ms)\n",
              table_name, n_triples, profile.name.c_str(),
              profile.load_multiplier, endpoint.effective_timeout_ms());
  std::printf("%-4s %-45s %10s %10s %10s\n", "id", "query", "exec ms",
              "net ms", "total ms");
  int failures = 0;
  rdfa::rdf::PrefixMap prefixes;
  // First-iteration (uncached) answers, for the cache byte-identity check.
  std::vector<std::string> reference_tsv(std::size(kSuite));
  for (int iter = 0; iter < iters; ++iter) {
    double total = 0;
    for (const QuerySpec& spec : kSuite) {
      const size_t qi = static_cast<size_t>(&spec - kSuite);
      auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                       rdfa::workload::kExampleNs);
      if (!q.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     q.status().ToString().c_str());
        ++failures;
        continue;
      }
      auto sparql = rdfa::translator::TranslateToSparql(q.value());
      if (!sparql.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     sparql.status().ToString().c_str());
        ++failures;
        continue;
      }
      // Trace only the first iteration of each query: the span structure
      // repeats, and one file per (profile, query) keeps --trace-out tidy.
      std::shared_ptr<rdfa::Tracer> tracer =
          iter == 0 ? g_trace.StartRun() : nullptr;
      rdfa::QueryContext qctx;
      if (tracer != nullptr) qctx.set_tracer(tracer);
      auto resp = endpoint.Query(sparql.value(), qctx);
      if (tracer != nullptr) {
        (void)g_trace.FinishRun(tracer.get(), "efficiency");
      }
      if (!resp.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     resp.status().ToString().c_str());
        ++failures;
        continue;
      }
      if (!resp.value().status.ok()) {
        std::printf("%-4s %-45s %30s\n", spec.id, spec.description,
                    resp.value().status.ToString().c_str());
        continue;
      }
      g_latencies_ms.push_back(resp.value().total_ms);
      if (g_cache_mb > 0) {
        // Cached (later-iteration) answers must be byte-identical to the
        // uncached first-iteration answer of the same query.
        std::string tsv = resp.value().table.ToTsv();
        if (iter == 0) {
          reference_tsv[qi] = std::move(tsv);
        } else if (tsv != reference_tsv[qi]) {
          std::fprintf(stderr,
                       "%s: cached answer differs from the uncached one\n",
                       spec.id);
          ++failures;
          ++g_cache_mismatches;
        }
      }
      if (iter == 0) {
        std::printf("%-4s %-45s %10.2f %10.2f %10.2f\n", spec.id,
                    spec.description, resp.value().exec_ms,
                    resp.value().network_ms, resp.value().total_ms);
        JsonObject run;
        run.AddString("query", spec.id);
        run.AddString("profile", profile.name);
        run.AddInt("triples", n_triples);
        run.AddNumber("exec_ms", resp.value().exec_ms);
        run.AddNumber("network_ms", resp.value().network_ms);
        run.AddNumber("total_ms", resp.value().total_ms);
        run.AddRaw("exec_stats", resp.value().exec_stats.ToJson());
        g_run_json.push_back(run.Render());
      }
      total += resp.value().total_ms;
    }
    if (iter == 0) {
      std::printf("%-4s %-45s %10s %10s %10.2f\n", "", "TOTAL", "", "",
                  total);
    }
  }
  rdfa::endpoint::EndpointStats stats = endpoint.Stats();
  std::printf("latency over %zu served: p50 %.2f ms, p99 %.2f ms, "
              "queued p50 %.2f ms / p99 %.2f ms "
              "(shed %zu, timed out %zu, cancelled %zu)\n",
              stats.count, stats.p50_total_ms, stats.p99_total_ms,
              stats.p50_queued_ms, stats.p99_queued_ms,
              stats.shed, stats.timed_out, stats.cancelled);
  if (g_cache_mb > 0) {
    rdfa::CacheStats a = endpoint.answer_cache_stats();
    rdfa::CacheStats p = endpoint.plan_cache_stats();
    std::printf("cache: answer %llu hits / %llu misses (%.0f%%), "
                "plan %llu hits / %llu misses (%.0f%%)\n",
                static_cast<unsigned long long>(a.hits),
                static_cast<unsigned long long>(a.misses), 100 * a.HitRate(),
                static_cast<unsigned long long>(p.hits),
                static_cast<unsigned long long>(p.misses), 100 * p.HitRate());
    Accumulate(a, &g_answer_stats);
    Accumulate(p, &g_plan_stats);
  }
  return failures;
}

/// Mixed read/write leg: the query suite runs for `rounds` rounds against
/// an MvccGraph-backed endpoint while a writer commits one insert to an
/// *unrelated* predicate (ex:benchPoke) between rounds. With
/// predicate-granular invalidation the cached answers survive every commit
/// (nonzero hit rate from round 2 on); with --global-invalidation (the
/// ablation baseline: wildcard footprints, i.e. the old global-generation
/// stamp) every commit wipes the cache and the hit rate stays 0. Answers
/// are byte-compared against round 1 throughout — the poke predicate never
/// appears in the suite, so any drift is a correctness failure.
int RunMixedReadWrite(size_t laptops, int rounds, bool predicate_inval,
                      std::string* json_out) {
  auto base = std::make_unique<rdfa::rdf::Graph>();
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = laptops;
  opt.companies = laptops / 100 + 5;
  rdfa::workload::GenerateProductKg(base.get(), opt);
  rdfa::rdf::MaterializeRdfsClosure(base.get());
  const size_t n_triples = base->size();
  rdfa::rdf::MvccGraph mvcc(std::move(base));

  SimulatedEndpoint endpoint(&mvcc, LatencyProfile::Local(), true);
  rdfa::CacheOptions copts;
  copts.max_bytes = (g_cache_mb > 0 ? g_cache_mb : 64) << 20;
  endpoint.set_cache_options(copts);
  endpoint.set_predicate_invalidation(predicate_inval);

  std::printf("\n== mixed read/write (%zu triples, %d rounds, %s "
              "invalidation) ==\n",
              n_triples, rounds, predicate_inval ? "predicate" : "global");
  int failures = 0;
  uint64_t mismatches = 0;
  std::vector<double> latencies;
  std::vector<std::string> reference_tsv(std::size(kSuite));
  rdfa::rdf::PrefixMap prefixes;
  for (int round = 0; round < rounds; ++round) {
    for (const QuerySpec& spec : kSuite) {
      const size_t qi = static_cast<size_t>(&spec - kSuite);
      auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                       rdfa::workload::kExampleNs);
      if (!q.ok()) { ++failures; continue; }
      auto sparql = rdfa::translator::TranslateToSparql(q.value());
      if (!sparql.ok()) { ++failures; continue; }
      auto resp = endpoint.Query(sparql.value());
      if (!resp.ok() || !resp.value().status.ok()) {
        std::fprintf(stderr, "%s: mixed-rw query failed\n", spec.id);
        ++failures;
        continue;
      }
      latencies.push_back(resp.value().total_ms);
      std::string tsv = resp.value().table.ToTsv();
      if (round == 0) {
        reference_tsv[qi] = std::move(tsv);
      } else if (tsv != reference_tsv[qi]) {
        std::fprintf(stderr,
                     "%s: answer drifted under concurrent writes\n", spec.id);
        ++failures;
        ++mismatches;
      }
    }
    // The between-rounds write: one commit touching only ex:benchPoke.
    const std::string ns = rdfa::workload::kExampleNs;
    mvcc.Insert(
        rdfa::rdf::Term::Iri(ns + "poke" + std::to_string(round)),
        rdfa::rdf::Term::Iri(ns + "benchPoke"),
        rdfa::rdf::Term::Integer(round));
    auto committed = mvcc.Commit();
    if (!committed.ok()) {
      std::fprintf(stderr, "mixed-rw commit failed: %s\n",
                   committed.status().ToString().c_str());
      ++failures;
    }
  }
  rdfa::CacheStats a = endpoint.answer_cache_stats();
  std::printf("answer cache under updates: %llu hits / %llu misses "
              "(%.0f%%), %llu invalidations; p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(a.hits),
              static_cast<unsigned long long>(a.misses), 100 * a.HitRate(),
              static_cast<unsigned long long>(a.invalidations),
              Percentile(latencies, 0.50), Percentile(latencies, 0.99));
  if (json_out != nullptr) {
    JsonObject obj;
    obj.AddInt("rounds", static_cast<uint64_t>(rounds));
    obj.AddString("invalidation", predicate_inval ? "predicate" : "global");
    obj.AddRaw("answer_cache", CacheJson(a));
    obj.AddRaw("plan_cache", CacheJson(endpoint.plan_cache_stats()));
    obj.AddNumber("p50_ms", Percentile(latencies, 0.50));
    obj.AddNumber("p99_ms", Percentile(latencies, 0.99));
    obj.AddInt("mismatches", mismatches);
    *json_out = obj.Render();
  }
  return failures;
}

/// Deterministic admission/timeout demonstration: a held slot forces a
/// shed; a sub-millisecond budget forces a deadline trip.
int RunAdmissionDemo(rdfa::rdf::Graph* graph) {
  std::printf("\n== admission control & deadlines ==\n");
  int failures = 0;
  rdfa::rdf::PrefixMap prefixes;
  auto q = rdfa::hifun::ParseHifun(kSuite[0].hifun, prefixes,
                                   rdfa::workload::kExampleNs);
  if (!q.ok()) return 1;
  auto translated = rdfa::translator::TranslateToSparql(q.value());
  if (!translated.ok()) return 1;
  const std::string sparql = translated.value();

  {
    SimulatedEndpoint endpoint(graph, LatencyProfile::Local());
    rdfa::endpoint::AdmissionOptions opts;
    opts.max_in_flight = 1;
    opts.max_queue = 0;  // no waiting room: shed immediately when busy
    endpoint.set_admission(opts);
    auto held = endpoint.Admit();
    auto resp = endpoint.Query(sparql);
    if (resp.ok() && resp.value().status.code() ==
                         rdfa::StatusCode::kResourceExhausted) {
      std::printf("busy endpoint (1 in flight, no queue): %s\n",
                  resp.value().status.ToString().c_str());
    } else {
      std::printf("FAILED: expected a RESOURCE_EXHAUSTED shed\n");
      ++failures;
    }
  }
  {
    SimulatedEndpoint endpoint(graph, LatencyProfile::Local());
    rdfa::endpoint::AdmissionOptions opts;
    opts.base_timeout_ms = 0.001;  // sub-microsecond budget: must trip
    endpoint.set_admission(opts);
    auto resp = endpoint.Query(sparql);
    if (resp.ok() && resp.value().status.code() ==
                         rdfa::StatusCode::kDeadlineExceeded) {
      std::printf("0.001 ms budget: %s\n  partial stats: %s\n",
                  resp.value().status.ToString().c_str(),
                  resp.value().exec_stats.Summary().c_str());
    } else {
      std::printf("FAILED: expected a DEADLINE_EXCEEDED trip\n");
      ++failures;
    }
    rdfa::endpoint::EndpointStats stats = endpoint.Stats();
    std::printf("endpoint counters: shed %zu, timed out %zu, cancelled %zu, "
                "queued p50 %.2f ms / p99 %.2f ms\n",
                stats.shed, stats.timed_out, stats.cancelled,
                stats.p50_queued_ms, stats.p99_queued_ms);
  }
  return failures;
}

/// The --storage leg: cold-start, on-disk footprint and backend
/// byte-identity for the RDFA3 compressed snapshot path. `mode` picks which
/// backend ("heap" or "mmap") serves the timed query-suite pass; both
/// cold-start numbers are always measured so the JSON carries the speedup
/// regardless of mode. Failures: any I/O error, or any suite query whose
/// answer bytes differ between the heap and mapped backends.
int RunStorageLeg(size_t laptops, const std::string& mode,
                  std::string* json_out) {
  namespace fs = std::filesystem;
  std::printf("\n== storage backends: RDFA2 heap decode vs RDFA3 mmap "
              "(%zu laptops, serving mode=%s) ==\n",
              laptops, mode.c_str());
  auto built = std::make_unique<rdfa::rdf::Graph>();
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = laptops;
  opt.companies = laptops / 100 + 5;
  rdfa::workload::GenerateProductKg(built.get(), opt);
  rdfa::rdf::MaterializeRdfsClosure(built.get());
  const size_t n_triples = built->size();

  std::error_code ec;
  const std::string dir = fs::temp_directory_path(ec).string();
  const std::string v2_path = dir + "/bench_storage_v2.rdfa";
  const std::string v3_path = dir + "/bench_storage_v3.rdfa";
  auto t = std::chrono::steady_clock::now();
  if (!rdfa::rdf::SaveBinaryFile(*built, v2_path,
                                 rdfa::rdf::kSnapshotVersionV2)
           .ok()) {
    std::fprintf(stderr, "storage: cannot write %s\n", v2_path.c_str());
    return 1;
  }
  const double save_v2_ms = MsSince(t);
  t = std::chrono::steady_clock::now();
  if (!rdfa::rdf::SaveBinaryFile(*built, v3_path).ok()) {
    std::fprintf(stderr, "storage: cannot write %s\n", v3_path.c_str());
    return 1;
  }
  const double save_v3_ms = MsSince(t);
  const uint64_t v2_bytes = fs::file_size(v2_path, ec);
  const uint64_t v3_bytes = fs::file_size(v3_path, ec);
  built.reset();  // cold starts should not sit on top of the builder's heap

  // Cold start, heap path: decode the uncompressed RDFA2 snapshot and
  // freeze the indexes — everything a server does before its first query.
  const uint64_t rss0 = rdfa::bench::ResidentBytes();
  t = std::chrono::steady_clock::now();
  auto heap_graph = std::make_unique<rdfa::rdf::Graph>();
  if (!rdfa::rdf::LoadBinaryFile(v2_path, heap_graph.get()).ok()) {
    std::fprintf(stderr, "storage: cannot load %s\n", v2_path.c_str());
    return 1;
  }
  heap_graph->Freeze();
  const double heap_load_ms = MsSince(t);
  const uint64_t rss_heap = rdfa::bench::ResidentBytes() - rss0;

  // Cold start, mapped path: mmap + section-table validation only; terms
  // and posting lists stay compressed until a query touches them.
  const uint64_t rss1 = rdfa::bench::ResidentBytes();
  t = std::chrono::steady_clock::now();
  auto mapped = rdfa::rdf::OpenMappedSnapshot(v3_path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "storage: %s\n", mapped.status().ToString().c_str());
    return 1;
  }
  const double mmap_open_ms = MsSince(t);
  const uint64_t rss_mmap = rdfa::bench::ResidentBytes() - rss1;
  std::unique_ptr<rdfa::rdf::Graph> mapped_graph = std::move(mapped).value();

  // Byte-identity: the full suite, heap-loaded RDFA3 vs the mapped view.
  auto heap_v3 = std::make_unique<rdfa::rdf::Graph>();
  if (!rdfa::rdf::LoadBinaryFile(v3_path, heap_v3.get()).ok()) {
    std::fprintf(stderr, "storage: cannot reload %s\n", v3_path.c_str());
    return 1;
  }
  int failures = 0;
  size_t identical = 0;
  double first_query_ms = 0;
  double suite_ms = 0;
  rdfa::rdf::PrefixMap prefixes;
  rdfa::rdf::Graph* serving =
      mode == "heap" ? heap_v3.get() : mapped_graph.get();
  for (const QuerySpec& spec : kSuite) {
    auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                     rdfa::workload::kExampleNs);
    auto sparql = q.ok() ? rdfa::translator::TranslateToSparql(q.value())
                         : rdfa::Result<std::string>(q.status());
    auto parsed = sparql.ok()
                      ? rdfa::sparql::ParseQuery(sparql.value())
                      : rdfa::Result<rdfa::sparql::ParsedQuery>(
                            sparql.status());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.id,
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    const auto run = [&](rdfa::rdf::Graph* g) -> std::string {
      rdfa::sparql::Executor exec(g);
      auto table = exec.Execute(parsed.value());
      if (!table.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     table.status().ToString().c_str());
        return "<error>";
      }
      return table.value().ToTsv();
    };
    t = std::chrono::steady_clock::now();
    const std::string serving_tsv = run(serving);
    const double ms = MsSince(t);
    if (first_query_ms == 0) first_query_ms = ms;
    suite_ms += ms;
    const std::string other_tsv =
        run(serving == heap_v3.get() ? mapped_graph.get() : heap_v3.get());
    if (serving_tsv == other_tsv && serving_tsv != "<error>") {
      ++identical;
    } else {
      std::fprintf(stderr,
                   "%s: heap and mapped backends disagree (storage leg)\n",
                   spec.id);
      ++failures;
    }
  }
  const double speedup = mmap_open_ms > 0 ? heap_load_ms / mmap_open_ms : 0;
  const double disk_ratio =
      v2_bytes > 0 ? static_cast<double>(v3_bytes) /
                         static_cast<double>(v2_bytes)
                   : 0;
  std::printf("disk: RDFA2 %llu B, RDFA3 %llu B (%.2fx)\n",
              static_cast<unsigned long long>(v2_bytes),
              static_cast<unsigned long long>(v3_bytes), disk_ratio);
  std::printf("cold start: heap %.2f ms, mmap %.2f ms (%.1fx); "
              "RSS delta heap %llu B, mmap %llu B\n",
              heap_load_ms, mmap_open_ms, speedup,
              static_cast<unsigned long long>(rss_heap),
              static_cast<unsigned long long>(rss_mmap));
  std::printf("suite on %s backend: %.2f ms total, first query %.2f ms; "
              "%zu/%zu answers byte-identical across backends\n",
              mode.c_str(), suite_ms, first_query_ms, identical,
              std::size(kSuite));

  JsonObject storage;
  storage.AddString("mode", mode);
  storage.AddInt("laptops", laptops);
  storage.AddInt("triples", n_triples);
  storage.AddInt("v2_bytes", v2_bytes);
  storage.AddInt("v3_bytes", v3_bytes);
  storage.AddNumber("disk_ratio", disk_ratio);
  storage.AddNumber("save_v2_ms", save_v2_ms);
  storage.AddNumber("save_v3_ms", save_v3_ms);
  storage.AddNumber("heap_load_ms", heap_load_ms);
  storage.AddNumber("mmap_open_ms", mmap_open_ms);
  storage.AddNumber("cold_start_speedup", speedup);
  storage.AddInt("rss_heap_bytes", rss_heap);
  storage.AddInt("rss_mmap_bytes", rss_mmap);
  storage.AddNumber("suite_ms", suite_ms);
  storage.AddNumber("first_query_ms", first_query_ms);
  storage.AddInt("suite_queries", std::size(kSuite));
  storage.AddInt("byte_identical", identical);
  *json_out = storage.Render();
  fs::remove(v2_path, ec);
  fs::remove(v3_path, ec);
  return failures;
}

/// The --obs-overhead leg: runs the query suite `rounds` times with
/// profiling off (no tracer attached) and, interleaved, with full span
/// profiling on, byte-comparing every pair of answers. Reports p50 per-query
/// latency for both modes and the relative overhead — the number the CI
/// obs-gates job holds under its budget — plus the distinct profile stage
/// names one traced run produced. Profiling must never change answer bytes;
/// any mismatch is a bench failure.
int RunObservabilityLeg(size_t laptops, int rounds, std::string* json_out) {
  auto graph = std::make_unique<rdfa::rdf::Graph>();
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = laptops;
  opt.companies = laptops / 100 + 5;
  rdfa::workload::GenerateProductKg(graph.get(), opt);
  rdfa::rdf::MaterializeRdfsClosure(graph.get());
  graph->Freeze();
  std::printf("\n== observability overhead: profiling on vs off "
              "(%zu triples, %d rounds) ==\n",
              graph->size(), rounds);

  rdfa::rdf::PrefixMap prefixes;
  std::vector<rdfa::sparql::ParsedQuery> parsed;
  for (const QuerySpec& spec : kSuite) {
    auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                     rdfa::workload::kExampleNs);
    auto sparql = q.ok() ? rdfa::translator::TranslateToSparql(q.value())
                         : rdfa::Result<std::string>(q.status());
    auto p = sparql.ok() ? rdfa::sparql::ParseQuery(sparql.value())
                         : rdfa::Result<rdfa::sparql::ParsedQuery>(
                               sparql.status());
    if (!p.ok()) {
      std::fprintf(stderr, "obs: %s: %s\n", spec.id,
                   p.status().ToString().c_str());
      return 1;
    }
    parsed.push_back(std::move(p).value());
  }

  int failures = 0;
  size_t identical = 0;
  std::vector<double> off_ms, on_ms;
  std::set<std::string> stages;
  // One untimed warmup pass so lazy index builds and page faults are paid
  // before either mode is measured.
  // DP ordering on: the planner-v2 configuration is the one worth
  // profiling, and its dp-plan/plan-v2 spans are part of stage coverage.
  for (const auto& q : parsed) {
    rdfa::sparql::Executor warm(graph.get());
    warm.set_use_dp(true);
    (void)warm.Execute(q);
  }
  for (int round = 0; round < rounds; ++round) {
    for (const auto& q : parsed) {
      rdfa::sparql::Executor off(graph.get());
      off.set_use_dp(true);
      auto t = std::chrono::steady_clock::now();
      auto off_res = off.Execute(q);
      off_ms.push_back(MsSince(t));

      rdfa::sparql::Executor on(graph.get());
      on.set_use_dp(true);
      auto tracer = std::make_shared<rdfa::Tracer>();
      rdfa::QueryContext ctx;
      ctx.set_tracer(tracer);
      on.set_query_context(std::move(ctx));
      t = std::chrono::steady_clock::now();
      auto on_res = on.Execute(q);
      on_ms.push_back(MsSince(t));

      if (!off_res.ok() || !on_res.ok()) {
        std::fprintf(stderr, "obs: suite query failed\n");
        ++failures;
        continue;
      }
      if (off_res.value().ToTsv() == on_res.value().ToTsv()) {
        ++identical;
      } else {
        std::fprintf(stderr,
                     "obs: profiling changed the answer bytes (round %d)\n",
                     round);
        ++failures;
      }
      for (const auto& span : tracer->FinishedSpans()) {
        stages.insert(span.name);
      }
    }
  }
  const double off_p50 = Percentile(off_ms, 0.50);
  const double on_p50 = Percentile(on_ms, 0.50);
  const double overhead_pct =
      off_p50 > 0 ? (on_p50 - off_p50) / off_p50 * 100.0 : 0;
  std::printf("profiling off p50 %.3f ms, on p50 %.3f ms (%+.1f%%); "
              "%zu/%zu answers byte-identical; %zu distinct stages\n",
              off_p50, on_p50, overhead_pct, identical, off_ms.size(),
              stages.size());
  if (json_out != nullptr) {
    JsonObject obj;
    obj.AddInt("rounds", static_cast<uint64_t>(rounds));
    obj.AddInt("suite_queries", std::size(kSuite));
    obj.AddNumber("off_p50_ms", off_p50);
    obj.AddNumber("on_p50_ms", on_p50);
    obj.AddNumber("overhead_pct", overhead_pct);
    obj.AddInt("byte_identical", identical);
    obj.AddInt("pairs", off_ms.size());
    obj.AddInt("distinct_stages", stages.size());
    *json_out = obj.Render();
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 0;
  int iters = 1;
  int mixed_writes = 0;
  int obs_rounds = 0;
  bool global_invalidation = false;
  std::string json_path;
  std::string storage_mode;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = rdfa::bench::ParseScale(arg.c_str() + 8);
    } else if (arg.rfind("--iters=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 8);
      iters = n < 1 ? 1 : n;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      long mb = std::atol(arg.c_str() + 11);
      g_cache_mb = mb < 0 ? 0 : static_cast<size_t>(mb);
    } else if (arg.rfind("--mixed-writes=", 0) == 0) {
      mixed_writes = std::atoi(arg.c_str() + 15);
    } else if (arg.rfind("--obs-overhead=", 0) == 0) {
      obs_rounds = std::atoi(arg.c_str() + 15);
    } else if (arg == "--global-invalidation") {
      global_invalidation = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace.set_dir(arg.substr(12));
    } else if (arg.rfind("--query-log=", 0) == 0) {
      g_query_log_path = arg.substr(12);
    } else if (arg.rfind("--storage=", 0) == 0) {
      storage_mode = arg.substr(10);
      if (storage_mode != "heap" && storage_mode != "mmap") {
        std::fprintf(stderr, "--storage wants heap or mmap, got %s\n",
                     storage_mode.c_str());
        return 1;
      }
    }
  }
  if (g_cache_mb > 0 && iters < 2) {
    // One iteration never revisits a query; bump so the cache can hit and
    // the byte-identity check has something to compare.
    iters = 2;
    std::printf("(--cache-mb set: raising --iters to 2 so cached answers "
                "can be exercised)\n");
  }
  std::printf("== Tables 6.1 / 6.2 reproduction: analytic-query efficiency, "
              "peak vs off-peak ==\n");
  int failures = 0;
  std::vector<size_t> scales =
      scale > 0 ? std::vector<size_t>{scale} : std::vector<size_t>{2000, 20000};
  // Last scale's KG outlives the loop: the admission demo reuses it.
  std::unique_ptr<rdfa::rdf::Graph> graph;
  for (size_t laptops : scales) {
    graph = std::make_unique<rdfa::rdf::Graph>();
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = laptops / 100 + 5;
    rdfa::workload::GenerateProductKg(graph.get(), opt);
    rdfa::rdf::MaterializeRdfsClosure(graph.get());

    failures += RunProfile(graph.get(), LatencyProfile::Peak(),
                           "Table 6.1: Efficiency - peak hours",
                           graph->size(), iters);
    failures += RunProfile(graph.get(), LatencyProfile::OffPeak(),
                           "Table 6.2: Efficiency - off-peak hours",
                           graph->size(), iters);
  }
  failures += RunAdmissionDemo(graph.get());
  std::string mixed_json;
  if (mixed_writes > 0) {
    failures += RunMixedReadWrite(scales.front(), mixed_writes,
                                  !global_invalidation, &mixed_json);
  }
  std::string storage_json;
  if (!storage_mode.empty()) {
    failures += RunStorageLeg(scales.front(), storage_mode, &storage_json);
  }
  std::string obs_json;
  if (obs_rounds > 0) {
    failures += RunObservabilityLeg(scales.front(), obs_rounds, &obs_json);
  }
  std::printf(
      "\nshape check vs paper: off-peak totals are several times smaller "
      "than peak totals;\nall queries remain interactive (sub-second "
      "evaluation) at both scales.\n");

  if (!json_path.empty()) {
    JsonObject top;
    top.AddString("bench", "bench_efficiency");
    top.AddInt("scale", scale);
    top.AddInt("iters", static_cast<uint64_t>(iters));
    top.AddNumber("p50_ms", Percentile(g_latencies_ms, 0.50));
    top.AddNumber("p99_ms", Percentile(g_latencies_ms, 0.99));
    top.AddInt("failures", static_cast<uint64_t>(failures));
    top.AddInt("cache_mb", g_cache_mb);
    top.AddRaw("answer_cache", CacheJson(g_answer_stats));
    top.AddRaw("plan_cache", CacheJson(g_plan_stats));
    top.AddInt("cache_mismatches", g_cache_mismatches);
    if (!mixed_json.empty()) top.AddRaw("mixed_rw", mixed_json);
    if (!storage_json.empty()) top.AddRaw("storage", storage_json);
    if (!obs_json.empty()) top.AddRaw("observability", obs_json);
    top.AddRaw("runs", JsonArray(g_run_json));
    if (!WriteJsonFile(json_path, top.Render())) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
