// Reproduces Tables 6.1 ("Efficiency - peak hours") and 6.2 ("Efficiency -
// off-peak hours") of the dissertation: the time to evaluate the analytic
// queries the interaction model generates, against an endpoint under peak
// vs. off-peak conditions.
//
// Substitution (see DESIGN.md): the paper measured a live remote endpoint;
// we measure the real local evaluation of the identical generated SPARQL
// and add a deterministic modeled endpoint overhead (load multiplier +
// network round trip). The *shape* to reproduce: every query stays
// interactive off-peak (sub-second for facet-sized work), peak hours
// multiply totals by a few x, and cost grows with query complexity and
// dataset size.
//
// Run: ./build/bench/bench_efficiency

#include <cstdio>
#include <string>
#include <vector>

#include "endpoint/endpoint.h"
#include "hifun/hifun_parser.h"
#include "rdf/rdfs.h"
#include "translator/translator.h"
#include "workload/products.h"

namespace {

using rdfa::endpoint::LatencyProfile;
using rdfa::endpoint::SimulatedEndpoint;

struct QuerySpec {
  const char* id;
  const char* description;
  const char* hifun;
};

// The query suite: the §5.1 examples plus increasingly complex analytic
// queries of the kinds Chapter 6 exercises.
const QuerySpec kSuite[] = {
    {"Q1", "count by manufacturer", "(manufacturer, ID, COUNT) over Laptop"},
    {"Q2", "avg price by manufacturer",
     "(manufacturer, price, AVG) over Laptop"},
    {"Q3", "avg price by manufacturer origin (path)",
     "(origin o manufacturer, price, AVG) over Laptop"},
    {"Q4", "avg price, usb-restricted",
     "(manufacturer, price / USBPorts >= 2, AVG) over Laptop"},
    {"Q5", "sum+avg+max by manufacturer",
     "(manufacturer, price, SUM+AVG+MAX) over Laptop"},
    {"Q6", "pairing: by manufacturer and year",
     "((manufacturer x YEAR(releaseDate)), price, AVG) over Laptop"},
    {"Q7", "derived: count by release year",
     "(YEAR(releaseDate), ID, COUNT) over Laptop"},
    {"Q8", "having: manufacturers with avg price > 1500",
     "(manufacturer, price, AVG / > 1500) over Laptop"},
    {"Q9", "long path: avg GDP of origin by continent",
     "(locatedAt o origin o manufacturer, price, AVG) over Laptop"},
    {"Q10", "global aggregate (no grouping)",
     "(eps, price, AVG+MIN+MAX) over Laptop"},
};

void RunProfile(rdfa::rdf::Graph* graph, const LatencyProfile& profile,
                const char* table_name, size_t n_triples) {
  SimulatedEndpoint endpoint(graph, profile);
  std::printf("\n%s  (%zu triples, profile=%s, load x%.1f)\n", table_name,
              n_triples, profile.name.c_str(), profile.load_multiplier);
  std::printf("%-4s %-45s %10s %10s %10s\n", "id", "query", "exec ms",
              "net ms", "total ms");
  double total = 0;
  rdfa::rdf::PrefixMap prefixes;
  for (const QuerySpec& spec : kSuite) {
    auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                     rdfa::workload::kExampleNs);
    if (!q.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.id, q.status().ToString().c_str());
      continue;
    }
    auto sparql = rdfa::translator::TranslateToSparql(q.value());
    if (!sparql.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.id,
                   sparql.status().ToString().c_str());
      continue;
    }
    auto resp = endpoint.Query(sparql.value());
    if (!resp.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.id,
                   resp.status().ToString().c_str());
      continue;
    }
    std::printf("%-4s %-45s %10.2f %10.2f %10.2f\n", spec.id,
                spec.description, resp.value().exec_ms,
                resp.value().network_ms, resp.value().total_ms);
    total += resp.value().total_ms;
  }
  std::printf("%-4s %-45s %10s %10s %10.2f\n", "", "TOTAL", "", "", total);
}

}  // namespace

int main() {
  std::printf("== Tables 6.1 / 6.2 reproduction: analytic-query efficiency, "
              "peak vs off-peak ==\n");
  for (size_t laptops : {2000, 20000}) {
    rdfa::rdf::Graph graph;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = laptops / 100 + 5;
    rdfa::workload::GenerateProductKg(&graph, opt);
    rdfa::rdf::MaterializeRdfsClosure(&graph);

    RunProfile(&graph, LatencyProfile::Peak(),
               "Table 6.1: Efficiency - peak hours", graph.size());
    RunProfile(&graph, LatencyProfile::OffPeak(),
               "Table 6.2: Efficiency - off-peak hours", graph.size());
  }
  std::printf(
      "\nshape check vs paper: off-peak totals are several times smaller "
      "than peak totals;\nall queries remain interactive (sub-second "
      "evaluation) at both scales.\n");
  return 0;
}
