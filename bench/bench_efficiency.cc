// Reproduces Tables 6.1 ("Efficiency - peak hours") and 6.2 ("Efficiency -
// off-peak hours") of the dissertation: the time to evaluate the analytic
// queries the interaction model generates, against an endpoint under peak
// vs. off-peak conditions.
//
// Substitution (see DESIGN.md): the paper measured a live remote endpoint;
// we measure the real local evaluation of the identical generated SPARQL
// and add a deterministic modeled endpoint overhead (load multiplier +
// network round trip). The *shape* to reproduce: every query stays
// interactive off-peak (sub-second for facet-sized work), peak hours
// multiply totals by a few x, and cost grows with query complexity and
// dataset size.
//
// Run: ./build/bench/bench_efficiency [--scale=1k|2k|20k] [--iters=N]
//                                     [--json=<path>] [--trace-out=<dir>]
//                                     [--query-log=<path>] [--cache-mb=N]
//   --scale: laptop count of the product KG (default: both 2k and 20k)
//   --iters: how many times to run the query suite per profile (default 1;
//            more iterations sharpen the p50/p99 figures)
//   --cache-mb: answer/plan cache budget in MB (0 = off, the default).
//            With the cache on, iterations past the first hit the cache and
//            every cached answer is byte-compared against the uncached
//            first-iteration answer (any difference is a bench failure);
//            hit rates land in the JSON output.
//   --mixed-writes=N: run the query suite for N rounds against an
//            MvccGraph-backed endpoint with one unrelated-predicate commit
//            between rounds; reports the answer-cache hit rate under
//            updates plus p50/p99 (JSON key "mixed_rw").
//   --global-invalidation: ablate the mixed leg to wildcard footprints
//            (classic whole-cache invalidation) — hit rate drops to 0.
//   --json:  write one machine-readable JSON object for the run (scale,
//            iters, p50/p99, per-query ExecStats)
//   --trace-out:  write one Chrome trace-event JSON file per served query
//            (first iteration of each profile) under <dir>
//   --query-log:  append the endpoint's structured query log (one JSON
//            line per query) to <path>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"

#include "bench_util.h"
#include "endpoint/endpoint.h"
#include "hifun/hifun_parser.h"
#include "rdf/rdfs.h"
#include "translator/translator.h"
#include "workload/products.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;
using rdfa::endpoint::LatencyProfile;
using rdfa::endpoint::SimulatedEndpoint;

std::vector<double> g_latencies_ms;
std::vector<std::string> g_run_json;
rdfa::bench::TraceSink g_trace;
std::string g_query_log_path;
size_t g_cache_mb = 0;
rdfa::CacheStats g_answer_stats;
rdfa::CacheStats g_plan_stats;
uint64_t g_cache_mismatches = 0;

void Accumulate(const rdfa::CacheStats& from, rdfa::CacheStats* into) {
  into->hits += from.hits;
  into->misses += from.misses;
  into->evictions += from.evictions;
  into->invalidations += from.invalidations;
  into->entries += from.entries;
  into->bytes += from.bytes;
}

/// Renders one cache layer's counters as a JSON object for the --json
/// output (consumed by the CI cache-ablation validator).
std::string CacheJson(const rdfa::CacheStats& s) {
  JsonObject obj;
  obj.AddInt("hits", s.hits);
  obj.AddInt("misses", s.misses);
  obj.AddNumber("hit_rate", s.HitRate());
  obj.AddInt("evictions", s.evictions);
  obj.AddInt("invalidations", s.invalidations);
  return obj.Render();
}

struct QuerySpec {
  const char* id;
  const char* description;
  const char* hifun;
};

// The query suite: the §5.1 examples plus increasingly complex analytic
// queries of the kinds Chapter 6 exercises.
const QuerySpec kSuite[] = {
    {"Q1", "count by manufacturer", "(manufacturer, ID, COUNT) over Laptop"},
    {"Q2", "avg price by manufacturer",
     "(manufacturer, price, AVG) over Laptop"},
    {"Q3", "avg price by manufacturer origin (path)",
     "(origin o manufacturer, price, AVG) over Laptop"},
    {"Q4", "avg price, usb-restricted",
     "(manufacturer, price / USBPorts >= 2, AVG) over Laptop"},
    {"Q5", "sum+avg+max by manufacturer",
     "(manufacturer, price, SUM+AVG+MAX) over Laptop"},
    {"Q6", "pairing: by manufacturer and year",
     "((manufacturer x YEAR(releaseDate)), price, AVG) over Laptop"},
    {"Q7", "derived: count by release year",
     "(YEAR(releaseDate), ID, COUNT) over Laptop"},
    {"Q8", "having: manufacturers with avg price > 1500",
     "(manufacturer, price, AVG / > 1500) over Laptop"},
    {"Q9", "long path: avg GDP of origin by continent",
     "(locatedAt o origin o manufacturer, price, AVG) over Laptop"},
    {"Q10", "global aggregate (no grouping)",
     "(eps, price, AVG+MIN+MAX) over Laptop"},
};

int RunProfile(rdfa::rdf::Graph* graph, const LatencyProfile& profile,
               const char* table_name, size_t n_triples, int iters) {
  SimulatedEndpoint endpoint(graph, profile);
  if (g_cache_mb > 0) {
    rdfa::CacheOptions copts;
    copts.max_bytes = g_cache_mb << 20;
    endpoint.set_cache_options(copts);
  }
  if (!g_query_log_path.empty()) {
    endpoint.set_query_log_path(g_query_log_path);
  }
  std::printf("\n%s  (%zu triples, profile=%s, load x%.1f, budget %.0f ms)\n",
              table_name, n_triples, profile.name.c_str(),
              profile.load_multiplier, endpoint.effective_timeout_ms());
  std::printf("%-4s %-45s %10s %10s %10s\n", "id", "query", "exec ms",
              "net ms", "total ms");
  int failures = 0;
  rdfa::rdf::PrefixMap prefixes;
  // First-iteration (uncached) answers, for the cache byte-identity check.
  std::vector<std::string> reference_tsv(std::size(kSuite));
  for (int iter = 0; iter < iters; ++iter) {
    double total = 0;
    for (const QuerySpec& spec : kSuite) {
      const size_t qi = static_cast<size_t>(&spec - kSuite);
      auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                       rdfa::workload::kExampleNs);
      if (!q.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     q.status().ToString().c_str());
        ++failures;
        continue;
      }
      auto sparql = rdfa::translator::TranslateToSparql(q.value());
      if (!sparql.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     sparql.status().ToString().c_str());
        ++failures;
        continue;
      }
      // Trace only the first iteration of each query: the span structure
      // repeats, and one file per (profile, query) keeps --trace-out tidy.
      std::shared_ptr<rdfa::Tracer> tracer =
          iter == 0 ? g_trace.StartRun() : nullptr;
      rdfa::QueryContext qctx;
      if (tracer != nullptr) qctx.set_tracer(tracer);
      auto resp = endpoint.Query(sparql.value(), qctx);
      if (tracer != nullptr) {
        (void)g_trace.FinishRun(tracer.get(), "efficiency");
      }
      if (!resp.ok()) {
        std::fprintf(stderr, "%s: %s\n", spec.id,
                     resp.status().ToString().c_str());
        ++failures;
        continue;
      }
      if (!resp.value().status.ok()) {
        std::printf("%-4s %-45s %30s\n", spec.id, spec.description,
                    resp.value().status.ToString().c_str());
        continue;
      }
      g_latencies_ms.push_back(resp.value().total_ms);
      if (g_cache_mb > 0) {
        // Cached (later-iteration) answers must be byte-identical to the
        // uncached first-iteration answer of the same query.
        std::string tsv = resp.value().table.ToTsv();
        if (iter == 0) {
          reference_tsv[qi] = std::move(tsv);
        } else if (tsv != reference_tsv[qi]) {
          std::fprintf(stderr,
                       "%s: cached answer differs from the uncached one\n",
                       spec.id);
          ++failures;
          ++g_cache_mismatches;
        }
      }
      if (iter == 0) {
        std::printf("%-4s %-45s %10.2f %10.2f %10.2f\n", spec.id,
                    spec.description, resp.value().exec_ms,
                    resp.value().network_ms, resp.value().total_ms);
        JsonObject run;
        run.AddString("query", spec.id);
        run.AddString("profile", profile.name);
        run.AddInt("triples", n_triples);
        run.AddNumber("exec_ms", resp.value().exec_ms);
        run.AddNumber("network_ms", resp.value().network_ms);
        run.AddNumber("total_ms", resp.value().total_ms);
        run.AddRaw("exec_stats", resp.value().exec_stats.ToJson());
        g_run_json.push_back(run.Render());
      }
      total += resp.value().total_ms;
    }
    if (iter == 0) {
      std::printf("%-4s %-45s %10s %10s %10.2f\n", "", "TOTAL", "", "",
                  total);
    }
  }
  rdfa::endpoint::EndpointStats stats = endpoint.Stats();
  std::printf("latency over %zu served: p50 %.2f ms, p99 %.2f ms, "
              "queued p50 %.2f ms / p99 %.2f ms "
              "(shed %zu, timed out %zu, cancelled %zu)\n",
              stats.count, stats.p50_total_ms, stats.p99_total_ms,
              stats.p50_queued_ms, stats.p99_queued_ms,
              stats.shed, stats.timed_out, stats.cancelled);
  if (g_cache_mb > 0) {
    rdfa::CacheStats a = endpoint.answer_cache_stats();
    rdfa::CacheStats p = endpoint.plan_cache_stats();
    std::printf("cache: answer %llu hits / %llu misses (%.0f%%), "
                "plan %llu hits / %llu misses (%.0f%%)\n",
                static_cast<unsigned long long>(a.hits),
                static_cast<unsigned long long>(a.misses), 100 * a.HitRate(),
                static_cast<unsigned long long>(p.hits),
                static_cast<unsigned long long>(p.misses), 100 * p.HitRate());
    Accumulate(a, &g_answer_stats);
    Accumulate(p, &g_plan_stats);
  }
  return failures;
}

/// Mixed read/write leg: the query suite runs for `rounds` rounds against
/// an MvccGraph-backed endpoint while a writer commits one insert to an
/// *unrelated* predicate (ex:benchPoke) between rounds. With
/// predicate-granular invalidation the cached answers survive every commit
/// (nonzero hit rate from round 2 on); with --global-invalidation (the
/// ablation baseline: wildcard footprints, i.e. the old global-generation
/// stamp) every commit wipes the cache and the hit rate stays 0. Answers
/// are byte-compared against round 1 throughout — the poke predicate never
/// appears in the suite, so any drift is a correctness failure.
int RunMixedReadWrite(size_t laptops, int rounds, bool predicate_inval,
                      std::string* json_out) {
  auto base = std::make_unique<rdfa::rdf::Graph>();
  rdfa::workload::ProductKgOptions opt;
  opt.laptops = laptops;
  opt.companies = laptops / 100 + 5;
  rdfa::workload::GenerateProductKg(base.get(), opt);
  rdfa::rdf::MaterializeRdfsClosure(base.get());
  const size_t n_triples = base->size();
  rdfa::rdf::MvccGraph mvcc(std::move(base));

  SimulatedEndpoint endpoint(&mvcc, LatencyProfile::Local(), true);
  rdfa::CacheOptions copts;
  copts.max_bytes = (g_cache_mb > 0 ? g_cache_mb : 64) << 20;
  endpoint.set_cache_options(copts);
  endpoint.set_predicate_invalidation(predicate_inval);

  std::printf("\n== mixed read/write (%zu triples, %d rounds, %s "
              "invalidation) ==\n",
              n_triples, rounds, predicate_inval ? "predicate" : "global");
  int failures = 0;
  uint64_t mismatches = 0;
  std::vector<double> latencies;
  std::vector<std::string> reference_tsv(std::size(kSuite));
  rdfa::rdf::PrefixMap prefixes;
  for (int round = 0; round < rounds; ++round) {
    for (const QuerySpec& spec : kSuite) {
      const size_t qi = static_cast<size_t>(&spec - kSuite);
      auto q = rdfa::hifun::ParseHifun(spec.hifun, prefixes,
                                       rdfa::workload::kExampleNs);
      if (!q.ok()) { ++failures; continue; }
      auto sparql = rdfa::translator::TranslateToSparql(q.value());
      if (!sparql.ok()) { ++failures; continue; }
      auto resp = endpoint.Query(sparql.value());
      if (!resp.ok() || !resp.value().status.ok()) {
        std::fprintf(stderr, "%s: mixed-rw query failed\n", spec.id);
        ++failures;
        continue;
      }
      latencies.push_back(resp.value().total_ms);
      std::string tsv = resp.value().table.ToTsv();
      if (round == 0) {
        reference_tsv[qi] = std::move(tsv);
      } else if (tsv != reference_tsv[qi]) {
        std::fprintf(stderr,
                     "%s: answer drifted under concurrent writes\n", spec.id);
        ++failures;
        ++mismatches;
      }
    }
    // The between-rounds write: one commit touching only ex:benchPoke.
    const std::string ns = rdfa::workload::kExampleNs;
    mvcc.Insert(
        rdfa::rdf::Term::Iri(ns + "poke" + std::to_string(round)),
        rdfa::rdf::Term::Iri(ns + "benchPoke"),
        rdfa::rdf::Term::Integer(round));
    auto committed = mvcc.Commit();
    if (!committed.ok()) {
      std::fprintf(stderr, "mixed-rw commit failed: %s\n",
                   committed.status().ToString().c_str());
      ++failures;
    }
  }
  rdfa::CacheStats a = endpoint.answer_cache_stats();
  std::printf("answer cache under updates: %llu hits / %llu misses "
              "(%.0f%%), %llu invalidations; p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(a.hits),
              static_cast<unsigned long long>(a.misses), 100 * a.HitRate(),
              static_cast<unsigned long long>(a.invalidations),
              Percentile(latencies, 0.50), Percentile(latencies, 0.99));
  if (json_out != nullptr) {
    JsonObject obj;
    obj.AddInt("rounds", static_cast<uint64_t>(rounds));
    obj.AddString("invalidation", predicate_inval ? "predicate" : "global");
    obj.AddRaw("answer_cache", CacheJson(a));
    obj.AddRaw("plan_cache", CacheJson(endpoint.plan_cache_stats()));
    obj.AddNumber("p50_ms", Percentile(latencies, 0.50));
    obj.AddNumber("p99_ms", Percentile(latencies, 0.99));
    obj.AddInt("mismatches", mismatches);
    *json_out = obj.Render();
  }
  return failures;
}

/// Deterministic admission/timeout demonstration: a held slot forces a
/// shed; a sub-millisecond budget forces a deadline trip.
int RunAdmissionDemo(rdfa::rdf::Graph* graph) {
  std::printf("\n== admission control & deadlines ==\n");
  int failures = 0;
  rdfa::rdf::PrefixMap prefixes;
  auto q = rdfa::hifun::ParseHifun(kSuite[0].hifun, prefixes,
                                   rdfa::workload::kExampleNs);
  if (!q.ok()) return 1;
  auto translated = rdfa::translator::TranslateToSparql(q.value());
  if (!translated.ok()) return 1;
  const std::string sparql = translated.value();

  {
    SimulatedEndpoint endpoint(graph, LatencyProfile::Local());
    rdfa::endpoint::AdmissionOptions opts;
    opts.max_in_flight = 1;
    opts.max_queue = 0;  // no waiting room: shed immediately when busy
    endpoint.set_admission(opts);
    auto held = endpoint.Admit();
    auto resp = endpoint.Query(sparql);
    if (resp.ok() && resp.value().status.code() ==
                         rdfa::StatusCode::kResourceExhausted) {
      std::printf("busy endpoint (1 in flight, no queue): %s\n",
                  resp.value().status.ToString().c_str());
    } else {
      std::printf("FAILED: expected a RESOURCE_EXHAUSTED shed\n");
      ++failures;
    }
  }
  {
    SimulatedEndpoint endpoint(graph, LatencyProfile::Local());
    rdfa::endpoint::AdmissionOptions opts;
    opts.base_timeout_ms = 0.001;  // sub-microsecond budget: must trip
    endpoint.set_admission(opts);
    auto resp = endpoint.Query(sparql);
    if (resp.ok() && resp.value().status.code() ==
                         rdfa::StatusCode::kDeadlineExceeded) {
      std::printf("0.001 ms budget: %s\n  partial stats: %s\n",
                  resp.value().status.ToString().c_str(),
                  resp.value().exec_stats.Summary().c_str());
    } else {
      std::printf("FAILED: expected a DEADLINE_EXCEEDED trip\n");
      ++failures;
    }
    rdfa::endpoint::EndpointStats stats = endpoint.Stats();
    std::printf("endpoint counters: shed %zu, timed out %zu, cancelled %zu, "
                "queued p50 %.2f ms / p99 %.2f ms\n",
                stats.shed, stats.timed_out, stats.cancelled,
                stats.p50_queued_ms, stats.p99_queued_ms);
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 0;
  int iters = 1;
  int mixed_writes = 0;
  bool global_invalidation = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = rdfa::bench::ParseScale(arg.c_str() + 8);
    } else if (arg.rfind("--iters=", 0) == 0) {
      int n = std::atoi(arg.c_str() + 8);
      iters = n < 1 ? 1 : n;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      long mb = std::atol(arg.c_str() + 11);
      g_cache_mb = mb < 0 ? 0 : static_cast<size_t>(mb);
    } else if (arg.rfind("--mixed-writes=", 0) == 0) {
      mixed_writes = std::atoi(arg.c_str() + 15);
    } else if (arg == "--global-invalidation") {
      global_invalidation = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace.set_dir(arg.substr(12));
    } else if (arg.rfind("--query-log=", 0) == 0) {
      g_query_log_path = arg.substr(12);
    }
  }
  if (g_cache_mb > 0 && iters < 2) {
    // One iteration never revisits a query; bump so the cache can hit and
    // the byte-identity check has something to compare.
    iters = 2;
    std::printf("(--cache-mb set: raising --iters to 2 so cached answers "
                "can be exercised)\n");
  }
  std::printf("== Tables 6.1 / 6.2 reproduction: analytic-query efficiency, "
              "peak vs off-peak ==\n");
  int failures = 0;
  std::vector<size_t> scales =
      scale > 0 ? std::vector<size_t>{scale} : std::vector<size_t>{2000, 20000};
  // Last scale's KG outlives the loop: the admission demo reuses it.
  std::unique_ptr<rdfa::rdf::Graph> graph;
  for (size_t laptops : scales) {
    graph = std::make_unique<rdfa::rdf::Graph>();
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = laptops / 100 + 5;
    rdfa::workload::GenerateProductKg(graph.get(), opt);
    rdfa::rdf::MaterializeRdfsClosure(graph.get());

    failures += RunProfile(graph.get(), LatencyProfile::Peak(),
                           "Table 6.1: Efficiency - peak hours",
                           graph->size(), iters);
    failures += RunProfile(graph.get(), LatencyProfile::OffPeak(),
                           "Table 6.2: Efficiency - off-peak hours",
                           graph->size(), iters);
  }
  failures += RunAdmissionDemo(graph.get());
  std::string mixed_json;
  if (mixed_writes > 0) {
    failures += RunMixedReadWrite(scales.front(), mixed_writes,
                                  !global_invalidation, &mixed_json);
  }
  std::printf(
      "\nshape check vs paper: off-peak totals are several times smaller "
      "than peak totals;\nall queries remain interactive (sub-second "
      "evaluation) at both scales.\n");

  if (!json_path.empty()) {
    JsonObject top;
    top.AddString("bench", "bench_efficiency");
    top.AddInt("scale", scale);
    top.AddInt("iters", static_cast<uint64_t>(iters));
    top.AddNumber("p50_ms", Percentile(g_latencies_ms, 0.50));
    top.AddNumber("p99_ms", Percentile(g_latencies_ms, 0.99));
    top.AddInt("failures", static_cast<uint64_t>(failures));
    top.AddInt("cache_mb", g_cache_mb);
    top.AddRaw("answer_cache", CacheJson(g_answer_stats));
    top.AddRaw("plan_cache", CacheJson(g_plan_stats));
    top.AddInt("cache_mismatches", g_cache_mismatches);
    if (!mixed_json.empty()) top.AddRaw("mixed_rw", mixed_json);
    top.AddRaw("runs", JsonArray(g_run_json));
    if (!WriteJsonFile(json_path, top.Render())) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
