// Reproduces §5.3.3: loading the Answer Frame as a new dataset enables
// analytic queries of unlimited nesting depth. This measures the cost of
// each nesting level (reload n*k triples + re-run analytics over the
// reloaded answers) — the paper's claim is that reloads are cheap because
// answer frames are small relative to the KG.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "analytics/answer_frame.h"
#include "analytics/session.h"
#include "rdf/rdfs.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

rdfa::rdf::Graph* SharedGraph(size_t laptops) {
  static std::map<size_t, rdfa::rdf::Graph>* graphs =
      new std::map<size_t, rdfa::rdf::Graph>();
  auto it = graphs->find(laptops);
  if (it == graphs->end()) {
    rdfa::rdf::Graph g;
    rdfa::workload::ProductKgOptions opt;
    opt.laptops = laptops;
    opt.companies = 50;
    rdfa::workload::GenerateProductKg(&g, opt);
    rdfa::rdf::MaterializeRdfsClosure(&g);
    it = graphs->emplace(laptops, std::move(g)).first;
  }
  return &it->second;
}

/// One full level-0 analytic query: avg price by manufacturer.
rdfa::Result<rdfa::analytics::AnswerFrame> RunBase(
    rdfa::analytics::AnalyticsSession* s) {
  RDFA_RETURN_NOT_OK(s->fs().ClickClass(kEx + "Laptop"));
  rdfa::analytics::GroupingSpec grp;
  grp.path = {kEx + "manufacturer"};
  RDFA_RETURN_NOT_OK(s->ClickGroupBy(grp));
  rdfa::analytics::MeasureSpec m;
  m.path = {kEx + "price"};
  m.ops = {rdfa::hifun::AggOp::kAvg};
  RDFA_RETURN_NOT_OK(s->ClickAggregate(m));
  return s->Execute();
}

void BM_BaseAnalyticQuery(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    rdfa::analytics::AnalyticsSession s(g);
    benchmark::DoNotOptimize(RunBase(&s));
  }
}
BENCHMARK(BM_BaseAnalyticQuery)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_AnswerFrameReload(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  rdfa::analytics::AnalyticsSession s(g);
  auto af = RunBase(&s);
  if (!af.ok()) {
    state.SkipWithError(af.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    rdfa::rdf::Graph af_graph;
    benchmark::DoNotOptimize(af.value().LoadAsDataset(&af_graph));
  }
  state.SetLabel("tuples -> n*k triples (§5.3.3)");
}
BENCHMARK(BM_AnswerFrameReload)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_NestedDepth(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(2000);
  int64_t depth = state.range(0);
  for (auto _ : state) {
    rdfa::analytics::AnalyticsSession base(g);
    auto af = RunBase(&base);
    if (!af.ok()) {
      state.SkipWithError(af.status().ToString().c_str());
      return;
    }
    // Each further level: reload, then aggregate the previous aggregates.
    std::vector<std::unique_ptr<rdfa::rdf::Graph>> graphs;
    std::unique_ptr<rdfa::analytics::AnalyticsSession> cur;
    rdfa::analytics::AnalyticsSession* level = &base;
    for (int64_t d = 1; d < depth; ++d) {
      graphs.push_back(std::make_unique<rdfa::rdf::Graph>());
      auto nested = level->ExploreAnswer(graphs.back().get());
      if (!nested.ok()) {
        state.SkipWithError(nested.status().ToString().c_str());
        return;
      }
      cur = std::move(nested).value();
      rdfa::analytics::MeasureSpec m;
      m.path = {rdfa::analytics::AnswerFrame::ColumnIri("agg1")};
      m.ops = {rdfa::hifun::AggOp::kAvg};
      if (!cur->ClickAggregate(m).ok() || !cur->Execute().ok()) {
        state.SkipWithError("nested execution failed");
        return;
      }
      level = cur.get();
    }
    benchmark::DoNotOptimize(level->answer().table().num_rows());
  }
  state.SetLabel("analytic nesting depth (level 1 = plain query)");
}
BENCHMARK(BM_NestedDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
