// Reproduces the §4.2 cost story: HIFUN->SPARQL translation is a
// string-building pass (microseconds), so the interaction model adds
// negligible overhead over raw SPARQL; evaluation cost dominates and the
// two evaluation routes (direct HIFUN vs translated SPARQL) stay within a
// small constant factor (Proposition 2 gives identical answers; the
// equivalence tests check that).

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "hifun/evaluator.h"
#include "hifun/hifun_parser.h"
#include "rdf/namespaces.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "translator/translator.h"
#include "workload/invoices.h"

namespace {

const std::string kInv = rdfa::workload::kInvoiceNs;

const char* const kQueries[] = {
    "(takesPlaceAt, inQuantity, SUM) over Invoice",
    "(brand o delivers, inQuantity, SUM) over Invoice",
    "((takesPlaceAt x MONTH(hasDate)), inQuantity, SUM+AVG) over Invoice",
    "(takesPlaceAt / = branch0, inQuantity / >= 100, SUM / > 1000) over "
    "Invoice",
};

rdfa::hifun::Query ParseAt(size_t i) {
  rdfa::rdf::PrefixMap prefixes;
  auto q = rdfa::hifun::ParseHifun(kQueries[i], prefixes, kInv);
  return q.value();
}

rdfa::rdf::Graph* SharedGraph(size_t invoices) {
  static std::map<size_t, rdfa::rdf::Graph>* graphs =
      new std::map<size_t, rdfa::rdf::Graph>();
  auto it = graphs->find(invoices);
  if (it == graphs->end()) {
    rdfa::rdf::Graph g;
    rdfa::workload::InvoicesOptions opt;
    opt.invoices = invoices;
    rdfa::workload::GenerateInvoices(&g, opt);
    it = graphs->emplace(invoices, std::move(g)).first;
  }
  return &it->second;
}

void BM_HifunParse(benchmark::State& state) {
  rdfa::rdf::PrefixMap prefixes;
  for (auto _ : state) {
    for (const char* q : kQueries) {
      benchmark::DoNotOptimize(rdfa::hifun::ParseHifun(q, prefixes, kInv));
    }
  }
}
BENCHMARK(BM_HifunParse);

void BM_Translate(benchmark::State& state) {
  std::vector<rdfa::hifun::Query> parsed;
  for (size_t i = 0; i < 4; ++i) parsed.push_back(ParseAt(i));
  for (auto _ : state) {
    for (const auto& q : parsed) {
      benchmark::DoNotOptimize(rdfa::translator::TranslateToSparql(q));
    }
  }
  state.SetLabel("Algorithms 1-4, 4 queries per iteration");
}
BENCHMARK(BM_Translate);

void BM_SparqlParse(benchmark::State& state) {
  std::vector<std::string> texts;
  for (size_t i = 0; i < 4; ++i) {
    texts.push_back(
        rdfa::translator::TranslateToSparql(ParseAt(i)).value());
  }
  for (auto _ : state) {
    for (const std::string& t : texts) {
      benchmark::DoNotOptimize(rdfa::sparql::ParseQuery(t));
    }
  }
}
BENCHMARK(BM_SparqlParse);

void BM_EvalTranslatedSparql(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  std::string text =
      rdfa::translator::TranslateToSparql(ParseAt(static_cast<size_t>(
                                              state.range(1))))
          .value();
  auto parsed = rdfa::sparql::ParseQuery(text);
  rdfa::sparql::Executor exec(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Select(parsed.value().select));
  }
}
BENCHMARK(BM_EvalTranslatedSparql)
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({20000, 0})
    ->Args({20000, 2})
    ->Unit(benchmark::kMillisecond);

void BM_EvalDirectHifun(benchmark::State& state) {
  rdfa::rdf::Graph* g = SharedGraph(static_cast<size_t>(state.range(0)));
  rdfa::hifun::Query q = ParseAt(static_cast<size_t>(state.range(1)));
  rdfa::hifun::Evaluator eval(*g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(q));
  }
}
BENCHMARK(BM_EvalDirectHifun)
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({20000, 0})
    ->Args({20000, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace
