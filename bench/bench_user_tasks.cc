// Reproduces the shape of Figs 8.1 / 8.2 (task-based evaluation): the ten
// information-need tasks of the user study, executed by a *scripted user*
// through the public interaction API. The paper reports per-task completion
// percentage and user ratings; completion is machine-checkable (can the
// task be expressed by clicks alone, and does it give the right answer?),
// ratings are subjective and quoted from the paper for reference.
//
// Run: ./build/bench/bench_user_tasks

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analytics/answer_frame.h"
#include "analytics/session.h"
#include "rdf/rdfs.h"
#include "sparql/value.h"
#include "workload/products.h"

namespace {

const std::string kEx = rdfa::workload::kExampleNs;

struct TaskResult {
  bool completed = false;
  int actions = 0;  // clicks the scripted user needed
};

struct Task {
  const char* id;
  const char* description;
  std::function<TaskResult(rdfa::rdf::Graph*)> run;
};

#define ACT(expr)                    \
  do {                               \
    ++result.actions;                \
    if (!(expr).ok()) return result; \
  } while (false)

double Num(const rdfa::sparql::ResultTable& t, size_t r, size_t c) {
  auto v = rdfa::sparql::Value::FromTerm(t.at(r, c)).AsNumeric();
  return v.value_or(-1);
}

const std::vector<Task>& Tasks() {
  static const std::vector<Task> kTasks = {
      {"T1", "locate all laptops (class navigation)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::fs::Session s(g);
         ACT(s.ClickClass(kEx + "Laptop"));
         result.completed = s.current().ext.size() == 3;
         return result;
       }},
      {"T2", "laptops of a given manufacturer (value filter)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::fs::Session s(g);
         ACT(s.ClickClass(kEx + "Laptop"));
         ACT(s.ClickValue({{kEx + "manufacturer"}},
                          rdfa::rdf::Term::Iri(kEx + "DELL")));
         result.completed = s.current().ext.size() == 2;
         return result;
       }},
      {"T3", "laptops made by US companies (path expansion)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::fs::Session s(g);
         ACT(s.ClickClass(kEx + "Laptop"));
         ACT(s.ClickValue({{kEx + "manufacturer"}, {kEx + "origin"}},
                          rdfa::rdf::Term::Iri(kEx + "USA")));
         result.completed = s.current().ext.size() == 2;
         return result;
       }},
      {"T4", "laptops with 2-4 USB ports (range filter)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::fs::Session s(g);
         ACT(s.ClickClass(kEx + "Laptop"));
         ACT(s.ClickRange({{kEx + "USBPorts"}}, 2, 4));
         result.completed = s.current().ext.size() == 3;
         return result;
       }},
      {"T5", "count laptops per manufacturer (simple analytics)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec grp;
         grp.path = {kEx + "manufacturer"};
         ACT(s.ClickGroupBy(grp));
         rdfa::analytics::MeasureSpec m;
         m.ops = {rdfa::hifun::AggOp::kCount};
         ACT(s.ClickAggregate(m));
         ++result.actions;
         auto af = s.Execute();
         result.completed = af.ok() && af.value().table().num_rows() == 2;
         return result;
       }},
      {"T6", "average price per manufacturer",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec grp;
         grp.path = {kEx + "manufacturer"};
         ACT(s.ClickGroupBy(grp));
         rdfa::analytics::MeasureSpec m;
         m.path = {kEx + "price"};
         m.ops = {rdfa::hifun::AggOp::kAvg};
         ACT(s.ClickAggregate(m));
         ++result.actions;
         auto af = s.Execute();
         if (!af.ok()) return result;
         const auto& t = af.value().table();
         for (size_t r = 0; r < t.num_rows(); ++r) {
           if (Num(t, r, 1) == 950) result.completed = true;  // DELL avg
         }
         return result;
       }},
      {"T7", "avg price by manufacturer AND origin (two groupings)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec g1, g2;
         g1.path = {kEx + "manufacturer"};
         g2.path = {kEx + "manufacturer", kEx + "origin"};
         ACT(s.ClickGroupBy(g1));
         ACT(s.ClickGroupBy(g2));
         rdfa::analytics::MeasureSpec m;
         m.path = {kEx + "price"};
         m.ops = {rdfa::hifun::AggOp::kAvg};
         ACT(s.ClickAggregate(m));
         ++result.actions;
         auto af = s.Execute();
         result.completed = af.ok() && af.value().table().num_columns() == 3 &&
                            af.value().table().num_rows() == 2;
         return result;
       }},
      {"T8", "max price by release year (derived attribute)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec grp;
         grp.path = {kEx + "releaseDate"};
         grp.derived_function = "YEAR";
         ACT(s.ClickGroupBy(grp));
         rdfa::analytics::MeasureSpec m;
         m.path = {kEx + "price"};
         m.ops = {rdfa::hifun::AggOp::kMax};
         ACT(s.ClickAggregate(m));
         ++result.actions;
         auto af = s.Execute();
         result.completed = af.ok() && af.value().table().num_rows() == 1 &&
                            Num(af.value().table(), 0, 1) == 1000;
         return result;
       }},
      {"T9", "manufacturers whose avg price exceeds 900 (HAVING)",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec grp;
         grp.path = {kEx + "manufacturer"};
         ACT(s.ClickGroupBy(grp));
         rdfa::analytics::MeasureSpec m;
         m.path = {kEx + "price"};
         m.ops = {rdfa::hifun::AggOp::kAvg};
         ACT(s.ClickAggregate(m));
         s.SetResultRestriction(">", 900);
         ++result.actions;
         ++result.actions;
         auto af = s.Execute();
         result.completed = af.ok() && af.value().table().num_rows() == 1;
         return result;
       }},
      {"T10", "nested: explore the answer of T6 and keep avg >= 900",
       [](rdfa::rdf::Graph* g) {
         TaskResult result;
         rdfa::analytics::AnalyticsSession s(g);
         ACT(s.fs().ClickClass(kEx + "Laptop"));
         rdfa::analytics::GroupingSpec grp;
         grp.path = {kEx + "manufacturer"};
         ACT(s.ClickGroupBy(grp));
         rdfa::analytics::MeasureSpec m;
         m.path = {kEx + "price"};
         m.ops = {rdfa::hifun::AggOp::kAvg};
         ACT(s.ClickAggregate(m));
         ++result.actions;
         if (!s.Execute().ok()) return result;
         rdfa::rdf::Graph af_graph;
         auto nested = s.ExploreAnswer(&af_graph);
         ++result.actions;
         if (!nested.ok()) return result;
         ++result.actions;
         if (!nested.value()
                  ->fs()
                  .ClickRange({{rdfa::analytics::AnswerFrame::ColumnIri(
                                  "agg1")}},
                              900, std::nullopt)
                  .ok()) {
           return result;
         }
         result.completed =
             nested.value()->fs().current().ext.size() == 1;
         return result;
       }},
  };
  return kTasks;
}

// Per-task user ratings reported by the paper's study (Fig 8.1; 1-5 scale,
// quoted for reference — subjective, not reproducible mechanically).
const double kPaperRatings[] = {4.8, 4.7, 4.3, 4.5, 4.4,
                                4.4, 4.2, 4.1, 3.9, 3.8};

}  // namespace

int main() {
  std::printf("== Figs 8.1 / 8.2 reproduction: task-based evaluation with a "
              "scripted user ==\n\n");
  rdfa::rdf::Graph g;
  rdfa::workload::BuildRunningExample(&g);
  rdfa::rdf::MaterializeRdfsClosure(&g);

  std::printf("%-4s %-58s %-10s %-8s %-12s\n", "task", "description",
              "completed", "actions", "paper rating");
  size_t completed = 0;
  int total_actions = 0;
  const auto& tasks = Tasks();
  for (size_t i = 0; i < tasks.size(); ++i) {
    TaskResult r = tasks[i].run(&g);
    std::printf("%-4s %-58s %-10s %-8d %-12.1f\n", tasks[i].id,
                tasks[i].description, r.completed ? "yes" : "NO", r.actions,
                kPaperRatings[i]);
    if (r.completed) ++completed;
    total_actions += r.actions;
  }
  std::printf("\nFig 8.2 totals: %zu/%zu tasks completed (%.0f%%), %d actions "
              "overall\n",
              completed, tasks.size(),
              100.0 * static_cast<double>(completed) /
                  static_cast<double>(tasks.size()),
              total_actions);
  std::printf("paper shape: users completed all or nearly all tasks; harder "
              "tasks (HAVING, nesting)\nrate slightly lower but remain "
              "expressible through clicks alone.\n");
  return 0;
}
