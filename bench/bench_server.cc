// Load generator for the HTTP SPARQL endpoint: closed-loop (N connections
// issuing back-to-back requests) and open-loop (fixed arrival rate, latency
// measured from the *scheduled* arrival so queueing delay is charged to the
// server, not hidden by coordinated omission) legs over real loopback
// sockets, plus a shed leg that tightens admission until 503s flow.
//
//   ./build/bench/bench_server --scale=2k --conns=64 --duration-ms=2000
//   ./build/bench/bench_server --port=8080           # external server
//   ./build/bench/bench_server --json=bench_server.json
//
// Without --port the bench hosts the server in-process on an ephemeral
// port (the CI default: one binary, no orchestration). Each leg reports
// p50/p95/p99/max latency, throughput, and the 200/503/504/4xx/5xx split;
// `ci/validate_bench.py server-gates` asserts over the JSON.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "endpoint/endpoint.h"
#include "endpoint/request_handler.h"
#include "rdf/mvcc.h"
#include "server/http_server.h"
#include "server/http_util.h"
#include "sparql/executor.h"
#include "workload/products.h"

namespace {

using rdfa::bench::JsonArray;
using rdfa::bench::JsonObject;
using rdfa::bench::MsSince;
using rdfa::bench::ParseScale;
using rdfa::bench::Percentile;
using rdfa::bench::WriteJsonFile;
using rdfa::server::HttpClient;

constexpr char kPfx[] = "PREFIX ex: <http://www.ics.forth.gr/example#>\n";

// The bench_ablation join suite: multi-pattern joins over the product KG,
// from a 2-pattern chain to a selective 4-pattern star.
const char* kQueries[] = {
    "SELECT ?l ?m ?c WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . }",
    "SELECT ?l ?m ?c ?g WHERE { ?l ex:manufacturer ?m . ?m ex:origin ?c . "
    "?c ex:GDPPerCapita ?g . }",
    "SELECT ?l ?p ?c WHERE { ?l ex:manufacturer ?m . ?l ex:price ?p . "
    "?m ex:origin ?c . }",
    "SELECT ?l ?h ?c WHERE { ?l ex:hardDrive ?h . ?h ex:manufacturer ?hm . "
    "?hm ex:origin ?c . }",
    "SELECT ?l ?m WHERE { ?l ex:releaseDate ?d . ?l ex:price ?p . "
    "?l ex:manufacturer ?m . ?m ex:origin ex:country0 . }",
};
constexpr size_t kQueryCount = sizeof(kQueries) / sizeof(kQueries[0]);

/// Pre-rendered GET target for query i (rotating through the suite).
std::string TargetFor(size_t i) {
  std::string q = std::string(kPfx) + kQueries[i % kQueryCount];
  return "/sparql?query=" + rdfa::server::PercentEncode(q);
}

/// Outcome tally of one leg; merged across client threads.
struct Tally {
  uint64_t requests = 0;
  uint64_t ok_200 = 0;
  uint64_t shed_503 = 0;
  uint64_t timeout_504 = 0;
  uint64_t errors_4xx = 0;
  uint64_t errors_5xx = 0;  ///< 5xx other than 503/504 — the gate is zero
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;

  void Merge(const Tally& other) {
    requests += other.requests;
    ok_200 += other.ok_200;
    shed_503 += other.shed_503;
    timeout_504 += other.timeout_504;
    errors_4xx += other.errors_4xx;
    errors_5xx += other.errors_5xx;
    transport_errors += other.transport_errors;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }

  void Count(int status) {
    ++requests;
    if (status == 200) ++ok_200;
    else if (status == 503) ++shed_503;
    else if (status == 504) ++timeout_504;
    else if (status >= 400 && status < 500) ++errors_4xx;
    else ++errors_5xx;
  }
};

/// One GET on a persistent connection, reconnecting once if the server
/// closed it (e.g. after an error response). Returns the HTTP status, or
/// -1 on transport failure.
int OneRequest(HttpClient* client, const std::string& host, uint16_t port,
               const std::string& target) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!client->connected() && !client->Connect(host, port)) return -1;
    HttpClient::Response resp;
    if (client->Get(target, &resp)) {
      if (!resp.keep_alive) client->Close();
      return resp.status;
    }
    client->Close();  // dead connection; retry once on a fresh one
  }
  return -1;
}

/// Closed loop: `conns` client threads, each its own connection, each
/// issuing requests back-to-back for `duration_ms`. Latency is
/// send-to-response. This measures peak sustainable throughput.
Tally RunClosedLoop(const std::string& host, uint16_t port, int conns,
                    double duration_ms) {
  std::vector<Tally> per_thread(static_cast<size_t>(conns));
  std::vector<std::thread> threads;
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      Tally& tally = per_thread[static_cast<size_t>(t)];
      size_t i = static_cast<size_t>(t);  // stagger the query mix
      while (MsSince(t0) < duration_ms) {
        auto sent = std::chrono::steady_clock::now();
        int status = OneRequest(&client, host, port, TargetFor(i++));
        if (status < 0) {
          ++tally.transport_errors;
          continue;
        }
        tally.Count(status);
        tally.latencies_ms.push_back(MsSince(sent));
      }
    });
  }
  for (auto& th : threads) th.join();
  Tally total;
  for (const Tally& t : per_thread) total.Merge(t);
  return total;
}

/// Open loop: arrivals scheduled at a fixed rate; `conns` client threads
/// pull the next scheduled arrival, wait for its time, and charge the
/// response latency from the *scheduled* instant — a slow server accrues
/// backlog instead of silently slowing the generator down.
Tally RunOpenLoop(const std::string& host, uint16_t port, int conns,
                  double rate_rps, double duration_ms) {
  size_t total_arrivals =
      static_cast<size_t>(rate_rps * duration_ms / 1000.0);
  if (total_arrivals == 0) total_arrivals = 1;
  double gap_ms = 1000.0 / rate_rps;
  std::atomic<size_t> next{0};
  std::vector<Tally> per_thread(static_cast<size_t>(conns));
  std::vector<std::thread> threads;
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      Tally& tally = per_thread[static_cast<size_t>(t)];
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_arrivals) break;
        auto arrival =
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         static_cast<double>(i) * gap_ms));
        std::this_thread::sleep_until(arrival);  // no-op once backlogged
        int status = OneRequest(&client, host, port, TargetFor(i));
        if (status < 0) {
          ++tally.transport_errors;
          continue;
        }
        tally.Count(status);
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - arrival)
                .count());
      }
    });
  }
  for (auto& th : threads) th.join();
  Tally total;
  for (const Tally& t : per_thread) total.Merge(t);
  return total;
}

std::string RenderRun(const std::string& name, const std::string& mode,
                      int conns, double rate_rps, double duration_ms,
                      double elapsed_ms, const Tally& t) {
  JsonObject run;
  run.AddString("name", name);
  run.AddString("mode", mode);
  run.AddInt("connections", static_cast<uint64_t>(conns));
  run.AddNumber("rate_rps", rate_rps);
  run.AddNumber("duration_ms", duration_ms);
  run.AddNumber("elapsed_ms", elapsed_ms);
  run.AddInt("requests", t.requests);
  run.AddInt("ok_200", t.ok_200);
  run.AddInt("shed_503", t.shed_503);
  run.AddInt("timeout_504", t.timeout_504);
  run.AddInt("errors_4xx", t.errors_4xx);
  run.AddInt("errors_5xx", t.errors_5xx);
  run.AddInt("transport_errors", t.transport_errors);
  run.AddNumber("throughput_rps",
                elapsed_ms > 0 ? 1000.0 * static_cast<double>(t.requests) /
                                     elapsed_ms
                               : 0);
  run.AddNumber("p50_ms", Percentile(t.latencies_ms, 0.50));
  run.AddNumber("p95_ms", Percentile(t.latencies_ms, 0.95));
  run.AddNumber("p99_ms", Percentile(t.latencies_ms, 0.99));
  run.AddNumber("max_ms", Percentile(t.latencies_ms, 1.0));
  return run.Render();
}

void PrintLeg(const std::string& name, double elapsed_ms, const Tally& t) {
  std::printf(
      "%-12s %6llu req  %8.1f req/s  p50 %7.2f  p95 %7.2f  p99 %7.2f ms  "
      "(200:%llu 503:%llu 504:%llu 4xx:%llu 5xx:%llu xport:%llu)\n",
      name.c_str(), static_cast<unsigned long long>(t.requests),
      elapsed_ms > 0 ? 1000.0 * static_cast<double>(t.requests) / elapsed_ms
                     : 0,
      Percentile(t.latencies_ms, 0.50), Percentile(t.latencies_ms, 0.95),
      Percentile(t.latencies_ms, 0.99),
      static_cast<unsigned long long>(t.ok_200),
      static_cast<unsigned long long>(t.shed_503),
      static_cast<unsigned long long>(t.timeout_504),
      static_cast<unsigned long long>(t.errors_4xx),
      static_cast<unsigned long long>(t.errors_5xx),
      static_cast<unsigned long long>(t.transport_errors));
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 0;  // 0 = host the server in-process
  int conns = 16;
  int server_threads = 4;
  size_t scale = 2000;
  double duration_ms = 2000;
  double rate_rps = 200;
  bool skip_shed = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) host = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0) port = std::atol(arg.c_str() + 7);
    else if (arg.rfind("--conns=", 0) == 0) conns = std::atoi(arg.c_str() + 8);
    else if (arg.rfind("--threads=", 0) == 0)
      server_threads = std::atoi(arg.c_str() + 10);
    else if (arg.rfind("--scale=", 0) == 0) scale = ParseScale(arg.c_str() + 8);
    else if (arg.rfind("--duration-ms=", 0) == 0)
      duration_ms = std::strtod(arg.c_str() + 14, nullptr);
    else if (arg.rfind("--rate=", 0) == 0)
      rate_rps = std::strtod(arg.c_str() + 7, nullptr);
    else if (arg == "--no-shed-leg") skip_shed = true;
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (conns < 1) conns = 1;

  // In-process server (the default): the same wiring rdfa_server does,
  // minus the flags — MVCC store, cache on, local latency profile.
  std::unique_ptr<rdfa::rdf::MvccGraph> mvcc;
  std::unique_ptr<rdfa::endpoint::SimulatedEndpoint> endpoint;
  std::unique_ptr<rdfa::endpoint::RequestHandler> handler;
  std::unique_ptr<rdfa::server::HttpServer> server;
  bool in_process = port == 0;
  if (in_process) {
    auto base = std::make_unique<rdfa::rdf::Graph>();
    rdfa::workload::ProductKgOptions kg;
    kg.laptops = scale == 0 ? 2000 : scale;
    size_t triples = rdfa::workload::GenerateProductKg(base.get(), kg);
    rdfa::rdf::MvccGraph::Options mopts;
    mopts.update_fn = [](rdfa::rdf::Graph* g, const std::string& text) {
      auto applied = rdfa::sparql::ExecuteUpdateString(g, text);
      return applied.ok() ? rdfa::Status::OK() : applied.status();
    };
    auto opened =
        rdfa::rdf::MvccGraph::Open(std::move(mopts), std::move(base));
    if (!opened.ok()) {
      std::fprintf(stderr, "store: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    mvcc = std::move(opened).value();
    endpoint = std::make_unique<rdfa::endpoint::SimulatedEndpoint>(
        mvcc.get(), rdfa::endpoint::LatencyProfile::Local(), true);
    rdfa::endpoint::AdmissionOptions adm;
    adm.max_in_flight = 8;
    adm.max_queue = 128;
    adm.base_timeout_ms = 0;
    endpoint->set_admission(adm);
    endpoint->set_use_dp(true);
    handler = std::make_unique<rdfa::endpoint::RequestHandler>(
        endpoint.get(), /*max_timeout_ms=*/10'000);
    rdfa::server::HttpServerOptions sopts;
    sopts.port = 0;
    sopts.worker_threads = server_threads;
    server = std::make_unique<rdfa::server::HttpServer>(handler.get(), sopts);
    rdfa::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
    std::printf("in-process server: 127.0.0.1:%ld, %d workers, %zu triples\n",
                port, server_threads, triples);
  } else {
    std::printf("external server: %s:%ld\n", host.c_str(), port);
    skip_shed = true;  // can't reconfigure a remote server's admission
  }

  std::vector<std::string> runs;

  auto t0 = std::chrono::steady_clock::now();
  Tally closed = RunClosedLoop(host, static_cast<uint16_t>(port), conns,
                               duration_ms);
  double closed_ms = MsSince(t0);
  PrintLeg("closed", closed_ms, closed);
  runs.push_back(RenderRun("closed", "closed-loop", conns, 0, duration_ms,
                           closed_ms, closed));

  t0 = std::chrono::steady_clock::now();
  Tally open = RunOpenLoop(host, static_cast<uint16_t>(port), conns,
                           rate_rps, duration_ms);
  double open_ms = MsSince(t0);
  PrintLeg("open", open_ms, open);
  runs.push_back(RenderRun("open", "open-loop", conns, rate_rps, duration_ms,
                           open_ms, open));

  if (!skip_shed) {
    // Shed leg: admission tightened to one slot and no queue, so concurrent
    // clients *must* draw 503s — proving the shed path reaches the wire.
    rdfa::endpoint::AdmissionOptions tight;
    tight.max_in_flight = 1;
    tight.max_queue = 0;
    tight.base_timeout_ms = 0;
    endpoint->set_admission(tight);
    // Cache hits hold the slot only for microseconds, which would make
    // collisions (and therefore sheds) timing-dependent; with the cache off
    // every request executes while holding the slot.
    rdfa::CacheOptions cache_off;
    cache_off.enabled = false;
    endpoint->set_cache_options(cache_off);
    t0 = std::chrono::steady_clock::now();
    Tally shed = RunClosedLoop(host, static_cast<uint16_t>(port),
                               conns < 8 ? 8 : conns, duration_ms / 2);
    double shed_ms = MsSince(t0);
    PrintLeg("closed-shed", shed_ms, shed);
    runs.push_back(RenderRun("closed-shed", "closed-loop",
                             conns < 8 ? 8 : conns, 0, duration_ms / 2,
                             shed_ms, shed));
  }

  if (server != nullptr) {
    server->Stop();
    const auto c = server->counters();
    std::printf("server counters: accepted=%llu open=%llu served=%llu "
                "parse_errors=%llu\n",
                static_cast<unsigned long long>(c.connections_accepted),
                static_cast<unsigned long long>(c.connections_open),
                static_cast<unsigned long long>(c.requests_served),
                static_cast<unsigned long long>(c.parse_errors));
  }

  if (!json_path.empty()) {
    JsonObject doc;
    doc.AddString("bench", "bench_server");
    doc.AddString("target", in_process ? "in-process" : "external");
    doc.AddInt("scale", static_cast<uint64_t>(scale));
    doc.AddRaw("runs", JsonArray(runs));
    if (!WriteJsonFile(json_path, doc.Render())) return 1;
  }
  return 0;
}
