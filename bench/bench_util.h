// Shared helpers for the benchmark harnesses: flag parsing, percentile
// math, and the --json=<path> machine-readable output (one JSON object per
// bench run, consumed by the CI artifact step and the BENCH_*.json perf
// trajectory tracking).

#ifndef RDFA_BENCH_BENCH_UTIL_H_
#define RDFA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/query_log.h"
#include "common/string_util.h"
#include "common/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rdfa::bench {

/// Current resident set size in bytes (via /proc/self/statm); 0 where the
/// proc interface is unavailable. The storage bench reports RSS deltas
/// around graph loads, so mmap-backed cold starts show their page-cache
/// footprint honestly.
inline uint64_t ResidentBytes() {
#if defined(__unix__)
  std::ifstream statm("/proc/self/statm");
  uint64_t total = 0, resident = 0;
  if (!(statm >> total >> resident)) return 0;
  return resident * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

inline double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// q-th latency percentile (q in [0, 1]) of the sample, by sorting a copy
/// and taking the nearest-rank element. An empty sample returns 0 — a bench
/// summary over zero served queries prints zeros rather than crashing — and
/// a 1-element sample returns that element for every q.
inline double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(static_cast<double>(v.size() - 1) * q)];
}

/// "--scale=20k" / "--scale=2000" -> 20000 / 2000; 0 on garbage.
inline size_t ParseScale(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end != nullptr && (*end == 'k' || *end == 'K')) v *= 1000;
  return v < 1 ? 0 : static_cast<size_t>(v);
}

/// Incrementally builds one JSON object. Keys are caller-controlled
/// identifiers; string values go through the shared JsonEscape helper, so
/// quotes, backslashes, and control characters are all handled.
class JsonObject {
 public:
  void AddNumber(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    Field(key) += buf;
  }
  void AddInt(const std::string& key, uint64_t value) {
    Field(key) += std::to_string(value);
  }
  void AddBool(const std::string& key, bool value) {
    Field(key) += value ? "true" : "false";
  }
  void AddString(const std::string& key, const std::string& value) {
    Field(key) += "\"" + JsonEscape(value) + "\"";
  }
  /// Splices a pre-rendered JSON value (object or array) under `key`.
  void AddRaw(const std::string& key, const std::string& json) {
    Field(key) += json;
  }

  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string& Field(const std::string& key) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":";
    return body_;
  }
  std::string body_;
};

/// Per-run trace-file writer behind the benches' --trace-out=<dir> flag.
/// When armed with a directory, StartRun() hands out a fresh Tracer to hang
/// on the run's QueryContext and FinishRun() writes the collected spans as
/// Chrome trace-event JSON to `dir/<stem>-<seq>.json` (Perfetto-loadable).
/// Unarmed (empty dir, the default) both calls are no-ops.
class TraceSink {
 public:
  void set_dir(std::string dir) { dir_ = std::move(dir); }
  bool enabled() const { return !dir_.empty(); }

  std::shared_ptr<Tracer> StartRun() {
    return enabled() ? std::make_shared<Tracer>() : nullptr;
  }

  /// Returns the written file's path; "" when disabled, handed a null
  /// tracer, or on I/O failure (which also reports to stderr).
  std::string FinishRun(const Tracer* tracer, const char* stem) {
    if (!enabled() || tracer == nullptr) return "";
    std::string path =
        WriteTraceFile(dir_, stem, seq_++, tracer->ToChromeJson());
    if (path.empty()) {
      std::fprintf(stderr, "cannot write trace file under %s\n", dir_.c_str());
    }
    return path;
  }

 private:
  std::string dir_;
  int64_t seq_ = 0;
};

/// Renders a sequence of pre-rendered JSON values as an array.
inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  out += "]";
  return out;
}

/// Writes `json` (plus trailing newline) to `path`; reports to stderr and
/// returns false on failure so benches can exit non-zero.
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for --json output\n", path.c_str());
    return false;
  }
  file << json << "\n";
  if (!file.good()) {
    std::fprintf(stderr, "write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace rdfa::bench

#endif  // RDFA_BENCH_BENCH_UTIL_H_
