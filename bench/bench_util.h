// Shared helpers for the benchmark harnesses: flag parsing, percentile
// math, and the --json=<path> machine-readable output (one JSON object per
// bench run, consumed by the CI artifact step and the BENCH_*.json perf
// trajectory tracking).

#ifndef RDFA_BENCH_BENCH_UTIL_H_
#define RDFA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace rdfa::bench {

inline double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// q-th latency percentile (q in [0, 1]) of the sample, by sorting a copy.
inline double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(static_cast<double>(v.size() - 1) * q)];
}

/// "--scale=20k" / "--scale=2000" -> 20000 / 2000; 0 on garbage.
inline size_t ParseScale(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end != nullptr && (*end == 'k' || *end == 'K')) v *= 1000;
  return v < 1 ? 0 : static_cast<size_t>(v);
}

/// Incrementally builds one JSON object. Keys are caller-controlled
/// identifiers; string values are escaped for quotes and backslashes only
/// (bench output never contains control characters).
class JsonObject {
 public:
  void AddNumber(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    Field(key) += buf;
  }
  void AddInt(const std::string& key, uint64_t value) {
    Field(key) += std::to_string(value);
  }
  void AddBool(const std::string& key, bool value) {
    Field(key) += value ? "true" : "false";
  }
  void AddString(const std::string& key, const std::string& value) {
    std::string& out = Field(key);
    out += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  /// Splices a pre-rendered JSON value (object or array) under `key`.
  void AddRaw(const std::string& key, const std::string& json) {
    Field(key) += json;
  }

  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string& Field(const std::string& key) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":";
    return body_;
  }
  std::string body_;
};

/// Renders a sequence of pre-rendered JSON values as an array.
inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  out += "]";
  return out;
}

/// Writes `json` (plus trailing newline) to `path`; reports to stderr and
/// returns false on failure so benches can exit non-zero.
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s for --json output\n", path.c_str());
    return false;
  }
  file << json << "\n";
  if (!file.good()) {
    std::fprintf(stderr, "write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace rdfa::bench

#endif  // RDFA_BENCH_BENCH_UTIL_H_
