#include "viz/spiral.h"

#include <algorithm>
#include <cmath>

namespace rdfa::viz {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool Overlaps(const SpiralPlacement& a, const SpiralPlacement& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  double d2 = dx * dx + dy * dy;
  double r = a.radius + b.radius;
  return d2 < r * r * 0.999;  // small tolerance
}
}  // namespace

std::vector<SpiralPlacement> SpiralLayout(
    std::vector<std::pair<std::string, double>> values) {
  std::stable_sort(values.begin(), values.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::vector<SpiralPlacement> placed;
  placed.reserve(values.size());
  if (values.empty()) return placed;

  // Disc radius: area proportional to value (minimum radius for zeros).
  auto radius_of = [](double v) { return std::sqrt(std::max(v, 1e-9) / kPi); };

  double theta = 0;
  // Spiral pitch scaled to the largest disc so consecutive turns clear it.
  double pitch = radius_of(values.front().second) * 0.6 + 1e-6;
  for (size_t i = 0; i < values.size(); ++i) {
    SpiralPlacement p;
    p.label = values[i].first;
    p.value = values[i].second;
    p.radius = radius_of(values[i].second);
    if (i == 0) {
      placed.push_back(p);
      continue;
    }
    // Walk the Archimedean spiral r = pitch * theta outward until the disc
    // fits.
    while (true) {
      double r = pitch * theta;
      p.x = r * std::cos(theta);
      p.y = r * std::sin(theta);
      bool ok = true;
      for (const SpiralPlacement& q : placed) {
        if (Overlaps(p, q)) {
          ok = false;
          break;
        }
      }
      if (ok) break;
      // Step size shrinks with radius so the walk stays near-constant in
      // arc length.
      theta += 0.2 / (1.0 + theta * 0.1);
    }
    placed.push_back(p);
  }
  return placed;
}

std::string RenderSpiral(const std::vector<SpiralPlacement>& layout,
                         size_t cols, size_t rows) {
  if (layout.empty()) return "(empty layout)\n";
  double min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  for (const SpiralPlacement& p : layout) {
    min_x = std::min(min_x, p.x - p.radius);
    max_x = std::max(max_x, p.x + p.radius);
    min_y = std::min(min_y, p.y - p.radius);
    max_y = std::max(max_y, p.y + p.radius);
  }
  double sx = (max_x - min_x) / static_cast<double>(cols - 1);
  double sy = (max_y - min_y) / static_cast<double>(rows - 1);
  if (sx <= 0) sx = 1;
  if (sy <= 0) sy = 1;
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  for (const SpiralPlacement& p : layout) {
    char mark = p.label.empty() ? '*' : p.label[0];
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        double x = min_x + static_cast<double>(c) * sx;
        double y = min_y + static_cast<double>(r) * sy;
        double dx = x - p.x;
        double dy = y - p.y;
        if (dx * dx + dy * dy <= p.radius * p.radius) grid[r][c] = mark;
      }
    }
  }
  std::string out;
  for (const std::string& line : grid) out += line + "\n";
  return out;
}

}  // namespace rdfa::viz
