#ifndef RDFA_VIZ_CUBES_H_
#define RDFA_VIZ_CUBES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sparql/result_table.h"

namespace rdfa::viz {

/// One storey of a multi-storey cube: a named feature and its height
/// (volume proportional to the feature's value).
struct CubeSegment {
  std::string feature;
  double value = 0;
  double height = 0;  ///< normalized so the tallest entity has height 1
};

/// One entity of the 3D "urban area" visualization (dissertation §6.3 and
/// systems 1a/1b): a cube placed on a grid whose stacked segments encode
/// the entity's feature values.
struct CityCube {
  std::string label;
  int grid_x = 0;
  int grid_z = 0;
  std::vector<CubeSegment> segments;
};

/// Builds the cube-city scene from an analytic result: `label_col` names
/// the entities (one cube each); every other numeric column becomes a
/// segment. Cubes are laid out row-major on a near-square grid, ordered by
/// total value descending (tallest towers in front).
Result<std::vector<CityCube>> BuildCubeCity(const sparql::ResultTable& table,
                                            const std::string& label_col);

/// Serializes the scene as a small JSON document a 3D front end could load
/// (positions, segment heights, labels).
std::string CubeCityToJson(const std::vector<CityCube>& city);

}  // namespace rdfa::viz

#endif  // RDFA_VIZ_CUBES_H_
