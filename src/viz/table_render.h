#ifndef RDFA_VIZ_TABLE_RENDER_H_
#define RDFA_VIZ_TABLE_RENDER_H_

#include <string>

#include "sparql/result_table.h"

namespace rdfa::viz {

/// Renders a result table as an aligned ASCII table (the tabular answer
/// frame of Fig 6.3a). IRIs are shortened to their local names; literals
/// print their lexical form.
std::string RenderTable(const sparql::ResultTable& table,
                        size_t max_rows = 50);

/// Shortens an IRI to its local name (after the last '#' or '/').
std::string LocalName(const std::string& iri);

/// Display form of a term: local name for IRIs, lexical form for literals.
std::string DisplayTerm(const rdf::Term& term);

}  // namespace rdfa::viz

#endif  // RDFA_VIZ_TABLE_RENDER_H_
