#include "viz/table_render.h"

#include <algorithm>
#include <vector>

namespace rdfa::viz {

std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}

std::string DisplayTerm(const rdf::Term& term) {
  if (sparql::ResultTable::IsUnbound(term)) return "";
  if (term.is_iri()) return LocalName(term.lexical());
  if (term.is_blank()) return "_:" + term.lexical();
  return term.lexical();
}

std::string RenderTable(const sparql::ResultTable& table, size_t max_rows) {
  size_t rows = std::min(table.num_rows(), max_rows);
  size_t cols = table.num_columns();
  std::vector<size_t> width(cols);
  std::vector<std::vector<std::string>> cells(rows,
                                              std::vector<std::string>(cols));
  for (size_t c = 0; c < cols; ++c) width[c] = table.columns()[c].size();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      cells[r][c] = DisplayTerm(table.at(r, c));
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out = "|";
  for (size_t c = 0; c < cols; ++c) {
    out += " " + pad(table.columns()[c], width[c]) + " |";
  }
  out += "\n|";
  for (size_t c = 0; c < cols; ++c) {
    out += std::string(width[c] + 2, '-') + "|";
  }
  out += "\n";
  for (size_t r = 0; r < rows; ++r) {
    out += "|";
    for (size_t c = 0; c < cols; ++c) {
      out += " " + pad(cells[r][c], width[c]) + " |";
    }
    out += "\n";
  }
  if (table.num_rows() > rows) {
    out += "... (" + std::to_string(table.num_rows() - rows) + " more rows)\n";
  }
  return out;
}

}  // namespace rdfa::viz
