#ifndef RDFA_VIZ_CHART_H_
#define RDFA_VIZ_CHART_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sparql/result_table.h"

namespace rdfa::viz {

/// One (label, value) pair of a 2D chart series.
struct ChartPoint {
  std::string label;
  double value = 0;
};

/// Extracts a chart series from an analytic result: `label_col` supplies
/// category labels, `value_col` the numeric measure. Non-numeric rows are
/// skipped.
Result<std::vector<ChartPoint>> SeriesFromTable(
    const sparql::ResultTable& table, const std::string& label_col,
    const std::string& value_col);

/// Renders a horizontal ASCII bar chart (the 2D plot of Fig 6.4) with bars
/// scaled to `width` characters.
std::string RenderBarChart(const std::vector<ChartPoint>& series,
                           size_t width = 40);

/// Renders a pie-chart legend with percentages (no graphics, but the same
/// aggregation the pie of Fig 6.4 shows).
std::string RenderPieLegend(const std::vector<ChartPoint>& series);

/// Renders a vertical ASCII column chart of height `height` rows (the
/// column chart of Fig 3.4 a / Fig 6.4), labels printed vertically under
/// their columns by first letter and index.
std::string RenderColumnChart(const std::vector<ChartPoint>& series,
                              size_t height = 12);

/// Renders a histogram from bucket edges/counts (pairs of (lo, count)); the
/// companion of fs::BucketNumericFacet.
struct HistogramBin {
  double lo = 0;
  double hi = 0;
  size_t count = 0;
};
std::string RenderHistogram(const std::vector<HistogramBin>& bins,
                            size_t width = 40);

}  // namespace rdfa::viz

#endif  // RDFA_VIZ_CHART_H_
