#include "viz/cubes.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "sparql/value.h"
#include "viz/table_render.h"

namespace rdfa::viz {

Result<std::vector<CityCube>> BuildCubeCity(const sparql::ResultTable& table,
                                            const std::string& label_col) {
  int lc = table.ColumnIndex(label_col);
  if (lc < 0) return Status::NotFound("no column " + label_col);

  // Numeric feature columns.
  std::vector<int> feature_cols;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (static_cast<int>(c) == lc) continue;
    bool numeric = table.num_rows() > 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!sparql::Value::FromTerm(table.at(r, c)).AsNumeric().has_value()) {
        numeric = false;
        break;
      }
    }
    if (numeric) feature_cols.push_back(static_cast<int>(c));
  }
  if (feature_cols.empty()) {
    return Status::InvalidArgument("no numeric feature columns");
  }

  std::vector<CityCube> city;
  double max_total = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    CityCube cube;
    cube.label = DisplayTerm(table.at(r, lc));
    double total = 0;
    for (int c : feature_cols) {
      CubeSegment seg;
      seg.feature = table.columns()[c];
      seg.value = *sparql::Value::FromTerm(table.at(r, c)).AsNumeric();
      total += std::fabs(seg.value);
      cube.segments.push_back(std::move(seg));
    }
    max_total = std::max(max_total, total);
    city.push_back(std::move(cube));
  }
  if (max_total == 0) max_total = 1;

  // Normalize segment heights and order towers tallest-first.
  auto total_of = [](const CityCube& c) {
    double t = 0;
    for (const CubeSegment& s : c.segments) t += std::fabs(s.value);
    return t;
  };
  for (CityCube& cube : city) {
    for (CubeSegment& s : cube.segments) {
      s.height = std::fabs(s.value) / max_total;
    }
  }
  std::stable_sort(city.begin(), city.end(),
                   [&](const CityCube& a, const CityCube& b) {
                     return total_of(a) > total_of(b);
                   });

  // Near-square grid, row-major.
  int side = static_cast<int>(std::ceil(std::sqrt(
      static_cast<double>(std::max<size_t>(city.size(), 1)))));
  for (size_t i = 0; i < city.size(); ++i) {
    city[i].grid_x = static_cast<int>(i) % side;
    city[i].grid_z = static_cast<int>(i) / side;
  }
  return city;
}

std::string CubeCityToJson(const std::vector<CityCube>& city) {
  std::string out = "{\"cubes\":[";
  for (size_t i = 0; i < city.size(); ++i) {
    const CityCube& c = city[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"" + EscapeLiteral(c.label) + "\",\"x\":" +
           std::to_string(c.grid_x) + ",\"z\":" + std::to_string(c.grid_z) +
           ",\"segments\":[";
    for (size_t s = 0; s < c.segments.size(); ++s) {
      if (s > 0) out += ",";
      out += "{\"feature\":\"" + EscapeLiteral(c.segments[s].feature) +
             "\",\"value\":" + FormatNumber(c.segments[s].value) +
             ",\"height\":" + FormatNumber(c.segments[s].height) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rdfa::viz
