#ifndef RDFA_VIZ_SPIRAL_H_
#define RDFA_VIZ_SPIRAL_H_

#include <string>
#include <vector>

namespace rdfa::viz {

/// One placed value of a spiral layout: a disc of radius `radius` centered
/// at (x, y).
struct SpiralPlacement {
  std::string label;
  double value = 0;
  double x = 0;
  double y = 0;
  double radius = 0;
};

/// The spiral-like placement algorithm of the companion paper (Tzitzikas,
/// Papadaki & Chatzakis, JIIS 2022), used by the system for facets with too
/// many values: values are sorted descending, the biggest is placed at the
/// center, and the rest walk outward along an Archimedean spiral, each
/// advanced until it no longer overlaps anything already placed. Properties
/// (tested as invariants):
///   * disc areas are proportional to the values;
///   * no two discs overlap;
///   * distance from the center is non-decreasing in placement order;
///   * the layout is bounded: max distance = O(sqrt(sum of areas)).
std::vector<SpiralPlacement> SpiralLayout(
    std::vector<std::pair<std::string, double>> values);

/// Coarse ASCII rendering of a spiral layout on a `cols` x `rows` grid
/// (each disc prints the first letter of its label).
std::string RenderSpiral(const std::vector<SpiralPlacement>& layout,
                         size_t cols = 60, size_t rows = 30);

}  // namespace rdfa::viz

#endif  // RDFA_VIZ_SPIRAL_H_
