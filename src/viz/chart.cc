#include "viz/chart.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "sparql/value.h"
#include "viz/table_render.h"

namespace rdfa::viz {

Result<std::vector<ChartPoint>> SeriesFromTable(
    const sparql::ResultTable& table, const std::string& label_col,
    const std::string& value_col) {
  int lc = table.ColumnIndex(label_col);
  int vc = table.ColumnIndex(value_col);
  if (lc < 0) return Status::NotFound("no column " + label_col);
  if (vc < 0) return Status::NotFound("no column " + value_col);
  std::vector<ChartPoint> out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto num = sparql::Value::FromTerm(table.at(r, vc)).AsNumeric();
    if (!num.has_value()) continue;
    out.push_back(ChartPoint{DisplayTerm(table.at(r, lc)), *num});
  }
  return out;
}

std::string RenderBarChart(const std::vector<ChartPoint>& series,
                           size_t width) {
  if (series.empty()) return "(empty series)\n";
  double max_v = 0;
  size_t max_label = 0;
  for (const ChartPoint& p : series) {
    max_v = std::max(max_v, std::fabs(p.value));
    max_label = std::max(max_label, p.label.size());
  }
  if (max_v == 0) max_v = 1;
  std::string out;
  for (const ChartPoint& p : series) {
    size_t bar = static_cast<size_t>(
        std::round(std::fabs(p.value) / max_v * static_cast<double>(width)));
    out += p.label + std::string(max_label - p.label.size(), ' ') + " | " +
           std::string(bar, '#') + " " + FormatNumber(p.value) + "\n";
  }
  return out;
}

std::string RenderPieLegend(const std::vector<ChartPoint>& series) {
  double total = 0;
  for (const ChartPoint& p : series) total += std::fabs(p.value);
  if (total == 0) return "(empty series)\n";
  std::string out;
  for (const ChartPoint& p : series) {
    double pct = std::fabs(p.value) / total * 100.0;
    out += p.label + ": " + FormatNumber(p.value) + " (" + FormatNumber(pct) +
           "%)\n";
  }
  return out;
}

std::string RenderColumnChart(const std::vector<ChartPoint>& series,
                              size_t height) {
  if (series.empty() || height == 0) return "(empty series)\n";
  double max_v = 0;
  for (const ChartPoint& p : series) max_v = std::max(max_v, std::fabs(p.value));
  if (max_v == 0) max_v = 1;
  // Each column is 3 characters wide: " # ".
  std::string out;
  for (size_t row = 0; row < height; ++row) {
    double threshold =
        (static_cast<double>(height - row)) / static_cast<double>(height);
    for (const ChartPoint& p : series) {
      bool filled = std::fabs(p.value) / max_v >= threshold - 1e-12;
      out += filled ? " # " : "   ";
    }
    out += "\n";
  }
  for (size_t i = 0; i < series.size(); ++i) out += "---";
  out += "\n";
  for (const ChartPoint& p : series) {
    out += " ";
    out += p.label.empty() ? '?' : p.label[0];
    out += " ";
  }
  out += "\n";
  // Legend, since one letter is rarely unique.
  for (size_t i = 0; i < series.size(); ++i) {
    out += (series[i].label.empty() ? std::string("?")
                                    : series[i].label.substr(0, 1)) +
           ": " + series[i].label + " = " + FormatNumber(series[i].value) +
           "\n";
  }
  return out;
}

std::string RenderHistogram(const std::vector<HistogramBin>& bins,
                            size_t width) {
  if (bins.empty()) return "(empty histogram)\n";
  size_t max_count = 0;
  for (const HistogramBin& b : bins) max_count = std::max(max_count, b.count);
  if (max_count == 0) max_count = 1;
  std::string out;
  for (const HistogramBin& b : bins) {
    size_t bar = b.count * width / max_count;
    out += "[" + FormatNumber(b.lo) + ", " + FormatNumber(b.hi) + ") " +
           std::string(bar, '#') + " " + std::to_string(b.count) + "\n";
  }
  return out;
}

}  // namespace rdfa::viz
