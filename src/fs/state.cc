#include "fs/state.h"

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::fs {

using rdf::kNoTermId;
using rdf::TermId;

Extension Restrict(const rdf::Graph& graph, const Extension& ext,
                   const PropRef& p, TermId v) {
  Extension out;
  TermId pid = graph.terms().FindIri(p.iri);
  if (pid == kNoTermId) return out;
  if (!p.inverse) {
    graph.ForEachMatch(kNoTermId, pid, v, [&](const rdf::TripleId& t) {
      if (ext.count(t.s)) out.insert(t.s);
    });
  } else {
    graph.ForEachMatch(v, pid, kNoTermId, [&](const rdf::TripleId& t) {
      if (ext.count(t.o)) out.insert(t.o);
    });
  }
  return out;
}

Extension RestrictSet(const rdf::Graph& graph, const Extension& ext,
                      const PropRef& p, const Extension& vset) {
  Extension out;
  for (TermId v : vset) {
    Extension part = Restrict(graph, ext, p, v);
    out.insert(part.begin(), part.end());
  }
  return out;
}

Extension RestrictClass(const rdf::Graph& graph, const Extension& ext,
                        TermId cls) {
  Extension out;
  TermId type = graph.terms().FindIri(rdf::rdfns::kType);
  if (type == kNoTermId) return out;
  graph.ForEachMatch(kNoTermId, type, cls, [&](const rdf::TripleId& t) {
    if (ext.count(t.s)) out.insert(t.s);
  });
  return out;
}

Extension Joins(const rdf::Graph& graph, const Extension& ext,
                const PropRef& p) {
  Extension out;
  TermId pid = graph.terms().FindIri(p.iri);
  if (pid == kNoTermId) return out;
  for (TermId e : ext) {
    if (!p.inverse) {
      graph.ForEachMatch(e, pid, kNoTermId,
                         [&](const rdf::TripleId& t) { out.insert(t.o); });
    } else {
      graph.ForEachMatch(kNoTermId, pid, e,
                         [&](const rdf::TripleId& t) { out.insert(t.s); });
    }
  }
  return out;
}

namespace {
std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}
}  // namespace

std::string Condition::ToString() const {
  std::string out;
  for (const PropRef& p : path) {
    if (!out.empty()) out += ".";
    if (p.inverse) out += "^";
    out += LocalName(p.iri);
  }
  if (kind == Kind::kValue) {
    out += " = " + (value.is_iri() ? LocalName(value.lexical())
                                   : value.lexical());
  } else {
    out += " in [";
    out += min.has_value() ? FormatNumber(*min) : "-inf";
    out += ", ";
    out += max.has_value() ? FormatNumber(*max) : "+inf";
    out += "]";
  }
  return out;
}

std::string Intention::ToSparql() const {
  std::string body;
  int var = 1;
  auto fresh = [&]() { return "?v" + std::to_string(++var); };
  if (!root_class.empty()) {
    body += "  ?x1 <" + std::string(rdf::rdfns::kType) + "> <" + root_class +
            "> .\n";
  }
  std::vector<std::string> filters;
  for (const Condition& c : conditions) {
    std::string cur = "?x1";
    for (size_t i = 0; i < c.path.size(); ++i) {
      bool last = i + 1 == c.path.size();
      std::string next;
      if (last && c.kind == Condition::Kind::kValue) {
        next = c.value.ToNTriples();
      } else {
        next = fresh();
      }
      const PropRef& p = c.path[i];
      if (p.inverse) {
        body += "  " + next + " <" + p.iri + "> " + cur + " .\n";
      } else {
        body += "  " + cur + " <" + p.iri + "> " + next + " .\n";
      }
      cur = next;
    }
    if (c.kind == Condition::Kind::kRange) {
      if (c.min.has_value()) {
        filters.push_back(cur + " >= " + FormatNumber(*c.min));
      }
      if (c.max.has_value()) {
        filters.push_back(cur + " <= " + FormatNumber(*c.max));
      }
    }
  }
  if (body.empty()) {
    // The initial state: every subject.
    body = "  ?x1 ?p0 ?o0 .\n";
  }
  std::string sparql = "SELECT DISTINCT ?x1\nWHERE {\n" + body;
  for (const std::string& f : filters) sparql += "  FILTER(" + f + ") .\n";
  sparql += "}";
  return sparql;
}

std::string Intention::ToString() const {
  std::string out =
      root_class.empty() ? "all resources" : LocalName(root_class);
  for (const Condition& c : conditions) {
    out += " & " + c.ToString();
  }
  return out;
}

}  // namespace rdfa::fs
