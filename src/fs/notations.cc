#include "fs/notations.h"

#include "rdf/namespaces.h"
#include "sparql/executor.h"

namespace rdfa::fs {

namespace {

std::string TypePattern(const std::string& var, const std::string& cls) {
  return var + " <" + std::string(rdf::rdfns::kType) + "> <" + cls + "> .";
}

std::string EdgePattern(const std::string& subj, const PropRef& p,
                        const std::string& obj) {
  if (p.inverse) return obj + " <" + p.iri + "> " + subj + " .";
  return subj + " <" + p.iri + "> " + obj + " .";
}

}  // namespace

std::string InstSparql(const std::string& class_iri) {
  return "SELECT DISTINCT ?x WHERE { " + TypePattern("?x", class_iri) + " }";
}

std::string JoinsSparql(const PropRef& p, const std::string& temp_class) {
  return "SELECT DISTINCT ?v WHERE { " + TypePattern("?e", temp_class) + " " +
         EdgePattern("?e", p, "?v") + " }";
}

std::string RestrictValueSparql(const PropRef& p, const rdf::Term& value,
                                const std::string& temp_class) {
  return "SELECT DISTINCT ?e WHERE { " + TypePattern("?e", temp_class) + " " +
         EdgePattern("?e", p, value.ToNTriples()) + " }";
}

std::string RestrictClassSparql(const std::string& class_iri,
                                const std::string& temp_class) {
  return "SELECT DISTINCT ?e WHERE { " + TypePattern("?e", temp_class) + " " +
         TypePattern("?e", class_iri) + " }";
}

std::string RestrictCountSparql(const PropRef& p, const rdf::Term& value,
                                const std::string& temp_class) {
  return "SELECT (COUNT(DISTINCT ?e) AS ?n) WHERE { " +
         TypePattern("?e", temp_class) + " " +
         EdgePattern("?e", p, value.ToNTriples()) + " }";
}

size_t MaterializeExtension(rdf::Graph* graph, const Extension& ext,
                            const std::string& temp_class) {
  rdf::Term type = rdf::Term::Iri(rdf::rdfns::kType);
  rdf::Term temp = rdf::Term::Iri(temp_class);
  size_t added = 0;
  for (rdf::TermId e : ext) {
    if (graph->Add(graph->terms().Get(e), type, temp)) ++added;
  }
  return added;
}

size_t ClearExtension(rdf::Graph* graph, const std::string& temp_class) {
  rdf::TermId type = graph->terms().FindIri(rdf::rdfns::kType);
  rdf::TermId temp = graph->terms().FindIri(temp_class);
  if (type == rdf::kNoTermId || temp == rdf::kNoTermId) return 0;
  return graph->RemoveMatching(rdf::kNoTermId, type, temp);
}

Result<Extension> EvalNotation(rdf::Graph* graph, const std::string& sparql) {
  RDFA_ASSIGN_OR_RETURN(sparql::ResultTable table,
                        sparql::ExecuteQueryString(graph, sparql));
  Extension out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    rdf::TermId id = graph->terms().Find(table.at(r, 0));
    if (id != rdf::kNoTermId) out.insert(id);
  }
  return out;
}

}  // namespace rdfa::fs
