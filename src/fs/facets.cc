#include "fs/facets.h"

#include <algorithm>
#include <map>

#include "sparql/value.h"

namespace rdfa::fs {

using rdf::kNoTermId;
using rdf::TermId;

size_t FacetComputer::CountInstances(TermId cls, const Extension& ext) const {
  size_t n = 0;
  graph_.ForEachMatch(kNoTermId, vocab_.type, cls,
                      [&](const rdf::TripleId& t) {
                        if (ext.count(t.s)) ++n;
                      });
  return n;
}

void FacetComputer::FillClassFacet(const HierarchyNode& node,
                                   const Extension& ext,
                                   std::vector<ClassFacet>* out) const {
  size_t count = CountInstances(node.term, ext);
  if (count == 0) return;  // prune empty transitions
  ClassFacet facet;
  facet.cls = node.term;
  facet.count = count;
  for (const HierarchyNode& child : node.children) {
    FillClassFacet(child, ext, &facet.children);
  }
  out->push_back(std::move(facet));
}

std::vector<ClassFacet> FacetComputer::ClassFacets(const Extension& ext) const {
  std::vector<HierarchyNode> forest =
      BuildClassForest(schema_, schema_.classes());
  std::vector<ClassFacet> out;
  for (const HierarchyNode& root : forest) FillClassFacet(root, ext, &out);
  return out;
}

std::vector<PropertyFacet> FacetComputer::PropertyFacets(
    const Extension& ext, bool include_inverse) const {
  std::vector<PropertyFacet> out;
  // Applicable forward properties: predicates of triples whose subject is in
  // ext.
  std::map<TermId, std::map<TermId, size_t>> forward;  // p -> v -> count
  std::map<TermId, std::map<TermId, size_t>> backward;
  for (TermId e : ext) {
    graph_.ForEachMatch(e, kNoTermId, kNoTermId, [&](const rdf::TripleId& t) {
      if (t.p == vocab_.type || t.p == vocab_.sub_class_of ||
          t.p == vocab_.sub_property_of || t.p == vocab_.domain ||
          t.p == vocab_.range) {
        return;
      }
      forward[t.p][t.o] += 1;
    });
    if (include_inverse) {
      graph_.ForEachMatch(kNoTermId, kNoTermId, e,
                          [&](const rdf::TripleId& t) {
                            if (t.p == vocab_.type) return;
                            backward[t.p][t.s] += 1;
                          });
    }
  }
  auto emit = [&](const std::map<TermId, std::map<TermId, size_t>>& index,
                  bool inverse) {
    for (const auto& [p, values] : index) {
      PropertyFacet facet;
      facet.prop = PropRef{graph_.terms().Get(p).lexical(), inverse};
      for (const auto& [v, count] : values) {
        facet.values.push_back(ValueCount{v, count});
      }
      out.push_back(std::move(facet));
    }
  };
  emit(forward, false);
  if (include_inverse) emit(backward, true);
  return out;
}

PropertyFacet FacetComputer::PathFacet(
    const Extension& ext, const std::vector<PropRef>& path) const {
  PropertyFacet facet;
  if (path.empty()) return facet;
  facet.prop = path.back();
  // Forward marker sets M_1..M_k; count of value v = |RestrictByPath(ext,
  // path, v)| — how many focus objects reach it.
  Extension frontier = ext;
  for (const PropRef& p : path) {
    frontier = Joins(graph_, frontier, p);
  }
  for (TermId v : frontier) {
    size_t n = RestrictByPath(ext, path, v).size();
    if (n > 0) facet.values.push_back(ValueCount{v, n});
  }
  return facet;
}

Extension FacetComputer::RestrictByPath(const Extension& ext,
                                        const std::vector<PropRef>& path,
                                        TermId value) const {
  // Back-propagation of Eq. 5.1: S_k = {v}; S_{i-1} = the objects of M_{i-1}
  // reaching S_i via p_i. We walk backwards using inverse joins, then
  // intersect with ext.
  Extension cur = {value};
  for (size_t i = path.size(); i-- > 0;) {
    PropRef back = path[i];
    back.inverse = !back.inverse;
    cur = Joins(graph_, cur, back);
    if (cur.empty()) return {};
  }
  Extension out;
  for (TermId e : ext) {
    if (cur.count(e)) out.insert(e);
  }
  return out;
}

Extension FacetComputer::RestrictByRange(const Extension& ext,
                                         const std::vector<PropRef>& path,
                                         std::optional<double> min,
                                         std::optional<double> max) const {
  Extension out;
  for (TermId e : ext) {
    // Does e reach any in-range value through the path?
    Extension frontier = {e};
    for (const PropRef& p : path) {
      frontier = Joins(graph_, frontier, p);
      if (frontier.empty()) break;
    }
    for (TermId v : frontier) {
      auto num =
          sparql::Value::FromTerm(graph_.terms().Get(v)).AsNumeric();
      if (!num.has_value()) continue;
      if (min.has_value() && *num < *min) continue;
      if (max.has_value() && *num > *max) continue;
      out.insert(e);
      break;
    }
  }
  return out;
}

std::vector<ValueBucket> BucketNumericFacet(const rdf::Graph& graph,
                                            const PropertyFacet& facet,
                                            size_t n_buckets) {
  if (n_buckets == 0) return {};
  std::vector<std::pair<double, size_t>> numeric;
  for (const ValueCount& vc : facet.values) {
    auto n = sparql::Value::FromTerm(graph.terms().Get(vc.value)).AsNumeric();
    if (n.has_value()) numeric.push_back({*n, vc.count});
  }
  if (numeric.empty()) return {};
  double lo = numeric[0].first, hi = numeric[0].first;
  for (const auto& [v, _] : numeric) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<ValueBucket> buckets(n_buckets);
  double width = (hi - lo) / static_cast<double>(n_buckets);
  if (width == 0) width = 1;  // all values equal: everything in bucket 0
  for (size_t b = 0; b < n_buckets; ++b) {
    buckets[b].lo = lo + width * static_cast<double>(b);
    buckets[b].hi = lo + width * static_cast<double>(b + 1);
  }
  for (const auto& [v, count] : numeric) {
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= n_buckets) b = n_buckets - 1;  // hi lands in the last bucket
    buckets[b].count += count;
  }
  return buckets;
}

void SortFacetValues(const rdf::Graph& graph, FacetOrder order,
                     PropertyFacet* facet) {
  auto value_key = [&](const ValueCount& vc) {
    return graph.terms().Get(vc.value);
  };
  std::stable_sort(
      facet->values.begin(), facet->values.end(),
      [&](const ValueCount& a, const ValueCount& b) {
        if (order == FacetOrder::kCountDescending) {
          if (a.count != b.count) return a.count > b.count;
        }
        // Tie-break (and kValueAscending): numeric when both parse,
        // otherwise lexical on the display form.
        const rdf::Term& ta = value_key(a);
        const rdf::Term& tb = value_key(b);
        auto na = sparql::Value::FromTerm(ta).AsNumeric();
        auto nb = sparql::Value::FromTerm(tb).AsNumeric();
        if (na.has_value() && nb.has_value()) return *na < *nb;
        return ta.lexical() < tb.lexical();
      });
}

size_t TruncateFacetValues(const rdf::Graph& graph, FacetOrder order,
                           size_t k, PropertyFacet* facet) {
  SortFacetValues(graph, order, facet);
  if (facet->values.size() <= k) return 0;
  size_t cut = facet->values.size() - k;
  facet->values.resize(k);
  return cut;
}

std::map<int, size_t> BucketDateFacetByYear(const rdf::Graph& graph,
                                            const PropertyFacet& facet) {
  std::map<int, size_t> out;
  for (const ValueCount& vc : facet.values) {
    const rdf::Term& t = graph.terms().Get(vc.value);
    if (!t.is_literal()) continue;
    auto year = sparql::DateTimeComponent(t.lexical(), 0);
    if (year.has_value()) out[*year] += vc.count;
  }
  return out;
}

}  // namespace rdfa::fs
