#include "fs/mmap_file.h"

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define RDFA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rdfa::fs {

Result<std::shared_ptr<const MmapFile>> MmapFile::Open(
    const std::string& path) {
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
#ifdef RDFA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        file->mapped_ = true;  // trivially: nothing to read
        return std::shared_ptr<const MmapFile>(file);
      }
      void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      // The mapping holds its own reference to the file; the descriptor is
      // not needed past this point on either branch.
      ::close(fd);
      if (addr != MAP_FAILED) {
        file->data_ = static_cast<const char*>(addr);
        file->size_ = size;
        file->mapped_ = true;
        return std::shared_ptr<const MmapFile>(file);
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // Heap fallback: identical interface, eager bytes.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  file->fallback_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed for " + path);
  }
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  file->mapped_ = false;
  return std::shared_ptr<const MmapFile>(file);
}

MmapFile::~MmapFile() {
#ifdef RDFA_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

}  // namespace rdfa::fs
