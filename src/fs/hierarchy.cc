#include "fs/hierarchy.h"

#include <functional>
#include <map>

namespace rdfa::fs {

using rdf::TermId;

namespace {

/// Generic forest builder over a strict-ancestor closure function.
std::vector<HierarchyNode> BuildForest(
    const std::set<TermId>& applicable,
    const std::function<std::set<TermId>(TermId)>& strict_ancestors) {
  // For each applicable term, its nearest applicable strict ancestor: the
  // applicable ancestor that has no other applicable ancestor strictly
  // between. Equivalently: ancestor A of X such that no other applicable
  // ancestor B of X has A as ancestor of B... computed by depth filtering.
  std::map<TermId, std::set<TermId>> anc;
  for (TermId t : applicable) {
    std::set<TermId> all = strict_ancestors(t);
    std::set<TermId> filtered;
    for (TermId a : all) {
      if (a != t && applicable.count(a)) filtered.insert(a);
    }
    anc[t] = std::move(filtered);
  }
  // Parent of t: an applicable ancestor a with no applicable ancestor c of t
  // such that a is a strict ancestor of c (transitive reduction).
  std::map<TermId, std::vector<TermId>> children;
  std::set<TermId> roots;
  for (TermId t : applicable) {
    const std::set<TermId>& as = anc[t];
    if (as.empty()) {
      roots.insert(t);
      continue;
    }
    bool has_parent = false;
    for (TermId a : as) {
      bool minimal = true;
      for (TermId c : as) {
        if (c == a) continue;
        std::set<TermId> c_anc = strict_ancestors(c);
        if (c_anc.count(a)) {
          minimal = false;  // a is above c: not the nearest
          break;
        }
      }
      if (minimal) {
        children[a].push_back(t);
        has_parent = true;
      }
    }
    if (!has_parent) roots.insert(t);
  }

  std::function<HierarchyNode(TermId)> build = [&](TermId t) {
    HierarchyNode node;
    node.term = t;
    auto it = children.find(t);
    if (it != children.end()) {
      for (TermId c : it->second) node.children.push_back(build(c));
    }
    return node;
  };
  std::vector<HierarchyNode> forest;
  for (TermId r : roots) forest.push_back(build(r));
  return forest;
}

}  // namespace

std::vector<HierarchyNode> BuildClassForest(
    const rdf::SchemaView& schema, const std::set<TermId>& applicable) {
  return BuildForest(applicable, [&](TermId t) {
    std::set<TermId> s = schema.Superclasses(t);
    s.erase(t);
    return s;
  });
}

std::vector<HierarchyNode> BuildPropertyForest(
    const rdf::SchemaView& schema, const std::set<TermId>& applicable) {
  return BuildForest(applicable, [&](TermId t) {
    std::set<TermId> s = schema.Superproperties(t);
    s.erase(t);
    return s;
  });
}

}  // namespace rdfa::fs
