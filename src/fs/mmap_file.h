#ifndef RDFA_FS_MMAP_FILE_H_
#define RDFA_FS_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rdfa::fs {

/// A read-only memory-mapped file. The mapping is private and immutable for
/// the lifetime of the object; `data()` is valid until destruction, so
/// long-lived views (the RDFA3 snapshot loader) can hand out raw pointers
/// into the file and decode sections lazily, paying page-cache faults only
/// for the ranges actually scanned.
///
/// On platforms (or filesystems) where mmap fails, Open falls back to
/// reading the whole file into an owned heap buffer — callers see the same
/// interface either way, only `mapped()` differs.
class MmapFile {
 public:
  /// Maps `path` read-only. InvalidArgument if the file cannot be opened,
  /// Internal if it cannot be mapped nor read.
  static Result<std::shared_ptr<const MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

  /// True when the contents are an actual mmap (false = heap fallback).
  bool mapped() const { return mapped_; }

 private:
  MmapFile() = default;

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace rdfa::fs

#endif  // RDFA_FS_MMAP_FILE_H_
