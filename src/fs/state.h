#ifndef RDFA_FS_STATE_H_
#define RDFA_FS_STATE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/graph.h"

namespace rdfa::fs {

/// A property reference with direction: `inverse` follows the property from
/// object to subject (p^-1 of §5.3.1).
struct PropRef {
  std::string iri;
  bool inverse = false;

  friend bool operator==(const PropRef& a, const PropRef& b) {
    return a.iri == b.iri && a.inverse == b.inverse;
  }
};

/// The formal restriction/join operations of the FS model (§5.3.1).
/// Extensions are sets of interned term ids.
using Extension = std::set<rdf::TermId>;

/// Restrict(E, p : v) = { e in E | (e, p, v) in inst(p) }.
Extension Restrict(const rdf::Graph& graph, const Extension& ext,
                   const PropRef& p, rdf::TermId v);

/// Restrict(E, p : vset).
Extension RestrictSet(const rdf::Graph& graph, const Extension& ext,
                      const PropRef& p, const Extension& vset);

/// Restrict(E, c) = { e in E | e in inst(c) } (rdf:type match; assumes the
/// RDFS closure has been materialized if subclass semantics are wanted).
Extension RestrictClass(const rdf::Graph& graph, const Extension& ext,
                        rdf::TermId cls);

/// Joins(E, p) = { v | exists e in E with (e, p, v) in inst(p) }.
Extension Joins(const rdf::Graph& graph, const Extension& ext,
                const PropRef& p);

/// One accumulated filter of a state's intention: a property path from the
/// focus ending in either a concrete value or a numeric range.
struct Condition {
  enum class Kind { kValue, kRange };
  Kind kind = Kind::kValue;
  std::vector<PropRef> path;  ///< length >= 1
  rdf::Term value;            ///< kValue
  std::optional<double> min;  ///< kRange (inclusive)
  std::optional<double> max;  ///< kRange (inclusive)

  std::string ToString() const;
};

/// The intention of a state: a query whose answer is the extension
/// (§5.2.1). Expressible in SPARQL per Table 5.1.
struct Intention {
  std::string root_class;  ///< IRI; empty in the initial state s0
  std::vector<Condition> conditions;

  /// SPARQL SELECT computing the extension (Table 5.1 / 5.2 style).
  std::string ToSparql() const;
  std::string ToString() const;
};

/// One state of the interaction: extension + intention (§5.2.1).
struct State {
  Extension ext;
  Intention intent;
};

}  // namespace rdfa::fs

#endif  // RDFA_FS_STATE_H_
