#ifndef RDFA_FS_FACETS_H_
#define RDFA_FS_FACETS_H_

#include <map>
#include <string>
#include <vector>

#include "fs/hierarchy.h"
#include "fs/state.h"
#include "rdf/rdfs.h"

namespace rdfa::fs {

/// One clickable value under a property facet, with its count
/// (|Restrict(E, p : v)|) — count information is characteristic (ii) of the
/// model (§1.4): only non-empty transitions are shown.
struct ValueCount {
  rdf::TermId value = rdf::kNoTermId;
  size_t count = 0;
};

/// A property facet: the property (with direction), its applicable values
/// and counts, computed as Joins(E, p) (§5.3.2, Alg. 5 part C).
struct PropertyFacet {
  PropRef prop;
  std::vector<ValueCount> values;
};

/// A class transition marker with its count and (lazily expandable)
/// applicable subclasses (§5.3.2, Fig 5.4 a/b).
struct ClassFacet {
  rdf::TermId cls = rdf::kNoTermId;
  size_t count = 0;
  std::vector<ClassFacet> children;
};

/// Computes the transition markers of a state per the paper's Algorithm 5.
class FacetComputer {
 public:
  FacetComputer(const rdf::Graph& graph, const rdf::SchemaView& schema,
                const rdf::Vocab& vocab)
      : graph_(graph), schema_(schema), vocab_(vocab) {}

  /// Class-based markers over `ext`: the applicable classes arranged by the
  /// transitive reduction of <=cl, with instance counts inside `ext`.
  /// Classes with zero count are pruned (never-empty-results guarantee).
  std::vector<ClassFacet> ClassFacets(const Extension& ext) const;

  /// Property-based markers: one facet per property applicable to `ext`
  /// (plus inverse facets when `include_inverse`), each listing
  /// Joins(ext, p) values with counts.
  std::vector<PropertyFacet> PropertyFacets(const Extension& ext,
                                            bool include_inverse = false) const;

  /// Path expansion (Fig 5.5 b): the transition markers at the end of
  /// `path` starting from `ext` — M_k = Joins(...Joins(ext, p1)..., pk) —
  /// with counts of how many members of `ext` reach each value.
  PropertyFacet PathFacet(const Extension& ext,
                          const std::vector<PropRef>& path) const;

  /// The set of members of `ext` that reach `value` through `path`
  /// (back-propagation M'_i of Eq. 5.1).
  Extension RestrictByPath(const Extension& ext,
                           const std::vector<PropRef>& path,
                           rdf::TermId value) const;

  /// Members of `ext` whose numeric value at the end of `path` lies within
  /// [min, max] (the range-filter button of §5.1 Example 3).
  Extension RestrictByRange(const Extension& ext,
                            const std::vector<PropRef>& path,
                            std::optional<double> min,
                            std::optional<double> max) const;

 private:
  size_t CountInstances(rdf::TermId cls, const Extension& ext) const;
  void FillClassFacet(const HierarchyNode& node, const Extension& ext,
                      std::vector<ClassFacet>* out) const;

  const rdf::Graph& graph_;
  const rdf::SchemaView& schema_;
  const rdf::Vocab& vocab_;
};

/// One interval of a bucketed numeric facet (Fig 5.4 d, "grouping of
/// values"): the half-open range [lo, hi) and how many focus objects carry
/// a value inside it. The last bucket is closed ([lo, hi]).
struct ValueBucket {
  double lo = 0;
  double hi = 0;
  size_t count = 0;
};

/// Groups the numeric values of a facet into `n_buckets` equal-width
/// intervals — what the GUI shows when a facet has too many distinct
/// values. Object counts are summed from the facet's value counts;
/// non-numeric values are ignored. Returns an empty vector when no value is
/// numeric.
std::vector<ValueBucket> BucketNumericFacet(const rdf::Graph& graph,
                                            const PropertyFacet& facet,
                                            size_t n_buckets);

/// Groups dateTime/date facet values by year -> summed count (the Year
/// grouping the transform button of §5.1 offers).
std::map<int, size_t> BucketDateFacetByYear(const rdf::Graph& graph,
                                            const PropertyFacet& facet);

/// How the GUI orders a facet's value list.
enum class FacetOrder {
  kCountDescending,  ///< most populated first (the default FS display)
  kValueAscending,   ///< numeric when possible, else lexical
};

/// Sorts `facet->values` in place.
void SortFacetValues(const rdf::Graph& graph, FacetOrder order,
                     PropertyFacet* facet);

/// Truncates the value list to the `k` entries that survive `order`,
/// returning how many were cut (the GUI shows "... n more" — or hands the
/// full list to the spiral layout when it is too long).
size_t TruncateFacetValues(const rdf::Graph& graph, FacetOrder order,
                           size_t k, PropertyFacet* facet);

}  // namespace rdfa::fs

#endif  // RDFA_FS_FACETS_H_
