#ifndef RDFA_FS_HIERARCHY_H_
#define RDFA_FS_HIERARCHY_H_

#include <set>
#include <vector>

#include "rdf/rdfs.h"

namespace rdfa::fs {

/// A node of a facet hierarchy display tree: a class (or property) with its
/// children per the reflexive-and-transitive reduction of the subclass
/// (subproperty) order restricted to the applicable markers (§5.3.2).
struct HierarchyNode {
  rdf::TermId term = rdf::kNoTermId;
  std::vector<HierarchyNode> children;
};

/// Builds the class hierarchy forest over `applicable` classes: roots are
/// classes with no applicable strict superclass; each node's children are
/// the applicable classes whose *nearest* applicable strict ancestor is that
/// node (i.e. the transitive reduction of <=cl restricted to `applicable`).
std::vector<HierarchyNode> BuildClassForest(
    const rdf::SchemaView& schema, const std::set<rdf::TermId>& applicable);

/// Same construction over the subproperty order.
std::vector<HierarchyNode> BuildPropertyForest(
    const rdf::SchemaView& schema, const std::set<rdf::TermId>& applicable);

}  // namespace rdfa::fs

#endif  // RDFA_FS_HIERARCHY_H_
