#include "fs/replay.h"

#include <cstdlib>

#include "common/string_util.h"
#include "rdf/ntriples.h"

namespace rdfa::fs {

Status SessionRecorder::ClickClass(const std::string& class_iri) {
  RDFA_RETURN_NOT_OK(session_->ClickClass(class_iri));
  Action a;
  a.kind = Action::Kind::kClickClass;
  a.class_iri = class_iri;
  script_.push_back(std::move(a));
  return Status::OK();
}

Status SessionRecorder::ClickValue(const std::vector<PropRef>& path,
                                   const rdf::Term& value) {
  RDFA_RETURN_NOT_OK(session_->ClickValue(path, value));
  Action a;
  a.kind = Action::Kind::kClickValue;
  a.path = path;
  a.value = value;
  script_.push_back(std::move(a));
  return Status::OK();
}

Status SessionRecorder::ClickRange(const std::vector<PropRef>& path,
                                   std::optional<double> min,
                                   std::optional<double> max) {
  RDFA_RETURN_NOT_OK(session_->ClickRange(path, min, max));
  Action a;
  a.kind = Action::Kind::kClickRange;
  a.path = path;
  a.min = min;
  a.max = max;
  script_.push_back(std::move(a));
  return Status::OK();
}

Status SessionRecorder::Back() {
  RDFA_RETURN_NOT_OK(session_->Back());
  Action a;
  a.kind = Action::Kind::kBack;
  script_.push_back(std::move(a));
  return Status::OK();
}

namespace {

std::string PathToString(const std::vector<PropRef>& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ";";
    if (path[i].inverse) out += "^";
    out += path[i].iri;
  }
  return out;
}

Result<std::vector<PropRef>> PathFromString(const std::string& text) {
  std::vector<PropRef> out;
  for (const std::string& part : SplitString(text, ';')) {
    if (part.empty()) {
      return Status::ParseError("empty path segment in script");
    }
    if (part[0] == '^') {
      out.push_back({part.substr(1), true});
    } else {
      out.push_back({part, false});
    }
  }
  return out;
}

}  // namespace

std::string SessionRecorder::Serialize() const {
  std::string out;
  for (const Action& a : script_) {
    switch (a.kind) {
      case Action::Kind::kClickClass:
        out += "class " + a.class_iri + "\n";
        break;
      case Action::Kind::kClickValue:
        out += "value " + PathToString(a.path) + " " + a.value.ToNTriples() +
               "\n";
        break;
      case Action::Kind::kClickRange:
        out += "range " + PathToString(a.path) + " " +
               (a.min.has_value() ? FormatNumber(*a.min) : "-") + " " +
               (a.max.has_value() ? FormatNumber(*a.max) : "-") + "\n";
        break;
      case Action::Kind::kBack:
        out += "back\n";
        break;
    }
  }
  return out;
}

Result<std::vector<Action>> ParseScript(std::string_view text) {
  std::vector<Action> out;
  int line_no = 0;
  for (const std::string& raw : SplitString(text, '\n')) {
    ++line_no;
    std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    auto err = [&](const std::string& msg) {
      return Status::ParseError("script line " + std::to_string(line_no) +
                                ": " + msg);
    };
    size_t sp = line.find(' ');
    std::string cmd(line.substr(0, sp));
    std::string rest(sp == std::string_view::npos
                         ? std::string_view()
                         : TrimWhitespace(line.substr(sp + 1)));
    Action a;
    if (cmd == "back") {
      a.kind = Action::Kind::kBack;
    } else if (cmd == "class") {
      if (rest.empty()) return err("class needs an IRI");
      a.kind = Action::Kind::kClickClass;
      a.class_iri = rest;
    } else if (cmd == "value") {
      size_t sp2 = rest.find(' ');
      if (sp2 == std::string::npos) return err("value needs a path and term");
      a.kind = Action::Kind::kClickValue;
      RDFA_ASSIGN_OR_RETURN(a.path, PathFromString(rest.substr(0, sp2)));
      RDFA_ASSIGN_OR_RETURN(
          a.value, rdf::ParseNTriplesTerm(rest.substr(sp2 + 1)));
    } else if (cmd == "range") {
      std::vector<std::string> parts;
      for (const std::string& p : SplitString(rest, ' ')) {
        if (!p.empty()) parts.push_back(p);
      }
      if (parts.size() != 3) return err("range needs path min max");
      a.kind = Action::Kind::kClickRange;
      RDFA_ASSIGN_OR_RETURN(a.path, PathFromString(parts[0]));
      if (parts[1] != "-") a.min = std::strtod(parts[1].c_str(), nullptr);
      if (parts[2] != "-") a.max = std::strtod(parts[2].c_str(), nullptr);
    } else {
      return err("unknown action '" + cmd + "'");
    }
    out.push_back(std::move(a));
  }
  return out;
}

Status ReplayScript(const std::vector<Action>& script, Session* session) {
  for (const Action& a : script) {
    switch (a.kind) {
      case Action::Kind::kClickClass:
        RDFA_RETURN_NOT_OK(session->ClickClass(a.class_iri));
        break;
      case Action::Kind::kClickValue:
        RDFA_RETURN_NOT_OK(session->ClickValue(a.path, a.value));
        break;
      case Action::Kind::kClickRange:
        RDFA_RETURN_NOT_OK(session->ClickRange(a.path, a.min, a.max));
        break;
      case Action::Kind::kBack:
        RDFA_RETURN_NOT_OK(session->Back());
        break;
    }
  }
  return Status::OK();
}

}  // namespace rdfa::fs
