#ifndef RDFA_FS_SESSION_H_
#define RDFA_FS_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fs/facets.h"
#include "fs/state.h"
#include "rdf/rdfs.h"

namespace rdfa::fs {

/// How a session computes the extension after each transition — the two
/// implementation strategies the dissertation contrasts (Table 5.1 native
/// notation vs Table 5.2 "SPARQL-only evaluation approach", Fig 8.3):
enum class EvalMode {
  kNative,      ///< set operations on the in-memory extension
  kSparqlOnly,  ///< re-evaluate the state's intention as a SPARQL query
};

/// An interactive faceted-search session over one RDF graph: a current
/// state, its transition markers, the click actions that move between
/// states, and a history for Back(). This is the core FS-over-RDF model
/// (§5.2.1, [114]) that the analytics layer extends.
class Session {
 public:
  /// The graph must outlive the session and is taken mutably because
  /// SPARQL-only evaluation may intern computed literals.
  explicit Session(rdf::Graph* graph, EvalMode mode = EvalMode::kNative);

  const State& current() const { return history_.back(); }
  const rdf::Graph& graph() const { return *graph_; }
  const rdf::SchemaView& schema() const { return schema_; }
  size_t depth() const { return history_.size(); }

  /// Starting point (i): the artificial initial state s0 whose extension is
  /// every individual (§5.3.2).
  void Start();
  /// Starting point (ii): explore a result set from an external access
  /// method (e.g. keyword search).
  void StartFromResults(const Extension& results);

  /// Click a class-based transition marker: new state with extension
  /// Restrict(E, c).
  Status ClickClass(const std::string& class_iri);

  /// Click a value at the end of a property path (length 1 = plain
  /// property-based transition; longer = path expansion, Eq. 5.1).
  Status ClickValue(const std::vector<PropRef>& path, const rdf::Term& value);

  /// Apply a numeric range filter at the end of a path (the range button of
  /// Example 3, §5.1).
  Status ClickRange(const std::vector<PropRef>& path,
                    std::optional<double> min, std::optional<double> max);

  /// Pops the current state; error at the initial state.
  Status Back();

  // --- transition markers of the current state ---
  /// Both facet computations memoize their result per state (the GUI
  /// re-renders facets many times between clicks; the dissertation's system
  /// (3) iteration emphasizes such efficiency improvements). Transitions
  /// and Back() invalidate the memo.
  std::vector<ClassFacet> ClassFacets() const;
  std::vector<PropertyFacet> PropertyFacets(bool include_inverse = false) const;
  PropertyFacet ExpandPath(const std::vector<PropRef>& path) const;

  /// Renders the two-frame GUI of Fig 5.1/5.4 as text (facets with counts on
  /// the left, focus objects on the right).
  std::string RenderText(size_t max_objects = 10) const;

 private:
  Status Push(State next);
  void InvalidateFacetMemos() const;
  /// Recomputes `state->ext` from its intention via SPARQL (kSparqlOnly).
  Status EvalIntentionSparql(State* state);

  rdf::Graph* graph_;
  EvalMode mode_;
  rdf::Vocab vocab_;
  rdf::SchemaView schema_;
  FacetComputer facets_;
  std::vector<State> history_;
  // Per-current-state memos (invalidated on every state change).
  mutable std::optional<std::vector<ClassFacet>> class_facet_memo_;
  mutable std::optional<std::vector<PropertyFacet>> property_facet_memo_;
};

}  // namespace rdfa::fs

#endif  // RDFA_FS_SESSION_H_
