#ifndef RDFA_FS_REPLAY_H_
#define RDFA_FS_REPLAY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fs/session.h"

namespace rdfa::fs {

/// One recorded interaction-model action. Sessions are *iterative* (the
/// dissertation stresses "repeated and refining steps"); recording lets a
/// user save an exploration and replay it later — also against a refreshed
/// copy of the KG.
struct Action {
  enum class Kind { kClickClass, kClickValue, kClickRange, kBack };
  Kind kind = Kind::kBack;
  std::string class_iri;          // kClickClass
  std::vector<PropRef> path;      // kClickValue / kClickRange
  rdf::Term value;                // kClickValue
  std::optional<double> min;      // kClickRange
  std::optional<double> max;
};

/// Records every action it forwards to the wrapped session.
class SessionRecorder {
 public:
  /// `session` must outlive the recorder.
  explicit SessionRecorder(Session* session) : session_(session) {}

  Status ClickClass(const std::string& class_iri);
  Status ClickValue(const std::vector<PropRef>& path, const rdf::Term& value);
  Status ClickRange(const std::vector<PropRef>& path,
                    std::optional<double> min, std::optional<double> max);
  Status Back();

  const std::vector<Action>& script() const { return script_; }

  /// Line-based textual form:
  ///   class <iri>
  ///   value p1;^p2;... <term in N-Triples syntax>
  ///   range p1;...     <min|-> <max|->
  ///   back
  std::string Serialize() const;

 private:
  Session* session_;
  std::vector<Action> script_;
};

/// Parses the Serialize() format back into actions.
Result<std::vector<Action>> ParseScript(std::string_view text);

/// Applies `script` to `session` in order; stops at the first failing
/// action and returns its status (earlier actions remain applied).
Status ReplayScript(const std::vector<Action>& script, Session* session);

}  // namespace rdfa::fs

#endif  // RDFA_FS_REPLAY_H_
