#ifndef RDFA_FS_NOTATIONS_H_
#define RDFA_FS_NOTATIONS_H_

#include <string>

#include "common/status.h"
#include "fs/state.h"

namespace rdfa::fs {

/// Table 5.1 of the dissertation: "SPARQL-expression of the model's
/// notations, assuming that the extension of the current state is stored in
/// temporary class temp". These generators emit exactly those queries; the
/// helpers below materialize/clear the temp class so the queries can be
/// evaluated, and the tests verify each against the native set operation.

/// Default temp-class IRI.
inline constexpr char kTempClass[] = "urn:rdfa:temp#Ext";

/// inst(c): SELECT ?x WHERE { ?x rdf:type <c> }.
std::string InstSparql(const std::string& class_iri);

/// Joins(E, p): SELECT DISTINCT ?v WHERE { ?e rdf:type <temp> . ?e <p> ?v }.
/// (Inverse p flips the last pattern.)
std::string JoinsSparql(const PropRef& p,
                        const std::string& temp_class = kTempClass);

/// Restrict(E, p : v): members of temp with value v for p.
std::string RestrictValueSparql(const PropRef& p, const rdf::Term& value,
                                const std::string& temp_class = kTempClass);

/// Restrict(E, c): members of temp that are instances of c.
std::string RestrictClassSparql(const std::string& class_iri,
                                const std::string& temp_class = kTempClass);

/// Count of |Restrict(E, p : v)| — the facet count the GUI shows.
std::string RestrictCountSparql(const PropRef& p, const rdf::Term& value,
                                const std::string& temp_class = kTempClass);

/// Stores `ext` into the graph as `(e, rdf:type, <temp_class>)` triples.
/// Returns how many were added.
size_t MaterializeExtension(rdf::Graph* graph, const Extension& ext,
                            const std::string& temp_class = kTempClass);

/// Removes every temp-class triple (the cleanup step Table 5.1 assumes).
size_t ClearExtension(rdf::Graph* graph,
                      const std::string& temp_class = kTempClass);

/// Evaluates one of the generated queries and returns its first column as
/// an extension (resources interned in `graph`).
Result<Extension> EvalNotation(rdf::Graph* graph, const std::string& sparql);

}  // namespace rdfa::fs

#endif  // RDFA_FS_NOTATIONS_H_
