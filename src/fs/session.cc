#include "fs/session.h"

#include <algorithm>

#include "rdf/namespaces.h"
#include "sparql/executor.h"
#include "sparql/parser.h"

namespace rdfa::fs {

using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

Session::Session(rdf::Graph* graph, EvalMode mode)
    : graph_(graph),
      mode_(mode),
      vocab_(graph),
      schema_(*graph, vocab_),
      facets_(*graph, schema_, vocab_) {
  Start();
}

void Session::Start() {
  history_.clear();
  State s0;
  for (const rdf::TripleId& t : graph_->triples()) {
    if (t.p == vocab_.type || t.p == vocab_.sub_class_of ||
        t.p == vocab_.sub_property_of || t.p == vocab_.domain ||
        t.p == vocab_.range) {
      // Schema triples: keep their subjects out of s0 unless they also
      // carry data. (Data subjects re-enter through their data triples.)
      if (t.p != vocab_.type) continue;
    }
    s0.ext.insert(t.s);
  }
  history_.push_back(std::move(s0));
  InvalidateFacetMemos();
}

void Session::StartFromResults(const Extension& results) {
  history_.clear();
  State s0;
  s0.ext = results;
  history_.push_back(std::move(s0));
  InvalidateFacetMemos();
}

Status Session::Push(State next) {
  if (mode_ == EvalMode::kSparqlOnly) {
    RDFA_RETURN_NOT_OK(EvalIntentionSparql(&next));
  }
  if (next.ext.empty()) {
    return Status::InvalidArgument(
        "transition would produce an empty result set (not offered by the "
        "UI)");
  }
  history_.push_back(std::move(next));
  InvalidateFacetMemos();
  return Status::OK();
}

void Session::InvalidateFacetMemos() const {
  class_facet_memo_.reset();
  property_facet_memo_.reset();
}

Status Session::EvalIntentionSparql(State* state) {
  sparql::Executor exec(graph_);
  RDFA_ASSIGN_OR_RETURN(sparql::ParsedQuery q,
                        sparql::ParseQuery(state->intent.ToSparql()));
  RDFA_ASSIGN_OR_RETURN(sparql::ResultTable table, exec.Execute(q));
  Extension ext;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TermId id = graph_->terms().Find(table.at(r, 0));
    if (id != kNoTermId) ext.insert(id);
  }
  state->ext = std::move(ext);
  return Status::OK();
}

Status Session::ClickClass(const std::string& class_iri) {
  TermId cls = graph_->terms().FindIri(class_iri);
  if (cls == kNoTermId) {
    return Status::NotFound("unknown class <" + class_iri + ">");
  }
  State next;
  next.intent = current().intent;
  next.intent.root_class = class_iri;
  next.ext = RestrictClass(*graph_, current().ext, cls);
  return Push(std::move(next));
}

Status Session::ClickValue(const std::vector<PropRef>& path,
                           const Term& value) {
  if (path.empty()) return Status::InvalidArgument("empty property path");
  TermId v = graph_->terms().Find(value);
  if (v == kNoTermId) {
    return Status::NotFound("value " + value.ToNTriples() +
                            " does not occur in the graph");
  }
  State next;
  next.intent = current().intent;
  Condition cond;
  cond.kind = Condition::Kind::kValue;
  cond.path = path;
  cond.value = value;
  next.intent.conditions.push_back(std::move(cond));
  next.ext = facets_.RestrictByPath(current().ext, path, v);
  return Push(std::move(next));
}

Status Session::ClickRange(const std::vector<PropRef>& path,
                           std::optional<double> min,
                           std::optional<double> max) {
  if (path.empty()) return Status::InvalidArgument("empty property path");
  if (!min.has_value() && !max.has_value()) {
    return Status::InvalidArgument("a range filter needs a bound");
  }
  State next;
  next.intent = current().intent;
  Condition cond;
  cond.kind = Condition::Kind::kRange;
  cond.path = path;
  cond.min = min;
  cond.max = max;
  next.intent.conditions.push_back(std::move(cond));
  next.ext = facets_.RestrictByRange(current().ext, path, min, max);
  return Push(std::move(next));
}

Status Session::Back() {
  if (history_.size() <= 1) {
    return Status::InvalidArgument("already at the initial state");
  }
  history_.pop_back();
  InvalidateFacetMemos();
  return Status::OK();
}

std::vector<ClassFacet> Session::ClassFacets() const {
  if (!class_facet_memo_.has_value()) {
    class_facet_memo_ = facets_.ClassFacets(current().ext);
  }
  return *class_facet_memo_;
}

std::vector<PropertyFacet> Session::PropertyFacets(
    bool include_inverse) const {
  if (include_inverse) {
    // The inverse variant is rarer; compute it fresh.
    return facets_.PropertyFacets(current().ext, true);
  }
  if (!property_facet_memo_.has_value()) {
    property_facet_memo_ = facets_.PropertyFacets(current().ext, false);
  }
  return *property_facet_memo_;
}

PropertyFacet Session::ExpandPath(const std::vector<PropRef>& path) const {
  return facets_.PathFacet(current().ext, path);
}

namespace {
std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/");
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}

void RenderClassFacet(const ClassFacet& f, const rdf::TermTable& terms,
                      int indent, std::string* out) {
  out->append(indent, ' ');
  *out += LocalName(terms.Get(f.cls).lexical()) + " (" +
          std::to_string(f.count) + ")\n";
  for (const ClassFacet& c : f.children) {
    RenderClassFacet(c, terms, indent + 2, out);
  }
}
}  // namespace

std::string Session::RenderText(size_t max_objects) const {
  const rdf::TermTable& terms = graph_->terms();
  std::string out = "== " + current().intent.ToString() + " (" +
                    std::to_string(current().ext.size()) + " objects) ==\n";
  out += "-- classes --\n";
  for (const ClassFacet& f : ClassFacets()) {
    RenderClassFacet(f, terms, 0, &out);
  }
  out += "-- properties --\n";
  for (const PropertyFacet& f : PropertyFacets()) {
    out += "by " + std::string(f.prop.inverse ? "^" : "") +
           LocalName(f.prop.iri) + " (" + std::to_string(f.values.size()) +
           ")\n";
    size_t shown = 0;
    for (const ValueCount& vc : f.values) {
      if (shown++ >= max_objects) {
        out += "  ...\n";
        break;
      }
      const Term& v = terms.Get(vc.value);
      out += "  " + (v.is_literal() ? v.lexical() : LocalName(v.lexical())) +
             " (" + std::to_string(vc.count) + ")\n";
    }
  }
  out += "-- objects --\n";
  size_t shown = 0;
  for (TermId e : current().ext) {
    if (shown++ >= max_objects) {
      out += "...\n";
      break;
    }
    const Term& t = terms.Get(e);
    out += (t.is_literal() ? t.lexical() : LocalName(t.lexical())) + "\n";
  }
  return out;
}

}  // namespace rdfa::fs
