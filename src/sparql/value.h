#ifndef RDFA_SPARQL_VALUE_H_
#define RDFA_SPARQL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfa::sparql {

/// A runtime value during SPARQL expression evaluation: unbound, a decoded
/// scalar (boolean / integer / double / string), or a full RDF term. BGP
/// matching works purely on interned TermIds; Values only appear inside
/// FILTER/BIND/aggregate/projection evaluation.
class Value {
 public:
  enum class Kind { kUnbound, kBool, kInt, kDouble, kString, kTerm };

  Value() : kind_(Kind::kUnbound) {}

  static Value Unbound() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  static Value String(std::string s);
  static Value FromTerm(const rdf::Term& term);

  Kind kind() const { return kind_; }
  bool is_unbound() const { return kind_ == Kind::kUnbound; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const rdf::Term& term() const { return term_; }

  /// Materializes the value as an RDF term (typed literals for scalars).
  /// Precondition: not unbound.
  rdf::Term ToTerm() const;

  /// SPARQL effective boolean value; nullopt on type error / unbound.
  std::optional<bool> EffectiveBool() const;

  /// Numeric interpretation if the value is a number or a numeric literal.
  std::optional<double> AsNumeric() const;
  /// String interpretation (lexical form for terms).
  std::string AsString() const;

  /// Three-way comparison per SPARQL operator semantics: numerics by value,
  /// strings/plain literals lexically, dateTime literals lexically (ISO 8601
  /// order), booleans false<true. Returns nullopt when the operands are not
  /// comparable (type error -> FILTER evaluates to error/false).
  static std::optional<int> Compare(const Value& a, const Value& b);

  /// RDF term equality ('=' in SPARQL): numeric values compare by value,
  /// otherwise terms must be identical.
  static std::optional<bool> Equals(const Value& a, const Value& b);

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  rdf::Term term_;
};

/// True when `term` is a literal typed xsd:dateTime or xsd:date.
bool IsDateTimeLiteral(const rdf::Term& term);

/// Extracts a date component (1-based month/day; full year) from an ISO
/// 8601 lexical form; nullopt on malformed input. `component`: 0=year,
/// 1=month, 2=day, 3=hours, 4=minutes, 5=seconds.
std::optional<int> DateTimeComponent(const std::string& lexical,
                                     int component);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_VALUE_H_
