#ifndef RDFA_SPARQL_RESULT_TABLE_H_
#define RDFA_SPARQL_RESULT_TABLE_H_

#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfa::sparql {

/// A materialized SELECT result: named columns over rows of RDF terms.
/// Unbound cells hold a default-constructed Term with empty lexical form and
/// are reported by `IsUnbound`.
class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Index of column `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  void AddRow(std::vector<rdf::Term> row) { rows_.push_back(std::move(row)); }
  const std::vector<rdf::Term>& row(size_t r) const { return rows_[r]; }
  const rdf::Term& at(size_t r, size_t c) const { return rows_[r][c]; }

  /// An unbound cell: an IRI term with empty lexical form.
  static bool IsUnbound(const rdf::Term& t) {
    return t.is_iri() && t.lexical().empty();
  }

  /// Tab-separated rendering with a header line (terms in N-Triples form).
  std::string ToTsv() const;

  /// Rough heap footprint of the table (cell payload strings plus container
  /// overhead) — the byte accounting the answer cache charges an entry with.
  size_t ApproxBytes() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<rdf::Term>> rows_;
};

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_RESULT_TABLE_H_
