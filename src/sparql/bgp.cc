#include "sparql/bgp.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <unordered_map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sparql/planner.h"

namespace rdfa::sparql {

using rdf::kNoTermId;
using rdf::TermId;

CompiledPattern CompileTriple(const TriplePattern& tp, VarTable* vars,
                              const rdf::Graph& graph) {
  CompiledPattern cp;
  auto resolve = [&](const NodePattern& n, int* var, TermId* id) {
    if (n.is_var) {
      *var = vars->IdOf(n.var);
    } else {
      *id = graph.terms().Find(n.term);
      if (*id == kNoTermId) cp.impossible = true;
    }
  };
  resolve(tp.s, &cp.s_var, &cp.s_id);
  resolve(tp.p, &cp.p_var, &cp.p_id);
  resolve(tp.o, &cp.o_var, &cp.o_id);
  return cp;
}

namespace {

// Rows below this threshold are not worth splitting into morsels.
constexpr size_t kMinMorselRows = 64;
// Morsels per thread: enough slack for load balancing without drowning the
// join in scheduling overhead.
constexpr size_t kMorselsPerThread = 4;
// Cancellation poll interval inside a scan, in enumerated index rows: small
// enough that a 1ms deadline trips promptly, large enough that the atomic
// loads vanish in the scan cost.
constexpr size_t kCheckEveryRows = 512;

// Minimum input-row count before the adaptive strategy considers a hash
// build: below this a build cannot amortize over enough probes.
constexpr size_t kHashMinRows = 64;
// The hash build must be this many times cheaper than the projected NLJ
// scan work before it is chosen — conservative, so the hash path strictly
// reduces index rows enumerated.
constexpr double kHashBuildFactor = 2.0;

// Legacy selectivity score: raw index-range width, with a flat /16 discount
// per bound variable (their values are row-dependent, so the old model had
// no better number). Kept as the ablation baseline.
double LegacyScore(const rdf::Graph& graph, const CompiledPattern& p,
                   const std::set<int>& bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o)) + 1.0;
  int bound_vars = 0;
  if (p.s_var >= 0 && bound.count(p.s_var)) ++bound_vars;
  if (p.p_var >= 0 && bound.count(p.p_var)) ++bound_vars;
  if (p.o_var >= 0 && bound.count(p.o_var)) ++bound_vars;
  for (int i = 0; i < bound_vars; ++i) est /= 16.0;
  return est;
}

}  // namespace

// Calibrated per-row cardinality estimate: the constant-narrowed match
// count, divided by the distinct count of each bound-variable lane within
// that population (predicate-local when the predicate is constant — i.e.
// the bound lane divides by the predicate's distinct subjects/objects, so
// the result is the predicate's average fanout). Uniformity assumption, but
// per-predicate rather than one flat constant.
double CalibratedRowEstimate(const rdf::Graph& graph, const CompiledPattern& p,
                             bool s_bound, bool p_bound, bool o_bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o));
  const rdf::GraphStats& gs = graph.Stats();
  const rdf::PredicateStats* ps =
      pp != kNoTermId ? gs.ForPredicate(pp) : nullptr;
  auto narrow = [&est](uint64_t distinct) {
    if (distinct > 1) est /= static_cast<double>(distinct);
  };
  if (s_bound) narrow(ps != nullptr ? ps->distinct_subjects
                                    : gs.distinct_subjects);
  if (p_bound) narrow(gs.distinct_predicates);
  if (o_bound) narrow(ps != nullptr ? ps->distinct_objects
                                    : gs.distinct_objects);
  return est;
}

namespace {

double Score(const rdf::Graph& graph, const CompiledPattern& p,
             const std::set<int>& bound, bool calibrated) {
  if (!calibrated) return LegacyScore(graph, p, bound);
  return CalibratedRowEstimate(
      graph, p, p.s_var >= 0 && bound.count(p.s_var) > 0,
      p.p_var >= 0 && bound.count(p.p_var) > 0,
      p.o_var >= 0 && bound.count(p.o_var) > 0);
}

void MarkBound(const CompiledPattern& p, std::set<int>* bound) {
  if (p.s_var >= 0) bound->insert(p.s_var);
  if (p.p_var >= 0) bound->insert(p.p_var);
  if (p.o_var >= 0) bound->insert(p.o_var);
}

// Greedy selectivity ordering: repeatedly pick the cheapest unused pattern
// given the variables bound so far. Returns indexes into `patterns` in
// execution order. Shared by JoinBgp and the plan-only EXPLAIN path.
std::vector<int> GreedyOrder(const rdf::Graph& graph,
                             const std::vector<CompiledPattern>& patterns,
                             std::set<int> bound, bool calibrated) {
  std::vector<int> order;
  order.reserve(patterns.size());
  std::vector<bool> used(patterns.size(), false);
  for (size_t step = 0; step < patterns.size(); ++step) {
    double best = -1;
    size_t best_i = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      double s = Score(graph, patterns[i], bound, calibrated);
      if (best < 0 || s < best) {
        best = s;
        best_i = i;
      }
    }
    used[best_i] = true;
    order.push_back(static_cast<int>(best_i));
    MarkBound(patterns[best_i], &bound);
  }
  return order;
}

// Extends `row` with triple `t` under pattern `p` (re-checking
// same-variable positions, e.g. ?x p ?x); appends to `*out` on success.
// Returns false only on a conflict.
inline void ExtendRow(const CompiledPattern& p, const Binding& row,
                      const rdf::TripleId& t, std::vector<Binding>* out) {
  Binding extended = row;
  bool ok = true;
  auto bind = [&](int var, TermId value) {
    if (var < 0) return;
    if (extended[var] != kNoTermId && extended[var] != value) {
      ok = false;
      return;
    }
    extended[var] = value;
  };
  bind(p.s_var, t.s);
  if (ok) bind(p.p_var, t.p);
  if (ok) bind(p.o_var, t.o);
  if (ok) out->push_back(std::move(extended));
}

// Extends every row in [begin, end) of `rows` through `p`, appending the
// results (in row order) to `*out`. Returns the number of index rows
// enumerated. When `ctx` is set, polls it every kCheckEveryRows enumerated
// rows and abandons the remaining range once it trips (the caller turns the
// trip into a typed Status; the partial output is discarded).
size_t ExtendRange(const rdf::Graph& graph, const CompiledPattern& p,
                   const std::vector<Binding>& rows, size_t begin, size_t end,
                   const QueryContext* ctx, std::vector<Binding>* out) {
  size_t scanned = 0;
  bool stopped = false;
  for (size_t r = begin; r < end && !stopped; ++r) {
    const Binding& row = rows[r];
    TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
    TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
    TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
    graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
      if (stopped) return;  // drain the scan without extending
      ++scanned;
      if (ctx != nullptr && scanned % kCheckEveryRows == 0 &&
          ctx->ShouldStop()) {
        stopped = true;
        return;
      }
      ExtendRow(p, row, t, out);
    });
  }
  return scanned;
}

// ---- order-preserving hash join ------------------------------------------
//
// Build once: scan the pattern's index range (constants narrowed) and
// bucket every triple by its join-key lane value(s). Probe many: each input
// row looks its key up and extends through the bucket entries in stored
// order. Byte-identity with the per-row NLJ follows from two facts: (a) the
// probe perm — ChoosePerm over constants plus key lanes — puts all of them
// in a complete prefix, so a row's NLJ range holds exactly its matches in
// that perm's sort order; (b) the build scans a permutation whose free-lane
// order agrees with the probe perm (the probe perm itself when two or more
// lanes are free, any perm — so the cheapest constant-prefixed one — when
// at most one lane is free, since a single free lane sorts identically in
// every permutation). Restricting one sorted scan to a bucket preserves
// relative order, so bucket order == per-row NLJ range order.

// Per-pattern hash strategy decision, taken against the boundness of the
// first input row (rows that deviate fall back to a per-row index scan).
struct HashPlan {
  bool use_hash = false;
  bool key_s = false, key_p = false, key_o = false;  // bound-variable lanes
  rdf::Graph::Perm build_perm = rdf::Graph::kPermSPO;
  size_t build_width = 0;  // index rows the build scan will enumerate
};

HashPlan PlanHash(const rdf::Graph& graph, const CompiledPattern& p,
                  const std::vector<Binding>& rows, JoinStrategy strategy) {
  HashPlan plan;
  if (strategy == JoinStrategy::kNestedLoop || rows.empty()) return plan;
  const Binding& first = rows.front();
  plan.key_s = p.s_var >= 0 && first[p.s_var] != kNoTermId;
  plan.key_p = p.p_var >= 0 && first[p.p_var] != kNoTermId;
  plan.key_o = p.o_var >= 0 && first[p.o_var] != kNoTermId;
  // No bound join variable -> no hash key; nothing to probe with.
  if (!plan.key_s && !plan.key_p && !plan.key_o) return plan;

  const bool s_const = p.s_var < 0, p_const = p.p_var < 0,
             o_const = p.o_var < 0;
  const int free_lanes = (p.s_var >= 0 && !plan.key_s ? 1 : 0) +
                         (p.p_var >= 0 && !plan.key_p ? 1 : 0) +
                         (p.o_var >= 0 && !plan.key_o ? 1 : 0);
  // See the order argument above: with >= 2 free lanes the build must scan
  // the probe perm itself; with <= 1 it may scan the constant-prefixed perm.
  if (free_lanes >= 2) {
    plan.build_perm = rdf::Graph::ChoosePerm(
        s_const || plan.key_s, p_const || plan.key_p, o_const || plan.key_o);
  } else {
    plan.build_perm = rdf::Graph::ChoosePerm(s_const, p_const, o_const);
  }
  plan.build_width = graph.EstimateInPerm(
      plan.build_perm, s_const ? p.s_id : kNoTermId,
      p_const ? p.p_id : kNoTermId, o_const ? p.o_id : kNoTermId);

  if (strategy == JoinStrategy::kHash) {
    plan.use_hash = true;
    return plan;
  }
  // Adaptive: hash only when the one-off build is decisively cheaper than
  // the per-row scans it replaces.
  if (rows.size() < kHashMinRows) return plan;
  const double per_row = CalibratedRowEstimate(graph, p, plan.key_s,
                                               plan.key_p, plan.key_o);
  plan.use_hash = static_cast<double>(plan.build_width) * kHashBuildFactor <=
                  static_cast<double>(rows.size()) * per_row;
  return plan;
}

// Join key: the key-lane values in (s, p, o) order, kNoTermId elsewhere.
struct HashKey {
  TermId k[3];
  friend bool operator==(const HashKey& x, const HashKey& y) {
    return x.k[0] == y.k[0] && x.k[1] == y.k[1] && x.k[2] == y.k[2];
  }
};

struct HashKeyHash {
  size_t operator()(const HashKey& key) const {
    uint64_t h = static_cast<uint64_t>(key.k[0]) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(key.k[1]) * 0xC2B2AE3D27D4EB4Full + (h << 6);
    h ^= static_cast<uint64_t>(key.k[2]) * 0x165667B19E3779F9ull + (h >> 3);
    return static_cast<size_t>(h);
  }
};

using HashTable =
    std::unordered_map<HashKey, std::vector<rdf::TripleId>, HashKeyHash>;

// Builds the bucket table by one scan of `plan.build_perm`. Bucket vectors
// keep scan order (the order-preservation invariant). The context check is
// the *counted* kind — the build is a real stage that a deadline must be
// able to trip deterministically.
Status BuildHashTable(const rdf::Graph& graph, const CompiledPattern& p,
                      const HashPlan& plan, const QueryContext* ctx,
                      HashTable* table, size_t* scanned) {
  Status st = Status::OK();
  graph.ForEachInPerm(
      plan.build_perm, p.s_var < 0 ? p.s_id : kNoTermId,
      p.p_var < 0 ? p.p_id : kNoTermId, p.o_var < 0 ? p.o_id : kNoTermId,
      [&](const rdf::TripleId& t) {
        if (!st.ok()) return;  // drain the scan without inserting
        ++*scanned;
        if (ctx != nullptr && *scanned % kCheckEveryRows == 0) {
          Status check = ctx->Check("hash-build");
          if (!check.ok()) {
            st = check;
            return;
          }
        }
        HashKey key{{plan.key_s ? t.s : kNoTermId,
                     plan.key_p ? t.p : kNoTermId,
                     plan.key_o ? t.o : kNoTermId}};
        (*table)[key].push_back(t);
      });
  return st;
}

// Probes rows [begin, end) against `table`, appending extensions in row
// order. Rows whose boundness deviates from the planned key lanes (possible
// after OPTIONAL / UNION upstream) fall back to a per-row index scan, which
// enumerates that row's matches in the identical order. Returns the number
// of index rows enumerated by fallbacks; bucket entries probed are counted
// into *probe_hits.
size_t ProbeHashRange(const rdf::Graph& graph, const CompiledPattern& p,
                      const HashPlan& plan, const HashTable& table,
                      const std::vector<Binding>& rows, size_t begin,
                      size_t end, const QueryContext* ctx,
                      std::vector<Binding>* out, size_t* probe_hits) {
  size_t fallback_scanned = 0;
  bool stopped = false;
  for (size_t r = begin; r < end && !stopped; ++r) {
    const Binding& row = rows[r];
    const bool s_bound = p.s_var >= 0 && row[p.s_var] != kNoTermId;
    const bool p_bound = p.p_var >= 0 && row[p.p_var] != kNoTermId;
    const bool o_bound = p.o_var >= 0 && row[p.o_var] != kNoTermId;
    if (s_bound == plan.key_s && p_bound == plan.key_p &&
        o_bound == plan.key_o) {
      HashKey key{{plan.key_s ? row[p.s_var] : kNoTermId,
                   plan.key_p ? row[p.p_var] : kNoTermId,
                   plan.key_o ? row[p.o_var] : kNoTermId}};
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const rdf::TripleId& t : it->second) {
        ++*probe_hits;
        if (ctx != nullptr && *probe_hits % kCheckEveryRows == 0 &&
            ctx->ShouldStop()) {
          stopped = true;
          break;
        }
        ExtendRow(p, row, t, out);
      }
    } else {
      TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
      TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
      TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
      graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
        if (stopped) return;
        ++fallback_scanned;
        if (ctx != nullptr && fallback_scanned % kCheckEveryRows == 0 &&
            ctx->ShouldStop()) {
          stopped = true;
          return;
        }
        ExtendRow(p, row, t, out);
      });
    }
  }
  return fallback_scanned;
}

// Executes one pattern step through the v1 hash/NLJ machinery — shared by
// the classic pattern loop and planner-v2 non-merge (or demoted) steps.
// Replaces *rows with the extended set; empty output short-circuits in the
// caller.
Status ExecuteAdaptiveStep(const rdf::Graph& graph, const CompiledPattern& p,
                           int source_pattern, const JoinOptions& opts,
                           int threads, Tracer* tracer,
                           std::vector<Binding>* rows) {
  // One typed check per join stage; scans poll the cheap flag inline.
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  TraceSpan join_span(tracer, "bgp-join");
  join_span.Arg("pattern", static_cast<int64_t>(source_pattern));
  join_span.Arg("input_rows", static_cast<uint64_t>(rows->size()));
  std::vector<Binding> next;
  next.reserve(rows->size());
  size_t scanned = 0;
  char strategy_used = 'N';
  Status build_status = Status::OK();

  const HashPlan plan = PlanHash(graph, p, *rows, opts.strategy);
  if (plan.use_hash) {
    strategy_used = 'H';
    HashTable table;
    size_t build_scanned = 0;
    {
      TraceSpan build_span(tracer, "hash-build");
      build_status =
          BuildHashTable(graph, p, plan, opts.ctx, &table, &build_scanned);
      build_span.Arg("build_rows", static_cast<uint64_t>(build_scanned));
    }
    scanned += build_scanned;
    if (opts.stats != nullptr) {
      ++opts.stats->hash_builds;
      opts.stats->hash_build_rows += build_scanned;
    }
    if (build_status.ok()) {
      size_t probe_hits = 0;
      if (threads > 1 && rows->size() >= 2 * kMinMorselRows) {
        // Morsel-parallel probe; concatenation in morsel order keeps the
        // output byte-identical to the serial probe (and thus to NLJ).
        auto morsels =
            Morsels(rows->size(),
                    static_cast<size_t>(threads) * kMorselsPerThread,
                    kMinMorselRows);
        std::vector<std::vector<Binding>> parts(morsels.size());
        std::vector<size_t> part_scanned(morsels.size(), 0);
        std::vector<size_t> part_hits(morsels.size(), 0);
        ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
          if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
          auto [lo, hi] = morsels[m];
          part_scanned[m] =
              ProbeHashRange(graph, p, plan, table, *rows, lo, hi, opts.ctx,
                             &parts[m], &part_hits[m]);
        });
        for (size_t m = 0; m < morsels.size(); ++m) {
          scanned += part_scanned[m];
          probe_hits += part_hits[m];
          for (Binding& b : parts[m]) next.push_back(std::move(b));
        }
        if (opts.stats != nullptr) {
          opts.stats->morsel_count += morsels.size();
        }
      } else {
        scanned += ProbeHashRange(graph, p, plan, table, *rows, 0,
                                  rows->size(), opts.ctx, &next, &probe_hits);
      }
      if (opts.stats != nullptr) opts.stats->hash_probe_hits += probe_hits;
      join_span.Arg("probe_hits", static_cast<uint64_t>(probe_hits));
    }
  } else if (threads > 1 && rows->size() == 1) {
    // Single seed row (the common first pattern): materialize the index
    // range once and split *it* into morsels.
    const Binding& row = rows->front();
    TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
    TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
    TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
    std::vector<rdf::TripleId> matches = graph.Match(s, pp, o);
    scanned = matches.size();
    auto morsels = Morsels(matches.size(),
                           static_cast<size_t>(threads) * kMorselsPerThread,
                           kMinMorselRows);
    if (morsels.size() <= 1) {
      for (size_t i = 0; i < matches.size(); ++i) {
        if (opts.ctx != nullptr && (i + 1) % kCheckEveryRows == 0 &&
            opts.ctx->ShouldStop()) {
          break;
        }
        ExtendRow(p, row, matches[i], &next);
      }
    } else {
      std::vector<std::vector<Binding>> parts(morsels.size());
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        auto [lo, hi] = morsels[m];
        parts[m].reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          if (opts.ctx != nullptr && (i - lo + 1) % kCheckEveryRows == 0 &&
              opts.ctx->ShouldStop()) {
            return;  // abandon this morsel; caller reports the trip
          }
          ExtendRow(p, row, matches[i], &parts[m]);
        }
      });
      for (std::vector<Binding>& part : parts) {
        for (Binding& b : part) next.push_back(std::move(b));
      }
      if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
    }
  } else if (threads > 1 && rows->size() >= 2 * kMinMorselRows) {
    // Morsel-parallel extension over the incoming rows; concatenation in
    // morsel order keeps the output byte-identical to the serial join.
    auto morsels = Morsels(rows->size(),
                           static_cast<size_t>(threads) * kMorselsPerThread,
                           kMinMorselRows);
    std::vector<std::vector<Binding>> parts(morsels.size());
    std::vector<size_t> part_scanned(morsels.size(), 0);
    ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
      if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
      auto [lo, hi] = morsels[m];
      part_scanned[m] =
          ExtendRange(graph, p, *rows, lo, hi, opts.ctx, &parts[m]);
    });
    for (size_t m = 0; m < morsels.size(); ++m) {
      scanned += part_scanned[m];
      for (Binding& b : parts[m]) next.push_back(std::move(b));
    }
    if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
  } else {
    scanned = ExtendRange(graph, p, *rows, 0, rows->size(), opts.ctx, &next);
  }

  if (opts.stats != nullptr) {
    ++opts.stats->bgp_patterns;
    opts.stats->rows_scanned.push_back(scanned);
    opts.stats->join_order.push_back(source_pattern);
    opts.stats->join_strategy.push_back(strategy_used);
  }
  join_span.Arg("strategy", strategy_used == 'H' ? "hash" : "nested-loop");
  join_span.Arg("rows_scanned", static_cast<uint64_t>(scanned));
  join_span.Arg("output_rows", static_cast<uint64_t>(next.size()));
  // A tripped hash build already carries the typed status from its
  // counted check; surface it after the stats are recorded.
  RDFA_RETURN_NOT_OK(build_status);
  // A scan abandoned mid-pattern left `next` partial: surface the typed
  // status now rather than joining the next pattern against garbage.
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  if (opts.ctx != nullptr) opts.ctx->AddProgressRows(next.size());
  *rows = std::move(next);
  return Status::OK();
}

// ---- planner v2: seed scan / sieve / merge steps -------------------------

// Planner-v2 seed step: enumerate the first pattern's constant-narrowed
// range in the plan's permutation, so the intermediate comes out sorted on
// the interesting-order variable. Byte-layout mirrors the v1 single-seed
// path (materialize, then extend serially or by morsels).
Status ExecuteSeedStep(const rdf::Graph& graph, const CompiledPattern& p,
                       int source_pattern, const PlannedStep& step,
                       const JoinOptions& opts, int threads, Tracer* tracer,
                       std::vector<Binding>* rows) {
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  TraceSpan join_span(tracer, "bgp-join");
  join_span.Arg("pattern", static_cast<int64_t>(source_pattern));
  join_span.Arg("input_rows", static_cast<uint64_t>(rows->size()));
  join_span.Arg("strategy", "seed-scan");
  join_span.Arg("perm", PermName(step.perm));
  const Binding row = rows->front();
  std::vector<rdf::TripleId> matches;
  bool stopped = false;
  size_t scanned = 0;
  graph.ForEachInPerm(step.perm, p.s_var < 0 ? p.s_id : kNoTermId,
                      p.p_var < 0 ? p.p_id : kNoTermId,
                      p.o_var < 0 ? p.o_id : kNoTermId,
                      [&](const rdf::TripleId& t) {
                        if (stopped) return;
                        ++scanned;
                        if (opts.ctx != nullptr &&
                            scanned % kCheckEveryRows == 0 &&
                            opts.ctx->ShouldStop()) {
                          stopped = true;
                          return;
                        }
                        matches.push_back(t);
                      });
  std::vector<Binding> next;
  next.reserve(matches.size());
  bool extended = false;
  if (threads > 1) {
    auto morsels = Morsels(matches.size(),
                           static_cast<size_t>(threads) * kMorselsPerThread,
                           kMinMorselRows);
    if (morsels.size() > 1) {
      std::vector<std::vector<Binding>> parts(morsels.size());
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        auto [lo, hi] = morsels[m];
        parts[m].reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          if (opts.ctx != nullptr && (i - lo + 1) % kCheckEveryRows == 0 &&
              opts.ctx->ShouldStop()) {
            return;  // abandon this morsel; caller reports the trip
          }
          ExtendRow(p, row, matches[i], &parts[m]);
        }
      });
      for (std::vector<Binding>& part : parts) {
        for (Binding& b : part) next.push_back(std::move(b));
      }
      if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
      extended = true;
    }
  }
  if (!extended) {
    for (size_t i = 0; i < matches.size(); ++i) {
      if (opts.ctx != nullptr && (i + 1) % kCheckEveryRows == 0 &&
          opts.ctx->ShouldStop()) {
        break;
      }
      ExtendRow(p, row, matches[i], &next);
    }
  }
  if (opts.stats != nullptr) {
    ++opts.stats->bgp_patterns;
    opts.stats->rows_scanned.push_back(scanned);
    opts.stats->join_order.push_back(source_pattern);
    opts.stats->join_strategy.push_back('S');
  }
  join_span.Arg("rows_scanned", static_cast<uint64_t>(scanned));
  join_span.Arg("output_rows", static_cast<uint64_t>(next.size()));
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  if (opts.ctx != nullptr) opts.ctx->AddProgressRows(next.size());
  *rows = std::move(next);
  return Status::OK();
}

// A contiguous run of input rows sharing one interesting-order key — the
// sieve a merge step pushes into its cursor.
struct SieveRun {
  TermId key;
  size_t begin, end;  // input-row extent [begin, end)
};

// Builds the sieve: distinct head-slot values of the (sorted) input with
// their run extents. Returns false when a row leaves the head unbound or
// breaks the sort order — the caller then demotes the step to the adaptive
// machinery, which is byte-identical. A tripped counted check is reported
// through *status with the sieve left partial.
bool BuildSieve(const std::vector<Binding>& rows, int head_slot,
                const QueryContext* ctx, std::vector<SieveRun>* runs,
                Status* status) {
  runs->clear();
  size_t polled = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    const TermId v = rows[r][head_slot];
    if (v == kNoTermId) return false;
    if (!runs->empty() && v < runs->back().key) return false;
    if (ctx != nullptr && ++polled % kCheckEveryRows == 0) {
      Status check = ctx->Check("sieve-build");
      if (!check.ok()) {
        *status = check;
        return true;
      }
    }
    if (runs->empty() || v != runs->back().key) {
      runs->push_back({v, r, r + 1});
    } else {
      runs->back().end = r + 1;
    }
  }
  return true;
}

// Streams one merge cursor against a contiguous range of sieve runs,
// appending extensions in input-row order. With SIP the cursor seeks
// straight to each run's key (skipping whole blocks of non-candidates);
// without it the cursor advances linearly, decoding every entry in the
// range. Each key group is buffered once and replayed across its run's
// rows — the replay enumerates exactly the triples (in exactly the order) a
// per-row NLJ probe of that key would, which is the byte-identity argument.
Status MergeRuns(const rdf::Graph& graph, const CompiledPattern& p,
                 rdf::Graph::Perm perm, const std::vector<Binding>& rows,
                 const std::vector<SieveRun>& runs, size_t run_lo,
                 size_t run_hi, bool sip, const QueryContext* ctx,
                 std::vector<Binding>* out, size_t* decoded, size_t* seeks,
                 size_t* advances) {
  rdf::Graph::MergeCursor cur = graph.OpenMergeCursor(
      perm, p.s_var < 0 ? p.s_id : kNoTermId,
      p.p_var < 0 ? p.p_id : kNoTermId, p.o_var < 0 ? p.o_id : kNoTermId);
  std::vector<rdf::TripleId> group;
  for (size_t ri = run_lo; ri < run_hi && !cur.at_end(); ++ri) {
    const SieveRun& run = runs[ri];
    if (sip) {
      cur.SeekGE(run.key);
    } else {
      while (!cur.at_end() && cur.key() < run.key) {
        cur.Next();
        if (ctx != nullptr && ++*advances % kCheckEveryRows == 0) {
          Status check = ctx->Check("merge-advance");
          if (!check.ok()) {
            *decoded += cur.decoded();
            *seeks += cur.seeks();
            return check;
          }
        }
      }
    }
    if (cur.at_end()) break;
    if (cur.key() != run.key) continue;
    group.clear();
    while (!cur.at_end() && cur.key() == run.key) {
      group.push_back(cur.triple());
      cur.Next();
      if (ctx != nullptr && ++*advances % kCheckEveryRows == 0) {
        Status check = ctx->Check("merge-advance");
        if (!check.ok()) {
          *decoded += cur.decoded();
          *seeks += cur.seeks();
          return check;
        }
      }
    }
    for (size_t r = run.begin; r < run.end; ++r) {
      for (const rdf::TripleId& t : group) ExtendRow(p, rows[r], t, out);
    }
  }
  *decoded += cur.decoded();
  *seeks += cur.seeks();
  return Status::OK();
}

// Planner-v2 merge step: sieve the input's interesting-order keys, stream
// an order-agreeing cursor against them. Parallel execution (SIP only)
// splits the *runs* into morsels, each with its own cursor; concatenation
// in morsel order equals the serial output. Without SIP the linear advance
// is inherently sequential, so execution stays serial.
Status ExecuteMergeStep(const rdf::Graph& graph, const CompiledPattern& p,
                        int source_pattern, const PlannedStep& step,
                        int head_slot, const JoinOptions& opts, int threads,
                        Tracer* tracer, std::vector<Binding>* rows) {
  std::vector<SieveRun> runs;
  Status sieve_status = Status::OK();
  if (!BuildSieve(*rows, head_slot, opts.ctx, &runs, &sieve_status)) {
    // Head unbound or input unsorted — impossible for trivial-seed
    // pipelines, but the demotion is byte-identical regardless.
    return ExecuteAdaptiveStep(graph, p, source_pattern, opts, threads,
                               tracer, rows);
  }
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  TraceSpan join_span(tracer, "bgp-join");
  join_span.Arg("pattern", static_cast<int64_t>(source_pattern));
  join_span.Arg("input_rows", static_cast<uint64_t>(rows->size()));
  join_span.Arg("strategy", "merge");
  join_span.Arg("perm", PermName(step.perm));
  join_span.Arg("sieve_keys", static_cast<uint64_t>(runs.size()));

  std::vector<Binding> next;
  size_t decoded = 0, seeks = 0, advances = 0;
  Status merge_status = sieve_status;
  if (merge_status.ok()) {
    next.reserve(rows->size());
    bool merged = false;
    if (opts.sip && threads > 1 && rows->size() >= 2 * kMinMorselRows) {
      auto morsels = Morsels(runs.size(),
                             static_cast<size_t>(threads) * kMorselsPerThread,
                             kMinMorselRows);
      if (morsels.size() > 1) {
        std::vector<std::vector<Binding>> parts(morsels.size());
        std::vector<size_t> part_decoded(morsels.size(), 0);
        std::vector<size_t> part_seeks(morsels.size(), 0);
        std::vector<size_t> part_advances(morsels.size(), 0);
        std::vector<Status> part_status(morsels.size(), Status::OK());
        ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
          if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
          auto [lo, hi] = morsels[m];
          part_status[m] = MergeRuns(graph, p, step.perm, *rows, runs, lo, hi,
                                     /*sip=*/true, opts.ctx, &parts[m],
                                     &part_decoded[m], &part_seeks[m],
                                     &part_advances[m]);
        });
        for (size_t m = 0; m < morsels.size(); ++m) {
          decoded += part_decoded[m];
          seeks += part_seeks[m];
          if (merge_status.ok() && !part_status[m].ok()) {
            merge_status = part_status[m];
          }
          for (Binding& b : parts[m]) next.push_back(std::move(b));
        }
        if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
        merged = true;
      }
    }
    if (!merged) {
      merge_status = MergeRuns(graph, p, step.perm, *rows, runs, 0,
                               runs.size(), opts.sip, opts.ctx, &next,
                               &decoded, &seeks, &advances);
    }
  }
  if (opts.stats != nullptr) {
    ++opts.stats->bgp_patterns;
    opts.stats->rows_scanned.push_back(decoded);
    opts.stats->join_order.push_back(source_pattern);
    opts.stats->join_strategy.push_back('M');
    ++opts.stats->merge_joins;
    opts.stats->merge_rows_decoded += decoded;
    opts.stats->sieve_seeks += seeks;
    opts.stats->sieve_keys += runs.size();
  }
  join_span.Arg("rows_scanned", static_cast<uint64_t>(decoded));
  join_span.Arg("sieve_seeks", static_cast<uint64_t>(seeks));
  join_span.Arg("output_rows", static_cast<uint64_t>(next.size()));
  RDFA_RETURN_NOT_OK(merge_status);
  if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
  if (opts.ctx != nullptr) opts.ctx->AddProgressRows(next.size());
  *rows = std::move(next);
  return Status::OK();
}

// Planner-v2 pipeline: annotate the execution-ordered patterns, surface the
// plan shape, run the seed scan in the interesting-order permutation, then
// each later step as a merge (when qualified and the strategy allows) or
// through the adaptive machinery. Annotation is a pure function of the
// order, so a plan-cache replay of the captured order reproduces the plan
// bit-for-bit.
Status ExecuteBgpV2(const rdf::Graph& graph,
                    const std::vector<CompiledPattern>& patterns,
                    const std::vector<int>& source_index, bool dp_ordered,
                    const JoinOptions& opts, int threads, Tracer* tracer,
                    std::vector<Binding>* rows) {
  BgpPlan plan = AnnotateBgpPlan(graph, patterns);
  plan.used_dp = dp_ordered;
  {
    TraceSpan plan_span(tracer, "plan-v2");
    plan_span.Arg("patterns", static_cast<uint64_t>(patterns.size()));
    plan_span.Arg("dp", dp_ordered);
    plan_span.Arg("head_slot", static_cast<int64_t>(plan.head_slot));
  }
  if (opts.stats != nullptr) {
    opts.stats->plan_shapes.push_back(plan.ToJson(source_index));
    if (dp_ordered) ++opts.stats->dp_plans;
  }
  RDFA_RETURN_NOT_OK(ExecuteSeedStep(graph, patterns[0], source_index[0],
                                     plan.steps[0], opts, threads, tracer,
                                     rows));
  if (rows->empty()) return Status::OK();
  // kHash / kNestedLoop demote qualified merge steps to their forced
  // strategy — byte-identical by the order argument in MergeRuns.
  const bool merge_enabled = opts.strategy == JoinStrategy::kAdaptive ||
                             opts.strategy == JoinStrategy::kMerge;
  for (size_t pi = 1; pi < patterns.size(); ++pi) {
    const PlannedStep& step = plan.steps[pi];
    if (step.strategy == 'M' && merge_enabled) {
      RDFA_RETURN_NOT_OK(ExecuteMergeStep(graph, patterns[pi],
                                          source_index[pi], step,
                                          plan.head_slot, opts, threads,
                                          tracer, rows));
    } else {
      RDFA_RETURN_NOT_OK(ExecuteAdaptiveStep(graph, patterns[pi],
                                             source_index[pi], opts, threads,
                                             tracer, rows));
    }
    if (rows->empty()) return Status::OK();
  }
  return Status::OK();
}

}  // namespace

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, const JoinOptions& opts,
               std::vector<Binding>* rows) {
  for (const CompiledPattern& p : patterns) {
    if (p.impossible) {
      rows->clear();
      return Status::OK();
    }
  }
  for (Binding& b : *rows) {
    if (b.size() < slot_count) b.resize(slot_count, kNoTermId);
  }

  // Track each pattern's position in the source BGP so the chosen join
  // order is reportable.
  std::vector<int> source_index(patterns.size());
  std::iota(source_index.begin(), source_index.end(), 0);

  Tracer* tracer = opts.ctx != nullptr ? opts.ctx->tracer() : nullptr;

  // Planner v2 engages only on trivial-seed runs (one all-unbound input
  // row — the top-level BGP case): its interesting-order and seed-scan
  // reasoning assumes the first pattern produces the intermediate. Seeded
  // re-entries (OPTIONAL / UNION / EXISTS) run the v1 machinery, where
  // kMerge degrades to kAdaptive semantics.
  bool trivial_seed = rows->size() == 1;
  if (trivial_seed) {
    for (TermId v : rows->front()) {
      if (v != kNoTermId) {
        trivial_seed = false;
        break;
      }
    }
  }
  const bool v2 = trivial_seed && !patterns.empty() &&
                  (opts.strategy == JoinStrategy::kMerge || opts.use_dp);
  // "This plan's order came from the DP search" — deterministic across
  // capture and replay (a replayed DP order still reports dp=true).
  const bool dp_ordered = v2 && opts.use_dp && patterns.size() > 1 &&
                          patterns.size() <= kMaxDpPatterns;

  // Plan-cache replay: apply a previously chosen order without re-running
  // the greedy reorderer. Only a valid permutation of the pattern count is
  // trusted — anything else (stale entry shape, corrupted data) falls back
  // to the normal path below.
  bool replayed = false;
  if (opts.replay_order != nullptr &&
      opts.replay_order->size() == patterns.size()) {
    std::vector<CompiledPattern> ordered;
    std::vector<int> ordered_source;
    ordered.reserve(patterns.size());
    ordered_source.reserve(patterns.size());
    std::vector<bool> used(patterns.size(), false);
    bool valid = true;
    for (int src : *opts.replay_order) {
      if (src < 0 || static_cast<size_t>(src) >= patterns.size() ||
          used[src]) {
        valid = false;
        break;
      }
      used[src] = true;
      ordered.push_back(patterns[src]);
      ordered_source.push_back(src);
    }
    if (valid) {
      TraceSpan plan_span(tracer, "plan");
      plan_span.Arg("patterns", static_cast<uint64_t>(patterns.size()));
      plan_span.Arg("replayed", true);
      patterns = std::move(ordered);
      source_index = std::move(ordered_source);
      replayed = true;
    }
  }

  // Join ordering. DP (planner v2) replaces the greedy reorderer when
  // enabled and the BGP is small enough — and, being the reorderer itself,
  // it also applies when `reorder` is off, making the chosen order immune
  // to source-order accidents. Orders only change performance, never the
  // result set.
  if (!replayed && patterns.size() > 1 && (reorder || dp_ordered)) {
    TraceSpan plan_span(tracer, "plan");
    plan_span.Arg("patterns", static_cast<uint64_t>(patterns.size()));
    plan_span.Arg("calibrated", opts.calibrated_estimates);
    std::vector<int> order;
    if (dp_ordered) {
      DpStats dp_stats;
      {
        TraceSpan dp_span(tracer, "dp-plan");
        order = PlanBgpOrderDp(graph, patterns, &dp_stats);
        dp_span.Arg("states_considered",
                    static_cast<uint64_t>(dp_stats.states_considered));
        dp_span.Arg("states_expanded",
                    static_cast<uint64_t>(dp_stats.states_expanded));
      }
      plan_span.Arg("dp", true);
      static Histogram& dp_plan_ms = MetricsRegistry::Global().GetHistogram(
          "rdfa_dp_plan_ms", Histogram::LatencyBoundsMs(),
          "DP join-order search latency");
      dp_plan_ms.Observe(dp_stats.plan_ms);
    } else {
      // Seed "bound" with slots already bound in the incoming rows.
      std::set<int> bound;
      if (!rows->empty()) {
        const Binding& first = rows->front();
        for (size_t i = 0; i < first.size(); ++i) {
          if (first[i] != kNoTermId) bound.insert(static_cast<int>(i));
        }
      }
      order = GreedyOrder(graph, patterns, std::move(bound),
                          opts.calibrated_estimates);
    }
    std::vector<CompiledPattern> ordered;
    std::vector<int> ordered_source;
    ordered.reserve(patterns.size());
    ordered_source.reserve(patterns.size());
    for (int idx : order) {
      ordered.push_back(patterns[idx]);
      ordered_source.push_back(source_index[idx]);
    }
    patterns = std::move(ordered);
    source_index = std::move(ordered_source);
  }

  if (opts.capture_order != nullptr) {
    opts.capture_order->assign(source_index.begin(), source_index.end());
  }

  const int threads = std::max(1, opts.threads);
  if (v2) {
    return ExecuteBgpV2(graph, patterns, source_index, dp_ordered, opts,
                        threads, tracer, rows);
  }
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    RDFA_RETURN_NOT_OK(ExecuteAdaptiveStep(graph, patterns[pi],
                                           source_index[pi], opts, threads,
                                           tracer, rows));
    if (rows->empty()) return Status::OK();
  }
  return Status::OK();
}

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, std::vector<Binding>* rows) {
  return JoinBgp(graph, std::move(patterns), slot_count, reorder,
                 JoinOptions{}, rows);
}

std::vector<int> PlanBgpOrder(const rdf::Graph& graph,
                              const std::vector<CompiledPattern>& patterns,
                              const JoinOptions& opts, bool reorder) {
  std::vector<int> source(patterns.size());
  std::iota(source.begin(), source.end(), 0);
  if (patterns.size() <= 1) return source;
  const bool dp = opts.use_dp && patterns.size() <= kMaxDpPatterns;
  if (dp) return PlanBgpOrderDp(graph, patterns);
  if (!reorder) return source;
  return GreedyOrder(graph, patterns, std::set<int>(),
                     opts.calibrated_estimates);
}

}  // namespace rdfa::sparql
