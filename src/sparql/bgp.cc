#include "sparql/bgp.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>

#include "common/thread_pool.h"

namespace rdfa::sparql {

using rdf::kNoTermId;
using rdf::TermId;

CompiledPattern CompileTriple(const TriplePattern& tp, VarTable* vars,
                              const rdf::Graph& graph) {
  CompiledPattern cp;
  auto resolve = [&](const NodePattern& n, int* var, TermId* id) {
    if (n.is_var) {
      *var = vars->IdOf(n.var);
    } else {
      *id = graph.terms().Find(n.term);
      if (*id == kNoTermId) cp.impossible = true;
    }
  };
  resolve(tp.s, &cp.s_var, &cp.s_id);
  resolve(tp.p, &cp.p_var, &cp.p_id);
  resolve(tp.o, &cp.o_var, &cp.o_id);
  return cp;
}

namespace {

// Rows below this threshold are not worth splitting into morsels.
constexpr size_t kMinMorselRows = 64;
// Morsels per thread: enough slack for load balancing without drowning the
// join in scheduling overhead.
constexpr size_t kMorselsPerThread = 4;
// Cancellation poll interval inside a scan, in enumerated index rows: small
// enough that a 1ms deadline trips promptly, large enough that the atomic
// loads vanish in the scan cost.
constexpr size_t kCheckEveryRows = 512;

// Selectivity score of a pattern given the set of already-bound slots.
// Constants narrow via the index estimate; bound variables narrow too but
// their value is row-dependent, so they get a flat discount.
double Score(const rdf::Graph& graph, const CompiledPattern& p,
             const std::set<int>& bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o)) + 1.0;
  int bound_vars = 0;
  if (p.s_var >= 0 && bound.count(p.s_var)) ++bound_vars;
  if (p.p_var >= 0 && bound.count(p.p_var)) ++bound_vars;
  if (p.o_var >= 0 && bound.count(p.o_var)) ++bound_vars;
  for (int i = 0; i < bound_vars; ++i) est /= 16.0;
  return est;
}

void MarkBound(const CompiledPattern& p, std::set<int>* bound) {
  if (p.s_var >= 0) bound->insert(p.s_var);
  if (p.p_var >= 0) bound->insert(p.p_var);
  if (p.o_var >= 0) bound->insert(p.o_var);
}

// Extends `row` with triple `t` under pattern `p` (re-checking
// same-variable positions, e.g. ?x p ?x); appends to `*out` on success.
// Returns false only on a conflict.
inline void ExtendRow(const CompiledPattern& p, const Binding& row,
                      const rdf::TripleId& t, std::vector<Binding>* out) {
  Binding extended = row;
  bool ok = true;
  auto bind = [&](int var, TermId value) {
    if (var < 0) return;
    if (extended[var] != kNoTermId && extended[var] != value) {
      ok = false;
      return;
    }
    extended[var] = value;
  };
  bind(p.s_var, t.s);
  if (ok) bind(p.p_var, t.p);
  if (ok) bind(p.o_var, t.o);
  if (ok) out->push_back(std::move(extended));
}

// Extends every row in [begin, end) of `rows` through `p`, appending the
// results (in row order) to `*out`. Returns the number of index rows
// enumerated. When `ctx` is set, polls it every kCheckEveryRows enumerated
// rows and abandons the remaining range once it trips (the caller turns the
// trip into a typed Status; the partial output is discarded).
size_t ExtendRange(const rdf::Graph& graph, const CompiledPattern& p,
                   const std::vector<Binding>& rows, size_t begin, size_t end,
                   const QueryContext* ctx, std::vector<Binding>* out) {
  size_t scanned = 0;
  bool stopped = false;
  for (size_t r = begin; r < end && !stopped; ++r) {
    const Binding& row = rows[r];
    TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
    TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
    TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
    graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
      if (stopped) return;  // drain the scan without extending
      ++scanned;
      if (ctx != nullptr && scanned % kCheckEveryRows == 0 &&
          ctx->ShouldStop()) {
        stopped = true;
        return;
      }
      ExtendRow(p, row, t, out);
    });
  }
  return scanned;
}

}  // namespace

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, const JoinOptions& opts,
               std::vector<Binding>* rows) {
  for (const CompiledPattern& p : patterns) {
    if (p.impossible) {
      rows->clear();
      return Status::OK();
    }
  }
  for (Binding& b : *rows) {
    if (b.size() < slot_count) b.resize(slot_count, kNoTermId);
  }

  // Track each pattern's position in the source BGP so the chosen join
  // order is reportable.
  std::vector<int> source_index(patterns.size());
  std::iota(source_index.begin(), source_index.end(), 0);

  if (reorder && patterns.size() > 1) {
    // Seed "bound" with slots already bound in the incoming rows.
    std::set<int> bound;
    if (!rows->empty()) {
      const Binding& first = rows->front();
      for (size_t i = 0; i < first.size(); ++i) {
        if (first[i] != kNoTermId) bound.insert(static_cast<int>(i));
      }
    }
    std::vector<CompiledPattern> ordered;
    std::vector<int> ordered_source;
    std::vector<bool> used(patterns.size(), false);
    for (size_t step = 0; step < patterns.size(); ++step) {
      double best = -1;
      size_t best_i = 0;
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (used[i]) continue;
        double s = Score(graph, patterns[i], bound);
        if (best < 0 || s < best) {
          best = s;
          best_i = i;
        }
      }
      used[best_i] = true;
      ordered.push_back(patterns[best_i]);
      ordered_source.push_back(source_index[best_i]);
      MarkBound(patterns[best_i], &bound);
    }
    patterns = std::move(ordered);
    source_index = std::move(ordered_source);
  }

  const int threads = std::max(1, opts.threads);
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    // One typed check per join stage; scans poll the cheap flag inline.
    if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
    const CompiledPattern& p = patterns[pi];
    std::vector<Binding> next;
    next.reserve(rows->size());
    size_t scanned = 0;

    if (threads > 1 && rows->size() == 1) {
      // Single seed row (the common first pattern): materialize the index
      // range once and split *it* into morsels.
      const Binding& row = rows->front();
      TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
      TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
      TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
      std::vector<rdf::TripleId> matches = graph.Match(s, pp, o);
      scanned = matches.size();
      auto morsels = Morsels(matches.size(),
                             static_cast<size_t>(threads) * kMorselsPerThread,
                             kMinMorselRows);
      if (morsels.size() <= 1) {
        for (size_t i = 0; i < matches.size(); ++i) {
          if (opts.ctx != nullptr && (i + 1) % kCheckEveryRows == 0 &&
              opts.ctx->ShouldStop()) {
            break;
          }
          ExtendRow(p, row, matches[i], &next);
        }
      } else {
        std::vector<std::vector<Binding>> parts(morsels.size());
        ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
          auto [lo, hi] = morsels[m];
          parts[m].reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            if (opts.ctx != nullptr && (i - lo + 1) % kCheckEveryRows == 0 &&
                opts.ctx->ShouldStop()) {
              return;  // abandon this morsel; caller reports the trip
            }
            ExtendRow(p, row, matches[i], &parts[m]);
          }
        });
        for (std::vector<Binding>& part : parts) {
          for (Binding& b : part) next.push_back(std::move(b));
        }
        if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
      }
    } else if (threads > 1 && rows->size() >= 2 * kMinMorselRows) {
      // Morsel-parallel extension over the incoming rows; concatenation in
      // morsel order keeps the output byte-identical to the serial join.
      auto morsels = Morsels(rows->size(),
                             static_cast<size_t>(threads) * kMorselsPerThread,
                             kMinMorselRows);
      std::vector<std::vector<Binding>> parts(morsels.size());
      std::vector<size_t> part_scanned(morsels.size(), 0);
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
        auto [lo, hi] = morsels[m];
        part_scanned[m] =
            ExtendRange(graph, p, *rows, lo, hi, opts.ctx, &parts[m]);
      });
      for (size_t m = 0; m < morsels.size(); ++m) {
        scanned += part_scanned[m];
        for (Binding& b : parts[m]) next.push_back(std::move(b));
      }
      if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
    } else {
      scanned = ExtendRange(graph, p, *rows, 0, rows->size(), opts.ctx,
                            &next);
    }

    if (opts.stats != nullptr) {
      ++opts.stats->bgp_patterns;
      opts.stats->rows_scanned.push_back(scanned);
      opts.stats->join_order.push_back(source_index[pi]);
    }
    // A scan abandoned mid-pattern left `next` partial: surface the typed
    // status now rather than joining the next pattern against garbage.
    if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
    *rows = std::move(next);
    if (rows->empty()) return Status::OK();
  }
  return Status::OK();
}

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, std::vector<Binding>* rows) {
  return JoinBgp(graph, std::move(patterns), slot_count, reorder,
                 JoinOptions{}, rows);
}

}  // namespace rdfa::sparql
