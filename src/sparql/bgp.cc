#include "sparql/bgp.h"

#include <algorithm>
#include <set>

namespace rdfa::sparql {

using rdf::kNoTermId;
using rdf::TermId;

CompiledPattern CompileTriple(const TriplePattern& tp, VarTable* vars,
                              const rdf::Graph& graph) {
  CompiledPattern cp;
  auto resolve = [&](const NodePattern& n, int* var, TermId* id) {
    if (n.is_var) {
      *var = vars->IdOf(n.var);
    } else {
      *id = graph.terms().Find(n.term);
      if (*id == kNoTermId) cp.impossible = true;
    }
  };
  resolve(tp.s, &cp.s_var, &cp.s_id);
  resolve(tp.p, &cp.p_var, &cp.p_id);
  resolve(tp.o, &cp.o_var, &cp.o_id);
  return cp;
}

namespace {

// Selectivity score of a pattern given the set of already-bound slots.
// Constants narrow via the index estimate; bound variables narrow too but
// their value is row-dependent, so they get a flat discount.
double Score(const rdf::Graph& graph, const CompiledPattern& p,
             const std::set<int>& bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o)) + 1.0;
  int bound_vars = 0;
  if (p.s_var >= 0 && bound.count(p.s_var)) ++bound_vars;
  if (p.p_var >= 0 && bound.count(p.p_var)) ++bound_vars;
  if (p.o_var >= 0 && bound.count(p.o_var)) ++bound_vars;
  for (int i = 0; i < bound_vars; ++i) est /= 16.0;
  return est;
}

void MarkBound(const CompiledPattern& p, std::set<int>* bound) {
  if (p.s_var >= 0) bound->insert(p.s_var);
  if (p.p_var >= 0) bound->insert(p.p_var);
  if (p.o_var >= 0) bound->insert(p.o_var);
}

}  // namespace

void JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
             size_t slot_count, bool reorder, std::vector<Binding>* rows) {
  for (const CompiledPattern& p : patterns) {
    if (p.impossible) {
      rows->clear();
      return;
    }
  }
  for (Binding& b : *rows) {
    if (b.size() < slot_count) b.resize(slot_count, kNoTermId);
  }

  if (reorder && patterns.size() > 1) {
    // Seed "bound" with slots already bound in the incoming rows.
    std::set<int> bound;
    if (!rows->empty()) {
      const Binding& first = rows->front();
      for (size_t i = 0; i < first.size(); ++i) {
        if (first[i] != kNoTermId) bound.insert(static_cast<int>(i));
      }
    }
    std::vector<CompiledPattern> ordered;
    std::vector<bool> used(patterns.size(), false);
    for (size_t step = 0; step < patterns.size(); ++step) {
      double best = -1;
      size_t best_i = 0;
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (used[i]) continue;
        double s = Score(graph, patterns[i], bound);
        if (best < 0 || s < best) {
          best = s;
          best_i = i;
        }
      }
      used[best_i] = true;
      ordered.push_back(patterns[best_i]);
      MarkBound(patterns[best_i], &bound);
    }
    patterns = std::move(ordered);
  }

  for (const CompiledPattern& p : patterns) {
    std::vector<Binding> next;
    next.reserve(rows->size());
    for (const Binding& row : *rows) {
      TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
      TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
      TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
      graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
        // Re-check same-variable positions (e.g. ?x p ?x).
        Binding extended = row;
        bool ok = true;
        auto bind = [&](int var, TermId value) {
          if (var < 0) return;
          if (extended[var] != kNoTermId && extended[var] != value) {
            ok = false;
            return;
          }
          extended[var] = value;
        };
        bind(p.s_var, t.s);
        if (ok) bind(p.p_var, t.p);
        if (ok) bind(p.o_var, t.o);
        if (ok) next.push_back(std::move(extended));
      });
    }
    *rows = std::move(next);
    if (rows->empty()) return;
  }
}

}  // namespace rdfa::sparql
