#include "sparql/bgp.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <unordered_map>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace rdfa::sparql {

using rdf::kNoTermId;
using rdf::TermId;

CompiledPattern CompileTriple(const TriplePattern& tp, VarTable* vars,
                              const rdf::Graph& graph) {
  CompiledPattern cp;
  auto resolve = [&](const NodePattern& n, int* var, TermId* id) {
    if (n.is_var) {
      *var = vars->IdOf(n.var);
    } else {
      *id = graph.terms().Find(n.term);
      if (*id == kNoTermId) cp.impossible = true;
    }
  };
  resolve(tp.s, &cp.s_var, &cp.s_id);
  resolve(tp.p, &cp.p_var, &cp.p_id);
  resolve(tp.o, &cp.o_var, &cp.o_id);
  return cp;
}

namespace {

// Rows below this threshold are not worth splitting into morsels.
constexpr size_t kMinMorselRows = 64;
// Morsels per thread: enough slack for load balancing without drowning the
// join in scheduling overhead.
constexpr size_t kMorselsPerThread = 4;
// Cancellation poll interval inside a scan, in enumerated index rows: small
// enough that a 1ms deadline trips promptly, large enough that the atomic
// loads vanish in the scan cost.
constexpr size_t kCheckEveryRows = 512;

// Minimum input-row count before the adaptive strategy considers a hash
// build: below this a build cannot amortize over enough probes.
constexpr size_t kHashMinRows = 64;
// The hash build must be this many times cheaper than the projected NLJ
// scan work before it is chosen — conservative, so the hash path strictly
// reduces index rows enumerated.
constexpr double kHashBuildFactor = 2.0;

// Legacy selectivity score: raw index-range width, with a flat /16 discount
// per bound variable (their values are row-dependent, so the old model had
// no better number). Kept as the ablation baseline.
double LegacyScore(const rdf::Graph& graph, const CompiledPattern& p,
                   const std::set<int>& bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o)) + 1.0;
  int bound_vars = 0;
  if (p.s_var >= 0 && bound.count(p.s_var)) ++bound_vars;
  if (p.p_var >= 0 && bound.count(p.p_var)) ++bound_vars;
  if (p.o_var >= 0 && bound.count(p.o_var)) ++bound_vars;
  for (int i = 0; i < bound_vars; ++i) est /= 16.0;
  return est;
}

// Calibrated per-row cardinality estimate: the constant-narrowed match
// count, divided by the distinct count of each bound-variable lane within
// that population (predicate-local when the predicate is constant — i.e.
// the bound lane divides by the predicate's distinct subjects/objects, so
// the result is the predicate's average fanout). Uniformity assumption, but
// per-predicate rather than one flat constant.
double CalibratedRowEstimate(const rdf::Graph& graph, const CompiledPattern& p,
                             bool s_bound, bool p_bound, bool o_bound) {
  TermId s = p.s_var < 0 ? p.s_id : kNoTermId;
  TermId pp = p.p_var < 0 ? p.p_id : kNoTermId;
  TermId o = p.o_var < 0 ? p.o_id : kNoTermId;
  double est = static_cast<double>(graph.EstimateMatch(s, pp, o));
  const rdf::GraphStats& gs = graph.Stats();
  const rdf::PredicateStats* ps =
      pp != kNoTermId ? gs.ForPredicate(pp) : nullptr;
  auto narrow = [&est](uint64_t distinct) {
    if (distinct > 1) est /= static_cast<double>(distinct);
  };
  if (s_bound) narrow(ps != nullptr ? ps->distinct_subjects
                                    : gs.distinct_subjects);
  if (p_bound) narrow(gs.distinct_predicates);
  if (o_bound) narrow(ps != nullptr ? ps->distinct_objects
                                    : gs.distinct_objects);
  return est;
}

double Score(const rdf::Graph& graph, const CompiledPattern& p,
             const std::set<int>& bound, bool calibrated) {
  if (!calibrated) return LegacyScore(graph, p, bound);
  return CalibratedRowEstimate(
      graph, p, p.s_var >= 0 && bound.count(p.s_var) > 0,
      p.p_var >= 0 && bound.count(p.p_var) > 0,
      p.o_var >= 0 && bound.count(p.o_var) > 0);
}

void MarkBound(const CompiledPattern& p, std::set<int>* bound) {
  if (p.s_var >= 0) bound->insert(p.s_var);
  if (p.p_var >= 0) bound->insert(p.p_var);
  if (p.o_var >= 0) bound->insert(p.o_var);
}

// Extends `row` with triple `t` under pattern `p` (re-checking
// same-variable positions, e.g. ?x p ?x); appends to `*out` on success.
// Returns false only on a conflict.
inline void ExtendRow(const CompiledPattern& p, const Binding& row,
                      const rdf::TripleId& t, std::vector<Binding>* out) {
  Binding extended = row;
  bool ok = true;
  auto bind = [&](int var, TermId value) {
    if (var < 0) return;
    if (extended[var] != kNoTermId && extended[var] != value) {
      ok = false;
      return;
    }
    extended[var] = value;
  };
  bind(p.s_var, t.s);
  if (ok) bind(p.p_var, t.p);
  if (ok) bind(p.o_var, t.o);
  if (ok) out->push_back(std::move(extended));
}

// Extends every row in [begin, end) of `rows` through `p`, appending the
// results (in row order) to `*out`. Returns the number of index rows
// enumerated. When `ctx` is set, polls it every kCheckEveryRows enumerated
// rows and abandons the remaining range once it trips (the caller turns the
// trip into a typed Status; the partial output is discarded).
size_t ExtendRange(const rdf::Graph& graph, const CompiledPattern& p,
                   const std::vector<Binding>& rows, size_t begin, size_t end,
                   const QueryContext* ctx, std::vector<Binding>* out) {
  size_t scanned = 0;
  bool stopped = false;
  for (size_t r = begin; r < end && !stopped; ++r) {
    const Binding& row = rows[r];
    TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
    TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
    TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
    graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
      if (stopped) return;  // drain the scan without extending
      ++scanned;
      if (ctx != nullptr && scanned % kCheckEveryRows == 0 &&
          ctx->ShouldStop()) {
        stopped = true;
        return;
      }
      ExtendRow(p, row, t, out);
    });
  }
  return scanned;
}

// ---- order-preserving hash join ------------------------------------------
//
// Build once: scan the pattern's index range (constants narrowed) and
// bucket every triple by its join-key lane value(s). Probe many: each input
// row looks its key up and extends through the bucket entries in stored
// order. Byte-identity with the per-row NLJ follows from two facts: (a) the
// probe perm — ChoosePerm over constants plus key lanes — puts all of them
// in a complete prefix, so a row's NLJ range holds exactly its matches in
// that perm's sort order; (b) the build scans a permutation whose free-lane
// order agrees with the probe perm (the probe perm itself when two or more
// lanes are free, any perm — so the cheapest constant-prefixed one — when
// at most one lane is free, since a single free lane sorts identically in
// every permutation). Restricting one sorted scan to a bucket preserves
// relative order, so bucket order == per-row NLJ range order.

// Per-pattern hash strategy decision, taken against the boundness of the
// first input row (rows that deviate fall back to a per-row index scan).
struct HashPlan {
  bool use_hash = false;
  bool key_s = false, key_p = false, key_o = false;  // bound-variable lanes
  rdf::Graph::Perm build_perm = rdf::Graph::kPermSPO;
  size_t build_width = 0;  // index rows the build scan will enumerate
};

HashPlan PlanHash(const rdf::Graph& graph, const CompiledPattern& p,
                  const std::vector<Binding>& rows, JoinStrategy strategy) {
  HashPlan plan;
  if (strategy == JoinStrategy::kNestedLoop || rows.empty()) return plan;
  const Binding& first = rows.front();
  plan.key_s = p.s_var >= 0 && first[p.s_var] != kNoTermId;
  plan.key_p = p.p_var >= 0 && first[p.p_var] != kNoTermId;
  plan.key_o = p.o_var >= 0 && first[p.o_var] != kNoTermId;
  // No bound join variable -> no hash key; nothing to probe with.
  if (!plan.key_s && !plan.key_p && !plan.key_o) return plan;

  const bool s_const = p.s_var < 0, p_const = p.p_var < 0,
             o_const = p.o_var < 0;
  const int free_lanes = (p.s_var >= 0 && !plan.key_s ? 1 : 0) +
                         (p.p_var >= 0 && !plan.key_p ? 1 : 0) +
                         (p.o_var >= 0 && !plan.key_o ? 1 : 0);
  // See the order argument above: with >= 2 free lanes the build must scan
  // the probe perm itself; with <= 1 it may scan the constant-prefixed perm.
  if (free_lanes >= 2) {
    plan.build_perm = rdf::Graph::ChoosePerm(
        s_const || plan.key_s, p_const || plan.key_p, o_const || plan.key_o);
  } else {
    plan.build_perm = rdf::Graph::ChoosePerm(s_const, p_const, o_const);
  }
  plan.build_width = graph.EstimateInPerm(
      plan.build_perm, s_const ? p.s_id : kNoTermId,
      p_const ? p.p_id : kNoTermId, o_const ? p.o_id : kNoTermId);

  if (strategy == JoinStrategy::kHash) {
    plan.use_hash = true;
    return plan;
  }
  // Adaptive: hash only when the one-off build is decisively cheaper than
  // the per-row scans it replaces.
  if (rows.size() < kHashMinRows) return plan;
  const double per_row = CalibratedRowEstimate(graph, p, plan.key_s,
                                               plan.key_p, plan.key_o);
  plan.use_hash = static_cast<double>(plan.build_width) * kHashBuildFactor <=
                  static_cast<double>(rows.size()) * per_row;
  return plan;
}

// Join key: the key-lane values in (s, p, o) order, kNoTermId elsewhere.
struct HashKey {
  TermId k[3];
  friend bool operator==(const HashKey& x, const HashKey& y) {
    return x.k[0] == y.k[0] && x.k[1] == y.k[1] && x.k[2] == y.k[2];
  }
};

struct HashKeyHash {
  size_t operator()(const HashKey& key) const {
    uint64_t h = static_cast<uint64_t>(key.k[0]) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(key.k[1]) * 0xC2B2AE3D27D4EB4Full + (h << 6);
    h ^= static_cast<uint64_t>(key.k[2]) * 0x165667B19E3779F9ull + (h >> 3);
    return static_cast<size_t>(h);
  }
};

using HashTable =
    std::unordered_map<HashKey, std::vector<rdf::TripleId>, HashKeyHash>;

// Builds the bucket table by one scan of `plan.build_perm`. Bucket vectors
// keep scan order (the order-preservation invariant). The context check is
// the *counted* kind — the build is a real stage that a deadline must be
// able to trip deterministically.
Status BuildHashTable(const rdf::Graph& graph, const CompiledPattern& p,
                      const HashPlan& plan, const QueryContext* ctx,
                      HashTable* table, size_t* scanned) {
  Status st = Status::OK();
  graph.ForEachInPerm(
      plan.build_perm, p.s_var < 0 ? p.s_id : kNoTermId,
      p.p_var < 0 ? p.p_id : kNoTermId, p.o_var < 0 ? p.o_id : kNoTermId,
      [&](const rdf::TripleId& t) {
        if (!st.ok()) return;  // drain the scan without inserting
        ++*scanned;
        if (ctx != nullptr && *scanned % kCheckEveryRows == 0) {
          Status check = ctx->Check("hash-build");
          if (!check.ok()) {
            st = check;
            return;
          }
        }
        HashKey key{{plan.key_s ? t.s : kNoTermId,
                     plan.key_p ? t.p : kNoTermId,
                     plan.key_o ? t.o : kNoTermId}};
        (*table)[key].push_back(t);
      });
  return st;
}

// Probes rows [begin, end) against `table`, appending extensions in row
// order. Rows whose boundness deviates from the planned key lanes (possible
// after OPTIONAL / UNION upstream) fall back to a per-row index scan, which
// enumerates that row's matches in the identical order. Returns the number
// of index rows enumerated by fallbacks; bucket entries probed are counted
// into *probe_hits.
size_t ProbeHashRange(const rdf::Graph& graph, const CompiledPattern& p,
                      const HashPlan& plan, const HashTable& table,
                      const std::vector<Binding>& rows, size_t begin,
                      size_t end, const QueryContext* ctx,
                      std::vector<Binding>* out, size_t* probe_hits) {
  size_t fallback_scanned = 0;
  bool stopped = false;
  for (size_t r = begin; r < end && !stopped; ++r) {
    const Binding& row = rows[r];
    const bool s_bound = p.s_var >= 0 && row[p.s_var] != kNoTermId;
    const bool p_bound = p.p_var >= 0 && row[p.p_var] != kNoTermId;
    const bool o_bound = p.o_var >= 0 && row[p.o_var] != kNoTermId;
    if (s_bound == plan.key_s && p_bound == plan.key_p &&
        o_bound == plan.key_o) {
      HashKey key{{plan.key_s ? row[p.s_var] : kNoTermId,
                   plan.key_p ? row[p.p_var] : kNoTermId,
                   plan.key_o ? row[p.o_var] : kNoTermId}};
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const rdf::TripleId& t : it->second) {
        ++*probe_hits;
        if (ctx != nullptr && *probe_hits % kCheckEveryRows == 0 &&
            ctx->ShouldStop()) {
          stopped = true;
          break;
        }
        ExtendRow(p, row, t, out);
      }
    } else {
      TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
      TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
      TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
      graph.ForEachMatch(s, pp, o, [&](const rdf::TripleId& t) {
        if (stopped) return;
        ++fallback_scanned;
        if (ctx != nullptr && fallback_scanned % kCheckEveryRows == 0 &&
            ctx->ShouldStop()) {
          stopped = true;
          return;
        }
        ExtendRow(p, row, t, out);
      });
    }
  }
  return fallback_scanned;
}

}  // namespace

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, const JoinOptions& opts,
               std::vector<Binding>* rows) {
  for (const CompiledPattern& p : patterns) {
    if (p.impossible) {
      rows->clear();
      return Status::OK();
    }
  }
  for (Binding& b : *rows) {
    if (b.size() < slot_count) b.resize(slot_count, kNoTermId);
  }

  // Track each pattern's position in the source BGP so the chosen join
  // order is reportable.
  std::vector<int> source_index(patterns.size());
  std::iota(source_index.begin(), source_index.end(), 0);

  Tracer* tracer = opts.ctx != nullptr ? opts.ctx->tracer() : nullptr;

  // Plan-cache replay: apply a previously chosen order without re-running
  // the greedy reorderer. Only a valid permutation of the pattern count is
  // trusted — anything else (stale entry shape, corrupted data) falls back
  // to the normal path below.
  bool replayed = false;
  if (opts.replay_order != nullptr &&
      opts.replay_order->size() == patterns.size()) {
    std::vector<CompiledPattern> ordered;
    std::vector<int> ordered_source;
    ordered.reserve(patterns.size());
    ordered_source.reserve(patterns.size());
    std::vector<bool> used(patterns.size(), false);
    bool valid = true;
    for (int src : *opts.replay_order) {
      if (src < 0 || static_cast<size_t>(src) >= patterns.size() ||
          used[src]) {
        valid = false;
        break;
      }
      used[src] = true;
      ordered.push_back(patterns[src]);
      ordered_source.push_back(src);
    }
    if (valid) {
      TraceSpan plan_span(tracer, "plan");
      plan_span.Arg("patterns", static_cast<uint64_t>(patterns.size()));
      plan_span.Arg("replayed", true);
      patterns = std::move(ordered);
      source_index = std::move(ordered_source);
      replayed = true;
    }
  }

  if (!replayed && reorder && patterns.size() > 1) {
    TraceSpan plan_span(tracer, "plan");
    plan_span.Arg("patterns", static_cast<uint64_t>(patterns.size()));
    plan_span.Arg("calibrated", opts.calibrated_estimates);
    // Seed "bound" with slots already bound in the incoming rows.
    std::set<int> bound;
    if (!rows->empty()) {
      const Binding& first = rows->front();
      for (size_t i = 0; i < first.size(); ++i) {
        if (first[i] != kNoTermId) bound.insert(static_cast<int>(i));
      }
    }
    std::vector<CompiledPattern> ordered;
    std::vector<int> ordered_source;
    std::vector<bool> used(patterns.size(), false);
    for (size_t step = 0; step < patterns.size(); ++step) {
      double best = -1;
      size_t best_i = 0;
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (used[i]) continue;
        double s = Score(graph, patterns[i], bound, opts.calibrated_estimates);
        if (best < 0 || s < best) {
          best = s;
          best_i = i;
        }
      }
      used[best_i] = true;
      ordered.push_back(patterns[best_i]);
      ordered_source.push_back(source_index[best_i]);
      MarkBound(patterns[best_i], &bound);
    }
    patterns = std::move(ordered);
    source_index = std::move(ordered_source);
  }

  if (opts.capture_order != nullptr) {
    opts.capture_order->assign(source_index.begin(), source_index.end());
  }

  const int threads = std::max(1, opts.threads);
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    // One typed check per join stage; scans poll the cheap flag inline.
    if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
    const CompiledPattern& p = patterns[pi];
    TraceSpan join_span(tracer, "bgp-join");
    join_span.Arg("pattern", static_cast<int64_t>(source_index[pi]));
    join_span.Arg("input_rows", static_cast<uint64_t>(rows->size()));
    std::vector<Binding> next;
    next.reserve(rows->size());
    size_t scanned = 0;
    char strategy_used = 'N';
    Status build_status = Status::OK();

    const HashPlan plan = PlanHash(graph, p, *rows, opts.strategy);
    if (plan.use_hash) {
      strategy_used = 'H';
      HashTable table;
      size_t build_scanned = 0;
      {
        TraceSpan build_span(tracer, "hash-build");
        build_status =
            BuildHashTable(graph, p, plan, opts.ctx, &table, &build_scanned);
        build_span.Arg("build_rows", static_cast<uint64_t>(build_scanned));
      }
      scanned += build_scanned;
      if (opts.stats != nullptr) {
        ++opts.stats->hash_builds;
        opts.stats->hash_build_rows += build_scanned;
      }
      if (build_status.ok()) {
        size_t probe_hits = 0;
        if (threads > 1 && rows->size() >= 2 * kMinMorselRows) {
          // Morsel-parallel probe; concatenation in morsel order keeps the
          // output byte-identical to the serial probe (and thus to NLJ).
          auto morsels =
              Morsels(rows->size(),
                      static_cast<size_t>(threads) * kMorselsPerThread,
                      kMinMorselRows);
          std::vector<std::vector<Binding>> parts(morsels.size());
          std::vector<size_t> part_scanned(morsels.size(), 0);
          std::vector<size_t> part_hits(morsels.size(), 0);
          ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
            if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
            auto [lo, hi] = morsels[m];
            part_scanned[m] =
                ProbeHashRange(graph, p, plan, table, *rows, lo, hi, opts.ctx,
                               &parts[m], &part_hits[m]);
          });
          for (size_t m = 0; m < morsels.size(); ++m) {
            scanned += part_scanned[m];
            probe_hits += part_hits[m];
            for (Binding& b : parts[m]) next.push_back(std::move(b));
          }
          if (opts.stats != nullptr) {
            opts.stats->morsel_count += morsels.size();
          }
        } else {
          scanned += ProbeHashRange(graph, p, plan, table, *rows, 0,
                                    rows->size(), opts.ctx, &next,
                                    &probe_hits);
        }
        if (opts.stats != nullptr) opts.stats->hash_probe_hits += probe_hits;
        join_span.Arg("probe_hits", static_cast<uint64_t>(probe_hits));
      }
    } else if (threads > 1 && rows->size() == 1) {
      // Single seed row (the common first pattern): materialize the index
      // range once and split *it* into morsels.
      const Binding& row = rows->front();
      TermId s = p.s_var < 0 ? p.s_id : row[p.s_var];
      TermId pp = p.p_var < 0 ? p.p_id : row[p.p_var];
      TermId o = p.o_var < 0 ? p.o_id : row[p.o_var];
      std::vector<rdf::TripleId> matches = graph.Match(s, pp, o);
      scanned = matches.size();
      auto morsels = Morsels(matches.size(),
                             static_cast<size_t>(threads) * kMorselsPerThread,
                             kMinMorselRows);
      if (morsels.size() <= 1) {
        for (size_t i = 0; i < matches.size(); ++i) {
          if (opts.ctx != nullptr && (i + 1) % kCheckEveryRows == 0 &&
              opts.ctx->ShouldStop()) {
            break;
          }
          ExtendRow(p, row, matches[i], &next);
        }
      } else {
        std::vector<std::vector<Binding>> parts(morsels.size());
        ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
          auto [lo, hi] = morsels[m];
          parts[m].reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            if (opts.ctx != nullptr && (i - lo + 1) % kCheckEveryRows == 0 &&
                opts.ctx->ShouldStop()) {
              return;  // abandon this morsel; caller reports the trip
            }
            ExtendRow(p, row, matches[i], &parts[m]);
          }
        });
        for (std::vector<Binding>& part : parts) {
          for (Binding& b : part) next.push_back(std::move(b));
        }
        if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
      }
    } else if (threads > 1 && rows->size() >= 2 * kMinMorselRows) {
      // Morsel-parallel extension over the incoming rows; concatenation in
      // morsel order keeps the output byte-identical to the serial join.
      auto morsels = Morsels(rows->size(),
                             static_cast<size_t>(threads) * kMorselsPerThread,
                             kMinMorselRows);
      std::vector<std::vector<Binding>> parts(morsels.size());
      std::vector<size_t> part_scanned(morsels.size(), 0);
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        if (opts.ctx != nullptr && opts.ctx->ShouldStop()) return;
        auto [lo, hi] = morsels[m];
        part_scanned[m] =
            ExtendRange(graph, p, *rows, lo, hi, opts.ctx, &parts[m]);
      });
      for (size_t m = 0; m < morsels.size(); ++m) {
        scanned += part_scanned[m];
        for (Binding& b : parts[m]) next.push_back(std::move(b));
      }
      if (opts.stats != nullptr) opts.stats->morsel_count += morsels.size();
    } else {
      scanned = ExtendRange(graph, p, *rows, 0, rows->size(), opts.ctx,
                            &next);
    }

    if (opts.stats != nullptr) {
      ++opts.stats->bgp_patterns;
      opts.stats->rows_scanned.push_back(scanned);
      opts.stats->join_order.push_back(source_index[pi]);
      opts.stats->join_strategy.push_back(strategy_used);
    }
    join_span.Arg("strategy", strategy_used == 'H' ? "hash" : "nested-loop");
    join_span.Arg("rows_scanned", static_cast<uint64_t>(scanned));
    join_span.Arg("output_rows", static_cast<uint64_t>(next.size()));
    // A tripped hash build already carries the typed status from its
    // counted check; surface it after the stats are recorded.
    RDFA_RETURN_NOT_OK(build_status);
    // A scan abandoned mid-pattern left `next` partial: surface the typed
    // status now rather than joining the next pattern against garbage.
    if (opts.ctx != nullptr) RDFA_RETURN_NOT_OK(opts.ctx->Check("bgp-join"));
    *rows = std::move(next);
    if (rows->empty()) return Status::OK();
  }
  return Status::OK();
}

Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, std::vector<Binding>* rows) {
  return JoinBgp(graph, std::move(patterns), slot_count, reorder,
                 JoinOptions{}, rows);
}

}  // namespace rdfa::sparql
