#include "sparql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace rdfa::sparql {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto err = [&](const std::string& msg) {
    return Status::ParseError("sparql line " + std::to_string(line) + ": " +
                              msg);
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '<') {
      // Either an IRI ref or a comparison operator. IRI refs contain no
      // spaces and close with '>'; "<=" and "< " are operators.
      if (i + 1 < text.size() && (text[i + 1] == '=')) {
        out.push_back({TokenKind::kPunct, "<=", line});
        i += 2;
        continue;
      }
      size_t close = text.find('>', i + 1);
      size_t space = text.find_first_of(" \t\n", i + 1);
      if (close != std::string_view::npos &&
          (space == std::string_view::npos || close < space)) {
        out.push_back(
            {TokenKind::kIriRef, std::string(text.substr(i + 1, close - i - 1)),
             line});
        i = close + 1;
        continue;
      }
      out.push_back({TokenKind::kPunct, "<", line});
      ++i;
      continue;
    }
    if (c == '>') {
      if (i + 1 < text.size() && text[i + 1] == '=') {
        out.push_back({TokenKind::kPunct, ">=", line});
        i += 2;
      } else {
        out.push_back({TokenKind::kPunct, ">", line});
        ++i;
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < text.size() && text[i + 1] == '=') {
        out.push_back({TokenKind::kPunct, "!=", line});
        i += 2;
      } else {
        out.push_back({TokenKind::kPunct, "!", line});
        ++i;
      }
      continue;
    }
    if (c == '&' || c == '|') {
      if (i + 1 < text.size() && text[i + 1] == c) {
        out.push_back({TokenKind::kPunct, std::string(2, c), line});
        i += 2;
        continue;
      }
      return err(std::string("stray '") + c + "'");
    }
    if (c == '^') {
      if (i + 1 < text.size() && text[i + 1] == '^') {
        out.push_back({TokenKind::kPunct, "^^", line});
        i += 2;
      } else {
        out.push_back({TokenKind::kPunct, "^", line});
        ++i;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      if (i == start) return err("empty variable name");
      out.push_back(
          {TokenKind::kVar, std::string(text.substr(start, i - start)), line});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      std::string raw;
      while (j < text.size() && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < text.size()) {
          raw += text[j];
          raw += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') return err("newline inside string literal");
        raw += text[j];
        ++j;
      }
      if (j >= text.size()) return err("unterminated string literal");
      out.push_back({TokenKind::kString, UnescapeLiteral(raw), line});
      i = j + 1;
      continue;
    }
    if (c == '@') {
      size_t start = ++i;
      while (i < text.size() && (IsNameChar(text[i]))) ++i;
      out.push_back({TokenKind::kLangTag,
                     std::string(text.substr(start, i - start)), line});
      continue;
    }
    if (c == '_' && i + 1 < text.size() && text[i + 1] == ':') {
      size_t start = i + 2;
      size_t j = start;
      while (j < text.size() && IsNameChar(text[j])) ++j;
      out.push_back(
          {TokenKind::kBlank, std::string(text.substr(start, j - start)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool has_dot = false;
      while (j < text.size()) {
        if (std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        } else if (text[j] == '.' && !has_dot && j + 1 < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
          has_dot = true;
          ++j;
        } else {
          break;
        }
      }
      out.push_back({has_dot ? TokenKind::kDecimal : TokenKind::kInteger,
                     std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      // Identifier / keyword / prefixed name. May contain one ':' plus a
      // local part with dots (e.g. ex:v1.2 is rare; keep simple names).
      size_t j = i;
      while (j < text.size() && IsNameChar(text[j])) ++j;
      std::string name(text.substr(i, j - i));
      if (j < text.size() && text[j] == ':') {
        // prefixed name: consume ':' and local part.
        ++j;
        size_t local_start = j;
        while (j < text.size() && IsNameChar(text[j])) ++j;
        name += ":" + std::string(text.substr(local_start, j - local_start));
      }
      out.push_back({TokenKind::kPName, std::move(name), line});
      i = j;
      continue;
    }
    if (c == ':') {
      // Default-prefix name ":local".
      size_t j = i + 1;
      while (j < text.size() && IsNameChar(text[j])) ++j;
      out.push_back(
          {TokenKind::kPName, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    static const std::string kSingles = "{}().;,*/+-=";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  out.push_back({TokenKind::kEof, "", line});
  return out;
}

}  // namespace rdfa::sparql
