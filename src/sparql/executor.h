#ifndef RDFA_SPARQL_EXECUTOR_H_
#define RDFA_SPARQL_EXECUTOR_H_

#include <string_view>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/namespaces.h"
#include "sparql/ast.h"
#include "sparql/bgp.h"
#include "sparql/exec_stats.h"
#include "sparql/expr_eval.h"
#include "sparql/result_table.h"

namespace rdfa::sparql {

/// Evaluates parsed queries against one graph.
///
/// The graph is held mutably because evaluation may intern freshly computed
/// literals (BIND, aggregates, projection expressions) into its term table;
/// no triples are ever added by SELECT/ASK evaluation.
class Executor {
 public:
  /// `reorder_joins` toggles the greedy selectivity-based BGP reordering;
  /// `push_filters` toggles early filter application once a filter's
  /// variables are certainly bound. Both are ablation knobs (defaults on).
  /// `threads` is the morsel-parallelism budget (<=1 = serial; parallel
  /// results are byte-identical to serial, see DESIGN.md threading model).
  explicit Executor(rdf::Graph* graph, bool reorder_joins = true,
                    bool push_filters = true, int threads = 1)
      : graph_(graph),
        reorder_joins_(reorder_joins),
        push_filters_(push_filters),
        threads_(threads < 1 ? 1 : threads) {}

  /// Adjusts the thread budget for subsequent queries.
  void set_thread_count(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int thread_count() const { return threads_; }

  /// Join-strategy override for subsequent queries: kAdaptive (default)
  /// chooses per pattern between index NLJ and the order-preserving hash
  /// join; kNestedLoop / kHash force one path. Any choice yields
  /// byte-identical results — this is a performance/ablation knob.
  void set_join_strategy(JoinStrategy strategy) { join_strategy_ = strategy; }
  JoinStrategy join_strategy() const { return join_strategy_; }

  /// Toggles the GraphStats-calibrated cardinality model in the BGP
  /// reorderer (default on); off falls back to the legacy range-width
  /// heuristic. Ablation knob — result bytes never change.
  void set_calibrated_estimates(bool on) { calibrated_estimates_ = on; }
  bool calibrated_estimates() const { return calibrated_estimates_; }

  /// Planner-v2 DP join ordering (default off): replaces the greedy
  /// reorderer with an exhaustive subset-DP search for top-level BGPs of up
  /// to kMaxDpPatterns patterns, and annotates each run with an explainable
  /// plan (stats().plan_shapes). Result bytes for a given plan are
  /// unchanged; only join order / permutation choices move.
  void set_use_dp(bool on) { use_dp_ = on; }
  bool use_dp() const { return use_dp_; }

  /// Sideways information passing inside planner-v2 merge steps (default
  /// on): off decodes merge ranges linearly instead of seeking past
  /// non-candidate keys — the bench --ablate-sip baseline. Identical result
  /// bytes either way.
  void set_sip(bool on) { sip_ = on; }
  bool sip() const { return sip_; }

  /// Installs the deadline/cancellation context for subsequent queries
  /// (copies share cancellation state with the caller's handle). The
  /// default context is unlimited. A tripped context unwinds evaluation to
  /// a DeadlineExceeded/Cancelled Status at the next morsel or join-stage
  /// boundary; stats() then holds the partial ExecStats of the aborted run
  /// with `aborted`/`abort_stage` set.
  void set_query_context(QueryContext ctx) { ctx_ = std::move(ctx); }
  const QueryContext& query_context() const { return ctx_; }

  /// Statistics of the most recent Execute() call (Select/Ask/... called
  /// directly accumulate into the same struct; Execute resets it first).
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Plan-cache hooks. ReplayJoinOrders installs previously captured BGP
  /// join orders — one vector per BGP join run, consumed positionally in
  /// evaluation order by subsequent Execute() calls, bypassing the greedy
  /// reorderer (a shape mismatch falls back to it). CaptureJoinOrders
  /// records the orders an execution actually chooses into `*out`. Orders
  /// affect join cost only, never result bytes; both hooks accept nullptr
  /// to detach. The pointees must outlive the Execute() calls.
  void ReplayJoinOrders(const std::vector<std::vector<int>>* orders) {
    replay_orders_ = orders;
  }
  void CaptureJoinOrders(std::vector<std::vector<int>>* out) {
    if (out != nullptr) out->clear();
    capture_orders_ = out;
  }

  Result<ResultTable> Select(const SelectQuery& query);
  Result<bool> Ask(const AskQuery& query);
  /// Instantiates the CONSTRUCT template into `*out`; returns the number of
  /// triples added.
  Result<size_t> Construct(const ConstructQuery& query, rdf::Graph* out);

  /// DESCRIBE: writes the Concise Bounded Description of every named
  /// resource (and every binding of the DESCRIBE variables) into `*out`;
  /// returns the number of triples added.
  Result<size_t> Describe(const DescribeQuery& query, rdf::Graph* out);

  /// Dispatches on the query form. ASK yields a 1x1 table with column "ask".
  Result<ResultTable> Execute(const ParsedQuery& query);

  /// EXPLAIN: plans the query's top-level BGP runs without executing
  /// anything (no data rows are touched, only GraphStats and the term
  /// table). Each contiguous run of triple patterns in the WHERE clause is
  /// compiled, ordered exactly as Execute() would order it (DP search,
  /// greedy reorderer, or source order, per the executor's knobs), and
  /// annotated into a plan shape. Returns a JSON object:
  ///   {"form":"select","use_dp":bool,"strategy":"adaptive","threads":N,
  ///    "bgps":[{"dp":...,"head_slot":...,"steps":[...]}]}
  /// Freezes the graph's indexes (same eager build as Execute).
  std::string ExplainJson(const ParsedQuery& query);

  /// Triples added/removed by an update.
  struct UpdateStats {
    size_t inserted = 0;
    size_t deleted = 0;
  };

  /// Applies a SPARQL Update request to the graph. For DELETE WHERE /
  /// DELETE-INSERT-WHERE, all bindings are computed first, then deletes
  /// apply before inserts (SPARQL 1.1 semantics). Templates instantiated
  /// with unbound variables are skipped.
  Result<UpdateStats> Update(const UpdateRequest& request);

 private:
  Result<std::vector<Binding>> EvalPattern(const GraphPattern& pattern,
                                           VarTable* vars,
                                           std::vector<Binding> seed);

  /// Upper bound on BGP join runs captured per query: keeps plan entries
  /// for EXISTS-heavy queries (one run per probed row) from ballooning.
  /// Runs past the cap just re-run the greedy reorderer.
  static constexpr size_t kMaxCachedBgpOrders = 64;

  rdf::Graph* graph_;
  bool reorder_joins_;
  bool push_filters_;
  int threads_ = 1;
  JoinStrategy join_strategy_ = JoinStrategy::kAdaptive;
  bool calibrated_estimates_ = true;
  bool use_dp_ = false;
  bool sip_ = true;
  ExecStats stats_;
  QueryContext ctx_;
  const std::vector<std::vector<int>>* replay_orders_ = nullptr;
  std::vector<std::vector<int>>* capture_orders_ = nullptr;
  size_t bgp_seq_ = 0;
};

/// Parses and executes `text` in one call.
Result<ResultTable> ExecuteQueryString(
    rdf::Graph* graph, std::string_view text,
    const rdf::PrefixMap* prefixes = nullptr);

/// Parses and applies an update request in one call.
Result<Executor::UpdateStats> ExecuteUpdateString(
    rdf::Graph* graph, std::string_view text,
    const rdf::PrefixMap* prefixes = nullptr);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_EXECUTOR_H_
