#include "sparql/results_io.h"

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::sparql {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string XmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonCell(const rdf::Term& t) {
  std::string out = "{";
  if (t.is_iri()) {
    out += "\"type\":\"uri\",\"value\":\"" + JsonEscape(t.lexical()) + "\"";
  } else if (t.is_blank()) {
    out += "\"type\":\"bnode\",\"value\":\"" + JsonEscape(t.lexical()) + "\"";
  } else {
    out += "\"type\":\"literal\",\"value\":\"" + JsonEscape(t.lexical()) + "\"";
    if (!t.lang().empty()) {
      out += ",\"xml:lang\":\"" + JsonEscape(t.lang()) + "\"";
    } else if (!t.datatype().empty()) {
      out += ",\"datatype\":\"" + JsonEscape(t.datatype()) + "\"";
    }
  }
  return out + "}";
}

std::string CsvCell(const rdf::Term& t) {
  if (ResultTable::IsUnbound(t)) return "";
  const std::string& v = t.lexical();
  if (v.find_first_of(",\"\n\r") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  return out + "\"";
}

}  // namespace

std::string WriteResultsJson(const ResultTable& table) {
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += "\"" + JsonEscape(table.columns()[c]) + "\"";
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    bool first = true;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const rdf::Term& t = table.at(r, c);
      if (ResultTable::IsUnbound(t)) continue;  // omitted, per spec
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(table.columns()[c]) + "\":" + JsonCell(t);
    }
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string WriteResultsCsv(const ResultTable& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += table.columns()[c];
  }
  out += "\r\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      out += CsvCell(table.at(r, c));
    }
    out += "\r\n";
  }
  return out;
}

std::string WriteResultsTsv(const ResultTable& table) {
  // ResultTable::ToTsv already emits exactly the W3C TSV shape (header of
  // ?vars, N-Triples term syntax, empty cells for unbound); this alias
  // exists so the serialization registry treats TSV like the other W3C
  // formats and the two callers can never drift apart.
  return table.ToTsv();
}

std::string WriteResultsXml(const ResultTable& table) {
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n  <head>\n";
  for (const std::string& col : table.columns()) {
    out += "    <variable name=\"" + XmlEscape(col) + "\"/>\n";
  }
  out += "  </head>\n  <results>\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out += "    <result>\n";
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const rdf::Term& t = table.at(r, c);
      if (ResultTable::IsUnbound(t)) continue;
      out += "      <binding name=\"" + XmlEscape(table.columns()[c]) + "\">";
      if (t.is_iri()) {
        out += "<uri>" + XmlEscape(t.lexical()) + "</uri>";
      } else if (t.is_blank()) {
        out += "<bnode>" + XmlEscape(t.lexical()) + "</bnode>";
      } else if (!t.lang().empty()) {
        out += "<literal xml:lang=\"" + XmlEscape(t.lang()) + "\">" +
               XmlEscape(t.lexical()) + "</literal>";
      } else if (!t.datatype().empty()) {
        out += "<literal datatype=\"" + XmlEscape(t.datatype()) + "\">" +
               XmlEscape(t.lexical()) + "</literal>";
      } else {
        out += "<literal>" + XmlEscape(t.lexical()) + "</literal>";
      }
      out += "</binding>\n";
    }
    out += "    </result>\n";
  }
  out += "  </results>\n</sparql>\n";
  return out;
}

}  // namespace rdfa::sparql
