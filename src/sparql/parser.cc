#include "sparql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "sparql/lexer.h"

namespace rdfa::sparql {

namespace {

using rdf::Term;

const char* const kBuiltinCalls[] = {
    "BOUND",    "STR",       "LANG",      "DATATYPE",  "YEAR",
    "MONTH",    "DAY",       "HOURS",     "MINUTES",   "SECONDS",
    "ABS",      "CEIL",      "FLOOR",     "ROUND",     "CONCAT",
    "STRLEN",   "UCASE",     "LCASE",     "CONTAINS",  "STRSTARTS",
    "STRENDS",  "REGEX",     "IF",        "COALESCE",  "ISIRI",
    "ISURI",    "ISBLANK",   "ISLITERAL", "ISNUMERIC", "SUBSTR",
    "STRBEFORE", "STRAFTER", "REPLACE",   "LANGMATCHES", "IRI",
    "URI",
};

bool IsBuiltinCall(const std::string& upper) {
  for (const char* name : kBuiltinCalls) {
    if (upper == name) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const rdf::PrefixMap* extra)
      : tokens_(std::move(tokens)) {
    if (extra != nullptr) {
      for (const auto& [p, b] : extra->prefixes()) prefixes_.Register(p, b);
    }
  }

  Result<UpdateRequest> ParseUpdateRequest() {
    RDFA_RETURN_NOT_OK(ParsePrologue());
    UpdateRequest u;
    if (ConsumeKeyword("INSERT")) {
      if (ConsumeKeyword("DATA")) {
        u.kind = UpdateRequest::Kind::kInsertData;
        RDFA_ASSIGN_OR_RETURN(u.insert_template, ParseTripleTemplate());
        return FinishUpdate(std::move(u));
      }
      // INSERT { t } WHERE { p }
      u.kind = UpdateRequest::Kind::kModify;
      RDFA_ASSIGN_OR_RETURN(u.insert_template, ParseTripleTemplate());
      if (!ConsumeKeyword("WHERE")) return Err("expected WHERE after INSERT");
      RDFA_ASSIGN_OR_RETURN(u.where, ParseGroupGraphPattern());
      return FinishUpdate(std::move(u));
    }
    if (ConsumeKeyword("DELETE")) {
      if (ConsumeKeyword("DATA")) {
        u.kind = UpdateRequest::Kind::kDeleteData;
        RDFA_ASSIGN_OR_RETURN(u.delete_template, ParseTripleTemplate());
        return FinishUpdate(std::move(u));
      }
      if (ConsumeKeyword("WHERE")) {
        u.kind = UpdateRequest::Kind::kDeleteWhere;
        RDFA_ASSIGN_OR_RETURN(u.where, ParseGroupGraphPattern());
        // The template is the pattern's triples.
        for (const PatternElement& el : u.where.elements) {
          if (el.kind != PatternElement::Kind::kTriple) {
            return Err("DELETE WHERE supports plain triple patterns only");
          }
          u.delete_template.push_back(el.triple);
        }
        return FinishUpdate(std::move(u));
      }
      // DELETE { t } [INSERT { t }] WHERE { p }
      u.kind = UpdateRequest::Kind::kModify;
      RDFA_ASSIGN_OR_RETURN(u.delete_template, ParseTripleTemplate());
      if (ConsumeKeyword("INSERT")) {
        RDFA_ASSIGN_OR_RETURN(u.insert_template, ParseTripleTemplate());
      }
      if (!ConsumeKeyword("WHERE")) return Err("expected WHERE in DELETE");
      RDFA_ASSIGN_OR_RETURN(u.where, ParseGroupGraphPattern());
      return FinishUpdate(std::move(u));
    }
    return Err("expected INSERT or DELETE");
  }

  Result<ParsedQuery> Parse() {
    RDFA_RETURN_NOT_OK(ParsePrologue());
    ParsedQuery q;
    if (PeekKeyword("SELECT")) {
      q.form = ParsedQuery::Form::kSelect;
      RDFA_ASSIGN_OR_RETURN(q.select, ParseSelect());
    } else if (PeekKeyword("CONSTRUCT")) {
      q.form = ParsedQuery::Form::kConstruct;
      RDFA_ASSIGN_OR_RETURN(q.construct, ParseConstruct());
    } else if (PeekKeyword("ASK")) {
      q.form = ParsedQuery::Form::kAsk;
      Consume();
      RDFA_ASSIGN_OR_RETURN(q.ask.where, ParseGroupGraphPattern());
    } else if (PeekKeyword("DESCRIBE")) {
      q.form = ParsedQuery::Form::kDescribe;
      Consume();
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          q.describe.vars.push_back(Consume().text);
          continue;
        }
        if (Peek().kind == TokenKind::kIriRef ||
            Peek().kind == TokenKind::kPName) {
          // Bare keywords WHERE terminates the resource list.
          if (PeekKeyword("WHERE")) break;
          RDFA_ASSIGN_OR_RETURN(rdf::Term term, ParseTermToken());
          if (!term.is_iri()) return Err("DESCRIBE takes IRIs or variables");
          q.describe.resources.push_back(std::move(term));
          continue;
        }
        break;
      }
      if (q.describe.resources.empty() && q.describe.vars.empty()) {
        return Err("DESCRIBE needs at least one IRI or variable");
      }
      if (ConsumeKeyword("WHERE") || PeekPunct("{")) {
        RDFA_ASSIGN_OR_RETURN(q.describe.where, ParseGroupGraphPattern());
      } else if (!q.describe.vars.empty()) {
        return Err("DESCRIBE ?var needs a WHERE clause");
      }
    } else {
      return Err("expected SELECT, CONSTRUCT, ASK or DESCRIBE");
    }
    if (Peek().kind != TokenKind::kEof) {
      return Err("trailing input after query: '" + Peek().text + "'");
    }
    return q;
  }

 private:
  /// `{ triples }` of an update template, as plain triple patterns.
  Result<std::vector<TriplePattern>> ParseTripleTemplate() {
    RDFA_RETURN_NOT_OK(ExpectPunct("{"));
    GraphPattern gp;
    while (!PeekPunct("}")) {
      if (Peek().kind == TokenKind::kEof) return Err("unterminated template");
      RDFA_RETURN_NOT_OK(ParseTriplesSameSubject(&gp));
      if (!ConsumePunct(".")) {
        if (!PeekPunct("}")) return Err("expected '.' in template");
      }
    }
    RDFA_RETURN_NOT_OK(ExpectPunct("}"));
    std::vector<TriplePattern> out;
    for (const PatternElement& el : gp.elements) {
      if (el.kind != PatternElement::Kind::kTriple) {
        return Err("update templates allow plain triples only");
      }
      out.push_back(el.triple);
    }
    return out;
  }

  Result<UpdateRequest> FinishUpdate(UpdateRequest u) {
    if (Peek().kind != TokenKind::kEof) {
      return Err("trailing input after update: '" + Peek().text + "'");
    }
    return u;
  }

  // ---- token helpers -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Consume() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kPName && EqualsIgnoreCase(t.text, kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Consume();
    return true;
  }
  bool PeekPunct(std::string_view p, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kPunct && t.text == p;
  }
  bool ConsumePunct(std::string_view p) {
    if (!PeekPunct(p)) return false;
    Consume();
    return true;
  }
  Status ExpectPunct(std::string_view p) {
    if (!ConsumePunct(p)) {
      return Err("expected '" + std::string(p) + "', got '" + Peek().text +
                 "'");
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("sparql line " + std::to_string(Peek().line) +
                              ": " + msg);
  }

  std::string FreshVar() { return "_path" + std::to_string(fresh_counter_++); }

  // ---- prologue -------------------------------------------------------
  Status ParsePrologue() {
    while (PeekKeyword("PREFIX")) {
      Consume();
      const Token& name = Peek();
      if (name.kind != TokenKind::kPName || name.text.find(':') == std::string::npos) {
        // Also allow "p" then ":"? Lexer folds "p:" into one PName; the form
        // "PREFIX ex: <...>" yields PName "ex:" (empty local part).
        return Err("expected prefix name in PREFIX");
      }
      std::string prefix = name.text.substr(0, name.text.find(':'));
      Consume();
      const Token& iri = Peek();
      if (iri.kind != TokenKind::kIriRef) return Err("expected IRI in PREFIX");
      prefixes_.Register(prefix, iri.text);
      Consume();
    }
    return Status::OK();
  }

  // ---- terms ----------------------------------------------------------
  Result<Term> ExpandPName(const std::string& pname) {
    auto iri = prefixes_.Expand(pname);
    if (!iri.has_value()) return Err("unknown prefix in '" + pname + "'");
    return Term::Iri(*iri);
  }

  /// Parses a concrete RDF term (no variables).
  Result<Term> ParseTermToken() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIriRef: {
        Consume();
        return Term::Iri(t.text);
      }
      case TokenKind::kPName: {
        if (EqualsIgnoreCase(t.text, "true")) {
          Consume();
          return Term::Boolean(true);
        }
        if (EqualsIgnoreCase(t.text, "false")) {
          Consume();
          return Term::Boolean(false);
        }
        Consume();
        return ExpandPName(t.text);
      }
      case TokenKind::kBlank: {
        Consume();
        return Term::Blank(t.text);
      }
      case TokenKind::kInteger: {
        Consume();
        return Term::TypedLiteral(t.text, rdf::xsd::kInteger);
      }
      case TokenKind::kDecimal: {
        Consume();
        return Term::TypedLiteral(t.text, rdf::xsd::kDecimal);
      }
      case TokenKind::kString: {
        std::string lexical = t.text;
        Consume();
        if (Peek().kind == TokenKind::kLangTag) {
          std::string lang = Consume().text;
          return Term::LangLiteral(std::move(lexical), std::move(lang));
        }
        if (PeekPunct("^^")) {
          Consume();
          const Token& dt = Peek();
          if (dt.kind == TokenKind::kIriRef) {
            Consume();
            return Term::TypedLiteral(std::move(lexical), dt.text);
          }
          if (dt.kind == TokenKind::kPName) {
            Consume();
            RDFA_ASSIGN_OR_RETURN(Term dterm, ExpandPName(dt.text));
            return Term::TypedLiteral(std::move(lexical), dterm.lexical());
          }
          return Err("expected datatype IRI after ^^");
        }
        return Term::Literal(std::move(lexical));
      }
      default:
        return Err("expected an RDF term, got '" + t.text + "'");
    }
  }

  /// Variable or term.
  Result<NodePattern> ParseNode() {
    if (Peek().kind == TokenKind::kVar) {
      return NodePattern::Var(Consume().text);
    }
    RDFA_ASSIGN_OR_RETURN(Term term, ParseTermToken());
    return NodePattern::Const(std::move(term));
  }

  // ---- graph patterns ---------------------------------------------------
  Result<GraphPattern> ParseGroupGraphPattern() {
    RDFA_RETURN_NOT_OK(ExpectPunct("{"));
    GraphPattern gp;
    while (!PeekPunct("}")) {
      if (Peek().kind == TokenKind::kEof) return Err("unterminated '{'");
      if (ConsumeKeyword("FILTER")) {
        PatternElement el;
        el.kind = PatternElement::Kind::kFilter;
        RDFA_ASSIGN_OR_RETURN(el.filter, ParseBracketedOrCallExpr());
        gp.elements.push_back(std::move(el));
        ConsumePunct(".");
        continue;
      }
      if (ConsumeKeyword("OPTIONAL")) {
        PatternElement el;
        el.kind = PatternElement::Kind::kOptional;
        RDFA_ASSIGN_OR_RETURN(GraphPattern child, ParseGroupGraphPattern());
        el.child = std::make_shared<GraphPattern>(std::move(child));
        gp.elements.push_back(std::move(el));
        ConsumePunct(".");
        continue;
      }
      if (ConsumeKeyword("BIND")) {
        RDFA_RETURN_NOT_OK(ExpectPunct("("));
        PatternElement el;
        el.kind = PatternElement::Kind::kBind;
        RDFA_ASSIGN_OR_RETURN(el.bind_expr, ParseExpr());
        if (!ConsumeKeyword("AS")) return Err("expected AS in BIND");
        if (Peek().kind != TokenKind::kVar) return Err("expected var in BIND");
        el.bind_var = Consume().text;
        RDFA_RETURN_NOT_OK(ExpectPunct(")"));
        gp.elements.push_back(std::move(el));
        ConsumePunct(".");
        continue;
      }
      if (ConsumeKeyword("MINUS")) {
        PatternElement el;
        el.kind = PatternElement::Kind::kMinus;
        RDFA_ASSIGN_OR_RETURN(GraphPattern child, ParseGroupGraphPattern());
        el.child = std::make_shared<GraphPattern>(std::move(child));
        gp.elements.push_back(std::move(el));
        ConsumePunct(".");
        continue;
      }
      if (ConsumeKeyword("VALUES")) {
        PatternElement el;
        el.kind = PatternElement::Kind::kValues;
        if (Peek().kind != TokenKind::kVar) {
          return Err("only single-variable VALUES is supported");
        }
        el.values_var = Consume().text;
        RDFA_RETURN_NOT_OK(ExpectPunct("{"));
        while (!PeekPunct("}")) {
          RDFA_ASSIGN_OR_RETURN(Term term, ParseTermToken());
          el.values_terms.push_back(std::move(term));
        }
        RDFA_RETURN_NOT_OK(ExpectPunct("}"));
        gp.elements.push_back(std::move(el));
        ConsumePunct(".");
        continue;
      }
      if (PeekPunct("{")) {
        // Subselect or a grouped pattern (possibly lhs of UNION).
        if (PeekKeyword("SELECT", 1)) {
          Consume();  // '{'
          PatternElement el;
          el.kind = PatternElement::Kind::kSubSelect;
          RDFA_ASSIGN_OR_RETURN(SelectQuery sub, ParseSelect());
          el.sub_select = std::make_shared<SelectQuery>(std::move(sub));
          RDFA_RETURN_NOT_OK(ExpectPunct("}"));
          gp.elements.push_back(std::move(el));
          ConsumePunct(".");
          continue;
        }
        RDFA_ASSIGN_OR_RETURN(GraphPattern lhs, ParseGroupGraphPattern());
        if (ConsumeKeyword("UNION")) {
          PatternElement el;
          el.kind = PatternElement::Kind::kUnion;
          el.child = std::make_shared<GraphPattern>(std::move(lhs));
          RDFA_ASSIGN_OR_RETURN(GraphPattern rhs, ParseGroupGraphPattern());
          while (true) {
            el.child2 = std::make_shared<GraphPattern>(std::move(rhs));
            if (ConsumeKeyword("UNION")) {
              // Left-fold further branches: wrap current union as lhs.
              GraphPattern folded;
              folded.elements.push_back(el);
              el = PatternElement();
              el.kind = PatternElement::Kind::kUnion;
              el.child = std::make_shared<GraphPattern>(std::move(folded));
              RDFA_ASSIGN_OR_RETURN(rhs, ParseGroupGraphPattern());
              continue;
            }
            break;
          }
          gp.elements.push_back(std::move(el));
        } else {
          // Inline group: splice its elements.
          for (auto& e : lhs.elements) gp.elements.push_back(std::move(e));
        }
        ConsumePunct(".");
        continue;
      }
      // Triples block.
      RDFA_RETURN_NOT_OK(ParseTriplesSameSubject(&gp));
      if (!ConsumePunct(".")) {
        if (!PeekPunct("}")) return Err("expected '.' between triples");
      }
    }
    RDFA_RETURN_NOT_OK(ExpectPunct("}"));
    return gp;
  }

  /// One subject with `;`-separated predicate-object lists; `,` object
  /// lists; property paths in predicate position.
  Status ParseTriplesSameSubject(GraphPattern* gp) {
    RDFA_ASSIGN_OR_RETURN(NodePattern subject, ParseNode());
    while (true) {
      RDFA_RETURN_NOT_OK(ParsePredicateObjectList(subject, gp));
      if (ConsumePunct(";")) {
        if (PeekPunct(".") || PeekPunct("}")) break;  // trailing ';'
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParsePredicateObjectList(const NodePattern& subject,
                                  GraphPattern* gp) {
    // Predicate: 'a', a term, a variable, or a path (seq '/' and inverse '^').
    bool inverse_first = ConsumePunct("^");
    NodePattern pred;
    if (PeekKeyword("a")) {
      Consume();
      pred = NodePattern::Const(Term::Iri(rdf::rdfns::kType));
    } else {
      RDFA_ASSIGN_OR_RETURN(pred, ParseNode());
    }

    // Transitive-closure path: <p>+ (one or more hops) / <p>* (zero or
    // more). Only a single non-inverse constant property is supported.
    if ((PeekPunct("+") || PeekPunct("*")) && !pred.is_var &&
        !inverse_first) {
      bool reflexive = Consume().text == "*";
      while (true) {
        RDFA_ASSIGN_OR_RETURN(NodePattern object, ParseNode());
        PatternElement el;
        el.kind = PatternElement::Kind::kTransPath;
        el.triple = {subject, pred, object};
        el.path_reflexive = reflexive;
        gp->elements.push_back(std::move(el));
        if (ConsumePunct(",")) continue;
        break;
      }
      return Status::OK();
    }

    // Path sequence: collect hops.
    struct Hop {
      NodePattern pred;
      bool inverse;
    };
    std::vector<Hop> hops = {{pred, inverse_first}};
    while (PeekPunct("/")) {
      Consume();
      bool inv = ConsumePunct("^");
      NodePattern next;
      if (PeekKeyword("a")) {
        Consume();
        next = NodePattern::Const(Term::Iri(rdf::rdfns::kType));
      } else {
        RDFA_ASSIGN_OR_RETURN(next, ParseNode());
      }
      hops.push_back({next, inv});
    }

    // Object list.
    while (true) {
      RDFA_ASSIGN_OR_RETURN(NodePattern object, ParseNode());
      // Desugar the path into chained triples with fresh vars.
      NodePattern cur = subject;
      for (size_t i = 0; i < hops.size(); ++i) {
        NodePattern next = (i + 1 == hops.size())
                               ? object
                               : NodePattern::Var(FreshVar());
        PatternElement el;
        el.kind = PatternElement::Kind::kTriple;
        if (hops[i].inverse) {
          el.triple = {next, hops[i].pred, cur};
        } else {
          el.triple = {cur, hops[i].pred, next};
        }
        gp->elements.push_back(std::move(el));
        cur = next;
      }
      if (ConsumePunct(",")) continue;
      break;
    }
    return Status::OK();
  }

  // ---- SELECT -----------------------------------------------------------
  Result<SelectQuery> ParseSelect() {
    if (!ConsumeKeyword("SELECT")) return Err("expected SELECT");
    SelectQuery q;
    if (ConsumeKeyword("DISTINCT")) q.distinct = true;
    if (ConsumePunct("*")) {
      q.select_all = true;
    } else {
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          Projection p;
          p.var = Consume().text;
          q.projections.push_back(std::move(p));
          continue;
        }
        if (PeekPunct("(")) {
          Consume();
          Projection p;
          RDFA_ASSIGN_OR_RETURN(p.expr, ParseExpr());
          if (!ConsumeKeyword("AS")) return Err("expected AS in projection");
          if (Peek().kind != TokenKind::kVar) {
            return Err("expected variable after AS");
          }
          p.var = Consume().text;
          RDFA_RETURN_NOT_OK(ExpectPunct(")"));
          q.projections.push_back(std::move(p));
          continue;
        }
        // Bare aggregate in SELECT (common informal form "SUM(?x)"):
        if (Peek().kind == TokenKind::kPName && PeekPunct("(", 1)) {
          Projection p;
          RDFA_ASSIGN_OR_RETURN(p.expr, ParseExpr());
          p.var = "_agg" + std::to_string(fresh_counter_++);
          q.projections.push_back(std::move(p));
          continue;
        }
        break;
      }
      if (q.projections.empty()) return Err("empty SELECT clause");
    }
    ConsumeKeyword("WHERE");
    RDFA_ASSIGN_OR_RETURN(q.where, ParseGroupGraphPattern());

    if (ConsumeKeyword("GROUP")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after GROUP");
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          q.group_by.push_back(Expr::MakeVar(Consume().text));
        } else if (PeekPunct("(")) {
          Consume();
          RDFA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          RDFA_RETURN_NOT_OK(ExpectPunct(")"));
          q.group_by.push_back(std::move(e));
        } else if (Peek().kind == TokenKind::kPName && PeekPunct("(", 1) &&
                   !PeekKeyword("HAVING") && !PeekKeyword("ORDER") &&
                   !PeekKeyword("LIMIT") && !PeekKeyword("OFFSET")) {
          RDFA_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
          q.group_by.push_back(std::move(e));
        } else {
          break;
        }
      }
      if (q.group_by.empty()) return Err("empty GROUP BY");
    }
    if (ConsumeKeyword("HAVING")) {
      while (PeekPunct("(")) {
        RDFA_ASSIGN_OR_RETURN(ExprPtr e, ParseBracketedOrCallExpr());
        q.having.push_back(std::move(e));
      }
      if (q.having.empty()) return Err("empty HAVING");
    }
    if (ConsumeKeyword("ORDER")) {
      if (!ConsumeKeyword("BY")) return Err("expected BY after ORDER");
      while (true) {
        OrderKey key;
        if (ConsumeKeyword("ASC")) {
          RDFA_ASSIGN_OR_RETURN(key.expr, ParseBracketedOrCallExpr());
        } else if (ConsumeKeyword("DESC")) {
          key.ascending = false;
          RDFA_ASSIGN_OR_RETURN(key.expr, ParseBracketedOrCallExpr());
        } else if (Peek().kind == TokenKind::kVar) {
          key.expr = Expr::MakeVar(Consume().text);
        } else if (PeekPunct("(")) {
          RDFA_ASSIGN_OR_RETURN(key.expr, ParseBracketedOrCallExpr());
        } else {
          break;
        }
        q.order_by.push_back(std::move(key));
      }
      if (q.order_by.empty()) return Err("empty ORDER BY");
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) return Err("expected LIMIT count");
      RDFA_ASSIGN_OR_RETURN(q.limit, ParseCount("LIMIT"));
    }
    if (ConsumeKeyword("OFFSET")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Err("expected OFFSET count");
      }
      RDFA_ASSIGN_OR_RETURN(q.offset, ParseCount("OFFSET"));
    }
    return q;
  }

  /// A LIMIT/OFFSET count from the current integer token. strtoll saturates
  /// to LLONG_MAX on overflow without failing — checked via errno/endptr so
  /// an out-of-range literal is a typed ParseError instead of a silent
  /// near-2^63 count reaching the executor. The lexer never attaches a sign
  /// to kInteger, so the negativity check only guards saturation edge cases
  /// and future lexer changes.
  Result<int64_t> ParseCount(const char* clause) {
    const std::string text = Consume().text;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0' || v < 0) {
      return Err(std::string(clause) + " count out of range: " + text);
    }
    return static_cast<int64_t>(v);
  }

  Result<ConstructQuery> ParseConstruct() {
    if (!ConsumeKeyword("CONSTRUCT")) return Err("expected CONSTRUCT");
    ConstructQuery q;
    RDFA_RETURN_NOT_OK(ExpectPunct("{"));
    while (!PeekPunct("}")) {
      GraphPattern tmp;
      RDFA_RETURN_NOT_OK(ParseTriplesSameSubject(&tmp));
      for (const auto& el : tmp.elements) {
        q.construct_template.push_back(el.triple);
      }
      if (!ConsumePunct(".")) break;
    }
    RDFA_RETURN_NOT_OK(ExpectPunct("}"));
    ConsumeKeyword("WHERE");
    RDFA_ASSIGN_OR_RETURN(q.where, ParseGroupGraphPattern());
    return q;
  }

  // ---- expressions -------------------------------------------------------
  /// FILTER/HAVING/ORDER argument: either "(expr)" or a bare call like
  /// REGEX(...).
  Result<ExprPtr> ParseBracketedOrCallExpr() {
    if (PeekPunct("(")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RDFA_RETURN_NOT_OK(ExpectPunct(")"));
      return e;
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    RDFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekPunct("||")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBinary("||", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    RDFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRel());
    while (PeekPunct("&&")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRel());
      lhs = Expr::MakeBinary("&&", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseRel() {
    RDFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    static const char* const kOps[] = {"=", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (PeekPunct(op)) {
        Consume();
        RDFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
        return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    bool negated = false;
    if (PeekKeyword("NOT") && PeekKeyword("IN", 1)) {
      Consume();
      negated = true;
    }
    if (ConsumeKeyword("IN")) {
      RDFA_RETURN_NOT_OK(ExpectPunct("("));
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kIn;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      if (!PeekPunct(")")) {
        while (true) {
          RDFA_ASSIGN_OR_RETURN(ExprPtr cand, ParseExpr());
          e->args.push_back(std::move(cand));
          if (ConsumePunct(",")) continue;
          break;
        }
      }
      RDFA_RETURN_NOT_OK(ExpectPunct(")"));
      return e;
    }
    if (negated) return Err("expected IN after NOT");
    return lhs;
  }

  Result<ExprPtr> ParseAdd() {
    RDFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (PeekPunct("+") || PeekPunct("-")) {
      std::string op = Consume().text;
      RDFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    RDFA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (PeekPunct("*") || PeekPunct("/")) {
      std::string op = Consume().text;
      RDFA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekPunct("!")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr a, ParseUnary());
      return Expr::MakeUnary("!", std::move(a));
    }
    if (PeekPunct("-")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr a, ParseUnary());
      return Expr::MakeUnary("-", std::move(a));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    // EXISTS { ... } / NOT EXISTS { ... }.
    if (PeekKeyword("EXISTS") ||
        (PeekKeyword("NOT") && PeekKeyword("EXISTS", 1))) {
      bool negated = PeekKeyword("NOT");
      if (negated) Consume();
      Consume();  // EXISTS
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kExists;
      e->negated = negated;
      RDFA_ASSIGN_OR_RETURN(GraphPattern child, ParseGroupGraphPattern());
      e->pattern = std::make_shared<GraphPattern>(std::move(child));
      return e;
    }
    const Token& t = Peek();
    if (PeekPunct("(")) {
      Consume();
      RDFA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RDFA_RETURN_NOT_OK(ExpectPunct(")"));
      return e;
    }
    if (t.kind == TokenKind::kVar) {
      return Expr::MakeVar(Consume().text);
    }
    if (t.kind == TokenKind::kPName && PeekPunct("(", 1)) {
      std::string upper = ToUpperAscii(t.text);
      // Aggregates.
      if (upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
          upper == "MIN" || upper == "MAX" || upper == "GROUP_CONCAT" ||
          upper == "SAMPLE") {
        return ParseAggregate(upper);
      }
      if (IsBuiltinCall(upper)) {
        Consume();
        Consume();  // '('
        std::vector<ExprPtr> args;
        if (!PeekPunct(")")) {
          while (true) {
            RDFA_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (ConsumePunct(",")) continue;
            break;
          }
        }
        RDFA_RETURN_NOT_OK(ExpectPunct(")"));
        return Expr::MakeCall(std::move(upper), std::move(args));
      }
      // Cast through a datatype IRI, e.g. xsd:integer("3").
      RDFA_ASSIGN_OR_RETURN(Term dt, ExpandPName(t.text));
      // Note: ExpandPName consumed nothing; consume the name now.
      Consume();
      Consume();  // '('
      std::vector<ExprPtr> args;
      RDFA_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      args.push_back(std::move(a));
      RDFA_RETURN_NOT_OK(ExpectPunct(")"));
      ExprPtr call = Expr::MakeCall("CAST", std::move(args));
      call->term = dt;  // datatype carried on the node
      return call;
    }
    // Constant term.
    RDFA_ASSIGN_OR_RETURN(Term term, ParseTermToken());
    return Expr::MakeTerm(std::move(term));
  }

  Result<ExprPtr> ParseAggregate(const std::string& upper) {
    Consume();  // name
    RDFA_RETURN_NOT_OK(ExpectPunct("("));
    bool distinct = ConsumeKeyword("DISTINCT");
    AggFunc f = AggFunc::kCount;
    if (upper == "COUNT") f = AggFunc::kCount;
    else if (upper == "SUM") f = AggFunc::kSum;
    else if (upper == "AVG") f = AggFunc::kAvg;
    else if (upper == "MIN") f = AggFunc::kMin;
    else if (upper == "MAX") f = AggFunc::kMax;
    else if (upper == "GROUP_CONCAT") f = AggFunc::kGroupConcat;
    else if (upper == "SAMPLE") f = AggFunc::kSample;

    if (upper == "COUNT" && ConsumePunct("*")) {
      RDFA_RETURN_NOT_OK(ExpectPunct(")"));
      return Expr::MakeAggregate(f, nullptr, distinct);
    }
    RDFA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    std::string separator = ", ";
    if (ConsumePunct(";")) {
      if (!ConsumeKeyword("SEPARATOR")) return Err("expected SEPARATOR");
      RDFA_RETURN_NOT_OK(ExpectPunct("="));
      if (Peek().kind != TokenKind::kString) {
        return Err("expected separator string");
      }
      separator = Consume().text;
    }
    RDFA_RETURN_NOT_OK(ExpectPunct(")"));
    return Expr::MakeAggregate(f, std::move(arg), distinct,
                               std::move(separator));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  rdf::PrefixMap prefixes_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(std::string_view text,
                               const rdf::PrefixMap* extra_prefixes) {
  RDFA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), extra_prefixes);
  return parser.Parse();
}

Result<UpdateRequest> ParseUpdate(std::string_view text,
                                  const rdf::PrefixMap* extra_prefixes) {
  RDFA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), extra_prefixes);
  return parser.ParseUpdateRequest();
}

}  // namespace rdfa::sparql
