#include "sparql/expr_eval.h"

#include <cmath>
#include <regex>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::sparql {

using rdf::Term;

int VarTable::IdOf(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  index_.emplace(name, id);
  names_.push_back(name);
  return id;
}

int VarTable::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

namespace {

Value EvalVar(const Expr& e, const Binding& binding, const EvalContext& ctx) {
  int slot = ctx.vars->Find(e.var);
  if (slot < 0 || static_cast<size_t>(slot) >= binding.size() ||
      binding[slot] == rdf::kNoTermId) {
    return Value::Unbound();
  }
  return Value::FromTerm(ctx.terms->Get(binding[slot]));
}

Value EvalUnary(const Expr& e, const Binding& binding,
                const EvalContext& ctx) {
  Value a = EvalExpr(*e.args[0], binding, ctx);
  if (e.op == "!") {
    auto b = a.EffectiveBool();
    if (!b.has_value()) return Value::Unbound();
    return Value::Bool(!*b);
  }
  // unary minus
  auto n = a.AsNumeric();
  if (!n.has_value()) return Value::Unbound();
  if (a.kind() == Value::Kind::kInt) return Value::Int(-a.int_value());
  return Value::Double(-*n);
}

Value NumericBinary(const std::string& op, const Value& a, const Value& b) {
  auto na = a.AsNumeric();
  auto nb = b.AsNumeric();
  if (!na.has_value() || !nb.has_value()) return Value::Unbound();
  bool both_int =
      a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
  if (op == "+") {
    return both_int ? Value::Int(a.int_value() + b.int_value())
                    : Value::Double(*na + *nb);
  }
  if (op == "-") {
    return both_int ? Value::Int(a.int_value() - b.int_value())
                    : Value::Double(*na - *nb);
  }
  if (op == "*") {
    return both_int ? Value::Int(a.int_value() * b.int_value())
                    : Value::Double(*na * *nb);
  }
  if (op == "/") {
    if (*nb == 0) return Value::Unbound();
    return Value::Double(*na / *nb);
  }
  return Value::Unbound();
}

Value EvalBinary(const Expr& e, const Binding& binding,
                 const EvalContext& ctx) {
  const std::string& op = e.op;
  if (op == "||" || op == "&&") {
    auto a = EvalExpr(*e.args[0], binding, ctx).EffectiveBool();
    auto b = EvalExpr(*e.args[1], binding, ctx).EffectiveBool();
    if (op == "||") {
      if ((a.has_value() && *a) || (b.has_value() && *b)) {
        return Value::Bool(true);
      }
      if (a.has_value() && b.has_value()) return Value::Bool(false);
      return Value::Unbound();
    }
    if ((a.has_value() && !*a) || (b.has_value() && !*b)) {
      return Value::Bool(false);
    }
    if (a.has_value() && b.has_value()) return Value::Bool(true);
    return Value::Unbound();
  }

  Value a = EvalExpr(*e.args[0], binding, ctx);
  Value b = EvalExpr(*e.args[1], binding, ctx);
  if (op == "=" || op == "!=") {
    auto eq = Value::Equals(a, b);
    if (!eq.has_value()) return Value::Unbound();
    return Value::Bool(op == "=" ? *eq : !*eq);
  }
  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    auto c = Value::Compare(a, b);
    if (!c.has_value()) return Value::Unbound();
    if (op == "<") return Value::Bool(*c < 0);
    if (op == "<=") return Value::Bool(*c <= 0);
    if (op == ">") return Value::Bool(*c > 0);
    return Value::Bool(*c >= 0);
  }
  return NumericBinary(op, a, b);
}

/// Translates SPARQL regex flags (17.4.3.14) to std::regex flags. Honored:
/// `i` (case-insensitive), `m` (multiline anchors), `q` (pattern is a
/// literal string — implemented by escaping, see CachedRegex). `s`
/// (dot-matches-newline) has no std::regex equivalent and is explicitly
/// rejected, as is any unknown letter: the call evaluates to an error
/// (unbound) instead of silently ignoring the flag.
std::optional<std::regex::flag_type> TranslateRegexFlags(
    const std::string& flags, bool* literal) {
  auto out = std::regex::ECMAScript;
  *literal = false;
  for (char f : flags) {
    switch (f) {
      case 'i':
        out |= std::regex::icase;
        break;
      case 'm':
        out |= std::regex::multiline;
        break;
      case 'q':
        *literal = true;
        break;
      default:  // 's', 'x', or garbage: unsupported
        return std::nullopt;
    }
  }
  return out;
}

/// Escapes every ECMAScript metacharacter so the pattern matches literally
/// (the SPARQL `q` flag).
std::string EscapeRegexLiteral(const std::string& pattern) {
  static const std::string kMeta = R"(\^$.|?*+()[]{})";
  std::string out;
  out.reserve(pattern.size());
  for (char c : pattern) {
    if (kMeta.find(c) != std::string::npos) out += '\\';
    out += c;
  }
  return out;
}

/// Compiles (pattern, flags) to a std::regex, serving repeats from a
/// per-thread cache — REGEX/REPLACE run once per row, and recompiling a
/// std::regex per row dominated filter evaluation before this cache.
/// nullptr means invalid pattern or unsupported flags. The cache is
/// thread_local so morsel workers never contend or share regex objects
/// (std::regex matching is const but caching a shared object across threads
/// would still need lifetime care; per-thread is simpler and contention-free).
const std::regex* CachedRegex(const std::string& pattern,
                              const std::string& flags) {
  struct Entry {
    bool valid = false;
    std::regex re;
  };
  thread_local std::map<std::pair<std::string, std::string>, Entry> cache;
  // Bound the cache: patterns are almost always per-expression-node
  // constants, but a computed pattern could otherwise grow it per row.
  constexpr size_t kMaxEntries = 256;
  auto key = std::make_pair(pattern, flags);
  auto it = cache.find(key);
  if (it == cache.end()) {
    if (cache.size() >= kMaxEntries) cache.clear();
    Entry entry;
    bool literal = false;
    auto f = TranslateRegexFlags(flags, &literal);
    if (f.has_value()) {
      try {
        entry.re.assign(literal ? EscapeRegexLiteral(pattern) : pattern, *f);
        entry.valid = true;
      } catch (const std::regex_error&) {
        entry.valid = false;
      }
    }
    it = cache.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.valid ? &it->second.re : nullptr;
}

Value EvalDateComponent(const Value& v, int component) {
  std::string lexical;
  if (v.kind() == Value::Kind::kTerm && v.term().is_literal()) {
    lexical = v.term().lexical();
  } else if (v.kind() == Value::Kind::kString) {
    lexical = v.string_value();
  } else {
    return Value::Unbound();
  }
  auto c = DateTimeComponent(lexical, component);
  if (!c.has_value()) return Value::Unbound();
  return Value::Int(*c);
}

Value EvalCall(const Expr& e, const Binding& binding, const EvalContext& ctx) {
  const std::string& name = e.call_name;

  if (name == "BOUND") {
    if (e.args.size() != 1 || e.args[0]->kind != Expr::Kind::kVar) {
      return Value::Unbound();
    }
    int slot = ctx.vars->Find(e.args[0]->var);
    bool bound = slot >= 0 && static_cast<size_t>(slot) < binding.size() &&
                 binding[slot] != rdf::kNoTermId;
    return Value::Bool(bound);
  }
  if (name == "COALESCE") {
    for (const ExprPtr& a : e.args) {
      Value v = EvalExpr(*a, binding, ctx);
      if (!v.is_unbound()) return v;
    }
    return Value::Unbound();
  }
  if (name == "IF") {
    if (e.args.size() != 3) return Value::Unbound();
    auto cond = EvalExpr(*e.args[0], binding, ctx).EffectiveBool();
    if (!cond.has_value()) return Value::Unbound();
    return EvalExpr(*e.args[*cond ? 1 : 2], binding, ctx);
  }

  // Remaining calls evaluate all arguments eagerly.
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) args.push_back(EvalExpr(*a, binding, ctx));
  for (const Value& v : args) {
    if (v.is_unbound() && name != "CONCAT") return Value::Unbound();
  }

  if (name == "STR") return Value::String(args[0].AsString());
  if (name == "LANG") {
    if (args[0].kind() == Value::Kind::kTerm && args[0].term().is_literal()) {
      return Value::String(args[0].term().lang());
    }
    return Value::String("");
  }
  if (name == "DATATYPE") {
    if (args[0].kind() == Value::Kind::kTerm && args[0].term().is_literal()) {
      const std::string& dt = args[0].term().datatype();
      return Value::FromTerm(
          Term::Iri(dt.empty() ? rdf::xsd::kString : dt));
    }
    if (args[0].is_numeric()) {
      return Value::FromTerm(
          Term::Iri(args[0].kind() == Value::Kind::kInt ? rdf::xsd::kInteger
                                                        : rdf::xsd::kDouble));
    }
    return Value::Unbound();
  }
  if (name == "YEAR") return EvalDateComponent(args[0], 0);
  if (name == "MONTH") return EvalDateComponent(args[0], 1);
  if (name == "DAY") return EvalDateComponent(args[0], 2);
  if (name == "HOURS") return EvalDateComponent(args[0], 3);
  if (name == "MINUTES") return EvalDateComponent(args[0], 4);
  if (name == "SECONDS") return EvalDateComponent(args[0], 5);
  if (name == "ABS" || name == "CEIL" || name == "FLOOR" || name == "ROUND") {
    auto n = args[0].AsNumeric();
    if (!n.has_value()) return Value::Unbound();
    if (name == "ABS") {
      return args[0].kind() == Value::Kind::kInt
                 ? Value::Int(std::llabs(args[0].int_value()))
                 : Value::Double(std::fabs(*n));
    }
    double r = name == "CEIL" ? std::ceil(*n)
               : name == "FLOOR" ? std::floor(*n)
                                 : std::round(*n);
    return Value::Int(static_cast<int64_t>(r));
  }
  if (name == "CONCAT") {
    std::string out;
    for (const Value& v : args) out += v.AsString();
    return Value::String(std::move(out));
  }
  if (name == "STRLEN") {
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (name == "UCASE") return Value::String(ToUpperAscii(args[0].AsString()));
  if (name == "LCASE") return Value::String(ToLowerAscii(args[0].AsString()));
  if (name == "CONTAINS") {
    if (args.size() != 2) return Value::Unbound();
    return Value::Bool(args[0].AsString().find(args[1].AsString()) !=
                       std::string::npos);
  }
  if (name == "STRSTARTS") {
    if (args.size() != 2) return Value::Unbound();
    return Value::Bool(StartsWith(args[0].AsString(), args[1].AsString()));
  }
  if (name == "STRENDS") {
    if (args.size() != 2) return Value::Unbound();
    return Value::Bool(EndsWith(args[0].AsString(), args[1].AsString()));
  }
  if (name == "REGEX") {
    if (args.size() < 2) return Value::Unbound();
    const std::regex* re = CachedRegex(
        args[1].AsString(), args.size() >= 3 ? args[2].AsString() : "");
    if (re == nullptr) return Value::Unbound();
    return Value::Bool(std::regex_search(args[0].AsString(), *re));
  }
  if (name == "SUBSTR") {
    if (args.size() < 2) return Value::Unbound();
    std::string s = args[0].AsString();
    auto start = args[1].AsNumeric();
    if (!start.has_value() || std::isnan(*start)) return Value::Unbound();
    // SPARQL SUBSTR is 1-based. Clamp start/length into [0, s.size()]
    // *before* casting: a double outside the target range (SUBSTR(?s, 1e30),
    // negative, inf) is undefined behavior to convert to size_t. Fractional
    // arguments keep the historical truncation semantics.
    const double size_d = static_cast<double>(s.size());
    size_t begin;
    if (*start >= size_d + 1) return Value::String("");
    begin = *start >= 1 ? static_cast<size_t>(*start) - 1 : 0;
    if (begin >= s.size()) return Value::String("");
    size_t len = std::string::npos;
    if (args.size() >= 3) {
      auto n = args[2].AsNumeric();
      if (!n.has_value() || std::isnan(*n) || *n < 0) return Value::Unbound();
      len = *n >= size_d ? std::string::npos : static_cast<size_t>(*n);
    }
    return Value::String(s.substr(begin, len));
  }
  if (name == "STRBEFORE" || name == "STRAFTER") {
    if (args.size() != 2) return Value::Unbound();
    std::string s = args[0].AsString();
    std::string sep = args[1].AsString();
    size_t pos = s.find(sep);
    if (pos == std::string::npos) return Value::String("");
    return Value::String(name == "STRBEFORE" ? s.substr(0, pos)
                                             : s.substr(pos + sep.size()));
  }
  if (name == "REPLACE") {
    if (args.size() < 3) return Value::Unbound();
    const std::regex* re = CachedRegex(
        args[1].AsString(), args.size() >= 4 ? args[3].AsString() : "");
    if (re == nullptr) return Value::Unbound();
    return Value::String(
        std::regex_replace(args[0].AsString(), *re, args[2].AsString()));
  }
  if (name == "LANGMATCHES") {
    if (args.size() != 2) return Value::Unbound();
    std::string lang = ToLowerAscii(args[0].AsString());
    std::string range = ToLowerAscii(args[1].AsString());
    if (range == "*") return Value::Bool(!lang.empty());
    return Value::Bool(lang == range ||
                       StartsWith(lang, range + "-"));
  }
  if (name == "IRI" || name == "URI") {
    if (args.size() != 1) return Value::Unbound();
    return Value::FromTerm(Term::Iri(args[0].AsString()));
  }
  if (name == "ISIRI" || name == "ISURI") {
    return Value::Bool(args[0].kind() == Value::Kind::kTerm &&
                       args[0].term().is_iri());
  }
  if (name == "ISBLANK") {
    return Value::Bool(args[0].kind() == Value::Kind::kTerm &&
                       args[0].term().is_blank());
  }
  if (name == "ISLITERAL") {
    return Value::Bool(args[0].kind() != Value::Kind::kTerm ||
                       args[0].term().is_literal());
  }
  if (name == "ISNUMERIC") {
    return Value::Bool(args[0].AsNumeric().has_value());
  }
  if (name == "CAST") {
    // Datatype IRI carried on e.term.
    const std::string& dt = e.term.lexical();
    namespace xsd = rdf::xsd;
    if (dt == xsd::kInteger || dt == xsd::kInt || dt == xsd::kLong) {
      auto n = args[0].AsNumeric();
      if (n.has_value()) return Value::Int(static_cast<int64_t>(*n));
      char* end = nullptr;
      std::string s = args[0].AsString();
      long long parsed = std::strtoll(s.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && !s.empty()) {
        return Value::Int(parsed);
      }
      return Value::Unbound();
    }
    if (dt == xsd::kDouble || dt == xsd::kDecimal || dt == xsd::kFloat) {
      auto n = args[0].AsNumeric();
      if (n.has_value()) return Value::Double(*n);
      char* end = nullptr;
      std::string s = args[0].AsString();
      double parsed = std::strtod(s.c_str(), &end);
      if (end != nullptr && *end == '\0' && !s.empty()) {
        return Value::Double(parsed);
      }
      return Value::Unbound();
    }
    if (dt == xsd::kBoolean) {
      std::string s = args[0].AsString();
      if (s == "true" || s == "1") return Value::Bool(true);
      if (s == "false" || s == "0") return Value::Bool(false);
      return Value::Unbound();
    }
    if (dt == xsd::kString) return Value::String(args[0].AsString());
    if (dt == xsd::kDateTime || dt == xsd::kDate) {
      return Value::FromTerm(Term::TypedLiteral(args[0].AsString(), dt));
    }
    return Value::Unbound();
  }
  return Value::Unbound();
}

}  // namespace

Value EvalExpr(const Expr& expr, const Binding& binding,
               const EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kVar:
      return EvalVar(expr, binding, ctx);
    case Expr::Kind::kTerm:
      return Value::FromTerm(expr.term);
    case Expr::Kind::kUnary:
      return EvalUnary(expr, binding, ctx);
    case Expr::Kind::kBinary:
      return EvalBinary(expr, binding, ctx);
    case Expr::Kind::kCall:
      return EvalCall(expr, binding, ctx);
    case Expr::Kind::kAggregate: {
      if (ctx.agg_values != nullptr) {
        auto it = ctx.agg_values->find(&expr);
        if (it != ctx.agg_values->end()) return it->second;
      }
      return Value::Unbound();
    }
    case Expr::Kind::kExists: {
      if (ctx.exists_eval == nullptr || expr.pattern == nullptr) {
        return Value::Unbound();
      }
      bool found = (*ctx.exists_eval)(*expr.pattern, binding);
      return Value::Bool(expr.negated ? !found : found);
    }
    case Expr::Kind::kIn: {
      if (expr.args.empty()) return Value::Unbound();
      Value probe = EvalExpr(*expr.args[0], binding, ctx);
      if (probe.is_unbound()) return Value::Unbound();
      for (size_t i = 1; i < expr.args.size(); ++i) {
        Value cand = EvalExpr(*expr.args[i], binding, ctx);
        auto eq = Value::Equals(probe, cand);
        if (eq.has_value() && *eq) {
          return Value::Bool(!expr.negated);
        }
      }
      return Value::Bool(expr.negated);
    }
  }
  return Value::Unbound();
}

}  // namespace rdfa::sparql
