#ifndef RDFA_SPARQL_BGP_H_
#define RDFA_SPARQL_BGP_H_

#include <vector>

#include "common/query_context.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/exec_stats.h"
#include "sparql/expr_eval.h"

namespace rdfa::sparql {

/// A triple pattern with variables resolved to binding slots and constants
/// interned against a graph.
struct CompiledPattern {
  int s_var = -1, p_var = -1, o_var = -1;  // -1: constant position
  rdf::TermId s_id = rdf::kNoTermId;
  rdf::TermId p_id = rdf::kNoTermId;
  rdf::TermId o_id = rdf::kNoTermId;
  /// A constant term that does not occur in the graph: the pattern can never
  /// match, the whole BGP is empty.
  bool impossible = false;
};

/// Resolves variables through `vars` (allocating slots) and constants
/// through the graph's term table (without interning — absent terms mark the
/// pattern impossible).
CompiledPattern CompileTriple(const TriplePattern& tp, VarTable* vars,
                              const rdf::Graph& graph);

/// Calibrated per-row cardinality estimate: the constant-narrowed match
/// count, divided by the distinct count of each bound-variable lane within
/// that population (predicate-local when the predicate is constant).
/// Shared by the greedy reorderer, the adaptive hash decision, and the
/// planner-v2 DP cost model.
double CalibratedRowEstimate(const rdf::Graph& graph, const CompiledPattern& p,
                             bool s_bound, bool p_bound, bool o_bound);

/// How JoinBgp extends rows through a pattern.
enum class JoinStrategy {
  /// Per-pattern cost-based choice between the two strategies below (the
  /// default): hash when one build pays for many probes, NLJ otherwise.
  /// With JoinOptions::use_dp, planner-v2 runs also take merge steps the
  /// plan marks qualified.
  kAdaptive,
  /// One binary-search index range scan per input row.
  kNestedLoop,
  /// Materialize the pattern's index range once into a hash table keyed on
  /// the join-variable lane(s), then probe every input row in order
  /// (build-once / probe-many). Probing in input order — with buckets built
  /// in index-scan order — keeps results byte-identical to the serial NLJ.
  kHash,
  /// Planner v2: streaming merge join. The first pattern scans the
  /// permutation whose sort order matches the plan's interesting-order
  /// variable; later patterns that join on that variable stream an
  /// order-agreeing permutation cursor against the sorted input, skipping
  /// non-candidate keys via SeekGE (sideways information passing) and
  /// replaying each decoded key group across its input-row run — no build
  /// side is ever materialized. Steps the plan does not mark as merges fall
  /// back to the adaptive hash/NLJ machinery. On seeded (non-trivial) input
  /// rows — OPTIONAL/UNION/EXISTS re-entries — this degrades to kAdaptive.
  kMerge,
};

/// Knobs and instrumentation for one JoinBgp call.
struct JoinOptions {
  /// Thread budget: <=1 runs the serial path. Parallelism is morsel-based —
  /// the input rows (or, for a single seed row, the first pattern's
  /// materialized index range) are split into contiguous morsels, extended
  /// independently, and concatenated in morsel order, so the result is
  /// byte-identical to the serial join.
  int threads = 1;
  /// When set, join order / rows-scanned / strategy / morsel counters are
  /// appended.
  ExecStats* stats = nullptr;
  /// When set, the join checks the context between patterns (and inside the
  /// hash-build loop) and every few hundred enumerated index rows; a
  /// tripped deadline / cancellation unwinds with the typed Status and
  /// `*rows` left in an unspecified partial state. Null = never stops.
  const QueryContext* ctx = nullptr;
  /// Join-strategy override. kAdaptive decides per pattern; kNestedLoop /
  /// kHash force one path (kHash still falls back to NLJ for patterns with
  /// no bound join variable, where no hash key exists).
  JoinStrategy strategy = JoinStrategy::kAdaptive;
  /// Reorderer cost model: true uses per-predicate GraphStats fanout
  /// calibration, false the legacy range-width + flat-discount heuristic
  /// (the ablation benchmark toggles this).
  bool calibrated_estimates = true;
  /// Planner v2 join ordering: replaces the greedy reorderer with an
  /// exhaustive DP search over subsets (<= 8 patterns; order-aware greedy
  /// above that), costed from the calibrated GraphStats and aware of which
  /// orders enable merge joins. Applies to trivial-seed BGP runs and, when
  /// set, overrides a false `reorder` flag — DP *is* the reorderer, so it is
  /// immune to source-order accidents. Orders only change performance,
  /// never the result set.
  bool use_dp = false;
  /// Sideways information passing inside merge steps: true (default) seeks
  /// the cursor past non-candidate merge keys; false advances linearly,
  /// decoding every key in the range (the bench --ablate-sip baseline;
  /// forces serial merge execution). Identical result bytes either way.
  bool sip = true;
  /// Plan-cache replay: a join order previously chosen for this BGP (source
  /// indexes in execution order, the ExecStats::join_order format). When it
  /// is a valid permutation of the pattern count, the greedy reorderer is
  /// skipped and this order applied verbatim; otherwise it is ignored.
  /// Orders only change performance, never result bytes.
  const std::vector<int>* replay_order = nullptr;
  /// Plan-cache capture: when set, receives the order actually executed
  /// (whether replayed, greedily chosen, or source order).
  std::vector<int>* capture_order = nullptr;
};

/// Extends every binding in `*rows` through all `patterns` by index
/// nested-loop joins. When `reorder` is set, patterns are greedily ordered
/// by estimated selectivity given the variables bound so far (the ablation
/// benchmark toggles this). `rows` bindings are grown to `slot_count`.
/// Returns non-OK only when `opts.ctx` trips (DeadlineExceeded/Cancelled).
Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, const JoinOptions& opts,
               std::vector<Binding>* rows);

/// Serial convenience overload (threads = 1, no stats, no context).
Status JoinBgp(const rdf::Graph& graph, std::vector<CompiledPattern> patterns,
               size_t slot_count, bool reorder, std::vector<Binding>* rows);

/// Plans a trivial-seed BGP's join order without executing anything: the
/// same order JoinBgp would choose for a top-level run — the DP search when
/// `opts.use_dp` and the BGP is small enough, the greedy reorderer when
/// `reorder`, source order otherwise. Returns source indexes in execution
/// order. The EXPLAIN path pairs this with AnnotateBgpPlan (planner.h) to
/// render the plan shape without touching any data.
std::vector<int> PlanBgpOrder(const rdf::Graph& graph,
                              const std::vector<CompiledPattern>& patterns,
                              const JoinOptions& opts, bool reorder);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_BGP_H_
