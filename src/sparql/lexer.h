#ifndef RDFA_SPARQL_LEXER_H_
#define RDFA_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rdfa::sparql {

enum class TokenKind {
  kEof,
  kIriRef,     ///< <...> with brackets stripped
  kPName,      ///< prefixed name "ex:Laptop" or bare keyword-ish identifier
  kVar,        ///< ?x / $x, with sigil stripped
  kString,     ///< quoted literal, unescaped
  kLangTag,    ///< @en (tag only)
  kInteger,
  kDecimal,
  kBlank,      ///< _:b1 (label only)
  kPunct,      ///< one of { } ( ) . ; , * / + - = ! < > & | ^ and digraphs
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;
};

/// Tokenizes SPARQL text. Keywords are returned as kPName tokens; the
/// parser matches them case-insensitively. Digraph punctuation (<=, >=,
/// !=, &&, ||, ^^) is merged into single kPunct tokens.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_LEXER_H_
