#ifndef RDFA_SPARQL_PARSER_H_
#define RDFA_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rdf/namespaces.h"
#include "sparql/ast.h"

namespace rdfa::sparql {

/// Parses a SPARQL query (SELECT / CONSTRUCT / ASK subset):
///   - PREFIX prologue
///   - SELECT [DISTINCT] * | vars | (expr AS ?alias)
///   - WHERE with basic graph patterns, predicate `a`, `;` / `,` lists,
///     property path sequences `p1/p2/p3` and inverse `^p` (desugared to
///     fresh variables), FILTER, OPTIONAL, UNION, BIND, VALUES (single var),
///     nested `{ SELECT ... }` subqueries
///   - GROUP BY (vars / expressions), aggregates COUNT, SUM, AVG, MIN, MAX,
///     GROUP_CONCAT(... ; SEPARATOR="..."), SAMPLE, HAVING
///   - ORDER BY [ASC|DESC], LIMIT, OFFSET
///
/// `extra_prefixes`, when non-null, seeds additional prefixes beyond the
/// built-in rdf/rdfs/xsd set.
Result<ParsedQuery> ParseQuery(std::string_view text,
                               const rdf::PrefixMap* extra_prefixes = nullptr);

/// Parses a SPARQL 1.1 Update request (INSERT DATA / DELETE DATA /
/// DELETE WHERE / DELETE-INSERT-WHERE), with the same PREFIX prologue
/// handling as ParseQuery.
Result<UpdateRequest> ParseUpdate(
    std::string_view text, const rdf::PrefixMap* extra_prefixes = nullptr);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_PARSER_H_
