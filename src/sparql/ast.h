#ifndef RDFA_SPARQL_AST_H_
#define RDFA_SPARQL_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfa::sparql {

/// A node term in a triple pattern: a variable or a concrete RDF term.
struct NodePattern {
  bool is_var = false;
  std::string var;   // without '?'
  rdf::Term term;    // valid when !is_var

  static NodePattern Var(std::string name) {
    NodePattern n;
    n.is_var = true;
    n.var = std::move(name);
    return n;
  }
  static NodePattern Const(rdf::Term t) {
    NodePattern n;
    n.term = std::move(t);
    return n;
  }
};

/// Expression AST used in FILTER, BIND, HAVING, SELECT expressions and
/// GROUP BY.
struct Expr;
using ExprPtr = std::shared_ptr<Expr>;
struct GraphPattern;

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kGroupConcat, kSample };

struct Expr {
  enum class Kind {
    kVar,        ///< ?x
    kTerm,       ///< literal or IRI constant
    kUnary,      ///< ! or unary -
    kBinary,     ///< || && = != < <= > >= + - * /
    kCall,       ///< builtin / cast function by upper-case name
    kAggregate,  ///< COUNT/SUM/AVG/MIN/MAX/GROUP_CONCAT/SAMPLE
    kExists,     ///< EXISTS { ... } / NOT EXISTS { ... }
    kIn,         ///< ?x IN (t1, t2, ...) / NOT IN
  };

  Kind kind = Kind::kTerm;
  // kVar
  std::string var;
  // kTerm
  rdf::Term term;
  // kUnary / kBinary: op is "!", "-", "||", "&&", "=", "!=", "<", "<=",
  // ">", ">=", "+", "-", "*", "/"
  std::string op;
  std::vector<ExprPtr> args;  // operands or call arguments
  // kCall
  std::string call_name;  // upper-case, e.g. "MONTH", "STR", "REGEX"
  // kAggregate
  AggFunc agg = AggFunc::kCount;
  bool agg_distinct = false;
  bool agg_star = false;       // COUNT(*)
  std::string agg_separator;   // GROUP_CONCAT
  // kExists / kIn: `negated` flips to NOT EXISTS / NOT IN. For kExists,
  // `pattern` is the group to probe; for kIn, args[0] is the probe and
  // args[1..] the candidates.
  bool negated = false;
  std::shared_ptr<GraphPattern> pattern;

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeTerm(rdf::Term t);
  static ExprPtr MakeUnary(std::string op, ExprPtr a);
  static ExprPtr MakeBinary(std::string op, ExprPtr a, ExprPtr b);
  static ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeAggregate(AggFunc f, ExprPtr arg, bool distinct,
                               std::string separator = ", ");

  /// True if this expression (recursively) contains an aggregate node.
  bool ContainsAggregate() const;

  /// True if this expression (recursively) contains an EXISTS node.
  bool ContainsExists() const;

  /// Adds every variable name mentioned by this expression to `*out`
  /// (EXISTS subpatterns excluded — their variables have local scope).
  void CollectVars(std::set<std::string>* out) const;
};

struct TriplePattern {
  NodePattern s, p, o;
};

struct SelectQuery;

/// One element of a group graph pattern, in source order.
struct PatternElement {
  enum class Kind {
    kTriple,
    kFilter,
    kOptional,
    kUnion,
    kBind,
    kSubSelect,
    kValues,
    kMinus,
    kTransPath,  ///< s <p>+ o  or  s <p>* o (transitive closure)
  };
  Kind kind = Kind::kTriple;
  TriplePattern triple;                      // kTriple / kTransPath endpoints
  ExprPtr filter;                            // kFilter
  std::shared_ptr<GraphPattern> child;       // kOptional / kUnion lhs / kMinus
  std::shared_ptr<GraphPattern> child2;      // kUnion rhs
  ExprPtr bind_expr;                         // kBind
  std::string bind_var;                      // kBind target
  std::shared_ptr<SelectQuery> sub_select;   // kSubSelect
  std::string values_var;                    // kValues (single-var form)
  std::vector<rdf::Term> values_terms;       // kValues
  bool path_reflexive = false;               // kTransPath: '*' includes self
};

struct GraphPattern {
  std::vector<PatternElement> elements;
};

/// One projected column: a plain variable or `(expr AS ?alias)`.
struct Projection {
  std::string var;   // output name (alias for expressions)
  ExprPtr expr;      // null for plain variables
};

struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectQuery {
  bool distinct = false;
  bool select_all = false;  // SELECT *
  std::vector<Projection> projections;
  GraphPattern where;
  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> having;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   // -1: none
  int64_t offset = 0;
};

struct ConstructQuery {
  std::vector<TriplePattern> construct_template;
  GraphPattern where;
};

struct AskQuery {
  GraphPattern where;
};

/// DESCRIBE <iri>... or DESCRIBE ?var WHERE { ... }: the description of
/// each named/matched resource is its Concise Bounded Description.
struct DescribeQuery {
  std::vector<rdf::Term> resources;  ///< explicit IRIs
  std::vector<std::string> vars;     ///< variables bound by `where`
  GraphPattern where;                ///< may be empty
};

/// A parsed query of any supported form.
struct ParsedQuery {
  enum class Form { kSelect, kConstruct, kAsk, kDescribe };
  Form form = Form::kSelect;
  SelectQuery select;
  ConstructQuery construct;
  AskQuery ask;
  DescribeQuery describe;
};

/// A parsed SPARQL 1.1 Update request (the subset a triple-store needs):
///   INSERT DATA { ground triples }
///   DELETE DATA { ground triples }
///   DELETE WHERE { pattern }                 (template = the pattern itself)
///   DELETE { t } INSERT { t } WHERE { p }    (either template optional)
struct UpdateRequest {
  enum class Kind { kInsertData, kDeleteData, kDeleteWhere, kModify };
  Kind kind = Kind::kInsertData;
  std::vector<TriplePattern> insert_template;
  std::vector<TriplePattern> delete_template;
  GraphPattern where;  // kDeleteWhere / kModify
};

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_AST_H_
