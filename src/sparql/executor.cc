#include "sparql/executor.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "rdf/browse.h"
#include "sparql/bgp.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace rdfa::sparql {

using rdf::kNoTermId;
using rdf::Term;
using rdf::TermId;

namespace {

// Row counts below this are not worth splitting into morsels.
constexpr size_t kParallelRowThreshold = 128;
constexpr size_t kMorselsPerThread = 4;
constexpr size_t kMinMorselRows = 64;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool IsInternalVarName(const std::string& name) {
  return StartsWith(name, "_path") || StartsWith(name, "_agg");
}

void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == Expr::Kind::kAggregate) {
    out->push_back(&e);
    return;  // nested aggregates are not allowed
  }
  for (const ExprPtr& a : e.args) {
    if (a != nullptr) CollectAggregates(*a, out);
  }
}

/// Computes one aggregate over the rows of a group.
Value ComputeAggregate(const Expr& agg, const std::vector<Binding>& rows,
                       const EvalContext& ctx) {
  if (agg.agg_star) {
    // COUNT(*), possibly DISTINCT (over whole rows; DISTINCT * is rare).
    return Value::Int(static_cast<int64_t>(rows.size()));
  }
  const Expr& arg = *agg.args[0];
  std::vector<Value> values;
  values.reserve(rows.size());
  std::set<std::string> seen;
  for (const Binding& row : rows) {
    Value v = EvalExpr(arg, row, ctx);
    if (v.is_unbound()) continue;
    if (agg.agg_distinct) {
      std::string key = v.ToTerm().ToNTriples();
      if (!seen.insert(key).second) continue;
    }
    values.push_back(std::move(v));
  }
  switch (agg.agg) {
    case AggFunc::kCount:
      return Value::Int(static_cast<int64_t>(values.size()));
    case AggFunc::kSum: {
      bool all_int = true;
      double sum = 0;
      int64_t isum = 0;
      for (const Value& v : values) {
        auto n = v.AsNumeric();
        if (!n.has_value()) return Value::Unbound();
        sum += *n;
        if (v.kind() == Value::Kind::kInt) {
          isum += v.int_value();
        } else {
          all_int = false;
        }
      }
      return all_int ? Value::Int(isum) : Value::Double(sum);
    }
    case AggFunc::kAvg: {
      if (values.empty()) return Value::Unbound();
      double sum = 0;
      for (const Value& v : values) {
        auto n = v.AsNumeric();
        if (!n.has_value()) return Value::Unbound();
        sum += *n;
      }
      return Value::Double(sum / static_cast<double>(values.size()));
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (values.empty()) return Value::Unbound();
      const Value* best = &values[0];
      for (size_t i = 1; i < values.size(); ++i) {
        auto c = Value::Compare(values[i], *best);
        if (!c.has_value()) continue;
        if ((agg.agg == AggFunc::kMin && *c < 0) ||
            (agg.agg == AggFunc::kMax && *c > 0)) {
          best = &values[i];
        }
      }
      return *best;
    }
    case AggFunc::kGroupConcat: {
      std::string out;
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += agg.agg_separator;
        out += values[i].AsString();
      }
      return Value::String(std::move(out));
    }
    case AggFunc::kSample:
      return values.empty() ? Value::Unbound() : values[0];
  }
  return Value::Unbound();
}

Term ValueToCell(const Value& v) {
  if (v.is_unbound()) return Term();  // empty IRI: the unbound marker
  return v.ToTerm();
}

/// Engine-level per-query metrics, ticked exactly once per Execute() call
/// (the endpoint layer keeps its own admission/cache metrics — recording
/// here keeps direct Executor use and endpoint use consistent).
void RecordQueryMetrics(const ExecStats& stats, StatusCode code) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("rdfa_queries_total", "Queries executed (any outcome)")
      .Increment();
  reg.GetHistogram("rdfa_query_latency_ms", Histogram::LatencyBoundsMs(),
                   "End-to-end Execute() wall time in milliseconds")
      .Observe(stats.total_ms);
  uint64_t scanned = 0;
  for (size_t rows : stats.rows_scanned) scanned += rows;
  if (scanned > 0) {
    reg.GetCounter("rdfa_rows_scanned_total",
                   "Index rows enumerated by BGP pattern scans")
        .Increment(scanned);
  }
  if (code == StatusCode::kCancelled) {
    reg.GetCounter("rdfa_queries_cancelled_total",
                   "Queries that unwound on cooperative cancellation")
        .Increment();
  } else if (code == StatusCode::kDeadlineExceeded) {
    reg.GetCounter("rdfa_queries_timed_out_total",
                   "Queries that unwound on a tripped deadline")
        .Increment();
  }
}

/// Forward (or backward) BFS over edges labeled `p`, starting at `start`;
/// `start` itself is included only when `reflexive`.
std::set<TermId> Reachable(const rdf::Graph& graph, TermId start, TermId p,
                           bool forward, bool reflexive) {
  std::set<TermId> seen;
  std::vector<TermId> work = {start};
  while (!work.empty()) {
    TermId cur = work.back();
    work.pop_back();
    auto visit = [&](TermId next) {
      if (seen.insert(next).second) work.push_back(next);
    };
    if (forward) {
      graph.ForEachMatch(cur, p, kNoTermId,
                         [&](const rdf::TripleId& t) { visit(t.o); });
    } else {
      graph.ForEachMatch(kNoTermId, p, cur,
                         [&](const rdf::TripleId& t) { visit(t.s); });
    }
  }
  // Without `reflexive`, `start` is a member only when a cycle reaches it
  // (it is never seeded into `seen`).
  if (reflexive) seen.insert(start);
  return seen;
}

}  // namespace

Result<std::vector<Binding>> Executor::EvalPattern(const GraphPattern& pattern,
                                                   VarTable* vars,
                                                   std::vector<Binding> seed) {
  std::vector<Binding> rows = std::move(seed);
  if (rows.empty()) rows.push_back(Binding());

  // Filters apply to the whole group (SPARQL semantics): hoist them. A
  // filter may still run early — as soon as every variable it mentions is
  // *certainly* bound (bound in every row), its verdict per row is final,
  // so early pruning is equivalent and cheaper (ablation knob
  // `push_filters_`).
  struct PendingFilter {
    const PatternElement* el;
    std::set<std::string> vars;
    bool done = false;
  };
  // `body` keeps every element in source order (filters included, so a
  // ready filter splits a join run and prunes early); `filters` tracks the
  // pending set.
  std::vector<const PatternElement*> body;
  std::vector<PendingFilter> filters;
  for (const PatternElement& el : pattern.elements) {
    if (el.kind == PatternElement::Kind::kFilter) {
      PendingFilter f;
      f.el = &el;
      if (el.filter != nullptr) el.filter->CollectVars(&f.vars);
      filters.push_back(std::move(f));
    }
    body.push_back(&el);
  }
  std::set<std::string> certainly_bound;

  auto grow_rows = [&]() {
    for (Binding& b : rows) {
      if (b.size() < vars->size()) b.resize(vars->size(), kNoTermId);
    }
  };

  // EXISTS { ... } inside filters joins the probe pattern against the
  // current row. A VarTable copy isolates variables the probe introduces.
  std::function<bool(const GraphPattern&, const Binding&)> exists_fn =
      [this, vars](const GraphPattern& probe, const Binding& row) {
        VarTable local = *vars;
        auto res = EvalPattern(probe, &local, {row});
        return res.ok() && !res.value().empty();
      };
  EvalContext ctx{&graph_->terms(), vars, nullptr, &exists_fn};

  // Applies every not-yet-run filter whose variables are all certainly
  // bound. EXISTS filters always wait for the end (their subpattern scope
  // may mention anything).
  auto apply_ready_filters = [&](bool at_end) {
    for (PendingFilter& f : filters) {
      if (f.done) continue;
      if (!at_end) {
        if (!push_filters_ || f.el->filter->ContainsExists()) continue;
        bool ready = true;
        for (const std::string& v : f.vars) {
          if (!certainly_bound.count(v)) {
            ready = false;
            break;
          }
        }
        if (!ready) continue;
      }
      std::vector<Binding> next;
      next.reserve(rows.size());
      for (Binding& row : rows) {
        auto b = EvalExpr(*f.el->filter, row, ctx).EffectiveBool();
        if (b.has_value() && *b) next.push_back(std::move(row));
      }
      rows = std::move(next);
      f.done = true;
    }
  };

  size_t i = 0;
  while (i < body.size()) {
    RDFA_RETURN_NOT_OK(ctx_.Check("pattern-eval"));
    const PatternElement& el = *body[i];
    switch (el.kind) {
      case PatternElement::Kind::kTriple: {
        // Gather the contiguous run of triples and join them together.
        std::vector<CompiledPattern> compiled;
        while (i < body.size() &&
               body[i]->kind == PatternElement::Kind::kTriple) {
          const TriplePattern& tp = body[i]->triple;
          for (const NodePattern* n : {&tp.s, &tp.p, &tp.o}) {
            if (n->is_var) certainly_bound.insert(n->var);
          }
          compiled.push_back(CompileTriple(tp, vars, *graph_));
          ++i;
        }
        grow_rows();
        {
          auto start = std::chrono::steady_clock::now();
          JoinOptions jopts;
          jopts.threads = threads_;
          jopts.stats = &stats_;
          jopts.ctx = &ctx_;
          jopts.strategy = join_strategy_;
          jopts.calibrated_estimates = calibrated_estimates_;
          jopts.use_dp = use_dp_;
          jopts.sip = sip_;
          // Plan-cache hookup: BGP join runs are numbered in evaluation
          // order (deterministic for a fixed AST + graph), so a replayed
          // query consumes the cached order recorded at the same position.
          const size_t seq = bgp_seq_++;
          std::vector<int> replay;
          if (replay_orders_ != nullptr && seq < replay_orders_->size()) {
            replay = (*replay_orders_)[seq];
            jopts.replay_order = &replay;
          }
          std::vector<int> chosen;
          if (capture_orders_ != nullptr && seq < kMaxCachedBgpOrders) {
            jopts.capture_order = &chosen;
          }
          Status join_status =
              JoinBgp(*graph_, std::move(compiled), vars->size(),
                      reorder_joins_, jopts, &rows);
          if (jopts.capture_order != nullptr) {
            if (capture_orders_->size() <= seq) {
              capture_orders_->resize(seq + 1);
            }
            (*capture_orders_)[seq] = std::move(chosen);
          }
          stats_.bgp_ms += MsSince(start);
          RDFA_RETURN_NOT_OK(join_status);
        }
        apply_ready_filters(false);
        continue;
      }
      case PatternElement::Kind::kOptional: {
        std::vector<Binding> next;
        for (Binding& row : rows) {
          RDFA_ASSIGN_OR_RETURN(std::vector<Binding> extended,
                                EvalPattern(*el.child, vars, {row}));
          if (extended.empty()) {
            next.push_back(std::move(row));
          } else {
            for (Binding& e : extended) next.push_back(std::move(e));
          }
        }
        rows = std::move(next);
        grow_rows();
        break;
      }
      case PatternElement::Kind::kUnion: {
        RDFA_ASSIGN_OR_RETURN(std::vector<Binding> lhs,
                              EvalPattern(*el.child, vars, rows));
        RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rhs,
                              EvalPattern(*el.child2, vars, rows));
        rows = std::move(lhs);
        for (Binding& b : rhs) rows.push_back(std::move(b));
        grow_rows();
        break;
      }
      case PatternElement::Kind::kBind: {
        int slot = vars->IdOf(el.bind_var);
        grow_rows();
        for (Binding& row : rows) {
          Value v = EvalExpr(*el.bind_expr, row, ctx);
          if (!v.is_unbound()) {
            row[slot] = graph_->terms().Intern(v.ToTerm());
          }
        }
        certainly_bound.insert(el.bind_var);
        apply_ready_filters(false);
        break;
      }
      case PatternElement::Kind::kValues: {
        int slot = vars->IdOf(el.values_var);
        grow_rows();
        std::vector<TermId> ids;
        ids.reserve(el.values_terms.size());
        for (const Term& t : el.values_terms) {
          ids.push_back(graph_->terms().Intern(t));
        }
        std::vector<Binding> next;
        for (const Binding& row : rows) {
          if (row[slot] != kNoTermId) {
            // Already bound: keep only if listed.
            if (std::find(ids.begin(), ids.end(), row[slot]) != ids.end()) {
              next.push_back(row);
            }
            continue;
          }
          for (TermId id : ids) {
            Binding extended = row;
            extended[slot] = id;
            next.push_back(std::move(extended));
          }
        }
        rows = std::move(next);
        certainly_bound.insert(el.values_var);
        apply_ready_filters(false);
        break;
      }
      case PatternElement::Kind::kSubSelect: {
        RDFA_ASSIGN_OR_RETURN(ResultTable sub, Select(*el.sub_select));
        // Hash-join on shared variable names.
        std::vector<int> slots;
        slots.reserve(sub.num_columns());
        for (const std::string& col : sub.columns()) {
          slots.push_back(vars->IdOf(col));
        }
        grow_rows();
        // Intern subquery results.
        std::vector<std::vector<TermId>> sub_rows;
        sub_rows.reserve(sub.num_rows());
        for (size_t r = 0; r < sub.num_rows(); ++r) {
          std::vector<TermId> ids;
          ids.reserve(sub.num_columns());
          for (size_t c = 0; c < sub.num_columns(); ++c) {
            const Term& t = sub.at(r, c);
            ids.push_back(ResultTable::IsUnbound(t)
                              ? kNoTermId
                              : graph_->terms().Intern(t));
          }
          sub_rows.push_back(std::move(ids));
        }
        std::vector<Binding> next;
        for (const Binding& row : rows) {
          for (const auto& srow : sub_rows) {
            Binding extended = row;
            bool ok = true;
            for (size_t c = 0; c < slots.size(); ++c) {
              int slot = slots[c];
              if (srow[c] == kNoTermId) continue;
              if (extended[slot] != kNoTermId && extended[slot] != srow[c]) {
                ok = false;
                break;
              }
              extended[slot] = srow[c];
            }
            if (ok) next.push_back(std::move(extended));
          }
        }
        rows = std::move(next);
        for (const std::string& col : sub.columns()) {
          certainly_bound.insert(col);
        }
        apply_ready_filters(false);
        break;
      }
      case PatternElement::Kind::kMinus: {
        // Keeps rows with no compatible solution in the child pattern
        // (evaluated seeded with the row, i.e. NOT-EXISTS-style semantics).
        std::vector<Binding> kept;
        for (Binding& row : rows) {
          RDFA_ASSIGN_OR_RETURN(std::vector<Binding> matched,
                                EvalPattern(*el.child, vars, {row}));
          if (matched.empty()) kept.push_back(std::move(row));
        }
        rows = std::move(kept);
        grow_rows();
        break;
      }
      case PatternElement::Kind::kTransPath: {
        TraceSpan path_span(ctx_.tracer(), "path-expansion");
        path_span.Arg("input_rows", static_cast<uint64_t>(rows.size()));
        TermId pid = el.triple.p.is_var
                         ? kNoTermId
                         : graph_->terms().Find(el.triple.p.term);
        int s_var = el.triple.s.is_var ? vars->IdOf(el.triple.s.var) : -1;
        int o_var = el.triple.o.is_var ? vars->IdOf(el.triple.o.var) : -1;
        TermId s_const = el.triple.s.is_var
                             ? kNoTermId
                             : graph_->terms().Find(el.triple.s.term);
        TermId o_const = el.triple.o.is_var
                             ? kNoTermId
                             : graph_->terms().Find(el.triple.o.term);
        grow_rows();
        std::vector<Binding> next;
        for (const Binding& row : rows) {
          // BFS expansions can dwarf everything else on a pathological
          // path query: poll per source row.
          if (ctx_.ShouldStop()) return ctx_.Check("path-expansion");
          TermId s = s_var >= 0 && row[s_var] != kNoTermId ? row[s_var]
                                                           : s_const;
          TermId o = o_var >= 0 && row[o_var] != kNoTermId ? row[o_var]
                                                           : o_const;
          auto emit = [&](TermId sv, TermId ov) {
            Binding extended = row;
            if (s_var >= 0) extended[s_var] = sv;
            if (o_var >= 0) extended[o_var] = ov;
            next.push_back(std::move(extended));
          };
          if (pid == kNoTermId) {
            // Property absent: only the reflexive case can match.
            if (el.path_reflexive && s != kNoTermId) {
              if (o == kNoTermId || o == s) emit(s, s);
            }
            continue;
          }
          if (s != kNoTermId) {
            std::set<TermId> reach =
                Reachable(*graph_, s, pid, /*forward=*/true,
                          el.path_reflexive);
            if (o != kNoTermId) {
              if (reach.count(o)) emit(s, o);
            } else {
              for (TermId r : reach) emit(s, r);
            }
          } else if (o != kNoTermId) {
            std::set<TermId> reach =
                Reachable(*graph_, o, pid, /*forward=*/false,
                          el.path_reflexive);
            for (TermId r : reach) emit(r, o);
          } else {
            // Both endpoints free: expand from every subject of p.
            std::set<TermId> starts;
            graph_->ForEachMatch(kNoTermId, pid, kNoTermId,
                                 [&](const rdf::TripleId& t) {
                                   starts.insert(t.s);
                                   if (el.path_reflexive) starts.insert(t.o);
                                 });
            for (TermId start : starts) {
              for (TermId r : Reachable(*graph_, start, pid, true,
                                        el.path_reflexive)) {
                emit(start, r);
              }
            }
          }
        }
        rows = std::move(next);
        if (el.triple.s.is_var) certainly_bound.insert(el.triple.s.var);
        if (el.triple.o.is_var) certainly_bound.insert(el.triple.o.var);
        apply_ready_filters(false);
        break;
      }
      case PatternElement::Kind::kFilter:
        // Already pending; at its source position it may be ready to run.
        apply_ready_filters(false);
        break;
    }
    ++i;
  }

  grow_rows();
  apply_ready_filters(/*at_end=*/true);
  return rows;
}

Result<ResultTable> Executor::Select(const SelectQuery& query) {
  VarTable vars;
  RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                        EvalPattern(query.where, &vars, {}));

  EvalContext ctx{&graph_->terms(), &vars, nullptr};

  // Resolve the projection list.
  std::vector<Projection> projections = query.projections;
  if (query.select_all) {
    for (const std::string& name : vars.names()) {
      if (!IsInternalVarName(name)) {
        Projection p;
        p.var = name;
        projections.push_back(std::move(p));
      }
    }
  }

  bool has_aggregate = !query.group_by.empty() || !query.having.empty();
  for (const Projection& p : projections) {
    if (p.expr != nullptr && p.expr->ContainsAggregate()) has_aggregate = true;
  }

  ResultTable out([&] {
    std::vector<std::string> cols;
    cols.reserve(projections.size());
    for (const Projection& p : projections) cols.push_back(p.var);
    return cols;
  }());

  // Rows that survive to ordering: output cells + context for ORDER BY.
  struct OutRow {
    std::vector<Term> cells;
    Binding binding;
    std::map<const Expr*, Value> agg_values;
  };
  std::vector<OutRow> out_rows;

  auto agg_start = std::chrono::steady_clock::now();
  // optional so the span closes at the stage boundary below, not at
  // function exit (early returns still close it via RAII).
  std::optional<TraceSpan> agg_span;
  agg_span.emplace(ctx_.tracer(),
                   has_aggregate ? "group-aggregate" : "projection");
  agg_span->Arg("input_rows", static_cast<uint64_t>(rows.size()));
  if (has_aggregate) {
    // Group rows by the GROUP BY key. With a thread budget, morsels of rows
    // build per-morsel partial hash tables that are merged in morsel order,
    // so every group's row list matches the serial order exactly (this is
    // what keeps non-commutative-looking aggregates like GROUP_CONCAT and
    // floating-point SUM byte-identical to the serial path).
    using GroupMap = std::map<std::vector<std::string>, std::vector<Binding>>;
    GroupMap groups;
    if (rows.empty() && query.group_by.empty()) {
      groups[{}] = {};  // aggregates over the empty solution: one group
    }
    auto key_of = [&](const Binding& row) {
      std::vector<std::string> key;
      key.reserve(query.group_by.size());
      for (const ExprPtr& g : query.group_by) {
        Value v = EvalExpr(*g, row, ctx);
        key.push_back(v.is_unbound() ? std::string("\x01unbound")
                                     : v.ToTerm().ToNTriples());
      }
      return key;
    };
    if (threads_ > 1 && rows.size() >= kParallelRowThreshold) {
      auto morsels =
          Morsels(rows.size(), static_cast<size_t>(threads_) * kMorselsPerThread,
                  kMinMorselRows);
      std::vector<GroupMap> parts(morsels.size());
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        if (ctx_.ShouldStop()) return;  // abandon; trip reported below
        auto [lo, hi] = morsels[m];
        for (size_t r = lo; r < hi; ++r) {
          parts[m][key_of(rows[r])].push_back(std::move(rows[r]));
        }
      });
      RDFA_RETURN_NOT_OK(ctx_.Check("group-aggregate"));
      for (GroupMap& part : parts) {
        for (auto& [key, part_rows] : part) {
          std::vector<Binding>& dst = groups[key];
          for (Binding& b : part_rows) dst.push_back(std::move(b));
        }
      }
      stats_.morsel_count += morsels.size();
    } else {
      size_t r = 0;
      for (Binding& row : rows) {
        if (++r % kParallelRowThreshold == 0 && ctx_.ShouldStop()) {
          return ctx_.Check("group-aggregate");
        }
        groups[key_of(row)].push_back(std::move(row));
      }
    }

    // All aggregate nodes used anywhere downstream.
    std::vector<const Expr*> agg_nodes;
    for (const Projection& p : projections) {
      if (p.expr != nullptr) CollectAggregates(*p.expr, &agg_nodes);
    }
    for (const ExprPtr& h : query.having) CollectAggregates(*h, &agg_nodes);
    for (const OrderKey& k : query.order_by) {
      CollectAggregates(*k.expr, &agg_nodes);
    }

    // Aggregate + HAVING + projection per group. Groups are independent, so
    // morsels of groups run in parallel; results land in pre-sized slots and
    // survivors are appended in group (map) order — deterministic.
    std::vector<std::vector<Binding>*> group_rows_list;
    group_rows_list.reserve(groups.size());
    for (auto& [key, group_rows] : groups) group_rows_list.push_back(&group_rows);
    struct GroupOut {
      OutRow row;
      bool keep = false;
    };
    std::vector<GroupOut> gout(group_rows_list.size());
    auto compute_group = [&](size_t gi) {
      std::vector<Binding>& group_rows = *group_rows_list[gi];
      Binding rep = group_rows.empty() ? Binding(vars.size(), kNoTermId)
                                       : group_rows.front();
      std::map<const Expr*, Value> agg_values;
      for (const Expr* node : agg_nodes) {
        agg_values[node] = ComputeAggregate(*node, group_rows, ctx);
      }
      EvalContext gctx{&graph_->terms(), &vars, &agg_values};
      // HAVING.
      for (const ExprPtr& h : query.having) {
        auto b = EvalExpr(*h, rep, gctx).EffectiveBool();
        if (!b.has_value() || !*b) return;
      }
      GroupOut& go = gout[gi];
      go.keep = true;
      go.row.binding = rep;
      go.row.agg_values = std::move(agg_values);
      EvalContext rctx{&graph_->terms(), &vars, &go.row.agg_values};
      for (const Projection& p : projections) {
        if (p.expr == nullptr) {
          int slot = vars.Find(p.var);
          go.row.cells.push_back(
              (slot >= 0 && static_cast<size_t>(slot) < rep.size() &&
               rep[slot] != kNoTermId)
                  ? graph_->terms().Get(rep[slot])
                  : Term());
        } else {
          go.row.cells.push_back(ValueToCell(EvalExpr(*p.expr, rep, rctx)));
        }
      }
    };
    if (threads_ > 1 && group_rows_list.size() >= 2) {
      auto morsels = Morsels(group_rows_list.size(),
                             static_cast<size_t>(threads_) * kMorselsPerThread,
                             /*min_grain=*/1);
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        auto [lo, hi] = morsels[m];
        for (size_t gi = lo; gi < hi; ++gi) {
          // One counted checkpoint per group: a cancel mid-aggregate trips
          // here, and the per-group check count matches the serial path so
          // deterministic-cancellation tests see one sequence.
          if (!ctx_.Check("group-aggregate").ok()) return;
          compute_group(gi);
        }
      });
      RDFA_RETURN_NOT_OK(ctx_.Check("group-aggregate"));
      stats_.morsel_count += morsels.size();
    } else {
      for (size_t gi = 0; gi < group_rows_list.size(); ++gi) {
        RDFA_RETURN_NOT_OK(ctx_.Check("group-aggregate"));
        compute_group(gi);
      }
    }
    for (GroupOut& go : gout) {
      if (go.keep) out_rows.push_back(std::move(go.row));
    }
  } else {
    auto project_row = [&](Binding& row, OutRow* orow) {
      for (const Projection& p : projections) {
        if (p.expr == nullptr) {
          int slot = vars.Find(p.var);
          orow->cells.push_back(
              (slot >= 0 && static_cast<size_t>(slot) < row.size() &&
               row[slot] != kNoTermId)
                  ? graph_->terms().Get(row[slot])
                  : Term());
        } else {
          orow->cells.push_back(ValueToCell(EvalExpr(*p.expr, row, ctx)));
        }
      }
      orow->binding = std::move(row);
    };
    if (threads_ > 1 && rows.size() >= kParallelRowThreshold) {
      out_rows.resize(rows.size());
      auto morsels =
          Morsels(rows.size(), static_cast<size_t>(threads_) * kMorselsPerThread,
                  kMinMorselRows);
      ThreadPool::Shared().ParallelFor(morsels.size(), [&](size_t m) {
        if (ctx_.ShouldStop()) return;
        auto [lo, hi] = morsels[m];
        for (size_t r = lo; r < hi; ++r) project_row(rows[r], &out_rows[r]);
      });
      RDFA_RETURN_NOT_OK(ctx_.Check("projection"));
      stats_.morsel_count += morsels.size();
    } else {
      size_t r = 0;
      for (Binding& row : rows) {
        if (++r % kParallelRowThreshold == 0 && ctx_.ShouldStop()) {
          return ctx_.Check("projection");
        }
        OutRow orow;
        project_row(row, &orow);
        out_rows.push_back(std::move(orow));
      }
    }
  }
  stats_.group_agg_ms += MsSince(agg_start);
  agg_span->Arg("output_rows", static_cast<uint64_t>(out_rows.size()));
  agg_span.reset();

  // ORDER BY.
  if (!query.order_by.empty()) {
    auto key_value = [&](const OutRow& r, const OrderKey& k) -> Value {
      // An alias referring to an output column takes precedence.
      if (k.expr->kind == Expr::Kind::kVar) {
        int col = out.ColumnIndex(k.expr->var);
        if (col >= 0 && vars.Find(k.expr->var) < 0) {
          const Term& t = r.cells[col];
          return ResultTable::IsUnbound(t) ? Value::Unbound()
                                           : Value::FromTerm(t);
        }
      }
      EvalContext octx{&graph_->terms(), &vars, &r.agg_values};
      return EvalExpr(*k.expr, r.binding, octx);
    };
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (const OrderKey& k : query.order_by) {
                         Value va = key_value(a, k);
                         Value vb = key_value(b, k);
                         if (va.is_unbound() && vb.is_unbound()) continue;
                         if (va.is_unbound()) return k.ascending;
                         if (vb.is_unbound()) return !k.ascending;
                         auto c = Value::Compare(va, vb);
                         if (!c.has_value() || *c == 0) continue;
                         return k.ascending ? *c < 0 : *c > 0;
                       }
                       return false;
                     });
  }

  // DISTINCT.
  if (query.distinct) {
    std::set<std::string> seen;
    std::vector<OutRow> deduped;
    for (OutRow& r : out_rows) {
      std::string key;
      for (const Term& t : r.cells) key += t.ToNTriples() + "\t";
      if (seen.insert(key).second) deduped.push_back(std::move(r));
    }
    out_rows = std::move(deduped);
  }

  // OFFSET / LIMIT. A negative offset (defensive: the parser rejects them)
  // clamps to 0 rather than wrapping through the size_t cast.
  size_t begin = query.offset > 0
                     ? std::min<size_t>(static_cast<size_t>(query.offset),
                                        out_rows.size())
                     : 0;
  size_t end = out_rows.size();
  if (query.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(query.limit));
  }
  for (size_t r = begin; r < end; ++r) {
    out.AddRow(std::move(out_rows[r].cells));
  }
  return out;
}

Result<bool> Executor::Ask(const AskQuery& query) {
  VarTable vars;
  RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                        EvalPattern(query.where, &vars, {}));
  return !rows.empty();
}

Result<size_t> Executor::Construct(const ConstructQuery& query,
                                   rdf::Graph* out) {
  VarTable vars;
  RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                        EvalPattern(query.where, &vars, {}));
  size_t added = 0;
  for (const Binding& row : rows) {
    for (const TriplePattern& tp : query.construct_template) {
      auto instantiate = [&](const NodePattern& n, Term* t) {
        if (!n.is_var) {
          *t = n.term;
          return true;
        }
        int slot = vars.Find(n.var);
        if (slot < 0 || static_cast<size_t>(slot) >= row.size() ||
            row[slot] == kNoTermId) {
          return false;
        }
        *t = graph_->terms().Get(row[slot]);
        return true;
      };
      Term s, p, o;
      if (!instantiate(tp.s, &s) || !instantiate(tp.p, &p) ||
          !instantiate(tp.o, &o)) {
        continue;
      }
      if (s.is_literal() || !p.is_iri()) continue;
      if (out->Add(s, p, o)) ++added;
    }
  }
  return added;
}

Result<size_t> Executor::Describe(const DescribeQuery& query,
                                  rdf::Graph* out) {
  std::set<TermId> subjects;
  for (const Term& t : query.resources) {
    TermId id = graph_->terms().Find(t);
    if (id != kNoTermId) subjects.insert(id);
  }
  if (!query.vars.empty()) {
    VarTable vars;
    RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                          EvalPattern(query.where, &vars, {}));
    for (const std::string& name : query.vars) {
      int slot = vars.Find(name);
      if (slot < 0) continue;
      for (const Binding& row : rows) {
        if (static_cast<size_t>(slot) < row.size() &&
            row[slot] != kNoTermId) {
          subjects.insert(row[slot]);
        }
      }
    }
  }
  size_t added = 0;
  for (TermId s : subjects) {
    added += rdf::ConciseBoundedDescription(*graph_, s, out);
  }
  return added;
}

Result<ResultTable> Executor::Execute(const ParsedQuery& query) {
  stats_.Reset();
  stats_.threads = threads_;
  bgp_seq_ = 0;
  auto total_start = std::chrono::steady_clock::now();
  TraceSpan exec_span(ctx_.tracer(), "execute");
  exec_span.Arg("threads", static_cast<int64_t>(threads_));

  // Zero-deadline (or already-cancelled) fast fail: no work is admitted at
  // all, mirroring a serving stack rejecting a request whose budget is
  // already spent. Stats still record the run (threads, ~0ms, aborted).
  {
    Status admit = ctx_.Check("admission");
    if (!admit.ok()) {
      stats_.aborted = true;
      stats_.abort_stage =
          ctx_.trip_stage() != nullptr ? ctx_.trip_stage() : "admission";
      stats_.total_ms = MsSince(total_start);
      exec_span.Arg("aborted", true);
      exec_span.Arg("abort_stage", stats_.abort_stage);
      RecordQueryMetrics(stats_, admit.code());
      return admit;
    }
  }

  // Eager first-touch index build: done here, once, so (a) its cost shows
  // up as index_build_ms rather than inside the first pattern scan, and
  // (b) parallel workers only ever see a clean index.
  auto freeze_start = std::chrono::steady_clock::now();
  {
    TraceSpan freeze_span(ctx_.tracer(), "index-build");
    graph_->Freeze();
  }
  stats_.index_build_ms = MsSince(freeze_start);

  // Mapped-backend decode accounting: snapshot the view's relaxed counters
  // around the dispatch so the per-query deltas land in the trace and the
  // global rdfa_mmap_* counters. Reads only; never affects results.
  const rdf::MappedGraphView* mapped = graph_->mapped();
  rdf::MappedGraphView::DecodeCounters mm_before{};
  if (mapped != nullptr) mm_before = mapped->decode_counters();

  Result<ResultTable> result = [&]() -> Result<ResultTable> {
    switch (query.form) {
      case ParsedQuery::Form::kSelect:
        return Select(query.select);
      case ParsedQuery::Form::kAsk: {
        RDFA_ASSIGN_OR_RETURN(bool b, Ask(query.ask));
        ResultTable t({"ask"});
        t.AddRow({Term::Boolean(b)});
        return t;
      }
      case ParsedQuery::Form::kConstruct:
        return Status::InvalidArgument(
            "CONSTRUCT queries need an output graph; use Executor::Construct");
      case ParsedQuery::Form::kDescribe:
        return Status::InvalidArgument(
            "DESCRIBE queries need an output graph; use Executor::Describe");
    }
    return Status::Internal("unknown query form");
  }();
  if (mapped != nullptr) {
    const rdf::MappedGraphView::DecodeCounters mm = mapped->decode_counters();
    const uint64_t key_blocks = mm.key_blocks_decoded - mm_before.key_blocks_decoded;
    const uint64_t term_blocks =
        mm.term_blocks_decoded - mm_before.term_blocks_decoded;
    const uint64_t dict_lookups = mm.dict_lookups - mm_before.dict_lookups;
    const uint64_t blocks_skipped = mm.blocks_skipped - mm_before.blocks_skipped;
    {
      TraceSpan decode_span(ctx_.tracer(), "mmap-decode");
      decode_span.Arg("key_blocks", key_blocks);
      decode_span.Arg("term_blocks", term_blocks);
      decode_span.Arg("dict_lookups", dict_lookups);
      decode_span.Arg("blocks_skipped", blocks_skipped);
    }
    auto& reg = MetricsRegistry::Global();
    reg.GetCounter("rdfa_mmap_key_blocks_decoded_total",
                   "Mapped-snapshot permutation key blocks decoded")
        .Increment(key_blocks);
    reg.GetCounter("rdfa_mmap_term_blocks_decoded_total",
                   "Mapped-snapshot dictionary term blocks decoded")
        .Increment(term_blocks);
    reg.GetCounter("rdfa_mmap_dict_lookups_total",
                   "Mapped-snapshot dictionary term lookups")
        .Increment(dict_lookups);
    reg.GetCounter("rdfa_mmap_blocks_skipped_total",
                   "Mapped-snapshot permutation blocks skipped via SeekGE")
        .Increment(blocks_skipped);
  }
  stats_.total_ms = MsSince(total_start);
  StatusCode code = result.status().code();
  if (code == StatusCode::kDeadlineExceeded || code == StatusCode::kCancelled) {
    stats_.aborted = true;
    if (ctx_.trip_stage() != nullptr) stats_.abort_stage = ctx_.trip_stage();
  }
  exec_span.Arg("aborted", stats_.aborted);
  if (stats_.aborted) exec_span.Arg("abort_stage", stats_.abort_stage);
  if (result.ok()) {
    exec_span.Arg("rows", static_cast<uint64_t>(result.value().num_rows()));
  }
  RecordQueryMetrics(stats_, code);
  return result;
}

std::string Executor::ExplainJson(const ParsedQuery& query) {
  graph_->Freeze();
  const GraphPattern* where = &query.select.where;
  const char* form = "select";
  switch (query.form) {
    case ParsedQuery::Form::kSelect:
      break;
    case ParsedQuery::Form::kAsk:
      where = &query.ask.where;
      form = "ask";
      break;
    case ParsedQuery::Form::kConstruct:
      where = &query.construct.where;
      form = "construct";
      break;
    case ParsedQuery::Form::kDescribe:
      where = &query.describe.where;
      form = "describe";
      break;
  }
  const char* strategy = "adaptive";
  switch (join_strategy_) {
    case JoinStrategy::kAdaptive:
      break;
    case JoinStrategy::kNestedLoop:
      strategy = "nested-loop";
      break;
    case JoinStrategy::kHash:
      strategy = "hash";
      break;
    case JoinStrategy::kMerge:
      strategy = "merge";
      break;
  }
  std::string out = "{\"form\":\"";
  out += form;
  out += "\",\"strategy\":\"";
  out += strategy;
  out += "\",\"use_dp\":";
  out += use_dp_ ? "true" : "false";
  out += ",\"threads\":";
  out += std::to_string(threads_);
  out += ",\"backend\":\"";
  out += graph_->mapped() != nullptr ? "mmap" : "heap";
  out += "\",\"bgps\":[";

  JoinOptions opts;
  opts.strategy = join_strategy_;
  opts.calibrated_estimates = calibrated_estimates_;
  opts.use_dp = use_dp_;
  opts.sip = sip_;
  VarTable vars;
  bool first = true;
  const auto& body = where->elements;
  size_t i = 0;
  while (i < body.size()) {
    if (body[i].kind != PatternElement::Kind::kTriple) {
      ++i;
      continue;
    }
    std::vector<CompiledPattern> compiled;
    while (i < body.size() && body[i].kind == PatternElement::Kind::kTriple) {
      compiled.push_back(CompileTriple(body[i].triple, &vars, *graph_));
      ++i;
    }
    const std::vector<int> order =
        PlanBgpOrder(*graph_, compiled, opts, reorder_joins_);
    std::vector<CompiledPattern> ordered;
    ordered.reserve(order.size());
    bool impossible = false;
    for (int idx : order) {
      impossible = impossible || compiled[idx].impossible;
      ordered.push_back(compiled[idx]);
    }
    BgpPlan plan = AnnotateBgpPlan(*graph_, ordered);
    plan.used_dp =
        opts.use_dp && compiled.size() > 1 && compiled.size() <= kMaxDpPatterns;
    if (!first) out += ",";
    first = false;
    if (impossible) {
      // A constant term absent from the graph: the run matches nothing.
      // Keep the plan shape but flag it so EXPLAIN readers see the short
      // circuit Execute() would take.
      std::string plan_json = plan.ToJson(order);
      out += "{\"impossible\":true,";
      out += plan_json.substr(1);
    } else {
      out += plan.ToJson(order);
    }
  }
  out += "]}";
  return out;
}

Result<Executor::UpdateStats> Executor::Update(const UpdateRequest& request) {
  UpdateStats stats;

  // Ground templates (INSERT DATA / DELETE DATA): no variables allowed.
  auto ground_triples = [&](const std::vector<TriplePattern>& tmpl,
                            std::vector<std::array<Term, 3>>* out) -> Status {
    for (const TriplePattern& tp : tmpl) {
      if (tp.s.is_var || tp.p.is_var || tp.o.is_var) {
        return Status::InvalidArgument(
            "INSERT DATA / DELETE DATA templates must be ground");
      }
      out->push_back({tp.s.term, tp.p.term, tp.o.term});
    }
    return Status::OK();
  };

  if (request.kind == UpdateRequest::Kind::kInsertData) {
    std::vector<std::array<Term, 3>> triples;
    RDFA_RETURN_NOT_OK(ground_triples(request.insert_template, &triples));
    for (const auto& t : triples) {
      if (graph_->Add(t[0], t[1], t[2])) ++stats.inserted;
    }
    return stats;
  }
  if (request.kind == UpdateRequest::Kind::kDeleteData) {
    std::vector<std::array<Term, 3>> triples;
    RDFA_RETURN_NOT_OK(ground_triples(request.delete_template, &triples));
    for (const auto& t : triples) {
      TermId s = graph_->terms().Find(t[0]);
      TermId p = graph_->terms().Find(t[1]);
      TermId o = graph_->terms().Find(t[2]);
      if (s == kNoTermId || p == kNoTermId || o == kNoTermId) continue;
      stats.deleted += graph_->RemoveMatching(s, p, o);
    }
    return stats;
  }

  // Pattern-driven forms: evaluate WHERE first, then instantiate.
  VarTable vars;
  RDFA_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                        EvalPattern(request.where, &vars, {}));
  auto instantiate = [&](const TriplePattern& tp, const Binding& row,
                         rdf::TripleId* out) {
    auto resolve = [&](const NodePattern& n, TermId* id) {
      if (!n.is_var) {
        *id = graph_->terms().Find(n.term);
        return *id != kNoTermId;
      }
      int slot = vars.Find(n.var);
      if (slot < 0 || static_cast<size_t>(slot) >= row.size() ||
          row[slot] == kNoTermId) {
        return false;
      }
      *id = row[slot];
      return true;
    };
    return resolve(tp.s, &out->s) && resolve(tp.p, &out->p) &&
           resolve(tp.o, &out->o);
  };

  // Collect all instantiations first so deletes/inserts see a consistent
  // binding set (the WHERE ran against the pre-update graph).
  std::vector<rdf::TripleId> to_delete;
  std::vector<std::array<Term, 3>> to_insert;
  for (const Binding& row : rows) {
    for (const TriplePattern& tp : request.delete_template) {
      rdf::TripleId t;
      if (instantiate(tp, row, &t)) to_delete.push_back(t);
    }
    for (const TriplePattern& tp : request.insert_template) {
      rdf::TripleId t;
      bool ok = true;
      // Inserts may introduce brand-new constant terms: intern, not find.
      auto resolve_insert = [&](const NodePattern& n, TermId* id) {
        if (!n.is_var) {
          *id = graph_->terms().Intern(n.term);
          return true;
        }
        int slot = vars.Find(n.var);
        if (slot < 0 || static_cast<size_t>(slot) >= row.size() ||
            row[slot] == kNoTermId) {
          return false;
        }
        *id = row[slot];
        return true;
      };
      ok = resolve_insert(tp.s, &t.s) && resolve_insert(tp.p, &t.p) &&
           resolve_insert(tp.o, &t.o);
      if (ok) {
        to_insert.push_back({graph_->terms().Get(t.s),
                             graph_->terms().Get(t.p),
                             graph_->terms().Get(t.o)});
      }
    }
  }
  for (const rdf::TripleId& t : to_delete) {
    stats.deleted += graph_->RemoveMatching(t.s, t.p, t.o);
  }
  for (const auto& t : to_insert) {
    if (graph_->Add(t[0], t[1], t[2])) ++stats.inserted;
  }
  return stats;
}

Result<ResultTable> ExecuteQueryString(rdf::Graph* graph,
                                       std::string_view text,
                                       const rdf::PrefixMap* prefixes) {
  RDFA_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(text, prefixes));
  Executor exec(graph);
  return exec.Execute(q);
}

Result<Executor::UpdateStats> ExecuteUpdateString(
    rdf::Graph* graph, std::string_view text,
    const rdf::PrefixMap* prefixes) {
  RDFA_ASSIGN_OR_RETURN(UpdateRequest u, ParseUpdate(text, prefixes));
  Executor exec(graph);
  return exec.Update(u);
}

}  // namespace rdfa::sparql
