#include "sparql/result_table.h"

namespace rdfa::sparql {

int ResultTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultTable::ToTsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += '\t';
    out += '?' + columns_[i];
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += IsUnbound(row[i]) ? "" : row[i].ToNTriples();
    }
    out += '\n';
  }
  return out;
}

size_t ResultTable::ApproxBytes() const {
  size_t bytes = sizeof(ResultTable);
  for (const std::string& c : columns_) bytes += sizeof(std::string) + c.size();
  for (const auto& row : rows_) {
    bytes += sizeof(row) + row.capacity() * sizeof(rdf::Term);
    for (const rdf::Term& t : row) {
      bytes += t.lexical().size() + t.datatype().size() + t.lang().size();
    }
  }
  return bytes;
}

}  // namespace rdfa::sparql
