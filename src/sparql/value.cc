#include "sparql/value.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "rdf/namespaces.h"

namespace rdfa::sparql {

using rdf::Term;

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::FromTerm(const Term& term) {
  namespace xsd = rdf::xsd;
  if (term.is_literal()) {
    const std::string& dt = term.datatype();
    if (dt == xsd::kInteger || dt == xsd::kInt || dt == xsd::kLong) {
      char* end = nullptr;
      long long parsed = std::strtoll(term.lexical().c_str(), &end, 10);
      if (end != nullptr && *end == '\0') return Int(parsed);
    } else if (dt == xsd::kDouble || dt == xsd::kDecimal || dt == xsd::kFloat) {
      char* end = nullptr;
      double parsed = std::strtod(term.lexical().c_str(), &end);
      if (end != nullptr && *end == '\0') return Double(parsed);
    } else if (dt == xsd::kBoolean) {
      if (term.lexical() == "true" || term.lexical() == "1") return Bool(true);
      if (term.lexical() == "false" || term.lexical() == "0") return Bool(false);
    }
  }
  Value v;
  v.kind_ = Kind::kTerm;
  v.term_ = term;
  return v;
}

Term Value::ToTerm() const {
  switch (kind_) {
    case Kind::kBool:
      return Term::Boolean(bool_);
    case Kind::kInt:
      return Term::Integer(int_);
    case Kind::kDouble:
      return Term::Double(double_);
    case Kind::kString:
      return Term::Literal(string_);
    case Kind::kTerm:
      return term_;
    case Kind::kUnbound:
      break;
  }
  return Term::Literal("");
}

std::optional<bool> Value::EffectiveBool() const {
  switch (kind_) {
    case Kind::kBool:
      return bool_;
    case Kind::kInt:
      return int_ != 0;
    case Kind::kDouble:
      return double_ != 0 && !std::isnan(double_);
    case Kind::kString:
      return !string_.empty();
    case Kind::kTerm:
      if (term_.is_literal() && term_.datatype().empty()) {
        return !term_.lexical().empty();
      }
      return std::nullopt;
    case Kind::kUnbound:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<double> Value::AsNumeric() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return double_;
    case Kind::kTerm:
      if (term_.IsNumericLiteral()) {
        char* end = nullptr;
        double parsed = std::strtod(term_.lexical().c_str(), &end);
        if (end != nullptr && *end == '\0') return parsed;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

std::string Value::AsString() const {
  switch (kind_) {
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return FormatNumber(double_);
    case Kind::kString:
      return string_;
    case Kind::kTerm:
      return term_.lexical();
    case Kind::kUnbound:
      return "";
  }
  return "";
}

std::optional<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_unbound() || b.is_unbound()) return std::nullopt;
  // Numeric comparison dominates.
  auto na = a.AsNumeric();
  auto nb = b.AsNumeric();
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  // Booleans.
  if (a.kind() == Kind::kBool && b.kind() == Kind::kBool) {
    return static_cast<int>(a.bool_value()) - static_cast<int>(b.bool_value());
  }
  // Strings / plain literals / typed literals with matching datatype
  // (covers xsd:dateTime which orders lexically in ISO form).
  auto string_like = [](const Value& v) -> std::optional<std::string> {
    if (v.kind() == Kind::kString) return v.string_value();
    if (v.kind() == Kind::kTerm && v.term().is_literal()) {
      return v.term().lexical();
    }
    return std::nullopt;
  };
  auto sa = string_like(a);
  auto sb = string_like(b);
  if (sa.has_value() && sb.has_value()) {
    int c = sa->compare(*sb);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // IRIs order lexically (used by ORDER BY, not by filters usually).
  if (a.kind() == Kind::kTerm && b.kind() == Kind::kTerm) {
    int c = a.term().lexical().compare(b.term().lexical());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;
}

std::optional<bool> Value::Equals(const Value& a, const Value& b) {
  if (a.is_unbound() || b.is_unbound()) return std::nullopt;
  auto na = a.AsNumeric();
  auto nb = b.AsNumeric();
  if (na.has_value() && nb.has_value()) return *na == *nb;
  if (a.kind() == Kind::kBool || b.kind() == Kind::kBool) {
    if (a.kind() == Kind::kBool && b.kind() == Kind::kBool) {
      return a.bool_value() == b.bool_value();
    }
  }
  if (a.kind() == Kind::kTerm && b.kind() == Kind::kTerm) {
    return a.term() == b.term();
  }
  // String-ish comparison.
  auto string_like = [](const Value& v) -> std::optional<std::string> {
    if (v.kind() == Kind::kString) return v.string_value();
    if (v.kind() == Kind::kTerm && v.term().is_literal() &&
        v.term().lang().empty()) {
      return v.term().lexical();
    }
    return std::nullopt;
  };
  auto sa = string_like(a);
  auto sb = string_like(b);
  if (sa.has_value() && sb.has_value()) return *sa == *sb;
  return false;
}

bool IsDateTimeLiteral(const Term& term) {
  return term.is_literal() && (term.datatype() == rdf::xsd::kDateTime ||
                               term.datatype() == rdf::xsd::kDate);
}

std::optional<int> DateTimeComponent(const std::string& lexical,
                                     int component) {
  // Expected shapes: YYYY-MM-DD or YYYY-MM-DDTHH:MM:SS[.fff][Z|+hh:mm]
  if (lexical.size() < 10 || lexical[4] != '-' || lexical[7] != '-') {
    return std::nullopt;
  }
  auto num = [&](size_t pos, size_t len) -> std::optional<int> {
    int out = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      if (i >= lexical.size() ||
          !std::isdigit(static_cast<unsigned char>(lexical[i]))) {
        return std::nullopt;
      }
      out = out * 10 + (lexical[i] - '0');
    }
    return out;
  };
  switch (component) {
    case 0:
      return num(0, 4);
    case 1:
      return num(5, 2);
    case 2:
      return num(8, 2);
    case 3:
      return lexical.size() >= 13 ? num(11, 2) : std::nullopt;
    case 4:
      return lexical.size() >= 16 ? num(14, 2) : std::nullopt;
    case 5:
      return lexical.size() >= 19 ? num(17, 2) : std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace rdfa::sparql
