#ifndef RDFA_SPARQL_RESULTS_IO_H_
#define RDFA_SPARQL_RESULTS_IO_H_

#include <string>

#include "sparql/result_table.h"

namespace rdfa::sparql {

/// Serializes a result table in the W3C "SPARQL 1.1 Query Results JSON
/// Format": {"head": {"vars": [...]}, "results": {"bindings": [...]}} with
/// per-cell type/datatype/xml:lang annotations. Unbound cells are omitted
/// from their binding object, per the spec.
std::string WriteResultsJson(const ResultTable& table);

/// Serializes in the W3C "SPARQL 1.1 Query Results CSV Format": a header of
/// variable names, then one row per solution; values are the lexical forms,
/// quoted when they contain comma/quote/newline.
std::string WriteResultsCsv(const ResultTable& table);

/// Serializes in the W3C "SPARQL Query Results XML Format".
std::string WriteResultsXml(const ResultTable& table);

/// Serializes in the W3C "SPARQL 1.1 Query Results TSV Format": a header of
/// `?`-prefixed variable names, then one row per solution with terms in
/// their SPARQL (N-Triples) syntax — IRIs bracketed, literals quoted with
/// datatype/lang tags — and unbound cells left empty. Tab/newline cannot
/// appear unescaped inside a serialized term, so the format needs no
/// quoting layer of its own.
std::string WriteResultsTsv(const ResultTable& table);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_RESULTS_IO_H_
