#include "sparql/footprint.h"

#include <vector>

#include "sparql/parser.h"

namespace rdfa::sparql {

namespace {

/// Accumulates predicate IRIs; flips to unbounded on anything that cannot
/// be pinned to a fixed predicate set.
struct Walker {
  std::vector<std::string> preds;
  bool unbounded = false;

  void AddPredicate(const NodePattern& p) {
    if (unbounded) return;
    // A variable predicate scans arbitrary predicates; a non-IRI constant
    // (blank node) never matches but costs nothing to treat as unbounded.
    if (p.is_var || !p.term.is_iri()) {
      unbounded = true;
      return;
    }
    preds.push_back(p.term.lexical());
  }

  void WalkExpr(const ExprPtr& e) {
    if (e == nullptr || unbounded) return;
    if (e->kind == Expr::Kind::kExists && e->pattern != nullptr) {
      WalkPattern(*e->pattern);
    }
    for (const ExprPtr& arg : e->args) WalkExpr(arg);
  }

  void WalkSelect(const SelectQuery& q) {
    WalkPattern(q.where);
    for (const Projection& proj : q.projections) WalkExpr(proj.expr);
    for (const ExprPtr& e : q.group_by) WalkExpr(e);
    for (const ExprPtr& e : q.having) WalkExpr(e);
    for (const OrderKey& k : q.order_by) WalkExpr(k.expr);
  }

  void WalkPattern(const GraphPattern& gp) {
    for (const PatternElement& el : gp.elements) {
      if (unbounded) return;
      switch (el.kind) {
        case PatternElement::Kind::kTriple:
          AddPredicate(el.triple.p);
          break;
        case PatternElement::Kind::kTransPath:
          // The closure scan itself only follows el.triple.p edges, but a
          // reflexive path ('*') also yields zero-length matches for nodes
          // surfaced by *any* predicate, so stay conservative for both.
          unbounded = true;
          break;
        case PatternElement::Kind::kFilter:
          WalkExpr(el.filter);
          break;
        case PatternElement::Kind::kOptional:
        case PatternElement::Kind::kMinus:
          if (el.child != nullptr) WalkPattern(*el.child);
          break;
        case PatternElement::Kind::kUnion:
          if (el.child != nullptr) WalkPattern(*el.child);
          if (el.child2 != nullptr) WalkPattern(*el.child2);
          break;
        case PatternElement::Kind::kBind:
          WalkExpr(el.bind_expr);
          break;
        case PatternElement::Kind::kSubSelect:
          if (el.sub_select != nullptr) WalkSelect(*el.sub_select);
          break;
        case PatternElement::Kind::kValues:
          break;  // inline data touches no graph predicate
      }
    }
  }

  CacheFootprint Finish() const {
    return unbounded ? CacheFootprint::Wildcard() : CacheFootprint::Of(preds);
  }
};

}  // namespace

CacheFootprint FootprintOf(const ParsedQuery& query) {
  Walker w;
  switch (query.form) {
    case ParsedQuery::Form::kSelect:
      w.WalkSelect(query.select);
      break;
    case ParsedQuery::Form::kConstruct:
      // The template only instantiates bindings from the WHERE clause.
      w.WalkPattern(query.construct.where);
      break;
    case ParsedQuery::Form::kAsk:
      w.WalkPattern(query.ask.where);
      break;
    case ParsedQuery::Form::kDescribe:
      // A concise bounded description follows whatever predicates surround
      // the resource — unbounded by construction.
      w.unbounded = true;
      break;
  }
  return w.Finish();
}

CacheFootprint FootprintOf(const UpdateRequest& update) {
  Walker w;
  for (const TriplePattern& t : update.insert_template) w.AddPredicate(t.p);
  for (const TriplePattern& t : update.delete_template) w.AddPredicate(t.p);
  w.WalkPattern(update.where);
  return w.Finish();
}

CacheFootprint FootprintOfQueryText(const std::string& sparql) {
  Result<ParsedQuery> parsed = ParseQuery(sparql);
  if (!parsed.ok()) return CacheFootprint::Wildcard();
  return FootprintOf(parsed.value());
}

}  // namespace rdfa::sparql
