#include "sparql/plan_cache.h"

#include <cstdio>
#include <string>
#include <utility>

namespace rdfa::sparql {

namespace {

std::string KeyFor(uint64_t query_hash) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(query_hash));
  return buf;
}

// Rough footprint of a plan entry. The AST is a pointer-heavy structure we
// do not walk exactly; a fixed estimate plus the captured orders keeps the
// byte budget meaningful without a recursive size pass.
size_t ApproxPlanBytes(const PlanEntry& entry) {
  size_t bytes = 1024;  // AST baseline
  for (const auto& order : entry.bgp_orders) {
    bytes += sizeof(order) + order.size() * sizeof(int);
  }
  bytes += entry.footprint.ApproxBytes();
  return bytes;
}

}  // namespace

PlanCache::PlanCache(CacheOptions opts)
    : cache_(opts, "rdfa_plan_cache") {}

std::shared_ptr<const PlanEntry> PlanCache::Get(uint64_t query_hash,
                                                uint64_t generation) {
  return cache_.Get(KeyFor(query_hash), generation);
}

std::shared_ptr<const PlanEntry> PlanCache::Get(
    uint64_t query_hash,
    const std::function<uint64_t(const CacheFootprint&)>& stamp_fn) {
  return cache_.Get(KeyFor(query_hash), stamp_fn);
}

void PlanCache::Put(uint64_t query_hash, uint64_t generation,
                    PlanEntry entry) {
  size_t bytes = ApproxPlanBytes(entry);
  CacheFootprint footprint = entry.footprint;
  cache_.Put(KeyFor(query_hash), generation, std::move(entry), bytes,
             std::move(footprint));
}

}  // namespace rdfa::sparql
