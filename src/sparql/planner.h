#ifndef RDFA_SPARQL_PLANNER_H_
#define RDFA_SPARQL_PLANNER_H_

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "sparql/bgp.h"

namespace rdfa::sparql {

/// Largest BGP the exhaustive DP join-order search enumerates (2^n subset
/// states). Above this the order-aware greedy fallback plans instead.
inline constexpr size_t kMaxDpPatterns = 8;

/// One step of an annotated left-deep plan, 1:1 with the execution-ordered
/// pattern vector.
struct PlannedStep {
  /// 'S' — seed scan (the first pattern, enumerated in `perm`'s order).
  /// 'M' — streaming merge join on the plan's interesting-order variable,
  ///       consuming `perm` (whose sort order agrees with the input rows).
  /// 'A' — adaptive: the runtime hash-vs-NLJ machinery decides per step.
  char strategy = 'A';
  rdf::Graph::Perm perm = rdf::Graph::kPermSPO;  ///< for 'S' and 'M' steps
  double est_rows = 0;  ///< estimated intermediate rows after this step
  double est_cost = 0;  ///< estimated index rows this step decodes
};

/// An annotated left-deep BGP plan: the interesting order (the variable the
/// intermediate stays sorted by — set by the first pattern's scan
/// permutation and preserved by every later operator, since all of them
/// extend rows in input order) plus per-step strategy and permutation
/// choices. Derived deterministically from the execution order alone, so a
/// plan-cache replay of the captured order reproduces it bit-for-bit.
struct BgpPlan {
  std::vector<PlannedStep> steps;  ///< one per pattern, execution order
  int head_slot = -1;              ///< interesting-order binding slot
  bool used_dp = false;            ///< order came from the DP search
  double est_cost = 0;             ///< sum of step costs
  /// Explainable plan shape (strategies, permutations, expected rows) keyed
  /// by the patterns' source indexes; surfaced via ExecStats::ToJson and
  /// the bench plan dumps.
  std::string ToJson(const std::vector<int>& source_order) const;
};

/// Human-readable permutation name ("SPO" ... "OPS").
const char* PermName(rdf::Graph::Perm perm);

/// Observability counters one DP search fills (when the caller passes a
/// non-null out-param): how long planning took and how much of the state
/// space it walked. Surfaced as the "dp-plan" trace span and the
/// rdfa_dp_plan_ms histogram.
struct DpStats {
  double plan_ms = 0;
  size_t states_considered = 0;  ///< (subset, head) states relaxed into
  size_t states_expanded = 0;    ///< valid states whose extensions were tried
};

/// DP join-order search (DPsize over subsets) for BGPs of up to
/// kMaxDpPatterns patterns: enumerates every connected left-deep order and
/// every first-pattern sort order, costing steps in estimated index rows
/// decoded — NLJ as rows x calibrated per-row fanout, hash as its build
/// width, merge (when the step joins exactly on the seeded interesting
/// order) as the cheaper of the two — and returns the cheapest order as
/// source indexes. Deterministic: ties keep the earliest-enumerated state.
/// Callers handle larger BGPs with the greedy fallback. `stats` (nullable)
/// receives planning time and search-space counters.
std::vector<int> PlanBgpOrderDp(const rdf::Graph& graph,
                                const std::vector<CompiledPattern>& patterns,
                                DpStats* stats = nullptr);

/// Annotates an execution-ordered pattern sequence: picks the interesting
/// order (the first pattern's free lane that qualifies the most downstream
/// merge steps; ties prefer the s/p/o lane order, zero qualifiers means no
/// preferred order), the first step's scan permutation, and each later
/// step's merge qualification + permutation. A step merge-qualifies iff its
/// only bound-variable lane is the interesting-order variable — then its
/// group replay enumerates exactly the per-row NLJ ranges, in the same
/// order, which is the byte-identity argument for demoting 'M' steps to
/// hash or NLJ.
BgpPlan AnnotateBgpPlan(const rdf::Graph& graph,
                        const std::vector<CompiledPattern>& ordered);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_PLANNER_H_
