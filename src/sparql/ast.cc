#include "sparql/ast.h"

namespace rdfa::sparql {

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeTerm(rdf::Term t) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kTerm;
  e->term = std::move(t);
  return e;
}

ExprPtr Expr::MakeUnary(std::string op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(a));
  return e;
}

ExprPtr Expr::MakeBinary(std::string op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr Expr::MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->call_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::MakeAggregate(AggFunc f, ExprPtr arg, bool distinct,
                            std::string separator) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = f;
  e->agg_distinct = distinct;
  e->agg_separator = std::move(separator);
  if (arg != nullptr) {
    e->args.push_back(std::move(arg));
  } else {
    e->agg_star = true;
  }
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const ExprPtr& a : args) {
    if (a != nullptr && a->ContainsAggregate()) return true;
  }
  return false;
}

bool Expr::ContainsExists() const {
  if (kind == Kind::kExists) return true;
  for (const ExprPtr& a : args) {
    if (a != nullptr && a->ContainsExists()) return true;
  }
  return false;
}

void Expr::CollectVars(std::set<std::string>* out) const {
  if (kind == Kind::kVar) out->insert(var);
  for (const ExprPtr& a : args) {
    if (a != nullptr) a->CollectVars(out);
  }
}

}  // namespace rdfa::sparql
