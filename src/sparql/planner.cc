#include "sparql/planner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

namespace rdfa::sparql {

namespace {

using rdf::kNoTermId;
using rdf::TermId;

int LaneVar(const CompiledPattern& p, int lane) {
  return lane == 0 ? p.s_var : lane == 1 ? p.p_var : p.o_var;
}

// Constant-narrowed index range width of a pattern: the exact number of
// index rows a hash build (or an unseeked merge cursor) over it decodes.
double ConstWidth(const rdf::Graph& graph, const CompiledPattern& p) {
  return static_cast<double>(
      graph.EstimateMatch(p.s_var < 0 ? p.s_id : kNoTermId,
                          p.p_var < 0 ? p.p_id : kNoTermId,
                          p.o_var < 0 ? p.o_id : kNoTermId));
}

void MarkBoundSlots(const CompiledPattern& p, std::set<int>* bound) {
  for (int lane = 0; lane < 3; ++lane) {
    const int v = LaneVar(p, lane);
    if (v >= 0) bound->insert(v);
  }
}

// Counts the pattern's bound-variable lanes under `bound(slot)`; when the
// count is 1, `*only_lane` names that lane. A step merge-qualifies iff the
// count is 1 and the lane's variable is the interesting order.
template <typename BoundFn>
int BoundVarLanes(const CompiledPattern& p, BoundFn bound, int* only_lane) {
  int n = 0;
  for (int lane = 0; lane < 3; ++lane) {
    const int v = LaneVar(p, lane);
    if (v >= 0 && bound(v)) {
      ++n;
      *only_lane = lane;
    }
  }
  return n;
}

// The permutation a merge step streams: constant lanes first (narrowing the
// cursor range), then the merge lane — so within the constant prefix the
// cursor is sorted by the merge key. With no constant lanes the primary
// ChoosePerm of the merge lane is used, which is exactly the permutation a
// per-row NLJ probe would pick; with constants, at most one lane trails the
// merge key, so every decoded group replays in that probe's order too.
rdf::Graph::Perm MergePerm(const CompiledPattern& p, int merge_lane) {
  const bool c[3] = {p.s_var < 0, p.p_var < 0, p.o_var < 0};
  const int nc = (c[0] ? 1 : 0) + (c[1] ? 1 : 0) + (c[2] ? 1 : 0);
  if (nc == 0) {
    return rdf::Graph::ChoosePerm(merge_lane == 0, merge_lane == 1,
                                  merge_lane == 2);
  }
  for (int perm = 0; perm < rdf::Graph::kNumPerms; ++perm) {
    bool prefix_const = true;
    for (int i = 0; i < nc; ++i) {
      prefix_const = prefix_const && c[rdf::Graph::kPermLanes[perm][i]];
    }
    if (prefix_const && nc < 3 &&
        rdf::Graph::kPermLanes[perm][nc] == merge_lane) {
      return static_cast<rdf::Graph::Perm>(perm);
    }
  }
  return rdf::Graph::ChoosePerm(c[0], c[1], c[2]);
}

}  // namespace

const char* PermName(rdf::Graph::Perm perm) {
  static constexpr const char* kNames[rdf::Graph::kNumPerms] = {
      "SPO", "POS", "OSP", "PSO", "SOP", "OPS"};
  return kNames[static_cast<int>(perm)];
}

std::vector<int> PlanBgpOrderDp(const rdf::Graph& graph,
                                const std::vector<CompiledPattern>& patterns,
                                DpStats* stats) {
  const size_t n = patterns.size();
  std::vector<int> source(n);
  std::iota(source.begin(), source.end(), 0);
  if (n <= 1 || n > kMaxDpPatterns) return source;
  const auto plan_start = std::chrono::steady_clock::now();

  // Compact variable-slot numbering: slot -> bit index, sorted by slot id
  // so the mapping (and thus every tie-break below) is deterministic.
  std::vector<int> slots;
  for (const auto& p : patterns) {
    for (int lane = 0; lane < 3; ++lane) {
      const int v = LaneVar(p, lane);
      if (v >= 0) slots.push_back(v);
    }
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  auto bit_of = [&slots](int slot) {
    return static_cast<int>(
        std::lower_bound(slots.begin(), slots.end(), slot) - slots.begin());
  };

  std::vector<uint32_t> varbits(n, 0);
  std::vector<double> width(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (int lane = 0; lane < 3; ++lane) {
      const int v = LaneVar(patterns[i], lane);
      if (v >= 0) varbits[i] |= 1u << bit_of(v);
    }
    width[i] = ConstWidth(graph, patterns[i]);
  }

  // Bound-slot set per subset, built incrementally off the lowest member.
  const uint32_t full = (1u << n) - 1;
  std::vector<uint32_t> maskbits(full + 1, 0);
  for (uint32_t m = 1; m <= full; ++m) {
    int low = 0;
    while (((m >> low) & 1u) == 0) ++low;
    maskbits[m] = maskbits[m & (m - 1)] | varbits[low];
  }

  // DP state: (subset, interesting-order head). The head is fixed by the
  // seed pattern's scan permutation and preserved down the pipeline, so it
  // is part of the state, not a per-step choice. `nheads - 1` = no order.
  struct State {
    double cost = 0;
    double rows = 0;
    std::vector<int> order;
    bool valid = false;
  };
  const int nheads = static_cast<int>(slots.size()) + 1;
  std::vector<std::vector<State>> dp(full + 1, std::vector<State>(nheads));
  size_t states_considered = 0;
  auto relax = [&dp, &states_considered](uint32_t mask, int head, double cost,
                                         double rows, std::vector<int> order) {
    ++states_considered;
    State& s = dp[mask][head];
    if (!s.valid || cost < s.cost) {
      s.cost = cost;
      s.rows = rows;
      s.order = std::move(order);
      s.valid = true;
    }
  };

  // Seeds: every pattern, headless or sorted on any of its free lanes (all
  // seed permutations decode the same constant-narrowed width).
  for (size_t f = 0; f < n; ++f) {
    relax(1u << f, nheads - 1, width[f], width[f],
          {static_cast<int>(f)});
    for (int lane = 0; lane < 3; ++lane) {
      const int v = LaneVar(patterns[f], lane);
      if (v >= 0) {
        relax(1u << f, bit_of(v), width[f], width[f],
              {static_cast<int>(f)});
      }
    }
  }

  for (uint32_t mask = 1; mask < full; ++mask) {
    // Cross-product guard: while any unused pattern shares a variable with
    // the subset, disconnected extensions are skipped.
    bool any_connected = false;
    for (size_t j = 0; j < n; ++j) {
      if (((mask >> j) & 1u) == 0 && (varbits[j] & maskbits[mask]) != 0) {
        any_connected = true;
      }
    }
    for (int head = 0; head < nheads; ++head) {
      const State& s = dp[mask][head];
      if (!s.valid) continue;
      if (stats != nullptr) ++stats->states_expanded;
      for (size_t j = 0; j < n; ++j) {
        if ((mask >> j) & 1u) continue;
        if (any_connected && (varbits[j] & maskbits[mask]) == 0) continue;
        bool lb[3] = {false, false, false};
        int only = -1;
        for (int lane = 0; lane < 3; ++lane) {
          const int v = LaneVar(patterns[j], lane);
          if (v >= 0 && ((maskbits[mask] >> bit_of(v)) & 1u)) {
            lb[lane] = true;
            only = lane;
          }
        }
        const int nbound = (lb[0] ? 1 : 0) + (lb[1] ? 1 : 0) + (lb[2] ? 1 : 0);
        const double per_row =
            CalibratedRowEstimate(graph, patterns[j], lb[0], lb[1], lb[2]);
        const double nlj = s.rows * per_row;
        // NLJ decodes rows x fanout; a hash build (or merge cursor) decodes
        // the constant-narrowed width once. Either alternative needs a bound
        // join key; without one only NLJ (a full-width scan per row) exists.
        const double cost = nbound > 0 ? std::min(width[j], nlj) : nlj;
        (void)only;  // merge costs no less than the hash bound above
        std::vector<int> order = s.order;
        order.push_back(static_cast<int>(j));
        relax(mask | (1u << j), head, s.cost + cost, nlj, std::move(order));
      }
    }
  }

  const State* best = nullptr;
  for (int head = 0; head < nheads; ++head) {
    const State& s = dp[full][head];
    if (s.valid && (best == nullptr || s.cost < best->cost)) best = &s;
  }
  if (stats != nullptr) {
    stats->states_considered = states_considered;
    stats->plan_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - plan_start)
                         .count();
  }
  return best != nullptr ? best->order : source;
}

BgpPlan AnnotateBgpPlan(const rdf::Graph& graph,
                        const std::vector<CompiledPattern>& ordered) {
  BgpPlan plan;
  plan.steps.resize(ordered.size());
  if (ordered.empty()) return plan;
  const CompiledPattern& first = ordered.front();

  // Interesting order: the first pattern's free lane whose variable
  // merge-qualifies the most downstream steps. Zero qualifiers keeps the
  // head unset and the seed scan on the default (3-arg ChoosePerm)
  // permutation — identical enumeration order to the v1 engine.
  int head_lane = -1;
  int best_score = 0;
  for (int lane = 0; lane < 3; ++lane) {
    const int v = LaneVar(first, lane);
    if (v < 0) continue;
    std::set<int> bound;
    MarkBoundSlots(first, &bound);
    int score = 0;
    for (size_t i = 1; i < ordered.size(); ++i) {
      int only = -1;
      const int nb = BoundVarLanes(
          ordered[i], [&bound](int s) { return bound.count(s) > 0; }, &only);
      if (nb == 1 && LaneVar(ordered[i], only) == v) ++score;
      MarkBoundSlots(ordered[i], &bound);
    }
    if (score > best_score) {
      best_score = score;
      head_lane = lane;
    }
  }
  plan.head_slot = head_lane >= 0 ? LaneVar(first, head_lane) : -1;

  const bool c0[3] = {first.s_var < 0, first.p_var < 0, first.o_var < 0};
  PlannedStep& seed = plan.steps.front();
  seed.strategy = 'S';
  seed.perm = head_lane >= 0
                  ? rdf::Graph::ChoosePerm(c0[0], c0[1], c0[2], head_lane)
                  : rdf::Graph::ChoosePerm(c0[0], c0[1], c0[2]);
  seed.est_rows = ConstWidth(graph, first);
  seed.est_cost = seed.est_rows;

  std::set<int> bound;
  MarkBoundSlots(first, &bound);
  double rows = seed.est_rows;
  plan.est_cost = seed.est_cost;
  for (size_t i = 1; i < ordered.size(); ++i) {
    const CompiledPattern& p = ordered[i];
    int only = -1;
    const int nb = BoundVarLanes(
        p, [&bound](int s) { return bound.count(s) > 0; }, &only);
    const double per_row = CalibratedRowEstimate(
        graph, p, p.s_var >= 0 && bound.count(p.s_var) > 0,
        p.p_var >= 0 && bound.count(p.p_var) > 0,
        p.o_var >= 0 && bound.count(p.o_var) > 0);
    PlannedStep& step = plan.steps[i];
    const double nlj = rows * per_row;
    const double w = ConstWidth(graph, p);
    if (plan.head_slot >= 0 && nb == 1 && LaneVar(p, only) == plan.head_slot) {
      step.strategy = 'M';
      step.perm = MergePerm(p, only);
      step.est_cost = std::min(w, nlj);
    } else {
      step.strategy = 'A';
      step.est_cost = nb > 0 ? std::min(w, nlj) : nlj;
    }
    step.est_rows = nlj;
    rows = nlj;
    plan.est_cost += step.est_cost;
    MarkBoundSlots(p, &bound);
  }
  return plan;
}

std::string BgpPlan::ToJson(const std::vector<int>& source_order) const {
  std::string out = "{\"dp\":";
  out += used_dp ? "true" : "false";
  char buf[160];
  std::snprintf(buf, sizeof buf, ",\"head_slot\":%d,\"est_cost\":%.0f",
                head_slot, est_cost);
  out += buf;
  out += ",\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlannedStep& s = steps[i];
    const int src =
        i < source_order.size() ? source_order[i] : static_cast<int>(i);
    std::snprintf(buf, sizeof buf,
                  "%s{\"pattern\":%d,\"strategy\":\"%c\",\"perm\":\"%s\","
                  "\"est_rows\":%.0f,\"est_cost\":%.0f}",
                  i == 0 ? "" : ",", src, s.strategy, PermName(s.perm),
                  s.est_rows, s.est_cost);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace rdfa::sparql
