#ifndef RDFA_SPARQL_FOOTPRINT_H_
#define RDFA_SPARQL_FOOTPRINT_H_

#include <string>

#include "common/footprint.h"
#include "sparql/ast.h"

namespace rdfa::sparql {

/// The predicate footprint of a parsed query: the set of predicate IRIs its
/// answer can depend on, used to stamp cache entries for predicate-granular
/// invalidation (common/footprint.h, rdf::Graph::FootprintStamp).
///
/// Deliberately conservative: the walk covers every nested pattern
/// (OPTIONAL / UNION / MINUS / subselects / EXISTS inside FILTER, BIND and
/// HAVING expressions), and the result degrades to a wildcard as soon as
/// any dependency cannot be bounded by a fixed predicate set — a variable
/// or blank-node predicate, a transitive property path (whose reflexive
/// closure can surface arbitrary graph nodes), or a DESCRIBE (whose concise
/// bounded description follows arbitrary predicates). A wildcard footprint
/// falls back to global-generation validation, which is always sound.
CacheFootprint FootprintOf(const ParsedQuery& query);

/// As above for an update: the predicates whose epochs the update may
/// advance (wildcard if a delete pattern's predicate is unbounded).
CacheFootprint FootprintOf(const UpdateRequest& update);

/// Parses `sparql` and returns its footprint; wildcard if it fails to
/// parse as a query. Convenience for layers that hold generated query text
/// (the OLAP cube cache keys on generated SPARQL).
CacheFootprint FootprintOfQueryText(const std::string& sparql);

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_FOOTPRINT_H_
