#ifndef RDFA_SPARQL_PLAN_CACHE_H_
#define RDFA_SPARQL_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/lru_cache.h"
#include "sparql/ast.h"
#include "sparql/bgp.h"

namespace rdfa::sparql {

/// One cached query plan: the parsed AST plus the BGP join orders the
/// executor chose for it (one vector per BGP join run, in evaluation
/// order). The orders were derived from GraphStats, which change with the
/// graph — hence the whole entry is stamped with, and validated against,
/// the graph generation that produced those statistics.
struct PlanEntry {
  ParsedQuery ast;
  std::vector<std::vector<int>> bgp_orders;
  /// The query's predicate footprint, recorded at plan time (see
  /// common/footprint.h). Answer-cache entries for this query reuse it, and
  /// the plan itself is validated with it: a mutation to an unrelated
  /// predicate leaves both the plan and its statistics-derived join orders
  /// valid.
  CacheFootprint footprint;
};

/// Generation-validated plan cache keyed by the FNV-1a hash of the
/// normalized query text (common/query_log.h). A hit skips both the parse
/// and the greedy BGP reordering; a generation mismatch is a miss that
/// lazily evicts the stale plan. Thread-safe; counters exported as
/// rdfa_plan_cache_{hits,misses,evictions,invalidations}_total.
class PlanCache {
 public:
  /// Plans are small; the default budget is deliberately tighter than the
  /// answer cache's.
  static CacheOptions DefaultOptions() {
    CacheOptions opts;
    opts.max_bytes = 8ull << 20;
    opts.max_entries = 1024;
    return opts;
  }

  explicit PlanCache(CacheOptions opts = DefaultOptions());

  /// Mixes the planner configuration that shaped a plan's join orders into
  /// the query-hash key. Orders captured under one strategy / DP / cost-
  /// model setting must not replay into a run configured differently (a DP
  /// order replayed into a greedy-configured executor would silently keep
  /// DP's choices, and vice versa), so each configuration gets its own
  /// cache slot.
  static uint64_t ConfigKey(uint64_t query_hash, JoinStrategy strategy,
                            bool use_dp, bool calibrated) {
    const uint64_t salt = (static_cast<uint64_t>(strategy) << 2) |
                          (use_dp ? 2u : 0u) | (calibrated ? 1u : 0u);
    return query_hash ^ ((salt + 1) * 0x9E3779B97F4A7C15ull);
  }

  /// The cached plan for `query_hash` computed at `generation`, or null.
  std::shared_ptr<const PlanEntry> Get(uint64_t query_hash,
                                       uint64_t generation);

  /// Footprint-validated lookup: `stamp_fn` recomputes the expected stamp
  /// from the stored plan's footprint (see LruCache::Get).
  std::shared_ptr<const PlanEntry> Get(
      uint64_t query_hash,
      const std::function<uint64_t(const CacheFootprint&)>& stamp_fn);

  /// Stores `entry` stamped with `generation` — the global generation for a
  /// wildcard footprint, or the graph's FootprintStamp of entry.footprint.
  void Put(uint64_t query_hash, uint64_t generation, PlanEntry entry);

  void Clear() { cache_.Clear(); }
  CacheStats Stats() const { return cache_.Stats(); }
  bool enabled() const { return cache_.enabled(); }

 private:
  LruCache<PlanEntry> cache_;
};

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_PLAN_CACHE_H_
