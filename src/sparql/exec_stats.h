#ifndef RDFA_SPARQL_EXEC_STATS_H_
#define RDFA_SPARQL_EXEC_STATS_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace rdfa::sparql {

/// Per-query execution statistics, filled in by the Executor and threaded
/// through the endpoint and the benchmarks so speedups are observable
/// rather than asserted. All times are wall-clock milliseconds.
struct ExecStats {
  int threads = 1;             ///< thread budget the query ran with
  double index_build_ms = 0;   ///< Graph::Freeze (non-zero on first touch)
  double bgp_ms = 0;           ///< total BGP join time across pattern runs
  double group_agg_ms = 0;     ///< grouping + aggregate computation
  double total_ms = 0;         ///< whole Execute call
  size_t morsel_count = 0;     ///< parallel morsels executed, all stages
  size_t bgp_patterns = 0;     ///< triple patterns joined
  /// Index rows enumerated per executed pattern, in execution order.
  std::vector<size_t> rows_scanned;
  /// The join order chosen by the greedy reorderer: position i holds the
  /// source-order index (within its BGP run) of the pattern executed i-th.
  std::vector<int> join_order;
  /// Join strategy per executed pattern, parallel to join_order:
  /// 'N' = index nested-loop, 'H' = order-preserving hash join,
  /// 'M' = planner-v2 streaming merge join.
  std::vector<char> join_strategy;
  size_t hash_builds = 0;      ///< patterns executed via the hash strategy
  size_t hash_build_rows = 0;  ///< build-side index rows enumerated
  size_t hash_probe_hits = 0;  ///< bucket entries probed across all rows
  size_t merge_joins = 0;        ///< patterns executed via the merge strategy
  size_t merge_rows_decoded = 0; ///< index entries merge cursors decoded
  size_t sieve_seeks = 0;        ///< SeekGE calls issued by merge cursors
  size_t sieve_keys = 0;         ///< distinct join-key runs sieved from input
  size_t dp_plans = 0;           ///< BGP runs ordered by the DP search
  /// Planner-v2 plan shape per BGP run (BgpPlan::ToJson: strategies,
  /// permutations, expected rows) — the explainable-plan surface.
  std::vector<std::string> plan_shapes;
  /// Set when the query unwound on a tripped deadline or cancellation; the
  /// other counters then describe the *partial* work done up to the trip
  /// (so callers can see where the budget went).
  bool aborted = false;
  /// The pipeline stage the abort unwound from (e.g. "bgp-join",
  /// "group-aggregate"); empty when !aborted.
  std::string abort_stage;

  void Reset() { *this = ExecStats{}; }

  /// One-line human-readable dump for logs and benchmarks.
  std::string Summary() const {
    std::string s = "threads=" + std::to_string(threads) +
                    " total=" + FormatMs(total_ms) +
                    " index_build=" + FormatMs(index_build_ms) +
                    " bgp=" + FormatMs(bgp_ms) +
                    " group_agg=" + FormatMs(group_agg_ms) +
                    " morsels=" + std::to_string(morsel_count) +
                    " patterns=" + std::to_string(bgp_patterns);
    if (aborted) {
      s += " aborted@" + (abort_stage.empty() ? "?" : abort_stage);
    }
    if (!join_order.empty()) {
      s += " order=[";
      for (size_t i = 0; i < join_order.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(join_order[i]);
      }
      s += "]";
    }
    if (!rows_scanned.empty()) {
      s += " scanned=[";
      for (size_t i = 0; i < rows_scanned.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(rows_scanned[i]);
      }
      s += "]";
    }
    if (!join_strategy.empty()) {
      s += " strategy=[";
      for (size_t i = 0; i < join_strategy.size(); ++i) {
        if (i > 0) s += ",";
        s += join_strategy[i];
      }
      s += "]";
    }
    if (hash_builds > 0) {
      s += " hash_builds=" + std::to_string(hash_builds) +
           " hash_build_rows=" + std::to_string(hash_build_rows) +
           " hash_probe_hits=" + std::to_string(hash_probe_hits);
    }
    if (merge_joins > 0) {
      s += " merge_joins=" + std::to_string(merge_joins) +
           " merge_rows_decoded=" + std::to_string(merge_rows_decoded) +
           " sieve_seeks=" + std::to_string(sieve_seeks) +
           " sieve_keys=" + std::to_string(sieve_keys);
    }
    if (dp_plans > 0) s += " dp_plans=" + std::to_string(dp_plans);
    return s;
  }

  /// The same counters as one JSON object (machine-readable benchmark
  /// output); no trailing newline.
  std::string ToJson() const {
    std::string s = "{";
    s += "\"threads\":" + std::to_string(threads);
    s += ",\"total_ms\":" + JsonNum(total_ms);
    s += ",\"index_build_ms\":" + JsonNum(index_build_ms);
    s += ",\"bgp_ms\":" + JsonNum(bgp_ms);
    s += ",\"group_agg_ms\":" + JsonNum(group_agg_ms);
    s += ",\"morsel_count\":" + std::to_string(morsel_count);
    s += ",\"bgp_patterns\":" + std::to_string(bgp_patterns);
    s += ",\"aborted\":" + std::string(aborted ? "true" : "false");
    s += ",\"abort_stage\":\"" + JsonEscape(abort_stage) + "\"";
    s += ",\"rows_scanned\":[";
    for (size_t i = 0; i < rows_scanned.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(rows_scanned[i]);
    }
    s += "],\"join_order\":[";
    for (size_t i = 0; i < join_order.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(join_order[i]);
    }
    s += "],\"join_strategy\":[";
    for (size_t i = 0; i < join_strategy.size(); ++i) {
      if (i > 0) s += ",";
      s += "\"" + JsonEscape(std::string_view(&join_strategy[i], 1)) + "\"";
    }
    s += "],\"hash_builds\":" + std::to_string(hash_builds);
    s += ",\"hash_build_rows\":" + std::to_string(hash_build_rows);
    s += ",\"hash_probe_hits\":" + std::to_string(hash_probe_hits);
    s += ",\"merge_joins\":" + std::to_string(merge_joins);
    s += ",\"merge_rows_decoded\":" + std::to_string(merge_rows_decoded);
    s += ",\"sieve_seeks\":" + std::to_string(sieve_seeks);
    s += ",\"sieve_keys\":" + std::to_string(sieve_keys);
    s += ",\"dp_plans\":" + std::to_string(dp_plans);
    // Plan shapes are already JSON objects; embed them verbatim.
    s += ",\"plans\":[";
    for (size_t i = 0; i < plan_shapes.size(); ++i) {
      if (i > 0) s += ",";
      s += plan_shapes[i];
    }
    s += "]}";
    return s;
  }

 private:
  static std::string FormatMs(double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
    return buf;
  }

  static std::string JsonNum(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }
};

}  // namespace rdfa::sparql

#endif  // RDFA_SPARQL_EXEC_STATS_H_
